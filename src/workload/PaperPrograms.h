//===- workload/PaperPrograms.h - The paper's example programs --*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact ir::Program renditions of the three example programs in the
/// paper, used by the unit tests and the figure-reproduction benchmarks.
/// Each returns the program plus handles to the entities the paper's
/// discussion names, so tests can assert points-to sets per figure.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_WORKLOAD_PAPERPROGRAMS_H
#define CTP_WORKLOAD_PAPERPROGRAMS_H

#include "ir/Ir.h"

namespace ctp {
namespace workload {

/// Figure 1: the id/id2 wrapper chain plus the m() factory.
///
/// class T { Object f;
///           Object id(Object p) { return p; }
///           Object id2(Object q) { Object t = id(q); /*c1*/ return t; }
///           Object m() { return new T(); /*m1*/ } }
/// main: x=new /*h1*/; y=new /*h2*/; r=new T /*h3*/;
///       x1=r.id(x)/*c2*/; y1=r.id(y)/*c3*/;
///       s=new T /*h4*/; t=new T /*h5*/;
///       x2=s.id2(x)/*c4*/; y2=t.id2(y)/*c5*/;
///       a=s.m()/*c6*/; b=t.m()/*c7*/; a.f=x; z=b.f;
struct Figure1Program {
  ir::Program P;
  // Variables of interest in main.
  ir::VarId X, Y, X1, Y1, X2, Y2, A, B, Z;
  // Heap sites.
  ir::HeapId H1, H2, H3, H4, H5, M1;
};
Figure1Program figure1();

/// Figure 5: static identity + static factory called twice.
///
/// class T { static T id(T p) { return p; }
///           static T m() { T h = new T(); /*h1*/
///                          T r = id(h); /*id1*/ return r; }
///   main: T x = m(); /*m1*/  T y = m(); /*m2*/ }
struct Figure5Program {
  ir::Program P;
  ir::VarId H, R, Pvar, X, Y;
  ir::HeapId H1;
  ir::InvokeId M1, M2, Id1;
};
Figure5Program figure5();

/// Figure 7: points-to through two data-flow paths (local + through the
/// receiver's field), the subsuming-facts example.
///
/// class T { Object f;
///           void m() { Object v = new Object(); /*h1*/
///                      if(...) { f = v; v = f; } }
///   main: T t = new T(); /*h2*/  t.m(); /*c1*/ }
struct Figure7Program {
  ir::Program P;
  ir::VarId V, T;
  ir::HeapId H1, H2;
  ir::InvokeId C1;
};
Figure7Program figure7();

} // namespace workload
} // namespace ctp

#endif // CTP_WORKLOAD_PAPERPROGRAMS_H
