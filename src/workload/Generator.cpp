//===- workload/Generator.cpp - Synthetic program synthesis ---------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "workload/Generator.h"

#include "ir/Builder.h"
#include "support/Rng.h"

#include <cassert>
#include <vector>

using namespace ctp;
using namespace ctp::workload;
using namespace ctp::ir;

namespace {

/// Holds the skeleton classes the scenario generator wires together.
struct Skeleton {
  TypeId Root = InvalidId;
  std::vector<TypeId> DataClasses;

  // Wrapper chains: per chain, the wrapper class and the top-most identity
  // method's dispatch signature (level WrapperDepth-1).
  struct Wrapper {
    TypeId Class;
    SigId TopSig;
  };
  std::vector<Wrapper> Wrappers;

  // Factories: class plus make() signature.
  struct Factory {
    TypeId Class;
    SigId MakeSig;
  };
  std::vector<Factory> Factories;

  // Containers: class plus method signatures.
  struct Container {
    TypeId Class;
    SigId SetSig, GetSig, FillSig, RefreshSig;
  };
  std::vector<Container> Containers;

  // Shared static library methods, called from many sites.
  std::vector<MethodId> Libs;

  // Shared task kernels: instance classes whose run(p) method contains
  // the scenario patterns. Every driver allocates every task class, so
  // run() is reachable under many contexts.
  struct Task {
    TypeId Class;
    SigId RunSig;
  };
  std::vector<Task> Tasks;

  // Polymorphic hierarchies: base class, variants, op signature.
  struct Poly {
    TypeId Base;
    std::vector<TypeId> Variants;
    SigId OpSig;
  };
  std::vector<Poly> Polys;

  // Static/global fields used as cross-driver caches.
  std::vector<GlobalId> Globals;

  // Thrower classes: boom(p) throws a fresh exception object.
  struct Thrower {
    TypeId Class;
    SigId BoomSig;
  };
  std::vector<Thrower> Throwers;

  // Worker (thread-body) classes: work(p) is a spawn target.
  struct Worker {
    TypeId Class;
    SigId RunSig;
  };
  std::vector<Worker> Workers;
  // Field both spawner and worker access on the shared argument.
  FieldId SharedField = InvalidId;

  // Taint infrastructure (built when TaintScenarios > 0). Every entity
  // name carries the "tnt" marker so toggling the taint surface leaves
  // all other generated facts byte-identical.
  TypeId TaintSourceClass = InvalidId;    // TntReader.tntread()
  SigId TaintSourceSig = InvalidId;
  TypeId TaintProbeClass = InvalidId;     // TntProbe.tntprobe() (dead src)
  SigId TaintProbeSig = InvalidId;
  TypeId TaintSinkClass = InvalidId;      // TntGate.tntwrite(p)
  SigId TaintSinkSig = InvalidId;
  TypeId TaintCleanserClass = InvalidId;  // TntCleanser.tntcleanse(p)
  SigId TaintCleanserSig = InvalidId;
  TypeId TaintBoxClass = InvalidId;       // TntBox.tntput/tnttake
  SigId TaintPutSig = InvalidId, TaintTakeSig = InvalidId;
  FieldId TaintSourceField = InvalidId;   // tntwell  (Source annotation)
  FieldId TaintSinkField = InvalidId;     // tntdrain (Sink annotation)

  // AST pattern classes.
  TypeId NodeClass = InvalidId;
  SigId NodeInitSig = InvalidId, NodeGetParentSig = InvalidId;
  TypeId StackClass = InvalidId;
  SigId PushSig = InvalidId, PopSig = InvalidId;
};

class Synthesizer {
public:
  // Spawn and taint material draws from dedicated RNG streams so that
  // toggling SpawnScenarios/WorkerClasses/TaintScenarios never advances
  // the shared stream — everything else in the program stays identical.
  explicit Synthesizer(const WorkloadParams &Params)
      : Params(Params), Rand(Params.Seed ^ 0xc7f7u),
        SpawnRand(Params.Seed ^ 0x59a3u), TaintRand(Params.Seed ^ 0x7a17u) {}

  Program run() {
    buildSkeleton();
    buildDrivers();
    Program P = B.take();
    assert(ir::validate(P).empty() && "generated program is invalid");
    return P;
  }

private:
  void buildSkeleton() {
    Sk.Root = B.addClass("Object");

    for (unsigned I = 0; I < Params.DataClasses; ++I)
      Sk.DataClasses.push_back(
          B.addClass("Data" + std::to_string(I), Sk.Root));
    if (Sk.DataClasses.empty())
      Sk.DataClasses.push_back(B.addClass("Data0", Sk.Root));

    buildWrappers();
    buildFactories();
    buildContainers();
    buildPolys();
    buildLibs();
    buildGlobals();
    buildThrowers();
    buildWorkers();
    buildTaintClasses();
    if (Params.AstScenarios > 0)
      buildAstClasses();
    buildTasks();
  }

  void buildGlobals() {
    for (unsigned G = 0; G < Params.GlobalFields; ++G)
      Sk.Globals.push_back(B.addGlobal("gcache" + std::to_string(G)));
  }

  /// class Thr_j { Object boom(p) { e = new D; throw e; return p; } }
  void buildThrowers() {
    for (unsigned J = 0; J < Params.ThrowerClasses; ++J) {
      TypeId C = B.addClass("Thr" + std::to_string(J), Sk.Root);
      std::string Name = "boom" + std::to_string(J);
      MethodId M = B.addMethod(C, Name, 1);
      VarId E = B.addLocal(M, "exc");
      B.addNew(M, E, pickData(), "excsite" + std::to_string(J));
      B.addThrow(M, E);
      B.addReturn(M, B.formal(M, 0));
      Sk.Throwers.push_back({C, B.signature(Name, 1)});
    }
  }

  /// class Worker_j { Object held_j;
  ///                  Object work(p) { this.held_j = p; t = this.held_j;
  ///                                   r = p.wshared;
  ///                                   v = new D; p.wshared = v;
  ///                                   [gcache = p;]
  ///                                   local = new D; l1 = local;
  ///                                   return t; } }
  ///
  /// The bodies of spawn invocations: they read and write the shared
  /// argument's `wshared` field (racing against the spawner's accesses),
  /// capture the argument into the worker object (thread escape), publish
  /// it through a global on even-numbered workers (global escape), and
  /// allocate a thread-local object that never leaves the method (the
  /// escape checker's no-escape witness).
  void buildWorkers() {
    unsigned NumWorkers = Params.WorkerClasses;
    if (NumWorkers == 0 && Params.SpawnScenarios > 0)
      NumWorkers = 1;
    if (NumWorkers == 0)
      return;
    Sk.SharedField = B.addField("wshared");
    for (unsigned J = 0; J < NumWorkers; ++J) {
      TypeId C = B.addClass("Worker" + std::to_string(J), Sk.Root);
      FieldId Held = B.addField("held" + std::to_string(J));
      std::string Name = "work" + std::to_string(J);
      MethodId Run = B.addMethod(C, Name, 1);
      VarId Arg = B.formal(Run, 0);
      B.addStore(Run, B.thisVar(Run), Held, Arg);
      VarId T = B.addLocal(Run, "t");
      B.addLoad(Run, T, B.thisVar(Run), Held);
      VarId R = B.addLocal(Run, "r");
      B.addLoad(Run, R, Arg, Sk.SharedField);
      VarId V = B.addLocal(Run, "v");
      B.addNew(Run, V, pickDataWith(SpawnRand),
               "worker" + std::to_string(J) + "_out");
      B.addStore(Run, Arg, Sk.SharedField, V);
      if (!Sk.Globals.empty() && J % 2 == 0)
        B.addGlobalStore(Run, Sk.Globals[J % Sk.Globals.size()], Arg);
      VarId L = B.addLocal(Run, "local");
      B.addNew(Run, L, pickDataWith(SpawnRand),
               "worker" + std::to_string(J) + "_local");
      VarId L1 = B.addLocal(Run, "l1");
      B.addAssign(Run, L1, L);
      B.addReturn(Run, T);
      Sk.Workers.push_back({C, B.signature(Name, 1)});
    }
  }

  /// The taint client's fixture classes. A reader whose call sites are
  /// annotated as sources (the body allocates the one "secret" site), a
  /// gate whose call sites are sinks, a cleanser whose call sites are
  /// sanitizers (its body allocates a fresh copy, so deep cleanliness
  /// holds even without the annotation), a probe used only by the
  /// dead-source shape, and a set/get box the container mix-up shape
  /// routes values through. Plus two annotated fields: objects stored
  /// into `tntwell` become tainted; stores into `tntdrain` are sinks.
  void buildTaintClasses() {
    if (Params.TaintScenarios == 0)
      return;
    Sk.TaintSourceField = B.addField("tntwell");
    B.setFieldTaint(Sk.TaintSourceField, TaintAnnot::Source);
    Sk.TaintSinkField = B.addField("tntdrain");
    B.setFieldTaint(Sk.TaintSinkField, TaintAnnot::Sink);

    // class TntReader { Object tntread() { s = new D; return s; } }
    Sk.TaintSourceClass = B.addClass("TntReader", Sk.Root);
    MethodId Read = B.addMethod(Sk.TaintSourceClass, "tntread", 0);
    VarId S = B.addLocal(Read, "tntsecret");
    B.addNew(Read, S, pickDataWith(TaintRand), "tntreadsite");
    B.addReturn(Read, S);
    Sk.TaintSourceSig = B.signature("tntread", 0);

    // class TntProbe { Object tntprobe() { p = new D; return p; } }
    Sk.TaintProbeClass = B.addClass("TntProbe", Sk.Root);
    MethodId Probe = B.addMethod(Sk.TaintProbeClass, "tntprobe", 0);
    VarId PV = B.addLocal(Probe, "tntpval");
    B.addNew(Probe, PV, pickDataWith(TaintRand), "tntprobewell");
    B.addReturn(Probe, PV);
    Sk.TaintProbeSig = B.signature("tntprobe", 0);

    // class TntGate { Object tntvault;
    //                 Object tntwrite(p) { this.tntvault = p; return p; } }
    FieldId Vault = B.addField("tntvault");
    Sk.TaintSinkClass = B.addClass("TntGate", Sk.Root);
    MethodId Write = B.addMethod(Sk.TaintSinkClass, "tntwrite", 1);
    B.addStore(Write, B.thisVar(Write), Vault, B.formal(Write, 0));
    B.addReturn(Write, B.formal(Write, 0));
    Sk.TaintSinkSig = B.signature("tntwrite", 1);

    // class TntCleanser { Object tntcleanse(p) { c = new D; return c; } }
    Sk.TaintCleanserClass = B.addClass("TntCleanser", Sk.Root);
    MethodId Cl = B.addMethod(Sk.TaintCleanserClass, "tntcleanse", 1);
    VarId C = B.addLocal(Cl, "tntcopy");
    B.addNew(Cl, C, pickDataWith(TaintRand), "tntcleansesite");
    B.addReturn(Cl, C);
    Sk.TaintCleanserSig = B.signature("tntcleanse", 1);

    // class TntBox { Object tntslot;
    //                void tntput(v) { this.tntslot = v; }
    //                Object tnttake() { return this.tntslot; } }
    FieldId Slot = B.addField("tntslot");
    Sk.TaintBoxClass = B.addClass("TntBox", Sk.Root);
    MethodId Put = B.addMethod(Sk.TaintBoxClass, "tntput", 1);
    B.addStore(Put, B.thisVar(Put), Slot, B.formal(Put, 0));
    Sk.TaintPutSig = B.signature("tntput", 1);
    MethodId Take = B.addMethod(Sk.TaintBoxClass, "tnttake", 0);
    VarId R = B.addLocal(Take, "tntout");
    B.addLoad(Take, R, B.thisVar(Take), Slot);
    B.addReturn(Take, R);
    Sk.TaintTakeSig = B.signature("tnttake", 0);
  }

  /// class Task_j { Object run(p) { <scenario patterns> return ...; } }
  ///
  /// The workload's actual "business logic". Every driver allocates every
  /// task class at its own site and invokes run, so run's body — which
  /// holds most of the program's statements — is analyzed under one
  /// context per driver (object sensitivity: the task allocation site;
  /// call-site sensitivity: the invocation). Context strings enumerate
  /// every local fact per context; transformer strings keep one ε fact.
  /// This mirrors the fan-in profile of real library-heavy Java code.
  void buildTasks() {
    unsigned NumTasks = Params.TaskClasses == 0 ? 1 : Params.TaskClasses;
    for (unsigned J = 0; J < NumTasks; ++J) {
      TypeId C = B.addClass("Task" + std::to_string(J), Sk.Root);
      std::string Name = "run" + std::to_string(J);
      MethodId Run = B.addMethod(C, Name, 1);
      LocalPool Pool{Run, {B.formal(Run, 0)}};
      for (unsigned S = 0; S < Params.Scenarios; ++S)
        emitScenario(Pool);
      for (unsigned S = 0; S < Params.AstScenarios; ++S)
        emitAstScenario(Pool);
      B.addReturn(Run, poolVar(Pool, "out"));
      Sk.Tasks.push_back({C, B.signature(Name, 1)});
    }
  }

  /// Shared static library helpers: each allocates its own container
  /// instance and funnels its parameter through it. Library methods are
  /// invoked from every driver stage, so under call-site sensitivity they
  /// are reachable under many contexts while their bodies are context-
  /// independent — prime territory for the transformer abstraction.
  void buildLibs() {
    if (Sk.Containers.empty())
      return;
    for (unsigned L = 0; L < Params.LibMethods; ++L) {
      const auto &C = Sk.Containers[L % Sk.Containers.size()];
      // Each library helper lives in its own class so classOf(...) is
      // meaningful under type sensitivity.
      TypeId LibClass = B.addClass("Lib" + std::to_string(L), Sk.Root);
      MethodId M =
          B.addStaticMethod(LibClass, "lib" + std::to_string(L), 1);
      emitLocalNoise(M, 2);
      VarId Cont = B.addLocal(M, "cont");
      B.addNew(M, Cont, C.Class, "libcont" + std::to_string(L));
      B.addVirtualCall(M, Cont, C.SetSig, {B.formal(M, 0)}, InvalidId,
                       "libset" + std::to_string(L));
      B.addVirtualCall(M, Cont, C.FillSig, {}, InvalidId,
                       "libfill" + std::to_string(L));
      VarId R = B.addLocal(M, "r");
      B.addVirtualCall(M, Cont, C.GetSig, {}, R,
                       "libget" + std::to_string(L));
      B.addReturn(M, R);
      Sk.Libs.push_back(M);
    }
  }

  /// Emits a short context-independent local computation into \p M: a
  /// fresh allocation followed by an assignment chain. Under a context-
  /// string analysis every fact this produces is enumerated once per
  /// reachable context of M; under transformer strings it is a single
  /// ε fact — the paper's central savings mechanism.
  void emitLocalNoise(MethodId M, unsigned ChainLen) {
    VarId Cur = B.addLocal(M, "scratch" + std::to_string(AllocCounter));
    B.addNew(M, Cur, pickData(), "local_" + std::to_string(AllocCounter++));
    for (unsigned I = 0; I < ChainLen; ++I) {
      VarId Next =
          B.addLocal(M, "chain" + std::to_string(AllocCounter) + "_" +
                            std::to_string(I));
      B.addAssign(M, Next, Cur);
      Cur = Next;
    }
  }

  /// class Wrap_i { Object id0(p) { <local noise> return p; }
  ///                Object idK(p) { <local noise>
  ///                                t = this.id{K-1}(p); return t; } }
  ///
  /// The chain is invoked through `this`, so under object sensitivity all
  /// levels share the receiver's context; under call-site sensitivity each
  /// level adds one call-string element (Figure 1's id/id2).
  void buildWrappers() {
    unsigned Depth = Params.WrapperDepth == 0 ? 1 : Params.WrapperDepth;
    for (unsigned W = 0; W < Params.WrapperChains; ++W) {
      TypeId C = B.addClass("Wrap" + std::to_string(W), Sk.Root);
      SigId PrevSig = InvalidId;
      for (unsigned L = 0; L < Depth; ++L) {
        std::string Name =
            "id" + std::to_string(W) + "_" + std::to_string(L);
        MethodId M = B.addMethod(C, Name, 1);
        emitLocalNoise(M, 2);
        if (L == 0) {
          B.addReturn(M, B.formal(M, 0));
        } else {
          VarId T = B.addLocal(M, "t");
          B.addVirtualCall(M, B.thisVar(M), PrevSig, {B.formal(M, 0)}, T,
                           Name + "_fwd");
          B.addReturn(M, T);
        }
        PrevSig = B.signature(Name, 1);
      }
      Sk.Wrappers.push_back({C, PrevSig});
    }
  }

  /// class Fact_i { Object make() { t = this.grow(); return t; }
  ///                Object grow() { fresh = new D; a = fresh; return a; } }
  ///
  /// The factory allocates in a helper reached through `this`, so heap
  /// contexts ("+H") are required to separate objects made by different
  /// factory instances — Figure 1's m().
  void buildFactories() {
    for (unsigned F = 0; F < Params.Factories; ++F) {
      TypeId C = B.addClass("Fact" + std::to_string(F), Sk.Root);
      std::string GrowName = "grow" + std::to_string(F);
      MethodId Grow = B.addMethod(C, GrowName, 0);
      VarId Fresh = B.addLocal(Grow, "fresh");
      B.addNew(Grow, Fresh, pickData(),
               "fact" + std::to_string(F) + "_site");
      VarId A = B.addLocal(Grow, "a");
      B.addAssign(Grow, A, Fresh);
      B.addReturn(Grow, A);
      std::string Name = "make" + std::to_string(F);
      MethodId M = B.addMethod(C, Name, 0);
      emitLocalNoise(M, 1);
      VarId R = B.addLocal(M, "made");
      B.addVirtualCall(M, B.thisVar(M), B.signature(GrowName, 0), {}, R,
                       Name + "_grow");
      B.addReturn(M, R);
      Sk.Factories.push_back({C, B.signature(Name, 0)});
    }
  }

  /// class Cont_i { Object elem;
  ///                void set(v) { this.elem = v; }
  ///                Object get() { <local noise> return this.elem; }
  ///                void fill() { v = new D; this.elem = v; }
  ///                void refresh() { t = this.elem; this.elem = t; } }
  void buildContainers() {
    for (unsigned Ct = 0; Ct < Params.Containers; ++Ct) {
      TypeId C = B.addClass("Cont" + std::to_string(Ct), Sk.Root);
      FieldId Elem = B.addField("elem" + std::to_string(Ct));
      std::string Suffix = std::to_string(Ct);
      MethodId Set = B.addMethod(C, "set" + Suffix, 1);
      B.addStore(Set, B.thisVar(Set), Elem, B.formal(Set, 0));
      MethodId Get = B.addMethod(C, "get" + Suffix, 0);
      emitLocalNoise(Get, 1);
      VarId R = B.addLocal(Get, "r");
      B.addLoad(Get, R, B.thisVar(Get), Elem);
      B.addReturn(Get, R);
      MethodId Fill = B.addMethod(C, "fill" + Suffix, 0);
      VarId FV = B.addLocal(Fill, "v");
      B.addNew(Fill, FV, pickData(), "contfill" + Suffix);
      B.addStore(Fill, B.thisVar(Fill), Elem, FV);
      MethodId Refresh = B.addMethod(C, "refresh" + Suffix, 0);
      VarId RT = B.addLocal(Refresh, "t");
      B.addLoad(Refresh, RT, B.thisVar(Refresh), Elem);
      B.addStore(Refresh, B.thisVar(Refresh), Elem, RT);
      Sk.Containers.push_back({C, B.signature("set" + Suffix, 1),
                               B.signature("get" + Suffix, 0),
                               B.signature("fill" + Suffix, 0),
                               B.signature("refresh" + Suffix, 0)});
    }
  }

  /// Base_i with op(p); variants alternately return the parameter, a fresh
  /// object, or round-trip the parameter through an instance field.
  void buildPolys() {
    for (unsigned Pl = 0; Pl < Params.PolyBases; ++Pl) {
      std::string OpName = "op" + std::to_string(Pl);
      TypeId Base = B.addClass("Base" + std::to_string(Pl), Sk.Root,
                               /*IsAbstract=*/true);
      Skeleton::Poly Poly;
      Poly.Base = Base;
      Poly.OpSig = B.signature(OpName, 1);
      unsigned NumVariants = Params.PolyVariants == 0 ? 1
                                                      : Params.PolyVariants;
      for (unsigned V = 0; V < NumVariants; ++V) {
        TypeId C = B.addClass("Var" + std::to_string(Pl) + "_" +
                                  std::to_string(V),
                              Base);
        MethodId M = B.addMethod(C, OpName, 1);
        switch (V % 3) {
        case 0: // Identity behaviour.
          B.addReturn(M, B.formal(M, 0));
          break;
        case 1: { // Factory behaviour.
          VarId R = B.addLocal(M, "fresh");
          B.addNew(M, R, pickData(),
                   "poly" + std::to_string(Pl) + "_" + std::to_string(V) +
                       "_site");
          B.addReturn(M, R);
          break;
        }
        case 2: { // Field round-trip through this.
          FieldId Slot = B.addField("slot" + std::to_string(Pl));
          B.addStore(M, B.thisVar(M), Slot, B.formal(M, 0));
          VarId R = B.addLocal(M, "r");
          B.addLoad(M, R, B.thisVar(M), Slot);
          B.addReturn(M, R);
          break;
        }
        }
        Poly.Variants.push_back(C);
      }
      Sk.Polys.push_back(Poly);
    }
  }

  /// The bloat pattern (Section 8): Node.init(child) sets the child's
  /// parent pointer inside a nested call, and nodes also flow through a
  /// Stack container.
  void buildAstClasses() {
    Sk.NodeClass = B.addClass("Node", Sk.Root);
    FieldId Parent = B.addField("parent");

    MethodId SetParent = B.addMethod(Sk.NodeClass, "setParent", 1);
    B.addStore(SetParent, B.thisVar(SetParent), Parent,
               B.formal(SetParent, 0));
    SigId SetParentSig = B.signature("setParent", 1);

    // init(child) { child.setParent(this); } — the parent reference is
    // passed down through an invocation, as in bloat's constructors.
    MethodId Init = B.addMethod(Sk.NodeClass, "init", 1);
    B.addVirtualCall(Init, B.formal(Init, 0), SetParentSig,
                     {B.thisVar(Init)}, InvalidId, "init_link");
    Sk.NodeInitSig = B.signature("init", 1);

    MethodId GetParent = B.addMethod(Sk.NodeClass, "getParent", 0);
    VarId R = B.addLocal(GetParent, "p");
    B.addLoad(GetParent, R, B.thisVar(GetParent), Parent);
    B.addReturn(GetParent, R);
    Sk.NodeGetParentSig = B.signature("getParent", 0);

    Sk.StackClass = B.addClass("NodeStack", Sk.Root);
    FieldId Elems = B.addField("elems");
    MethodId Push = B.addMethod(Sk.StackClass, "push", 1);
    B.addStore(Push, B.thisVar(Push), Elems, B.formal(Push, 0));
    Sk.PushSig = B.signature("push", 1);
    MethodId Pop = B.addMethod(Sk.StackClass, "pop", 0);
    VarId PR = B.addLocal(Pop, "top");
    B.addLoad(Pop, PR, B.thisVar(Pop), Elems);
    B.addReturn(Pop, PR);
    Sk.PopSig = B.signature("pop", 0);
  }

  //===--- Drivers and scenarios ------------------------------------------===//

  /// A pool of Object-typed locals in one method that scenarios read from
  /// and write to, so data flows entangle across scenarios.
  struct LocalPool {
    MethodId M;
    std::vector<VarId> Vars;
  };

  VarId poolVar(LocalPool &Pool, const char *Hint) {
    // Reuse an existing local 60% of the time to create shared flows.
    if (!Pool.Vars.empty() && Rand.chancePercent(60))
      return Pool.Vars[Rand.nextBelow(Pool.Vars.size())];
    VarId V = B.addLocal(Pool.M,
                         std::string(Hint) + std::to_string(Pool.Vars.size()));
    Pool.Vars.push_back(V);
    return V;
  }

  /// A local guaranteed to hold an object (allocates a data object if the
  /// pool is empty).
  VarId pooledSource(LocalPool &Pool) {
    VarId V = poolVar(Pool, "v");
    // Always give it a definite allocation so flows are never vacuous.
    B.addNew(Pool.M, V, pickData(),
             "alloc_" + std::to_string(AllocCounter++));
    return V;
  }

  TypeId pickData() {
    return Sk.DataClasses[Rand.nextBelow(Sk.DataClasses.size())];
  }

  /// Data-class pick from a caller-supplied stream (spawn/taint material
  /// must not advance the shared stream).
  TypeId pickDataWith(Rng &R) {
    return Sk.DataClasses[R.nextBelow(Sk.DataClasses.size())];
  }

  std::string site(const char *Kind) {
    return std::string(Kind) + "_" + std::to_string(SiteCounter++);
  }

  void buildDrivers() {
    MethodId Main = B.addStaticMethod(Sk.Root, "main", 0);
    B.setMain(Main);
    unsigned NumDrivers = Params.Drivers == 0 ? 1 : Params.Drivers;
    for (unsigned D = 0; D < NumDrivers; ++D) {
      // Drivers are thin: they allocate the shared task kernels, chain
      // values through their run() methods, and route results through the
      // static library helpers. All heavy lifting happens in code shared
      // across drivers, giving it a realistic context fan-in.
      MethodId Driver =
          B.addStaticMethod(Sk.Root, "driver" + std::to_string(D), 1);
      {
        LocalPool Pool{Driver, {B.formal(Driver, 0)}};
        VarId Cur = B.formal(Driver, 0);
        // Shared kernels: a random subset (at least one) of the tasks.
        // Locals are named by the task's ordinal, not its class id — class
        // ids shift when optional class families (workers, taint fixtures)
        // are toggled, and names must not.
        bool Used = false;
        for (unsigned TI = 0; TI < Sk.Tasks.size(); ++TI) {
          const Skeleton::Task &T = Sk.Tasks[TI];
          if (Used && !Rand.chancePercent(60))
            continue;
          Used = true;
          VarId Recv = B.addLocal(Driver, "task" + std::to_string(TI));
          B.addNew(Driver, Recv, T.Class, site("task"));
          VarId Out = B.addLocal(Driver, "tout" + std::to_string(TI));
          B.addVirtualCall(Driver, Recv, T.RunSig, {Cur}, Out,
                           site("runtask"));
          Pool.Vars.push_back(Out);
          Cur = Out;
        }
        // Driver-private pattern code (single calling context).
        for (unsigned S = 0; S < Params.PrivateScenarios; ++S)
          emitScenario(Pool);
        for (unsigned S = 0; S < Params.SpawnScenarios; ++S)
          emitSpawnScenario(Driver);
        for (unsigned S = 0; S < Params.TaintScenarios; ++S)
          emitTaintScenario(Driver);
        for (unsigned L = 0; L < 2 && !Sk.Libs.empty(); ++L) {
          MethodId Lib = Sk.Libs[Rand.nextBelow(Sk.Libs.size())];
          VarId Out = B.addLocal(Driver, "libout" + std::to_string(L));
          B.addStaticCall(Driver, Lib, {Cur}, Out, site("calllib"));
          Cur = Out;
        }
        B.addReturn(Driver, Cur);
      }
      // main passes a fresh object into each driver — a context-dependent
      // seed value distinguishing driver invocations.
      VarId Seed = B.addLocal(Main, "seed" + std::to_string(D));
      B.addNew(Main, Seed, pickData(), site("seed"));
      VarId DriverOut = B.addLocal(Main, "drv" + std::to_string(D));
      B.addStaticCall(Main, Driver, {Seed}, DriverOut, site("rundrv"));
      // Invoke some drivers twice so drivers are analyzed under several
      // contexts under call-site sensitivity.
      if (Rand.chancePercent(40))
        B.addStaticCall(Main, Driver, {Seed}, InvalidId, site("rundrv"));
    }
  }

  void emitScenario(LocalPool &Pool) {
    enum { Wrapper, Factory, Container, Poly, CrossAssign, GlobalStash,
           Exception, Downcast, ArrayShuffle };
    // Weighted mix: flows through statics are deliberately rare — every
    // global load sees every global store (the method-context link is
    // severed), so a little goes a long way, as in real programs.
    unsigned Roll = static_cast<unsigned>(Rand.nextBelow(100));
    unsigned Kind;
    if (Roll < 20)
      Kind = Wrapper;
    else if (Roll < 36)
      Kind = Factory;
    else if (Roll < 56)
      Kind = Container;
    else if (Roll < 70)
      Kind = Poly;
    else if (Roll < 79)
      Kind = CrossAssign;
    else if (Roll < 84)
      Kind = GlobalStash;
    else if (Roll < 90)
      Kind = Exception;
    else if (Roll < 95)
      Kind = Downcast;
    else
      Kind = ArrayShuffle;
    switch (Kind) {
    case Downcast: {
      // got = <mixed pool value>; d = (DataK) got; — the classic downcast
      // after retrieving from an untyped container.
      VarId From = pooledSource(Pool);
      VarId To = poolVar(Pool, "cast");
      B.addCast(Pool.M, To, pickData(), From);
      break;
    }
    case ArrayShuffle: {
      // arr = new D[]; arr[*] = v; w = arr[*]; — the array base lives in
      // a dedicated local so element traffic stays per-array (reusing a
      // pool variable here would alias the element field across every
      // object the pool ever held).
      VarId Arr =
          B.addLocal(Pool.M, "arr" + std::to_string(SiteCounter));
      B.addNew(Pool.M, Arr, pickData(), site("array"));
      B.addArrayStore(Pool.M, Arr, pooledSource(Pool));
      VarId Out = poolVar(Pool, "elem");
      B.addArrayLoad(Pool.M, Out, Arr);
      break;
    }
    case GlobalStash: {
      if (Sk.Globals.empty())
        return;
      GlobalId G = Sk.Globals[Rand.nextBelow(Sk.Globals.size())];
      if (Rand.chancePercent(50)) {
        B.addGlobalStore(Pool.M, G, pooledSource(Pool));
      } else {
        VarId Out = poolVar(Pool, "cached");
        B.addGlobalLoad(Pool.M, Out, G);
      }
      break;
    }
    case Exception: {
      if (Sk.Throwers.empty())
        return;
      const auto &T = Sk.Throwers[Rand.nextBelow(Sk.Throwers.size())];
      VarId Recv = poolVar(Pool, "thr");
      B.addNew(Pool.M, Recv, T.Class, site("thrower"));
      VarId Out = poolVar(Pool, "bres");
      InvokeId I = B.addVirtualCall(Pool.M, Recv, T.BoomSig,
                                    {pooledSource(Pool)}, Out,
                                    site("callboom"));
      VarId Caught = poolVar(Pool, "caught");
      B.setCatchVar(I, Caught);
      break;
    }
    case Wrapper: {
      if (Sk.Wrappers.empty())
        return;
      const auto &W = Sk.Wrappers[Rand.nextBelow(Sk.Wrappers.size())];
      VarId Recv = poolVar(Pool, "w");
      B.addNew(Pool.M, Recv, W.Class, site("wrap"));
      VarId Arg = pooledSource(Pool);
      VarId Out = poolVar(Pool, "wres");
      B.addVirtualCall(Pool.M, Recv, W.TopSig, {Arg}, Out, site("callwrap"));
      break;
    }
    case Factory: {
      if (Sk.Factories.empty())
        return;
      const auto &F = Sk.Factories[Rand.nextBelow(Sk.Factories.size())];
      VarId Recv = poolVar(Pool, "f");
      B.addNew(Pool.M, Recv, F.Class, site("factory"));
      VarId Out1 = poolVar(Pool, "made");
      B.addVirtualCall(Pool.M, Recv, F.MakeSig, {}, Out1, site("make"));
      VarId Out2 = poolVar(Pool, "made");
      B.addVirtualCall(Pool.M, Recv, F.MakeSig, {}, Out2, site("make"));
      break;
    }
    case Container: {
      if (Sk.Containers.empty())
        return;
      const auto &C = Sk.Containers[Rand.nextBelow(Sk.Containers.size())];
      VarId Recv = poolVar(Pool, "c");
      B.addNew(Pool.M, Recv, C.Class, site("cont"));
      VarId In = pooledSource(Pool);
      B.addVirtualCall(Pool.M, Recv, C.SetSig, {In}, InvalidId,
                       site("set"));
      if (Rand.chancePercent(50))
        B.addVirtualCall(Pool.M, Recv, C.FillSig, {}, InvalidId,
                         site("fill"));
      if (Rand.chancePercent(40))
        B.addVirtualCall(Pool.M, Recv, C.RefreshSig, {}, InvalidId,
                         site("refresh"));
      VarId Out = poolVar(Pool, "got");
      B.addVirtualCall(Pool.M, Recv, C.GetSig, {}, Out, site("get"));
      break;
    }
    case Poly: {
      if (Sk.Polys.empty())
        return;
      const auto &P = Sk.Polys[Rand.nextBelow(Sk.Polys.size())];
      VarId Recv = poolVar(Pool, "b");
      // Allocate one or two variants into the same receiver variable so
      // the dispatch is genuinely polymorphic.
      TypeId V1 = P.Variants[Rand.nextBelow(P.Variants.size())];
      B.addNew(Pool.M, Recv, V1, site("poly"));
      if (P.Variants.size() > 1 && Rand.chancePercent(50)) {
        TypeId V2 = P.Variants[Rand.nextBelow(P.Variants.size())];
        B.addNew(Pool.M, Recv, V2, site("poly"));
      }
      VarId Arg = pooledSource(Pool);
      VarId Out = poolVar(Pool, "pres");
      B.addVirtualCall(Pool.M, Recv, P.OpSig, {Arg}, Out, site("callop"));
      break;
    }
    case CrossAssign: {
      VarId From = pooledSource(Pool);
      VarId To = poolVar(Pool, "x");
      B.addAssign(Pool.M, To, From);
      break;
    }
    }
  }

  /// shared = new D; w = new Worker_j; spawn w.work(shared);
  /// seen = shared.wshared; upd = new D; shared.wshared = upd;
  ///
  /// The spawner keeps touching the object it handed to the thread, so
  /// the worker's accesses and these form true race-candidate pairs.
  ///
  /// Self-contained on purpose: dedicated locals (never the shared pool),
  /// the spawn RNG stream, and a dedicated counter for "spw"-marked
  /// names, so SpawnScenarios toggles without disturbing any other fact.
  void emitSpawnScenario(MethodId M) {
    if (Sk.Workers.empty())
      return;
    unsigned N = SpawnCounter++;
    auto Tag = [N](const char *Hint) {
      return std::string(Hint) + "_" + std::to_string(N);
    };
    const auto &Wk = Sk.Workers[SpawnRand.nextBelow(Sk.Workers.size())];
    VarId Shared = B.addLocal(M, Tag("spwshared"));
    B.addNew(M, Shared, pickDataWith(SpawnRand), Tag("spwobj"));
    VarId W = B.addLocal(M, Tag("spwworker"));
    B.addNew(M, W, Wk.Class, Tag("spwalloc"));
    B.addSpawnCall(M, W, Wk.RunSig, {Shared}, Tag("spwspawn"));
    VarId Seen = B.addLocal(M, Tag("spwseen"));
    B.addLoad(M, Seen, Shared, Sk.SharedField);
    VarId Upd = B.addLocal(M, Tag("spwupd"));
    B.addNew(M, Upd, pickDataWith(SpawnRand), Tag("spwupdsite"));
    B.addStore(M, Shared, Sk.SharedField, Upd);
  }

  /// One taint scenario. The shape cycles deterministically with the
  /// global scenario ordinal, so every preset with enough drivers covers
  /// all six shapes and re-running the generator reproduces the same
  /// source/sink placements. Like spawn scenarios, emission is fully
  /// self-contained ("tnt"-marked names, taint RNG stream, no pool use).
  void emitTaintScenario(MethodId M) {
    if (Params.TaintScenarios == 0)
      return;
    unsigned N = TaintCounter++;
    auto Tag = [N](const char *Hint) {
      return std::string(Hint) + "_" + std::to_string(N);
    };
    // s = reader.tntread();  — call-site taint source (fresh receiver).
    auto NewSource = [&]() {
      VarId Rd = B.addLocal(M, Tag("tntrd"));
      B.addNew(M, Rd, Sk.TaintSourceClass, Tag("tntrdsite"));
      VarId S = B.addLocal(M, Tag("tntsec"));
      InvokeId I =
          B.addVirtualCall(M, Rd, Sk.TaintSourceSig, {}, S, Tag("tntread"));
      B.setInvokeTaint(I, TaintAnnot::Source);
      return S;
    };
    // gate.tntwrite(v);  — call-site taint sink (fresh receiver).
    auto SinkOn = [&](VarId V) {
      VarId G = B.addLocal(M, Tag("tntgate"));
      B.addNew(M, G, Sk.TaintSinkClass, Tag("tntgatesite"));
      InvokeId I = B.addVirtualCall(M, G, Sk.TaintSinkSig, {V}, InvalidId,
                                    Tag("tntwrite"));
      B.setInvokeTaint(I, TaintAnnot::Sink);
    };
    switch (N % 6) {
    case 0: {
      // Direct flow: reported under every config (true positive).
      SinkOn(NewSource());
      break;
    }
    case 1: {
      // Container mix-up: the secret goes into one box, a clean object
      // into a second box of the same class, and only the clean box is
      // drained into the sink. Context-insensitively tntput's formal
      // merges both stores across both receivers, so the sink sees the
      // secret — a false positive that per-receiver (object-sensitive)
      // contexts eliminate.
      VarId Hot = B.addLocal(M, Tag("tnthotbox"));
      B.addNew(M, Hot, Sk.TaintBoxClass, Tag("tnthotsite"));
      VarId Cold = B.addLocal(M, Tag("tntcoldbox"));
      B.addNew(M, Cold, Sk.TaintBoxClass, Tag("tntcoldsite"));
      VarId S = NewSource();
      B.addVirtualCall(M, Hot, Sk.TaintPutSig, {S}, InvalidId,
                       Tag("tntputhot"));
      VarId Clean = B.addLocal(M, Tag("tntcln"));
      B.addNew(M, Clean, pickDataWith(TaintRand), Tag("tntclnsite"));
      B.addVirtualCall(M, Cold, Sk.TaintPutSig, {Clean}, InvalidId,
                       Tag("tntputcold"));
      VarId Got = B.addLocal(M, Tag("tntgot"));
      B.addVirtualCall(M, Cold, Sk.TaintTakeSig, {}, Got, Tag("tnttake"));
      SinkOn(Got);
      break;
    }
    case 2: {
      // Sanitized flow: never reported. The cleanser's fresh-copy body
      // already keeps the secret out of the sink's points-to set; the
      // annotation additionally tells the checker to trust the result.
      VarId S = NewSource();
      VarId Cl = B.addLocal(M, Tag("tntcl"));
      B.addNew(M, Cl, Sk.TaintCleanserClass, Tag("tntclsite"));
      VarId Safe = B.addLocal(M, Tag("tntsafe"));
      InvokeId I = B.addVirtualCall(M, Cl, Sk.TaintCleanserSig, {S}, Safe,
                                    Tag("tntcleanse"));
      B.setInvokeTaint(I, TaintAnnot::Sanitizer);
      SinkOn(Safe);
      break;
    }
    case 3: {
      // Flow routed through a shared identity wrapper: a true positive
      // whose witness crosses an interprocedural identity chain.
      VarId S = NewSource();
      VarId Out = B.addLocal(M, Tag("tntwout"));
      if (!Sk.Wrappers.empty()) {
        const auto &W = Sk.Wrappers[TaintRand.nextBelow(Sk.Wrappers.size())];
        VarId Recv = B.addLocal(M, Tag("tntwrap"));
        B.addNew(M, Recv, W.Class, Tag("tntwrapsite"));
        B.addVirtualCall(M, Recv, W.TopSig, {S}, Out, Tag("tntcallwrap"));
      } else {
        B.addAssign(M, Out, S);
      }
      SinkOn(Out);
      break;
    }
    case 4: {
      // Field source: objects stored into `tntwell` become tainted and
      // are then loaded back out and sunk (true positive).
      VarId Holder = B.addLocal(M, Tag("tnthold"));
      B.addNew(M, Holder, pickDataWith(TaintRand), Tag("tntholdsite"));
      VarId Pay = B.addLocal(M, Tag("tntpay"));
      B.addNew(M, Pay, pickDataWith(TaintRand), Tag("tntpaysite"));
      B.addStore(M, Holder, Sk.TaintSourceField, Pay);
      VarId Ld = B.addLocal(M, Tag("tntld"));
      B.addLoad(M, Ld, Holder, Sk.TaintSourceField);
      SinkOn(Ld);
      break;
    }
    case 5: {
      // Field sink (storing a secret into `tntdrain` is a true positive)
      // plus a dead source: the probe's values reach no sink, so the
      // checker reports a note-severity dead-source finding for it.
      VarId S = NewSource();
      VarId Holder = B.addLocal(M, Tag("tntdhold"));
      B.addNew(M, Holder, pickDataWith(TaintRand), Tag("tntdholdsite"));
      B.addStore(M, Holder, Sk.TaintSinkField, S);
      VarId Pb = B.addLocal(M, Tag("tntpb"));
      B.addNew(M, Pb, Sk.TaintProbeClass, Tag("tntpbsite"));
      VarId Dead = B.addLocal(M, Tag("tntdead"));
      InvokeId I = B.addVirtualCall(M, Pb, Sk.TaintProbeSig, {}, Dead,
                                    Tag("tntprobe"));
      B.setInvokeTaint(I, TaintAnnot::Source);
      VarId Dead2 = B.addLocal(M, Tag("tntdead2"));
      B.addAssign(M, Dead2, Dead);
      break;
    }
    }
  }

  void emitAstScenario(LocalPool &Pool) {
    // parent = new Node; child = new Node;
    // parent.init(child);            // child.parent = parent, nested call
    // stack.push(parent);            // second flow path for parent
    // top = stack.pop(); p = top.getParent();
    VarId ParentV = poolVar(Pool, "nparent");
    B.addNew(Pool.M, ParentV, Sk.NodeClass, site("node"));
    VarId ChildV = poolVar(Pool, "nchild");
    B.addNew(Pool.M, ChildV, Sk.NodeClass, site("node"));
    B.addVirtualCall(Pool.M, ParentV, Sk.NodeInitSig, {ChildV}, InvalidId,
                     site("init"));
    VarId Stk = poolVar(Pool, "stk");
    B.addNew(Pool.M, Stk, Sk.StackClass, site("stack"));
    B.addVirtualCall(Pool.M, Stk, Sk.PushSig, {ParentV}, InvalidId,
                     site("push"));
    VarId Top = poolVar(Pool, "top");
    B.addVirtualCall(Pool.M, Stk, Sk.PopSig, {}, Top, site("pop"));
    VarId Par = poolVar(Pool, "gotparent");
    B.addVirtualCall(Pool.M, Top, Sk.NodeGetParentSig, {}, Par,
                     site("getparent"));
  }

  WorkloadParams Params;
  Rng Rand;
  // Dedicated streams and counters for spawn/taint material (see the
  // constructor comment).
  Rng SpawnRand;
  Rng TaintRand;
  Builder B;
  Skeleton Sk;
  unsigned SiteCounter = 0;
  unsigned AllocCounter = 0;
  unsigned SpawnCounter = 0;
  unsigned TaintCounter = 0;
};

} // namespace

Program workload::generate(const WorkloadParams &Params) {
  return Synthesizer(Params).run();
}
