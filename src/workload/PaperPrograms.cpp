//===- workload/PaperPrograms.cpp - The paper's example programs ----------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "workload/PaperPrograms.h"

#include "ir/Builder.h"

using namespace ctp;
using namespace ctp::workload;
using namespace ctp::ir;

Figure1Program workload::figure1() {
  Builder B;
  TypeId Object = B.addClass("Object");
  TypeId T = B.addClass("T", Object);
  FieldId F = B.addField("f");

  // Object id(Object p) { return p; }
  MethodId Id = B.addMethod(T, "id", 1);
  B.addReturn(Id, B.formal(Id, 0));
  SigId IdSig = B.signature("id", 1);

  // Object id2(Object q) { Object t = id(q); /*c1*/ return t; }
  MethodId Id2 = B.addMethod(T, "id2", 1);
  VarId TmpT = B.addLocal(Id2, "t");
  B.addVirtualCall(Id2, B.thisVar(Id2), IdSig, {B.formal(Id2, 0)}, TmpT,
                   "c1");
  B.addReturn(Id2, TmpT);
  SigId Id2Sig = B.signature("id2", 1);

  // Object m() { return new T(); /*m1*/ }
  MethodId M = B.addMethod(T, "m", 0);
  VarId Fresh = B.addLocal(M, "fresh");
  HeapId M1 = B.addNew(M, Fresh, T, "m1");
  B.addReturn(M, Fresh);
  SigId MSig = B.signature("m", 0);

  MethodId Main = B.addStaticMethod(Object, "main", 0);
  B.setMain(Main);
  Figure1Program Out;
  Out.X = B.addLocal(Main, "x");
  Out.H1 = B.addNew(Main, Out.X, Object, "h1");
  Out.Y = B.addLocal(Main, "y");
  Out.H2 = B.addNew(Main, Out.Y, Object, "h2");
  VarId R = B.addLocal(Main, "r");
  Out.H3 = B.addNew(Main, R, T, "h3");
  Out.X1 = B.addLocal(Main, "x1");
  B.addVirtualCall(Main, R, IdSig, {Out.X}, Out.X1, "c2");
  Out.Y1 = B.addLocal(Main, "y1");
  B.addVirtualCall(Main, R, IdSig, {Out.Y}, Out.Y1, "c3");
  VarId S = B.addLocal(Main, "s");
  Out.H4 = B.addNew(Main, S, T, "h4");
  VarId Tv = B.addLocal(Main, "t");
  Out.H5 = B.addNew(Main, Tv, T, "h5");
  Out.X2 = B.addLocal(Main, "x2");
  B.addVirtualCall(Main, S, Id2Sig, {Out.X}, Out.X2, "c4");
  Out.Y2 = B.addLocal(Main, "y2");
  B.addVirtualCall(Main, Tv, Id2Sig, {Out.Y}, Out.Y2, "c5");
  Out.A = B.addLocal(Main, "a");
  B.addVirtualCall(Main, S, MSig, {}, Out.A, "c6");
  Out.B = B.addLocal(Main, "b");
  B.addVirtualCall(Main, Tv, MSig, {}, Out.B, "c7");
  B.addStore(Main, Out.A, F, Out.X); // a.f = x;
  Out.Z = B.addLocal(Main, "z");
  B.addLoad(Main, Out.Z, Out.B, F); // z = b.f;
  Out.M1 = M1;

  Out.P = B.take();
  return Out;
}

Figure5Program workload::figure5() {
  Builder B;
  TypeId Object = B.addClass("Object");
  TypeId T = B.addClass("T", Object);

  // static T id(T p) { return p; }
  MethodId Id = B.addStaticMethod(T, "id", 1);
  B.addReturn(Id, B.formal(Id, 0));

  // static T m() { T h = new T(); /*h1*/ T r = id(h); /*id1*/ return r; }
  MethodId M = B.addStaticMethod(T, "m", 0);
  Figure5Program Out;
  Out.H = B.addLocal(M, "h");
  Out.H1 = B.addNew(M, Out.H, T, "h1");
  Out.R = B.addLocal(M, "r");
  Out.Id1 = B.addStaticCall(M, Id, {Out.H}, Out.R, "id1");
  B.addReturn(M, Out.R);
  Out.Pvar = B.formal(Id, 0);

  MethodId Main = B.addStaticMethod(Object, "main", 0);
  B.setMain(Main);
  Out.X = B.addLocal(Main, "x");
  Out.M1 = B.addStaticCall(Main, M, {}, Out.X, "m1");
  Out.Y = B.addLocal(Main, "y");
  Out.M2 = B.addStaticCall(Main, M, {}, Out.Y, "m2");

  Out.P = B.take();
  return Out;
}

Figure7Program workload::figure7() {
  Builder B;
  TypeId Object = B.addClass("Object");
  TypeId T = B.addClass("T", Object);
  FieldId F = B.addField("f");

  // void m() { Object v = new Object(); /*h1*/ if(...) { f=v; v=f; } }
  // Field accesses on `this` (the paper writes the unqualified field).
  MethodId M = B.addMethod(T, "m", 0);
  Figure7Program Out;
  Out.V = B.addLocal(M, "v");
  Out.H1 = B.addNew(M, Out.V, Object, "h1");
  B.addStore(M, B.thisVar(M), F, Out.V); // this.f = v;
  B.addLoad(M, Out.V, B.thisVar(M), F);  // v = this.f;
  SigId MSig = B.signature("m", 0);

  MethodId Main = B.addStaticMethod(Object, "main", 0);
  B.setMain(Main);
  Out.T = B.addLocal(Main, "t");
  Out.H2 = B.addNew(Main, Out.T, T, "h2");
  Out.C1 = B.addVirtualCall(Main, Out.T, MSig, {}, InvalidId, "c1");

  Out.P = B.take();
  return Out;
}
