//===- workload/Presets.cpp - DaCapo-shaped benchmark presets -------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "workload/Presets.h"

#include <cassert>

using namespace ctp;
using namespace ctp::workload;

std::vector<std::string> workload::presetNames() {
  return {"antlr", "bloat", "chart", "eclipse", "luindex", "pmd", "xalan"};
}

WorkloadParams workload::presetParams(const std::string &Name) {
  WorkloadParams P;
  P.Name = Name;
  if (Name == "antlr") {
    // Wrapper-heavy (parser actions delegate through helper chains).
    P.DataClasses = 8;
    P.WrapperChains = 6;
    P.WrapperDepth = 4;
    P.Factories = 3;
    P.Containers = 4;
    P.PolyBases = 2;
    P.PolyVariants = 4;
    P.Drivers = 8;
    P.Scenarios = 12;
    P.TaskClasses = 3;
    P.LibMethods = 5;
    P.PrivateScenarios = 16;
    P.GlobalFields = 5;
    P.WorkerClasses = 2;
    P.SpawnScenarios = 2;
    P.TaintScenarios = 2;
    P.Seed = 0xA17;
    return P;
  }
  if (Name == "bloat") {
    // AST-dominated: heavy parent-pointer + stack pattern (Section 8's
    // subsuming-facts discussion).
    P.DataClasses = 6;
    P.WrapperChains = 3;
    P.WrapperDepth = 2;
    P.Factories = 2;
    P.Containers = 4;
    P.PolyBases = 2;
    P.PolyVariants = 4;
    P.Drivers = 8;
    P.Scenarios = 6;
    P.AstScenarios = 8;
    P.TaskClasses = 3;
    P.LibMethods = 4;
    P.PrivateScenarios = 10;
    P.GlobalFields = 4;
    P.WorkerClasses = 2;
    P.SpawnScenarios = 1;
    P.TaintScenarios = 2;
    P.Seed = 0xB10;
    return P;
  }
  if (Name == "chart") {
    // Largest: factory/container heavy (renderers and datasets).
    P.DataClasses = 10;
    P.WrapperChains = 5;
    P.WrapperDepth = 2;
    P.Factories = 8;
    P.Containers = 8;
    P.PolyBases = 3;
    P.PolyVariants = 4;
    P.Drivers = 9;
    P.Scenarios = 12;
    P.TaskClasses = 4;
    P.LibMethods = 6;
    P.PrivateScenarios = 16;
    P.GlobalFields = 6;
    P.WorkerClasses = 3;
    P.SpawnScenarios = 2;
    P.TaintScenarios = 2;
    P.Seed = 0xC4A;
    return P;
  }
  if (Name == "eclipse") {
    // Polymorphism-heavy (plugin interfaces).
    P.DataClasses = 8;
    P.WrapperChains = 4;
    P.WrapperDepth = 2;
    P.Factories = 4;
    P.Containers = 5;
    P.PolyBases = 5;
    P.PolyVariants = 5;
    P.Drivers = 8;
    P.Scenarios = 10;
    P.TaskClasses = 4;
    P.LibMethods = 5;
    P.PrivateScenarios = 14;
    P.GlobalFields = 5;
    P.WorkerClasses = 3;
    P.SpawnScenarios = 2;
    P.TaintScenarios = 2;
    P.Seed = 0xEC1;
    return P;
  }
  if (Name == "luindex") {
    // Smallest benchmark.
    P.DataClasses = 5;
    P.WrapperChains = 3;
    P.WrapperDepth = 2;
    P.Factories = 2;
    P.Containers = 3;
    P.PolyBases = 2;
    P.PolyVariants = 3;
    P.Drivers = 5;
    P.Scenarios = 6;
    P.TaskClasses = 2;
    P.LibMethods = 3;
    P.PrivateScenarios = 9;
    P.GlobalFields = 3;
    P.WorkerClasses = 1;
    P.SpawnScenarios = 1;
    P.TaintScenarios = 2;
    P.Seed = 0x1DE;
    return P;
  }
  if (Name == "pmd") {
    P.DataClasses = 6;
    P.WrapperChains = 4;
    P.WrapperDepth = 2;
    P.Factories = 3;
    P.Containers = 4;
    P.PolyBases = 3;
    P.PolyVariants = 3;
    P.Drivers = 6;
    P.Scenarios = 8;
    P.TaskClasses = 3;
    P.LibMethods = 4;
    P.PrivateScenarios = 12;
    P.GlobalFields = 4;
    P.WorkerClasses = 2;
    P.SpawnScenarios = 2;
    P.TaintScenarios = 2;
    P.Seed = 0x9DD;
    return P;
  }
  if (Name == "xalan") {
    // Container-heavy (DOM tables).
    P.DataClasses = 7;
    P.WrapperChains = 4;
    P.WrapperDepth = 3;
    P.Factories = 4;
    P.Containers = 7;
    P.PolyBases = 2;
    P.PolyVariants = 4;
    P.Drivers = 7;
    P.Scenarios = 10;
    P.TaskClasses = 3;
    P.LibMethods = 5;
    P.PrivateScenarios = 14;
    P.GlobalFields = 5;
    P.WorkerClasses = 2;
    P.SpawnScenarios = 2;
    P.TaintScenarios = 2;
    P.Seed = 0x8A1;
    return P;
  }
  assert(false && "unknown workload preset");
  return P;
}

ir::Program workload::generatePreset(const std::string &Name) {
  return generate(presetParams(Name));
}
