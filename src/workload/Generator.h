//===- workload/Generator.h - Synthetic program synthesis ------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthesizer of Java-like programs that exercise the
/// context-sensitivity patterns the paper's evaluation hinges on:
///
///  * identity-wrapper chains (Figure 1's id/id2) — separate k=1 from k=2
///    precision and produce the entry/exit cancellations transformer
///    strings excel at;
///  * factory methods (Figure 1's m()) — require heap contexts ("+H");
///  * containers with set/get through `this` fields — the object-
///    sensitivity sweet spot;
///  * polymorphic hierarchies — on-the-fly call-graph fan-out;
///  * the bloat AST pattern (Section 8): parent-field linking inside a
///    method invoked from the allocator plus a stack push of the same
///    node, which creates points-to facts reaching a variable through
///    multiple data-flow paths and hence subsuming transformer strings.
///
/// Generation is a pure function of WorkloadParams (SplitMix64-seeded), so
/// benchmarks and property tests are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_WORKLOAD_GENERATOR_H
#define CTP_WORKLOAD_GENERATOR_H

#include "ir/Ir.h"

#include <cstdint>
#include <string>

namespace ctp {
namespace workload {

/// Shape and scale parameters of one synthetic program.
struct WorkloadParams {
  std::string Name = "synthetic";
  /// Number of plain data classes (allocation payloads).
  unsigned DataClasses = 6;
  /// Identity-wrapper classes; each has a chain of WrapperDepth methods
  /// where level k+1 forwards to level k.
  unsigned WrapperChains = 3;
  unsigned WrapperDepth = 2;
  /// Factory classes, each with a make() returning a fresh object.
  unsigned Factories = 3;
  /// Container classes with set/get through an instance field.
  unsigned Containers = 3;
  /// Polymorphic hierarchies: a base signature overridden by
  /// PolyVariants subclasses.
  unsigned PolyBases = 2;
  unsigned PolyVariants = 3;
  /// Shared static library helpers called from every driver; their
  /// context-independent bodies are where the transformer abstraction's
  /// compression shows (reachable under many contexts).
  unsigned LibMethods = 4;
  /// Shared task-kernel classes; every driver allocates every task class
  /// and invokes its run() method, which contains the Scenarios patterns.
  unsigned TaskClasses = 3;
  /// Driver methods invoked from main. Each allocates a subset of the
  /// task kernels (whose run() bodies hold Scenarios shared patterns) and
  /// additionally emits PrivateScenarios patterns directly into its own
  /// body — code analyzed under only one or two contexts, which dilutes
  /// the transformer abstraction's savings the way application-private
  /// code does in real programs.
  unsigned Drivers = 4;
  unsigned Scenarios = 6;
  unsigned PrivateScenarios = 6;
  /// Strength of the bloat-style AST/parent-pointer pattern (number of
  /// node-linking scenarios); 0 disables it.
  unsigned AstScenarios = 0;
  /// Static/global fields used as cross-driver caches (the paper's
  /// implementation handles static fields; Figure 3 elides them).
  unsigned GlobalFields = 2;
  /// Classes whose methods throw exception objects caught at call sites.
  unsigned ThrowerClasses = 2;
  /// Thread-body classes (`Worker_j.work(p)`), the targets of spawn
  /// scenarios. Worker bodies store/load a shared field of the argument,
  /// capture it into the worker object, occasionally publish it through a
  /// global, and also make a purely thread-local allocation — the shapes
  /// the escape and race-candidate checkers classify.
  unsigned WorkerClasses = 0;
  /// Thread-spawn scenarios per driver: allocate a worker, `spawn`-invoke
  /// its run signature with a fresh shared object, then read AND write
  /// the same field of that object from the spawning driver (a genuine
  /// race-candidate pair). 0 disables threading.
  ///
  /// Spawn and taint scenarios are emitted from dedicated RNG streams and
  /// dedicated site/name counters, and never touch the shared local pool:
  /// toggling SpawnScenarios/WorkerClasses or TaintScenarios changes only
  /// entities whose names carry the "spw"/"work"/"tnt" markers — every
  /// other generated fact is byte-identical, so name-based fact
  /// fingerprints of the rest of the program are stable across toggles.
  unsigned SpawnScenarios = 0;
  /// Taint scenarios per driver. Emission cycles deterministically through
  /// six source-to-sink flow shapes: a direct flow (reported under every
  /// config), a two-container mix-up (a false positive under the
  /// insensitive config that object sensitivity kills), a sanitized flow
  /// (never reported), a flow routed through a shared identity wrapper, a
  /// tainted-field flow, and a sink-field store plus a dead source whose
  /// values reach no sink. 0 disables the taint surface entirely: no
  /// source/sink/sanitizer classes are built and no taint annotations are
  /// emitted.
  unsigned TaintScenarios = 0;
  std::uint64_t Seed = 1;
};

/// Synthesizes a validated ir::Program from \p Params.
ir::Program generate(const WorkloadParams &Params);

} // namespace workload
} // namespace ctp

#endif // CTP_WORKLOAD_GENERATOR_H
