//===- workload/Presets.h - DaCapo-shaped benchmark presets -----*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named workload presets standing in for the seven DaCapo 2006 benchmarks
/// of Figure 6 (antlr, bloat, chart, eclipse, luindex, pmd, xalan; jython,
/// hsqldb and lusearch are excluded exactly as in the paper). The presets
/// differ in scale and in pattern mix the way the paper describes the
/// benchmarks behaving — e.g. the bloat preset is dominated by the AST
/// parent-pointer + stack pattern that produces subsuming facts.
///
/// These are synthetic stand-ins: absolute fact counts will not match the
/// paper's DaCapo numbers, but the relative behaviour of the two
/// abstractions across configurations is exercised by the same mechanisms.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_WORKLOAD_PRESETS_H
#define CTP_WORKLOAD_PRESETS_H

#include "workload/Generator.h"

#include <string>
#include <vector>

namespace ctp {
namespace workload {

/// Names of all presets, in Figure 6 order.
std::vector<std::string> presetNames();

/// Parameters for the named preset; asserts on unknown names.
WorkloadParams presetParams(const std::string &Name);

/// Convenience: generate the named preset program.
ir::Program generatePreset(const std::string &Name);

} // namespace workload
} // namespace ctp

#endif // CTP_WORKLOAD_PRESETS_H
