//===- datalog/Relation.cpp - Tuples and indexed relations ----------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "datalog/Relation.h"

using namespace ctp;
using namespace ctp::datalog;

const std::vector<std::uint32_t> Relation::EmptyRows = {};

Relation::Relation(std::string Name, unsigned Arity)
    : Name(std::move(Name)), Arity(Arity) {
  assert(Arity > 0 && Arity <= MaxArity && "unsupported arity");
}

Tuple Relation::project(const Tuple &T, std::uint32_t Mask) {
  Tuple Key;
  for (unsigned I = 0; I < T.N; ++I)
    if (Mask & (1u << I))
      Key.V[Key.N++] = T.V[I];
  return Key;
}

bool Relation::insert(const Tuple &T) {
  assert(T.N == Arity && "arity mismatch on insert");
  if (!Set.insert(T).second)
    return false;
  std::uint32_t RowIdx = static_cast<std::uint32_t>(Rows.size());
  Rows.push_back(T);
  for (auto &[Mask, Index] : Indices)
    Index[project(T, Mask)].push_back(RowIdx);
  return true;
}

void Relation::ensureIndex(std::uint32_t Mask) {
  assert(Mask != 0 && "empty index mask");
  if (Indices.count(Mask))
    return;
  auto &Index = Indices[Mask];
  for (std::uint32_t I = 0; I < Rows.size(); ++I)
    Index[project(Rows[I], Mask)].push_back(I);
}

const std::vector<std::uint32_t> &Relation::probe(std::uint32_t Mask,
                                                  const Tuple &Key) const {
  auto MaskIt = Indices.find(Mask);
  assert(MaskIt != Indices.end() && "probe without index");
  auto It = MaskIt->second.find(Key);
  if (It == MaskIt->second.end())
    return EmptyRows;
  return It->second;
}
