//===- datalog/Engine.h - Semi-naive Datalog evaluation ---------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small but genuine Datalog engine: rules over indexed relations with
/// semi-naive (delta-driven) bottom-up evaluation and support for builtin
/// functors. The paper's pipeline instantiates the parameterized deduction
/// rules into "plain Datalog" and feeds a Datalog engine; this module is
/// that back-end, with comp/inv/merge/record/target supplied as builtins
/// over interned transformation ids (the moral equivalent of the paper's
/// inlined, configuration-specialized clauses — see Section 7).
///
/// Rules have the form
///   Head(t...) :- Atom1(t...), ..., AtomN(t...), builtin1, ..., builtinK.
/// Atoms are joined left to right with automatically created indices on
/// the columns bound so far. Builtins run after the atoms, in order; each
/// reads bound variables and either binds a fresh output variable or
/// merely tests (failing builtins abort the derivation, which is how ⊥
/// compositions are filtered).
///
//===----------------------------------------------------------------------===//

#ifndef CTP_DATALOG_ENGINE_H
#define CTP_DATALOG_ENGINE_H

#include "datalog/Relation.h"
#include "support/Budget.h"

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace ctp {
namespace datalog {

/// Index of a variable within a rule's environment.
using VarIdx = std::uint32_t;

/// One argument position of an atom: either a rule variable or a constant.
struct Term {
  bool IsVar;
  Value X; ///< Variable index or constant value.

  static Term var(VarIdx V) { return {true, V}; }
  static Term constant(Value C) { return {false, C}; }
};

/// A relational literal.
struct Atom {
  std::uint32_t Rel; ///< Relation id within the program.
  std::vector<Term> Args;
};

/// A builtin functor call. Inputs are read from the environment; if
/// Output is set, the functor's result is bound to it (the functor fails
/// the derivation by returning nullopt). A functor with no output acts as
/// a filter via the same convention (any value / nullopt).
struct BuiltinCall {
  /// Evaluated with the input values in order.
  std::function<std::optional<Value>(const std::vector<Value> &)> Fn;
  std::vector<VarIdx> Inputs;
  std::optional<VarIdx> Output;
  std::string Name; ///< For diagnostics.
};

/// Head :- Body, Builtins.
struct Rule {
  Atom Head;
  std::vector<Atom> Body;
  std::vector<BuiltinCall> Builtins;
  std::uint32_t NumVars = 0;
};

/// What one evaluation run did and why it stopped. With an unlimited
/// budget Term is always Converged; a budget-truncated run leaves every
/// relation holding a sound subset of the converged fixpoint.
struct RunStats {
  TerminationReason Term = TerminationReason::Converged;
  /// Semi-naive rounds completed.
  std::size_t Rounds = 0;
  /// Emitted-but-uninserted head tuples plus undrained delta tuples at
  /// the moment evaluation stopped; 0 at a fixpoint.
  std::size_t PendingWork = 0;
  /// Derived tuples inserted across all IDB relations.
  std::size_t DerivedTuples = 0;
};

/// A Datalog program: relations + rules, evaluated semi-naively.
class Program {
public:
  /// Declares a relation; \returns its id.
  std::uint32_t addRelation(const std::string &Name, unsigned Arity);

  /// Adds an input (EDB) fact. Must be called before run().
  void addFact(std::uint32_t Rel, const Tuple &T);

  /// Adds a rule. Head relations become derived (IDB).
  void addRule(Rule R);

  /// Runs to fixpoint — or until \p Budget is exhausted, in which case
  /// the relations hold the partial derivation so far. May be called
  /// once. Budget exhaustion is polled at rule-firing granularity.
  RunStats run(const BudgetSpec &Budget = BudgetSpec());

  //===--- Checkpoint / resume (analysis/Checkpoint.h) --------------------===//
  //
  // The engine can only checkpoint at semi-naive round boundaries: after
  // a drain the emitted queue is empty and each derived relation's delta
  // is exactly the suffix of rows appended by that drain, so (rows,
  // delta-start) per relation is a complete, consistent work-state
  // encoding. Mid-join state (partially evaluated rules, undrained
  // emissions) is never captured — a budget trip mid-round resumes from
  // the last boundary.

  /// A read-only view of the engine state at a round boundary, handed to
  /// the checkpoint hook. Pointers refer into live engine state and are
  /// only valid during the hook call.
  struct CheckpointView {
    struct RelState {
      std::uint32_t Rel;
      const std::vector<Tuple> *Rows;
      /// Rows[DeltaStart..] form the not-yet-joined delta.
      std::size_t DeltaStart;
    };
    std::vector<RelState> Derived;
    std::size_t Rounds = 0;
    std::size_t DerivedTuples = 0;
    std::size_t Derivations = 0;
  };

  /// Installs \p Hook, called at round boundaries. \p EveryDerivations
  /// throttles calls: 0 fires at every boundary, N fires at the first
  /// boundary at least N derivations after the previous call.
  void setCheckpointHook(std::uint64_t EveryDerivations,
                         std::function<void(const CheckpointView &)> Hook) {
    CkptEvery = EveryDerivations;
    CkptHook = std::move(Hook);
  }

  /// Pre-seeds derived relation \p Rel from a snapshot: inserts \p Rows
  /// in order (duplicates of already-added facts — the pre-seeded entry
  /// reach tuples — are deduplicated) and remembers Rows[DeltaStart..] as
  /// the delta to resume from. Must be called after rules are added and
  /// before run(); run() then skips round 0 and continues the fixpoint
  /// from the restored deltas.
  void restoreDerived(std::uint32_t Rel, const std::vector<Tuple> &Rows,
                      std::size_t DeltaStart);

  /// Restores the cumulative progress counters of the run that wrote the
  /// snapshot, so RunStats continue seamlessly across the resume.
  void restoreCounters(std::size_t Rounds, std::size_t DerivedTuples,
                       std::size_t Derivations);

  const Relation &relation(std::uint32_t Rel) const {
    return Relations[Rel];
  }
  std::uint32_t relationId(const std::string &Name) const;

  /// Total number of rule firings that produced a (possibly duplicate)
  /// head tuple; a rough work measure for the ablation benchmark.
  std::size_t numDerivations() const { return Derivations; }

private:
  struct CompiledAtom {
    std::uint32_t Rel;
    std::vector<Term> Args;
    std::uint32_t IndexMask; ///< Columns bound when this atom is joined.
  };
  struct CompiledRule {
    Atom Head;
    std::vector<CompiledAtom> Body;
    std::vector<BuiltinCall> Builtins;
    std::uint32_t NumVars;
    /// Which body position scans the delta in this variant.
    std::uint32_t DeltaPos;
  };

  void compileRule(const Rule &R);
  /// Joins \p CR with atom DeltaPos restricted to \p DeltaRows, emitting
  /// head tuples into \p Out.
  void evaluate(const CompiledRule &CR,
                const std::vector<Tuple> &DeltaRows,
                std::vector<std::pair<std::uint32_t, Tuple>> &Out);
  void joinFrom(const CompiledRule &CR, unsigned Pos,
                std::vector<std::optional<Value>> &Env,
                const std::vector<Tuple> &DeltaRows,
                std::vector<std::pair<std::uint32_t, Tuple>> &Out);
  void finishRule(const CompiledRule &CR,
                  std::vector<std::optional<Value>> &Env,
                  std::vector<std::pair<std::uint32_t, Tuple>> &Out);
  bool matchAtom(const std::vector<Term> &Args, const Tuple &T,
                 std::vector<std::optional<Value>> &Env,
                 std::vector<VarIdx> &Bound);

  void maybeCheckpoint(const RunStats &S,
                       const std::vector<std::vector<Tuple>> &Delta);

  std::vector<Relation> Relations;
  std::vector<std::string> RelNames;
  std::vector<bool> IsDerived;
  std::vector<CompiledRule> CompiledRules;
  std::vector<Rule> Rules;
  std::size_t Derivations = 0;
  bool HasRun = false;
  // Checkpoint/resume state.
  std::uint64_t CkptEvery = 0;
  std::function<void(const CheckpointView &)> CkptHook;
  std::uint64_t CkptLast = 0;
  bool Resumed = false;
  std::vector<std::vector<Tuple>> RestoredDelta;
  std::size_t RestoredRounds = 0;
  std::size_t RestoredDerivedTuples = 0;
  /// Set when the budget meter trips mid-join; unwinds the evaluation
  /// without firing further rules.
  bool Stopped = false;
  BudgetMeter Meter;
};

} // namespace datalog
} // namespace ctp

#endif // CTP_DATALOG_ENGINE_H
