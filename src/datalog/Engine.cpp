//===- datalog/Engine.cpp - Semi-naive Datalog evaluation -----------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "datalog/Engine.h"

#include <cassert>

using namespace ctp;
using namespace ctp::datalog;

std::uint32_t Program::addRelation(const std::string &Name, unsigned Arity) {
  assert(!HasRun && "program already evaluated");
  Relations.emplace_back(Name, Arity);
  RelNames.push_back(Name);
  IsDerived.push_back(false);
  return static_cast<std::uint32_t>(Relations.size() - 1);
}

void Program::addFact(std::uint32_t Rel, const Tuple &T) {
  assert(!HasRun && "program already evaluated");
  Relations[Rel].insert(T);
}

void Program::addRule(Rule R) {
  assert(!HasRun && "program already evaluated");
  IsDerived[R.Head.Rel] = true;
  Rules.push_back(std::move(R));
}

void Program::restoreDerived(std::uint32_t Rel,
                             const std::vector<Tuple> &Rows,
                             std::size_t DeltaStart) {
  assert(!HasRun && "program already evaluated");
  assert(IsDerived[Rel] && "restoring a relation no rule derives");
  assert(DeltaStart <= Rows.size() && "delta start past the row count");
  if (RestoredDelta.size() < Relations.size())
    RestoredDelta.resize(Relations.size());
  for (std::size_t I = 0; I < Rows.size(); ++I) {
    Relations[Rel].insert(Rows[I]);
    if (I >= DeltaStart)
      RestoredDelta[Rel].push_back(Rows[I]);
  }
  Resumed = true;
}

void Program::restoreCounters(std::size_t Rounds, std::size_t DerivedTuples,
                              std::size_t NumDerivations) {
  assert(!HasRun && "program already evaluated");
  RestoredRounds = Rounds;
  RestoredDerivedTuples = DerivedTuples;
  Derivations = NumDerivations;
  Resumed = true;
}

std::uint32_t Program::relationId(const std::string &Name) const {
  for (std::uint32_t I = 0; I < RelNames.size(); ++I)
    if (RelNames[I] == Name)
      return I;
  assert(false && "unknown relation name");
  return UINT32_MAX;
}

namespace {

constexpr std::uint32_t NoDelta = UINT32_MAX;

} // namespace

void Program::compileRule(const Rule &R) {
  // One variant per body position over a derived relation (the delta
  // position), plus — for rules with no derived body atom — a single
  // variant evaluated once over the initial facts.
  std::vector<std::uint32_t> DeltaPositions;
  for (std::uint32_t P = 0; P < R.Body.size(); ++P)
    if (IsDerived[R.Body[P].Rel])
      DeltaPositions.push_back(P);
  bool PureInput = DeltaPositions.empty();
  if (PureInput)
    DeltaPositions.push_back(NoDelta);

  for (std::uint32_t DeltaPos : DeltaPositions) {
    CompiledRule CR;
    CR.Head = R.Head;
    CR.Builtins = R.Builtins;
    CR.NumVars = R.NumVars;
    CR.DeltaPos = DeltaPos;

    // Atom order: the delta atom first (it is scanned, not probed), then
    // greedily the remaining atom with the most columns bound so far, so
    // each join step probes an index instead of scanning. Written order
    // breaks ties, which keeps plans deterministic.
    std::vector<std::uint32_t> Order;
    if (DeltaPos != NoDelta)
      Order.push_back(DeltaPos);
    std::vector<std::uint32_t> Remaining;
    for (std::uint32_t P = 0; P < R.Body.size(); ++P)
      if (P != DeltaPos)
        Remaining.push_back(P);
    std::vector<bool> Planned(R.NumVars, false);
    auto BindVars = [&](std::uint32_t P) {
      for (const Term &T : R.Body[P].Args)
        if (T.IsVar)
          Planned[T.X] = true;
    };
    if (DeltaPos != NoDelta)
      BindVars(DeltaPos);
    while (!Remaining.empty()) {
      std::size_t Best = 0;
      int BestScore = -1;
      for (std::size_t I = 0; I < Remaining.size(); ++I) {
        int Score = 0;
        for (const Term &T : R.Body[Remaining[I]].Args)
          if (!T.IsVar || Planned[T.X])
            ++Score;
        if (Score > BestScore) {
          BestScore = Score;
          Best = I;
        }
      }
      std::uint32_t P = Remaining[Best];
      Order.push_back(P);
      BindVars(P);
      Remaining.erase(Remaining.begin() +
                      static_cast<std::ptrdiff_t>(Best));
    }

    std::vector<bool> BoundVar(R.NumVars, false);
    for (std::uint32_t P : Order) {
      const Atom &A = R.Body[P];
      CompiledAtom CA;
      CA.Rel = A.Rel;
      CA.Args = A.Args;
      CA.IndexMask = 0;
      for (std::uint32_t C = 0; C < A.Args.size(); ++C) {
        const Term &T = A.Args[C];
        if (!T.IsVar || BoundVar[T.X])
          CA.IndexMask |= 1u << C;
      }
      for (const Term &T : A.Args)
        if (T.IsVar)
          BoundVar[T.X] = true;
      // The first atom of a delta variant is scanned; clear its mask so no
      // index is created for it.
      if (!CR.Body.empty() || DeltaPos == NoDelta) {
        if (CA.IndexMask != 0)
          Relations[CA.Rel].ensureIndex(CA.IndexMask);
      } else {
        CA.IndexMask = 0;
      }
      CR.Body.push_back(CA);
    }
    CompiledRules.push_back(std::move(CR));
  }
}

bool Program::matchAtom(const std::vector<Term> &Args, const Tuple &T,
                        std::vector<std::optional<Value>> &Env,
                        std::vector<VarIdx> &Bound) {
  assert(Args.size() == T.N && "atom arity mismatch");
  for (std::uint32_t C = 0; C < Args.size(); ++C) {
    const Term &A = Args[C];
    if (!A.IsVar) {
      if (A.X != T.V[C])
        return false;
      continue;
    }
    if (Env[A.X]) {
      if (*Env[A.X] != T.V[C])
        return false;
      continue;
    }
    Env[A.X] = T.V[C];
    Bound.push_back(A.X);
  }
  return true;
}

void Program::finishRule(const CompiledRule &CR,
                         std::vector<std::optional<Value>> &Env,
                         std::vector<std::pair<std::uint32_t, Tuple>> &Out) {
  // Run builtins; each may bind one more variable or veto the derivation.
  std::vector<VarIdx> Bound;
  bool Ok = true;
  std::vector<Value> Inputs;
  for (const BuiltinCall &B : CR.Builtins) {
    Inputs.clear();
    for (VarIdx V : B.Inputs) {
      assert(Env[V] && "builtin input not bound");
      Inputs.push_back(*Env[V]);
    }
    std::optional<Value> R = B.Fn(Inputs);
    if (!R) {
      Ok = false;
      break;
    }
    if (B.Output) {
      assert(!Env[*B.Output] && "builtin output already bound");
      Env[*B.Output] = *R;
      Bound.push_back(*B.Output);
    }
  }
  if (Ok) {
    Tuple Head;
    for (const Term &T : CR.Head.Args) {
      Value V;
      if (T.IsVar) {
        assert(Env[T.X] && "head variable not bound");
        V = *Env[T.X];
      } else {
        V = T.X;
      }
      Head.V[Head.N++] = V;
    }
    ++Derivations;
    Out.push_back({CR.Head.Rel, Head});
    Meter.chargeDerivations();
    if (Meter.poll())
      Stopped = true;
  }
  for (VarIdx V : Bound)
    Env[V].reset();
}

void Program::joinFrom(const CompiledRule &CR, unsigned Pos,
                       std::vector<std::optional<Value>> &Env,
                       const std::vector<Tuple> &DeltaRows,
                       std::vector<std::pair<std::uint32_t, Tuple>> &Out) {
  if (Stopped)
    return;
  if (Pos == CR.Body.size()) {
    finishRule(CR, Env, Out);
    return;
  }
  const CompiledAtom &CA = CR.Body[Pos];
  bool IsDeltaAtom = Pos == 0 && CR.DeltaPos != NoDelta;

  auto TryTuple = [&](const Tuple &T) {
    std::vector<VarIdx> Bound;
    if (matchAtom(CA.Args, T, Env, Bound))
      joinFrom(CR, Pos + 1, Env, DeltaRows, Out);
    for (VarIdx V : Bound)
      Env[V].reset();
  };

  if (IsDeltaAtom) {
    for (const Tuple &T : DeltaRows)
      TryTuple(T);
    return;
  }

  const Relation &R = Relations[CA.Rel];
  if (CA.IndexMask == 0) {
    // Count the rows up front: later inserts into this very relation must
    // not be visited mid-join (they get their own delta pass).
    std::size_t Count = R.rows().size();
    for (std::size_t I = 0; I < Count; ++I)
      TryTuple(R.rows()[I]);
    return;
  }

  // Assemble the probe key from bound terms, masked-column order.
  Tuple Key;
  for (std::uint32_t C = 0; C < CA.Args.size(); ++C) {
    if (!(CA.IndexMask & (1u << C)))
      continue;
    const Term &T = CA.Args[C];
    Key.V[Key.N++] = T.IsVar ? *Env[T.X] : T.X;
  }
  // Copy the row-id list: the probe result may be invalidated by inserts
  // into the same relation during recursive evaluation.
  std::vector<std::uint32_t> Matches = R.probe(CA.IndexMask, Key);
  for (std::uint32_t RowIdx : Matches)
    TryTuple(R.rows()[RowIdx]);
}

void Program::evaluate(const CompiledRule &CR,
                       const std::vector<Tuple> &DeltaRows,
                       std::vector<std::pair<std::uint32_t, Tuple>> &Out) {
  std::vector<std::optional<Value>> Env(CR.NumVars);
  joinFrom(CR, 0, Env, DeltaRows, Out);
}

void Program::maybeCheckpoint(const RunStats &S,
                              const std::vector<std::vector<Tuple>> &Delta) {
  if (!CkptHook)
    return;
  if (CkptEvery != 0 && Derivations - CkptLast < CkptEvery)
    return;
  CheckpointView V;
  for (std::uint32_t Rel = 0; Rel < Relations.size(); ++Rel) {
    if (!IsDerived[Rel])
      continue;
    const std::vector<Tuple> &Rows = Relations[Rel].rows();
    V.Derived.push_back({Rel, &Rows, Rows.size() - Delta[Rel].size()});
  }
  V.Rounds = S.Rounds;
  V.DerivedTuples = S.DerivedTuples;
  V.Derivations = Derivations;
  CkptHook(V);
  CkptLast = Derivations;
}

RunStats Program::run(const BudgetSpec &Budget) {
  assert(!HasRun && "program already evaluated");
  HasRun = true;
  Meter = BudgetMeter(Budget);
  for (const Rule &R : Rules)
    compileRule(R);

  RunStats S;
  std::vector<std::vector<Tuple>> Delta(Relations.size());
  std::vector<std::pair<std::uint32_t, Tuple>> Emitted;
  bool ResumeTick = false;

  if (Resumed) {
    // Continue from the restored round boundary: the restored deltas
    // stand in for a drain's output, round 0 already happened in the run
    // that wrote the snapshot.
    RestoredDelta.resize(Relations.size());
    Delta.swap(RestoredDelta);
    S.Rounds = RestoredRounds;
    S.DerivedTuples = RestoredDerivedTuples;
    CkptLast = Derivations;
    ResumeTick = true;
  } else {
    // Round 0: pure-input variants fire over the initial facts; delta
    // variants fire over the current contents of their derived relation
    // (normally empty, but pre-seeded derived facts are supported).
    for (const CompiledRule &CR : CompiledRules) {
      if (Stopped)
        break;
      if (CR.DeltaPos == NoDelta) {
        evaluate(CR, {}, Emitted);
      } else {
        const Relation &R = Relations[CR.Body[0].Rel];
        if (R.size() != 0)
          evaluate(CR, R.rows(), Emitted);
      }
    }
  }

  while (!Stopped) {
    bool Any = false;
    if (ResumeTick) {
      // The resume tick skips the drain (the restored deltas are already
      // in place) and fires straight over them.
      for (const auto &Rows : Delta)
        if (!Rows.empty()) {
          Any = true;
          break;
        }
    } else {
      std::size_t Consumed = 0;
      for (auto &[Rel, T] : Emitted) {
        ++Consumed;
        if (Relations[Rel].insert(T)) {
          Delta[Rel].push_back(T);
          Any = true;
          ++S.DerivedTuples;
          Meter.chargeTuple();
          if (Meter.poll()) {
            // Dropping the not-yet-inserted remainder keeps every stored
            // tuple a genuine derivation — truncation stays sound.
            Stopped = true;
            break;
          }
        }
      }
      Emitted.erase(Emitted.begin(),
                    Emitted.begin() + static_cast<std::ptrdiff_t>(Consumed));
    }
    if (Stopped || !Any)
      break;
    // Round boundary: emissions drained, every delta a suffix of its
    // relation — the only state the checkpoint format can express. The
    // resume tick re-states the snapshot just read, so skip it there.
    if (!ResumeTick)
      maybeCheckpoint(S, Delta);
    ResumeTick = false;
    ++S.Rounds;

    std::vector<std::vector<Tuple>> Current(Relations.size());
    Current.swap(Delta);
    for (const CompiledRule &CR : CompiledRules) {
      if (Stopped)
        break;
      if (CR.DeltaPos == NoDelta)
        continue;
      const std::vector<Tuple> &Rows = Current[CR.Body[0].Rel];
      if (!Rows.empty())
        evaluate(CR, Rows, Emitted);
    }
    // Undrained delta rows must carry over: a budget trip mid-round
    // reports them as pending work below.
    if (Stopped)
      for (std::size_t Rel = 0; Rel < Current.size(); ++Rel)
        Delta[Rel].insert(Delta[Rel].end(), Current[Rel].begin(),
                          Current[Rel].end());
  }

  S.Term = Meter.reason();
  S.PendingWork = Emitted.size();
  for (const auto &Rows : Delta)
    S.PendingWork += Rows.size();
  return S;
}
