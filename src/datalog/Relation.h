//===- datalog/Relation.h - Tuples and indexed relations --------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Relations over flat 32-bit tuples with hash indices on arbitrary column
/// subsets. Section 7 of the paper explains that the efficiency of a
/// bottom-up Datalog evaluation hinges on the engine building indices on
/// the join columns of each rule; this relation type builds exactly those
/// indices lazily, keyed by a column bitmask.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_DATALOG_RELATION_H
#define CTP_DATALOG_RELATION_H

#include "support/Hashing.h"

#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ctp {
namespace datalog {

using Value = std::uint32_t;

/// Maximum relation arity the engine supports. The pointer-analysis rules
/// need at most 4 attributes.
constexpr unsigned MaxArity = 5;

/// A fixed-capacity tuple; only the first N values are significant.
struct Tuple {
  std::array<Value, MaxArity> V = {};
  std::uint8_t N = 0;

  Tuple() = default;
  Tuple(std::initializer_list<Value> Init) {
    assert(Init.size() <= MaxArity && "tuple arity overflow");
    for (Value X : Init)
      V[N++] = X;
  }

  Value operator[](unsigned I) const {
    assert(I < N && "tuple index out of range");
    return V[I];
  }

  friend bool operator==(const Tuple &A, const Tuple &B) {
    if (A.N != B.N)
      return false;
    for (unsigned I = 0; I < A.N; ++I)
      if (A.V[I] != B.V[I])
        return false;
    return true;
  }

  std::uint64_t hash() const {
    return hashRange(V.begin(), V.begin() + N, N);
  }
};

struct TupleHash {
  std::size_t operator()(const Tuple &T) const {
    return static_cast<std::size_t>(T.hash());
  }
};

/// A set of tuples of fixed arity with lazily built column indices.
class Relation {
public:
  Relation(std::string Name, unsigned Arity);

  const std::string &name() const { return Name; }
  unsigned arity() const { return Arity; }
  std::size_t size() const { return Rows.size(); }
  const std::vector<Tuple> &rows() const { return Rows; }

  /// Inserts \p T; \returns true if it was new. Updates all existing
  /// indices.
  bool insert(const Tuple &T);

  bool contains(const Tuple &T) const { return Set.count(T) != 0; }

  /// Ensures an index exists on the columns in \p Mask (bit i set = column
  /// i is a key column). Mask 0 is invalid (that is a full scan).
  void ensureIndex(std::uint32_t Mask);

  /// Row indices matching \p KeyTuple on the masked columns; \p KeyTuple
  /// must carry the key values in masked-column order. The index must
  /// exist.
  const std::vector<std::uint32_t> &probe(std::uint32_t Mask,
                                          const Tuple &Key) const;

  /// Projects \p T onto the masked columns, in ascending column order.
  static Tuple project(const Tuple &T, std::uint32_t Mask);

private:
  std::string Name;
  unsigned Arity;
  std::vector<Tuple> Rows;
  std::unordered_set<Tuple, TupleHash> Set;
  /// Mask -> (key -> matching row indices).
  std::unordered_map<
      std::uint32_t,
      std::unordered_map<Tuple, std::vector<std::uint32_t>, TupleHash>>
      Indices;
  static const std::vector<std::uint32_t> EmptyRows;
};

} // namespace datalog
} // namespace ctp

#endif // CTP_DATALOG_RELATION_H
