//===- analysis/Configurations.cpp - §7 configuration census --------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Configurations.h"

#include "analysis/DatalogFrontend.h"

#include <cassert>

using namespace ctp;
using namespace ctp::analysis;

std::string analysis::configurationOf(const ctx::Transformer &T) {
  std::string Tag(T.Exits.size(), 'x');
  if (T.Wild)
    Tag += 'w';
  Tag.append(T.Entries.size(), 'e');
  return Tag;
}

std::map<std::string, std::size_t>
analysis::ptsConfigurationHistogram(const Results &R) {
  assert(R.Config.Abs == ctx::Abstraction::TransformerString &&
         "configuration census requires a transformer-string result");
  std::map<std::string, std::size_t> Hist;
  for (const auto &F : R.Pts)
    ++Hist[configurationOf(R.Dom->transformer(F.T))];
  return Hist;
}

std::vector<ctx::Config>
analysis::defaultLadder(const ctx::Config &Precise) {
  const ctx::Abstraction A = Precise.Abs;
  const ctx::Config Rungs[] = {ctx::twoObjectH(A), ctx::twoTypeH(A),
                               ctx::oneObject(A), ctx::insensitive(A)};
  std::vector<ctx::Config> Ladder;
  Ladder.push_back(Precise);
  // Append only rungs strictly below the requested configuration. An
  // unlisted Precise (e.g. 1-call+H) falls back through every rung
  // cheaper than 2-object+H.
  std::size_t Start = 1;
  for (std::size_t I = 0; I < std::size(Rungs); ++I)
    if (Rungs[I].name() == Precise.name()) {
      Start = I + 1;
      break;
    }
  for (std::size_t I = Start; I < std::size(Rungs); ++I)
    Ladder.push_back(Rungs[I]);
  return Ladder;
}

analysis::FallbackOutcome
analysis::solveWithFallback(const facts::FactDB &DB,
                            const ctx::Config &Precise,
                            const FallbackOptions &Opts) {
  const std::vector<ctx::Config> Ladder =
      Opts.Ladder.empty() ? defaultLadder(Precise) : Opts.Ladder;
  assert(!Ladder.empty() && "fallback ladder must have at least one rung");

  FallbackOutcome O;
  for (std::size_t Rung = 0; Rung < Ladder.size(); ++Rung) {
    const ctx::Config &Cfg = Ladder[Rung];
    const BudgetSpec Budget = Opts.Budget.scaledForRung(Rung);
    Results R;
    if (Opts.UseDatalog) {
      R = solveViaDatalog(DB, Cfg, nullptr, Budget);
    } else {
      SolverOptions SO = Opts.Solver;
      SO.Budget = Budget;
      R = solve(DB, Cfg, SO);
    }
    O.Attempts.push_back({Cfg, R.Stat.Term, R.Stat.Seconds,
                          R.Stat.Progress.Derivations});
    if (R.Stat.Term == TerminationReason::Converged ||
        Rung + 1 == Ladder.size()) {
      O.R = std::move(R);
      O.RungUsed = Rung;
      break;
    }
    // Budget exhausted: discard the partial answer and descend. The
    // FactDB (and its parse cost) is shared across every rung.
  }
  O.Degraded =
      O.RungUsed > 0 || O.R.Stat.Term != TerminationReason::Converged;
  return O;
}
