//===- analysis/Configurations.cpp - §7 configuration census --------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Configurations.h"

#include <cassert>

using namespace ctp;
using namespace ctp::analysis;

std::string analysis::configurationOf(const ctx::Transformer &T) {
  std::string Tag(T.Exits.size(), 'x');
  if (T.Wild)
    Tag += 'w';
  Tag.append(T.Entries.size(), 'e');
  return Tag;
}

std::map<std::string, std::size_t>
analysis::ptsConfigurationHistogram(const Results &R) {
  assert(R.Config.Abs == ctx::Abstraction::TransformerString &&
         "configuration census requires a transformer-string result");
  std::map<std::string, std::size_t> Hist;
  for (const auto &F : R.Pts)
    ++Hist[configurationOf(R.Dom->transformer(F.T))];
  return Hist;
}
