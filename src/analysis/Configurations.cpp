//===- analysis/Configurations.cpp - §7 configuration census --------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Configurations.h"

#include "analysis/DatalogFrontend.h"
#include "analysis/Unify.h"

#include <cassert>
#include <fstream>

using namespace ctp;
using namespace ctp::analysis;

const char *analysis::resumeStatusName(ResumeStatus S) {
  switch (S) {
  case ResumeStatus::NoSnapshot:
    return "no-snapshot";
  case ResumeStatus::Resumed:
    return "resumed";
  case ResumeStatus::CorruptSnapshot:
    return "corrupt-snapshot";
  case ResumeStatus::Mismatch:
    return "mismatch";
  }
  return "unknown";
}

analysis::SnapshotProbe
analysis::probeSnapshot(const std::string &Dir, const facts::FactDB &DB,
                        const ctx::Config &Cfg, bool UseDatalog,
                        bool Collapse) {
  SnapshotProbe P;
  if (Dir.empty())
    return P;
  const std::string Path = checkpointPath(Dir);
  // A missing file is the normal cold-start case, not a diagnostic.
  if (!std::ifstream(Path, std::ios::binary).is_open())
    return P;
  std::string Err = readSnapshot(Path, P.Snap);
  if (!Err.empty()) {
    P.Status = ResumeStatus::CorruptSnapshot;
    P.Warning = "checkpoint: " + Err + "; falling back to cold start";
    return P;
  }
  const auto Want = UseDatalog ? SolverSnapshot::Backend::Datalog
                               : SolverSnapshot::Backend::Native;
  std::string Why;
  if (P.Snap.BackendTag != Want)
    Why = "snapshot was written by the other back-end";
  else if (P.Snap.Collapse != Collapse)
    Why = "snapshot collapse mode differs from this run";
  else if (P.Snap.Config.Abs != Cfg.Abs || P.Snap.Config.Flav != Cfg.Flav ||
           P.Snap.Config.MethodDepth != Cfg.MethodDepth ||
           P.Snap.Config.HeapDepth != Cfg.HeapDepth ||
           P.Snap.Config.SolveMode != Cfg.SolveMode)
    Why = "snapshot configuration '" + P.Snap.Config.name() +
          "' differs from requested '" + Cfg.name() + "'";
  else {
    // Unify snapshots are written by the native engine running over the
    // symmetrized view, so its fingerprint/layout is what the snapshot
    // recorded; recompute the view before comparing.
    std::uint64_t Fp = DB.fingerprint(), Lh = DB.layoutHash();
    if (Cfg.SolveMode == ctx::Mode::Unify) {
      const facts::FactDB View = unifyView(DB);
      Fp = View.fingerprint();
      Lh = View.layoutHash();
    }
    if (P.Snap.Fingerprint != Fp)
      Why = "snapshot fact fingerprint differs from this fact set";
    else if (P.Snap.LayoutHash != Lh)
      Why = "snapshot fact layout differs from this fact set";
  }
  if (!Why.empty()) {
    P.Status = ResumeStatus::Mismatch;
    P.Warning = "checkpoint: " + Why + "; falling back to cold start";
    return P;
  }
  P.Status = ResumeStatus::Resumed;
  return P;
}

std::string analysis::configurationOf(const ctx::Transformer &T) {
  std::string Tag(T.Exits.size(), 'x');
  if (T.Wild)
    Tag += 'w';
  Tag.append(T.Entries.size(), 'e');
  return Tag;
}

std::map<std::string, std::size_t>
analysis::ptsConfigurationHistogram(const Results &R) {
  assert(R.Config.Abs == ctx::Abstraction::TransformerString &&
         "configuration census requires a transformer-string result");
  std::map<std::string, std::size_t> Hist;
  for (const auto &F : R.Pts)
    ++Hist[configurationOf(R.Dom->transformer(F.T))];
  return Hist;
}

std::vector<ctx::Config>
analysis::defaultLadder(const ctx::Config &Precise) {
  const ctx::Abstraction A = Precise.Abs;
  const ctx::Config Rungs[] = {ctx::twoObjectH(A),  ctx::twoTypeH(A),
                               ctx::oneObject(A),   ctx::cutShortcut(A),
                               ctx::insensitive(A), ctx::unification(A)};
  std::vector<ctx::Config> Ladder;
  Ladder.push_back(Precise);
  // Append only rungs strictly below the requested configuration. An
  // unlisted Precise (e.g. 1-call+H) falls back through every rung
  // cheaper than 2-object+H.
  std::size_t Start = 1;
  for (std::size_t I = 0; I < std::size(Rungs); ++I)
    if (Rungs[I].name() == Precise.name()) {
      Start = I + 1;
      break;
    }
  for (std::size_t I = Start; I < std::size(Rungs); ++I)
    Ladder.push_back(Rungs[I]);
  return Ladder;
}

analysis::FallbackOutcome
analysis::solveWithFallback(const facts::FactDB &DB,
                            const ctx::Config &Precise,
                            const FallbackOptions &Opts) {
  const std::vector<ctx::Config> Ladder =
      Opts.Ladder.empty() ? defaultLadder(Precise) : Opts.Ladder;
  assert(!Ladder.empty() && "fallback ladder must have at least one rung");

  FallbackOutcome O;

  // Only the rung-0 (requested) configuration checkpoints or resumes:
  // snapshots of degraded rungs would let a later resume silently
  // continue a configuration the user never asked for.
  SnapshotProbe Probe;
  // Contextless rung-0 configurations always run natively (see the rung
  // loop below), so their snapshots carry the native back-end tag even
  // when the ladder as a whole was asked to use datalog.
  const bool Rung0Datalog =
      Opts.UseDatalog && Ladder[0].SolveMode == ctx::Mode::Contexts;
  if (Opts.Resume && Opts.Checkpoint.enabled()) {
    const bool Collapse =
        !Rung0Datalog && Opts.Solver.CollapseSubsumedPts;
    Probe = probeSnapshot(Opts.Checkpoint.Dir, DB, Ladder[0],
                          Rung0Datalog, Collapse);
    O.Resume = Probe.Status;
    O.ResumeWarning = Probe.Warning;
  }

  for (std::size_t Rung = 0; Rung < Ladder.size(); ++Rung) {
    const ctx::Config &Cfg = Ladder[Rung];
    const BudgetSpec Budget = Opts.Budget.scaledForRung(Rung);
    const bool Ckpt = Rung == 0 && Opts.Checkpoint.enabled();
    Results R;
    // The datalog back-end encodes only the Figure-3 context rules; the
    // contextless flavours (cutshortcut, unify) have no datalog rule set,
    // so those rungs run on the native engine even in a datalog ladder.
    const bool RungDatalog =
        Opts.UseDatalog && Cfg.SolveMode == ctx::Mode::Contexts;
    if (RungDatalog) {
      DatalogSolveOptions DO;
      DO.Budget = Budget;
      if (Ckpt) {
        DO.Checkpoint = Opts.Checkpoint;
        if (Probe.Status == ResumeStatus::Resumed)
          DO.Resume = &Probe.Snap;
      }
      R = solveViaDatalog(DB, Cfg, DO);
    } else {
      SolverOptions SO = Opts.Solver;
      SO.Budget = Budget;
      if (Ckpt) {
        SO.Checkpoint = Opts.Checkpoint;
        if (Probe.Status == ResumeStatus::Resumed)
          SO.Resume = &Probe.Snap;
      }
      R = solve(DB, Cfg, SO);
    }
    O.Attempts.push_back({Cfg, R.Stat.Term, R.Stat.Seconds,
                          R.Stat.Progress.Derivations});
    const bool Exhausted = R.Stat.Term != TerminationReason::Converged;
    if (Ckpt && Exhausted) {
      O.SnapshotSaved =
          std::ifstream(checkpointPath(Opts.Checkpoint.Dir),
                        std::ios::binary)
              .is_open();
      // Resume-over-degrade: the trip-time snapshot lets a re-invocation
      // continue the precise run, so don't spend budget on lower rungs —
      // except on a memory trip, where resuming at this rung would just
      // rebuild the same working set into the same wall. Keep the
      // snapshot (a later, bigger machine can still resume it) but
      // descend now: each rung's meter re-arms the governor with fresh
      // RSS-floored watermarks, so the descent makes progress.
      if (R.Stat.Term != TerminationReason::MemoryBudget) {
        O.R = std::move(R);
        O.RungUsed = Rung;
        break;
      }
    }
    if (!Exhausted || Rung + 1 == Ladder.size()) {
      O.R = std::move(R);
      O.RungUsed = Rung;
      break;
    }
    // Budget exhausted: discard the partial answer and descend. The
    // FactDB (and its parse cost) is shared across every rung.
  }
  O.Degraded =
      O.RungUsed > 0 || O.R.Stat.Term != TerminationReason::Converged;
  return O;
}
