//===- analysis/ResultsIO.cpp - Result serialization ----------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/ResultsIO.h"

#include "support/Tsv.h"

using namespace ctp;
using namespace ctp::analysis;

std::string analysis::writeResultsDir(const facts::FactDB &DB,
                                      const Results &R,
                                      const std::string &Dir) {
  // Render context elements with real entity names where the flavour
  // makes that unambiguous; fall back to raw element text otherwise.
  ctx::ElemPrinter Printer = [&](ctx::CtxtElem E) -> std::string {
    if (E == ctx::EntryElem)
      return "entry";
    std::uint32_t Id = ctx::entityOfElem(E);
    switch (R.Config.Flav) {
    case ctx::Flavour::CallSite:
      if (Id < DB.InvokeNames.size())
        return DB.InvokeNames[Id];
      break;
    case ctx::Flavour::Object:
      if (Id < DB.HeapNames.size())
        return DB.HeapNames[Id];
      break;
    case ctx::Flavour::Type:
      if (Id < DB.TypeNames.size())
        return DB.TypeNames[Id];
      break;
    case ctx::Flavour::Hybrid:
      if (Id < DB.HeapNames.size())
        return DB.HeapNames[Id];
      if (Id - DB.HeapNames.size() < DB.InvokeNames.size())
        return DB.InvokeNames[Id - DB.HeapNames.size()];
      break;
    }
    return "#" + std::to_string(Id);
  };

  std::string Err;
  auto Write = [&](const char *File,
                   const std::vector<std::vector<std::string>> &Rows) {
    if (Err.empty() && !writeTsvFile(Dir + "/" + File, Rows))
      Err = std::string("cannot write ") + File;
  };

  std::vector<std::vector<std::string>> Rows;
  for (const auto &F : R.Pts)
    Rows.push_back({DB.VarNames[F.Var], DB.HeapNames[F.Heap],
                    R.Dom->toString(F.T, Printer)});
  Write("Pts.tsv", Rows);

  Rows.clear();
  for (const auto &F : R.Hpts)
    Rows.push_back({DB.HeapNames[F.Base], DB.FieldNames[F.Field],
                    DB.HeapNames[F.Heap], R.Dom->toString(F.T, Printer)});
  Write("Hpts.tsv", Rows);

  Rows.clear();
  for (const auto &F : R.Call)
    Rows.push_back({DB.InvokeNames[F.Invoke], DB.MethodNames[F.Method],
                    R.Dom->toString(F.T, Printer)});
  Write("Call.tsv", Rows);

  Rows.clear();
  for (const auto &F : R.Reach)
    Rows.push_back(
        {DB.MethodNames[F.Method],
         ctx::printCtxtVec((*R.ReachCtxts)[F.CtxtId], Printer)});
  Write("Reach.tsv", Rows);

  Rows.clear();
  for (const auto &F : R.Gpts)
    Rows.push_back({DB.GlobalNames[F.Global], DB.HeapNames[F.Heap],
                    R.Dom->toString(F.T, Printer)});
  Write("Gpts.tsv", Rows);

  Rows.clear();
  for (const auto &P : R.ciPts())
    Rows.push_back({DB.VarNames[P[0]], DB.HeapNames[P[1]]});
  Write("CiPts.tsv", Rows);

  Rows.clear();
  for (const auto &C : R.ciCall())
    Rows.push_back({DB.InvokeNames[C[0]], DB.MethodNames[C[1]]});
  Write("CiCall.tsv", Rows);

  return Err;
}
