//===- analysis/Checkpoint.cpp - Solver checkpoint content ----------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Checkpoint.h"

#include "support/Snapshot.h"

#include <cstdio>

namespace ctp {
namespace analysis {

namespace {

// Section tags of the solver snapshot. Tags are part of the on-disk
// format; never renumber, only append.
enum SectionTag : std::uint32_t {
  SecMeta = 1,
  SecDomain = 2,
  SecReachCtxts = 3,
  SecPts = 4,
  SecHpts = 5,
  SecHload = 6,
  SecCall = 7,
  SecReach = 8,
  SecGpts = 9,
  SecSubsumed = 10,
};

void putRelation(snapshot::File &F, std::uint32_t Tag,
                 const RelationWords &R) {
  snapshot::ByteWriter W;
  W.u64(R.Head);
  W.u32Vec(R.Words);
  F.add(Tag).Bytes = W.take();
}

std::string getRelation(const snapshot::File &F, std::uint32_t Tag,
                        const char *Name, unsigned Arity, RelationWords &R) {
  const snapshot::Section *S = F.find(Tag);
  if (!S)
    return std::string("snapshot missing relation section '") + Name + "'";
  snapshot::ByteReader Rd(S->Bytes);
  R.Head = Rd.u64();
  if (!Rd.u32Vec(R.Words) || !Rd.atEnd())
    return std::string("snapshot relation section '") + Name +
           "' is malformed";
  if (R.Words.size() % Arity != 0)
    return std::string("snapshot relation section '") + Name +
           "' is not a whole number of tuples";
  if (R.Head > R.Words.size() / Arity)
    return std::string("snapshot relation section '") + Name +
           "' has head past its tuple count";
  return {};
}

std::string getWords(const snapshot::File &F, std::uint32_t Tag,
                     const char *Name, std::vector<std::uint32_t> &Out) {
  const snapshot::Section *S = F.find(Tag);
  if (!S)
    return std::string("snapshot missing section '") + Name + "'";
  snapshot::ByteReader Rd(S->Bytes);
  if (!Rd.u32Vec(Out) || !Rd.atEnd())
    return std::string("snapshot section '") + Name + "' is malformed";
  return {};
}

} // namespace

std::string checkpointPath(const std::string &Dir) {
  return Dir + "/solver.ctpsnap";
}

std::string writeSnapshot(const SolverSnapshot &S, const std::string &Path) {
  snapshot::File F;

  {
    snapshot::ByteWriter W;
    W.u32(static_cast<std::uint32_t>(S.BackendTag));
    W.u32(S.Collapse ? 1 : 0);
    W.u32(static_cast<std::uint32_t>(S.Config.Abs));
    W.u32(static_cast<std::uint32_t>(S.Config.Flav));
    W.u32(S.Config.MethodDepth);
    W.u32(S.Config.HeapDepth);
    // Solve mode rides behind the original depth fields; snapshots written
    // before it existed fail the atEnd() length check below and cold-start
    // cleanly (the meta section is all-or-nothing, not versioned).
    W.u32(static_cast<std::uint32_t>(S.Config.SolveMode));
    W.u64(S.Fingerprint);
    W.u64(S.LayoutHash);
    W.u64(S.WorkItems);
    W.u64(S.Derivations);
    W.u64(S.Tuples);
    W.u64(S.CollapsedPts);
    W.u64(S.Rounds);
    W.u64(S.DerivedTuples);
    F.add(SecMeta).Bytes = W.take();
  }
  {
    snapshot::ByteWriter W;
    W.u32Vec(S.DomainWords);
    F.add(SecDomain).Bytes = W.take();
  }
  {
    snapshot::ByteWriter W;
    W.u32Vec(S.ReachCtxtWords);
    F.add(SecReachCtxts).Bytes = W.take();
  }
  putRelation(F, SecPts, S.Pts);
  putRelation(F, SecHpts, S.Hpts);
  putRelation(F, SecHload, S.Hload);
  putRelation(F, SecCall, S.Call);
  putRelation(F, SecReach, S.Reach);
  putRelation(F, SecGpts, S.Gpts);
  {
    snapshot::ByteWriter W;
    W.u32Vec(S.SubsumedWords);
    F.add(SecSubsumed).Bytes = W.take();
  }

  F.T.Term = static_cast<std::uint32_t>(S.Term);
  F.T.Iterations = S.Progress.Iterations;
  F.T.Derivations = S.Progress.Derivations;
  F.T.PendingWork = S.Progress.PendingWork;

  return snapshot::writeFile(F, Path);
}

std::string readSnapshot(const std::string &Path, SolverSnapshot &S) {
  snapshot::File F;
  if (std::string Err = snapshot::readFile(Path, F); !Err.empty())
    return Err;

  const snapshot::Section *Meta = F.find(SecMeta);
  if (!Meta)
    return "snapshot missing meta section";
  snapshot::ByteReader Rd(Meta->Bytes);
  std::uint32_t Backend = Rd.u32();
  std::uint32_t Collapse = Rd.u32();
  std::uint32_t Abs = Rd.u32();
  std::uint32_t Flav = Rd.u32();
  std::uint32_t MethodDepth = Rd.u32();
  std::uint32_t HeapDepth = Rd.u32();
  std::uint32_t SolveMode = Rd.u32();
  S.Fingerprint = Rd.u64();
  S.LayoutHash = Rd.u64();
  S.WorkItems = Rd.u64();
  S.Derivations = Rd.u64();
  S.Tuples = Rd.u64();
  S.CollapsedPts = Rd.u64();
  S.Rounds = Rd.u64();
  S.DerivedTuples = Rd.u64();
  if (!Rd.atEnd())
    return "snapshot meta section is malformed";
  if (Backend != static_cast<std::uint32_t>(SolverSnapshot::Backend::Native) &&
      Backend != static_cast<std::uint32_t>(SolverSnapshot::Backend::Datalog))
    return "snapshot meta has unknown back-end tag";
  if (Collapse > 1 || Abs > 1 || Flav > 3 || MethodDepth > ctx::MaxCtxtDepth ||
      HeapDepth > ctx::MaxCtxtDepth || SolveMode > 2)
    return "snapshot meta has out-of-range configuration fields";
  S.BackendTag = static_cast<SolverSnapshot::Backend>(Backend);
  S.Collapse = Collapse != 0;
  S.Config.Abs = static_cast<ctx::Abstraction>(Abs);
  S.Config.Flav = static_cast<ctx::Flavour>(Flav);
  S.Config.MethodDepth = MethodDepth;
  S.Config.HeapDepth = HeapDepth;
  S.Config.SolveMode = static_cast<ctx::Mode>(SolveMode);

  if (std::string E = getWords(F, SecDomain, "domain", S.DomainWords);
      !E.empty())
    return E;
  if (std::string E =
          getWords(F, SecReachCtxts, "reach-contexts", S.ReachCtxtWords);
      !E.empty())
    return E;
  if (std::string E = getRelation(F, SecPts, "pts", 3, S.Pts); !E.empty())
    return E;
  if (std::string E = getRelation(F, SecHpts, "hpts", 4, S.Hpts); !E.empty())
    return E;
  if (std::string E = getRelation(F, SecHload, "hload", 4, S.Hload);
      !E.empty())
    return E;
  if (std::string E = getRelation(F, SecCall, "call", 3, S.Call); !E.empty())
    return E;
  if (std::string E = getRelation(F, SecReach, "reach", 2, S.Reach);
      !E.empty())
    return E;
  if (std::string E = getRelation(F, SecGpts, "gpts", 3, S.Gpts); !E.empty())
    return E;
  if (std::string E = getWords(F, SecSubsumed, "subsumed", S.SubsumedWords);
      !E.empty())
    return E;
  if (S.SubsumedWords.size() % 3 != 0)
    return "snapshot section 'subsumed' is not a whole number of tuples";

  if (F.T.Term > static_cast<std::uint32_t>(TerminationReason::MemoryBudget))
    return "snapshot trailer has unknown termination reason";
  S.Term = static_cast<TerminationReason>(F.T.Term);
  S.Progress.Iterations = static_cast<std::size_t>(F.T.Iterations);
  S.Progress.Derivations = static_cast<std::size_t>(F.T.Derivations);
  S.Progress.PendingWork = static_cast<std::size_t>(F.T.PendingWork);
  return {};
}

void removeSnapshot(const std::string &Dir) {
  if (!Dir.empty())
    std::remove(checkpointPath(Dir).c_str());
}

void encodeCtxtInterner(const Interner<ctx::CtxtVec, ctx::CtxtVecHash> &I,
                        std::vector<std::uint32_t> &Out) {
  Out.clear();
  for (std::uint32_t Id = 0; Id < I.size(); ++Id) {
    const ctx::CtxtVec &V = I[Id];
    Out.push_back(static_cast<std::uint32_t>(V.size()));
    for (std::size_t K = 0; K < V.size(); ++K)
      Out.push_back(V[K]);
  }
}

bool decodeCtxtInterner(const std::vector<std::uint32_t> &Words,
                        Interner<ctx::CtxtVec, ctx::CtxtVecHash> &I) {
  std::size_t Pos = 0;
  std::uint32_t Expected = 0;
  while (Pos < Words.size()) {
    std::uint32_t Len = Words[Pos++];
    if (Len > ctx::CtxtVec::capacity() || Words.size() - Pos < Len)
      return false;
    ctx::CtxtVec V;
    for (std::uint32_t K = 0; K < Len; ++K)
      V.push_back(Words[Pos++]);
    // Pre-interned entries (the datalog front-end seeds the entry context
    // before restoring) must reproduce their original ids too, so a plain
    // equality check covers both fresh and seeded interners.
    if (I.intern(V) != Expected)
      return false;
    ++Expected;
  }
  return true;
}

} // namespace analysis
} // namespace ctp
