//===- analysis/Incremental.cpp - Incremental re-solve support ------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// The native incremental path lives with the solver it seeds
// (analysis/Solver.cpp). This file holds the back-end-neutral pieces:
// the Datalog entry point (a documented full re-solve — the generic
// engine exposes no per-tuple derivation order to invalidate against)
// and the Results -> warm-start snapshot re-encoder the transactional
// commit path promotes after certification.
//
//===----------------------------------------------------------------------===//

#include "analysis/Incremental.h"

#include "analysis/DatalogFrontend.h"

#include <cassert>

using namespace ctp;
using namespace ctp::analysis;

IncrementalOutcome analysis::resolveIncrementalViaDatalog(
    const facts::FactDB &NewDB, const ctx::Config &Cfg, const Results &Prev,
    const InputDelta &D, const IncrementalOptions &Opts) {
  (void)Prev;
  (void)D;
  IncrementalOutcome Out;
  DatalogSolveOptions DO;
  DO.Budget = Opts.Solver.Budget;
  Out.R = solveViaDatalog(NewDB, Cfg, DO);
  Out.Incremental = false;
  Out.FallbackReason =
      "datalog back-end re-solves in full (the generic engine records no "
      "per-tuple derivation order to invalidate against)";
  return Out;
}

SolverSnapshot analysis::snapshotFromResults(const Results &R,
                                             const facts::FactDB &DB) {
  assert(R.Stat.Term == TerminationReason::Converged &&
         "only a converged result can become a warm-start snapshot");
  assert(R.Stat.CollapsedPts == 0 &&
         "collapse mode re-orders Results::Pts; its snapshot must come "
         "from the solver's own KeepOnConverge path");
  assert(R.Dom && R.ReachCtxts && "result lacks its interned domain");

  SolverSnapshot S;
  S.BackendTag = SolverSnapshot::Backend::Native;
  S.Collapse = false;
  S.Config = R.Config;
  S.Fingerprint = DB.fingerprint();
  S.LayoutHash = DB.layoutHash();
  R.Dom->exportInterned(S.DomainWords);
  encodeCtxtInterner(*R.ReachCtxts, S.ReachCtxtWords);

  // Converged: every head sits at its relation's size, so a restore
  // replays all tuples as already-processed and converges immediately.
  S.Pts.Head = R.Pts.size();
  for (const PtsFact &F : R.Pts) {
    S.Pts.Words.push_back(F.Var);
    S.Pts.Words.push_back(F.Heap);
    S.Pts.Words.push_back(F.T);
  }
  S.Hpts.Head = R.Hpts.size();
  for (const HptsFact &F : R.Hpts) {
    S.Hpts.Words.push_back(F.Base);
    S.Hpts.Words.push_back(F.Field);
    S.Hpts.Words.push_back(F.Heap);
    S.Hpts.Words.push_back(F.T);
  }
  S.Hload.Head = R.Hload.size();
  for (const HloadFact &F : R.Hload) {
    S.Hload.Words.push_back(F.Base);
    S.Hload.Words.push_back(F.Field);
    S.Hload.Words.push_back(F.Var);
    S.Hload.Words.push_back(F.T);
  }
  S.Call.Head = R.Call.size();
  for (const CallFact &F : R.Call) {
    S.Call.Words.push_back(F.Invoke);
    S.Call.Words.push_back(F.Method);
    S.Call.Words.push_back(F.T);
  }
  S.Reach.Head = R.Reach.size();
  for (const ReachFact &F : R.Reach) {
    S.Reach.Words.push_back(F.Method);
    S.Reach.Words.push_back(F.CtxtId);
  }
  S.Gpts.Head = R.Gpts.size();
  for (const GptsFact &F : R.Gpts) {
    S.Gpts.Words.push_back(F.Global);
    S.Gpts.Words.push_back(F.Heap);
    S.Gpts.Words.push_back(F.T);
  }

  S.WorkItems = R.Stat.WorkItems;
  S.Derivations = R.Stat.Progress.Derivations;
  S.Tuples = R.Pts.size() + R.Hpts.size() + R.Hload.size() + R.Call.size() +
             R.Reach.size() + R.Gpts.size();
  S.CollapsedPts = 0;
  S.Term = TerminationReason::Converged;
  S.Progress = R.Stat.Progress;
  S.Progress.PendingWork = 0;
  return S;
}
