//===- analysis/Facts.h - Derived fact representations ----------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flat tuple types for the derived relations of Figure 3 (pts, hpts,
/// hload, call, reach). Context transformations appear as interned ids
/// into a ctx::Domain; reach contexts as interned CtxtVec ids.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_ANALYSIS_FACTS_H
#define CTP_ANALYSIS_FACTS_H

#include "ctx/Domain.h"
#include "support/Hashing.h"

#include <array>
#include <cstdint>

namespace ctp {
namespace analysis {

/// pts(Var, Heap, T): Var points to objects allocated at Heap under the
/// context transformation T (alloc context -> pointer context).
struct PtsFact {
  std::uint32_t Var;
  std::uint32_t Heap;
  ctx::TransformId T;
};

/// hpts(Base, Field, Heap, T): field Field of objects allocated at Base
/// points to objects allocated at Heap; T maps the pointee's heap context
/// to the base object's heap context (domain CtxtT_{h,h}).
struct HptsFact {
  std::uint32_t Base;
  std::uint32_t Field;
  std::uint32_t Heap;
  ctx::TransformId T;
};

/// hload(Base, Field, Var, T): Var is loaded from field Field of objects
/// allocated at Base; T maps the base's heap context to Var's method
/// context (domain CtxtT_{h,m}).
struct HloadFact {
  std::uint32_t Base;
  std::uint32_t Field;
  std::uint32_t Var;
  ctx::TransformId T;
};

/// call(Invoke, Method, T): call-graph edge; T maps caller context to
/// callee context (domain CtxtT_{m,m}).
struct CallFact {
  std::uint32_t Invoke;
  std::uint32_t Method;
  ctx::TransformId T;
};

/// reach(Method, Ctxt): Method is reachable under some method context with
/// the given (interned) prefix.
struct ReachFact {
  std::uint32_t Method;
  std::uint32_t CtxtId;
};

/// gpts(Global, Heap, T): static field Global points to objects allocated
/// at Heap; T qualifies the pointee's heap context only (CtxtT_{h,0} —
/// flow through a global severs the method-context link).
struct GptsFact {
  std::uint32_t Global;
  std::uint32_t Heap;
  ctx::TransformId T;
};

/// Uniform 4-word key for hash-set membership of any derived fact.
using FactKey = std::array<std::uint32_t, 4>;

struct FactKeyHash {
  std::size_t operator()(const FactKey &K) const {
    return static_cast<std::size_t>(hashRange(K.begin(), K.end()));
  }
};

inline FactKey keyOf(const PtsFact &F) { return {F.Var, F.Heap, F.T, 0}; }
inline FactKey keyOf(const HptsFact &F) {
  return {F.Base, F.Field, F.Heap, F.T};
}
inline FactKey keyOf(const HloadFact &F) {
  return {F.Base, F.Field, F.Var, F.T};
}
inline FactKey keyOf(const CallFact &F) {
  return {F.Invoke, F.Method, F.T, 0};
}
inline FactKey keyOf(const ReachFact &F) {
  return {F.Method, F.CtxtId, 0, 0};
}
inline FactKey keyOf(const GptsFact &F) {
  return {F.Global, F.Heap, F.T, 1};
}

} // namespace analysis
} // namespace ctp

#endif // CTP_ANALYSIS_FACTS_H
