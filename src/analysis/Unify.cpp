//===- analysis/Unify.cpp - Unification (Steensgaard) solver --------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Unify.h"

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace ctp;
using namespace ctp::analysis;
using facts::FactDB;
using facts::Id;

namespace {

std::uint64_t pairKey(std::uint32_t A, std::uint32_t B) {
  return (static_cast<std::uint64_t>(A) << 32) | B;
}

/// Enumerates every class-hierarchy-possible (invoke, callee) binding:
/// static invokes bind their one target; virtual invokes bind every
/// implementation of their signature (receiver types are unknown before
/// solving — this is plain CHA). Deterministic in fact order; \p Visit
/// may see duplicate pairs.
template <typename Fn> void forEachChaBinding(const FactDB &DB, Fn Visit) {
  for (const auto &F : DB.StaticInvokes)
    Visit(F.Invoke, F.Target);
  if (DB.VirtualInvokes.empty())
    return;
  std::unordered_map<std::uint32_t, std::vector<Id>> BySig;
  for (const auto &F : DB.Implements)
    BySig[F.Sig].push_back(F.Method);
  for (const auto &F : DB.VirtualInvokes) {
    auto It = BySig.find(F.Sig);
    if (It == BySig.end())
      continue;
    for (Id Q : It->second)
      Visit(F.Invoke, Q);
  }
}

/// Visits the variable pairs an (invoke, callee) binding equates:
/// actual<->formal per ordinal, return<->assign_return target, and
/// throw<->catch target.
struct BindingPairs {
  std::vector<std::vector<std::pair<Id, Id>>> ActualByInvoke; // (ord, var)
  std::unordered_map<std::uint64_t, Id> FormalOf;             // (method,ord)
  std::vector<std::vector<Id>> AssignRetByInvoke, CatchByInvoke;
  std::vector<std::vector<Id>> ReturnByMethod, ThrowByMethod;

  explicit BindingPairs(const FactDB &DB)
      : ActualByInvoke(DB.numInvokes()), AssignRetByInvoke(DB.numInvokes()),
        CatchByInvoke(DB.numInvokes()), ReturnByMethod(DB.numMethods()),
        ThrowByMethod(DB.numMethods()) {
    for (const auto &F : DB.Actuals)
      ActualByInvoke[F.Invoke].push_back({F.Ordinal, F.Var});
    for (const auto &F : DB.Formals)
      FormalOf.emplace(pairKey(F.Method, F.Ordinal), F.Var);
    for (const auto &F : DB.AssignReturns)
      AssignRetByInvoke[F.Invoke].push_back(F.To);
    for (const auto &F : DB.Catches)
      CatchByInvoke[F.Invoke].push_back(F.To);
    for (const auto &F : DB.Returns)
      ReturnByMethod[F.Method].push_back(F.Var);
    for (const auto &F : DB.Throws)
      ThrowByMethod[F.Method].push_back(F.Var);
  }

  template <typename Fn>
  void forEachPair(Id Invoke, Id Callee, Fn Visit) const {
    for (const auto &[Ord, Z] : ActualByInvoke[Invoke])
      if (auto It = FormalOf.find(pairKey(Callee, Ord));
          It != FormalOf.end())
        Visit(Z, It->second);
    for (Id Z : ReturnByMethod[Callee])
      for (Id Y : AssignRetByInvoke[Invoke])
        Visit(Z, Y);
    for (Id Z : ThrowByMethod[Callee])
      for (Id Y : CatchByInvoke[Invoke])
        Visit(Z, Y);
  }
};

//===----------------------------------------------------------------------===//
// Union-find with union-by-rank and path compression.
//===----------------------------------------------------------------------===//

class UnionFind {
public:
  explicit UnionFind(std::size_t N) : Parent(N), Rank(N, 0) {
    for (std::size_t I = 0; I < N; ++I)
      Parent[I] = static_cast<Id>(I);
  }

  Id find(Id V) {
    Id Root = V;
    while (Parent[Root] != Root)
      Root = Parent[Root];
    while (Parent[V] != Root) { // Path compression.
      Id Next = Parent[V];
      Parent[V] = Root;
      V = Next;
    }
    return Root;
  }

  void unite(Id A, Id B) {
    A = find(A);
    B = find(B);
    if (A == B)
      return;
    if (Rank[A] < Rank[B])
      std::swap(A, B);
    Parent[B] = A;
    if (Rank[A] == Rank[B])
      ++Rank[A];
  }

private:
  std::vector<Id> Parent;
  std::vector<std::uint8_t> Rank;
};

//===----------------------------------------------------------------------===//
// The propagation core over the quotient graph.
//===----------------------------------------------------------------------===//

constexpr Id NoFilter = facts::InvalidId;

/// A directed inclusion edge between cells; Filter, when set, admits only
/// heaps whose run-time type is a subtype of it (cast semantics).
struct CellEdge {
  std::uint32_t To;
  Id Filter;
};

class UnifySolver {
public:
  UnifySolver(const FactDB &DB, const ctx::Config &Cfg,
              const SolverOptions &Opts)
      : DB(DB), Cfg(Cfg), Meter(Opts.Budget), UF(DB.numVars()),
        Binds(DB) {}

  Results run() {
    Stopwatch Timer;
    buildClasses();
    buildCells();
    seed();
    drain();
    return materialize(Timer);
  }

private:
  //===--- Phase 1: unification ------------------------------------------===//

  void buildClasses() {
    // Plain assignments are symmetric under unification: the whole
    // component shares one points-to set.
    for (const auto &A : DB.Assigns)
      UF.unite(A.From, A.To);
    // CHA-possible parameter/return/throw bindings are merged
    // unconditionally (context transformations would keep them apart;
    // giving that up is what makes unify the cheapest rung).
    forEachChaBinding(DB, [&](Id Invoke, Id Callee) {
      Binds.forEachPair(Invoke, Callee,
                        [&](Id A, Id B) { UF.unite(A, B); });
    });
  }

  //===--- Phase 2: quotient-graph construction --------------------------===//

  // Cell layout: [0, numVars) variable classes (only representatives are
  // populated), [numVars, numVars + numGlobals) global cells, then field
  // cells (heap, field) created on demand.
  std::uint32_t varCell(Id V) { return UF.find(V); }
  std::uint32_t globalCell(Id G) {
    return static_cast<std::uint32_t>(DB.numVars() + G);
  }
  std::uint32_t fieldCell(Id Heap, Id Field) {
    auto [It, Inserted] =
        FieldCellOf.emplace(pairKey(Heap, Field), NextCell);
    if (Inserted) {
      ++NextCell;
      Pts.emplace_back();
      Out.emplace_back();
      FieldCells.push_back({Heap, Field});
    }
    return It->second;
  }

  void addEdge(std::uint32_t From, std::uint32_t To, Id Filter) {
    if (From == To)
      return; // Self-inclusion is a no-op.
    Out[From].push_back({To, Filter});
    // Flush what already arrived; later arrivals flow at event time.
    // (Safe to iterate in place: deliver only mutates other cells — the
    // self-edge case returned above.)
    for (Id H : Pts[From])
      if (Filter == NoFilter || castAdmits(H, Filter))
        deliver(To, H);
  }

  bool castAdmits(Id Heap, Id Type) const {
    return HeapTypeOf[Heap] != facts::InvalidId &&
           SubtypePairs.count(pairKey(HeapTypeOf[Heap], Type)) != 0;
  }

  void buildCells() {
    const std::size_t NVars = DB.numVars();
    NextCell = static_cast<std::uint32_t>(NVars + DB.numGlobals());
    Pts.resize(NextCell);
    Out.resize(NextCell);

    HeapTypeOf.assign(DB.numHeaps(), facts::InvalidId);
    for (const auto &F : DB.HeapTypes)
      HeapTypeOf[F.Heap] = F.Type;
    for (const auto &F : DB.Subtypes)
      SubtypePairs.insert(pairKey(F.Sub, F.Super));
    for (const auto &F : DB.Implements)
      Dispatch.emplace(pairKey(F.Type, F.Sig), F.Method);
    ThisOf.assign(DB.numMethods(), facts::InvalidId);
    for (const auto &F : DB.ThisVars)
      ThisOf[F.Method] = F.Var;

    // Statement rows keyed by the class whose heap arrivals drive them.
    LoadRows.resize(NextCell);
    StoreRows.resize(NextCell);
    VirtRows.resize(NextCell);
    for (const auto &F : DB.Loads)
      LoadRows[varCell(F.Base)].push_back({F.Field, varCell(F.To)});
    for (const auto &F : DB.Stores)
      StoreRows[varCell(F.Base)].push_back({F.Field, varCell(F.From)});
    for (const auto &F : DB.VirtualInvokes)
      VirtRows[varCell(F.Receiver)].push_back({F.Invoke, F.Sig});
    // Casts and global stores need no event-time work: static edges.
    for (const auto &F : DB.Casts)
      addEdge(varCell(F.From), varCell(F.To), F.Type);
    for (const auto &F : DB.GlobalStores)
      addEdge(varCell(F.From), globalCell(F.Global), NoFilter);

    StaticByMethod.resize(DB.numMethods());
    for (const auto &F : DB.StaticInvokes)
      StaticByMethod[F.InMethod].push_back({F.Invoke, F.Target});
    NewByMethod.resize(DB.numMethods());
    for (const auto &F : DB.AssignNews)
      NewByMethod[F.InMethod].push_back({F.Heap, F.To});
    GloadByMethod.resize(DB.numMethods());
    for (const auto &F : DB.GlobalLoads)
      GloadByMethod[F.InMethod].push_back({F.Global, F.To});

    Reached.assign(DB.numMethods(), false);
  }

  //===--- Phase 3: propagation ------------------------------------------===//

  void deliver(std::uint32_t Cell, Id Heap) {
    Meter.chargeDerivations();
    if (!Pts[Cell].insert(Heap).second)
      return;
    Meter.chargeTuple();
    Work.push_back(pairKey(Cell, Heap));
  }

  void markReached(Id Method) {
    if (Reached[Method])
      return;
    Reached[Method] = true;
    MethodWork.push_back(Method);
  }

  void seed() {
    for (Id E : DB.EntryMethods)
      markReached(E);
  }

  void drain() {
    while (!Work.empty() || !MethodWork.empty()) {
      if (Meter.poll())
        return; // Partial result: a sound subset, tagged by the meter.
      if (!MethodWork.empty()) {
        Id P = MethodWork.front();
        MethodWork.pop_front();
        ++WorkItems;
        onReached(P);
        continue;
      }
      std::uint64_t Ev = Work.front();
      Work.pop_front();
      ++WorkItems;
      onNewHeap(static_cast<std::uint32_t>(Ev >> 32),
                static_cast<std::uint32_t>(Ev));
    }
  }

  void onReached(Id P) {
    // [STATIC] + [REACH]: static invokes of a reached method call (and
    // reach) their targets.
    for (const auto &[Invoke, Target] : StaticByMethod[P]) {
      recordCall(Invoke, Target);
      markReached(Target);
    }
    // [NEW]: allocations in a reached method seed their target class.
    for (const auto &[Heap, To] : NewByMethod[P])
      deliver(varCell(To), Heap);
    // [GLOAD]: loading a global in a reached method links the global's
    // cell into the destination class.
    for (const auto &[Global, To] : GloadByMethod[P])
      addEdge(globalCell(Global), varCell(To), NoFilter);
  }

  void onNewHeap(std::uint32_t Cell, Id Heap) {
    // Statement rows attach to variable classes only (field cells, whose
    // ids lie past the row tables, carry just inclusion edges).
    if (Cell < LoadRows.size()) {
      // [LOAD]/[IND]: the arrived heap is a base object — link its field
      // cell into the load destination.
      for (const auto &[Field, To] : LoadRows[Cell])
        addEdge(fieldCell(Heap, Field), To, NoFilter);
      // [STORE]: the arrived heap is a base object — link the stored
      // class into its field cell.
      for (const auto &[Field, From] : StoreRows[Cell])
        addEdge(From, fieldCell(Heap, Field), NoFilter);
      // [VIRT]/[VIRT-THIS]: type-filtered dispatch; never a class merge —
      // only the dispatched receiver heap flows into `this`, exactly as in
      // the context-bearing solver. This is the oversharing control.
      for (const auto &[Invoke, Sig] : VirtRows[Cell]) {
        if (HeapTypeOf[Heap] == facts::InvalidId)
          continue;
        auto It = Dispatch.find(pairKey(HeapTypeOf[Heap], Sig));
        if (It == Dispatch.end())
          continue; // No implementation: dead dispatch.
        Id Q = It->second;
        recordCall(Invoke, Q);
        markReached(Q);
        if (ThisOf[Q] != facts::InvalidId)
          deliver(varCell(ThisOf[Q]), Heap);
      }
    }
    // Inclusion edges (index loop: rows above may append to Out[Cell];
    // edges added mid-event were already flushed with this heap).
    for (std::size_t I = 0; I < Out[Cell].size(); ++I) {
      CellEdge E = Out[Cell][I];
      if (E.Filter == NoFilter || castAdmits(Heap, E.Filter))
        deliver(E.To, Heap);
    }
  }

  void recordCall(Id Invoke, Id Callee) {
    Meter.chargeDerivations();
    if (!CallSeen.insert(pairKey(Invoke, Callee)).second)
      return;
    Meter.chargeTuple();
    Calls.push_back({Invoke, Callee});
  }

  //===--- Phase 4: materialization --------------------------------------===//

  Results materialize(const Stopwatch &Timer) {
    Results R;
    R.Config = Cfg;

    std::vector<std::uint32_t> ClassOf(DB.numHeaps());
    for (std::size_t Hp = 0; Hp < DB.numHeaps(); ++Hp)
      ClassOf[Hp] = DB.classOfHeap(static_cast<std::uint32_t>(Hp));
    R.Dom = ctx::makeDomain(Cfg, std::move(ClassOf));
    R.ReachCtxts =
        std::make_shared<Interner<ctx::CtxtVec, ctx::CtxtVecHash>>();
    const ctx::TransformId Eps = R.Dom->record(ctx::CtxtVec());
    const std::uint32_t EmptyCtxt = R.ReachCtxts->intern(ctx::CtxtVec());

    // pts: every variable reports its class's set (sorted for
    // deterministic output independent of arrival order).
    for (Id V = 0; V < static_cast<Id>(DB.numVars()); ++V) {
      std::vector<Id> Heaps = sortedHeaps(UF.find(V));
      for (Id H : Heaps)
        R.Pts.push_back({V, H, Eps});
    }
    // hpts: the field cells.
    for (std::size_t I = 0; I < FieldCells.size(); ++I) {
      const auto &[Base, Field] = FieldCells[I];
      std::uint32_t Cell =
          static_cast<std::uint32_t>(DB.numVars() + DB.numGlobals() + I);
      for (Id H : sortedHeaps(Cell))
        R.Hpts.push_back({Base, Field, H, Eps});
    }
    // hload: one row per (base heap, field, destination) a load observes.
    {
      std::unordered_set<std::uint64_t> Seen;
      for (const auto &F : DB.Loads)
        for (Id G : sortedHeaps(UF.find(F.Base)))
          if (Seen.insert(hashCombine(pairKey(G, F.Field), F.To)).second)
            R.Hload.push_back({G, F.Field, F.To, Eps});
    }
    for (const auto &[Invoke, Callee] : Calls)
      R.Call.push_back({Invoke, Callee, Eps});
    for (Id P = 0; P < static_cast<Id>(DB.numMethods()); ++P)
      if (Reached[P])
        R.Reach.push_back({P, EmptyCtxt});
    for (Id G = 0; G < static_cast<Id>(DB.numGlobals()); ++G)
      for (Id H : sortedHeaps(globalCell(G)))
        R.Gpts.push_back({G, H, Eps});

    R.Stat.NumPts = R.Pts.size();
    R.Stat.NumHpts = R.Hpts.size();
    R.Stat.NumHload = R.Hload.size();
    R.Stat.NumCall = R.Call.size();
    R.Stat.NumReach = R.Reach.size();
    R.Stat.NumGpts = R.Gpts.size();
    R.Stat.DomainSize = R.Dom->size();
    R.Stat.WorkItems = WorkItems;
    R.Stat.Seconds = Timer.seconds();
    R.Stat.Term = Meter.reason();
    R.Stat.Progress.Iterations = WorkItems;
    R.Stat.Progress.Derivations =
        static_cast<std::size_t>(Meter.derivations());
    R.Stat.Progress.PendingWork = Work.size() + MethodWork.size();
    return R;
  }

  std::vector<Id> sortedHeaps(std::uint32_t Cell) const {
    std::vector<Id> Heaps(Pts[Cell].begin(), Pts[Cell].end());
    std::sort(Heaps.begin(), Heaps.end());
    return Heaps;
  }

  //===--- State ----------------------------------------------------------===//

  const FactDB &DB;
  ctx::Config Cfg;
  BudgetMeter Meter;
  UnionFind UF;
  BindingPairs Binds;

  std::uint32_t NextCell = 0;
  std::vector<std::unordered_set<Id>> Pts;
  std::vector<std::vector<CellEdge>> Out;
  std::unordered_map<std::uint64_t, std::uint32_t> FieldCellOf;
  std::vector<std::pair<Id, Id>> FieldCells; // (heap, field) per field cell

  std::vector<std::vector<std::pair<Id, std::uint32_t>>> LoadRows, StoreRows;
  std::vector<std::vector<std::pair<Id, Id>>> VirtRows;
  std::vector<std::vector<std::pair<Id, Id>>> StaticByMethod, NewByMethod,
      GloadByMethod;

  std::vector<Id> HeapTypeOf, ThisOf;
  std::unordered_map<std::uint64_t, Id> Dispatch;
  std::unordered_set<std::uint64_t> SubtypePairs;

  std::vector<bool> Reached;
  std::deque<std::uint64_t> Work; // (cell << 32) | heap
  std::deque<Id> MethodWork;
  std::unordered_set<std::uint64_t> CallSeen;
  std::vector<std::pair<Id, Id>> Calls;
  std::size_t WorkItems = 0;
};

} // namespace

FactDB analysis::unifyView(const FactDB &DB) {
  FactDB View = DB;
  std::unordered_set<std::uint64_t> Have;
  for (const auto &A : DB.Assigns)
    Have.insert(pairKey(A.From, A.To));
  auto AddBoth = [&](Id A, Id B) {
    if (A != B && Have.insert(pairKey(A, B)).second)
      View.Assigns.push_back({A, B});
    if (A != B && Have.insert(pairKey(B, A)).second)
      View.Assigns.push_back({B, A});
  };
  for (const auto &A : DB.Assigns)
    AddBoth(A.From, A.To); // Symmetrize the originals.
  BindingPairs Binds(DB);
  forEachChaBinding(DB, [&](Id Invoke, Id Callee) {
    Binds.forEachPair(Invoke, Callee, AddBoth);
  });
  return View;
}

Results analysis::solveUnify(const FactDB &DB, const ctx::Config &Cfg,
                             const SolverOptions &Opts) {
  assert(Cfg.SolveMode == ctx::Mode::Unify && "not a unify configuration");
  assert(Cfg.validate().empty() && "invalid analysis configuration");
  UnifySolver S(DB, Cfg, Opts);
  return S.run();
}
