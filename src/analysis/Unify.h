//===- analysis/Unify.h - Unification (Steensgaard) solver ------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `unify` abstraction flavour: a Steensgaard-style unification solve
/// in the spirit of "Unification-based Pointer Analysis without
/// Oversharing" (arXiv 1906.01706), the cheapest rung of the degradation
/// ladder — coarser than the insensitive Andersen solve but near-linear.
///
/// The flavour has one semantics with two equivalent realizations:
///
/// 1. The *fast path* (solveUnify): a union-find with union-by-rank and
///    path compression collapses every plain-assignment component and
///    every CHA-bound parameter/return/throw pair into one equivalence
///    class, then a single directed propagation pass runs the remaining
///    statement kinds over the quotient graph. The oversharing controls:
///    casts and virtual dispatch stay *directed and type-filtered* (they
///    never merge classes), and field/global cells stay inclusion-based,
///    so one bad merge cannot leak arbitrary heaps across a cast or an
///    unrelated dispatch target.
///
/// 2. The *view formulation* (unifyView): a FactDB whose assignment
///    relation is symmetrized (every assign reversed) and extended with
///    bidirectional actual<->formal, return<->assign_return, and
///    throw<->catch rows for every class-hierarchy-possible binding of
///    each invocation. The insensitive fixpoint of the vanilla Figure-3
///    rules over this view *is* the unification answer: bidirectional
///    edges equalize points-to sets exactly along the union-find classes.
///
/// solve() uses the fast path by default and switches to the native
/// engine over unifyView(DB) when provenance or checkpointing is
/// requested — the view needs no unification-specific deduction rules,
/// so closure and support certificates check unify results with the
/// standard machinery (against the view). Both paths materialize the
/// same Results shape; every downstream consumer works unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_ANALYSIS_UNIFY_H
#define CTP_ANALYSIS_UNIFY_H

#include "analysis/Solver.h"

namespace ctp {
namespace analysis {

/// The symmetrized fact view whose insensitive fixpoint equals the
/// unification answer. Adds no entities: only (deduplicated) assign rows
/// between existing variables, so ids, names, and every other predicate
/// carry over verbatim.
facts::FactDB unifyView(const facts::FactDB &DB);

/// The union-find fast path. \p Cfg must validate with SolveMode ==
/// Mode::Unify. Budget-aware like the native solver (a tripped run
/// returns a sound subset tagged with its TerminationReason); provenance
/// and checkpoint options are not supported here — analysis::solve
/// reroutes such requests through the view formulation.
Results solveUnify(const facts::FactDB &DB, const ctx::Config &Cfg,
                   const SolverOptions &Opts = SolverOptions());

} // namespace analysis
} // namespace ctp

#endif // CTP_ANALYSIS_UNIFY_H
