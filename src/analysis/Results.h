//===- analysis/Results.h - Analysis results and projections ----*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The output of one analysis run: the context-sensitive derived relations
/// (whose sizes are the primary measurements of Figure 6), the interned
/// domain needed to interpret transformation ids, timing statistics, and
/// the context-insensitive projections used for the precision comparisons
/// of Section 6 ("pts_ci(Y,H) <=> ∃A: pts(Y,H,A)").
///
//===----------------------------------------------------------------------===//

#ifndef CTP_ANALYSIS_RESULTS_H
#define CTP_ANALYSIS_RESULTS_H

#include "analysis/Facts.h"
#include "analysis/Provenance.h"
#include "ctx/Domain.h"
#include "support/Budget.h"
#include "support/Interner.h"
#include "support/Stats.h"

#include <array>
#include <memory>
#include <string>
#include <vector>

namespace ctp {
namespace analysis {

/// Counters and timing for one run.
struct Stats {
  std::size_t NumPts = 0;
  std::size_t NumHpts = 0;
  std::size_t NumHload = 0;
  std::size_t NumCall = 0;
  std::size_t NumReach = 0;
  std::size_t NumGpts = 0;
  /// Figure 6's "Total": pts + hpts + call (hload/reach are bookkeeping
  /// relations the paper does not report).
  std::size_t total() const { return NumPts + NumHpts + NumCall; }
  /// Number of distinct interned context transformations.
  std::size_t DomainSize = 0;
  /// Facts dropped or retired by subsumption collapsing (0 unless the
  /// CollapseSubsumedPts option is on).
  std::size_t CollapsedPts = 0;
  /// Worklist pops performed until fixpoint.
  std::size_t WorkItems = 0;
  /// Wall-clock solve time, excluding fact preprocessing (as in Figure 6).
  double Seconds = 0.0;
  /// Why the run stopped. Anything other than Converged marks a partial
  /// (but sound: subset-of-fixpoint) result produced under a budget.
  TerminationReason Term = TerminationReason::Converged;
  /// How far the run got; PendingWork is nonzero only on truncated runs.
  /// On a resumed run these are cumulative across the interrupted run(s).
  EngineProgress Progress;
  /// Non-fatal checkpoint diagnostics: a snapshot restore that failed its
  /// structural checks (the run then cold-started) or a snapshot write
  /// that failed. Empty when checkpointing is off or everything worked.
  std::string CheckpointError;
  /// Why requested provenance was not recorded (resumed run, unsupported
  /// back-end). Empty when provenance was off or was recorded.
  std::string ProvenanceDropped;
};

/// Full result of one analysis run. Movable, not copyable (owns the
/// interned domain).
class Results {
public:
  Results() = default;
  Results(Results &&) = default;
  Results &operator=(Results &&) = default;

  ctx::Config Config;
  std::vector<PtsFact> Pts;
  std::vector<HptsFact> Hpts;
  std::vector<HloadFact> Hload;
  std::vector<CallFact> Call;
  std::vector<ReachFact> Reach;
  std::vector<GptsFact> Gpts;
  Stats Stat;

  /// Domain interpreting the TransformIds stored in the relations.
  std::unique_ptr<ctx::Domain> Dom;
  /// Interner for reach-context vectors.
  std::shared_ptr<Interner<ctx::CtxtVec, ctx::CtxtVecHash>> ReachCtxts;
  /// First-derivation provenance (null unless recording was requested and
  /// actually ran — see SolverOptions::Provenance).
  std::unique_ptr<ProvenanceGraph> Prov;

  // --- Context-insensitive projections (sorted, deduplicated). ---

  /// {(Var, Heap)} with the transformation projected out.
  std::vector<std::array<std::uint32_t, 2>> ciPts() const;
  /// {(Base, Field, Heap)}.
  std::vector<std::array<std::uint32_t, 3>> ciHpts() const;
  /// {(Invoke, Method)}.
  std::vector<std::array<std::uint32_t, 2>> ciCall() const;
  /// {Method}: reachable methods.
  std::vector<std::uint32_t> ciReach() const;

  /// Sorted heap sites \p Var may point to, in any context.
  std::vector<std::uint32_t> pointsTo(std::uint32_t Var) const;
};

} // namespace analysis
} // namespace ctp

#endif // CTP_ANALYSIS_RESULTS_H
