//===- analysis/DatalogFrontend.cpp - Rules-to-Datalog pipeline -----------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/DatalogFrontend.h"

#include "datalog/Engine.h"
#include "support/Stats.h"

#include <cassert>

using namespace ctp;
using namespace ctp::analysis;
using namespace ctp::datalog;
using ctx::CtxtVec;
using facts::FactDB;

namespace {

/// Rule-construction helper: names variables 0..N-1 and keeps the atom
/// syntax close to Figure 3.
struct RuleBuilder {
  Rule R;

  RuleBuilder &head(std::uint32_t Rel, std::initializer_list<Term> Args) {
    R.Head = {Rel, Args};
    return *this;
  }
  RuleBuilder &atom(std::uint32_t Rel, std::initializer_list<Term> Args) {
    R.Body.push_back({Rel, Args});
    return *this;
  }
  RuleBuilder &
  builtin(std::string Name,
          std::function<std::optional<Value>(const std::vector<Value> &)> Fn,
          std::initializer_list<VarIdx> Inputs,
          std::optional<VarIdx> Output) {
    BuiltinCall B;
    B.Name = std::move(Name);
    B.Fn = std::move(Fn);
    B.Inputs = Inputs;
    B.Output = Output;
    R.Builtins.push_back(std::move(B));
    return *this;
  }
  Rule take(std::uint32_t NumVars) {
    R.NumVars = NumVars;
    return std::move(R);
  }
};

Term v(VarIdx V) { return Term::var(V); }

/// Reassembles arity-\p Arity tuples from a snapshot's flat word stream.
std::vector<Tuple> tuplesOf(const std::vector<std::uint32_t> &Words,
                            unsigned Arity) {
  std::vector<Tuple> Out;
  Out.reserve(Words.size() / Arity);
  for (std::size_t I = 0; I < Words.size(); I += Arity) {
    Tuple T;
    for (unsigned C = 0; C < Arity; ++C)
      T.V[T.N++] = Words[I + C];
    Out.push_back(T);
  }
  return Out;
}

/// One build+run of the Datalog pipeline. A failing snapshot restore
/// sets \p RestoreFailed and returns immediately; the caller re-invokes
/// without the snapshot, discarding the partially restored program,
/// domain, and context interner wholesale (they are all local here, so a
/// failed restore cannot leak state into the cold start).
Results solveOnce(const FactDB &DB, const ctx::Config &Cfg,
                  std::size_t *NumDerivations,
                  const DatalogSolveOptions &Opts,
                  const SolverSnapshot *Resume, std::string &RestoreErr,
                  bool &RestoreFailed) {
  assert(Cfg.validate().empty() && "invalid analysis configuration");
  Stopwatch Timer;

  std::vector<std::uint32_t> ClassOf(DB.numHeaps());
  for (std::size_t H = 0; H < DB.numHeaps(); ++H)
    ClassOf[H] = DB.classOfHeap(static_cast<std::uint32_t>(H));
  std::unique_ptr<ctx::Domain> Dom = ctx::makeDomain(Cfg, std::move(ClassOf));
  auto ReachCtxts =
      std::make_shared<Interner<CtxtVec, ctx::CtxtVecHash>>();

  Program Prog;

  // --- EDB relations (Figure 3's input predicates). ---
  std::uint32_t RAssign = Prog.addRelation("assign", 2);
  std::uint32_t RAssignNew = Prog.addRelation("assign_new", 3);
  std::uint32_t RAssignRet = Prog.addRelation("assign_return", 2);
  std::uint32_t RActual = Prog.addRelation("actual", 3);
  std::uint32_t RFormal = Prog.addRelation("formal", 3);
  std::uint32_t RHeapType = Prog.addRelation("heap_type", 2);
  std::uint32_t RImplements = Prog.addRelation("implements", 3);
  std::uint32_t RLoad = Prog.addRelation("load", 3);
  std::uint32_t RReturn = Prog.addRelation("return", 2);
  std::uint32_t RStaticInv = Prog.addRelation("static_invoke", 3);
  std::uint32_t RStore = Prog.addRelation("store", 3);
  std::uint32_t RThisVar = Prog.addRelation("this_var", 2);
  std::uint32_t RVirtInv = Prog.addRelation("virtual_invoke", 3);
  std::uint32_t RGlobalStore = Prog.addRelation("global_store", 2);
  std::uint32_t RGlobalLoad = Prog.addRelation("global_load", 3);
  std::uint32_t RThrow = Prog.addRelation("throw", 2);
  std::uint32_t RCatch = Prog.addRelation("catch", 2);
  std::uint32_t RCast = Prog.addRelation("cast", 3);
  std::uint32_t RSubtype = Prog.addRelation("subtype", 2);

  // --- IDB relations (Figure 3's derived predicates). ---
  std::uint32_t RPts = Prog.addRelation("pts", 3);
  std::uint32_t RHpts = Prog.addRelation("hpts", 4);
  std::uint32_t RHload = Prog.addRelation("hload", 4);
  std::uint32_t RCall = Prog.addRelation("call", 3);
  std::uint32_t RReach = Prog.addRelation("reach", 2);
  std::uint32_t RGpts = Prog.addRelation("gpts", 3);

  for (const auto &F : DB.Assigns)
    Prog.addFact(RAssign, {F.From, F.To});
  for (const auto &F : DB.AssignNews)
    Prog.addFact(RAssignNew, {F.Heap, F.To, F.InMethod});
  for (const auto &F : DB.AssignReturns)
    Prog.addFact(RAssignRet, {F.Invoke, F.To});
  for (const auto &F : DB.Actuals)
    Prog.addFact(RActual, {F.Var, F.Invoke, F.Ordinal});
  for (const auto &F : DB.Formals)
    Prog.addFact(RFormal, {F.Var, F.Method, F.Ordinal});
  for (const auto &F : DB.HeapTypes)
    Prog.addFact(RHeapType, {F.Heap, F.Type});
  for (const auto &F : DB.Implements)
    Prog.addFact(RImplements, {F.Method, F.Type, F.Sig});
  for (const auto &F : DB.Loads)
    Prog.addFact(RLoad, {F.Base, F.Field, F.To});
  for (const auto &F : DB.Returns)
    Prog.addFact(RReturn, {F.Var, F.Method});
  for (const auto &F : DB.StaticInvokes)
    Prog.addFact(RStaticInv, {F.Invoke, F.Target, F.InMethod});
  for (const auto &F : DB.Stores)
    Prog.addFact(RStore, {F.From, F.Field, F.Base});
  for (const auto &F : DB.ThisVars)
    Prog.addFact(RThisVar, {F.Var, F.Method});
  for (const auto &F : DB.VirtualInvokes)
    Prog.addFact(RVirtInv, {F.Invoke, F.Receiver, F.Sig});
  for (const auto &F : DB.GlobalStores)
    Prog.addFact(RGlobalStore, {F.From, F.Global});
  for (const auto &F : DB.GlobalLoads)
    Prog.addFact(RGlobalLoad, {F.Global, F.To, F.InMethod});
  for (const auto &F : DB.Throws)
    Prog.addFact(RThrow, {F.Var, F.Method});
  for (const auto &F : DB.Catches)
    Prog.addFact(RCatch, {F.Invoke, F.To});
  for (const auto &F : DB.Casts)
    Prog.addFact(RCast, {F.From, F.To, F.Type});
  for (const auto &F : DB.Subtypes)
    Prog.addFact(RSubtype, {F.Sub, F.Super});

  // [ENTRY] reach(main, [entry]) — pre-seeded derived facts.
  {
    CtxtVec Entry;
    Entry.push_back(ctx::EntryElem);
    Value Ctx = ReachCtxts->intern(Entry.takePrefix(Cfg.MethodDepth));
    for (std::uint32_t E : DB.EntryMethods)
      Prog.addFact(RReach, {E, Ctx});
  }

  // --- Builtin functors over the interned domain. ---
  unsigned M = Cfg.MethodDepth, H = Cfg.HeapDepth;
  ctx::Domain *D = Dom.get();
  auto *RC = ReachCtxts.get();

  auto RecordFn = [D, RC](const std::vector<Value> &In) {
    return std::optional<Value>(D->record((*RC)[In[0]]));
  };
  auto InvFn = [D](const std::vector<Value> &In) {
    return std::optional<Value>(D->inv(In[0]));
  };
  auto CompHH = [D, H](const std::vector<Value> &In) {
    return D->comp(In[0], In[1], H, H);
  };
  auto CompHM = [D, H, M](const std::vector<Value> &In) {
    return D->comp(In[0], In[1], H, M);
  };
  auto MergeVFn = [D](const std::vector<Value> &In) {
    return std::optional<Value>(D->mergeVirtual(In[0], In[1], In[2]));
  };
  auto MergeSFn = [D, RC](const std::vector<Value> &In) {
    return std::optional<Value>(D->mergeStatic(In[0], (*RC)[In[1]]));
  };
  auto TargetFn = [D, RC](const std::vector<Value> &In) {
    return std::optional<Value>(RC->intern(D->target(In[0])));
  };
  auto GlobalizeFn = [D](const std::vector<Value> &In) {
    return std::optional<Value>(D->globalize(In[0]));
  };
  auto RetargetFn = [D, RC](const std::vector<Value> &In) {
    return std::optional<Value>(D->retarget(In[0], (*RC)[In[1]]));
  };

  // --- The rules of Figure 3. Variable numbering is per rule. ---

  // [NEW] pts(Y,Hp,A) :- assign_new(Hp,Y,P), reach(P,Mx), A := record(Mx).
  {
    RuleBuilder B;
    enum { Hp, Y, P, Mx, A, N };
    B.head(RPts, {v(Y), v(Hp), v(A)})
        .atom(RAssignNew, {v(Hp), v(Y), v(P)})
        .atom(RReach, {v(P), v(Mx)})
        .builtin("record", RecordFn, {Mx}, A);
    Prog.addRule(B.take(N));
  }

  // [ASSIGN] pts(Y,Hp,A) :- pts(Z,Hp,A), assign(Z,Y).
  {
    RuleBuilder B;
    enum { Z, Hp, A, Y, N };
    B.head(RPts, {v(Y), v(Hp), v(A)})
        .atom(RPts, {v(Z), v(Hp), v(A)})
        .atom(RAssign, {v(Z), v(Y)});
    Prog.addRule(B.take(N));
  }

  // [CAST] pts(Y,Hp,A) :- pts(Z,Hp,A), cast(Z,Y,T), heap_type(Hp,Tp),
  //                       subtype(Tp,T).
  {
    RuleBuilder B;
    enum { Z, Hp, A, Y, T, Tp, N };
    B.head(RPts, {v(Y), v(Hp), v(A)})
        .atom(RPts, {v(Z), v(Hp), v(A)})
        .atom(RCast, {v(Z), v(Y), v(T)})
        .atom(RHeapType, {v(Hp), v(Tp)})
        .atom(RSubtype, {v(Tp), v(T)});
    Prog.addRule(B.take(N));
  }

  // [LOAD] hload(G,F,Z,A) :- pts(Y,G,A), load(Y,F,Z).
  {
    RuleBuilder B;
    enum { Y, G, A, F, Z, N };
    B.head(RHload, {v(G), v(F), v(Z), v(A)})
        .atom(RPts, {v(Y), v(G), v(A)})
        .atom(RLoad, {v(Y), v(F), v(Z)});
    Prog.addRule(B.take(N));
  }

  // [STORE] hpts(G,F,Hp,A) :- pts(X,Hp,Bt), store(X,F,Z), pts(Z,G,C),
  //                           IC := inv(C), A := comp_hh(Bt, IC).
  {
    RuleBuilder B;
    enum { X, Hp, Bt, F, Z, G, C, IC, A, N };
    B.head(RHpts, {v(G), v(F), v(Hp), v(A)})
        .atom(RPts, {v(X), v(Hp), v(Bt)})
        .atom(RStore, {v(X), v(F), v(Z)})
        .atom(RPts, {v(Z), v(G), v(C)})
        .builtin("inv", InvFn, {C}, IC)
        .builtin("comp_hh", CompHH, {Bt, IC}, A);
    Prog.addRule(B.take(N));
  }

  // [IND] pts(Y,Hp,A) :- hpts(G,F,Hp,Bt), hload(G,F,Y,C),
  //                      A := comp_hm(Bt, C).
  {
    RuleBuilder B;
    enum { G, F, Hp, Bt, Y, C, A, N };
    B.head(RPts, {v(Y), v(Hp), v(A)})
        .atom(RHpts, {v(G), v(F), v(Hp), v(Bt)})
        .atom(RHload, {v(G), v(F), v(Y), v(C)})
        .builtin("comp_hm", CompHM, {Bt, C}, A);
    Prog.addRule(B.take(N));
  }

  // [PARAM] pts(Y,Hp,A) :- pts(Z,Hp,Bt), actual(Z,I,O), call(I,P,C),
  //                        formal(Y,P,O), A := comp_hm(Bt, C).
  {
    RuleBuilder B;
    enum { Z, Hp, Bt, I, O, P, C, Y, A, N };
    B.head(RPts, {v(Y), v(Hp), v(A)})
        .atom(RPts, {v(Z), v(Hp), v(Bt)})
        .atom(RActual, {v(Z), v(I), v(O)})
        .atom(RCall, {v(I), v(P), v(C)})
        .atom(RFormal, {v(Y), v(P), v(O)})
        .builtin("comp_hm", CompHM, {Bt, C}, A);
    Prog.addRule(B.take(N));
  }

  // [RET] pts(Y,Hp,A) :- pts(Z,Hp,Bt), return(Z,P), call(I,P,C),
  //                      assign_return(I,Y), IC := inv(C),
  //                      A := comp_hm(Bt, IC).
  {
    RuleBuilder B;
    enum { Z, Hp, Bt, P, I, C, Y, IC, A, N };
    B.head(RPts, {v(Y), v(Hp), v(A)})
        .atom(RPts, {v(Z), v(Hp), v(Bt)})
        .atom(RReturn, {v(Z), v(P)})
        .atom(RCall, {v(I), v(P), v(C)})
        .atom(RAssignRet, {v(I), v(Y)})
        .builtin("inv", InvFn, {C}, IC)
        .builtin("comp_hm", CompHM, {Bt, IC}, A);
    Prog.addRule(B.take(N));
  }

  // [VIRT] call(I,Q,C) :- virtual_invoke(I,Z,S), pts(Z,Hp,Bt),
  //                       heap_type(Hp,T), implements(Q,T,S),
  //                       C := merge(Hp,I,Bt).
  {
    RuleBuilder B;
    enum { I, Z, S, Hp, Bt, T, Q, C, N };
    B.head(RCall, {v(I), v(Q), v(C)})
        .atom(RVirtInv, {v(I), v(Z), v(S)})
        .atom(RPts, {v(Z), v(Hp), v(Bt)})
        .atom(RHeapType, {v(Hp), v(T)})
        .atom(RImplements, {v(Q), v(T), v(S)})
        .builtin("merge", MergeVFn, {Hp, I, Bt}, C);
    Prog.addRule(B.take(N));
  }

  // [VIRT-this] pts(Y,Hp,A) :- virtual_invoke(I,Z,S), pts(Z,Hp,Bt),
  //                            heap_type(Hp,T), implements(Q,T,S),
  //                            this_var(Y,Q), C := merge(Hp,I,Bt),
  //                            A := comp_hm(Bt, C).
  {
    RuleBuilder B;
    enum { I, Z, S, Hp, Bt, T, Q, Y, C, A, N };
    B.head(RPts, {v(Y), v(Hp), v(A)})
        .atom(RVirtInv, {v(I), v(Z), v(S)})
        .atom(RPts, {v(Z), v(Hp), v(Bt)})
        .atom(RHeapType, {v(Hp), v(T)})
        .atom(RImplements, {v(Q), v(T), v(S)})
        .atom(RThisVar, {v(Y), v(Q)})
        .builtin("merge", MergeVFn, {Hp, I, Bt}, C)
        .builtin("comp_hm", CompHM, {Bt, C}, A);
    Prog.addRule(B.take(N));
  }

  // [STATIC] call(I,Q,A) :- static_invoke(I,Q,P), reach(P,Mx),
  //                         A := merge_s(I,Mx).
  {
    RuleBuilder B;
    enum { I, Q, P, Mx, A, N };
    B.head(RCall, {v(I), v(Q), v(A)})
        .atom(RStaticInv, {v(I), v(Q), v(P)})
        .atom(RReach, {v(P), v(Mx)})
        .builtin("merge_s", MergeSFn, {I, Mx}, A);
    Prog.addRule(B.take(N));
  }

  // [THROW] pts(Y,Hp,A) :- pts(Z,Hp,Bt), throw(Z,P), call(I,P,C),
  //                        catch(I,Y), IC := inv(C), A := comp_hm(Bt,IC).
  {
    RuleBuilder B;
    enum { Z, Hp, Bt, P, I, C, Y, IC, A, N };
    B.head(RPts, {v(Y), v(Hp), v(A)})
        .atom(RPts, {v(Z), v(Hp), v(Bt)})
        .atom(RThrow, {v(Z), v(P)})
        .atom(RCall, {v(I), v(P), v(C)})
        .atom(RCatch, {v(I), v(Y)})
        .builtin("inv", InvFn, {C}, IC)
        .builtin("comp_hm", CompHM, {Bt, IC}, A);
    Prog.addRule(B.take(N));
  }

  // [GSTORE] gpts(G,Hp,A) :- pts(X,Hp,Bt), global_store(X,G),
  //                          A := globalize(Bt).
  {
    RuleBuilder B;
    enum { X, Hp, Bt, G, A, N };
    B.head(RGpts, {v(G), v(Hp), v(A)})
        .atom(RPts, {v(X), v(Hp), v(Bt)})
        .atom(RGlobalStore, {v(X), v(G)})
        .builtin("globalize", GlobalizeFn, {Bt}, A);
    Prog.addRule(B.take(N));
  }

  // [GLOAD] pts(Z,Hp,A) :- gpts(G,Hp,Bt), global_load(G,Z,P),
  //                        reach(P,Mx), A := retarget(Bt,Mx).
  {
    RuleBuilder B;
    enum { G, Hp, Bt, Z, P, Mx, A, N };
    B.head(RPts, {v(Z), v(Hp), v(A)})
        .atom(RGpts, {v(G), v(Hp), v(Bt)})
        .atom(RGlobalLoad, {v(G), v(Z), v(P)})
        .atom(RReach, {v(P), v(Mx)})
        .builtin("retarget", RetargetFn, {Bt, Mx}, A);
    Prog.addRule(B.take(N));
  }

  // [REACH] reach(P,Mx) :- call(I,P,C), Mx := target(C).
  {
    RuleBuilder B;
    enum { I, P, C, Mx, N };
    B.head(RReach, {v(P), v(Mx)})
        .atom(RCall, {v(I), v(P), v(C)})
        .builtin("target", TargetFn, {C}, Mx);
    Prog.addRule(B.take(N));
  }

  const CheckpointPolicy &Ckpt = Opts.Checkpoint;
  std::uint64_t FP = 0, LH = 0;
  if (Ckpt.enabled() || Resume) {
    FP = DB.fingerprint();
    LH = DB.layoutHash();
  }

  if (Resume) {
    const SolverSnapshot &S = *Resume;
    auto Fail = [&](const char *Msg) {
      RestoreErr = Msg;
      RestoreFailed = true;
      return Results();
    };
    if (S.BackendTag != SolverSnapshot::Backend::Datalog)
      return Fail("snapshot was written by a different back-end");
    if (S.Collapse)
      return Fail("snapshot collapse mode differs from this run");
    if (S.Config.Abs != Cfg.Abs || S.Config.Flav != Cfg.Flav ||
        S.Config.MethodDepth != Cfg.MethodDepth ||
        S.Config.HeapDepth != Cfg.HeapDepth)
      return Fail("snapshot configuration differs from this run");
    if (S.Fingerprint != FP)
      return Fail("snapshot fingerprint does not match the fact database");
    if (S.LayoutHash != LH)
      return Fail("snapshot fact layout does not match the fact database");
    if (!D->importInterned(S.DomainWords))
      return Fail("snapshot transformation domain is inconsistent");
    if (!decodeCtxtInterner(S.ReachCtxtWords, *RC))
      return Fail("snapshot reach-context table is inconsistent");
    const std::uint32_t NumT = static_cast<std::uint32_t>(D->size());
    const std::uint32_t NumCtxt = RC->size();
    const auto NumVars = static_cast<std::uint32_t>(DB.numVars());
    const auto NumHeaps = static_cast<std::uint32_t>(DB.numHeaps());
    const auto NumFields = static_cast<std::uint32_t>(DB.numFields());
    const auto NumInvokes = static_cast<std::uint32_t>(DB.numInvokes());
    const auto NumMethods = static_cast<std::uint32_t>(DB.numMethods());
    const auto NumGlobals = static_cast<std::uint32_t>(DB.numGlobals());
    auto RelOk = [](const RelationWords &R,
                    std::initializer_list<std::uint32_t> Limits) {
      const unsigned Arity = static_cast<unsigned>(Limits.size());
      for (std::size_t I = 0; I < R.Words.size(); I += Arity) {
        unsigned C = 0;
        for (std::uint32_t Limit : Limits)
          if (R.Words[I + C++] >= Limit)
            return false;
      }
      return true;
    };
    if (!RelOk(S.Pts, {NumVars, NumHeaps, NumT}) ||
        !RelOk(S.Hpts, {NumHeaps, NumFields, NumHeaps, NumT}) ||
        !RelOk(S.Hload, {NumHeaps, NumFields, NumVars, NumT}) ||
        !RelOk(S.Call, {NumInvokes, NumMethods, NumT}) ||
        !RelOk(S.Reach, {NumMethods, NumCtxt}) ||
        !RelOk(S.Gpts, {NumGlobals, NumHeaps, NumT}))
      return Fail("snapshot relations have out-of-range ids");
    Prog.restoreDerived(RPts, tuplesOf(S.Pts.Words, 3), S.Pts.Head);
    Prog.restoreDerived(RHpts, tuplesOf(S.Hpts.Words, 4), S.Hpts.Head);
    Prog.restoreDerived(RHload, tuplesOf(S.Hload.Words, 4), S.Hload.Head);
    Prog.restoreDerived(RCall, tuplesOf(S.Call.Words, 3), S.Call.Head);
    Prog.restoreDerived(RReach, tuplesOf(S.Reach.Words, 2), S.Reach.Head);
    Prog.restoreDerived(RGpts, tuplesOf(S.Gpts.Words, 3), S.Gpts.Head);
    Prog.restoreCounters(static_cast<std::size_t>(S.Rounds),
                         static_cast<std::size_t>(S.DerivedTuples),
                         static_cast<std::size_t>(S.Derivations));
  }

  SolverSnapshot LastSnap;
  bool WroteSnap = false;
  std::string CkptErr;
  if (Ckpt.enabled()) {
    const std::string Path = checkpointPath(Ckpt.Dir);
    Prog.setCheckpointHook(
        Ckpt.EveryDerivations, [&, Path](const Program::CheckpointView &V) {
          SolverSnapshot S;
          S.BackendTag = SolverSnapshot::Backend::Datalog;
          S.Collapse = false;
          S.Config = Cfg;
          S.Fingerprint = FP;
          S.LayoutHash = LH;
          D->exportInterned(S.DomainWords);
          encodeCtxtInterner(*RC, S.ReachCtxtWords);
          std::size_t Pending = 0;
          for (const auto &St : V.Derived) {
            RelationWords *Dst = nullptr;
            if (St.Rel == RPts)
              Dst = &S.Pts;
            else if (St.Rel == RHpts)
              Dst = &S.Hpts;
            else if (St.Rel == RHload)
              Dst = &S.Hload;
            else if (St.Rel == RCall)
              Dst = &S.Call;
            else if (St.Rel == RReach)
              Dst = &S.Reach;
            else if (St.Rel == RGpts)
              Dst = &S.Gpts;
            if (!Dst)
              continue;
            Dst->Head = St.DeltaStart;
            for (const Tuple &T : *St.Rows)
              for (unsigned C = 0; C < T.N; ++C)
                Dst->Words.push_back(T.V[C]);
            Pending += St.Rows->size() - St.DeltaStart;
          }
          S.Rounds = V.Rounds;
          S.DerivedTuples = V.DerivedTuples;
          S.Derivations = V.Derivations;
          S.Tuples = V.DerivedTuples;
          S.Term = TerminationReason::Converged;
          S.Progress.Iterations = V.Rounds;
          S.Progress.Derivations = V.Derivations;
          S.Progress.PendingWork = Pending;
          std::string E = analysis::writeSnapshot(S, Path);
          if (E.empty()) {
            LastSnap = std::move(S);
            WroteSnap = true;
          } else if (CkptErr.empty()) {
            CkptErr = "checkpoint write failed: " + E;
          }
        });
  }

  RunStats RS = Prog.run(Opts.Budget);
  if (NumDerivations)
    *NumDerivations = Prog.numDerivations();

  if (Ckpt.enabled()) {
    if (RS.Term == TerminationReason::Converged) {
      if (Ckpt.KeepOnConverge) {
        // Mirror the native solver: a final converged snapshot with every
        // relation head at size, so a restore warm-starts straight into
        // the fixpoint.
        SolverSnapshot S;
        S.BackendTag = SolverSnapshot::Backend::Datalog;
        S.Collapse = false;
        S.Config = Cfg;
        S.Fingerprint = FP;
        S.LayoutHash = LH;
        D->exportInterned(S.DomainWords);
        encodeCtxtInterner(*RC, S.ReachCtxtWords);
        const std::pair<std::uint32_t, RelationWords *> Rels[] = {
            {RPts, &S.Pts},     {RHpts, &S.Hpts},   {RHload, &S.Hload},
            {RCall, &S.Call},   {RReach, &S.Reach}, {RGpts, &S.Gpts}};
        for (const auto &[Rel, Dst] : Rels) {
          const std::vector<Tuple> &Rows = Prog.relation(Rel).rows();
          Dst->Head = Rows.size();
          for (const Tuple &T : Rows)
            for (unsigned C = 0; C < T.N; ++C)
              Dst->Words.push_back(T.V[C]);
        }
        S.Rounds = RS.Rounds;
        S.DerivedTuples = RS.DerivedTuples;
        S.Derivations = Prog.numDerivations();
        S.Tuples = RS.DerivedTuples;
        S.Term = TerminationReason::Converged;
        S.Progress.Iterations = RS.Rounds;
        S.Progress.Derivations = Prog.numDerivations();
        S.Progress.PendingWork = 0;
        std::string E =
            analysis::writeSnapshot(S, checkpointPath(Ckpt.Dir));
        if (!E.empty() && CkptErr.empty())
          CkptErr = "checkpoint write failed: " + E;
      } else {
        // The fixpoint is in hand; a stale snapshot must not outlive it.
        removeSnapshot(Ckpt.Dir);
      }
    } else if (WroteSnap) {
      // Budget exhausted mid-round: the resumable state stays the last
      // boundary's, but the trailer should carry the trip reason and the
      // final progress counters of this invocation.
      LastSnap.Term = RS.Term;
      LastSnap.Progress.Iterations = RS.Rounds;
      LastSnap.Progress.Derivations = Prog.numDerivations();
      LastSnap.Progress.PendingWork = RS.PendingWork;
      std::string E =
          analysis::writeSnapshot(LastSnap, checkpointPath(Ckpt.Dir));
      if (!E.empty() && CkptErr.empty())
        CkptErr = "checkpoint write failed: " + E;
    }
  }

  Results R;
  R.Config = Cfg;
  for (const Tuple &T : Prog.relation(RPts).rows())
    R.Pts.push_back({T[0], T[1], T[2]});
  for (const Tuple &T : Prog.relation(RHpts).rows())
    R.Hpts.push_back({T[0], T[1], T[2], T[3]});
  for (const Tuple &T : Prog.relation(RHload).rows())
    R.Hload.push_back({T[0], T[1], T[2], T[3]});
  for (const Tuple &T : Prog.relation(RCall).rows())
    R.Call.push_back({T[0], T[1], T[2]});
  for (const Tuple &T : Prog.relation(RReach).rows())
    R.Reach.push_back({T[0], T[1]});
  for (const Tuple &T : Prog.relation(RGpts).rows())
    R.Gpts.push_back({T[0], T[1], T[2]});
  R.Stat.NumGpts = R.Gpts.size();
  R.Stat.NumPts = R.Pts.size();
  R.Stat.NumHpts = R.Hpts.size();
  R.Stat.NumHload = R.Hload.size();
  R.Stat.NumCall = R.Call.size();
  R.Stat.NumReach = R.Reach.size();
  R.Stat.DomainSize = Dom->size();
  R.Stat.Seconds = Timer.seconds();
  R.Stat.Term = RS.Term;
  R.Stat.Progress.Iterations = RS.Rounds;
  R.Stat.Progress.Derivations = Prog.numDerivations();
  R.Stat.Progress.PendingWork = RS.PendingWork;
  R.Stat.CheckpointError = CkptErr;
  R.Dom = std::move(Dom);
  R.ReachCtxts = ReachCtxts;
  return R;
}

} // namespace

Results analysis::solveViaDatalog(const FactDB &DB, const ctx::Config &Cfg,
                                  std::size_t *NumDerivations,
                                  const BudgetSpec &Budget) {
  DatalogSolveOptions Opts;
  Opts.Budget = Budget;
  return solveViaDatalog(DB, Cfg, Opts, NumDerivations);
}

Results analysis::solveViaDatalog(const FactDB &DB, const ctx::Config &Cfg,
                                  const DatalogSolveOptions &Opts,
                                  std::size_t *NumDerivations) {
  std::string RestoreErr;
  bool RestoreFailed = false;
  Results R = solveOnce(DB, Cfg, NumDerivations, Opts, Opts.Resume,
                        RestoreErr, RestoreFailed);
  if (!RestoreFailed)
    return R;
  // A snapshot that fails its structural checks must never crash the
  // run: rebuild everything from scratch without it.
  std::string Ignored;
  bool ColdFailed = false;
  R = solveOnce(DB, Cfg, NumDerivations, Opts, nullptr, Ignored, ColdFailed);
  if (R.Stat.CheckpointError.empty())
    R.Stat.CheckpointError = "resume failed: " + RestoreErr;
  return R;
}
