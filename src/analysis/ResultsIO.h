//===- analysis/ResultsIO.h - Result serialization --------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Writes analysis results to a directory of TSV files, mirroring how the
/// paper's Datalog pipeline materializes derived relations: the full
/// context-sensitive relations (with transformations rendered in the
/// abstraction's syntax) and the context-insensitive projections that
/// clients typically consume.
///
/// Files written:
///   Pts.tsv      var  heap  transformation
///   Hpts.tsv     base-heap  field  heap  transformation
///   Call.tsv     invocation  method  transformation
///   Reach.tsv    method  context-prefix
///   Gpts.tsv     global  heap  transformation
///   CiPts.tsv    var  heap
///   CiCall.tsv   invocation  method
///
//===----------------------------------------------------------------------===//

#ifndef CTP_ANALYSIS_RESULTSIO_H
#define CTP_ANALYSIS_RESULTSIO_H

#include "analysis/Results.h"
#include "facts/FactDB.h"

#include <string>

namespace ctp {
namespace analysis {

/// Writes \p R into directory \p Dir (which must exist), using \p DB's
/// entity names. \returns an empty string on success.
std::string writeResultsDir(const facts::FactDB &DB, const Results &R,
                            const std::string &Dir);

} // namespace analysis
} // namespace ctp

#endif // CTP_ANALYSIS_RESULTSIO_H
