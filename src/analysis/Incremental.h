//===- analysis/Incremental.h - Incremental re-solve on fact deltas -------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-solving a converged fixpoint after a small edit of the input facts,
/// instead of from scratch. The native path:
///
///   - *Additions* keep every previously derived tuple (the rules are
///     monotone in the input predicates) and merely continue semi-naive
///     propagation: the surviving relations are replayed checkpoint-style
///     and the worklists seeded with just the tuples the new rows can
///     join against.
///   - *Removals* use the first-derivation provenance graph
///     (analysis/Provenance.h) DRed-style: one forward scan in node-id
///     order (premises always precede conclusions) marks every tuple
///     whose recorded first derivation is grounded — directly or through
///     a premise — in a removed input row. Survivors' chains ground only
///     in surviving rows, so survivors are a subset of the new fixpoint;
///     re-enqueueing the survivors and draining re-derives exactly the
///     over-deleted remainder.
///
/// A bounded-damage heuristic falls back to a cold re-solve when the
/// invalidated frontier exceeds a configurable fraction of the previous
/// fixpoint — past that point replay costs more than it saves. The
/// fallback (also taken when the previous run carries no usable
/// provenance, e.g. after a warm start from a snapshot) is always a cold
/// solve of the *edited* facts, so the outcome is identical either way;
/// IncrementalOutcome records which path ran and why.
///
/// The Datalog back-end exposes no per-tuple derivation order, so its
/// entry point documents itself as a full re-solve.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_ANALYSIS_INCREMENTAL_H
#define CTP_ANALYSIS_INCREMENTAL_H

#include "analysis/Checkpoint.h"
#include "analysis/Results.h"
#include "analysis/Solver.h"
#include "ctx/Config.h"
#include "facts/FactDB.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ctp {
namespace analysis {

/// The solver-visible summary of one fact edit. The edited FactDB is the
/// authority; this struct only tells the incremental solver *what
/// changed* so it can seed (additions) and invalidate (removals)
/// precisely. Entities are append-only — a delta may introduce new
/// variables/heaps/methods/... but never retract one, so every id of the
/// previous run stays valid in the edited database.
struct InputDelta {
  // Narrow additions: rows already present in the edited FactDB whose
  // consequences can be seeded from one driving join side.
  std::vector<facts::AssignFact> AddAssigns;
  std::vector<facts::CastFact> AddCasts;
  std::vector<facts::LoadFact> AddLoads;
  std::vector<facts::StoreFact> AddStores;
  std::vector<facts::ActualFact> AddActuals;
  std::vector<facts::FormalFact> AddFormals;
  std::vector<facts::ReturnFact> AddReturns;
  std::vector<facts::AssignReturnFact> AddAssignReturns;
  std::vector<facts::ThrowFact> AddThrows;
  std::vector<facts::CatchFact> AddCatches;
  std::vector<facts::VirtualInvokeFact> AddVirtualInvokes;
  std::vector<facts::StaticInvokeFact> AddStaticInvokes;
  std::vector<facts::AssignNewFact> AddAssignNews;
  std::vector<facts::GlobalStoreFact> AddGlobalStores;
  std::vector<facts::GlobalLoadFact> AddGlobalLoads;
  std::vector<std::uint32_t> AddEntries; ///< new entry-point methods
  /// heap_type / implements / subtype / this_var additions can enable
  /// rule instances anywhere (they are side conditions, not join-driven
  /// premises); they force a full re-enqueue of the survivors.
  bool WideAdd = false;

  // Removals: rows already erased from the edited FactDB, matched
  // against the provenance graph to invalidate their consequences.
  std::vector<facts::AssignFact> RmAssigns;
  std::vector<facts::CastFact> RmCasts;
  std::vector<facts::LoadFact> RmLoads;
  std::vector<facts::StoreFact> RmStores;
  std::vector<facts::ActualFact> RmActuals;
  std::vector<facts::FormalFact> RmFormals;
  std::vector<facts::ReturnFact> RmReturns;
  std::vector<facts::AssignReturnFact> RmAssignReturns;
  std::vector<facts::ThrowFact> RmThrows;
  std::vector<facts::CatchFact> RmCatches;
  std::vector<facts::VirtualInvokeFact> RmVirtualInvokes;
  std::vector<facts::StaticInvokeFact> RmStaticInvokes;
  std::vector<facts::AssignNewFact> RmAssignNews;
  std::vector<facts::GlobalStoreFact> RmGlobalStores;
  std::vector<facts::GlobalLoadFact> RmGlobalLoads;
  std::vector<std::uint32_t> RmEntries; ///< retracted entry-point methods
  /// heap_type / implements / subtype / this_var removals cannot be
  /// attributed through the provenance aux words (they are summarized
  /// side conditions); they force a cold re-solve.
  bool WideRemove = false;

  /// Taint/spawn/sanitizer annotations changed. Invisible to the solver;
  /// the caller must recompute its client layers from the edited FactDB.
  bool ClientFactsChanged = false;

  bool hasRemovals() const {
    return WideRemove || !RmAssigns.empty() || !RmCasts.empty() ||
           !RmLoads.empty() || !RmStores.empty() || !RmActuals.empty() ||
           !RmFormals.empty() || !RmReturns.empty() ||
           !RmAssignReturns.empty() || !RmThrows.empty() ||
           !RmCatches.empty() || !RmVirtualInvokes.empty() ||
           !RmStaticInvokes.empty() || !RmAssignNews.empty() ||
           !RmGlobalStores.empty() || !RmGlobalLoads.empty() ||
           !RmEntries.empty();
  }

  bool hasAdditions() const {
    return WideAdd || !AddAssigns.empty() || !AddCasts.empty() ||
           !AddLoads.empty() || !AddStores.empty() || !AddActuals.empty() ||
           !AddFormals.empty() || !AddReturns.empty() ||
           !AddAssignReturns.empty() || !AddThrows.empty() ||
           !AddCatches.empty() || !AddVirtualInvokes.empty() ||
           !AddStaticInvokes.empty() || !AddAssignNews.empty() ||
           !AddGlobalStores.empty() || !AddGlobalLoads.empty() ||
           !AddEntries.empty();
  }

  /// Anything the fixpoint itself depends on (as opposed to pure
  /// taint/spawn annotation churn).
  bool solverVisible() const { return hasAdditions() || hasRemovals(); }
};

struct IncrementalOptions {
  /// Budget/collapse/provenance options of the re-solve. Provenance is
  /// forced on (the next delta needs the new graph); Resume and
  /// Checkpoint are ignored — promotion of a post-delta snapshot is the
  /// caller's (transactional) responsibility, never the solver's.
  SolverOptions Solver;
  /// Fall back to a cold re-solve when more than this fraction of the
  /// previous fixpoint is invalidated. Negative disables the heuristic.
  double MaxDamageRatio = 0.5;
};

struct IncrementalOutcome {
  Results R;
  /// True when the incremental path ran; false when the outcome is a
  /// cold re-solve (FallbackReason says why). Both yield the fixpoint of
  /// the edited facts.
  bool Incremental = false;
  std::string FallbackReason;
  std::size_t Invalidated = 0; ///< previous tuples torn down (incremental)
  std::size_t Survivors = 0;   ///< previous tuples replayed (incremental)
};

/// Re-solves after an edit: \p NewDB is the edited database, \p Prev the
/// converged previous result over the pre-edit database (same \p Cfg),
/// \p D the edit summary. Never fails: every precondition miss (previous
/// run not converged, provenance missing/truncated, configuration
/// mismatch, wide removal, damage budget exceeded) degrades to a cold
/// re-solve of \p NewDB with the reason recorded.
IncrementalOutcome resolveIncremental(const facts::FactDB &NewDB,
                                      const ctx::Config &Cfg,
                                      const Results &Prev,
                                      const InputDelta &D,
                                      const IncrementalOptions &Opts =
                                          IncrementalOptions());

/// The Datalog back-end counterpart. The generic engine records no
/// per-tuple derivation order, so this is by construction a full
/// re-solve of \p NewDB (Incremental == false, FallbackReason explains);
/// it exists so both back-ends offer the same transactional entry point.
IncrementalOutcome resolveIncrementalViaDatalog(
    const facts::FactDB &NewDB, const ctx::Config &Cfg, const Results &Prev,
    const InputDelta &D, const IncrementalOptions &Opts =
                             IncrementalOptions());

/// Re-encodes a *converged, non-collapsed* native \p R as a warm-start
/// snapshot over \p DB (all relation heads at size, fingerprints of
/// \p DB): the transactional commit path promotes this atomically after
/// certification instead of letting the re-solve clobber the previous
/// epoch's snapshot mid-transaction.
SolverSnapshot snapshotFromResults(const Results &R, const facts::FactDB &DB);

} // namespace analysis
} // namespace ctp

#endif // CTP_ANALYSIS_INCREMENTAL_H
