//===- analysis/DatalogFrontend.h - Rules-to-Datalog pipeline ---*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The faithful rendition of the paper's implementation pipeline
/// (Section 7): the parameterized deduction rules of Figure 3 are
/// instantiated — for a chosen abstraction, flavour, and levels — into a
/// plain Datalog program whose non-logical symbols (comp, inv, record,
/// merge, merge_s, target) become builtin functors over interned
/// transformation ids, and the program is evaluated bottom-up by the
/// generic engine.
///
/// Results are bit-for-bit comparable with the specialized solver
/// (analysis/Solver.h); the test suite asserts they agree, and the
/// ablation benchmark compares their running times.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_ANALYSIS_DATALOGFRONTEND_H
#define CTP_ANALYSIS_DATALOGFRONTEND_H

#include "analysis/Checkpoint.h"
#include "analysis/Results.h"
#include "ctx/Config.h"
#include "facts/FactDB.h"
#include "support/Budget.h"

namespace ctp {
namespace analysis {

/// Options of one Datalog-pipeline run. Checkpoints are written at
/// semi-naive round boundaries (the engine's only consistent safe
/// points); a budget-exhausted run additionally rewrites the snapshot
/// trailer with the trip reason so a later --resume knows why and how
/// far the writer stopped.
struct DatalogSolveOptions {
  BudgetSpec Budget;
  CheckpointPolicy Checkpoint;
  /// Snapshot to resume from; must have been written by this back-end.
  /// A failed restore falls back to a cold start and reports the reason
  /// in Results::Stat::CheckpointError.
  const SolverSnapshot *Resume = nullptr;
};

/// Runs the analysis through the generic Datalog engine.
/// \p NumDerivations, when non-null, receives the engine's rule-firing
/// count (a work measure for the ablation bench). A non-default \p Budget
/// bounds the run; on exhaustion the returned Results carry the partial
/// derivation tagged with the TerminationReason in Results::Stat.
Results solveViaDatalog(const facts::FactDB &DB, const ctx::Config &Cfg,
                        std::size_t *NumDerivations = nullptr,
                        const BudgetSpec &Budget = BudgetSpec());

/// As above, with checkpoint/resume control.
Results solveViaDatalog(const facts::FactDB &DB, const ctx::Config &Cfg,
                        const DatalogSolveOptions &Opts,
                        std::size_t *NumDerivations = nullptr);

} // namespace analysis
} // namespace ctp

#endif // CTP_ANALYSIS_DATALOGFRONTEND_H
