//===- analysis/RuleTable.h - Figure 3 rule descriptors ---------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A declarative table of the deduction rules the solvers implement: one
/// descriptor per ProvRule, naming the rule and the derived relation it
/// concludes into. The verifier (src/verify) iterates this table to drive
/// rule re-application and to render rule names in counterexamples and
/// support-certificate diagnostics; exposing it here keeps the rule
/// vocabulary in src/analysis, next to the solver that defines it, and
/// engine-independent (both back-ends implement exactly these rules).
///
//===----------------------------------------------------------------------===//

#ifndef CTP_ANALYSIS_RULETABLE_H
#define CTP_ANALYSIS_RULETABLE_H

#include "analysis/Provenance.h"

#include <cstddef>

namespace ctp {
namespace analysis {

/// How many derived-relation premises a rule joins (its input-predicate
/// premises are not counted — they are enumerable from the FactDB).
enum class RuleArity : std::uint8_t { Axiom, One, Two };

/// One deduction rule.
struct RuleDesc {
  ProvRule Rule;
  /// Upper-case Figure 3 name ("ASSIGN", "VIRT", ...), stable across
  /// engines; used in diagnostics and counterexample rendering.
  const char *Name;
  /// The relation the rule concludes into.
  ProvRel Conclusion;
  RuleArity Arity;
};

/// The full rule table, in the solver's canonical firing order. Iterating
/// it visits every rule exactly once.
const RuleDesc *ruleTable(std::size_t &Count);

/// Display name of \p R ("ASSIGN"), or "?" for an out-of-range value.
const char *ruleName(ProvRule R);

/// Display name of a derived relation ("pts", "hpts", ...).
const char *relName(ProvRel R);

} // namespace analysis
} // namespace ctp

#endif // CTP_ANALYSIS_RULETABLE_H
