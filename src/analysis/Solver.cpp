//===- analysis/Solver.cpp - Semi-naive pointer-analysis solver -----------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"

#include "analysis/Incremental.h"
#include "analysis/Provenance.h"
#include "analysis/Unify.h"
#include "ctx/CutShortcut.h"
#include "support/Stats.h"

#include <cassert>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace ctp;
using namespace ctp::analysis;
using ctx::CtxtVec;
using ctx::TransformId;
using facts::FactDB;

namespace {

std::uint64_t pairKey(std::uint32_t A, std::uint32_t B) {
  return (static_cast<std::uint64_t>(A) << 32) | B;
}

std::uint64_t tripleKey(std::uint32_t A, std::uint32_t B, std::uint32_t C) {
  return hashCombine(hashCombine(mix64(A), B), C);
}

/// Hashed membership sets of the removed input rows, one per predicate a
/// provenance edge can ground in. Triples are stored hashed; a collision
/// can only *over*-invalidate (the true removed row always matches its
/// own hash), which re-derivation repairs — never under-invalidate.
struct RemovalSets {
  std::unordered_set<std::uint32_t> Entries;
  std::unordered_set<std::uint64_t> Assigns, Casts, Loads, Stores, Actuals,
      Formals, Returns, AssignReturns, Throws, Catches, VirtualInvokes,
      StaticInvokes, AssignNews, GlobalStores, GlobalLoads;

  explicit RemovalSets(const analysis::InputDelta &D) {
    for (std::uint32_t E : D.RmEntries)
      Entries.insert(E);
    for (const auto &F : D.RmAssigns)
      Assigns.insert(pairKey(F.From, F.To));
    // The cast's filter type is not recoverable from the edge (the aux
    // word carries the source variable); matching (From, To) alone can
    // only over-invalidate when two casts share both endpoints.
    for (const auto &F : D.RmCasts)
      Casts.insert(pairKey(F.From, F.To));
    for (const auto &F : D.RmLoads)
      Loads.insert(tripleKey(F.Base, F.Field, F.To));
    for (const auto &F : D.RmStores)
      Stores.insert(tripleKey(F.From, F.Field, F.Base));
    // Ordinals are likewise summarized away; (Var, Invoke) respectively
    // (Var, Method) over-approximate multi-ordinal passing of one var.
    for (const auto &F : D.RmActuals)
      Actuals.insert(pairKey(F.Var, F.Invoke));
    for (const auto &F : D.RmFormals)
      Formals.insert(pairKey(F.Var, F.Method));
    for (const auto &F : D.RmReturns)
      Returns.insert(pairKey(F.Var, F.Method));
    for (const auto &F : D.RmAssignReturns)
      AssignReturns.insert(pairKey(F.Invoke, F.To));
    for (const auto &F : D.RmThrows)
      Throws.insert(pairKey(F.Var, F.Method));
    for (const auto &F : D.RmCatches)
      Catches.insert(pairKey(F.Invoke, F.To));
    for (const auto &F : D.RmVirtualInvokes)
      VirtualInvokes.insert(pairKey(F.Invoke, F.Receiver));
    for (const auto &F : D.RmStaticInvokes)
      StaticInvokes.insert(tripleKey(F.Invoke, F.Target, F.InMethod));
    for (const auto &F : D.RmAssignNews)
      AssignNews.insert(tripleKey(F.Heap, F.To, F.InMethod));
    for (const auto &F : D.RmGlobalStores)
      GlobalStores.insert(pairKey(F.From, F.Global));
    for (const auto &F : D.RmGlobalLoads)
      GlobalLoads.insert(tripleKey(F.Global, F.To, F.InMethod));
  }
};

/// The solver state: input indices built once, derived relations with
/// their join indices, and FIFO worklists per derived relation.
class Solver {
public:
  Solver(const FactDB &DB, const ctx::Config &Cfg,
         const analysis::SolverOptions &Opts)
      : DB(DB), Cfg(Cfg), M(Cfg.MethodDepth), H(Cfg.HeapDepth),
        Collapse(Opts.CollapseSubsumedPts &&
                 Cfg.Abs == ctx::Abstraction::TransformerString),
        Meter(Opts.Budget), Ckpt(Opts.Checkpoint) {
    std::vector<std::uint32_t> ClassOf(DB.numHeaps());
    for (std::size_t Hp = 0; Hp < DB.numHeaps(); ++Hp)
      ClassOf[Hp] = DB.classOfHeap(static_cast<std::uint32_t>(Hp));
    Dom = ctx::makeDomain(Cfg, std::move(ClassOf));
    ReachCtxts =
        std::make_shared<Interner<CtxtVec, ctx::CtxtVecHash>>();
    if (Cfg.SolveMode == ctx::Mode::CutShortcut) {
      CutMode = true;
      CutPlan = ctx::buildCutShortcutPlan(DB);
    }
    buildInputIndices();
    PtsByVar.resize(DB.numVars());
    CallByInvoke.resize(DB.numInvokes());
    CallByCallee.resize(DB.numMethods());
    ReachByMethod.resize(DB.numMethods());
    GptsByGlobal.resize(DB.numGlobals());
    if (Ckpt.enabled() || Opts.Resume) {
      Fingerprint = DB.fingerprint();
      LayoutHash = DB.layoutHash();
    }
    if (Opts.Provenance.Enabled)
      Prov = std::make_unique<ProvenanceGraph>(Opts.Provenance.MaxEdges);
  }

  /// Rebuilds the full solver state from \p S by replaying its relations
  /// in insertion order (no rule firing, no meter charges): dedup sets,
  /// join indices, worklists, and the collapse-mode live table fall out
  /// of the replay deterministically. \returns an empty string on
  /// success; on failure the solver must be discarded (partially
  /// restored) and the caller cold-starts a fresh one.
  std::string tryRestore(const analysis::SolverSnapshot &S) {
    if (S.BackendTag != analysis::SolverSnapshot::Backend::Native)
      return "snapshot was written by a different back-end";
    if (S.Collapse != Collapse)
      return "snapshot collapse mode differs from this run";
    if (S.Config.Abs != Cfg.Abs || S.Config.Flav != Cfg.Flav ||
        S.Config.MethodDepth != Cfg.MethodDepth ||
        S.Config.HeapDepth != Cfg.HeapDepth ||
        S.Config.SolveMode != Cfg.SolveMode)
      return "snapshot configuration differs from this run";
    if (S.Fingerprint != Fingerprint)
      return "snapshot fingerprint does not match the fact database";
    if (S.LayoutHash != LayoutHash)
      return "snapshot fact layout does not match the fact database";
    if (!Dom->importInterned(S.DomainWords))
      return "snapshot transformation domain is inconsistent";
    if (!analysis::decodeCtxtInterner(S.ReachCtxtWords, *ReachCtxts))
      return "snapshot reach-context table is inconsistent";

    const std::uint32_t NumT = static_cast<std::uint32_t>(Dom->size());
    const std::uint32_t NumCtxt = ReachCtxts->size();

    const std::vector<std::uint32_t> &PW = S.Pts.Words;
    for (std::size_t I = 0; I < PW.size(); I += 3) {
      PtsFact F{PW[I], PW[I + 1], PW[I + 2]};
      if (F.Var >= DB.numVars() || F.Heap >= DB.numHeaps() || F.T >= NumT)
        return "snapshot pts relation has out-of-range ids";
      if (!PtsSet.insert(keyOf(F)).second)
        return "snapshot pts relation has duplicate tuples";
      if (Collapse && !collapseInsert(F.Var, F.Heap, F.T))
        return "snapshot pts relation disagrees with its collapse state";
      PtsRel.push_back(F);
      PtsByVar[F.Var].push_back({F.Heap, F.T});
      if (I / 3 >= S.Pts.Head)
        PtsWork.push_back(F);
    }
    const std::vector<std::uint32_t> &SW = S.SubsumedWords;
    for (std::size_t I = 0; I < SW.size(); I += 3) {
      PtsFact F{SW[I], SW[I + 1], SW[I + 2]};
      if (F.Var >= DB.numVars() || F.Heap >= DB.numHeaps() || F.T >= NumT)
        return "snapshot subsumed-pts section has out-of-range ids";
      if (!PtsSet.insert(keyOf(F)).second)
        return "snapshot subsumed-pts section has duplicate tuples";
      if (Ckpt.enabled())
        SubsumedAtInsert.push_back(F);
    }
    const std::vector<std::uint32_t> &HW = S.Hpts.Words;
    for (std::size_t I = 0; I < HW.size(); I += 4) {
      HptsFact F{HW[I], HW[I + 1], HW[I + 2], HW[I + 3]};
      if (F.Base >= DB.numHeaps() || F.Field >= DB.numFields() ||
          F.Heap >= DB.numHeaps() || F.T >= NumT)
        return "snapshot hpts relation has out-of-range ids";
      if (!HptsSet.insert(keyOf(F)).second)
        return "snapshot hpts relation has duplicate tuples";
      HptsRel.push_back(F);
      HptsByBaseField[pairKey(F.Base, F.Field)].push_back({F.Heap, F.T});
      if (I / 4 >= S.Hpts.Head)
        HptsWork.push_back(F);
    }
    const std::vector<std::uint32_t> &LW = S.Hload.Words;
    for (std::size_t I = 0; I < LW.size(); I += 4) {
      HloadFact F{LW[I], LW[I + 1], LW[I + 2], LW[I + 3]};
      if (F.Base >= DB.numHeaps() || F.Field >= DB.numFields() ||
          F.Var >= DB.numVars() || F.T >= NumT)
        return "snapshot hload relation has out-of-range ids";
      if (!HloadSet.insert(keyOf(F)).second)
        return "snapshot hload relation has duplicate tuples";
      HloadRel.push_back(F);
      HloadByBaseField[pairKey(F.Base, F.Field)].push_back({F.Var, F.T});
      if (I / 4 >= S.Hload.Head)
        HloadWork.push_back(F);
    }
    const std::vector<std::uint32_t> &CW = S.Call.Words;
    for (std::size_t I = 0; I < CW.size(); I += 3) {
      CallFact F{CW[I], CW[I + 1], CW[I + 2]};
      if (F.Invoke >= DB.numInvokes() || F.Method >= DB.numMethods() ||
          F.T >= NumT)
        return "snapshot call relation has out-of-range ids";
      if (!CallSet.insert(keyOf(F)).second)
        return "snapshot call relation has duplicate tuples";
      CallRel.push_back(F);
      CallByInvoke[F.Invoke].push_back({F.Method, F.T});
      CallByCallee[F.Method].push_back({F.Invoke, F.T});
      if (I / 3 >= S.Call.Head)
        CallWork.push_back(F);
    }
    const std::vector<std::uint32_t> &RW = S.Reach.Words;
    for (std::size_t I = 0; I < RW.size(); I += 2) {
      ReachFact F{RW[I], RW[I + 1]};
      if (F.Method >= DB.numMethods() || F.CtxtId >= NumCtxt)
        return "snapshot reach relation has out-of-range ids";
      if (!ReachSet.insert(keyOf(F)).second)
        return "snapshot reach relation has duplicate tuples";
      ReachRel.push_back(F);
      ReachByMethod[F.Method].push_back(F.CtxtId);
      if (I / 2 >= S.Reach.Head)
        ReachWork.push_back(F);
    }
    const std::vector<std::uint32_t> &GW = S.Gpts.Words;
    for (std::size_t I = 0; I < GW.size(); I += 3) {
      GptsFact F{GW[I], GW[I + 1], GW[I + 2]};
      if (F.Global >= DB.numGlobals() || F.Heap >= DB.numHeaps() ||
          F.T >= NumT)
        return "snapshot gpts relation has out-of-range ids";
      if (!GptsSet.insert(keyOf(F)).second)
        return "snapshot gpts relation has duplicate tuples";
      GptsRel.push_back(F);
      GptsByGlobal[F.Global].push_back({F.Heap, F.T});
      if (I / 3 >= S.Gpts.Head)
        GptsWork.push_back(F);
    }

    BaseWorkItems = static_cast<std::size_t>(S.WorkItems);
    BaseDerivations = S.Derivations;
    BaseTuples = S.Tuples;
    CollapsedPts = static_cast<std::size_t>(S.CollapsedPts);
    CkptLastDerivations = S.Derivations;
    Resumed = true;
    // Snapshots do not carry the derivation graph, so the replayed tuples
    // above have no nodes. A graph recording only post-resume derivations
    // would dangle on every premise that predates the snapshot; drop
    // provenance cleanly instead of keeping half of it.
    if (Prov) {
      Prov.reset();
      ProvDropped = "provenance dropped: run resumed from a checkpoint "
                    "snapshot (snapshots do not carry the derivation graph)";
    }
    return {};
  }

  /// Seeds this (fresh) solver with the still-valid part of \p Prev after
  /// the input edit \p D, so run() only derives what the edit can change.
  /// \returns an empty string when the incremental path is viable; else
  /// the fallback reason — the solver is then partially mutated and must
  /// be discarded in favour of a cold one.
  std::string tryIncremental(const analysis::Results &Prev,
                             const analysis::InputDelta &D,
                             double MaxDamageRatio, std::size_t &Invalidated,
                             std::size_t &Survivors) {
    if (Prev.Stat.Term != TerminationReason::Converged)
      return "previous result is not a converged fixpoint";
    if (Collapse || Prev.Stat.CollapsedPts != 0)
      return "subsumption collapsing retires tuples outside the "
             "derivation graph";
    if (!Prev.Prov)
      return Prev.Stat.ProvenanceDropped.empty()
                 ? "previous result has no derivation provenance"
                 : Prev.Stat.ProvenanceDropped;
    if (Prev.Prov->truncated())
      return "previous derivation graph is truncated";
    if (!Prev.Dom || !Prev.ReachCtxts)
      return "previous result lacks its interned domain";
    if (Prev.Config.Abs != Cfg.Abs || Prev.Config.Flav != Cfg.Flav ||
        Prev.Config.MethodDepth != Cfg.MethodDepth ||
        Prev.Config.HeapDepth != Cfg.HeapDepth ||
        Prev.Config.SolveMode != Cfg.SolveMode)
      return "previous result was solved under a different configuration";
    if (Cfg.SolveMode != ctx::Mode::Contexts)
      return "contextless modes (cutshortcut, unify) re-solve from cold";
    if (!Prov)
      return "incremental solve requires provenance recording";
    if (D.WideRemove)
      return "removal touches a type/dispatch predicate (heap_type, "
             "implements, subtype, this_var)";

    const ProvenanceGraph &G = *Prev.Prov;
    const std::size_t N = G.size();
    const std::size_t PrevTotal = Prev.Pts.size() + Prev.Hpts.size() +
                                  Prev.Hload.size() + Prev.Call.size() +
                                  Prev.Reach.size() + Prev.Gpts.size();
    if (N != PrevTotal)
      return "derivation graph does not cover the previous relations";

    // Entities are append-only, so every previous id is valid in the new
    // database; importing the interners reproduces the previous
    // transformation/context ids exactly and survivors keep theirs.
    {
      std::vector<std::uint32_t> W;
      Prev.Dom->exportInterned(W);
      if (!Dom->importInterned(W))
        return "transformation domain import failed";
      std::vector<std::uint32_t> CW;
      analysis::encodeCtxtInterner(*Prev.ReachCtxts, CW);
      if (!analysis::decodeCtxtInterner(CW, *ReachCtxts))
        return "reach-context table import failed";
    }

    // DRed-style invalidation, exact for first derivations: one forward
    // scan in node-id order (premises always precede their conclusion)
    // marks every node whose recorded derivation grounds in a removed
    // input row or in an invalidated premise. Survivors' chains ground
    // only in surviving rows, so survivors are a subset of the new
    // fixpoint; over-deletions are re-derived by the drain below.
    std::vector<char> Invalid(N, 0);
    std::size_t NumInvalid = 0;
    if (D.hasRemovals()) {
      RemovalSets Rm(D);
      for (std::uint32_t Id = 0; Id < N; ++Id) {
        const ProvenanceGraph::Edge &E = G.edgeOf(Id);
        if (E.Prem0 != NoNode &&
            (E.Prem0 >= Id || Invalid[E.Prem0])) {
          Invalid[Id] = 1; // >= Id would break well-foundedness; treat
          ++NumInvalid;    // defensively as invalid (sound: re-derived).
          continue;
        }
        if (E.Prem1 != NoNode && (E.Prem1 >= Id || Invalid[E.Prem1])) {
          Invalid[Id] = 1;
          ++NumInvalid;
          continue;
        }
        if (removedInputMatches(G, Id, Rm)) {
          Invalid[Id] = 1;
          ++NumInvalid;
        }
      }
    }
    Invalidated = NumInvalid;
    Survivors = N - NumInvalid;
    if (MaxDamageRatio >= 0 && PrevTotal > 0 &&
        static_cast<double>(NumInvalid) >
            MaxDamageRatio * static_cast<double>(PrevTotal))
      return "invalidated frontier (" + std::to_string(NumInvalid) + " of " +
             std::to_string(PrevTotal) + " tuples) exceeds the damage budget";

    // Replay the survivors checkpoint-style (no rule firing, no meter
    // charges): dedup sets, relation vectors, and join indices rebuild as
    // side effects, in the previous insertion order.
    for (const PtsFact &F : Prev.Pts) {
      std::uint32_t Node = G.lookup(ProvRel::Pts, keyOf(F));
      if (Node == NoNode)
        return "previous pts tuple has no recorded derivation";
      if (Invalid[Node])
        continue;
      PtsSet.insert(keyOf(F));
      PtsRel.push_back(F);
      PtsByVar[F.Var].push_back({F.Heap, F.T});
    }
    for (const HptsFact &F : Prev.Hpts) {
      std::uint32_t Node = G.lookup(ProvRel::Hpts, keyOf(F));
      if (Node == NoNode)
        return "previous hpts tuple has no recorded derivation";
      if (Invalid[Node])
        continue;
      HptsSet.insert(keyOf(F));
      HptsRel.push_back(F);
      HptsByBaseField[pairKey(F.Base, F.Field)].push_back({F.Heap, F.T});
    }
    for (const HloadFact &F : Prev.Hload) {
      std::uint32_t Node = G.lookup(ProvRel::Hload, keyOf(F));
      if (Node == NoNode)
        return "previous hload tuple has no recorded derivation";
      if (Invalid[Node])
        continue;
      HloadSet.insert(keyOf(F));
      HloadRel.push_back(F);
      HloadByBaseField[pairKey(F.Base, F.Field)].push_back({F.Var, F.T});
    }
    for (const CallFact &F : Prev.Call) {
      std::uint32_t Node = G.lookup(ProvRel::Call, keyOf(F));
      if (Node == NoNode)
        return "previous call tuple has no recorded derivation";
      if (Invalid[Node])
        continue;
      CallSet.insert(keyOf(F));
      CallRel.push_back(F);
      CallByInvoke[F.Invoke].push_back({F.Method, F.T});
      CallByCallee[F.Method].push_back({F.Invoke, F.T});
    }
    for (const ReachFact &F : Prev.Reach) {
      std::uint32_t Node = G.lookup(ProvRel::Reach, keyOf(F));
      if (Node == NoNode)
        return "previous reach tuple has no recorded derivation";
      if (Invalid[Node])
        continue;
      ReachSet.insert(keyOf(F));
      ReachRel.push_back(F);
      ReachByMethod[F.Method].push_back(F.CtxtId);
    }
    for (const GptsFact &F : Prev.Gpts) {
      std::uint32_t Node = G.lookup(ProvRel::Gpts, keyOf(F));
      if (Node == NoNode)
        return "previous gpts tuple has no recorded derivation";
      if (Invalid[Node])
        continue;
      GptsSet.insert(keyOf(F));
      GptsRel.push_back(F);
      GptsByGlobal[F.Global].push_back({F.Heap, F.T});
    }

    // Import the surviving derivation edges in node-id order so premise
    // remaps are always resolved before they are referenced. New
    // derivations below then extend this graph seamlessly.
    {
      std::vector<std::uint32_t> Remap(N, NoNode);
      for (std::uint32_t Id = 0; Id < N; ++Id) {
        if (Invalid[Id])
          continue;
        ProvenanceGraph::Edge E = G.edgeOf(Id);
        if (E.Prem0 != NoNode)
          E.Prem0 = Remap[E.Prem0];
        if (E.Prem1 != NoNode)
          E.Prem1 = Remap[E.Prem1];
        std::uint32_t NewId = Prov->importNode(G.relOf(Id), G.factOf(Id), E);
        if (NewId == NoNode)
          return "derivation graph import exceeded the provenance capacity";
        Remap[Id] = NewId;
      }
    }

    if (D.hasRemovals() || D.WideAdd) {
      // Conservative re-enqueue: every survivor is re-processed so any
      // over-deleted tuple whose alternative derivation joins two
      // already-drained survivors is found again. Dedup makes re-firing
      // cheap (no re-insertion); this still skips the cold solve's
      // domain/interning work and its from-nothing derivation cascade.
      for (const PtsFact &F : PtsRel)
        PtsWork.push_back(F);
      for (const HptsFact &F : HptsRel)
        HptsWork.push_back(F);
      for (const HloadFact &F : HloadRel)
        HloadWork.push_back(F);
      for (const CallFact &F : CallRel)
        CallWork.push_back(F);
      for (const ReachFact &F : ReachRel)
        ReachWork.push_back(F);
      for (const GptsFact &F : GptsRel)
        GptsWork.push_back(F);
    } else {
      // Pure narrow additions: seed only the tuples the new rows can join
      // against — one driving side per rule suffices because the fire-time
      // index lookups already see every new input row. (Entry additions
      // need nothing here: run()'s ENTRY loop seeds them and dedups the
      // surviving ones.)
      auto SeedPtsOf = [this](std::uint32_t Var) {
        for (const auto &[Heap, T] : PtsByVar[Var])
          PtsWork.push_back({Var, Heap, T});
      };
      for (const auto &F : D.AddAssigns)
        SeedPtsOf(F.From);
      for (const auto &F : D.AddCasts)
        SeedPtsOf(F.From);
      for (const auto &F : D.AddLoads)
        SeedPtsOf(F.Base);
      for (const auto &F : D.AddStores)
        SeedPtsOf(F.From);
      for (const auto &F : D.AddActuals)
        SeedPtsOf(F.Var);
      for (const auto &F : D.AddReturns)
        SeedPtsOf(F.Var);
      for (const auto &F : D.AddThrows)
        SeedPtsOf(F.Var);
      for (const auto &F : D.AddVirtualInvokes)
        SeedPtsOf(F.Receiver);
      for (const auto &F : D.AddGlobalStores)
        SeedPtsOf(F.From);
      for (const auto &F : D.AddFormals)
        for (const auto &[Invoke, T] : CallByCallee[F.Method])
          CallWork.push_back({Invoke, F.Method, T});
      for (const auto &F : D.AddAssignReturns)
        for (const auto &[Method, T] : CallByInvoke[F.Invoke])
          CallWork.push_back({F.Invoke, Method, T});
      for (const auto &F : D.AddCatches)
        for (const auto &[Method, T] : CallByInvoke[F.Invoke])
          CallWork.push_back({F.Invoke, Method, T});
      for (const auto &F : D.AddStaticInvokes)
        for (std::uint32_t CtxId : ReachByMethod[F.InMethod])
          ReachWork.push_back({F.InMethod, CtxId});
      for (const auto &F : D.AddAssignNews)
        for (std::uint32_t CtxId : ReachByMethod[F.InMethod])
          ReachWork.push_back({F.InMethod, CtxId});
      for (const auto &F : D.AddGlobalLoads)
        for (const auto &[Heap, T] : GptsByGlobal[F.Global])
          GptsWork.push_back({F.Global, Heap, T});
    }
    return {};
  }

  Results run() {
    Stopwatch Timer;
    if (!Resumed) {
      // ENTRY: reach(main, [entry]) (truncated to the method depth so the
      // degenerate insensitive configuration gets the empty context).
      for (std::uint32_t E : DB.EntryMethods) {
        CtxtVec Entry;
        Entry.push_back(ctx::EntryElem);
        CtxtVec Ctx = Entry.takePrefix(M);
        if (addReach(E, Ctx) && Prov)
          Prov->note(ProvRel::Reach,
                     keyOf(ReachFact{E, ReachCtxts->intern(Ctx)}),
                     ProvRule::Entry, NoNode, NoNode, E);
      }
    }
    drain();
    // A converged run's checkpoint is spent: remove it so a later
    // --resume cannot pick up stale state. A resident service opts out
    // via KeepOnConverge — it writes a final converged snapshot instead,
    // which a restarted daemon restores as a warm start (all relation
    // heads at size, so the restored solver converges immediately).
    if (Ckpt.enabled() && !Meter.tripped()) {
      if (Ckpt.KeepOnConverge)
        writeCheckpoint(TerminationReason::Converged);
      else
        analysis::removeSnapshot(Ckpt.Dir);
    }

    Results R;
    R.Config = Cfg;
    if (Collapse) {
      // Report only the live (non-retired) facts.
      for (const auto &[Key, Ts] : LivePts) {
        std::uint32_t Var = static_cast<std::uint32_t>(Key >> 32);
        std::uint32_t Heap = static_cast<std::uint32_t>(Key);
        for (TransformId T : Ts)
          R.Pts.push_back({Var, Heap, T});
      }
    } else {
      R.Pts.assign(PtsRel.begin(), PtsRel.end());
    }
    R.Hpts.assign(HptsRel.begin(), HptsRel.end());
    R.Hload.assign(HloadRel.begin(), HloadRel.end());
    R.Call.assign(CallRel.begin(), CallRel.end());
    R.Reach.assign(ReachRel.begin(), ReachRel.end());
    R.Gpts.assign(GptsRel.begin(), GptsRel.end());
    R.Stat.NumGpts = GptsRel.size();
    R.Stat.NumPts = R.Pts.size();
    R.Stat.CollapsedPts = CollapsedPts;
    R.Stat.NumHpts = HptsRel.size();
    R.Stat.NumHload = HloadRel.size();
    R.Stat.NumCall = CallRel.size();
    R.Stat.NumReach = ReachRel.size();
    R.Stat.DomainSize = Dom->size();
    R.Stat.WorkItems = BaseWorkItems + WorkItems;
    R.Stat.Seconds = Timer.seconds();
    R.Stat.Term = Meter.reason();
    R.Stat.Progress.Iterations = BaseWorkItems + WorkItems;
    R.Stat.Progress.Derivations =
        static_cast<std::size_t>(totalDerivations());
    R.Stat.Progress.PendingWork = pendingWork();
    R.Stat.CheckpointError = CkptError;
    R.Stat.ProvenanceDropped = ProvDropped;
    R.Dom = std::move(Dom);
    R.ReachCtxts = ReachCtxts;
    R.Prov = std::move(Prov);
    return R;
  }

private:
  //===--- Input indices --------------------------------------------------===//

  void buildInputIndices() {
    AssignFrom.resize(DB.numVars());
    for (const auto &F : DB.Assigns)
      AssignFrom[F.From].push_back(F.To);

    LoadByBase.resize(DB.numVars());
    for (const auto &F : DB.Loads)
      LoadByBase[F.Base].push_back({F.Field, F.To});

    StoreByValue.resize(DB.numVars());
    StoreByBase.resize(DB.numVars());
    for (const auto &F : DB.Stores) {
      StoreByValue[F.From].push_back({F.Field, F.Base});
      StoreByBase[F.Base].push_back({F.Field, F.From});
    }

    ActualByVar.resize(DB.numVars());
    ActualByInvoke.resize(DB.numInvokes());
    for (const auto &F : DB.Actuals) {
      ActualByVar[F.Var].push_back({F.Invoke, F.Ordinal});
      ActualByInvoke[F.Invoke].push_back({F.Ordinal, F.Var});
    }

    for (const auto &F : DB.Formals)
      FormalOf.emplace(pairKey(F.Method, F.Ordinal), F.Var);

    ReturnByVar.resize(DB.numVars());
    ReturnByMethod.resize(DB.numMethods());
    for (const auto &F : DB.Returns) {
      ReturnByVar[F.Var].push_back(F.Method);
      ReturnByMethod[F.Method].push_back(F.Var);
    }

    AssignRetByInvoke.resize(DB.numInvokes());
    for (const auto &F : DB.AssignReturns)
      AssignRetByInvoke[F.Invoke].push_back(F.To);

    VirtByReceiver.resize(DB.numVars());
    for (const auto &F : DB.VirtualInvokes)
      VirtByReceiver[F.Receiver].push_back({F.Invoke, F.Sig});

    HeapTypeOf.assign(DB.numHeaps(), facts::InvalidId);
    for (const auto &F : DB.HeapTypes)
      HeapTypeOf[F.Heap] = F.Type;

    for (const auto &F : DB.Implements)
      Dispatch.emplace(pairKey(F.Type, F.Sig), F.Method);

    ThisOf.assign(DB.numMethods(), facts::InvalidId);
    for (const auto &F : DB.ThisVars)
      ThisOf[F.Method] = F.Var;

    StaticByMethod.resize(DB.numMethods());
    for (const auto &F : DB.StaticInvokes)
      StaticByMethod[F.InMethod].push_back({F.Invoke, F.Target});

    AssignNewByMethod.resize(DB.numMethods());
    for (const auto &F : DB.AssignNews)
      AssignNewByMethod[F.InMethod].push_back({F.Heap, F.To});

    GlobalStoreByValue.resize(DB.numVars());
    for (const auto &F : DB.GlobalStores)
      GlobalStoreByValue[F.From].push_back(F.Global);
    GlobalLoadByGlobal.resize(DB.numGlobals());
    GlobalLoadByMethod.resize(DB.numMethods());
    for (const auto &F : DB.GlobalLoads) {
      GlobalLoadByGlobal[F.Global].push_back({F.To, F.InMethod});
      GlobalLoadByMethod[F.InMethod].push_back({F.Global, F.To});
    }

    ThrowByVar.resize(DB.numVars());
    ThrowByMethod.resize(DB.numMethods());
    for (const auto &F : DB.Throws) {
      ThrowByVar[F.Var].push_back(F.Method);
      ThrowByMethod[F.Method].push_back(F.Var);
    }
    CatchByInvoke.resize(DB.numInvokes());
    for (const auto &F : DB.Catches)
      CatchByInvoke[F.Invoke].push_back(F.To);

    CastByFrom.resize(DB.numVars());
    for (const auto &F : DB.Casts)
      CastByFrom[F.From].push_back({F.To, F.Type});
    for (const auto &F : DB.Subtypes)
      SubtypePairs.insert(pairKey(F.Sub, F.Super));
  }

  bool isSubtype(std::uint32_t Sub, std::uint32_t Super) const {
    return SubtypePairs.count(pairKey(Sub, Super)) != 0;
  }

  //===--- Derived-fact insertion (dedup + index update + enqueue) --------===//

  /// All addX methods return true exactly when the tuple was newly
  /// appended to its relation — the moment a provenance edge, if enabled,
  /// must be noted by the rule site (which alone knows the premises).
  bool addPts(std::uint32_t Var, std::uint32_t Heap, TransformId T) {
    Meter.chargeDerivations();
    PtsFact F{Var, Heap, T};
    if (!PtsSet.insert(keyOf(F)).second)
      return false;
    if (Collapse && !collapseInsert(Var, Heap, T)) {
      // The fact occupies the dedup set but never reaches the relation;
      // a checkpoint must carry it separately or a resumed run would
      // re-attempt (and re-count) the same subsumed derivations.
      if (Ckpt.enabled())
        SubsumedAtInsert.push_back(F);
      return false;
    }
    Meter.chargeTuple();
    PtsRel.push_back(F);
    PtsByVar[Var].push_back({Heap, T});
    PtsWork.push_back(F);
    return true;
  }

  /// Subsumption collapsing (Section 8 extension): \returns false when the
  /// new fact is subsumed by a live fact; otherwise retires live facts the
  /// new one subsumes and returns true.
  bool collapseInsert(std::uint32_t Var, std::uint32_t Heap,
                      TransformId T) {
    auto &Live = LivePts[pairKey(Var, Heap)];
    const ctx::Transformer &NewT = Dom->transformer(T);
    for (TransformId Old : Live)
      if (ctx::subsumes(Dom->transformer(Old), NewT)) {
        ++CollapsedPts;
        return false;
      }
    // Retire live facts subsumed by the new one, including their join
    // index entries so future rule firings skip them. (Already-propagated
    // consequences remain — they are sound, merely redundant.)
    std::size_t Kept = 0;
    for (std::size_t I = 0; I < Live.size(); ++I) {
      if (ctx::subsumes(NewT, Dom->transformer(Live[I]))) {
        ++CollapsedPts;
        auto &Index = PtsByVar[Var];
        for (std::size_t J = 0; J < Index.size(); ++J)
          if (Index[J].first == Heap && Index[J].second == Live[I]) {
            Index[J] = Index.back();
            Index.pop_back();
            break;
          }
        continue;
      }
      Live[Kept++] = Live[I];
    }
    Live.resize(Kept);
    Live.push_back(T);
    return true;
  }

  bool addHpts(std::uint32_t Base, std::uint32_t Field, std::uint32_t Heap,
               TransformId T) {
    Meter.chargeDerivations();
    HptsFact F{Base, Field, Heap, T};
    if (!HptsSet.insert(keyOf(F)).second)
      return false;
    Meter.chargeTuple();
    HptsRel.push_back(F);
    HptsByBaseField[pairKey(Base, Field)].push_back({Heap, T});
    HptsWork.push_back(F);
    return true;
  }

  bool addHload(std::uint32_t Base, std::uint32_t Field, std::uint32_t Var,
                TransformId T) {
    Meter.chargeDerivations();
    HloadFact F{Base, Field, Var, T};
    if (!HloadSet.insert(keyOf(F)).second)
      return false;
    Meter.chargeTuple();
    HloadRel.push_back(F);
    HloadByBaseField[pairKey(Base, Field)].push_back({Var, T});
    HloadWork.push_back(F);
    return true;
  }

  bool addCall(std::uint32_t Invoke, std::uint32_t Method, TransformId T) {
    Meter.chargeDerivations();
    CallFact F{Invoke, Method, T};
    if (!CallSet.insert(keyOf(F)).second)
      return false;
    Meter.chargeTuple();
    CallRel.push_back(F);
    CallByInvoke[Invoke].push_back({Method, T});
    CallByCallee[Method].push_back({Invoke, T});
    CallWork.push_back(F);
    return true;
  }

  bool addGpts(std::uint32_t Global, std::uint32_t Heap, TransformId T) {
    Meter.chargeDerivations();
    GptsFact F{Global, Heap, T};
    if (!GptsSet.insert(keyOf(F)).second)
      return false;
    Meter.chargeTuple();
    GptsRel.push_back(F);
    GptsByGlobal[Global].push_back({Heap, T});
    GptsWork.push_back(F);
    return true;
  }

  bool addReach(std::uint32_t Method, const CtxtVec &Ctx) {
    Meter.chargeDerivations();
    std::uint32_t CtxId = ReachCtxts->intern(Ctx);
    ReachFact F{Method, CtxId};
    if (!ReachSet.insert(keyOf(F)).second)
      return false;
    Meter.chargeTuple();
    ReachRel.push_back(F);
    ReachByMethod[Method].push_back(CtxId);
    ReachWork.push_back(F);
    return true;
  }

  //===--- Checkpointing --------------------------------------------------===//

  std::uint64_t totalDerivations() const {
    return BaseDerivations + Meter.derivations();
  }

  std::size_t pendingWork() const {
    return PtsWork.size() + HptsWork.size() + HloadWork.size() +
           CallWork.size() + ReachWork.size() + GptsWork.size();
  }

  analysis::SolverSnapshot captureSnapshot(TerminationReason Term) const {
    analysis::SolverSnapshot S;
    S.BackendTag = analysis::SolverSnapshot::Backend::Native;
    S.Collapse = Collapse;
    S.Config = Cfg;
    S.Fingerprint = Fingerprint;
    S.LayoutHash = LayoutHash;
    Dom->exportInterned(S.DomainWords);
    analysis::encodeCtxtInterner(*ReachCtxts, S.ReachCtxtWords);

    // Each worklist is the suffix of its insertion-order relation vector,
    // so (rows, processed-count head) is the whole work state.
    S.Pts.Head = PtsRel.size() - PtsWork.size();
    for (const PtsFact &F : PtsRel) {
      S.Pts.Words.push_back(F.Var);
      S.Pts.Words.push_back(F.Heap);
      S.Pts.Words.push_back(F.T);
    }
    S.Hpts.Head = HptsRel.size() - HptsWork.size();
    for (const HptsFact &F : HptsRel) {
      S.Hpts.Words.push_back(F.Base);
      S.Hpts.Words.push_back(F.Field);
      S.Hpts.Words.push_back(F.Heap);
      S.Hpts.Words.push_back(F.T);
    }
    S.Hload.Head = HloadRel.size() - HloadWork.size();
    for (const HloadFact &F : HloadRel) {
      S.Hload.Words.push_back(F.Base);
      S.Hload.Words.push_back(F.Field);
      S.Hload.Words.push_back(F.Var);
      S.Hload.Words.push_back(F.T);
    }
    S.Call.Head = CallRel.size() - CallWork.size();
    for (const CallFact &F : CallRel) {
      S.Call.Words.push_back(F.Invoke);
      S.Call.Words.push_back(F.Method);
      S.Call.Words.push_back(F.T);
    }
    S.Reach.Head = ReachRel.size() - ReachWork.size();
    for (const ReachFact &F : ReachRel) {
      S.Reach.Words.push_back(F.Method);
      S.Reach.Words.push_back(F.CtxtId);
    }
    S.Gpts.Head = GptsRel.size() - GptsWork.size();
    for (const GptsFact &F : GptsRel) {
      S.Gpts.Words.push_back(F.Global);
      S.Gpts.Words.push_back(F.Heap);
      S.Gpts.Words.push_back(F.T);
    }
    for (const PtsFact &F : SubsumedAtInsert) {
      S.SubsumedWords.push_back(F.Var);
      S.SubsumedWords.push_back(F.Heap);
      S.SubsumedWords.push_back(F.T);
    }

    S.WorkItems = BaseWorkItems + WorkItems;
    S.Derivations = totalDerivations();
    S.Tuples = BaseTuples + Meter.tuples();
    S.CollapsedPts = CollapsedPts;
    S.Term = Term;
    S.Progress.Iterations = BaseWorkItems + WorkItems;
    S.Progress.Derivations = static_cast<std::size_t>(S.Derivations);
    S.Progress.PendingWork = pendingWork();
    return S;
  }

  void writeCheckpoint(TerminationReason Term) {
    std::string Err = analysis::writeSnapshot(
        captureSnapshot(Term), analysis::checkpointPath(Ckpt.Dir));
    if (Err.empty())
      CkptLastDerivations = totalDerivations();
    else
      CkptError = "checkpoint write failed: " + Err;
  }

  //===--- Rule firing ----------------------------------------------------===//

  void drain() {
    while (!PtsWork.empty() || !HptsWork.empty() || !HloadWork.empty() ||
           !CallWork.empty() || !ReachWork.empty() || !GptsWork.empty()) {
      // Budget poll at rule-firing granularity: one item's consequences
      // are always fully derived (the adds above never abort mid-item),
      // so a trip leaves the relations a sound prefix of the fixpoint
      // with the unprocessed items counted as pending work — which is
      // also exactly the state a trip-time checkpoint captures.
      if (auto Trip = Meter.poll()) {
        if (Ckpt.enabled())
          writeCheckpoint(*Trip);
        return;
      }
      if (Ckpt.enabled() && Ckpt.EveryDerivations != 0 &&
          totalDerivations() - CkptLastDerivations >= Ckpt.EveryDerivations)
        writeCheckpoint(TerminationReason::Converged);
      if (!PtsWork.empty()) {
        PtsFact F = PtsWork.front();
        PtsWork.pop_front();
        ++WorkItems;
        onNewPts(F);
        continue;
      }
      if (!HptsWork.empty()) {
        HptsFact F = HptsWork.front();
        HptsWork.pop_front();
        ++WorkItems;
        onNewHpts(F);
        continue;
      }
      if (!HloadWork.empty()) {
        HloadFact F = HloadWork.front();
        HloadWork.pop_front();
        ++WorkItems;
        onNewHload(F);
        continue;
      }
      if (!CallWork.empty()) {
        CallFact F = CallWork.front();
        CallWork.pop_front();
        ++WorkItems;
        onNewCall(F);
        continue;
      }
      if (!GptsWork.empty()) {
        GptsFact F = GptsWork.front();
        GptsWork.pop_front();
        ++WorkItems;
        onNewGpts(F);
        continue;
      }
      ReachFact F = ReachWork.front();
      ReachWork.pop_front();
      ++WorkItems;
      onNewReach(F);
    }
  }

  void onNewPts(const PtsFact &F) {
    // Provenance node of the driving fact (NoNode when recording is off;
    // each note() below then never executes thanks to the && Prov guard).
    const std::uint32_t FN =
        Prov ? Prov->lookup(ProvRel::Pts, keyOf(F)) : NoNode;

    // [ASSIGN] pts(Z,H,A), assign(Z,Y) |- pts(Y,H,A).
    for (std::uint32_t Y : AssignFrom[F.Var])
      if (addPts(Y, F.Heap, F.T) && Prov)
        Prov->note(ProvRel::Pts, keyOf(PtsFact{Y, F.Heap, F.T}),
                   ProvRule::Assign, FN, NoNode, F.Var);

    // [CAST] pts(Z,H,A), cast(Z,Y,T), heap_type(H,T'), subtype(T',T)
    //        |- pts(Y,H,A): an assignment filtered by the cast type.
    for (const auto &[Y, T] : CastByFrom[F.Var])
      if (isSubtype(HeapTypeOf[F.Heap], T))
        if (addPts(Y, F.Heap, F.T) && Prov)
          Prov->note(ProvRel::Pts, keyOf(PtsFact{Y, F.Heap, F.T}),
                     ProvRule::Cast, FN, NoNode, F.Var);

    // [LOAD] pts(Y,G,A), load(Y,F,Z) |- hload(G,F,Z,A).
    for (const auto &[Field, To] : LoadByBase[F.Var])
      if (addHload(F.Heap, Field, To, F.T) && Prov)
        Prov->note(ProvRel::Hload, keyOf(HloadFact{F.Heap, Field, To, F.T}),
                   ProvRule::Load, FN, NoNode, F.Var);

    // [STORE] pts(X,H,B), store(X,Fl,Z), pts(Z,G,C)
    //         |- hpts(G,Fl,H, B ; inv(C)).
    // Provenance premise order is always (value pts, base pts).
    // Driven from the stored-value side (this fact is pts(X,H,B))...
    for (const auto &[Field, Base] : StoreByValue[F.Var])
      for (const auto &[G, C] : PtsByVar[Base])
        if (auto A = Dom->comp(F.T, Dom->inv(C), H, H))
          if (addHpts(G, Field, F.Heap, *A) && Prov)
            Prov->note(ProvRel::Hpts, keyOf(HptsFact{G, Field, F.Heap, *A}),
                       ProvRule::Store, FN,
                       Prov->lookup(ProvRel::Pts, keyOf(PtsFact{Base, G, C})),
                       F.Var);
    // ...and from the base side (this fact is pts(Z,G,C)).
    for (const auto &[Field, Value] : StoreByBase[F.Var])
      for (const auto &[Hp, B] : PtsByVar[Value])
        if (auto A = Dom->comp(B, Dom->inv(F.T), H, H))
          if (addHpts(F.Heap, Field, Hp, *A) && Prov)
            Prov->note(ProvRel::Hpts, keyOf(HptsFact{F.Heap, Field, Hp, *A}),
                       ProvRule::Store,
                       Prov->lookup(ProvRel::Pts, keyOf(PtsFact{Value, Hp, B})),
                       FN, Value);

    // [PARAM] pts(Z,H,B), actual(Z,I,O), call(I,P,C), formal(Y,P,O)
    //         |- pts(Y,H, B ; C). Premise order: (actual pts, call).
    for (const auto &[Invoke, Ord] : ActualByVar[F.Var])
      for (const auto &[Callee, C] : CallByInvoke[Invoke])
        if (auto It = FormalOf.find(pairKey(Callee, Ord));
            It != FormalOf.end())
          if (auto A = Dom->comp(F.T, C, H, M))
            if (addPts(It->second, F.Heap, *A) && Prov)
              Prov->note(
                  ProvRel::Pts, keyOf(PtsFact{It->second, F.Heap, *A}),
                  ProvRule::Param, FN,
                  Prov->lookup(ProvRel::Call, keyOf(CallFact{Invoke, Callee, C})),
                  Invoke);

    // [SHORTCUT] (cutshortcut mode) pts(Z,H,B), actual(Z,I,O),
    //            call(I,P,C), shortcut(P,O), assign_return(I,Y)
    //            |- pts(Y,H, (B ; C) ; inv(C)) — the actual forwarded
    //            straight to this call's result, replacing the cut RET
    //            flow per call site. Premise order: (actual pts, call).
    if (CutMode)
      for (const auto &[Invoke, Ord] : ActualByVar[F.Var])
        for (const auto &[Callee, C] : CallByInvoke[Invoke])
          if (CutPlan.hasShortcut(Callee, Ord))
            if (auto In = Dom->comp(F.T, C, H, M))
              if (auto A = Dom->comp(*In, Dom->inv(C), H, M))
                for (std::uint32_t Y : AssignRetByInvoke[Invoke])
                  if (addPts(Y, F.Heap, *A) && Prov)
                    Prov->note(ProvRel::Pts, keyOf(PtsFact{Y, F.Heap, *A}),
                               ProvRule::Shortcut, FN,
                               Prov->lookup(ProvRel::Call,
                                            keyOf(CallFact{Invoke, Callee, C})),
                               Invoke);

    // [RET] pts(Z,H,B), return(Z,P), call(I,P,C), assign_return(I,Y)
    //       |- pts(Y,H, B ; inv(C)). Premise order: (return pts, call).
    // In cutshortcut mode the cut (method, return-var) pairs are skipped:
    // their flows are re-delivered per call site by [SHORTCUT].
    for (std::uint32_t P : ReturnByVar[F.Var]) {
      if (CutMode && CutPlan.isCutReturn(P, F.Var))
        continue;
      for (const auto &[Invoke, C] : CallByCallee[P]) {
        TransformId InvC = Dom->inv(C);
        if (auto A = Dom->comp(F.T, InvC, H, M))
          for (std::uint32_t Y : AssignRetByInvoke[Invoke])
            if (addPts(Y, F.Heap, *A) && Prov)
              Prov->note(
                  ProvRel::Pts, keyOf(PtsFact{Y, F.Heap, *A}), ProvRule::Ret,
                  FN,
                  Prov->lookup(ProvRel::Call, keyOf(CallFact{Invoke, P, C})),
                  Invoke);
      }
    }

    // [THROW] pts(Z,H,B), throw(Z,P), call(I,P,C), catch(I,Y)
    //         |- pts(Y,H, B ; inv(C)) — the exceptional return path.
    for (std::uint32_t P : ThrowByVar[F.Var])
      for (const auto &[Invoke, C] : CallByCallee[P]) {
        TransformId InvC = Dom->inv(C);
        if (auto A = Dom->comp(F.T, InvC, H, M))
          for (std::uint32_t Y : CatchByInvoke[Invoke])
            if (addPts(Y, F.Heap, *A) && Prov)
              Prov->note(
                  ProvRel::Pts, keyOf(PtsFact{Y, F.Heap, *A}), ProvRule::Throw,
                  FN,
                  Prov->lookup(ProvRel::Call, keyOf(CallFact{Invoke, P, C})),
                  Invoke);
      }

    // [GSTORE] pts(X,H,B), global_store(X,G) |- gpts(G,H, globalize(B)).
    if (!GlobalStoreByValue[F.Var].empty()) {
      TransformId GT = Dom->globalize(F.T);
      for (std::uint32_t G : GlobalStoreByValue[F.Var])
        if (addGpts(G, F.Heap, GT) && Prov)
          Prov->note(ProvRel::Gpts, keyOf(GptsFact{G, F.Heap, GT}),
                     ProvRule::GStore, FN, NoNode, F.Var);
    }

    // [VIRT] virtual_invoke(I,Z,S), pts(Z,H,B), heap_type(H,T),
    //        implements(Q,T,S), this_var(Y,Q), C := merge(H,I,B)
    //        |- call(I,Q,C) and pts(Y,H, B ; C).
    if (!VirtByReceiver[F.Var].empty()) {
      std::uint32_t HeapType = HeapTypeOf[F.Heap];
      for (const auto &[Invoke, Sig] : VirtByReceiver[F.Var]) {
        auto It = Dispatch.find(pairKey(HeapType, Sig));
        if (It == Dispatch.end())
          continue; // No implementation: dead dispatch.
        std::uint32_t Q = It->second;
        TransformId C = Dom->mergeVirtual(F.Heap, Invoke, F.T);
        if (addCall(Invoke, Q, C) && Prov)
          Prov->note(ProvRel::Call, keyOf(CallFact{Invoke, Q, C}),
                     ProvRule::VirtCall, FN, NoNode, Invoke);
        std::uint32_t ThisY = ThisOf[Q];
        assert(ThisY != facts::InvalidId &&
               "dispatched method has no this variable");
        if (auto A = Dom->comp(F.T, C, H, M))
          if (addPts(ThisY, F.Heap, *A) && Prov)
            Prov->note(
                ProvRel::Pts, keyOf(PtsFact{ThisY, F.Heap, *A}),
                ProvRule::VirtThis, FN,
                Prov->lookup(ProvRel::Call, keyOf(CallFact{Invoke, Q, C})),
                Invoke);
      }
    }
  }

  void onNewHpts(const HptsFact &F) {
    // [IND] hpts(G,Fl,H,B), hload(G,Fl,Y,C) |- pts(Y,H, B ; C).
    // Provenance premise order is always (hpts, hload).
    auto It = HloadByBaseField.find(pairKey(F.Base, F.Field));
    if (It == HloadByBaseField.end())
      return;
    const std::uint32_t FN =
        Prov ? Prov->lookup(ProvRel::Hpts, keyOf(F)) : NoNode;
    for (const auto &[Y, C] : It->second)
      if (auto A = Dom->comp(F.T, C, H, M))
        if (addPts(Y, F.Heap, *A) && Prov)
          Prov->note(
              ProvRel::Pts, keyOf(PtsFact{Y, F.Heap, *A}), ProvRule::Ind, FN,
              Prov->lookup(ProvRel::Hload,
                           keyOf(HloadFact{F.Base, F.Field, Y, C})),
              UINT32_MAX);
  }

  void onNewHload(const HloadFact &F) {
    // [IND], driven from the load side.
    auto It = HptsByBaseField.find(pairKey(F.Base, F.Field));
    if (It == HptsByBaseField.end())
      return;
    const std::uint32_t FN =
        Prov ? Prov->lookup(ProvRel::Hload, keyOf(F)) : NoNode;
    for (const auto &[Hp, B] : It->second)
      if (auto A = Dom->comp(B, F.T, H, M))
        if (addPts(F.Var, Hp, *A) && Prov)
          Prov->note(ProvRel::Pts, keyOf(PtsFact{F.Var, Hp, *A}),
                     ProvRule::Ind,
                     Prov->lookup(ProvRel::Hpts,
                                  keyOf(HptsFact{F.Base, F.Field, Hp, B})),
                     FN, UINT32_MAX);
  }

  void onNewCall(const CallFact &F) {
    const std::uint32_t FN =
        Prov ? Prov->lookup(ProvRel::Call, keyOf(F)) : NoNode;

    // [REACH] call(I,P,A) |- reach(P, target(A)).
    CtxtVec Tgt = Dom->target(F.T);
    if (addReach(F.Method, Tgt) && Prov)
      Prov->note(ProvRel::Reach,
                 keyOf(ReachFact{F.Method, ReachCtxts->intern(Tgt)}),
                 ProvRule::Reach, FN, NoNode, F.Invoke);

    // [PARAM], driven from the call side. Premise order: (actual pts, call).
    for (const auto &[Ord, Z] : ActualByInvoke[F.Invoke])
      if (auto It = FormalOf.find(pairKey(F.Method, Ord));
          It != FormalOf.end())
        for (const auto &[Hp, B] : PtsByVar[Z])
          if (auto A = Dom->comp(B, F.T, H, M))
            if (addPts(It->second, Hp, *A) && Prov)
              Prov->note(ProvRel::Pts, keyOf(PtsFact{It->second, Hp, *A}),
                         ProvRule::Param,
                         Prov->lookup(ProvRel::Pts, keyOf(PtsFact{Z, Hp, B})),
                         FN, F.Invoke);

    // [SHORTCUT], driven from the call side (cutshortcut mode).
    if (CutMode && !AssignRetByInvoke[F.Invoke].empty()) {
      TransformId InvC = Dom->inv(F.T);
      for (const auto &[Ord, Z] : ActualByInvoke[F.Invoke])
        if (CutPlan.hasShortcut(F.Method, Ord))
          // Index-based: the actual Z and the assign-return target Y live
          // in the same (caller) method and may alias, so addPts below can
          // grow PtsByVar[Z] mid-loop.
          for (std::size_t PI = 0; PI < PtsByVar[Z].size(); ++PI) {
            const auto [Hp, B] = PtsByVar[Z][PI];
            if (auto In = Dom->comp(B, F.T, H, M))
              if (auto A = Dom->comp(*In, InvC, H, M))
                for (std::uint32_t Y : AssignRetByInvoke[F.Invoke])
                  if (addPts(Y, Hp, *A) && Prov)
                    Prov->note(
                        ProvRel::Pts, keyOf(PtsFact{Y, Hp, *A}),
                        ProvRule::Shortcut,
                        Prov->lookup(ProvRel::Pts, keyOf(PtsFact{Z, Hp, B})),
                        FN, F.Invoke);
          }
    }

    // [RET], driven from the call side (cut pairs skipped as above).
    if (!AssignRetByInvoke[F.Invoke].empty()) {
      TransformId InvC = Dom->inv(F.T);
      for (std::uint32_t Z : ReturnByMethod[F.Method]) {
        if (CutMode && CutPlan.isCutReturn(F.Method, Z))
          continue;
        for (const auto &[Hp, B] : PtsByVar[Z])
          if (auto A = Dom->comp(B, InvC, H, M))
            for (std::uint32_t Y : AssignRetByInvoke[F.Invoke])
              if (addPts(Y, Hp, *A) && Prov)
                Prov->note(
                    ProvRel::Pts, keyOf(PtsFact{Y, Hp, *A}), ProvRule::Ret,
                    Prov->lookup(ProvRel::Pts, keyOf(PtsFact{Z, Hp, B})), FN,
                    F.Invoke);
      }
    }

    // [THROW], driven from the call side.
    if (!CatchByInvoke[F.Invoke].empty()) {
      TransformId InvC = Dom->inv(F.T);
      for (std::uint32_t Z : ThrowByMethod[F.Method])
        for (const auto &[Hp, B] : PtsByVar[Z])
          if (auto A = Dom->comp(B, InvC, H, M))
            for (std::uint32_t Y : CatchByInvoke[F.Invoke])
              if (addPts(Y, Hp, *A) && Prov)
                Prov->note(
                    ProvRel::Pts, keyOf(PtsFact{Y, Hp, *A}), ProvRule::Throw,
                    Prov->lookup(ProvRel::Pts, keyOf(PtsFact{Z, Hp, B})), FN,
                    F.Invoke);
    }
  }

  void onNewGpts(const GptsFact &F) {
    // [GLOAD] gpts(G,H,A), global_load(G,Z,P), reach(P,Mx)
    //         |- pts(Z,H, retarget(A,Mx)).
    // Provenance premise order is always (gpts, reach).
    const std::uint32_t FN =
        Prov ? Prov->lookup(ProvRel::Gpts, keyOf(F)) : NoNode;
    for (const auto &[Z, P] : GlobalLoadByGlobal[F.Global])
      for (std::uint32_t CtxId : ReachByMethod[P]) {
        TransformId A = Dom->retarget(F.T, (*ReachCtxts)[CtxId]);
        if (addPts(Z, F.Heap, A) && Prov)
          Prov->note(ProvRel::Pts, keyOf(PtsFact{Z, F.Heap, A}),
                     ProvRule::GLoad, FN,
                     Prov->lookup(ProvRel::Reach, keyOf(ReachFact{P, CtxId})),
                     F.Global);
      }
  }

  void onNewReach(const ReachFact &F) {
    const CtxtVec &Ctx = (*ReachCtxts)[F.CtxtId];
    const std::uint32_t FN =
        Prov ? Prov->lookup(ProvRel::Reach, keyOf(F)) : NoNode;
    // [GLOAD], driven from the reach side.
    for (const auto &[G, Z] : GlobalLoadByMethod[F.Method])
      for (const auto &[Hp, A] : GptsByGlobal[G]) {
        TransformId RT = Dom->retarget(A, Ctx);
        if (addPts(Z, Hp, RT) && Prov)
          Prov->note(ProvRel::Pts, keyOf(PtsFact{Z, Hp, RT}), ProvRule::GLoad,
                     Prov->lookup(ProvRel::Gpts, keyOf(GptsFact{G, Hp, A})),
                     FN, G);
      }
    // [NEW] assign_new(H,Y,P), reach(P,Mx) |- pts(Y,H, record(Mx)).
    if (!AssignNewByMethod[F.Method].empty()) {
      TransformId A = Dom->record(Ctx);
      for (const auto &[Hp, Y] : AssignNewByMethod[F.Method])
        if (addPts(Y, Hp, A) && Prov)
          Prov->note(ProvRel::Pts, keyOf(PtsFact{Y, Hp, A}), ProvRule::New,
                     FN, NoNode, Hp);
    }
    // [STATIC] static_invoke(I,Q,P), reach(P,Mx)
    //          |- call(I,Q, merge_s(I,Mx)).
    for (const auto &[Invoke, Target] : StaticByMethod[F.Method]) {
      TransformId C = Dom->mergeStatic(Invoke, Ctx);
      if (addCall(Invoke, Target, C) && Prov)
        Prov->note(ProvRel::Call, keyOf(CallFact{Invoke, Target, C}),
                   ProvRule::Static, FN, NoNode, Invoke);
    }
  }

  //===--- Incremental invalidation -----------------------------------------===//

  /// Does the first derivation recorded at \p Id ground in a removed
  /// input row? Each rule's aux word plus its conclusion and premise
  /// facts reconstruct the input row the firing consumed (the ProvRule
  /// doc comments define the aux semantics). A premise the rule requires
  /// but the edge lacks makes the node conservatively invalid — sound,
  /// since invalidated tuples are re-derived when still derivable.
  static bool removedInputMatches(const ProvenanceGraph &G, std::uint32_t Id,
                                  const RemovalSets &Rm) {
    constexpr std::uint32_t Invalid = ProvenanceGraph::InvalidNode;
    const ProvenanceGraph::Edge &E = G.edgeOf(Id);
    const FactKey &K = G.factOf(Id);
    switch (E.Rule) {
    case ProvRule::Entry:
      return Rm.Entries.count(E.Aux) != 0;
    case ProvRule::Assign: // pts(Y,H,A) via assign(Z,Y); Aux = Z.
      return Rm.Assigns.count(pairKey(E.Aux, K[0])) != 0;
    case ProvRule::Cast: // pts(Y,H,A) via cast(Z,Y,T); Aux = Z.
      return Rm.Casts.count(pairKey(E.Aux, K[0])) != 0;
    case ProvRule::Load: // hload(G,Fl,Z,A) via load(Y,Fl,Z); Aux = Y.
      return Rm.Loads.count(tripleKey(E.Aux, K[1], K[2])) != 0;
    case ProvRule::Store: // hpts via store(X,Fl,Z); Aux = X, Prem1 = base pts.
      if (E.Prem1 == Invalid)
        return true;
      return Rm.Stores.count(
                 tripleKey(E.Aux, K[1], G.factOf(E.Prem1)[0])) != 0;
    case ProvRule::Param: // pts(Y,·) via actual(Z,I,O) + formal(Y,P,O).
      if (E.Prem0 == Invalid || E.Prem1 == Invalid)
        return true;
      return Rm.Actuals.count(pairKey(G.factOf(E.Prem0)[0], E.Aux)) != 0 ||
             Rm.Formals.count(pairKey(K[0], G.factOf(E.Prem1)[1])) != 0;
    case ProvRule::Ret: // pts(Y,·) via return(Z,P) + assign_return(I,Y).
      if (E.Prem0 == Invalid || E.Prem1 == Invalid)
        return true;
      return Rm.Returns.count(
                 pairKey(G.factOf(E.Prem0)[0], G.factOf(E.Prem1)[1])) != 0 ||
             Rm.AssignReturns.count(pairKey(E.Aux, K[0])) != 0;
    case ProvRule::Throw: // pts(Y,·) via throw(Z,P) + catch(I,Y).
      if (E.Prem0 == Invalid || E.Prem1 == Invalid)
        return true;
      return Rm.Throws.count(
                 pairKey(G.factOf(E.Prem0)[0], G.factOf(E.Prem1)[1])) != 0 ||
             Rm.Catches.count(pairKey(E.Aux, K[0])) != 0;
    case ProvRule::GStore: // gpts(G,H,·) via global_store(X,G); Aux = X.
      return Rm.GlobalStores.count(pairKey(E.Aux, K[0])) != 0;
    case ProvRule::VirtCall:  // via virtual_invoke(I,Z,S); Aux = I,
    case ProvRule::VirtThis:  // Prem0 = receiver pts(Z,·).
      if (E.Prem0 == Invalid)
        return true;
      return Rm.VirtualInvokes.count(
                 pairKey(E.Aux, G.factOf(E.Prem0)[0])) != 0;
    case ProvRule::Ind:   // joins two derived facts; no input row.
    case ProvRule::Reach: // projection of a derived call; no input row.
      return false;
    case ProvRule::Shortcut:
      // Cutshortcut grounds in the cut plan, which any input edit can
      // reshape; tryIncremental refuses contextless modes up front, so
      // this is only defensive.
      return true;
    case ProvRule::GLoad: // via global_load(G,Z,P); Aux = G, Prem1 = reach.
      if (E.Prem1 == Invalid)
        return true;
      return Rm.GlobalLoads.count(
                 tripleKey(E.Aux, K[0], G.factOf(E.Prem1)[0])) != 0;
    case ProvRule::New: // via assign_new(H,Y,P); Aux = H, Prem0 = reach.
      if (E.Prem0 == Invalid)
        return true;
      return Rm.AssignNews.count(
                 tripleKey(E.Aux, K[0], G.factOf(E.Prem0)[0])) != 0;
    case ProvRule::Static: // via static_invoke(I,Q,P); Aux = I.
      if (E.Prem0 == Invalid)
        return true;
      return Rm.StaticInvokes.count(
                 tripleKey(E.Aux, K[1], G.factOf(E.Prem0)[0])) != 0;
    }
    return true; // Unknown rule tag: conservatively invalid.
  }

  //===--- State ----------------------------------------------------------===//

  const FactDB &DB;
  ctx::Config Cfg;
  unsigned M, H;
  bool Collapse;
  bool CutMode = false;
  ctx::CutShortcutPlan CutPlan;
  std::size_t CollapsedPts = 0;
  std::unordered_map<std::uint64_t, std::vector<TransformId>> LivePts;
  std::unique_ptr<ctx::Domain> Dom;
  std::shared_ptr<Interner<CtxtVec, ctx::CtxtVecHash>> ReachCtxts;

  // Input indices.
  std::vector<std::vector<std::uint32_t>> AssignFrom;
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      LoadByBase, StoreByValue, StoreByBase, ActualByVar, ActualByInvoke,
      VirtByReceiver, StaticByMethod, AssignNewByMethod;
  std::unordered_map<std::uint64_t, std::uint32_t> FormalOf;
  std::vector<std::vector<std::uint32_t>> ReturnByVar, ReturnByMethod,
      AssignRetByInvoke, ThrowByVar, ThrowByMethod, CatchByInvoke,
      GlobalStoreByValue;
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      GlobalLoadByGlobal, GlobalLoadByMethod;
  std::vector<std::uint32_t> HeapTypeOf, ThisOf;
  std::unordered_map<std::uint64_t, std::uint32_t> Dispatch;
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      CastByFrom;
  std::unordered_set<std::uint64_t> SubtypePairs;

  // Derived relations, dedup sets, and join indices. PtsByVar etc. are
  // lazily sized in the constructor body via resize below.
  std::unordered_set<FactKey, FactKeyHash> PtsSet, HptsSet, HloadSet,
      CallSet, ReachSet, GptsSet;
  std::vector<PtsFact> PtsRel;
  std::vector<HptsFact> HptsRel;
  std::vector<HloadFact> HloadRel;
  std::vector<CallFact> CallRel;
  std::vector<ReachFact> ReachRel;
  std::vector<GptsFact> GptsRel;
  std::vector<std::vector<std::pair<std::uint32_t, TransformId>>>
      GptsByGlobal;
  std::vector<std::vector<std::pair<std::uint32_t, TransformId>>> PtsByVar;
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<std::uint32_t, TransformId>>>
      HptsByBaseField, HloadByBaseField;
  std::vector<std::vector<std::pair<std::uint32_t, TransformId>>>
      CallByInvoke, CallByCallee;
  std::vector<std::vector<std::uint32_t>> ReachByMethod;

  std::deque<PtsFact> PtsWork;
  std::deque<HptsFact> HptsWork;
  std::deque<HloadFact> HloadWork;
  std::deque<CallFact> CallWork;
  std::deque<ReachFact> ReachWork;
  std::deque<GptsFact> GptsWork;

  std::size_t WorkItems = 0;
  BudgetMeter Meter;

  // First-derivation provenance. Null unless requested — and dropped again
  // (with ProvDropped explaining why) when the run restores a snapshot.
  static constexpr std::uint32_t NoNode = ProvenanceGraph::InvalidNode;
  std::unique_ptr<ProvenanceGraph> Prov;
  std::string ProvDropped;

  // Checkpoint/resume state. The Base* counters carry the cumulative
  // totals of the interrupted run(s) a snapshot was restored from; the
  // meter itself is always fresh per invocation so a resumed run gets
  // its full budget again.
  analysis::CheckpointPolicy Ckpt;
  std::uint64_t Fingerprint = 0, LayoutHash = 0;
  std::uint64_t CkptLastDerivations = 0;
  std::uint64_t BaseDerivations = 0, BaseTuples = 0;
  std::size_t BaseWorkItems = 0;
  std::vector<PtsFact> SubsumedAtInsert;
  std::string CkptError;
  bool Resumed = false;
};

} // namespace

namespace {

Results solveNative(const FactDB &DB, const ctx::Config &Cfg,
                    const SolverOptions &Opts) {
  if (Opts.Resume) {
    Solver S(DB, Cfg, Opts);
    std::string Err = S.tryRestore(*Opts.Resume);
    if (Err.empty())
      return S.run();
    // A snapshot that fails its structural checks must never crash the
    // run: discard the partially restored solver and cold-start.
    SolverOptions ColdOpts = Opts;
    ColdOpts.Resume = nullptr;
    Solver Cold(DB, Cfg, ColdOpts);
    Results R = Cold.run();
    if (R.Stat.CheckpointError.empty())
      R.Stat.CheckpointError = "resume failed: " + Err;
    return R;
  }
  Solver S(DB, Cfg, Opts);
  return S.run();
}

} // namespace

Results analysis::solve(const FactDB &DB, const ctx::Config &Cfg,
                        const SolverOptions &Opts) {
  assert(Cfg.validate().empty() && "invalid analysis configuration");
  assert(DB.validate().empty() && "invalid fact database");
  if (Cfg.SolveMode == ctx::Mode::Unify) {
    // The union-find core records no Figure-3 derivations and carries no
    // native checkpoint state. When provenance or checkpoint/resume is
    // requested, run the native engine over the symmetrized view instead:
    // the insensitive fixpoint of unifyView(DB) is exactly the unification
    // answer, and the vanilla rules then justify every tuple.
    if (Opts.Provenance.Enabled || Opts.Checkpoint.enabled() || Opts.Resume) {
      facts::FactDB View = unifyView(DB);
      return solveNative(View, Cfg, Opts);
    }
    return solveUnify(DB, Cfg, Opts);
  }
  return solveNative(DB, Cfg, Opts);
}

IncrementalOutcome analysis::resolveIncremental(const FactDB &NewDB,
                                                const ctx::Config &Cfg,
                                                const Results &Prev,
                                                const InputDelta &D,
                                                const IncrementalOptions &Opts) {
  assert(Cfg.validate().empty() && "invalid analysis configuration");
  assert(NewDB.validate().empty() && "invalid fact database");
  IncrementalOutcome Out;
  SolverOptions SO = Opts.Solver;
  // Provenance feeds the *next* delta's invalidation; checkpoints and
  // resumes belong to the caller's transaction, not to the re-solve (a
  // mid-transaction snapshot write would clobber the previous epoch's
  // certified warm-start image before this result is certified).
  SO.Provenance.Enabled = true;
  SO.Checkpoint = CheckpointPolicy();
  SO.Resume = nullptr;
  {
    Solver S(NewDB, Cfg, SO);
    std::string Why = S.tryIncremental(Prev, D, Opts.MaxDamageRatio,
                                       Out.Invalidated, Out.Survivors);
    if (Why.empty()) {
      Out.R = S.run();
      Out.Incremental = true;
      return Out;
    }
    Out.FallbackReason = Why;
  }
  // Cold re-solve of the edited facts — identical fixpoint, just paid in
  // full. Provenance stays on so the delta after this one can be
  // incremental again. Routed through solve() so the contextless modes
  // take their own paths (unify must run over its symmetrized view).
  Out.R = solve(NewDB, Cfg, SO);
  Out.Incremental = false;
  Out.Invalidated = 0;
  Out.Survivors = 0;
  return Out;
}
