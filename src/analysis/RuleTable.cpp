//===- analysis/RuleTable.cpp - Figure 3 rule descriptors -----------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleTable.h"

using namespace ctp;
using namespace ctp::analysis;

namespace {

// Canonical firing order: axioms first, then the per-statement rules in
// the order the solver's processing loop considers them.
const RuleDesc Table[] = {
    {ProvRule::Entry, "ENTRY", ProvRel::Reach, RuleArity::Axiom},
    {ProvRule::Assign, "ASSIGN", ProvRel::Pts, RuleArity::One},
    {ProvRule::Cast, "CAST", ProvRel::Pts, RuleArity::One},
    {ProvRule::Load, "LOAD", ProvRel::Hload, RuleArity::One},
    {ProvRule::Store, "STORE", ProvRel::Hpts, RuleArity::Two},
    {ProvRule::Param, "PARAM", ProvRel::Pts, RuleArity::Two},
    {ProvRule::Ret, "RET", ProvRel::Pts, RuleArity::Two},
    {ProvRule::Throw, "THROW", ProvRel::Pts, RuleArity::Two},
    {ProvRule::GStore, "GSTORE", ProvRel::Gpts, RuleArity::One},
    {ProvRule::VirtCall, "VIRT", ProvRel::Call, RuleArity::One},
    {ProvRule::VirtThis, "VIRT-THIS", ProvRel::Pts, RuleArity::Two},
    {ProvRule::Ind, "IND", ProvRel::Pts, RuleArity::Two},
    {ProvRule::Reach, "REACH", ProvRel::Reach, RuleArity::One},
    {ProvRule::GLoad, "GLOAD", ProvRel::Pts, RuleArity::Two},
    {ProvRule::New, "NEW", ProvRel::Pts, RuleArity::One},
    {ProvRule::Static, "STATIC", ProvRel::Call, RuleArity::One},
    {ProvRule::Shortcut, "SHORTCUT", ProvRel::Pts, RuleArity::Two},
};

} // namespace

const RuleDesc *analysis::ruleTable(std::size_t &Count) {
  Count = sizeof(Table) / sizeof(Table[0]);
  return Table;
}

const char *analysis::ruleName(ProvRule R) {
  std::size_t N;
  const RuleDesc *T = ruleTable(N);
  for (std::size_t I = 0; I < N; ++I)
    if (T[I].Rule == R)
      return T[I].Name;
  return "?";
}

const char *analysis::relName(ProvRel R) {
  switch (R) {
  case ProvRel::Pts:
    return "pts";
  case ProvRel::Hpts:
    return "hpts";
  case ProvRel::Hload:
    return "hload";
  case ProvRel::Call:
    return "call";
  case ProvRel::Reach:
    return "reach";
  case ProvRel::Gpts:
    return "gpts";
  }
  return "?";
}
