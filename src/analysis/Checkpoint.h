//===- analysis/Checkpoint.h - Solver checkpoint content --------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What goes into a solver checkpoint and how it maps onto the sectioned
/// container of support/Snapshot.h. Both evaluation back-ends snapshot
/// the same logical state:
///
///   - the interned transformation domain and reach-context interner,
///     flattened in id order (dense first-seen interning makes a replayed
///     import reproduce the exact id assignment);
///   - every derived relation in insertion order, plus a per-relation
///     "head" marking how many tuples were already processed — for the
///     native solver the FIFO worklists are always exactly the suffix of
///     the insertion-order relation vectors, and at a semi-naive round
///     boundary the datalog engine's delta is likewise a suffix of each
///     relation's rows, so (rows, head) is a complete work-state encoding;
///   - progress counters, so a resumed run reports cumulative totals
///     identical to an uninterrupted one.
///
/// Restoring replays the facts in insertion order without firing any
/// rule: dedup sets, join indices, worklists, and (in collapse mode) the
/// live-fact table are rebuilt as deterministic side effects of the
/// replay, which is what makes checkpoint+resume byte-identical to an
/// uninterrupted run.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_ANALYSIS_CHECKPOINT_H
#define CTP_ANALYSIS_CHECKPOINT_H

#include "ctx/Config.h"
#include "ctx/Ctxt.h"
#include "support/Budget.h"
#include "support/Interner.h"
#include "support/Stats.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ctp {
namespace analysis {

/// When and where to write checkpoints.
struct CheckpointPolicy {
  /// Directory holding the snapshot file; empty disables checkpointing.
  std::string Dir;
  /// Derivations between periodic snapshot writes. The native solver
  /// checkpoints at worklist-item granularity: 0 means "only when the
  /// budget trips" (a trip-time snapshot is always written). The datalog
  /// engine can only checkpoint at semi-naive round boundaries: 0 means
  /// "every boundary", N means "the first boundary at least N
  /// derivations after the previous write".
  std::uint64_t EveryDerivations = 0;
  /// Batch runs delete their checkpoint on convergence (a spent
  /// checkpoint must not feed a later --resume); a resident service
  /// instead sets this to keep a *converged* snapshot on disk as its
  /// warm-start image — restoring it replays every relation with
  /// Head == size, so the restored solver converges immediately.
  bool KeepOnConverge = false;

  bool enabled() const { return !Dir.empty(); }
};

/// One derived relation, flattened: Arity u32 words per tuple in
/// insertion order; tuples before Head are already processed (popped from
/// the worklist / drained out of the delta).
struct RelationWords {
  std::vector<std::uint32_t> Words;
  std::uint64_t Head = 0;
};

/// The full checkpointed state of one solver run.
struct SolverSnapshot {
  enum class Backend : std::uint32_t { Native = 1, Datalog = 2 };

  Backend BackendTag = Backend::Native;
  bool Collapse = false;
  ctx::Config Config;
  /// Order-independent content hash of the FactDB (FactDB::fingerprint):
  /// "is this snapshot about the same facts at all?".
  std::uint64_t Fingerprint = 0;
  /// Order-dependent layout hash (FactDB::layoutHash): "would the solver
  /// replay the identical derivation sequence?" — required because id
  /// assignment and fact order determine rule-firing order.
  std::uint64_t LayoutHash = 0;

  /// ctx::Domain::exportInterned stream.
  std::vector<std::uint32_t> DomainWords;
  /// Reach-context interner contents, id order: per vector its length
  /// then its elements.
  std::vector<std::uint32_t> ReachCtxtWords;

  /// pts/3, hpts/4, hload/4, call/3, reach/2, gpts/3.
  RelationWords Pts, Hpts, Hload, Call, Reach, Gpts;

  /// Collapse mode only: pts facts that entered the dedup set but were
  /// subsumed at insert (they never reached the relation vector); 3
  /// words per fact. Without these a replayed restore would under-
  /// populate the dedup set and diverge on CollapsedPts.
  std::vector<std::uint32_t> SubsumedWords;

  // Cumulative progress counters of the writing run.
  std::uint64_t WorkItems = 0;
  std::uint64_t Derivations = 0;
  std::uint64_t Tuples = 0;
  std::uint64_t CollapsedPts = 0;
  std::uint64_t Rounds = 0;        ///< Datalog semi-naive rounds.
  std::uint64_t DerivedTuples = 0; ///< Datalog inserted-tuple count.

  /// Trailer: why the writing run stopped (Converged while still
  /// running, the trip reason on a budget-exhausted write) and how far
  /// it had got.
  TerminationReason Term = TerminationReason::Converged;
  EngineProgress Progress;
};

/// The snapshot file inside a checkpoint directory.
std::string checkpointPath(const std::string &Dir);

/// Encodes \p S and atomically writes it to \p Path (see
/// snapshot::writeFile). \returns an empty string on success.
std::string writeSnapshot(const SolverSnapshot &S, const std::string &Path);

/// Reads, checksum-validates, and decodes the snapshot at \p Path.
/// \returns an empty string on success, else a diagnostic.
std::string readSnapshot(const std::string &Path, SolverSnapshot &S);

/// Deletes the snapshot file in \p Dir, if any. A converged run removes
/// its checkpoint so a later --resume cannot pick up stale state.
void removeSnapshot(const std::string &Dir);

/// Flattens \p I in id order into \p Out (length-prefixed vectors).
void encodeCtxtInterner(const Interner<ctx::CtxtVec, ctx::CtxtVecHash> &I,
                        std::vector<std::uint32_t> &Out);

/// Replays \p Words into \p I, verifying that each vector lands on the
/// id equal to its position (pre-interned entries — the datalog
/// front-end seeds the entry context before restoring — must therefore
/// lead the stream, which they do by construction). \returns false on a
/// malformed stream or id divergence.
bool decodeCtxtInterner(const std::vector<std::uint32_t> &Words,
                        Interner<ctx::CtxtVec, ctx::CtxtVecHash> &I);

} // namespace analysis
} // namespace ctp

#endif // CTP_ANALYSIS_CHECKPOINT_H
