//===- analysis/Results.cpp - Analysis results and projections ------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Results.h"

#include <algorithm>

using namespace ctp;
using namespace ctp::analysis;

std::vector<std::array<std::uint32_t, 2>> Results::ciPts() const {
  std::vector<std::array<std::uint32_t, 2>> Out;
  Out.reserve(Pts.size());
  for (const PtsFact &F : Pts)
    Out.push_back({F.Var, F.Heap});
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::vector<std::array<std::uint32_t, 3>> Results::ciHpts() const {
  std::vector<std::array<std::uint32_t, 3>> Out;
  Out.reserve(Hpts.size());
  for (const HptsFact &F : Hpts)
    Out.push_back({F.Base, F.Field, F.Heap});
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::vector<std::array<std::uint32_t, 2>> Results::ciCall() const {
  std::vector<std::array<std::uint32_t, 2>> Out;
  Out.reserve(Call.size());
  for (const CallFact &F : Call)
    Out.push_back({F.Invoke, F.Method});
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::vector<std::uint32_t> Results::ciReach() const {
  std::vector<std::uint32_t> Out;
  Out.reserve(Reach.size());
  for (const ReachFact &F : Reach)
    Out.push_back(F.Method);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::vector<std::uint32_t> Results::pointsTo(std::uint32_t Var) const {
  std::vector<std::uint32_t> Out;
  for (const PtsFact &F : Pts)
    if (F.Var == Var)
      Out.push_back(F.Heap);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}
