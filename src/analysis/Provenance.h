//===- analysis/Provenance.h - First-derivation provenance ------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded-memory record of how the native solver first derived each
/// tuple. Every derived fact becomes one interned node carrying exactly
/// one edge: the rule that fired first for it plus up to two derived-fact
/// premises (input-predicate premises are summarized by a single aux
/// word — the variable, invoke, or heap that selects them, which together
/// with the rule and conclusion identifies the input fact uniquely).
///
/// Recording first derivations only keeps memory linear in the number of
/// derived tuples rather than in the (potentially much larger) number of
/// rule firings; a MaxEdges cap bounds it absolutely, after which the
/// graph marks itself truncated and silently stops recording. Later
/// lookups of unrecorded facts return InvalidNode and chain walks simply
/// stop there — explanations degrade to prefixes, never to garbage.
///
/// The recorder is native-solver-only. The Datalog back-end evaluates the
/// same rules but does not expose per-tuple firing order; requesting
/// provenance there is reported and ignored. Checkpoint snapshots do not
/// serialize the graph, so a resumed run drops provenance cleanly (the
/// restored relations would lack nodes for their tuples, making any
/// partially kept graph misleading) — see DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_ANALYSIS_PROVENANCE_H
#define CTP_ANALYSIS_PROVENANCE_H

#include "analysis/Facts.h"
#include "ctx/Domain.h"
#include "facts/FactDB.h"
#include "support/Interner.h"
#include "support/Memory.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ctp {
namespace analysis {

/// Which derived relation a provenance node's fact belongs to. FactKeys
/// are only unique within one relation, so nodes intern (relation, key).
enum class ProvRel : std::uint8_t { Pts, Hpts, Hload, Call, Reach, Gpts };

/// The rule that first derived a fact (the solver's Figure 3 sites, with
/// STORE/PARAM/RET/IND collapsed across their driving sides — both sides
/// fire the same logical rule).
enum class ProvRule : std::uint8_t {
  Entry,    ///< reach(main, [entry]) axiom; no premises.
  Assign,   ///< pts <- pts, assign.               Aux: source variable.
  Cast,     ///< pts <- pts, cast, subtype filter. Aux: source variable.
  Load,     ///< hload <- pts, load.               Aux: base variable.
  Store,    ///< hpts <- pts(value), pts(base).    Aux: value variable.
  Param,    ///< pts <- pts(actual), call.         Aux: invocation.
  Ret,      ///< pts <- pts(return), call.         Aux: invocation.
  Throw,    ///< pts <- pts(thrown), call.         Aux: invocation.
  GStore,   ///< gpts <- pts, global_store.        Aux: source variable.
  VirtCall, ///< call <- pts(receiver).            Aux: invocation.
  VirtThis, ///< pts(this) <- pts(receiver), call. Aux: invocation.
  Ind,      ///< pts <- hpts, hload.
  Reach,    ///< reach <- call.                    Aux: invocation.
  GLoad,    ///< pts <- gpts, reach.               Aux: global field.
  New,      ///< pts <- reach, assign_new.         Aux: heap site.
  Static,   ///< call <- reach, static_invoke.     Aux: invocation.
  Shortcut, ///< pts <- pts(actual), call (cutshortcut mode: the actual
            ///< forwarded straight to the call's assign_return targets
            ///< over a cut-plan shortcut edge). Aux: invocation.
};

/// The first-derivation graph. Append-only; owned by Results after a run.
class ProvenanceGraph {
public:
  static constexpr std::uint32_t InvalidNode = UINT32_MAX;

  struct Edge {
    ProvRule Rule;
    std::uint32_t Prem0 = InvalidNode; ///< first derived-fact premise
    std::uint32_t Prem1 = InvalidNode; ///< second derived-fact premise
    std::uint32_t Aux = UINT32_MAX;    ///< input-fact selector (see rule)
  };

  explicit ProvenanceGraph(std::size_t MaxEdges) : MaxEdges(MaxEdges) {}

  /// Records the first derivation of (\p Rel, \p K). Call exactly once
  /// per inserted tuple, right after the insert succeeds. Past the edge
  /// cap this only sets the truncated flag.
  void note(ProvRel Rel, const FactKey &K, ProvRule Rule,
            std::uint32_t Prem0, std::uint32_t Prem1, std::uint32_t Aux) {
    if (Nodes.size() >= MaxEdges) {
      WasTruncated = true;
      return;
    }
    std::uint32_t Id = static_cast<std::uint32_t>(Nodes.size());
    auto [It, Inserted] = Index.emplace(indexKey(Rel, K), Id);
    if (!Inserted)
      return; // Already recorded (first derivation wins).
    Nodes.push_back({Rel, K, {Rule, Prem0, Prem1, Aux}});
    // The recorder is a big owner too: charge the memory governor one
    // node plus its index entry (approximate; see support/Memory.h).
    memgov::noteBytes(
        static_cast<std::int64_t>(sizeof(Nodes.back()) + 48));
  }

  /// Imports a node verbatim from another graph (the incremental solver
  /// replays the surviving prefix of the previous run's graph, with \p E
  /// already remapped to this graph's ids). \returns the new node id, or
  /// InvalidNode past the edge cap or on a duplicate fact.
  std::uint32_t importNode(ProvRel Rel, const FactKey &K, const Edge &E) {
    if (Nodes.size() >= MaxEdges) {
      WasTruncated = true;
      return InvalidNode;
    }
    std::uint32_t Id = static_cast<std::uint32_t>(Nodes.size());
    auto [It, Inserted] = Index.emplace(indexKey(Rel, K), Id);
    if (!Inserted)
      return InvalidNode;
    Nodes.push_back({Rel, K, E});
    return Id;
  }

  /// Node id of (\p Rel, \p K), or InvalidNode when it was never recorded
  /// (disabled run, truncated graph, or an axiom of a resumed run).
  std::uint32_t lookup(ProvRel Rel, const FactKey &K) const {
    auto It = Index.find(indexKey(Rel, K));
    return It == Index.end() ? InvalidNode : It->second;
  }

  std::size_t size() const { return Nodes.size(); }
  bool truncated() const { return WasTruncated; }

  ProvRel relOf(std::uint32_t Node) const { return Nodes[Node].Rel; }
  const FactKey &factOf(std::uint32_t Node) const { return Nodes[Node].Key; }
  const Edge &edgeOf(std::uint32_t Node) const { return Nodes[Node].E; }

  /// The derivation chain of \p Node: the node itself followed by its
  /// premises in deterministic pre-order (Prem0 before Prem1), each node
  /// at most once, at most \p MaxNodes entries. Unrecorded premises are
  /// skipped, so a truncated graph yields a chain prefix.
  std::vector<std::uint32_t> chain(std::uint32_t Node,
                                   std::size_t MaxNodes) const;

private:
  struct Node {
    ProvRel Rel;
    FactKey Key;
    Edge E;
  };

  struct IndexKey {
    std::uint64_t Hi, Lo;
    std::uint32_t Rel;
    bool operator==(const IndexKey &O) const {
      return Hi == O.Hi && Lo == O.Lo && Rel == O.Rel;
    }
  };
  struct IndexKeyHash {
    std::size_t operator()(const IndexKey &K) const {
      return static_cast<std::size_t>(
          (K.Hi ^ K.Rel) * 0x9e3779b97f4a7c15ULL ^ K.Lo);
    }
  };

  static IndexKey indexKey(ProvRel Rel, const FactKey &K) {
    return {(static_cast<std::uint64_t>(K[0]) << 32) | K[1],
            (static_cast<std::uint64_t>(K[2]) << 32) | K[3],
            static_cast<std::uint32_t>(Rel)};
  }

  std::size_t MaxEdges;
  bool WasTruncated = false;
  std::vector<Node> Nodes;
  std::unordered_map<IndexKey, std::uint32_t, IndexKeyHash> Index;
};

/// Renders the derivation chain of \p Node as indented human-readable
/// lines ("pts(v, h) [T] <= rule ..."), resolving entity names through
/// \p DB and transformation ids through \p Dom. \p ReachCtxts interprets
/// reach-context ids. Bounded by \p MaxNodes chain entries.
std::string renderProvenanceChain(
    const ProvenanceGraph &G, std::uint32_t Node, const facts::FactDB &DB,
    const ctx::Domain &Dom,
    const Interner<ctx::CtxtVec, ctx::CtxtVecHash> &ReachCtxts,
    std::size_t MaxNodes = 32);

} // namespace analysis
} // namespace ctp

#endif // CTP_ANALYSIS_PROVENANCE_H
