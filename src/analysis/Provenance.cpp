//===- analysis/Provenance.cpp - First-derivation provenance --------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "analysis/Provenance.h"

#include <sstream>
#include <unordered_set>

using namespace ctp;
using namespace ctp::analysis;

std::vector<std::uint32_t> ProvenanceGraph::chain(std::uint32_t Node,
                                                  std::size_t MaxNodes) const {
  std::vector<std::uint32_t> Out;
  if (Node == InvalidNode || Node >= Nodes.size())
    return Out;
  std::unordered_set<std::uint32_t> Seen;
  std::vector<std::uint32_t> Stack{Node};
  while (!Stack.empty() && Out.size() < MaxNodes) {
    std::uint32_t Cur = Stack.back();
    Stack.pop_back();
    if (Cur == InvalidNode || Cur >= Nodes.size() || !Seen.insert(Cur).second)
      continue;
    Out.push_back(Cur);
    // Pre-order with Prem0 first: push Prem1 below Prem0 on the stack.
    Stack.push_back(Nodes[Cur].E.Prem1);
    Stack.push_back(Nodes[Cur].E.Prem0);
  }
  return Out;
}

namespace {

const char *ruleName(ProvRule R) {
  switch (R) {
  case ProvRule::Entry:
    return "entry";
  case ProvRule::Assign:
    return "assign";
  case ProvRule::Cast:
    return "cast";
  case ProvRule::Load:
    return "load";
  case ProvRule::Store:
    return "store";
  case ProvRule::Param:
    return "param";
  case ProvRule::Ret:
    return "return";
  case ProvRule::Throw:
    return "throw";
  case ProvRule::GStore:
    return "global-store";
  case ProvRule::VirtCall:
    return "virtual-dispatch";
  case ProvRule::VirtThis:
    return "this-binding";
  case ProvRule::Ind:
    return "indirect-flow";
  case ProvRule::Reach:
    return "reachability";
  case ProvRule::GLoad:
    return "global-load";
  case ProvRule::New:
    return "allocation";
  case ProvRule::Static:
    return "static-call";
  }
  return "?";
}

/// What the rule's aux word names, for the rendered suffix.
const char *auxLabel(ProvRule R) {
  switch (R) {
  case ProvRule::Assign:
  case ProvRule::Cast:
  case ProvRule::GStore:
  case ProvRule::Store:
    return "from";
  case ProvRule::Load:
    return "base";
  case ProvRule::Param:
  case ProvRule::Ret:
  case ProvRule::Throw:
  case ProvRule::VirtCall:
  case ProvRule::VirtThis:
  case ProvRule::Reach:
  case ProvRule::Static:
    return "at";
  case ProvRule::GLoad:
    return "global";
  case ProvRule::New:
    return "site";
  case ProvRule::Entry:
  case ProvRule::Ind:
    return nullptr;
  }
  return nullptr;
}

std::string auxName(ProvRule R, std::uint32_t Aux, const facts::FactDB &DB) {
  switch (R) {
  case ProvRule::Assign:
  case ProvRule::Cast:
  case ProvRule::Load:
  case ProvRule::Store:
  case ProvRule::GStore:
    return Aux < DB.VarNames.size() ? DB.VarNames[Aux] : "?";
  case ProvRule::Param:
  case ProvRule::Ret:
  case ProvRule::Throw:
  case ProvRule::VirtCall:
  case ProvRule::VirtThis:
  case ProvRule::Reach:
  case ProvRule::Static:
    return Aux < DB.InvokeNames.size() ? DB.InvokeNames[Aux] : "?";
  case ProvRule::GLoad:
    return Aux < DB.GlobalNames.size() ? DB.GlobalNames[Aux] : "?";
  case ProvRule::New:
    return Aux < DB.HeapNames.size() ? DB.HeapNames[Aux] : "?";
  case ProvRule::Entry:
  case ProvRule::Ind:
    return {};
  }
  return {};
}

std::string factText(const ProvenanceGraph &G, std::uint32_t Node,
                     const facts::FactDB &DB, const ctx::Domain &Dom,
                     const Interner<ctx::CtxtVec, ctx::CtxtVecHash> &Ctxts) {
  const FactKey &K = G.factOf(Node);
  auto Name = [](const std::vector<std::string> &Tbl, std::uint32_t Id) {
    return Id < Tbl.size() ? Tbl[Id] : std::string("?");
  };
  std::ostringstream S;
  switch (G.relOf(Node)) {
  case ProvRel::Pts:
    S << "pts(" << Name(DB.VarNames, K[0]) << ", " << Name(DB.HeapNames, K[1])
      << ") [" << Dom.toString(K[2]) << "]";
    break;
  case ProvRel::Hpts:
    S << "hpts(" << Name(DB.HeapNames, K[0]) << "." << Name(DB.FieldNames, K[1])
      << ", " << Name(DB.HeapNames, K[2]) << ") [" << Dom.toString(K[3]) << "]";
    break;
  case ProvRel::Hload:
    S << "hload(" << Name(DB.HeapNames, K[0]) << "."
      << Name(DB.FieldNames, K[1]) << ", " << Name(DB.VarNames, K[2]) << ") ["
      << Dom.toString(K[3]) << "]";
    break;
  case ProvRel::Call:
    S << "call(" << Name(DB.InvokeNames, K[0]) << ", "
      << Name(DB.MethodNames, K[1]) << ") [" << Dom.toString(K[2]) << "]";
    break;
  case ProvRel::Reach: {
    S << "reach(" << Name(DB.MethodNames, K[0]) << ", [";
    if (K[1] < Ctxts.size()) {
      const ctx::CtxtVec &C = Ctxts[K[1]];
      for (std::size_t I = 0; I < C.size(); ++I)
        S << (I ? " " : "") << ctx::printElemDefault(C[I]);
    }
    S << "])";
    break;
  }
  case ProvRel::Gpts:
    S << "gpts(" << Name(DB.GlobalNames, K[0]) << ", "
      << Name(DB.HeapNames, K[1]) << ") [" << Dom.toString(K[2]) << "]";
    break;
  }
  return S.str();
}

} // namespace

std::string analysis::renderProvenanceChain(
    const ProvenanceGraph &G, std::uint32_t Node, const facts::FactDB &DB,
    const ctx::Domain &Dom,
    const Interner<ctx::CtxtVec, ctx::CtxtVecHash> &ReachCtxts,
    std::size_t MaxNodes) {
  std::vector<std::uint32_t> Nodes = G.chain(Node, MaxNodes);
  std::ostringstream Out;
  for (std::uint32_t N : Nodes) {
    const ProvenanceGraph::Edge &E = G.edgeOf(N);
    Out << "  " << factText(G, N, DB, Dom, ReachCtxts) << "  <= "
        << ruleName(E.Rule);
    if (const char *L = auxLabel(E.Rule)) {
      std::string A = auxName(E.Rule, E.Aux, DB);
      if (!A.empty())
        Out << " (" << L << " " << A << ")";
    }
    Out << "\n";
  }
  if (!Nodes.empty() && Nodes.size() >= MaxNodes)
    Out << "  ... (chain truncated)\n";
  return Out.str();
}
