//===- analysis/Solver.h - Semi-naive pointer-analysis solver ---*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hand-specialized evaluation engine for the parameterized deduction
/// rules of Figure 3 (NEW, ASSIGN, LOAD, STORE, IND, PARAM, RET, VIRT,
/// STATIC, REACH, ENTRY). It performs tuple-at-a-time semi-naive
/// evaluation with per-relation hash sets and the join indices that the
/// paper's Section 7 identifies as essential — here realized by indexing
/// interned transformation ids directly.
///
/// The same rules can also be run through the generic Datalog engine (see
/// analysis/DatalogFrontend.h), which is the faithful rendition of the
/// paper's front-end/back-end pipeline; this solver is the fast path and
/// the two are cross-validated in the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_ANALYSIS_SOLVER_H
#define CTP_ANALYSIS_SOLVER_H

#include "analysis/Checkpoint.h"
#include "analysis/Results.h"
#include "ctx/Config.h"
#include "facts/FactDB.h"
#include "support/Budget.h"

namespace ctp {
namespace analysis {

/// Derivation-provenance recording (analysis/Provenance.h).
struct ProvenancePolicy {
  /// Record the first derivation of every tuple. Off by default; when
  /// off the solver pays no recording cost at all. Native solver only.
  bool Enabled = false;
  /// Hard cap on recorded nodes (one per derived tuple). Past it the
  /// graph marks itself truncated and stops growing. The default bounds
  /// the recorder to roughly 128 MB on the largest presets.
  std::size_t MaxEdges = 4u << 20;
};

/// Evaluation options beyond the analysis configuration itself.
struct SolverOptions {
  /// Section 8 extension (the paper proposes but does not implement it):
  /// when a pts fact's transformer string is subsumed by an existing fact
  /// for the same (variable, heap) pair, drop it; when a new fact
  /// subsumes existing ones, retire them from the join indices. Reduces
  /// the redundant work subsuming facts cause (most visible on the
  /// bloat-shaped workload). Only meaningful for the transformer-string
  /// abstraction; ignored otherwise. Sound: collapsed facts are exactly
  /// the ones whose derivable consequences another fact already covers.
  bool CollapseSubsumedPts = false;

  /// Resource budget for the run. When exhausted the solver stops at the
  /// next worklist pop and returns the partial derivation tagged with the
  /// TerminationReason in Results::Stat — always a subset of the
  /// converged fixpoint. The default budget is unlimited.
  BudgetSpec Budget;

  /// Crash-safe checkpointing (disabled unless Checkpoint.Dir is set): a
  /// budget-exhausted run leaves a snapshot in the checkpoint directory
  /// (and so does every EveryDerivations interval while running); a
  /// converged run removes it. See analysis/Checkpoint.h.
  CheckpointPolicy Checkpoint;

  /// A snapshot to resume from (not owned; pre-validated against this
  /// fact set and configuration by analysis::probeSnapshot). When the
  /// restore fails its structural checks the solver falls back to a cold
  /// start and reports the reason in Results::Stat::CheckpointError.
  const SolverSnapshot *Resume = nullptr;

  /// First-derivation recording for witness explanations. Snapshots never
  /// carry the graph, so a successfully resumed run drops provenance
  /// entirely rather than keeping a half-graph (Results::Prov is null and
  /// Stat::ProvenanceDropped says why).
  ProvenancePolicy Provenance;
};

/// Runs the context-sensitive pointer analysis configured by \p Cfg over
/// the input predicates in \p DB. \p Cfg must validate.
Results solve(const facts::FactDB &DB, const ctx::Config &Cfg,
              const SolverOptions &Opts = SolverOptions());

} // namespace analysis
} // namespace ctp

#endif // CTP_ANALYSIS_SOLVER_H
