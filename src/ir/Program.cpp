//===- ir/Program.cpp - Subtyping and virtual dispatch --------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Ir.h"

#include <cassert>

using namespace ctp;
using namespace ctp::ir;

bool Program::isSubtypeOf(TypeId Sub, TypeId Super) const {
  assert(Sub < Types.size() && Super < Types.size() && "type out of range");
  for (TypeId T = Sub; T != InvalidId; T = Types[T].Super)
    if (T == Super)
      return true;
  return false;
}

MethodId Program::resolveDispatch(TypeId T, SigId S) const {
  assert(T < Types.size() && "type out of range");
  assert(S < Sigs.size() && "signature out of range");
  // Walk the superclass chain; the closest declaring class wins. A linear
  // scan over methods per step is fine at the program sizes the fact
  // extractor handles (it builds a dispatch table once, see Extract.cpp).
  for (TypeId Cur = T; Cur != InvalidId; Cur = Types[Cur].Super) {
    for (MethodId M = 0; M < Methods.size(); ++M) {
      const Method &Meth = Methods[M];
      if (!Meth.IsStatic && Meth.DeclaringClass == Cur && Meth.Sig == S)
        return M;
    }
  }
  return InvalidId;
}
