//===- ir/Builder.cpp - Program construction API --------------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

#include <cassert>

using namespace ctp;
using namespace ctp::ir;

Builder::Builder() = default;

TypeId Builder::addClass(const std::string &Name, TypeId Super,
                         bool IsAbstract) {
  assert((Super == InvalidId || Super < P.Types.size()) &&
         "superclass id out of range");
  Type T;
  T.Name = Name;
  T.Super = Super;
  T.IsAbstract = IsAbstract;
  P.Types.push_back(T);
  return static_cast<TypeId>(P.Types.size() - 1);
}

FieldId Builder::addField(const std::string &Name) {
  auto It = FieldIds.find(Name);
  if (It != FieldIds.end())
    return It->second;
  Field F;
  F.Name = Name;
  P.Fields.push_back(F);
  FieldId Id = static_cast<FieldId>(P.Fields.size() - 1);
  FieldIds.emplace(Name, Id);
  return Id;
}

GlobalId Builder::addGlobal(const std::string &Name) {
  auto It = GlobalIds.find(Name);
  if (It != GlobalIds.end())
    return It->second;
  GlobalField G;
  G.Name = Name;
  P.Globals.push_back(G);
  GlobalId Id = static_cast<GlobalId>(P.Globals.size() - 1);
  GlobalIds.emplace(Name, Id);
  return Id;
}

SigId Builder::signature(const std::string &Name, unsigned NumParams) {
  std::string Key = Name + "/" + std::to_string(NumParams);
  auto It = SigIds.find(Key);
  if (It != SigIds.end())
    return It->second;
  Signature S;
  S.Name = Name;
  S.NumParams = NumParams;
  P.Sigs.push_back(S);
  SigId Id = static_cast<SigId>(P.Sigs.size() - 1);
  SigIds.emplace(Key, Id);
  return Id;
}

MethodId Builder::addMethodImpl(TypeId Class, const std::string &Name,
                                unsigned NumParams, bool IsStatic) {
  assert(Class < P.Types.size() && "class id out of range");
  Method M;
  M.Name = P.Types[Class].Name + "." + Name;
  M.DeclaringClass = Class;
  M.Sig = signature(Name, NumParams);
  M.IsStatic = IsStatic;
  P.Methods.push_back(M);
  MethodId Id = static_cast<MethodId>(P.Methods.size() - 1);

  if (!IsStatic)
    P.Methods[Id].ThisVar = addLocal(Id, "this");
  for (unsigned I = 0; I < NumParams; ++I)
    P.Methods[Id].Formals.push_back(
        addLocal(Id, "p" + std::to_string(I)));
  return Id;
}

MethodId Builder::addMethod(TypeId Class, const std::string &Name,
                            unsigned NumParams) {
  return addMethodImpl(Class, Name, NumParams, /*IsStatic=*/false);
}

MethodId Builder::addStaticMethod(TypeId Class, const std::string &Name,
                                  unsigned NumParams) {
  return addMethodImpl(Class, Name, NumParams, /*IsStatic=*/true);
}

void Builder::setMain(MethodId M) {
  assert(M < P.Methods.size() && "method id out of range");
  assert(P.Methods[M].IsStatic && "main must be static");
  P.Main = M;
}

VarId Builder::addLocal(MethodId M, const std::string &Name) {
  assert(M < P.Methods.size() && "method id out of range");
  Variable V;
  V.Name = P.Methods[M].Name + "/" + Name;
  V.Parent = M;
  P.Vars.push_back(V);
  return static_cast<VarId>(P.Vars.size() - 1);
}

VarId Builder::thisVar(MethodId M) const {
  assert(M < P.Methods.size() && "method id out of range");
  assert(!P.Methods[M].IsStatic && "static methods have no this variable");
  return P.Methods[M].ThisVar;
}

VarId Builder::formal(MethodId M, unsigned Index) const {
  assert(M < P.Methods.size() && "method id out of range");
  assert(Index < P.Methods[M].Formals.size() && "formal index out of range");
  return P.Methods[M].Formals[Index];
}

void Builder::addAssign(MethodId M, VarId To, VarId From) {
  Statement S;
  S.Kind = StmtKind::Assign;
  S.To = To;
  S.From = From;
  P.Methods[M].Stmts.push_back(S);
}

HeapId Builder::addNew(MethodId M, VarId To, TypeId T,
                       const std::string &SiteName) {
  assert(T < P.Types.size() && "type id out of range");
  assert(!P.Types[T].IsAbstract && "cannot allocate an abstract type");
  HeapSite H;
  H.Name = SiteName;
  H.AllocatedType = T;
  H.Parent = M;
  P.Heaps.push_back(H);
  HeapId Id = static_cast<HeapId>(P.Heaps.size() - 1);

  Statement S;
  S.Kind = StmtKind::New;
  S.To = To;
  S.Heap = Id;
  P.Methods[M].Stmts.push_back(S);
  return Id;
}

void Builder::addLoad(MethodId M, VarId To, VarId Base, FieldId F) {
  Statement S;
  S.Kind = StmtKind::Load;
  S.To = To;
  S.Base = Base;
  S.F = F;
  P.Methods[M].Stmts.push_back(S);
}

void Builder::addStore(MethodId M, VarId Base, FieldId F, VarId From) {
  Statement S;
  S.Kind = StmtKind::Store;
  S.Base = Base;
  S.F = F;
  S.From = From;
  P.Methods[M].Stmts.push_back(S);
}

void Builder::addCast(MethodId M, VarId To, TypeId T, VarId From) {
  assert(T < P.Types.size() && "cast type out of range");
  Statement S;
  S.Kind = StmtKind::Cast;
  S.To = To;
  S.From = From;
  S.CastType = T;
  P.Methods[M].Stmts.push_back(S);
}

void Builder::addArrayStore(MethodId M, VarId Base, VarId From) {
  addStore(M, Base, addField("@elems"), From);
}

void Builder::addArrayLoad(MethodId M, VarId To, VarId Base) {
  addLoad(M, To, Base, addField("@elems"));
}

InvokeId Builder::addVirtualCall(MethodId M, VarId Receiver, SigId Sig,
                                 const std::vector<VarId> &Actuals,
                                 VarId Result, const std::string &SiteName) {
  assert(Sig < P.Sigs.size() && "signature id out of range");
  assert(Actuals.size() == P.Sigs[Sig].NumParams &&
         "actual count does not match signature arity");
  Invocation Inv;
  Inv.Name = SiteName;
  Inv.Caller = M;
  Inv.IsStatic = false;
  Inv.Receiver = Receiver;
  Inv.Sig = Sig;
  Inv.Actuals = Actuals;
  Inv.Result = Result;
  P.Invokes.push_back(Inv);
  InvokeId Id = static_cast<InvokeId>(P.Invokes.size() - 1);

  Statement S;
  S.Kind = StmtKind::Invoke;
  S.Inv = Id;
  P.Methods[M].Stmts.push_back(S);
  return Id;
}

InvokeId Builder::addStaticCall(MethodId M, MethodId Target,
                                const std::vector<VarId> &Actuals,
                                VarId Result, const std::string &SiteName) {
  assert(Target < P.Methods.size() && "target method id out of range");
  assert(P.Methods[Target].IsStatic && "static call to instance method");
  assert(Actuals.size() == P.Methods[Target].Formals.size() &&
         "actual count does not match formal count");
  Invocation Inv;
  Inv.Name = SiteName;
  Inv.Caller = M;
  Inv.IsStatic = true;
  Inv.StaticTarget = Target;
  Inv.Actuals = Actuals;
  Inv.Result = Result;
  P.Invokes.push_back(Inv);
  InvokeId Id = static_cast<InvokeId>(P.Invokes.size() - 1);

  Statement S;
  S.Kind = StmtKind::Invoke;
  S.Inv = Id;
  P.Methods[M].Stmts.push_back(S);
  return Id;
}

InvokeId Builder::addSpawnCall(MethodId M, VarId Receiver, SigId Sig,
                               const std::vector<VarId> &Actuals,
                               const std::string &SiteName) {
  InvokeId Id = addVirtualCall(M, Receiver, Sig, Actuals,
                               /*Result=*/InvalidId, SiteName);
  P.Invokes[Id].IsSpawn = true;
  return Id;
}

void Builder::addReturn(MethodId M, VarId V) {
  P.Methods[M].ReturnVars.push_back(V);
}

void Builder::addGlobalLoad(MethodId M, VarId To, GlobalId G) {
  assert(G < P.Globals.size() && "global id out of range");
  Statement S;
  S.Kind = StmtKind::LoadGlobal;
  S.To = To;
  S.Global = G;
  P.Methods[M].Stmts.push_back(S);
}

void Builder::addGlobalStore(MethodId M, GlobalId G, VarId From) {
  assert(G < P.Globals.size() && "global id out of range");
  Statement S;
  S.Kind = StmtKind::StoreGlobal;
  S.From = From;
  S.Global = G;
  P.Methods[M].Stmts.push_back(S);
}

void Builder::addThrow(MethodId M, VarId From) {
  Statement S;
  S.Kind = StmtKind::Throw;
  S.From = From;
  P.Methods[M].Stmts.push_back(S);
  P.Methods[M].ThrowVars.push_back(From);
}

void Builder::setCatchVar(InvokeId I, VarId CatchVar) {
  assert(I < P.Invokes.size() && "invoke id out of range");
  P.Invokes[I].CatchVar = CatchVar;
}

void Builder::setInvokeTaint(InvokeId I, TaintAnnot A) {
  assert(I < P.Invokes.size() && "invoke id out of range");
  P.Invokes[I].Taint = A;
}

void Builder::setFieldTaint(FieldId F, TaintAnnot A) {
  assert(F < P.Fields.size() && "field id out of range");
  assert(A != TaintAnnot::Sanitizer && "a field cannot be a sanitizer");
  P.Fields[F].Taint = A;
}

Program Builder::take() {
  assert(P.Main != InvalidId && "program has no entry point");
  return std::move(P);
}
