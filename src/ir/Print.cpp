//===- ir/Print.cpp - Pseudo-Java program printer -------------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Ir.h"

#include <sstream>

using namespace ctp;
using namespace ctp::ir;

namespace {

/// Strips the "Method./" prefix the builder adds to local names, purely for
/// readability of the dump.
std::string shortVarName(const Program &P, VarId V) {
  const std::string &Name = P.Vars[V].Name;
  std::string::size_type Slash = Name.rfind('/');
  return Slash == std::string::npos ? Name : Name.substr(Slash + 1);
}

} // namespace

std::string ir::printProgram(const Program &P) {
  std::ostringstream OS;
  for (MethodId M = 0; M < P.Methods.size(); ++M) {
    const Method &Meth = P.Methods[M];
    OS << (Meth.IsStatic ? "static " : "") << Meth.Name << "(";
    for (std::size_t I = 0; I < Meth.Formals.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << shortVarName(P, Meth.Formals[I]);
    }
    OS << ")";
    if (M == P.Main)
      OS << " /* main */";
    OS << " {\n";
    for (const Statement &S : Meth.Stmts) {
      OS << "  ";
      switch (S.Kind) {
      case StmtKind::Assign:
        OS << shortVarName(P, S.To) << " = " << shortVarName(P, S.From)
           << ";";
        break;
      case StmtKind::New:
        OS << shortVarName(P, S.To) << " = new "
           << P.Types[P.Heaps[S.Heap].AllocatedType].Name << "(); // "
           << P.Heaps[S.Heap].Name;
        break;
      case StmtKind::Load:
        OS << shortVarName(P, S.To) << " = " << shortVarName(P, S.Base)
           << "." << P.Fields[S.F].Name << ";";
        break;
      case StmtKind::Store:
        OS << shortVarName(P, S.Base) << "." << P.Fields[S.F].Name << " = "
           << shortVarName(P, S.From) << ";";
        break;
      case StmtKind::LoadGlobal:
        OS << shortVarName(P, S.To) << " = " << P.Globals[S.Global].Name
           << ";";
        break;
      case StmtKind::StoreGlobal:
        OS << P.Globals[S.Global].Name << " = " << shortVarName(P, S.From)
           << ";";
        break;
      case StmtKind::Throw:
        OS << "throw " << shortVarName(P, S.From) << ";";
        break;
      case StmtKind::Cast:
        OS << shortVarName(P, S.To) << " = (" << P.Types[S.CastType].Name
           << ") " << shortVarName(P, S.From) << ";";
        break;
      case StmtKind::Invoke: {
        const Invocation &Inv = P.Invokes[S.Inv];
        if (Inv.Result != InvalidId)
          OS << shortVarName(P, Inv.Result) << " = ";
        if (Inv.IsSpawn)
          OS << "spawn ";
        if (Inv.IsStatic)
          OS << P.Methods[Inv.StaticTarget].Name;
        else
          OS << shortVarName(P, Inv.Receiver) << "."
             << P.Sigs[Inv.Sig].Name;
        OS << "(";
        for (std::size_t I = 0; I < Inv.Actuals.size(); ++I) {
          if (I != 0)
            OS << ", ";
          OS << shortVarName(P, Inv.Actuals[I]);
        }
        OS << ")";
        if (Inv.CatchVar != InvalidId)
          OS << " catch(" << shortVarName(P, Inv.CatchVar) << ")";
        OS << "; // " << Inv.Name;
        break;
      }
      }
      OS << "\n";
    }
    for (VarId R : Meth.ReturnVars)
      OS << "  return " << shortVarName(P, R) << ";\n";
    OS << "}\n";
  }
  return OS.str();
}
