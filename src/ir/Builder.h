//===- ir/Builder.h - Program construction API ------------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fluent construction API for ir::Program. The examples in the paper
/// (Figures 1, 5, and 7) and the synthetic workloads are all built through
/// this interface; it owns id assignment and name uniqueness.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_IR_BUILDER_H
#define CTP_IR_BUILDER_H

#include "ir/Ir.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace ctp {
namespace ir {

/// Incrementally builds an ir::Program.
///
/// Typical usage:
/// \code
///   Builder B;
///   TypeId Obj = B.addClass("Object");
///   TypeId T = B.addClass("T", Obj);
///   MethodId Id = B.addMethod(T, "id", 1);
///   B.addReturn(Id, B.formal(Id, 0));
///   MethodId Main = B.addStaticMethod(Obj, "main", 0);
///   B.setMain(Main);
///   ...
///   Program P = B.take();
/// \endcode
class Builder {
public:
  Builder();

  /// Adds a class. \p Super is InvalidId for a hierarchy root.
  TypeId addClass(const std::string &Name, TypeId Super = InvalidId,
                  bool IsAbstract = false);

  /// Adds (or returns the existing) global field signature.
  FieldId addField(const std::string &Name);

  /// Adds (or returns the existing) static/global field.
  GlobalId addGlobal(const std::string &Name);

  /// Interns a method signature by name and arity.
  SigId signature(const std::string &Name, unsigned NumParams);

  /// Adds an instance method of \p Class with \p NumParams formals.
  /// Creates the `this` variable and the formal variables.
  MethodId addMethod(TypeId Class, const std::string &Name,
                     unsigned NumParams);

  /// Adds a static method of \p Class with \p NumParams formals.
  MethodId addStaticMethod(TypeId Class, const std::string &Name,
                           unsigned NumParams);

  /// Declares program entry. Must be a static method.
  void setMain(MethodId M);

  /// Creates a fresh local variable in \p M.
  VarId addLocal(MethodId M, const std::string &Name);

  /// The `this` variable of instance method \p M.
  VarId thisVar(MethodId M) const;

  /// The \p Index-th formal of \p M (0-based).
  VarId formal(MethodId M, unsigned Index) const;

  /// Appends "To = From;" to \p M.
  void addAssign(MethodId M, VarId To, VarId From);

  /// Appends "To = new T();" to \p M and returns the new heap site.
  HeapId addNew(MethodId M, VarId To, TypeId T, const std::string &SiteName);

  /// Appends "To = Base.F;" to \p M.
  void addLoad(MethodId M, VarId To, VarId Base, FieldId F);

  /// Appends "Base.F = From;" to \p M.
  void addStore(MethodId M, VarId Base, FieldId F, VarId From);

  /// Appends "To = (T) From;" to \p M: a checked downcast — only objects
  /// whose run-time type is a subtype of \p T flow through.
  void addCast(MethodId M, VarId To, TypeId T, VarId From);

  /// Appends "Base[*] = From;" — array element store; all indices are
  /// merged into one element pseudo-field, the standard Java points-to
  /// treatment.
  void addArrayStore(MethodId M, VarId Base, VarId From);

  /// Appends "To = Base[*];" — array element load.
  void addArrayLoad(MethodId M, VarId To, VarId Base);

  /// Appends "[Result =] Receiver.Sig(Actuals);" to \p M. \p Result may be
  /// InvalidId when the return value is discarded.
  InvokeId addVirtualCall(MethodId M, VarId Receiver, SigId Sig,
                          const std::vector<VarId> &Actuals, VarId Result,
                          const std::string &SiteName);

  /// Appends "[Result =] Target(Actuals);" (a static call) to \p M.
  InvokeId addStaticCall(MethodId M, MethodId Target,
                         const std::vector<VarId> &Actuals, VarId Result,
                         const std::string &SiteName);

  /// Appends "spawn Receiver.Sig(Actuals);" to \p M: a thread-spawn
  /// invocation (`Thread.start`-style marker). Dispatches like a virtual
  /// call — the receiver's implementation of \p Sig is the new thread's
  /// entry method and the actuals flow into its formals — but runs
  /// concurrently, so it yields no result and catches nothing.
  InvokeId addSpawnCall(MethodId M, VarId Receiver, SigId Sig,
                        const std::vector<VarId> &Actuals,
                        const std::string &SiteName);

  /// Marks \p V as a possible return value of \p M.
  void addReturn(MethodId M, VarId V);

  /// Appends "To = Global;" to \p M.
  void addGlobalLoad(MethodId M, VarId To, GlobalId G);

  /// Appends "Global = From;" to \p M.
  void addGlobalStore(MethodId M, GlobalId G, VarId From);

  /// Appends "throw From;" to \p M (adds From to the method's throw set).
  void addThrow(MethodId M, VarId From);

  /// Attaches an exception handler to invocation \p I: objects thrown by
  /// the callee flow into \p CatchVar.
  void setCatchVar(InvokeId I, VarId CatchVar);

  /// Annotates call site \p I for the taint client (Source / Sink /
  /// Sanitizer; see ir::TaintAnnot).
  void setInvokeTaint(InvokeId I, TaintAnnot A);

  /// Annotates field \p F for the taint client (Source or Sink; a field
  /// cannot be a Sanitizer).
  void setFieldTaint(FieldId F, TaintAnnot A);

  const Program &program() const { return P; }

  /// Finalizes and moves the program out of the builder.
  Program take();

private:
  MethodId addMethodImpl(TypeId Class, const std::string &Name,
                         unsigned NumParams, bool IsStatic);

  Program P;
  std::unordered_map<std::string, FieldId> FieldIds;
  std::unordered_map<std::string, GlobalId> GlobalIds;
  std::unordered_map<std::string, SigId> SigIds;
};

} // namespace ir
} // namespace ctp

#endif // CTP_IR_BUILDER_H
