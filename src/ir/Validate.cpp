//===- ir/Validate.cpp - Structural well-formedness checks ----------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Ir.h"

#include <sstream>

using namespace ctp;
using namespace ctp::ir;

namespace {

class Validator {
public:
  explicit Validator(const Program &P) : P(P) {}

  std::string run() {
    checkEntry();
    if (!Err.empty())
      return Err;
    for (MethodId M = 0; M < P.Methods.size(); ++M) {
      checkMethod(M);
      if (!Err.empty())
        return Err;
    }
    for (InvokeId I = 0; I < P.Invokes.size(); ++I) {
      checkInvoke(I);
      if (!Err.empty())
        return Err;
    }
    for (HeapId H = 0; H < P.Heaps.size(); ++H) {
      checkHeap(H);
      if (!Err.empty())
        return Err;
    }
    return Err;
  }

private:
  void fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
  }

  bool varOk(VarId V, MethodId Owner, const char *Role) {
    if (V >= P.Vars.size()) {
      fail(std::string(Role) + " variable id out of range");
      return false;
    }
    if (P.Vars[V].Parent != Owner) {
      fail(std::string(Role) + " variable '" + P.Vars[V].Name +
           "' does not belong to method '" + P.Methods[Owner].Name + "'");
      return false;
    }
    return true;
  }

  void checkEntry() {
    if (P.Main == InvalidId) {
      fail("program has no main method");
      return;
    }
    if (P.Main >= P.Methods.size()) {
      fail("main method id out of range");
      return;
    }
    if (!P.Methods[P.Main].IsStatic)
      fail("main method must be static");
  }

  void checkMethod(MethodId M) {
    const Method &Meth = P.Methods[M];
    if (Meth.DeclaringClass >= P.Types.size()) {
      fail("method '" + Meth.Name + "' has invalid declaring class");
      return;
    }
    if (Meth.Sig >= P.Sigs.size()) {
      fail("method '" + Meth.Name + "' has invalid signature");
      return;
    }
    if (Meth.Formals.size() != P.Sigs[Meth.Sig].NumParams) {
      fail("method '" + Meth.Name + "' formal count mismatches signature");
      return;
    }
    if (!Meth.IsStatic && !varOk(Meth.ThisVar, M, "this"))
      return;
    for (VarId F : Meth.Formals)
      if (!varOk(F, M, "formal"))
        return;
    for (VarId R : Meth.ReturnVars)
      if (!varOk(R, M, "return"))
        return;
    for (VarId R : Meth.ThrowVars)
      if (!varOk(R, M, "throw"))
        return;
    for (const Statement &S : Meth.Stmts) {
      checkStmt(M, S);
      if (!Err.empty())
        return;
    }
  }

  void checkStmt(MethodId M, const Statement &S) {
    switch (S.Kind) {
    case StmtKind::Assign:
      varOk(S.To, M, "assign target") && varOk(S.From, M, "assign source");
      break;
    case StmtKind::New:
      if (!varOk(S.To, M, "allocation target"))
        return;
      if (S.Heap >= P.Heaps.size())
        fail("allocation heap site out of range");
      else if (P.Heaps[S.Heap].Parent != M)
        fail("heap site '" + P.Heaps[S.Heap].Name +
             "' not owned by containing method");
      break;
    case StmtKind::Load:
      if (!varOk(S.To, M, "load target") || !varOk(S.Base, M, "load base"))
        return;
      if (S.F >= P.Fields.size())
        fail("load field id out of range");
      break;
    case StmtKind::Store:
      if (!varOk(S.Base, M, "store base") || !varOk(S.From, M, "store value"))
        return;
      if (S.F >= P.Fields.size())
        fail("store field id out of range");
      break;
    case StmtKind::Invoke:
      if (S.Inv >= P.Invokes.size())
        fail("invoke id out of range");
      else if (P.Invokes[S.Inv].Caller != M)
        fail("invocation '" + P.Invokes[S.Inv].Name +
             "' not owned by containing method");
      break;
    case StmtKind::LoadGlobal:
      if (!varOk(S.To, M, "global load target"))
        return;
      if (S.Global >= P.Globals.size())
        fail("global load field out of range");
      break;
    case StmtKind::StoreGlobal:
      if (!varOk(S.From, M, "global store value"))
        return;
      if (S.Global >= P.Globals.size())
        fail("global store field out of range");
      break;
    case StmtKind::Throw:
      varOk(S.From, M, "throw value");
      break;
    case StmtKind::Cast:
      if (!varOk(S.To, M, "cast target") || !varOk(S.From, M, "cast source"))
        return;
      if (S.CastType >= P.Types.size())
        fail("cast type out of range");
      break;
    }
  }

  void checkInvoke(InvokeId I) {
    const Invocation &Inv = P.Invokes[I];
    if (Inv.Caller >= P.Methods.size()) {
      fail("invocation '" + Inv.Name + "' has invalid caller");
      return;
    }
    for (VarId A : Inv.Actuals)
      if (!varOk(A, Inv.Caller, "actual"))
        return;
    if (Inv.Result != InvalidId && !varOk(Inv.Result, Inv.Caller, "result"))
      return;
    if (Inv.CatchVar != InvalidId &&
        !varOk(Inv.CatchVar, Inv.Caller, "catch"))
      return;
    if (Inv.IsStatic) {
      if (Inv.StaticTarget >= P.Methods.size()) {
        fail("invocation '" + Inv.Name + "' has invalid static target");
        return;
      }
      const Method &Target = P.Methods[Inv.StaticTarget];
      if (!Target.IsStatic) {
        fail("invocation '" + Inv.Name + "' statically calls instance method");
        return;
      }
      if (Inv.Actuals.size() != Target.Formals.size())
        fail("invocation '" + Inv.Name + "' actual/formal count mismatch");
      return;
    }
    if (!varOk(Inv.Receiver, Inv.Caller, "receiver"))
      return;
    if (Inv.Sig >= P.Sigs.size()) {
      fail("invocation '" + Inv.Name + "' has invalid signature");
      return;
    }
    if (Inv.Actuals.size() != P.Sigs[Inv.Sig].NumParams)
      fail("invocation '" + Inv.Name + "' actual count mismatches signature");
  }

  void checkHeap(HeapId H) {
    const HeapSite &Site = P.Heaps[H];
    if (Site.AllocatedType >= P.Types.size()) {
      fail("heap site '" + Site.Name + "' has invalid type");
      return;
    }
    if (P.Types[Site.AllocatedType].IsAbstract)
      fail("heap site '" + Site.Name + "' allocates an abstract type");
    if (Site.Parent >= P.Methods.size())
      fail("heap site '" + Site.Name + "' has invalid parent method");
  }

  const Program &P;
  std::string Err;
};

} // namespace

std::string ir::validate(const Program &P) { return Validator(P).run(); }
