//===- ir/Validate.cpp - Structural well-formedness checks ----------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ir/Ir.h"

#include <sstream>

using namespace ctp;
using namespace ctp::ir;

namespace {

/// Collects EVERY well-formedness violation rather than bailing on the
/// first: a builder or fact-importer bug usually seeds several related
/// defects, and a tool user fixing them one re-run at a time is the
/// classic single-error-compiler frustration. Each violation is one line
/// prefixed with the offending entity's kind and id. Checks within one
/// entity still short-circuit where a violated precondition would make
/// the follow-on checks read out of range.
class Validator {
public:
  explicit Validator(const Program &P) : P(P) {}

  std::string run() {
    checkEntry();
    for (MethodId M = 0; M < P.Methods.size(); ++M)
      checkMethod(M);
    for (InvokeId I = 0; I < P.Invokes.size(); ++I)
      checkInvoke(I);
    for (HeapId H = 0; H < P.Heaps.size(); ++H)
      checkHeap(H);
    for (FieldId F = 0; F < P.Fields.size(); ++F)
      if (P.Fields[F].Taint == TaintAnnot::Sanitizer)
        fail("field", F,
             "field '" + P.Fields[F].Name +
                 "' cannot be a sanitizer (fields hold values, they do "
                 "not launder them)");
    return Report.str();
  }

private:
  /// Appends one violation line: "<kind> <id>: <msg>".
  void fail(const char *Kind, std::uint32_t Id, const std::string &Msg) {
    if (Report.tellp() > 0)
      Report << "\n";
    if (Id == InvalidId)
      Report << Kind << ": " << Msg;
    else
      Report << Kind << " " << Id << ": " << Msg;
  }

  bool varOk(VarId V, MethodId Owner, const char *Kind, std::uint32_t Id,
             const char *Role) {
    if (V >= P.Vars.size()) {
      fail(Kind, Id, std::string(Role) + " variable id out of range");
      return false;
    }
    if (P.Vars[V].Parent != Owner) {
      fail(Kind, Id,
           std::string(Role) + " variable '" + P.Vars[V].Name +
               "' does not belong to method '" + P.Methods[Owner].Name +
               "'");
      return false;
    }
    return true;
  }

  void checkEntry() {
    if (P.Main == InvalidId) {
      fail("program", InvalidId, "program has no main method");
      return;
    }
    if (P.Main >= P.Methods.size()) {
      fail("program", InvalidId, "main method id out of range");
      return;
    }
    if (!P.Methods[P.Main].IsStatic)
      fail("method", P.Main, "main method must be static");
  }

  void checkMethod(MethodId M) {
    const Method &Meth = P.Methods[M];
    if (Meth.DeclaringClass >= P.Types.size())
      fail("method", M,
           "method '" + Meth.Name + "' has invalid declaring class");
    if (Meth.Sig >= P.Sigs.size()) {
      fail("method", M, "method '" + Meth.Name + "' has invalid signature");
    } else if (Meth.Formals.size() != P.Sigs[Meth.Sig].NumParams) {
      fail("method", M,
           "method '" + Meth.Name + "' formal count mismatches signature");
    }
    if (!Meth.IsStatic)
      varOk(Meth.ThisVar, M, "method", M, "this");
    for (VarId F : Meth.Formals)
      varOk(F, M, "method", M, "formal");
    for (VarId R : Meth.ReturnVars)
      varOk(R, M, "method", M, "return");
    for (VarId R : Meth.ThrowVars)
      varOk(R, M, "method", M, "throw");
    for (const Statement &S : Meth.Stmts)
      checkStmt(M, S);
  }

  void checkStmt(MethodId M, const Statement &S) {
    const char *K = "method";
    switch (S.Kind) {
    case StmtKind::Assign:
      varOk(S.To, M, K, M, "assign target");
      varOk(S.From, M, K, M, "assign source");
      break;
    case StmtKind::New:
      varOk(S.To, M, K, M, "allocation target");
      if (S.Heap >= P.Heaps.size())
        fail(K, M, "allocation heap site out of range");
      else if (P.Heaps[S.Heap].Parent != M)
        fail(K, M,
             "heap site '" + P.Heaps[S.Heap].Name +
                 "' not owned by containing method");
      break;
    case StmtKind::Load:
      varOk(S.To, M, K, M, "load target");
      varOk(S.Base, M, K, M, "load base");
      if (S.F >= P.Fields.size())
        fail(K, M, "load field id out of range");
      break;
    case StmtKind::Store:
      varOk(S.Base, M, K, M, "store base");
      varOk(S.From, M, K, M, "store value");
      if (S.F >= P.Fields.size())
        fail(K, M, "store field id out of range");
      break;
    case StmtKind::Invoke:
      if (S.Inv >= P.Invokes.size())
        fail(K, M, "invoke id out of range");
      else if (P.Invokes[S.Inv].Caller != M)
        fail(K, M,
             "invocation '" + P.Invokes[S.Inv].Name +
                 "' not owned by containing method");
      break;
    case StmtKind::LoadGlobal:
      varOk(S.To, M, K, M, "global load target");
      if (S.Global >= P.Globals.size())
        fail(K, M, "global load field out of range");
      break;
    case StmtKind::StoreGlobal:
      varOk(S.From, M, K, M, "global store value");
      if (S.Global >= P.Globals.size())
        fail(K, M, "global store field out of range");
      break;
    case StmtKind::Throw:
      varOk(S.From, M, K, M, "throw value");
      break;
    case StmtKind::Cast:
      varOk(S.To, M, K, M, "cast target");
      varOk(S.From, M, K, M, "cast source");
      if (S.CastType >= P.Types.size())
        fail(K, M, "cast type out of range");
      break;
    }
  }

  void checkInvoke(InvokeId I) {
    const Invocation &Inv = P.Invokes[I];
    if (Inv.Caller >= P.Methods.size()) {
      fail("invoke", I, "invocation '" + Inv.Name + "' has invalid caller");
      return; // Everything below resolves variables against the caller.
    }
    for (VarId A : Inv.Actuals)
      varOk(A, Inv.Caller, "invoke", I, "actual");
    if (Inv.Result != InvalidId)
      varOk(Inv.Result, Inv.Caller, "invoke", I, "result");
    if (Inv.CatchVar != InvalidId)
      varOk(Inv.CatchVar, Inv.Caller, "invoke", I, "catch");
    if (Inv.IsSpawn) {
      if (Inv.IsStatic)
        fail("invoke", I,
             "spawn invocation '" + Inv.Name + "' must be virtual");
      if (Inv.Result != InvalidId)
        fail("invoke", I,
             "spawn invocation '" + Inv.Name +
                 "' cannot bind a result (the spawned thread's return "
                 "value never reaches the spawner)");
      if (Inv.CatchVar != InvalidId)
        fail("invoke", I,
             "spawn invocation '" + Inv.Name +
                 "' cannot catch (exceptions die with the thread)");
    }
    if ((Inv.Taint == TaintAnnot::Source ||
         Inv.Taint == TaintAnnot::Sanitizer) &&
        Inv.Result == InvalidId)
      fail("invoke", I,
           "invocation '" + Inv.Name + "' is a taint " +
               (Inv.Taint == TaintAnnot::Source ? "source" : "sanitizer") +
               " but discards its result");
    if (Inv.Taint == TaintAnnot::Sink && Inv.Actuals.empty())
      fail("invoke", I,
           "invocation '" + Inv.Name + "' is a taint sink but takes no "
                                       "actuals");
    if (Inv.IsStatic) {
      if (Inv.StaticTarget >= P.Methods.size()) {
        fail("invoke", I,
             "invocation '" + Inv.Name + "' has invalid static target");
        return;
      }
      const Method &Target = P.Methods[Inv.StaticTarget];
      if (!Target.IsStatic)
        fail("invoke", I,
             "invocation '" + Inv.Name + "' statically calls instance "
                                         "method");
      if (Inv.Actuals.size() != Target.Formals.size())
        fail("invoke", I,
             "invocation '" + Inv.Name + "' actual/formal count mismatch");
      return;
    }
    varOk(Inv.Receiver, Inv.Caller, "invoke", I, "receiver");
    if (Inv.Sig >= P.Sigs.size()) {
      fail("invoke", I,
           "invocation '" + Inv.Name + "' has invalid signature");
      return;
    }
    if (Inv.Actuals.size() != P.Sigs[Inv.Sig].NumParams)
      fail("invoke", I,
           "invocation '" + Inv.Name + "' actual count mismatches "
                                       "signature");
  }

  void checkHeap(HeapId H) {
    const HeapSite &Site = P.Heaps[H];
    if (Site.AllocatedType >= P.Types.size())
      fail("heap", H, "heap site '" + Site.Name + "' has invalid type");
    else if (P.Types[Site.AllocatedType].IsAbstract)
      fail("heap", H,
           "heap site '" + Site.Name + "' allocates an abstract type");
    if (Site.Parent >= P.Methods.size())
      fail("heap", H,
           "heap site '" + Site.Name + "' has invalid parent method");
  }

  const Program &P;
  std::ostringstream Report;
};

} // namespace

std::string ir::validate(const Program &P) { return Validator(P).run(); }
