//===- ir/Ir.h - Java-like program model ------------------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-memory model of the simplified Java-like language of Figure 2 of the
/// paper: classes with single inheritance, fields, methods with formals and
/// a return variable, and five statement forms (assignment, heap
/// allocation, field load, field store, invocation). The paper drives its
/// analysis from facts extracted from Java bytecode by Soot; this model is
/// the stand-in source of those facts (see facts/Extract.h) since no Java
/// frontend is available.
///
/// All entities are identified by dense 32-bit ids scoped to one Program.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_IR_IR_H
#define CTP_IR_IR_H

#include <cstdint>
#include <string>
#include <vector>

namespace ctp {
namespace ir {

using TypeId = std::uint32_t;
using FieldId = std::uint32_t;
using SigId = std::uint32_t;
using MethodId = std::uint32_t;
using VarId = std::uint32_t;
using InvokeId = std::uint32_t;
using HeapId = std::uint32_t;

/// Sentinel for "no entity" (e.g. a class with no superclass, a call whose
/// result is discarded, a void method's return variable).
constexpr std::uint32_t InvalidId = UINT32_MAX;

/// A class type. Single inheritance; Super is InvalidId for roots.
struct Type {
  std::string Name;
  TypeId Super = InvalidId;
  /// Abstract types never appear as the type of a heap allocation site but
  /// may declare methods that subclasses inherit or override.
  bool IsAbstract = false;
};

/// Taint annotation attached to a call site or a field. The taint client
/// (clients/Taint.h) consumes these through the extracted facts:
///  - Source: values produced here (a call's result, a field's content)
///    are tainted.
///  - Sink: tainted values must not reach here (a call's actuals, a
///    field's stored values).
///  - Sanitizer: call sites only — the call's result is trusted clean
///    even when its inputs were tainted.
enum class TaintAnnot : std::uint8_t { None = 0, Source, Sink, Sanitizer };

/// A field signature. The analysis is field-sensitive by signature, as in
/// the paper's ΣF alphabet, so fields are global entities.
struct Field {
  std::string Name;
  /// Source or Sink only; Sanitizer is rejected by validate() (a field
  /// cannot launder values).
  TaintAnnot Taint = TaintAnnot::None;
};

/// A static (global) field. The paper's evaluated implementation handles
/// static fields although Figure 3 elides them; data flowing through a
/// global loses the link between the storing and loading method contexts.
struct GlobalField {
  std::string Name;
};

using GlobalId = std::uint32_t;

/// A method signature: a name plus a parameter count. Virtual dispatch
/// resolves (receiver type, signature) pairs to concrete methods.
struct Signature {
  std::string Name;
  unsigned NumParams = 0;

  friend bool operator==(const Signature &A, const Signature &B) {
    return A.NumParams == B.NumParams && A.Name == B.Name;
  }
};

/// A local variable, formal parameter, `this` variable, or return-carrying
/// temporary. Every variable belongs to exactly one method.
struct Variable {
  std::string Name;
  MethodId Parent = InvalidId;
};

/// A heap allocation site ("new T()" at a program point).
struct HeapSite {
  std::string Name;
  TypeId AllocatedType = InvalidId;
  MethodId Parent = InvalidId;
};

/// Statement kinds of the simplified language (Figure 2).
enum class StmtKind : std::uint8_t {
  Assign,      ///< To = From;
  New,         ///< To = new T();  (heap site Heap)
  Load,        ///< To = Base.F;
  Store,       ///< Base.F = From;
  Invoke,      ///< [To =] call (see Invocation)
  LoadGlobal,  ///< To = Global;
  StoreGlobal, ///< Global = From;
  Throw,       ///< throw From;
  Cast,        ///< To = (Type) From;  (F field reused for the type id)
};

/// One statement. Fields not applicable to the kind hold InvalidId.
struct Statement {
  StmtKind Kind;
  VarId To = InvalidId;
  VarId From = InvalidId;
  VarId Base = InvalidId;
  FieldId F = InvalidId;
  HeapId Heap = InvalidId;
  InvokeId Inv = InvalidId;
  GlobalId Global = InvalidId;
  TypeId CastType = InvalidId;
};

/// A call site. Virtual invocations dispatch on the receiver's run-time
/// type via a signature; static invocations name their target directly.
struct Invocation {
  std::string Name;
  MethodId Caller = InvalidId;
  bool IsStatic = false;
  /// Thread-spawn marker (`Thread.start`-style): the invocation dispatches
  /// the receiver's entry signature on a NEW thread. Data flow (receiver,
  /// actuals) is identical to a virtual call, but the call returns no
  /// value and catches no exceptions — the spawned computation is
  /// concurrent, which the race-candidate client exploits. Spawns are
  /// always virtual.
  bool IsSpawn = false;
  /// Receiver variable; InvalidId for static invocations.
  VarId Receiver = InvalidId;
  /// Dispatch signature; InvalidId for static invocations.
  SigId Sig = InvalidId;
  /// Static target; InvalidId for virtual invocations.
  MethodId StaticTarget = InvalidId;
  std::vector<VarId> Actuals;
  /// Variable receiving the return value, or InvalidId if discarded.
  VarId Result = InvalidId;
  /// Variable receiving exceptions thrown by the callee, or InvalidId if
  /// the invocation has no handler (exceptions then vanish — the caller's
  /// own throw set is a possible extension, kept simple here).
  VarId CatchVar = InvalidId;
  /// Taint-client annotation of this call site (see TaintAnnot). Source
  /// and Sanitizer require a bound Result; validate() enforces this.
  TaintAnnot Taint = TaintAnnot::None;
};

/// A method body.
struct Method {
  std::string Name;
  TypeId DeclaringClass = InvalidId;
  SigId Sig = InvalidId;
  bool IsStatic = false;
  /// `this` variable; InvalidId for static methods.
  VarId ThisVar = InvalidId;
  std::vector<VarId> Formals;
  /// Variables whose values the method may return (multiple return sites).
  std::vector<VarId> ReturnVars;
  /// Variables whose values the method may throw.
  std::vector<VarId> ThrowVars;
  std::vector<Statement> Stmts;
};

/// A whole program: the target of fact extraction and of the synthetic
/// workload generator. Construct via ir::Builder.
struct Program {
  std::vector<Type> Types;
  std::vector<Field> Fields;
  std::vector<GlobalField> Globals;
  std::vector<Signature> Sigs;
  std::vector<Variable> Vars;
  std::vector<HeapSite> Heaps;
  std::vector<Method> Methods;
  std::vector<Invocation> Invokes;
  /// The entry point; reach(main, [entry]) seeds the analysis.
  MethodId Main = InvalidId;

  /// True if \p Sub equals \p Super or transitively extends it.
  bool isSubtypeOf(TypeId Sub, TypeId Super) const;

  /// Resolves a virtual dispatch: the concrete method invoked when
  /// signature \p S is called on a receiver of dynamic type \p T, walking
  /// the superclass chain. \returns InvalidId if no method matches.
  MethodId resolveDispatch(TypeId T, SigId S) const;

  /// The class in which \p M is declared; used by classOf(H) under type
  /// sensitivity.
  TypeId classOfMethod(MethodId M) const { return Methods[M].DeclaringClass; }
};

/// Checks structural well-formedness (ids in range, variables used in the
/// method that owns them, actual counts matching signatures, ...).
/// \returns an empty string if valid, else a newline-separated report of
/// EVERY violation found, each line prefixed with the offending entity's
/// kind and id (e.g. "method 17: ...").
std::string validate(const Program &P);

/// Renders the program as readable pseudo-Java, one method per block.
std::string printProgram(const Program &P);

} // namespace ir
} // namespace ctp

#endif // CTP_IR_IR_H
