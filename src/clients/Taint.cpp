//===- clients/Taint.cpp - Source->sink taint checker ---------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "clients/Taint.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <utility>

using namespace ctp;
using namespace ctp::clients;

namespace {

using Pts2 = std::vector<std::array<std::uint32_t, 2>>;
using Hpts3 = std::vector<std::array<std::uint32_t, 3>>;

/// Calls \p Fn for every heap in pts_ci(\p Var), ascending.
template <typename FnT>
void forEachPts(const Pts2 &Pts, facts::Id Var, FnT &&Fn) {
  std::array<std::uint32_t, 2> Key{Var, 0};
  for (auto It = std::lower_bound(Pts.begin(), Pts.end(), Key);
       It != Pts.end() && (*It)[0] == Var; ++It)
    Fn((*It)[1]);
}

bool varHolds(const Pts2 &Pts, facts::Id Var, facts::Id H) {
  return std::binary_search(Pts.begin(), Pts.end(),
                            std::array<std::uint32_t, 2>{Var, H});
}

bool chanHolds(const Hpts3 &Hpts, facts::Id B, facts::Id F, facts::Id H) {
  return std::binary_search(Hpts.begin(), Hpts.end(),
                            std::array<std::uint32_t, 3>{B, F, H});
}

//===----------------------------------------------------------------------===//
// Value-flow graph
//===----------------------------------------------------------------------===//

/// One edge kind per IR statement form that moves a value.
enum class EK : std::uint8_t {
  Assign, ///< Anchor=method
  Cast,   ///< Anchor=method, A=target type
  Store,  ///< Anchor=method, A=field, B=base heap
  Load,   ///< Anchor=method, A=field, B=base heap
  Param,  ///< Anchor=invoke, A=ordinal, B=callee
  Ret,    ///< Anchor=invoke, A=callee
  Catch,  ///< Anchor=invoke, A=callee
  GStore, ///< Anchor=method, A=global
  GLoad,  ///< Anchor=method, A=global
  This,   ///< Anchor=invoke, A=callee
};

struct Edge {
  std::uint32_t To;
  EK K;
  facts::Id Anchor; ///< method or invoke id (see EK)
  facts::Id A = facts::InvalidId;
  facts::Id B = facts::InvalidId;
};

/// The value-flow graph witnesses are found in. Nodes are value carriers:
/// every variable, every (base heap, field) channel the run derived
/// contents for, and every static field. Each edge corresponds to one IR
/// statement (heap-mediated statements fan out per concrete base object),
/// so a path replays as a statement sequence. Edge insertion follows
/// FactDB fact order, making BFS — and hence every witness — a pure
/// function of the fact base and the ci projections.
struct FlowGraph {
  const facts::FactDB &DB;
  const Pts2 &Pts;
  const Hpts3 &Hpts;
  std::vector<std::array<std::uint32_t, 2>> Glob; ///< sorted (Global, Heap)
  std::vector<std::pair<facts::Id, facts::Id>> Chans; ///< sorted (B, F)
  std::size_t NV, NC;
  std::vector<std::vector<Edge>> Adj;

  std::uint32_t varNode(facts::Id V) const {
    return static_cast<std::uint32_t>(V);
  }
  std::uint32_t chanNode(facts::Id B, facts::Id F) const {
    auto It = std::lower_bound(Chans.begin(), Chans.end(),
                               std::make_pair(B, F));
    assert(It != Chans.end() && *It == std::make_pair(B, F));
    return static_cast<std::uint32_t>(NV + (It - Chans.begin()));
  }
  std::uint32_t globNode(facts::Id G) const {
    return static_cast<std::uint32_t>(NV + NC + G);
  }

  bool holds(std::uint32_t Node, facts::Id H) const {
    if (Node < NV)
      return varHolds(Pts, Node, H);
    if (Node < NV + NC) {
      const auto &[B, F] = Chans[Node - NV];
      return chanHolds(Hpts, B, F, H);
    }
    return std::binary_search(
        Glob.begin(), Glob.end(),
        std::array<std::uint32_t, 2>{
            static_cast<std::uint32_t>(Node - NV - NC), H});
  }

  FlowGraph(const facts::FactDB &DB, const analysis::Results &R,
            const Pts2 &Pts, const Hpts3 &Hpts)
      : DB(DB), Pts(Pts), Hpts(Hpts) {
    for (const auto &G : R.Gpts)
      Glob.push_back({G.Global, G.Heap});
    std::sort(Glob.begin(), Glob.end());
    Glob.erase(std::unique(Glob.begin(), Glob.end()), Glob.end());

    for (const auto &T : Hpts)
      Chans.emplace_back(T[0], T[1]);
    std::sort(Chans.begin(), Chans.end());
    Chans.erase(std::unique(Chans.begin(), Chans.end()), Chans.end());

    NV = DB.numVars();
    NC = Chans.size();
    Adj.resize(NV + NC + DB.numGlobals());

    const auto Call = R.ciCall(); // sorted (Invoke, Method)
    auto ForEachCallee = [&Call](facts::Id I, auto &&Fn) {
      std::array<std::uint32_t, 2> Key{I, 0};
      for (auto It = std::lower_bound(Call.begin(), Call.end(), Key);
           It != Call.end() && (*It)[0] == I; ++It)
        Fn((*It)[1]);
    };

    // Per-method member indexes, in fact order within each method.
    std::vector<std::vector<facts::Id>> FormalsOf(DB.numMethods()),
        ReturnsOf(DB.numMethods()), ThrowsOf(DB.numMethods());
    for (const auto &F : DB.Formals) {
      auto &Slots = FormalsOf[F.Method];
      if (Slots.size() <= F.Ordinal)
        Slots.resize(F.Ordinal + 1, facts::InvalidId);
      Slots[F.Ordinal] = F.Var;
    }
    for (const auto &F : DB.Returns)
      ReturnsOf[F.Method].push_back(F.Var);
    for (const auto &F : DB.Throws)
      ThrowsOf[F.Method].push_back(F.Var);
    std::vector<facts::Id> ThisOf(DB.numMethods(), facts::InvalidId);
    for (const auto &F : DB.ThisVars)
      ThisOf[F.Method] = F.Var;

    for (const auto &F : DB.Assigns)
      Adj[F.From].push_back({varNode(F.To), EK::Assign,
                             DB.VarParent[F.To]});
    for (const auto &F : DB.Casts)
      Adj[F.From].push_back(
          {varNode(F.To), EK::Cast, DB.VarParent[F.To], F.Type});
    for (const auto &F : DB.Stores)
      forEachPts(Pts, F.Base, [&](facts::Id HB) {
        Adj[F.From].push_back({chanNode(HB, F.Field), EK::Store,
                               DB.VarParent[F.Base], F.Field, HB});
      });
    for (const auto &F : DB.Loads)
      forEachPts(Pts, F.Base, [&](facts::Id HB) {
        Adj[chanNode(HB, F.Field)].push_back(
            {varNode(F.To), EK::Load, DB.VarParent[F.To], F.Field, HB});
      });
    for (const auto &F : DB.Actuals)
      ForEachCallee(F.Invoke, [&](facts::Id Q) {
        const auto &Slots = FormalsOf[Q];
        if (F.Ordinal < Slots.size() && Slots[F.Ordinal] != facts::InvalidId)
          Adj[F.Var].push_back({varNode(Slots[F.Ordinal]), EK::Param,
                                F.Invoke, F.Ordinal, Q});
      });
    for (const auto &F : DB.AssignReturns)
      ForEachCallee(F.Invoke, [&](facts::Id Q) {
        for (facts::Id RV : ReturnsOf[Q])
          Adj[RV].push_back({varNode(F.To), EK::Ret, F.Invoke, Q});
      });
    for (const auto &F : DB.Catches)
      ForEachCallee(F.Invoke, [&](facts::Id Q) {
        for (facts::Id TV : ThrowsOf[Q])
          Adj[TV].push_back({varNode(F.To), EK::Catch, F.Invoke, Q});
      });
    for (const auto &F : DB.GlobalStores)
      Adj[F.From].push_back(
          {globNode(F.Global), EK::GStore, DB.VarParent[F.From], F.Global});
    for (const auto &F : DB.GlobalLoads)
      Adj[globNode(F.Global)].push_back(
          {varNode(F.To), EK::GLoad, F.InMethod, F.Global});
    for (const auto &F : DB.VirtualInvokes)
      ForEachCallee(F.Invoke, [&](facts::Id Q) {
        if (ThisOf[Q] != facts::InvalidId)
          Adj[F.Receiver].push_back(
              {varNode(ThisOf[Q]), EK::This, F.Invoke, Q});
      });
  }

  WitnessStep stepFor(const Edge &E, const SourceMap &SM) const {
    switch (E.K) {
    case EK::Assign:
      return {SM.method(E.Anchor), "value copied by assignment in '" +
                                       DB.MethodNames[E.Anchor] + "'"};
    case EK::Cast:
      return {SM.method(E.Anchor), "value passes checked cast to '" +
                                       DB.TypeNames[E.A] + "' in '" +
                                       DB.MethodNames[E.Anchor] + "'"};
    case EK::Store:
      return {SM.method(E.Anchor), "stored into field '" +
                                       DB.FieldNames[E.A] + "' of object '" +
                                       DB.HeapNames[E.B] + "'"};
    case EK::Load:
      return {SM.method(E.Anchor), "loaded from field '" +
                                       DB.FieldNames[E.A] + "' of object '" +
                                       DB.HeapNames[E.B] + "'"};
    case EK::Param:
      return {SM.invoke(E.Anchor),
              "passed as argument " + std::to_string(E.A) + " at call '" +
                  DB.InvokeNames[E.Anchor] + "' into '" +
                  DB.MethodNames[E.B] + "'"};
    case EK::Ret:
      return {SM.invoke(E.Anchor), "returned from '" + DB.MethodNames[E.A] +
                                       "' at call '" +
                                       DB.InvokeNames[E.Anchor] + "'"};
    case EK::Catch:
      return {SM.invoke(E.Anchor), "thrown from '" + DB.MethodNames[E.A] +
                                       "' and caught at call '" +
                                       DB.InvokeNames[E.Anchor] + "'"};
    case EK::GStore:
      return {SM.method(E.Anchor),
              "stored into static field '" + DB.GlobalNames[E.A] + "'"};
    case EK::GLoad:
      return {SM.method(E.Anchor),
              "loaded from static field '" + DB.GlobalNames[E.A] + "'"};
    case EK::This:
      return {SM.invoke(E.Anchor), "bound as receiver at call '" +
                                       DB.InvokeNames[E.Anchor] +
                                       "' into '" + DB.MethodNames[E.A] +
                                       "'"};
    }
    return {Location{}, ""};
  }

  /// Multi-source shortest path restricted to carriers of \p H. \returns
  /// the edges of the path and sets \p RootOut to the start node reached,
  /// or returns false when no start reaches \p Goal.
  bool shortestPath(facts::Id H, const std::vector<std::uint32_t> &Starts,
                    std::uint32_t Goal, std::vector<Edge> &PathOut,
                    std::uint32_t &RootOut) const {
    constexpr std::uint32_t None = UINT32_MAX;
    std::vector<std::uint32_t> PrevNode(Adj.size(), None);
    std::vector<std::uint32_t> PrevEdge(Adj.size(), None);
    std::vector<std::uint8_t> Seen(Adj.size(), 0);
    std::deque<std::uint32_t> Queue;
    for (std::uint32_t S : Starts)
      if (!Seen[S] && holds(S, H)) {
        Seen[S] = 1;
        Queue.push_back(S);
      }
    std::uint32_t Found = None;
    if (Seen[Goal])
      Found = Goal; // zero-edge path: the goal is itself a start
    while (Found == None && !Queue.empty()) {
      std::uint32_t N = Queue.front();
      Queue.pop_front();
      const auto &Out = Adj[N];
      for (std::uint32_t E = 0; E < Out.size(); ++E) {
        std::uint32_t M = Out[E].To;
        if (Seen[M] || !holds(M, H))
          continue;
        Seen[M] = 1;
        PrevNode[M] = N;
        PrevEdge[M] = E;
        if (M == Goal) {
          Found = M;
          break;
        }
        Queue.push_back(M);
      }
    }
    if (Found == None)
      return false;
    PathOut.clear();
    for (std::uint32_t N = Found; PrevNode[N] != None; N = PrevNode[N])
      PathOut.push_back(Adj[PrevNode[N]][PrevEdge[N]]);
    std::reverse(PathOut.begin(), PathOut.end());
    RootOut = PathOut.empty() ? Goal : [&] {
      std::uint32_t N = Found;
      while (PrevNode[N] != None)
        N = PrevNode[N];
      return N;
    }();
    return true;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// computeTaint
//===----------------------------------------------------------------------===//

TaintInfo clients::computeTaint(const facts::FactDB &DB,
                                const analysis::Results &R) {
  TaintInfo Info;
  const std::size_t NH = DB.numHeaps();
  Info.Tainted.assign(NH, 0);
  Info.Sanitized.assign(NH, 0);
  Info.HasAnnotations = !DB.TaintSources.empty() ||
                        !DB.TaintSinks.empty() || !DB.Sanitizers.empty();
  if (!Info.HasAnnotations)
    return Info;

  const auto Pts = R.ciPts();
  const auto Hpts = R.ciHpts();

  std::vector<facts::Id> ResultOf(DB.numInvokes(), facts::InvalidId);
  for (const auto &F : DB.AssignReturns)
    ResultOf[F.Invoke] = F.To;

  std::deque<facts::Id> Work;
  auto Mark = [&](facts::Id H) {
    if (H < NH && !Info.Tainted[H]) {
      Info.Tainted[H] = 1;
      Work.push_back(H);
    }
  };

  for (const auto &S : DB.TaintSources) {
    if (S.IsField == 0) {
      if (facts::Id RV = ResultOf[S.Entity]; RV != facts::InvalidId)
        forEachPts(Pts, RV, Mark);
    } else {
      // Everything any object's source field holds is tainted.
      for (const auto &T : Hpts)
        if (T[1] == S.Entity)
          Mark(T[2]);
    }
  }

  // Field closure: the contents of a tainted object are tainted (matches
  // the escape checker's treatment; ciHpts is monotone in precision, so
  // the closure is too).
  while (!Work.empty()) {
    facts::Id H = Work.front();
    Work.pop_front();
    std::array<std::uint32_t, 3> Key{H, 0, 0};
    for (auto It = std::lower_bound(Hpts.begin(), Hpts.end(), Key);
         It != Hpts.end() && (*It)[0] == H; ++It)
      Mark((*It)[2]);
  }

  for (const auto &S : DB.Sanitizers)
    if (facts::Id RV = ResultOf[S.Invoke]; RV != facts::InvalidId)
      forEachPts(Pts, RV, [&](facts::Id H) { Info.Sanitized[H] = 1; });
  return Info;
}

//===----------------------------------------------------------------------===//
// checkTaint
//===----------------------------------------------------------------------===//

namespace {

/// Sorted (Var, Heap, T) index over the context-sensitive pts relation,
/// for endpoint context lookups.
using CsIndex = std::vector<std::array<std::uint32_t, 3>>;

CsIndex buildCsIndex(const analysis::Results &R) {
  CsIndex Cs;
  Cs.reserve(R.Pts.size());
  for (const auto &F : R.Pts)
    Cs.push_back({F.Var, F.Heap, F.T});
  std::sort(Cs.begin(), Cs.end());
  return Cs;
}

/// The lexicographically smallest rendering of any context transformation
/// under which \p Var sees \p H. Content-ordered (not id-ordered) so both
/// back-ends — which intern transformations in different orders — pick
/// the same one. \returns "" without a domain or a matching fact.
std::string minCtxStr(const CsIndex &Cs, const analysis::Results &R,
                      facts::Id Var, facts::Id H) {
  if (!R.Dom)
    return "";
  std::string Best;
  std::array<std::uint32_t, 3> Key{Var, H, 0};
  for (auto It = std::lower_bound(Cs.begin(), Cs.end(), Key);
       It != Cs.end() && (*It)[0] == Var && (*It)[1] == H; ++It) {
    std::string S = R.Dom->toString((*It)[2]);
    if (Best.empty() || S < Best)
      Best = std::move(S);
  }
  return Best;
}

std::string withCtx(std::string Note, const std::string &Ctx) {
  if (!Ctx.empty())
    Note += " [ctx " + Ctx + "]";
  return Note;
}

} // namespace

void clients::checkTaint(const facts::FactDB &DB, const analysis::Results &R,
                         const SourceMap &SM, Report &Out,
                         std::map<std::string, TaintEndpoint> *Endpoints) {
  if (DB.TaintSources.empty())
    return;
  TaintInfo Info = computeTaint(DB, R);

  const auto Pts = R.ciPts();
  const auto Hpts = R.ciHpts();

  std::vector<facts::Id> ResultOf(DB.numInvokes(), facts::InvalidId);
  for (const auto &F : DB.AssignReturns)
    ResultOf[F.Invoke] = F.To;

  bool AnyHot = false;
  for (std::size_t H = 0; H < Info.Tainted.size() && !AnyHot; ++H)
    AnyHot = Info.isHot(static_cast<facts::Id>(H));

  std::unique_ptr<FlowGraph> G;
  CsIndex Cs;
  if (AnyHot && !DB.TaintSinks.empty()) {
    G = std::make_unique<FlowGraph>(DB, R, Pts, Hpts);
    Cs = buildCsIndex(R);
  }

  /// Witness starts for hot heap \p H: every source-call result holding
  /// H and every source-field channel holding H, each with its intro
  /// step and its source-side variable (the call result, or the stored
  /// value for field sources).
  struct Start {
    std::uint32_t Node;
    WitnessStep Intro;
    facts::Id SourceVar;
  };
  auto StartsFor = [&](facts::Id H) {
    std::vector<Start> Starts;
    for (const auto &S : DB.TaintSources) {
      if (S.IsField == 0) {
        facts::Id RV = ResultOf[S.Entity];
        if (RV != facts::InvalidId && varHolds(Pts, RV, H))
          Starts.push_back(
              {G->varNode(RV),
               {SM.invoke(S.Entity),
                withCtx("tainted value produced by source call '" +
                            DB.InvokeNames[S.Entity] + "'",
                        minCtxStr(Cs, R, RV, H))},
               RV});
      } else {
        for (const auto &T : Hpts)
          if (T[1] == S.Entity && T[2] == H) {
            WitnessStep Intro{SM.heap(T[0]),
                              "tainted content of source field '" +
                                  DB.FieldNames[S.Entity] + "' of object '" +
                                  DB.HeapNames[T[0]] + "'"};
            facts::Id SrcVar = facts::InvalidId;
            // Prefer anchoring at the store statement that put H there.
            for (const auto &St : DB.Stores)
              if (St.Field == S.Entity && varHolds(Pts, St.From, H) &&
                  varHolds(Pts, St.Base, T[0])) {
                Intro = {SM.method(DB.VarParent[St.From]),
                         "tainted by store into source field '" +
                             DB.FieldNames[S.Entity] + "' of object '" +
                             DB.HeapNames[T[0]] + "'"};
                SrcVar = St.From;
                break;
              }
            Starts.push_back({G->chanNode(T[0], T[1]), std::move(Intro),
                              SrcVar});
          }
      }
    }
    return Starts;
  };

  /// Builds the full witness for hot heap \p H reaching \p GoalVar, with
  /// \p SinkStep appended; \p SrcOut receives the source-side variable of
  /// the start the path was found from. Falls back to [first intro, sink]
  /// when the flow graph holds no path (e.g. flows through statements the
  /// graph does not model).
  auto WitnessFor = [&](facts::Id H, facts::Id GoalVar, WitnessStep SinkStep,
                        facts::Id &SrcOut) {
    std::vector<WitnessStep> W;
    std::vector<Start> Starts = StartsFor(H);
    std::vector<std::uint32_t> Nodes;
    for (const Start &S : Starts)
      Nodes.push_back(S.Node);
    std::vector<Edge> Path;
    std::uint32_t Root = UINT32_MAX;
    SrcOut = Starts.empty() ? facts::InvalidId : Starts.front().SourceVar;
    if (!Starts.empty() &&
        G->shortestPath(H, Nodes, G->varNode(GoalVar), Path, Root)) {
      for (const Start &S : Starts)
        if (S.Node == Root) {
          W.push_back(S.Intro);
          SrcOut = S.SourceVar;
          break;
        }
      for (const Edge &E : Path)
        W.push_back(G->stepFor(E, SM));
    } else if (!Starts.empty()) {
      W.push_back(Starts.front().Intro);
    }
    W.push_back(std::move(SinkStep));
    return W;
  };

  std::set<facts::Id> Sunk;
  std::set<std::pair<std::string, facts::Id>> Emitted; // (stable key, heap)

  auto Emit = [&](const std::string &Key, facts::Id H, const Location &Loc,
                  const std::string &Message, facts::Id GoalVar,
                  WitnessStep SinkStep) {
    if (!Emitted.insert({Key, H}).second)
      return;
    Sunk.insert(H);
    facts::Id SrcVar = facts::InvalidId;
    Out.add("taint.flow", Severity::Warning, Loc, Message, Key,
            WitnessFor(H, GoalVar, std::move(SinkStep), SrcVar));
    if (Endpoints)
      (*Endpoints)[stableFindingId("taint.flow", Key)] = {GoalVar, SrcVar, H};
  };

  for (const auto &Snk : DB.TaintSinks) {
    if (Snk.IsField == 0) {
      const facts::Id I = Snk.Entity;
      for (const auto &A : DB.Actuals) {
        if (A.Invoke != I)
          continue;
        forEachPts(Pts, A.Var, [&](facts::Id H) {
          if (!Info.isHot(H))
            return;
          Emit(DB.InvokeNames[I] + "<-" + DB.HeapNames[H], H, SM.invoke(I),
               "tainted object '" + DB.HeapNames[H] +
                   "' reaches sink call '" + DB.InvokeNames[I] + "'",
               A.Var,
               {SM.invoke(I),
                withCtx("reaches sink call '" + DB.InvokeNames[I] + "'",
                        minCtxStr(Cs, R, A.Var, H))});
        });
      }
    } else {
      const facts::Id F = Snk.Entity;
      for (const auto &St : DB.Stores) {
        if (St.Field != F)
          continue;
        forEachPts(Pts, St.From, [&](facts::Id H) {
          if (!Info.isHot(H))
            return;
          Location Loc = SM.method(DB.VarParent[St.Base]);
          Emit(DB.FieldNames[F] + "<-" + DB.HeapNames[H], H, Loc,
               "tainted object '" + DB.HeapNames[H] +
                   "' is stored into sink field '" + DB.FieldNames[F] + "'",
               St.From,
               {Loc, withCtx("stored into sink field '" + DB.FieldNames[F] +
                                 "'",
                             minCtxStr(Cs, R, St.From, H))});
        });
      }
    }
  }

  // Dead sources: a source none of whose values ever reaches a sink. Note
  // severity — under a finer configuration more sources go dead (fewer
  // flows), the mirror image of the warning subset property.
  for (const auto &S : DB.TaintSources) {
    bool Live = false;
    if (S.IsField == 0) {
      facts::Id RV = ResultOf[S.Entity];
      if (RV != facts::InvalidId)
        forEachPts(Pts, RV, [&](facts::Id H) { Live |= Sunk.count(H) > 0; });
      if (!Live)
        Out.add("taint.dead-source", Severity::Note, SM.invoke(S.Entity),
                "source call '" + DB.InvokeNames[S.Entity] +
                    "' produces no value that reaches a sink",
                DB.InvokeNames[S.Entity]);
    } else {
      Location Loc{"ctp/<unknown>.java", 1};
      for (const auto &St : DB.Stores)
        if (St.Field == S.Entity) {
          Loc = SM.method(DB.VarParent[St.Base]);
          break;
        }
      for (const auto &T : Hpts)
        if (T[1] == S.Entity && Sunk.count(T[2]))
          Live = true;
      if (!Live)
        Out.add("taint.dead-source", Severity::Note, Loc,
                "source field '" + DB.FieldNames[S.Entity] +
                    "' holds no value that reaches a sink",
                "field:" + DB.FieldNames[S.Entity]);
    }
  }
}
