//===- clients/Diagnostics.h - Checker findings and reports -----*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared diagnostics layer of the checker suite (escape analysis,
/// race-candidate detection, cast safety). Checkers produce Findings —
/// rule id, severity, message, and a file:line-style anchor — and a Report
/// renders them deterministically as human-readable text or as SARIF
/// 2.1.0 JSON, the interchange format CI systems and editors ingest.
///
/// Determinism contract: two runs over the same FactDB and Results render
/// byte-identical output. Finding ids are content hashes over entity
/// NAMES (not dense ids), so they are stable across unrelated program
/// growth — the property suppression lists depend on.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CLIENTS_DIAGNOSTICS_H
#define CTP_CLIENTS_DIAGNOSTICS_H

#include "facts/FactDB.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ctp {
namespace clients {

enum class Severity : std::uint8_t { Note = 0, Warning = 1, Error = 2 };

/// "note" / "warning" / "error" — also the SARIF result level values.
const char *severityName(Severity S);

/// A file:line-style source anchor. The IR has no real source files, so
/// SourceMap synthesizes one pseudo-file per class with deterministic
/// line numbers; facts loaded from TSV get the same treatment.
struct Location {
  std::string Uri; ///< e.g. "ctp/Worker0.java"
  unsigned Line = 1;
};

/// One step of a finding's witness path: a source anchor plus a prose
/// note ("passed as argument at call 'tntwrite_3'"). Steps are ordered
/// source-first; they become SARIF codeFlow threadFlow locations.
struct WitnessStep {
  Location Loc;
  std::string Note;
};

/// One checker finding.
struct Finding {
  std::string RuleId; ///< e.g. "escape.global", "race.candidate"
  Severity Sev = Severity::Warning;
  std::string Message;
  Location Loc;
  /// Stable identity: 16 hex chars of FNV-1a over the rule id and the
  /// anchor entity names supplied by the checker.
  std::string Id;
  /// Witness path, source to sink. Every finding carries at least one
  /// step: checkers that track interprocedural evidence (taint) supply
  /// the full path; for the rest Report::add synthesizes a single
  /// anchor-level step from the finding's own location and message.
  /// Not part of the finding's identity or order.
  std::vector<WitnessStep> Witness;
};

/// Total deterministic order: (RuleId, Uri, Line, Message, Id).
bool operator<(const Finding &A, const Finding &B);
bool operator==(const Finding &A, const Finding &B);

/// Metadata for one checker rule, surfaced in SARIF's rule table.
struct RuleInfo {
  const char *Id;
  const char *Description;
  Severity DefaultSev;
};

/// Every rule the checker suite can emit, in rule-id order.
const std::vector<RuleInfo> &allRules();

/// The stable id Report::add would assign to (\p RuleId, \p StableKey).
/// Exposed so checkers can associate side tables (e.g. the taint
/// checker's finding -> sink-fact map for --explain) with findings.
std::string stableFindingId(const std::string &RuleId,
                            const std::string &StableKey);

/// Synthesizes deterministic pseudo-source locations from the FactDB
/// entity layout: each class C becomes the file "ctp/<C>.java"; inside
/// it every method of C occupies a block — one line for the header,
/// then one line per owned heap site, then one per owned invocation —
/// in dense-id order. Purely a function of the FactDB, hence stable.
class SourceMap {
public:
  explicit SourceMap(const facts::FactDB &DB);

  Location method(facts::Id M) const;
  Location heap(facts::Id H) const;
  Location invoke(facts::Id I) const;

private:
  std::vector<std::string> FileOfMethod;
  std::vector<unsigned> MethodLines;
  std::vector<unsigned> HeapLines;
  std::vector<unsigned> InvokeLines;
  std::vector<facts::Id> HeapMethod;   // heap -> parent method
  std::vector<facts::Id> InvokeMethod; // invoke -> parent method
};

/// Accumulates findings and renders them. add() computes the stable id
/// from \p StableKey (rule id + anchor entity names, chosen by the
/// checker); finalize() sorts and deduplicates. Rendering before
/// finalize() asserts.
class Report {
public:
  /// \p Witness is the finding's evidence path; when empty a single
  /// anchor-level step is synthesized from \p Loc and \p Message so
  /// every finding can be explained and rendered as a SARIF codeFlow.
  void add(const std::string &RuleId, Severity Sev, const Location &Loc,
           const std::string &Message, const std::string &StableKey,
           std::vector<WitnessStep> Witness = {});

  /// Sorts into the deterministic order and drops exact duplicates.
  void finalize();

  const std::vector<Finding> &findings() const { return Items; }

  /// The finalized finding with stable id \p Id, or nullptr.
  const Finding *findById(const std::string &Id) const;

  /// Renders one finding and its witness path for `ctp-lint --explain`:
  /// the finding's human line followed by one numbered line per witness
  /// step. \returns "" when \p Id matches no finding.
  std::string renderExplain(const std::string &Id) const;

  /// Number of findings at severity \p S or above.
  std::size_t countAtLeast(Severity S) const;

  /// One line per finding: "uri:line: severity: message [rule] (id)",
  /// followed by a per-rule summary block.
  std::string renderHuman() const;

  /// SARIF 2.1.0: a single run with the full rule table and one result
  /// per finding. Byte-deterministic.
  std::string renderSarif(const std::string &ToolName,
                          const std::string &ToolVersion) const;

private:
  std::vector<Finding> Items;
  bool Finalized = false;
};

} // namespace clients
} // namespace ctp

#endif // CTP_CLIENTS_DIAGNOSTICS_H
