//===- clients/RaceCandidates.h - Data-race candidate pairs -----*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Race-candidate detection: pairs of field accesses (at least one a
/// write) that may touch the same field of the same thread-shared object
/// from concurrently executing code. Built from four context-insensitive
/// ingredients:
///
///   1. thread entry methods — resolved targets of spawn invocations
///      (call_ci restricted to spawn sites);
///   2. the Concurrent method set — the call-graph closure from those
///      entries (code that may run on a spawned thread);
///   3. ThreadShared heaps — from the escape analysis (Escape.h);
///   4. access aliasing — both bases may point to a common shared heap
///      (pts_ci).
///
/// A pair is reported only when at least one of its two methods is
/// Concurrent, so purely main-thread accesses to shared objects are
/// pruned. All four ingredients shrink with rising context precision,
/// hence so does the candidate set.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CLIENTS_RACECANDIDATES_H
#define CTP_CLIENTS_RACECANDIDATES_H

#include "analysis/Results.h"
#include "clients/Diagnostics.h"
#include "facts/FactDB.h"

#include <cstdint>
#include <vector>

namespace ctp {
namespace clients {

/// One race candidate, aggregated per (field, shared heap): a write and a
/// second access (read or write) that may race on that object's field.
struct RaceCandidate {
  std::uint32_t Field;
  std::uint32_t Heap;          ///< The thread-shared object both touch.
  std::uint32_t WriteMethod;   ///< Method containing the write.
  std::uint32_t OtherMethod;   ///< Method containing the second access.
  bool OtherIsWrite = false;   ///< Write/write candidate if true.
};

struct RaceSummary {
  std::vector<RaceCandidate> Candidates; ///< Sorted (Field, Heap).
  std::size_t ConcurrentMethods = 0;     ///< |Concurrent closure|.
  std::size_t ThreadEntries = 0;         ///< Resolved spawn targets.
};

/// Computes race candidates; deterministic (candidates sorted by
/// (Field, Heap), representative methods are the smallest ids involved).
RaceSummary findRaceCandidates(const facts::FactDB &DB,
                               const analysis::Results &R);

/// Runs the race checker: one "race.candidate" warning per candidate,
/// anchored at the heap site of the shared object.
void checkRaces(const facts::FactDB &DB, const analysis::Results &R,
                const SourceMap &SM, Report &Out);

} // namespace clients
} // namespace ctp

#endif // CTP_CLIENTS_RACECANDIDATES_H
