//===- clients/RaceCandidates.cpp - Data-race candidate pairs -------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "clients/RaceCandidates.h"

#include "clients/Escape.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

using namespace ctp;
using namespace ctp::clients;

namespace {

/// One field access site: the containing method, whether it writes, and a
/// tie-breaking index (position in the Stores/Loads fact vector).
struct Access {
  facts::Id Method;
  bool IsWrite;
  std::uint32_t Idx;

  bool operator<(const Access &O) const {
    if (Method != O.Method)
      return Method < O.Method;
    if (IsWrite != O.IsWrite)
      return IsWrite; // writes first, so representatives prefer them
    return Idx < O.Idx;
  }
  bool operator==(const Access &O) const {
    return Method == O.Method && IsWrite == O.IsWrite && Idx == O.Idx;
  }
};

} // namespace

RaceSummary clients::findRaceCandidates(const facts::FactDB &DB,
                                        const analysis::Results &R) {
  RaceSummary S;
  if (DB.Spawns.empty())
    return S; // single-threaded program: nothing can race

  // 1. Thread entries: resolved targets of spawn invocations.
  std::set<facts::Id> SpawnInvokes;
  for (const auto &Sp : DB.Spawns)
    SpawnInvokes.insert(Sp.Invoke);
  const auto Call = R.ciCall(); // sorted (Invoke, Method)
  std::set<facts::Id> Concurrent;
  std::deque<facts::Id> Work;
  for (const auto &Edge : Call)
    if (SpawnInvokes.count(Edge[0]) && Concurrent.insert(Edge[1]).second)
      Work.push_back(Edge[1]);
  S.ThreadEntries = Work.size();

  // 2. Concurrent closure over the call graph: anything callable from a
  // thread entry may execute on that thread.
  std::map<facts::Id, std::vector<facts::Id>> CalleesOf;
  for (const auto &Edge : Call)
    if (Edge[0] < DB.InvokeParent.size())
      CalleesOf[DB.InvokeParent[Edge[0]]].push_back(Edge[1]);
  while (!Work.empty()) {
    facts::Id M = Work.front();
    Work.pop_front();
    auto It = CalleesOf.find(M);
    if (It == CalleesOf.end())
      continue;
    for (facts::Id Callee : It->second)
      if (Concurrent.insert(Callee).second)
        Work.push_back(Callee);
  }
  S.ConcurrentMethods = Concurrent.size();

  // 3. Thread-shared objects, from the escape analysis.
  EscapeInfo Esc = computeEscape(DB, R);

  // 4. Bucket accesses by (field, shared heap) through pts_ci of the
  // base variable. Variables of unreachable methods have empty pts, so
  // dead accesses drop out without an explicit reach check.
  const auto Pts = R.ciPts(); // sorted (Var, Heap)
  auto ForEachSharedHeap = [&](facts::Id Base, auto &&Fn) {
    std::array<std::uint32_t, 2> Key{Base, 0};
    for (auto It = std::lower_bound(Pts.begin(), Pts.end(), Key);
         It != Pts.end() && (*It)[0] == Base; ++It)
      if ((*It)[1] < Esc.ThreadShared.size() && Esc.ThreadShared[(*It)[1]])
        Fn((*It)[1]);
  };

  std::map<std::pair<facts::Id, facts::Id>, std::vector<Access>> Buckets;
  for (std::uint32_t I = 0; I < DB.Stores.size(); ++I) {
    const auto &St = DB.Stores[I];
    facts::Id M =
        St.Base < DB.VarParent.size() ? DB.VarParent[St.Base] : facts::InvalidId;
    ForEachSharedHeap(St.Base, [&](facts::Id H) {
      Buckets[{St.Field, H}].push_back({M, true, I});
    });
  }
  for (std::uint32_t I = 0; I < DB.Loads.size(); ++I) {
    const auto &Ld = DB.Loads[I];
    facts::Id M =
        Ld.Base < DB.VarParent.size() ? DB.VarParent[Ld.Base] : facts::InvalidId;
    ForEachSharedHeap(Ld.Base, [&](facts::Id H) {
      Buckets[{Ld.Field, H}].push_back({M, false, I});
    });
  }

  // 5. One candidate per bucket holding a (write, other-access) pair with
  // at least one side on a spawned thread. The representative pair is the
  // lexicographically first valid one, so output is deterministic.
  for (auto &[Key, Accs] : Buckets) {
    std::sort(Accs.begin(), Accs.end());
    Accs.erase(std::unique(Accs.begin(), Accs.end()), Accs.end());
    bool Found = false;
    for (std::size_t WI = 0; WI < Accs.size() && !Found; ++WI) {
      if (!Accs[WI].IsWrite)
        continue;
      for (std::size_t AI = 0; AI < Accs.size() && !Found; ++AI) {
        if (AI == WI)
          continue;
        if (!Concurrent.count(Accs[WI].Method) &&
            !Concurrent.count(Accs[AI].Method))
          continue;
        S.Candidates.push_back({Key.first, Key.second, Accs[WI].Method,
                                Accs[AI].Method, Accs[AI].IsWrite});
        Found = true;
      }
    }
  }
  // Buckets iterate in (Field, Heap) order already; keep that order.
  return S;
}

void clients::checkRaces(const facts::FactDB &DB, const analysis::Results &R,
                         const SourceMap &SM, Report &Out) {
  RaceSummary S = findRaceCandidates(DB, R);
  for (const RaceCandidate &C : S.Candidates) {
    const std::string &FieldName = DB.FieldNames[C.Field];
    const std::string &HeapName = DB.HeapNames[C.Heap];
    std::string Msg = "field '" + FieldName + "' of thread-shared object '" +
                      HeapName + "' may race: written in '" +
                      DB.MethodNames[C.WriteMethod] + "', " +
                      (C.OtherIsWrite ? "also written" : "read") + " in '" +
                      DB.MethodNames[C.OtherMethod] + "'";
    Out.add("race.candidate", Severity::Warning, SM.heap(C.Heap), Msg,
            FieldName + "\x1f" + HeapName);
  }
}
