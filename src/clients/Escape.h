//===- clients/Escape.h - Field-sensitive escape analysis -------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Escape analysis on top of the points-to results: classifies every heap
/// site by how its objects leave the scope of their allocating method.
///
///   * GlobalEscape — reachable from a static field (gpts, or stored into
///     an object that global-escapes);
///   * ReturnEscape — returned out of the allocating method;
///   * ThreadEscape — passed into (or the receiver of) a thread-spawn
///     invocation, directly or via fields of an object that is.
///
/// Escape states propagate through the heap graph: if H escapes and
/// hpts_ci(H, F, H2) holds, then H2 escapes the same way — an object
/// stored into an escaping container escapes with it. All inputs are
/// context-insensitive projections, so every escape set shrinks
/// monotonically as context precision increases (see DESIGN.md, "Checker
/// suite").
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CLIENTS_ESCAPE_H
#define CTP_CLIENTS_ESCAPE_H

#include "analysis/Results.h"
#include "clients/Diagnostics.h"
#include "facts/FactDB.h"

#include <cstdint>
#include <vector>

namespace ctp {
namespace clients {

/// Per-heap escape classification, one bit per escape route.
enum EscapeBit : std::uint8_t {
  NoEscape = 0,
  GlobalEscape = 1 << 0,
  ReturnEscape = 1 << 1,
  ThreadEscape = 1 << 2,
};

struct EscapeInfo {
  /// Indexed by heap id; OR of EscapeBit flags.
  std::vector<std::uint8_t> Mask;
  /// Heaps visible to more than one thread: the field-closure of
  /// thread-escaping heaps, plus — when the program spawns at all —
  /// global-escaping heaps (any thread can read a static).
  std::vector<bool> ThreadShared;
  /// True iff the program contains at least one spawn invocation.
  bool HasSpawns = false;

  std::size_t countEscaping() const {
    std::size_t N = 0;
    for (std::uint8_t M : Mask)
      N += M != NoEscape;
    return N;
  }
};

/// Computes the escape classification of every heap site.
EscapeInfo computeEscape(const facts::FactDB &DB, const analysis::Results &R);

/// Runs the escape checker: one finding per (heap, escape route), rules
/// "escape.global" / "escape.thread" (warnings) and "escape.return"
/// (note), anchored at the allocation site.
void checkEscape(const facts::FactDB &DB, const analysis::Results &R,
                 const SourceMap &SM, Report &Out);

} // namespace clients
} // namespace ctp

#endif // CTP_CLIENTS_ESCAPE_H
