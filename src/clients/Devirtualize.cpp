//===- clients/Devirtualize.cpp - Call-site devirtualization --------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "clients/Devirtualize.h"

#include <algorithm>
#include <map>
#include <set>

using namespace ctp;
using namespace ctp::clients;

DevirtSummary clients::devirtualize(const facts::FactDB &DB,
                                    const analysis::Results &R) {
  DevirtSummary S;
  std::set<std::uint32_t> VirtualSites;
  for (const auto &F : DB.VirtualInvokes)
    VirtualSites.insert(F.Invoke);
  S.VirtualSites = VirtualSites.size();

  std::map<std::uint32_t, std::set<std::uint32_t>> Targets;
  for (const auto &Edge : R.ciCall())
    if (VirtualSites.count(Edge[0]))
      Targets[Edge[0]].insert(Edge[1]);

  for (const auto &[Invoke, Callees] : Targets) {
    CallSiteTargets CS;
    CS.Invoke = Invoke;
    CS.Targets.assign(Callees.begin(), Callees.end());
    if (CS.Targets.size() == 1)
      ++S.MonomorphicSites;
    else
      ++S.PolymorphicSites;
    S.PerSite.push_back(std::move(CS));
  }
  S.ReachedSites = S.PerSite.size();
  return S;
}
