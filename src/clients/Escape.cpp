//===- clients/Escape.cpp - Field-sensitive escape analysis ---------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "clients/Escape.h"

#include <algorithm>
#include <deque>
#include <set>

using namespace ctp;
using namespace ctp::clients;

namespace {

/// Adds \p Bits to heap \p H's mask and enqueues it if anything changed.
void mark(std::vector<std::uint8_t> &Mask, std::deque<facts::Id> &Work,
          facts::Id H, std::uint8_t Bits) {
  if (H >= Mask.size())
    return;
  std::uint8_t Old = Mask[H];
  if ((Old | Bits) == Old)
    return;
  Mask[H] = static_cast<std::uint8_t>(Old | Bits);
  Work.push_back(H);
}

} // namespace

EscapeInfo clients::computeEscape(const facts::FactDB &DB,
                                  const analysis::Results &R) {
  EscapeInfo Info;
  const std::size_t NH = DB.numHeaps();
  Info.Mask.assign(NH, NoEscape);
  Info.ThreadShared.assign(NH, false);
  Info.HasSpawns = !DB.Spawns.empty();

  // Context-insensitive inputs only (the monotonicity argument rests on
  // this): ciPts for variable contents, ciHpts for the heap graph, Gpts
  // for statics.
  const auto Pts = R.ciPts();   // sorted (Var, Heap)
  const auto Hpts = R.ciHpts(); // sorted (Base, Field, Heap)

  auto PointsTo = [&Pts](facts::Id Var, auto &&Fn) {
    std::array<std::uint32_t, 2> Key{Var, 0};
    for (auto It = std::lower_bound(Pts.begin(), Pts.end(), Key);
         It != Pts.end() && (*It)[0] == Var; ++It)
      Fn((*It)[1]);
  };

  std::deque<facts::Id> Work;

  // Seed 1: statics. Everything a global points to escapes globally.
  std::set<facts::Id> GlobalHeaps;
  for (const auto &G : R.Gpts)
    GlobalHeaps.insert(G.Heap);
  for (facts::Id H : GlobalHeaps)
    mark(Info.Mask, Work, H, GlobalEscape);

  // Seed 2: returns out of the allocating method. return(Z, P) with
  // pts_ci(Z, H) and parent(H) == P means P hands its own allocation
  // upward.
  for (const auto &F : DB.Returns)
    PointsTo(F.Var, [&](facts::Id H) {
      if (H < DB.HeapParent.size() && DB.HeapParent[H] == F.Method)
        mark(Info.Mask, Work, H, ReturnEscape);
    });

  // Seed 3: thread boundaries. Objects passed as actuals of a spawn — or
  // serving as its receiver, i.e. the worker object itself — cross onto
  // the new thread.
  std::set<facts::Id> SpawnInvokes;
  for (const auto &S : DB.Spawns)
    SpawnInvokes.insert(S.Invoke);
  if (!SpawnInvokes.empty()) {
    for (const auto &A : DB.Actuals)
      if (SpawnInvokes.count(A.Invoke))
        PointsTo(A.Var,
                 [&](facts::Id H) { mark(Info.Mask, Work, H, ThreadEscape); });
    for (const auto &V : DB.VirtualInvokes)
      if (SpawnInvokes.count(V.Invoke))
        PointsTo(V.Receiver,
                 [&](facts::Id H) { mark(Info.Mask, Work, H, ThreadEscape); });
  }

  // Closure over the heap graph: whatever an escaping object's fields
  // point to escapes the same way.
  while (!Work.empty()) {
    facts::Id H = Work.front();
    Work.pop_front();
    std::uint8_t Bits = Info.Mask[H];
    std::array<std::uint32_t, 3> Key{H, 0, 0};
    for (auto It = std::lower_bound(Hpts.begin(), Hpts.end(), Key);
         It != Hpts.end() && (*It)[0] == H; ++It)
      mark(Info.Mask, Work, (*It)[2], Bits);
  }

  // Thread-shared: thread-escaping heaps always; global-escaping heaps
  // too once any thread exists (a static is readable from every thread).
  // Both sets are already field-closed by the loop above.
  for (facts::Id H = 0; H < NH; ++H)
    Info.ThreadShared[H] = (Info.Mask[H] & ThreadEscape) ||
                           (Info.HasSpawns && (Info.Mask[H] & GlobalEscape));
  return Info;
}

void clients::checkEscape(const facts::FactDB &DB, const analysis::Results &R,
                          const SourceMap &SM, Report &Out) {
  EscapeInfo Info = computeEscape(DB, R);
  for (facts::Id H = 0; H < Info.Mask.size(); ++H) {
    std::uint8_t M = Info.Mask[H];
    if (M == NoEscape)
      continue;
    const std::string &Name = DB.HeapNames[H];
    Location Loc = SM.heap(H);
    if (M & GlobalEscape)
      Out.add("escape.global", Severity::Warning, Loc,
              "object '" + Name + "' escapes through a static field", Name);
    if (M & ThreadEscape)
      Out.add("escape.thread", Severity::Warning, Loc,
              "object '" + Name + "' escapes into a spawned thread", Name);
    if (M & ReturnEscape)
      Out.add("escape.return", Severity::Note, Loc,
              "object '" + Name + "' is returned out of its allocating method",
              Name);
  }
}
