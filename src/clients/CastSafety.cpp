//===- clients/CastSafety.cpp - Downcast safety proofs --------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "clients/CastSafety.h"

#include <algorithm>
#include <set>

using namespace ctp;
using namespace ctp::clients;

CastSummary clients::checkCasts(const facts::FactDB &DB,
                                const analysis::Results &R) {
  CastSummary S;

  // heap -> run-time type, and the materialized subtype relation.
  std::vector<facts::Id> TypeOf(DB.numHeaps(), facts::InvalidId);
  for (const auto &HT : DB.HeapTypes)
    if (HT.Heap < TypeOf.size())
      TypeOf[HT.Heap] = HT.Type;
  std::set<std::pair<facts::Id, facts::Id>> Subtype;
  for (const auto &Sub : DB.Subtypes)
    Subtype.emplace(Sub.Sub, Sub.Super);

  const auto Pts = R.ciPts(); // sorted (Var, Heap)

  for (std::uint32_t CI = 0; CI < DB.Casts.size(); ++CI) {
    const auto &C = DB.Casts[CI];
    CastResult Res;
    Res.CastIndex = CI;
    Res.WitnessHeap = facts::InvalidId;
    std::array<std::uint32_t, 2> Key{C.From, 0};
    for (auto It = std::lower_bound(Pts.begin(), Pts.end(), Key);
         It != Pts.end() && (*It)[0] == C.From; ++It) {
      ++Res.NumPointees;
      facts::Id H = (*It)[1];
      facts::Id T = H < TypeOf.size() ? TypeOf[H] : facts::InvalidId;
      if (T == facts::InvalidId || !Subtype.count({T, C.Type})) {
        ++Res.NumIllTyped;
        if (Res.WitnessHeap == facts::InvalidId)
          Res.WitnessHeap = H; // pts is sorted: first hit is the smallest
      }
    }
    if (Res.NumPointees == 0) {
      Res.Verdict = CastVerdict::Unreachable;
      ++S.Unreachable;
    } else if (Res.NumIllTyped > 0) {
      Res.Verdict = CastVerdict::Unsafe;
      ++S.Unsafe;
    } else {
      Res.Verdict = CastVerdict::Safe;
      ++S.Safe;
    }
    S.PerCast.push_back(Res);
  }
  return S;
}

void clients::checkCastSafety(const facts::FactDB &DB,
                              const analysis::Results &R, const SourceMap &SM,
                              Report &Out) {
  CastSummary S = checkCasts(DB, R);
  for (const CastResult &Res : S.PerCast) {
    const auto &C = DB.Casts[Res.CastIndex];
    const std::string &FromName = DB.VarNames[C.From];
    const std::string &ToName = DB.VarNames[C.To];
    const std::string &TypeName = DB.TypeNames[C.Type];
    // Anchor at the method declaring the destination variable.
    facts::Id M =
        C.To < DB.VarParent.size() ? DB.VarParent[C.To] : facts::InvalidId;
    Location Loc = SM.method(M);
    std::string StableKey = FromName + "\x1f" + ToName + "\x1f" + TypeName;
    switch (Res.Verdict) {
    case CastVerdict::Safe:
      break; // proven safe: nothing to report
    case CastVerdict::Unsafe:
      Out.add("cast.unsafe", Severity::Warning, Loc,
              "cast of '" + FromName + "' to " + TypeName + " may fail: " +
                  std::to_string(Res.NumIllTyped) + " of " +
                  std::to_string(Res.NumPointees) +
                  " pointed-to objects are not subtypes (e.g. '" +
                  DB.HeapNames[Res.WitnessHeap] + "')",
              StableKey);
      break;
    case CastVerdict::Unreachable:
      Out.add("cast.unreachable", Severity::Note, Loc,
              "cast of '" + FromName + "' to " + TypeName +
                  " never executes: no objects flow into it",
              StableKey);
      break;
    }
  }
}
