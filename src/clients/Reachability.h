//===- clients/Reachability.h - Reachable-methods client --------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dead-code client: which methods does the on-the-fly call graph reach,
/// and which are provably dead? Uses the reach relation of Figure 3.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CLIENTS_REACHABILITY_H
#define CTP_CLIENTS_REACHABILITY_H

#include "analysis/Results.h"
#include "facts/FactDB.h"

#include <cstdint>
#include <vector>

namespace ctp {
namespace clients {

struct ReachabilitySummary {
  std::size_t TotalMethods = 0;
  std::vector<std::uint32_t> ReachableMethods; ///< Sorted.
  std::vector<std::uint32_t> DeadMethods;      ///< Sorted complement.
};

ReachabilitySummary reachableMethods(const facts::FactDB &DB,
                                     const analysis::Results &R);

} // namespace clients
} // namespace ctp

#endif // CTP_CLIENTS_REACHABILITY_H
