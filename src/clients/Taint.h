//===- clients/Taint.h - Source->sink taint checker -------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Context-sensitive source->sink taint checker — the precision-demanding
/// client of the paper's analysis. Taint lives on allocation sites: the
/// objects a source produces (a Source call's result, the contents of a
/// Source field) are tainted, field-closed over the heap graph, and must
/// not reach a sink (a Sink call's actuals, the values stored into a Sink
/// field). Results of Sanitizer calls are trusted clean.
///
/// The checker consumes only the context-insensitive projections of a run
/// — pts_ci, hpts_ci, call_ci, gpts — so its warnings inherit the
/// analysis's precision monotonically: every pts_ci fact of a finer
/// configuration also holds in a coarser one, hence a finer run's
/// taint.flow warnings are a subset of a coarser run's. (Caveat: the
/// sanitizer veto subtracts from the tainted set, so the subset property
/// additionally relies on sanitizers producing fresh copies, as the
/// workload's cleanser does; an identity sanitizer could launder more
/// under a coarser analysis and suppress a warning the finer run keeps.)
///
/// Every taint.flow finding carries a replayable witness: the shortest
/// path, measured in IR statements, from the statement that introduced
/// the tainted object into the flow to the sink statement, found by BFS
/// over a value-flow graph whose edges each correspond to one IR
/// statement (assign, cast, load/store through a concrete base object,
/// argument passing, return, catch, global store/load, receiver
/// binding). The endpoint steps are annotated with the context
/// transformations under which the endpoints see the tainted object,
/// chosen content-deterministically so SARIF output is byte-stable
/// across back-ends.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CLIENTS_TAINT_H
#define CTP_CLIENTS_TAINT_H

#include "analysis/Results.h"
#include "clients/Diagnostics.h"
#include "facts/FactDB.h"

#include <cstdint>
#include <map>
#include <vector>

namespace ctp {
namespace clients {

/// Heap-level taint state, context-insensitively sound for the run that
/// produced it.
struct TaintInfo {
  /// Per heap site: seeded by sources, closed over the heap graph
  /// (contents of a tainted object are tainted).
  std::vector<std::uint8_t> Tainted;
  /// Per heap site: pointed to by some Sanitizer call's result. Vetoes
  /// Tainted at query time.
  std::vector<std::uint8_t> Sanitized;
  /// Whether the fact base carries any taint annotation at all.
  bool HasAnnotations = false;

  /// Tainted and not laundered — the heaps findings are about.
  bool isHot(facts::Id H) const {
    return H < Tainted.size() && Tainted[H] && !Sanitized[H];
  }
};

/// Computes heap-level taint from the context-insensitive projections
/// of \p R (see file comment for the monotonicity argument).
TaintInfo computeTaint(const facts::FactDB &DB, const analysis::Results &R);

/// Endpoints of a taint.flow finding's witness: the sink-side variable
/// whose points-to set met the tainted heap, the source-side variable the
/// witness path starts from (the source call's result, or the stored
/// value for field sources), and the heap itself. `ctp-lint --explain`
/// uses the sink side to attach the derivation chain of
/// pts(SinkVar, Heap, ·) when the run recorded provenance; tests use both
/// sides to check that the endpoint contexts compose.
struct TaintEndpoint {
  facts::Id SinkVar = facts::InvalidId;
  facts::Id SourceVar = facts::InvalidId;
  facts::Id Heap = facts::InvalidId;
};

/// Emits taint.flow (Warning) for every hot heap reaching a sink, each
/// with a shortest-path witness, and taint.dead-source (Note) for
/// sources none of whose values ever reach a sink. When \p Endpoints is
/// non-null it receives finding-id -> sink endpoint entries for every
/// taint.flow finding emitted.
void checkTaint(const facts::FactDB &DB, const analysis::Results &R,
                const SourceMap &SM, Report &Out,
                std::map<std::string, TaintEndpoint> *Endpoints = nullptr);

} // namespace clients
} // namespace ctp

#endif // CTP_CLIENTS_TAINT_H
