//===- clients/CastSafety.h - Downcast safety proofs ------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cast-safety checking, the classic precision client of points-to
/// analysis (used as a metric in the paper's lineage of evaluations): a
/// downcast "Y = (T) Z" is PROVEN SAFE when every heap object Z may point
/// to (pts_ci) has a run-time type that subtypes T — the cast cannot
/// throw. Casts with at least one ill-typed pointee are flagged
/// "cast.unsafe"; casts whose source points to nothing (dead code, or
/// paths the context-sensitive analysis refuted) are "cast.unreachable".
///
/// pts_ci shrinks as context precision increases, so the unsafe set
/// shrinks monotonically; the unreachable set can only grow (a cast whose
/// pointees were all refuted moves from safe/unsafe to unreachable),
/// which is why it is a note, not a warning.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CLIENTS_CASTSAFETY_H
#define CTP_CLIENTS_CASTSAFETY_H

#include "analysis/Results.h"
#include "clients/Diagnostics.h"
#include "facts/FactDB.h"

#include <cstdint>
#include <vector>

namespace ctp {
namespace clients {

/// Verdict for one cast fact.
enum class CastVerdict : std::uint8_t {
  Safe,        ///< Nonempty pts, every pointee subtypes the target.
  Unsafe,      ///< At least one pointee's type fails the subtype test.
  Unreachable, ///< Empty pts: the cast never executes on any derived path.
};

struct CastResult {
  std::uint32_t CastIndex; ///< Index into FactDB::Casts.
  CastVerdict Verdict;
  std::uint32_t NumPointees = 0;   ///< |pts_ci(From)|.
  std::uint32_t NumIllTyped = 0;   ///< Pointees failing the subtype test.
  std::uint32_t WitnessHeap = 0;   ///< Smallest ill-typed heap (Unsafe only).
};

struct CastSummary {
  std::vector<CastResult> PerCast; ///< One entry per cast, in fact order.
  std::size_t Safe = 0;
  std::size_t Unsafe = 0;
  std::size_t Unreachable = 0;
};

/// Classifies every cast in \p DB against the points-to results.
CastSummary checkCasts(const facts::FactDB &DB, const analysis::Results &R);

/// Runs the cast checker: "cast.unsafe" warnings (with an ill-typed
/// witness heap) and "cast.unreachable" notes, anchored at the casting
/// method.
void checkCastSafety(const facts::FactDB &DB, const analysis::Results &R,
                     const SourceMap &SM, Report &Out);

} // namespace clients
} // namespace ctp

#endif // CTP_CLIENTS_CASTSAFETY_H
