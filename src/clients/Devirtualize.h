//===- clients/Devirtualize.h - Call-site devirtualization ------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A downstream client of the points-to analysis: classifies every virtual
/// invocation by the number of call-graph targets the analysis derived for
/// it. Monomorphic sites are candidates for devirtualization / inlining —
/// the canonical consumer of precise context-sensitive call graphs.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CLIENTS_DEVIRTUALIZE_H
#define CTP_CLIENTS_DEVIRTUALIZE_H

#include "analysis/Results.h"
#include "facts/FactDB.h"

#include <cstdint>
#include <vector>

namespace ctp {
namespace clients {

/// Per-invocation target summary.
struct CallSiteTargets {
  std::uint32_t Invoke;
  std::vector<std::uint32_t> Targets; ///< Sorted callee method ids.
};

struct DevirtSummary {
  std::size_t VirtualSites = 0;    ///< Virtual sites in the program.
  std::size_t ReachedSites = 0;    ///< ... with at least one target.
  std::size_t MonomorphicSites = 0;
  std::size_t PolymorphicSites = 0;
  std::vector<CallSiteTargets> PerSite; ///< Reached virtual sites only.
};

/// Computes the devirtualization summary for \p R over program \p DB.
DevirtSummary devirtualize(const facts::FactDB &DB,
                           const analysis::Results &R);

} // namespace clients
} // namespace ctp

#endif // CTP_CLIENTS_DEVIRTUALIZE_H
