//===- clients/Reachability.cpp - Reachable-methods client ----------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "clients/Reachability.h"

#include <algorithm>

using namespace ctp;
using namespace ctp::clients;

ReachabilitySummary clients::reachableMethods(const facts::FactDB &DB,
                                              const analysis::Results &R) {
  ReachabilitySummary S;
  S.TotalMethods = DB.numMethods();
  S.ReachableMethods = R.ciReach();
  S.DeadMethods.reserve(S.TotalMethods - S.ReachableMethods.size());
  std::size_t Next = 0;
  for (std::uint32_t M = 0; M < DB.numMethods(); ++M) {
    if (Next < S.ReachableMethods.size() && S.ReachableMethods[Next] == M) {
      ++Next;
      continue;
    }
    S.DeadMethods.push_back(M);
  }
  return S;
}
