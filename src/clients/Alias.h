//===- clients/Alias.h - May-alias queries ----------------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// May-alias client: two variables may alias iff their (context-
/// insensitive projections of) points-to sets intersect. The paper's
/// Section 2 motivates heap contexts with exactly such a query ("the
/// analysis would imprecisely conclude that the heap accesses a.f and b.f
/// are aliased").
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CLIENTS_ALIAS_H
#define CTP_CLIENTS_ALIAS_H

#include "analysis/Results.h"

#include <cstdint>
#include <vector>

namespace ctp {
namespace clients {

/// Precomputed alias oracle over one analysis result.
class AliasOracle {
public:
  explicit AliasOracle(const analysis::Results &R);

  /// True iff \p V1 and \p V2 may point to a common heap object.
  bool mayAlias(std::uint32_t V1, std::uint32_t V2) const;

  /// The points-to set (sorted heap ids) of \p V.
  const std::vector<std::uint32_t> &pointsTo(std::uint32_t V) const;

  /// Number of may-aliasing unordered pairs among \p Vars; a standard
  /// precision metric (smaller = more precise, for a sound analysis).
  std::size_t countAliasPairs(const std::vector<std::uint32_t> &Vars) const;

private:
  std::vector<std::vector<std::uint32_t>> Pts;
  static const std::vector<std::uint32_t> Empty;
};

} // namespace clients
} // namespace ctp

#endif // CTP_CLIENTS_ALIAS_H
