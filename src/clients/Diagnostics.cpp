//===- clients/Diagnostics.cpp - Checker findings and reports -------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "clients/Diagnostics.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>
#include <tuple>

using namespace ctp;
using namespace ctp::clients;

const char *clients::severityName(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "warning";
}

bool clients::operator<(const Finding &A, const Finding &B) {
  return std::tie(A.RuleId, A.Loc.Uri, A.Loc.Line, A.Message, A.Id) <
         std::tie(B.RuleId, B.Loc.Uri, B.Loc.Line, B.Message, B.Id);
}

bool clients::operator==(const Finding &A, const Finding &B) {
  return A.RuleId == B.RuleId && A.Loc.Uri == B.Loc.Uri &&
         A.Loc.Line == B.Loc.Line && A.Message == B.Message && A.Id == B.Id;
}

const std::vector<RuleInfo> &clients::allRules() {
  // Kept in rule-id order so the SARIF rule table is deterministic.
  static const std::vector<RuleInfo> Rules = {
      {"cast.unreachable",
       "Downcast never executes: the analysis derives no objects flowing "
       "into it",
       Severity::Note},
      {"cast.unsafe",
       "Downcast may fail: some pointed-to object's type is not a subtype "
       "of the target type",
       Severity::Warning},
      {"escape.global",
       "Object escapes through a static field and is visible to the whole "
       "program",
       Severity::Warning},
      {"escape.return",
       "Object outlives its allocating method by being returned upward",
       Severity::Note},
      {"escape.thread",
       "Object escapes into a spawned thread and is visible across "
       "threads",
       Severity::Warning},
      {"race.candidate",
       "Unsynchronized field accesses on a thread-shared object, at least "
       "one a write",
       Severity::Warning},
      {"taint.dead-source",
       "Taint source produces no value that ever reaches a sink",
       Severity::Note},
      {"taint.flow",
       "Tainted value reaches a sink without passing a sanitizer",
       Severity::Warning},
  };
  return Rules;
}

//===----------------------------------------------------------------------===//
// SourceMap
//===----------------------------------------------------------------------===//

SourceMap::SourceMap(const facts::FactDB &DB) {
  const std::size_t NM = DB.numMethods();
  FileOfMethod.resize(NM);
  MethodLines.assign(NM, 1);
  HeapLines.assign(DB.numHeaps(), 1);
  InvokeLines.assign(DB.numInvokes(), 1);
  HeapMethod = DB.HeapParent;
  InvokeMethod = DB.InvokeParent;

  std::vector<std::vector<facts::Id>> HeapsOf(NM), InvokesOf(NM);
  for (facts::Id H = 0; H < DB.numHeaps(); ++H)
    if (DB.HeapParent[H] < NM)
      HeapsOf[DB.HeapParent[H]].push_back(H);
  for (facts::Id I = 0; I < DB.numInvokes(); ++I)
    if (DB.InvokeParent[I] < NM)
      InvokesOf[DB.InvokeParent[I]].push_back(I);

  // Group methods by declaring class; walk classes in id order and their
  // methods in id order, assigning a fresh line cursor per class file.
  std::vector<std::vector<facts::Id>> MethodsOf(DB.numTypes() + 1);
  for (facts::Id M = 0; M < NM; ++M) {
    facts::Id C = M < DB.MethodClass.size() ? DB.MethodClass[M]
                                            : facts::InvalidId;
    MethodsOf[C < DB.numTypes() ? C : DB.numTypes()].push_back(M);
  }
  for (std::size_t C = 0; C < MethodsOf.size(); ++C) {
    std::string File =
        C < DB.numTypes() ? "ctp/" + DB.TypeNames[C] + ".java"
                          : std::string("ctp/<unknown>.java");
    unsigned Cursor = 1;
    for (facts::Id M : MethodsOf[C]) {
      FileOfMethod[M] = File;
      MethodLines[M] = Cursor++;
      for (facts::Id H : HeapsOf[M])
        HeapLines[H] = Cursor++;
      for (facts::Id I : InvokesOf[M])
        InvokeLines[I] = Cursor++;
    }
  }
}

Location SourceMap::method(facts::Id M) const {
  if (M >= MethodLines.size())
    return {"ctp/<unknown>.java", 1};
  return {FileOfMethod[M], MethodLines[M]};
}

Location SourceMap::heap(facts::Id H) const {
  if (H >= HeapLines.size())
    return {"ctp/<unknown>.java", 1};
  facts::Id M = HeapMethod[H];
  return {M < FileOfMethod.size() ? FileOfMethod[M]
                                  : std::string("ctp/<unknown>.java"),
          HeapLines[H]};
}

Location SourceMap::invoke(facts::Id I) const {
  if (I >= InvokeLines.size())
    return {"ctp/<unknown>.java", 1};
  facts::Id M = InvokeMethod[I];
  return {M < FileOfMethod.size() ? FileOfMethod[M]
                                  : std::string("ctp/<unknown>.java"),
          InvokeLines[I]};
}

//===----------------------------------------------------------------------===//
// Report
//===----------------------------------------------------------------------===//

namespace {

/// FNV-1a 64-bit rendered as 16 lowercase hex chars. Stable across
/// platforms; used for the finding identity only, never for hashing
/// containers.
std::string stableHash(const std::string &S) {
  std::uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  static const char *Hex = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[static_cast<std::size_t>(I)] = Hex[H & 0xF];
    H >>= 4;
  }
  return Out;
}

/// Escapes \p S for embedding in a JSON string literal.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (C < 0x20) {
        static const char *Hex = "0123456789abcdef";
        Out += "\\u00";
        Out += Hex[(C >> 4) & 0xF];
        Out += Hex[C & 0xF];
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

} // namespace

std::string clients::stableFindingId(const std::string &RuleId,
                                     const std::string &StableKey) {
  return stableHash(RuleId + "\x1f" + StableKey);
}

void Report::add(const std::string &RuleId, Severity Sev,
                 const Location &Loc, const std::string &Message,
                 const std::string &StableKey,
                 std::vector<WitnessStep> Witness) {
  assert(!Finalized && "adding findings to a finalized report");
  Finding F;
  F.RuleId = RuleId;
  F.Sev = Sev;
  F.Loc = Loc;
  F.Message = Message;
  F.Id = stableHash(RuleId + "\x1f" + StableKey);
  if (Witness.empty())
    Witness.push_back({Loc, Message});
  F.Witness = std::move(Witness);
  Items.push_back(std::move(F));
}

void Report::finalize() {
  // Stable so that two findings equal under operator< (which ignores the
  // witness) keep their deterministic insertion order; unique() then
  // keeps the first witness.
  std::stable_sort(Items.begin(), Items.end());
  Items.erase(std::unique(Items.begin(), Items.end()), Items.end());
  Finalized = true;
}

const Finding *Report::findById(const std::string &Id) const {
  assert(Finalized && "lookup before finalize");
  for (const Finding &F : Items)
    if (F.Id == Id)
      return &F;
  return nullptr;
}

std::string Report::renderExplain(const std::string &Id) const {
  const Finding *F = findById(Id);
  if (!F)
    return "";
  std::ostringstream OS;
  OS << F->Loc.Uri << ":" << F->Loc.Line << ": " << severityName(F->Sev)
     << ": " << F->Message << " [" << F->RuleId << "] (" << F->Id << ")\n"
     << "  witness (" << F->Witness.size() << " step"
     << (F->Witness.size() == 1 ? "" : "s") << "):\n";
  for (std::size_t I = 0; I < F->Witness.size(); ++I)
    OS << "    " << (I + 1) << ". " << F->Witness[I].Loc.Uri << ":"
       << F->Witness[I].Loc.Line << ": " << F->Witness[I].Note << "\n";
  return OS.str();
}

std::size_t Report::countAtLeast(Severity S) const {
  std::size_t N = 0;
  for (const Finding &F : Items)
    if (F.Sev >= S)
      ++N;
  return N;
}

std::string Report::renderHuman() const {
  assert(Finalized && "render before finalize");
  std::ostringstream OS;
  std::map<std::string, std::size_t> PerRule;
  for (const Finding &F : Items) {
    OS << F.Loc.Uri << ":" << F.Loc.Line << ": " << severityName(F.Sev)
       << ": " << F.Message << " [" << F.RuleId << "] (" << F.Id << ")\n";
    ++PerRule[F.RuleId];
  }
  OS << "-- " << Items.size() << " finding(s)";
  if (!PerRule.empty()) {
    OS << ":";
    for (const auto &[Rule, N] : PerRule)
      OS << " " << Rule << "=" << N;
  }
  OS << "\n";
  return OS.str();
}

std::string Report::renderSarif(const std::string &ToolName,
                                const std::string &ToolVersion) const {
  assert(Finalized && "render before finalize");
  const std::vector<RuleInfo> &Rules = allRules();
  std::map<std::string, std::size_t> RuleIndex;
  for (std::size_t I = 0; I < Rules.size(); ++I)
    RuleIndex.emplace(Rules[I].Id, I);

  std::ostringstream OS;
  OS << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"" << jsonEscape(ToolName) << "\",\n"
     << "          \"version\": \"" << jsonEscape(ToolVersion) << "\",\n"
     << "          \"informationUri\": "
        "\"https://example.invalid/ctp\",\n"
     << "          \"rules\": [\n";
  for (std::size_t I = 0; I < Rules.size(); ++I) {
    OS << "            {\n"
       << "              \"id\": \"" << Rules[I].Id << "\",\n"
       << "              \"shortDescription\": { \"text\": \""
       << jsonEscape(Rules[I].Description) << "\" },\n"
       << "              \"defaultConfiguration\": { \"level\": \""
       << severityName(Rules[I].DefaultSev) << "\" }\n"
       << "            }" << (I + 1 < Rules.size() ? "," : "") << "\n";
  }
  OS << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"columnKind\": \"utf16CodeUnits\",\n"
     << "      \"results\": [\n";
  for (std::size_t I = 0; I < Items.size(); ++I) {
    const Finding &F = Items[I];
    auto RI = RuleIndex.find(F.RuleId);
    OS << "        {\n"
       << "          \"ruleId\": \"" << jsonEscape(F.RuleId) << "\",\n";
    if (RI != RuleIndex.end())
      OS << "          \"ruleIndex\": " << RI->second << ",\n";
    OS << "          \"level\": \"" << severityName(F.Sev) << "\",\n"
       << "          \"message\": { \"text\": \"" << jsonEscape(F.Message)
       << "\" },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": { \"uri\": \""
       << jsonEscape(F.Loc.Uri) << "\" },\n"
       << "                \"region\": { \"startLine\": " << F.Loc.Line
       << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ],\n";
    // One codeFlow with one threadFlow: the finding's witness path in
    // source-to-sink order, executionOrder making the ordering explicit.
    OS << "          \"codeFlows\": [\n"
       << "            { \"threadFlows\": [\n"
       << "              { \"locations\": [\n";
    for (std::size_t S = 0; S < F.Witness.size(); ++S) {
      const WitnessStep &W = F.Witness[S];
      OS << "                {\n"
         << "                  \"executionOrder\": " << S << ",\n"
         << "                  \"location\": {\n"
         << "                    \"physicalLocation\": {\n"
         << "                      \"artifactLocation\": { \"uri\": \""
         << jsonEscape(W.Loc.Uri) << "\" },\n"
         << "                      \"region\": { \"startLine\": "
         << W.Loc.Line << " }\n"
         << "                    },\n"
         << "                    \"message\": { \"text\": \""
         << jsonEscape(W.Note) << "\" }\n"
         << "                  }\n"
         << "                }" << (S + 1 < F.Witness.size() ? "," : "")
         << "\n";
    }
    OS << "              ] }\n"
       << "            ] }\n"
       << "          ],\n"
       << "          \"partialFingerprints\": { \"ctpFindingId/v1\": \""
       << F.Id << "\" }\n"
       << "        }" << (I + 1 < Items.size() ? "," : "") << "\n";
  }
  OS << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return OS.str();
}
