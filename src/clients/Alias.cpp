//===- clients/Alias.cpp - May-alias queries ------------------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "clients/Alias.h"

#include <algorithm>

using namespace ctp;
using namespace ctp::clients;

const std::vector<std::uint32_t> AliasOracle::Empty = {};

AliasOracle::AliasOracle(const analysis::Results &R) {
  std::uint32_t MaxVar = 0;
  for (const auto &F : R.Pts)
    MaxVar = std::max(MaxVar, F.Var);
  Pts.resize(R.Pts.empty() ? 0 : MaxVar + 1);
  for (const auto &F : R.Pts)
    Pts[F.Var].push_back(F.Heap);
  for (auto &Set : Pts) {
    std::sort(Set.begin(), Set.end());
    Set.erase(std::unique(Set.begin(), Set.end()), Set.end());
  }
}

const std::vector<std::uint32_t> &
AliasOracle::pointsTo(std::uint32_t V) const {
  if (V >= Pts.size())
    return Empty;
  return Pts[V];
}

bool AliasOracle::mayAlias(std::uint32_t V1, std::uint32_t V2) const {
  const auto &A = pointsTo(V1);
  const auto &B = pointsTo(V2);
  // Sorted-set intersection test.
  std::size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] == B[J])
      return true;
    if (A[I] < B[J])
      ++I;
    else
      ++J;
  }
  return false;
}

std::size_t
AliasOracle::countAliasPairs(const std::vector<std::uint32_t> &Vars) const {
  std::size_t Count = 0;
  for (std::size_t I = 0; I < Vars.size(); ++I)
    for (std::size_t J = I + 1; J < Vars.size(); ++J)
      if (mayAlias(Vars[I], Vars[J]))
        ++Count;
  return Count;
}
