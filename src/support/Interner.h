//===- support/Interner.h - Value interning ---------------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic value interner mapping values of an arbitrary hashable type to
/// dense 32-bit ids and back. The analysis interns both abstraction
/// domains (context-string pairs and transformer strings) so that derived
/// relations store flat integer tuples, which is what makes the indexed
/// joins of Section 7 of the paper cheap.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_INTERNER_H
#define CTP_SUPPORT_INTERNER_H

#include "support/Memory.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <unordered_map>

namespace ctp {

/// Interns values of type T into dense uint32_t ids.
///
/// Ids are assigned in first-seen order starting from 0. Lookup by id is
/// O(1); values are stored in a deque so references remain stable across
/// insertions.
template <typename T, typename Hash = std::hash<T>> class Interner {
public:
  /// Returns the id for \p Value, inserting it if not yet present.
  std::uint32_t intern(const T &Value) {
    auto It = Ids.find(Value);
    if (It != Ids.end())
      return It->second;
    std::uint32_t Id = static_cast<std::uint32_t>(Values.size());
    Values.push_back(Value);
    Ids.emplace(Values.back(), Id);
    // Interners are among the solver's big owners; charge the memory
    // governor an approximate delta (value copy + map node + deque
    // slot). Only bridges the window between two RSS reads, so the
    // estimate being rough is fine. Inert unless a budget is armed.
    memgov::noteBytes(static_cast<std::int64_t>(
        2 * sizeof(T) + sizeof(void *) * 4 + sizeof(std::uint32_t)));
    return Id;
  }

  /// Returns the id for \p Value if present, or UINT32_MAX otherwise.
  std::uint32_t lookup(const T &Value) const {
    auto It = Ids.find(Value);
    return It == Ids.end() ? UINT32_MAX : It->second;
  }

  bool contains(const T &Value) const { return Ids.count(Value) != 0; }

  const T &operator[](std::uint32_t Id) const {
    assert(Id < Values.size() && "interner id out of range");
    return Values[Id];
  }

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(Values.size());
  }

private:
  std::deque<T> Values;
  std::unordered_map<T, std::uint32_t, Hash> Ids;
};

} // namespace ctp

#endif // CTP_SUPPORT_INTERNER_H
