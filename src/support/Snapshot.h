//===- support/Snapshot.h - Versioned sectioned snapshot files --*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The container format for crash-safe solver checkpoints: a magic +
/// version header, tagged length-prefixed sections each guarded by an
/// FNV-1a checksum, and a fixed trailer carrying the TerminationReason
/// and progress counters of the run that wrote the snapshot. What goes
/// *into* the sections is the business of analysis/Checkpoint.h; this
/// layer only guarantees that a reader either gets back exactly the
/// bytes that were written or a precise corruption diagnostic.
///
/// File layout (all integers little-endian):
///
///   magic[8]  "CTPSNAP\0"
///   u32       format version
///   u32       section count
///   per section:
///     u32     tag
///     u64     payload length
///     u64     FNV-1a of the payload bytes
///     u8[]    payload
///   trailer:
///     u32     TerminationReason of the writing run
///     u64     iterations   (worklist pops / semi-naive rounds)
///     u64     derivations  (rule firings)
///     u64     pending work (worklist / delta tuples not yet processed)
///   u64       FNV-1a of every preceding byte of the file
///
/// Writes are atomic: the file is written to "<path>.tmp" and renamed
/// over the destination, so a crash mid-write leaves either the old
/// snapshot or none — never a half-written one (the fault-injection
/// hooks in support/FaultInjection.h simulate exactly the crashes this
/// guards against).
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_SNAPSHOT_H
#define CTP_SUPPORT_SNAPSHOT_H

#include <cstdint>
#include <string>
#include <vector>

namespace ctp {
namespace snapshot {

constexpr std::uint32_t FormatVersion = 1;

/// FNV-1a over a byte range; the checksum used throughout the format.
std::uint64_t fnv1a(const std::uint8_t *Data, std::size_t N);

/// Little-endian byte-stream writer for section payloads.
class ByteWriter {
public:
  void u32(std::uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Bytes.push_back(static_cast<std::uint8_t>(V >> (8 * I)));
  }
  void u64(std::uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Bytes.push_back(static_cast<std::uint8_t>(V >> (8 * I)));
  }
  void u32Vec(const std::vector<std::uint32_t> &V) {
    u64(V.size());
    for (std::uint32_t X : V)
      u32(X);
  }
  const std::vector<std::uint8_t> &bytes() const { return Bytes; }
  std::vector<std::uint8_t> take() { return std::move(Bytes); }

private:
  std::vector<std::uint8_t> Bytes;
};

/// Bounds-checked little-endian reader. After any failed read every
/// subsequent read also fails and returns zero values; check ok() once
/// at the end instead of after every field.
class ByteReader {
public:
  ByteReader(const std::uint8_t *Data, std::size_t N) : Data(Data), N(N) {}
  explicit ByteReader(const std::vector<std::uint8_t> &B)
      : Data(B.data()), N(B.size()) {}

  std::uint32_t u32() {
    if (!need(4))
      return 0;
    std::uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<std::uint32_t>(Data[Pos + I]) << (8 * I);
    Pos += 4;
    return V;
  }
  std::uint64_t u64() {
    if (!need(8))
      return 0;
    std::uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<std::uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += 8;
    return V;
  }
  bool u32Vec(std::vector<std::uint32_t> &Out) {
    std::uint64_t Count = u64();
    // Each element costs 4 bytes; reject counts the payload cannot hold
    // before attempting a huge allocation on corrupted input.
    if (!Ok || Count > (N - Pos) / 4)
      return fail();
    Out.resize(static_cast<std::size_t>(Count));
    for (std::uint64_t I = 0; I < Count; ++I)
      Out[static_cast<std::size_t>(I)] = u32();
    return Ok;
  }
  bool rawBytes(std::vector<std::uint8_t> &Out, std::size_t K) {
    if (!need(K))
      return false;
    Out.assign(Data + Pos, Data + Pos + K);
    Pos += K;
    return true;
  }
  bool atEnd() const { return Ok && Pos == N; }
  bool ok() const { return Ok; }
  std::size_t remaining() const { return N - Pos; }

private:
  bool need(std::size_t K) {
    if (!Ok || N - Pos < K)
      return fail();
    return true;
  }
  bool fail() {
    Ok = false;
    return false;
  }
  const std::uint8_t *Data;
  std::size_t N;
  std::size_t Pos = 0;
  bool Ok = true;
};

/// One tagged section.
struct Section {
  std::uint32_t Tag = 0;
  std::vector<std::uint8_t> Bytes;
};

/// The trailer every snapshot carries: why the writing run stopped and
/// how far it had got. Readable without decoding any section.
struct Trailer {
  std::uint32_t Term = 0; ///< TerminationReason of the writing run.
  std::uint64_t Iterations = 0;
  std::uint64_t Derivations = 0;
  std::uint64_t PendingWork = 0;
};

/// An in-memory snapshot file: ordered sections plus the trailer.
struct File {
  std::vector<Section> Sections;
  Trailer T;

  Section &add(std::uint32_t Tag) {
    Sections.push_back({Tag, {}});
    return Sections.back();
  }
  /// First section with \p Tag, or null.
  const Section *find(std::uint32_t Tag) const;
};

/// Serializes \p F into the on-disk byte layout (exposed separately from
/// writeFile so tests can corrupt specific offsets).
std::vector<std::uint8_t> encode(const File &F);

/// Parses and fully validates \p Data (magic, version, section bounds,
/// per-section and whole-file checksums). \returns an empty string on
/// success, else a diagnostic naming what is corrupt.
std::string decode(const std::uint8_t *Data, std::size_t N, File &Out);

/// Atomically writes \p F to \p Path (temp file + rename). \returns an
/// empty string on success. Consults the snapshot fault-injection hooks:
/// an armed fault makes the write misbehave in the armed way while still
/// reporting success, simulating a crash the *next* reader must survive.
std::string writeFile(const File &F, const std::string &Path);

/// Reads and validates the snapshot at \p Path. \returns an empty string
/// on success, else a diagnostic ("no snapshot", truncation, checksum
/// mismatch, ...).
std::string readFile(const std::string &Path, File &Out);

} // namespace snapshot
} // namespace ctp

#endif // CTP_SUPPORT_SNAPSHOT_H
