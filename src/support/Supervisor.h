//===- support/Supervisor.h - Fault-isolated batch supervisor ---*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fleet-level fault tolerance over the preset × configuration matrix of
/// the paper's Figure 6. Each cell runs as its own ctp-analyze process
/// (support/Subprocess.h) with kernel rlimits, a private checkpoint
/// directory, and a heartbeat file; the supervisor watches liveness,
/// classifies every death (the triage taxonomy below), and retries under
/// a bounded exponential-backoff policy that composes with the existing
/// per-process machinery:
///
///   attempt 1   fresh run, checkpointing enabled
///   attempt 2   --resume: continue the same rung from its snapshot
///   attempt 3+  --fallback without a checkpoint dir: trade the
///               checkpoint for a guaranteed (possibly degraded) answer
///               by descending the PR 1 configuration ladder in-process
///
/// Chaos kills (the --chaos injector) are externally induced, so they
/// re-run at the resume stage without consuming a retry; the chaos
/// budget itself is bounded, keeping every batch finite.
///
/// Per-job state machine:
///
///   PENDING → RUNNING → (exit 0)            → COMPLETED
///                     → (exit 3, retries left)  → RUNNING (escalated)
///                     → (exit 3, retries spent)  → COMPLETED-DEGRADED
///                     → (crash/stall/timeout/rlimit/exit≠0, retries
///                        left)                   → backoff → RUNNING
///                     → (ditto, retries spent)   → FAILED(triage)
///                     → (chaos kill, kills left) → RUNNING (resume)
///
/// Every attempt and every terminal outcome is appended — durably, one
/// JSON object per line — to <workdir>/journal.jsonl. The journal is the
/// source of truth: a supervisor that is itself SIGKILLed mid-run is
/// re-invoked with the same arguments, replays the journal, skips every
/// job with a terminal record, and renders those jobs' report rows from
/// the recorded bytes — making the final report of the finished subset
/// byte-identical across supervisor lives.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_SUPERVISOR_H
#define CTP_SUPPORT_SUPERVISOR_H

#include "support/Subprocess.h"

#include <csignal>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ctp {
namespace batch {

/// One cell of the evaluation matrix.
struct JobSpec {
  std::string Preset;            ///< Built-in workload name.
  std::string Config;            ///< Context-sensitivity configuration.
  std::string Backend = "native"; ///< "native" or "datalog".

  /// Stable identifier, "preset/config/backend" — the journal key.
  std::string id() const { return Preset + "/" + Config + "/" + Backend; }
};

/// Why one attempt ended — the triage taxonomy.
enum class AttemptClass : std::uint8_t {
  ExitOk,        ///< exit 0: converged at the requested configuration.
  ExitDegraded,  ///< exit 3: budget-truncated / fallback rung answered.
  ExitError,     ///< any other exit code (1 runtime, 2 usage, 127 exec).
  CrashSignal,   ///< fatal signal not attributable to a cap we set.
  WatchdogStall, ///< heartbeat stopped advancing; supervisor SIGKILL.
  Timeout,       ///< per-job wall-clock cap; supervisor SIGKILL.
  RlimitCpu,     ///< SIGXCPU: the RLIMIT_CPU cap fired.
  RlimitMem,     ///< SIGABRT from allocation failure under RLIMIT_AS
                 ///< (bad_alloc in the termination sidecar or, as a
                 ///< fallback, on the stderr tail).
  ChaosKill,     ///< the --chaos injector SIGKILLed it.
  SpawnFailure,  ///< fork/pipe failed; the child never ran.
};

const char *attemptClassName(AttemptClass C);

/// What the supervisor did to a child, for classification.
struct KillAttribution {
  bool Watchdog = false;
  bool Timeout = false;
  bool Chaos = false;
};

/// The structured termination-reason sidecar a child writes next to its
/// heartbeat file (heartbeat path + this suffix): "reason=<tag> ..." on
/// one line. Triage prefers it to grepping the stderr tail, which an
/// abort handler's backtrace can truncate past recognition.
inline const char *termSidecarSuffix() { return ".term"; }

/// Maps a reaped child (plus what the supervisor knows it did to it)
/// onto the triage taxonomy. \p TermSidecar is the slurped termination
/// sidecar ("" when the child never wrote one); the stderr tail is the
/// fallback signal. Exposed for unit tests.
AttemptClass classifyAttempt(const proc::ExitStatus &St,
                             const KillAttribution &Kill,
                             const std::string &StderrTail,
                             const std::string &TermSidecar = "");

/// One run of one child, as recorded in the journal.
struct AttemptRecord {
  int Attempt = 0; ///< 0-based, counting every spawn (chaos included).
  AttemptClass Class = AttemptClass::ExitError;
  int ExitCode = -1; ///< Valid when the child exited.
  int Signal = 0;    ///< Valid when the child was signalled.
  bool Resumed = false;  ///< Ran with --resume.
  bool Fallback = false; ///< Ran with --fallback (ladder descent).
  std::uint64_t ElapsedMs = 0;
  std::string StderrTail;
};

enum class JobStatus : std::uint8_t {
  Completed,          ///< Converged at the requested configuration.
  CompletedDegraded,  ///< Answered, but truncated or from a lower rung.
  Failed,             ///< Retries exhausted without an answer.
};

const char *jobStatusName(JobStatus S);

/// Terminal state of one job.
struct JobOutcome {
  JobSpec Spec;
  JobStatus Status = JobStatus::Failed;
  std::vector<AttemptRecord> Attempts;
  /// Triage tag of the decisive attempt; report renders failed jobs as
  /// "failed(<Triage>)".
  std::string Triage;
  std::uint64_t TotalMs = 0;
  /// True when this outcome was replayed from the journal rather than
  /// run by this invocation.
  bool FromJournal = false;
};

/// Supervisor policy knobs. Times are steady-clock milliseconds.
struct SupervisorOptions {
  /// The ctp-analyze binary to drive.
  std::string AnalyzePath;
  /// Work tree: journal.jsonl, report.json, jobs/<id>/ checkpoint +
  /// heartbeat + log files. Created if missing.
  std::string WorkDir;

  // Per-child budget, forwarded as ctp-analyze flags (0 = omit).
  std::uint64_t DeadlineMs = 0;
  std::uint64_t MaxDerivations = 0;
  std::uint64_t MaxTuples = 0;
  /// Periodic checkpoint cadence (--checkpoint-every); 0 = trip-time
  /// snapshots only. Chaos runs want a non-zero cadence so a SIGKILLed
  /// child leaves resumable progress.
  std::uint64_t CheckpointEvery = 0;

  // Kernel caps on the child (0 = unlimited).
  std::uint64_t MemLimitBytes = 0;
  std::uint64_t CpuLimitSeconds = 0;

  /// SIGKILL a child whose heartbeat has not advanced in this long.
  std::uint64_t StallTimeoutMs = 10000;
  /// SIGKILL a child older than this (0 = no wall cap).
  std::uint64_t JobTimeoutMs = 0;
  /// Child heartbeat rewrite interval (CTP_HEARTBEAT_INTERVAL_MS).
  std::uint64_t HeartbeatIntervalMs = 50;

  /// Retries after the initial attempt (chaos kills not counted).
  int MaxRetries = 3;
  /// Base backoff before retry N is Backoff * 2^(N-1), capped.
  std::uint64_t BackoffMs = 200;
  std::uint64_t BackoffCapMs = 5000;
  /// Supervisor poll cadence while a child runs.
  std::uint64_t PollIntervalMs = 5;

  /// Deliberate fault injection: SIGKILL children at seeded intervals.
  bool Chaos = false;
  std::uint64_t Seed = 1;
  /// Total chaos kills across the whole batch (keeps runs finite).
  int ChaosKills = 4;
  std::uint64_t ChaosMinMs = 20;
  std::uint64_t ChaosMaxMs = 400;

  /// Extra argv appended to every child command line (test hook).
  std::vector<std::string> ExtraArgs;
};

/// The consolidated end-of-batch view.
struct BatchReport {
  std::vector<JobOutcome> Jobs; ///< Matrix order.
  std::size_t NumCompleted = 0, NumDegraded = 0, NumFailed = 0;

  /// Human-readable consolidated matrix table. Rows for jobs finished in
  /// an earlier supervisor life are byte-identical across re-invocations
  /// (all row data comes from the journal).
  std::string renderTable() const;
  /// Machine-readable JSON document with the same content.
  std::string renderJson() const;
};

/// presets × configs × backends, presets-major — the paper's Figure 6
/// matrix order.
std::vector<JobSpec> expandMatrix(const std::vector<std::string> &Presets,
                                  const std::vector<std::string> &Configs,
                                  const std::vector<std::string> &Backends);

/// Reads a plan file: one job per line, "preset<TAB>config[<TAB>backend]"
/// (backend defaults to native; blank lines and lines starting with '#'
/// skipped). \returns an empty string on success, else a "file:line"
/// diagnostic.
std::string loadPlan(const std::string &Path, std::vector<JobSpec> &Out);

/// The run journal inside a work tree.
std::string journalPath(const std::string &WorkDir);

/// Replays \p Path into finished outcomes keyed by job id. Unparsable
/// lines (the torn tail of a killed supervisor's last append) are
/// counted, not fatal. \returns false only when the file exists but
/// cannot be read.
bool replayJournal(const std::string &Path,
                   std::map<std::string, JobOutcome> &Finished,
                   std::size_t *TornLines = nullptr);

class Supervisor {
public:
  explicit Supervisor(SupervisorOptions Opts);

  /// Runs every job in \p Jobs that has no terminal journal record yet,
  /// appending to the journal as it goes, and returns the consolidated
  /// report over all of them (replayed + fresh, in \p Jobs order).
  /// \p Err receives a diagnostic when the batch could not start at all.
  BatchReport run(const std::vector<JobSpec> &Jobs, std::string &Err);

  /// Narration callback (one line per event); default writes nothing.
  void setLogger(void (*Log)(const std::string &, void *), void *Ctx) {
    LogFn = Log;
    LogCtx = Ctx;
  }

private:
  JobOutcome runJob(const JobSpec &Job, int &ChaosKillsLeft);
  void log(const std::string &Line) const {
    if (LogFn)
      LogFn(Line, LogCtx);
  }

  SupervisorOptions Opts;
  void (*LogFn)(const std::string &, void *) = nullptr;
  void *LogCtx = nullptr;
};

} // namespace batch

//===----------------------------------------------------------------------===//
// Service supervision.
//
// The batch supervisor above runs jobs that are *supposed to end*; a
// resident daemon (tools/ctp-serve) is supposed to never end, which
// inverts the policy: no wall-clock timeout, no retry budget by default,
// crash-restart with exponential backoff (reset once the child proves
// stable), and the same heartbeat-file watchdog so a wedged daemon is
// killed and restarted rather than trusted forever. Restarting is the
// whole recovery story because the daemon itself warm-starts from its
// converged checkpoint: a SIGKILL loses at most the in-flight requests.
//===----------------------------------------------------------------------===//

namespace service {

/// Policy for babysitting one resident daemon.
struct ServeSupervisorOptions {
  /// The daemon command line (Argv[0] = binary path).
  std::vector<std::string> Argv;
  /// Work tree: heartbeat file, pid file, child stdout/stderr logs.
  std::string WorkDir;

  /// SIGKILL a child whose heartbeat has not advanced in this long
  /// (0 disables the watchdog). There is deliberately no JobTimeoutMs
  /// equivalent: a service has no wall deadline.
  std::uint64_t StallTimeoutMs = 10000;
  std::uint64_t HeartbeatIntervalMs = 50;

  /// Crash-restart backoff: restart N after F consecutive fast failures
  /// waits min(BackoffMs * 2^(F-1), BackoffCapMs). A child that stayed
  /// up at least StableResetMs resets the failure streak, so a daemon
  /// that crashes once a day restarts promptly forever.
  std::uint64_t BackoffMs = 100;
  std::uint64_t BackoffCapMs = 5000;
  std::uint64_t StableResetMs = 2000;

  /// Restarts before giving up; negative = never give up (production
  /// default), 0 = run the child exactly once. Tests bound it.
  int MaxRestarts = -1;
  std::uint64_t PollIntervalMs = 5;

  /// Polled between child polls: a SIGTERM handler sets it; the
  /// supervisor forwards SIGTERM to the child, waits for it to exit,
  /// and returns without restarting.
  const volatile std::sig_atomic_t *StopFlag = nullptr;
};

/// <workdir>/serve.pid — rewritten with the child's pid at every spawn,
/// so chaos harnesses (crashloop.sh --serve) can kill the current life.
std::string pidFilePath(const std::string &WorkDir);

/// <workdir>/heartbeat — the child's liveness file (CTP_HEARTBEAT_FILE).
std::string heartbeatFilePath(const std::string &WorkDir);

/// Pure backoff policy, unit-tested: the delay before the next restart
/// after \p ConsecutiveFailures fast failures (>= 1).
std::uint64_t restartBackoffMs(const ServeSupervisorOptions &O,
                               int ConsecutiveFailures);

/// Babysits the daemon: spawn, watch heartbeat, restart on any unclean
/// death. \returns the child's exit code after a clean stop (exit 0, or
/// any exit while StopFlag is raised), or 1 once MaxRestarts is spent.
/// \p Log (optional) gets one line per lifecycle event.
int superviseService(const ServeSupervisorOptions &O,
                     void (*Log)(const std::string &, void *) = nullptr,
                     void *LogCtx = nullptr);

} // namespace service
} // namespace ctp

#endif // CTP_SUPPORT_SUPERVISOR_H
