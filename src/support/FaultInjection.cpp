//===- support/FaultInjection.cpp - Deterministic fault hooks -------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/Memory.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace ctp;

namespace {

std::atomic<bool> Active{false};
std::atomic<std::uint64_t> PollCount{0};
std::atomic<std::uint64_t> TripAfter{0};
// Stored as int to keep the atomic trivially lock-free; -1 = disarmed.
std::atomic<int> TripReason{-1};

// Snapshot-writer fault: -1 = disarmed, else a SnapshotFault value.
std::atomic<int> SnapFault{-1};
std::atomic<bool> SnapSticky{false};

// Memory fault: -1 = disarmed, else a MemFault value, firing on memgov
// polls [MemAfter, MemAfter + MemRepeat).
std::atomic<int> MemKind{-1};
std::atomic<std::uint64_t> MemPollCount{0};
std::atomic<std::uint64_t> MemAfter{0};
std::atomic<std::uint64_t> MemRepeat{0};

} // namespace

bool fault::active() { return Active.load(std::memory_order_relaxed); }

void fault::reset() {
  Active.store(false, std::memory_order_relaxed);
  PollCount.store(0, std::memory_order_relaxed);
  TripAfter.store(0, std::memory_order_relaxed);
  TripReason.store(-1, std::memory_order_relaxed);
  SnapFault.store(-1, std::memory_order_relaxed);
  SnapSticky.store(false, std::memory_order_relaxed);
  MemKind.store(-1, std::memory_order_relaxed);
  MemPollCount.store(0, std::memory_order_relaxed);
  MemAfter.store(0, std::memory_order_relaxed);
  MemRepeat.store(0, std::memory_order_relaxed);
  memgov::noteFaultArmed(false);
}

void fault::armBudgetTrip(TerminationReason R, std::uint64_t AfterPolls) {
  PollCount.store(0, std::memory_order_relaxed);
  TripAfter.store(AfterPolls, std::memory_order_relaxed);
  TripReason.store(static_cast<int>(R), std::memory_order_relaxed);
  Active.store(true, std::memory_order_relaxed);
}

void fault::armCancellation(std::uint64_t AfterPolls) {
  armBudgetTrip(TerminationReason::Cancelled, AfterPolls);
}

std::optional<TerminationReason> fault::onBudgetPoll() {
  int Reason = TripReason.load(std::memory_order_relaxed);
  if (Reason < 0)
    return std::nullopt;
  std::uint64_t N = PollCount.fetch_add(1, std::memory_order_relaxed) + 1;
  if (N < TripAfter.load(std::memory_order_relaxed))
    return std::nullopt;
  // One-shot: disarm before reporting so a ladder retry runs clean.
  TripReason.store(-1, std::memory_order_relaxed);
  Active.store(false, std::memory_order_relaxed);
  return static_cast<TerminationReason>(Reason);
}

void fault::armMemFault(MemFault F, std::uint64_t AfterPolls,
                        std::uint64_t Repeat) {
  MemPollCount.store(0, std::memory_order_relaxed);
  MemAfter.store(AfterPolls, std::memory_order_relaxed);
  MemRepeat.store(Repeat == 0 ? 1 : Repeat, std::memory_order_relaxed);
  MemKind.store(static_cast<int>(F), std::memory_order_relaxed);
  memgov::noteFaultArmed(true);
}

bool fault::armMemFaultByName(const std::string &Name) {
  std::string Kind = Name;
  std::uint64_t After = 0, Repeat = 1;
  auto ParseU64 = [](const std::string &S, std::uint64_t &Out) {
    if (S.empty())
      return false;
    char *End = nullptr;
    unsigned long long V = std::strtoull(S.c_str(), &End, 10);
    if (End != S.c_str() + S.size())
      return false;
    Out = V;
    return true;
  };
  if (std::string::size_type At = Kind.find('@');
      At != std::string::npos) {
    std::string Counts = Kind.substr(At + 1);
    Kind.resize(At);
    if (std::string::size_type X = Counts.find('x');
        X != std::string::npos) {
      if (!ParseU64(Counts.substr(X + 1), Repeat) || Repeat == 0)
        return false;
      Counts.resize(X);
    }
    if (!ParseU64(Counts, After))
      return false;
  }
  MemFault F;
  if (Kind == "soft")
    F = MemFault::SoftPressure;
  else if (Kind == "hard")
    F = MemFault::HardPressure;
  else if (Kind == "badalloc")
    F = MemFault::BadAlloc;
  else
    return false;
  armMemFault(F, After, Repeat);
  return true;
}

bool fault::memFaultActive() {
  return MemKind.load(std::memory_order_relaxed) >= 0;
}

std::optional<fault::MemFault> fault::onMemPoll() {
  int Kind = MemKind.load(std::memory_order_relaxed);
  if (Kind < 0)
    return std::nullopt;
  std::uint64_t N = MemPollCount.fetch_add(1, std::memory_order_relaxed);
  if (N < MemAfter.load(std::memory_order_relaxed))
    return std::nullopt;
  if (N >= MemAfter.load(std::memory_order_relaxed) +
               MemRepeat.load(std::memory_order_relaxed)) {
    // Window exhausted: disarm so later polls are clean.
    MemKind.store(-1, std::memory_order_relaxed);
    memgov::noteFaultArmed(false);
    return std::nullopt;
  }
  return static_cast<MemFault>(Kind);
}

void fault::armSnapshotFault(SnapshotFault F, bool Sticky) {
  SnapSticky.store(Sticky, std::memory_order_relaxed);
  SnapFault.store(static_cast<int>(F), std::memory_order_relaxed);
}

bool fault::armSnapshotFaultByName(const std::string &Name, bool Sticky) {
  if (Name == "torn")
    armSnapshotFault(SnapshotFault::TornWrite, Sticky);
  else if (Name == "short")
    armSnapshotFault(SnapshotFault::ShortWrite, Sticky);
  else if (Name == "bitflip")
    armSnapshotFault(SnapshotFault::BitFlip, Sticky);
  else if (Name == "crash-before-rename")
    armSnapshotFault(SnapshotFault::CrashBeforeRename, Sticky);
  else
    return false;
  return true;
}

std::optional<fault::SnapshotFault> fault::takeSnapshotFault() {
  int F = SnapFault.load(std::memory_order_relaxed);
  if (F < 0)
    return std::nullopt;
  if (!SnapSticky.load(std::memory_order_relaxed))
    SnapFault.store(-1, std::memory_order_relaxed);
  return static_cast<SnapshotFault>(F);
}

void fault::txnCrashPoint(const char *Stage) {
  const char *Want = std::getenv("CTP_TXN_CRASH");
  if (!Want || std::strcmp(Want, Stage) != 0)
    return;
  // The marker lets the crash-loop driver confirm the kill landed at the
  // requested stage rather than the process dying for another reason.
  std::fprintf(stderr, "ctp-serve: CTP_TXN_CRASH firing at stage '%s'\n",
               Stage);
  std::fflush(stderr);
  std::raise(SIGKILL);
}

bool fault::txnSabotage(const char *What) {
  const char *Want = std::getenv("CTP_TXN_SABOTAGE");
  return Want && std::strcmp(Want, What) == 0;
}

bool fault::injectFactsLine(const std::string &Dir, const std::string &File,
                            const std::string &Line) {
  std::ofstream Out(Dir + "/" + File, std::ios::app);
  if (!Out.is_open())
    return false;
  Out << Line << '\n';
  return Out.good();
}
