//===- support/Budget.cpp - Resource budgets and cancellation -------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

#include "support/FaultInjection.h"
#include "support/Memory.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace ctp;

//===----------------------------------------------------------------------===//
// Heartbeat.
//===----------------------------------------------------------------------===//

namespace {

// The heartbeat never runs time math on system_clock: a wall-clock jump
// must not stall or burst the beat.
static_assert(std::chrono::steady_clock::is_steady,
              "heartbeat rate limiting requires a steady clock");

std::atomic<bool> HbInstalled{false};
std::atomic<std::uint64_t> HbPolls{0};
std::atomic<std::uint64_t> HbBeats{0};
// steady_clock nanos of the last file write; 0 = never.
std::atomic<std::int64_t> HbLastBeatNs{0};
std::uint64_t HbIntervalMs = 100;
// Written once by install() before HbInstalled is published (release /
// acquire pairing below), read-only afterwards.
std::string HbPath;

std::int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Serializes the truncate-and-rewrite below. The CAS on HbLastBeatNs
// admits one writer per *interval*, but writers from adjacent intervals
// can still overlap (thread A wins interval N, is descheduled mid-write,
// thread B wins interval N+1): interleaved truncates then leave the file
// torn ("9\n\n" and worse). try_lock, not lock: beats are best-effort,
// so a late-arriving writer drops its beat rather than block a solver
// thread on file I/O.
std::mutex HbWriteMutex;

void writeBeatFile() {
  std::uint64_t N = HbBeats.fetch_add(1, std::memory_order_relaxed) + 1;
  std::unique_lock<std::mutex> Lock(HbWriteMutex, std::try_to_lock);
  if (!Lock.owns_lock())
    return; // Another beat is mid-write; this one costs one interval.
  // Truncate-and-rewrite: the watcher only compares successive contents,
  // so a dropped beat at worst reads as "no change" for one interval.
  std::FILE *F = std::fopen(HbPath.c_str(), "w");
  if (!F)
    return; // Liveness reporting must never take the analysis down.
  std::fprintf(F, "%llu\n", static_cast<unsigned long long>(N));
  std::fclose(F);
}

// Shared by onPoll (post-stride) and tick: rate-limit on steady time and
// elect one writer per elapsed interval via CAS.
void beatIfIntervalElapsed() {
  std::int64_t Now = steadyNowNs();
  std::int64_t Last = HbLastBeatNs.load(std::memory_order_relaxed);
  if (Now - Last < static_cast<std::int64_t>(HbIntervalMs) * 1000000)
    return;
  if (HbLastBeatNs.compare_exchange_strong(Last, Now,
                                           std::memory_order_relaxed))
    writeBeatFile();
}

} // namespace

void heartbeat::install(const std::string &Path,
                        std::uint64_t MinIntervalMs) {
  HbPath = Path;
  HbIntervalMs = MinIntervalMs == 0 ? 1 : MinIntervalMs;
  HbPolls.store(0, std::memory_order_relaxed);
  HbBeats.store(0, std::memory_order_relaxed);
  HbLastBeatNs.store(steadyNowNs(), std::memory_order_relaxed);
  writeBeatFile();
  HbInstalled.store(true, std::memory_order_release);
}

bool heartbeat::installFromEnv() {
  const char *Path = std::getenv("CTP_HEARTBEAT_FILE");
  if (!Path || !*Path)
    return false;
  std::uint64_t IntervalMs = 100;
  if (const char *Iv = std::getenv("CTP_HEARTBEAT_INTERVAL_MS"))
    if (*Iv) {
      char *End = nullptr;
      unsigned long long V = std::strtoull(Iv, &End, 10);
      if (End != Iv && *End == '\0' && V > 0)
        IntervalMs = V;
    }
  install(Path, IntervalMs);
  return true;
}

void heartbeat::disable() {
  HbInstalled.store(false, std::memory_order_release);
}

bool heartbeat::installed() {
  return HbInstalled.load(std::memory_order_acquire);
}

std::uint64_t heartbeat::beats() {
  return HbBeats.load(std::memory_order_relaxed);
}

void heartbeat::onPoll() {
  if (!HbInstalled.load(std::memory_order_acquire))
    return;
  // Amortize the clock read over a small stride, like the deadline check
  // in BudgetMeter::poll.
  if ((HbPolls.fetch_add(1, std::memory_order_relaxed) & 63) != 0)
    return;
  beatIfIntervalElapsed();
}

void heartbeat::tick() {
  if (!HbInstalled.load(std::memory_order_acquire))
    return;
  beatIfIntervalElapsed();
}

const char *ctp::terminationReasonName(TerminationReason R) {
  switch (R) {
  case TerminationReason::Converged:
    return "Converged";
  case TerminationReason::DeadlineExceeded:
    return "DeadlineExceeded";
  case TerminationReason::DerivationCapHit:
    return "DerivationCapHit";
  case TerminationReason::MemoryCapHit:
    return "MemoryCapHit";
  case TerminationReason::Cancelled:
    return "Cancelled";
  case TerminationReason::MemoryBudget:
    return "MemoryBudget";
  }
  return "Unknown";
}

BudgetSpec BudgetSpec::scaledForRung(std::size_t Rung) const {
  auto Halve = [Rung](std::uint64_t Limit) -> std::uint64_t {
    if (Limit == 0)
      return 0; // Unlimited stays unlimited.
    std::uint64_t Scaled = Rung >= 64 ? 0 : Limit >> Rung;
    return Scaled == 0 ? 1 : Scaled;
  };
  BudgetSpec S = *this;
  S.DeadlineMs = Halve(DeadlineMs);
  S.MaxDerivations = Halve(MaxDerivations);
  S.MaxTuples = Halve(MaxTuples);
  S.MemBudgetMb = Halve(MemBudgetMb);
  return S;
}

// A meter built from an explicit spec always polls it: even with every
// numeric limit at 0 the cancellation token must still be honoured.
// A memory budget arms (or, per degradation-ladder rung, re-arms) the
// process-wide governor: re-arming refloors the watermarks at current
// RSS so a descent always has headroom to make progress.
BudgetMeter::BudgetMeter(const BudgetSpec &S) : Spec(S), Limited(true) {
  memgov::governMb(S.MemBudgetMb);
}

std::optional<TerminationReason> BudgetMeter::poll() {
  // Liveness first: even an already-tripped or unlimited meter keeps the
  // heartbeat alive while the engine winds down or runs without limits.
  heartbeat::onPoll();
  if (Tripped)
    return Tripped;
  if (fault::active())
    if (auto Forced = fault::onBudgetPoll())
      return Tripped = Forced;
  // Memory pressure is process-wide, so even an "unlimited" meter (a
  // per-query meter in a governed service, say) must honour it: any
  // pressure maps to MemoryBudget and the engine stops at a safe point.
  if (memgov::poll() != memgov::Pressure::Ok)
    return Tripped = TerminationReason::MemoryBudget;
  if (!Limited)
    return std::nullopt;
  if (Spec.MaxDerivations != 0 && Derivations >= Spec.MaxDerivations)
    return Tripped = TerminationReason::DerivationCapHit;
  if (Spec.MaxTuples != 0 && Tuples >= Spec.MaxTuples)
    return Tripped = TerminationReason::MemoryCapHit;
  // Clock and token reads are amortized over a small stride; the first
  // poll checks too, so an already-cancelled run stops before working.
  if ((Polls++ & 31) == 0) {
    if (Spec.Cancel.cancelled())
      return Tripped = TerminationReason::Cancelled;
    if (Spec.DeadlineMs != 0 && Clock.seconds() * 1e3 >=
                                    static_cast<double>(Spec.DeadlineMs))
      return Tripped = TerminationReason::DeadlineExceeded;
  }
  return std::nullopt;
}
