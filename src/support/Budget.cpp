//===- support/Budget.cpp - Resource budgets and cancellation -------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

#include "support/FaultInjection.h"

using namespace ctp;

const char *ctp::terminationReasonName(TerminationReason R) {
  switch (R) {
  case TerminationReason::Converged:
    return "Converged";
  case TerminationReason::DeadlineExceeded:
    return "DeadlineExceeded";
  case TerminationReason::DerivationCapHit:
    return "DerivationCapHit";
  case TerminationReason::MemoryCapHit:
    return "MemoryCapHit";
  case TerminationReason::Cancelled:
    return "Cancelled";
  }
  return "Unknown";
}

BudgetSpec BudgetSpec::scaledForRung(std::size_t Rung) const {
  auto Halve = [Rung](std::uint64_t Limit) -> std::uint64_t {
    if (Limit == 0)
      return 0; // Unlimited stays unlimited.
    std::uint64_t Scaled = Rung >= 64 ? 0 : Limit >> Rung;
    return Scaled == 0 ? 1 : Scaled;
  };
  BudgetSpec S = *this;
  S.DeadlineMs = Halve(DeadlineMs);
  S.MaxDerivations = Halve(MaxDerivations);
  S.MaxTuples = Halve(MaxTuples);
  return S;
}

// A meter built from an explicit spec always polls it: even with every
// numeric limit at 0 the cancellation token must still be honoured.
BudgetMeter::BudgetMeter(const BudgetSpec &S) : Spec(S), Limited(true) {}

std::optional<TerminationReason> BudgetMeter::poll() {
  if (Tripped)
    return Tripped;
  if (fault::active())
    if (auto Forced = fault::onBudgetPoll())
      return Tripped = Forced;
  if (!Limited)
    return std::nullopt;
  if (Spec.MaxDerivations != 0 && Derivations >= Spec.MaxDerivations)
    return Tripped = TerminationReason::DerivationCapHit;
  if (Spec.MaxTuples != 0 && Tuples >= Spec.MaxTuples)
    return Tripped = TerminationReason::MemoryCapHit;
  // Clock and token reads are amortized over a small stride; the first
  // poll checks too, so an already-cancelled run stops before working.
  if ((Polls++ & 31) == 0) {
    if (Spec.Cancel.cancelled())
      return Tripped = TerminationReason::Cancelled;
    if (Spec.DeadlineMs != 0 && Clock.seconds() * 1e3 >=
                                    static_cast<double>(Spec.DeadlineMs))
      return Tripped = TerminationReason::DeadlineExceeded;
  }
  return std::nullopt;
}
