//===- support/Rng.h - Deterministic random numbers -------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based deterministic pseudo-random generator. The synthetic
/// workload generator and the property tests must be reproducible across
/// runs and platforms, so no std::random_device or libstdc++ distribution
/// objects (whose streams are implementation-defined) are used anywhere.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_RNG_H
#define CTP_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace ctp {

/// Deterministic SplitMix64 pseudo-random generator.
class Rng {
public:
  explicit Rng(std::uint64_t Seed) : State(Seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    std::uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  std::uint64_t nextBelow(std::uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    // Modulo bias is irrelevant for workload synthesis.
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive.
  std::uint64_t nextInRange(std::uint64_t Lo, std::uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// True with probability \p Percent / 100.
  bool chancePercent(unsigned Percent) { return nextBelow(100) < Percent; }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

private:
  std::uint64_t State;
};

} // namespace ctp

#endif // CTP_SUPPORT_RNG_H
