//===- support/Posix.cpp - EINTR-safe POSIX wrappers ----------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/Posix.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace ctp;

int posix::openRetry(const char *Path, int Flags, unsigned Mode) {
  while (true) {
    int Fd = ::open(Path, Flags, static_cast<mode_t>(Mode));
    if (Fd >= 0 || errno != EINTR)
      return Fd;
  }
}

ssize_t posix::readRetry(int Fd, void *Buf, std::size_t N) {
  while (true) {
    ssize_t R = ::read(Fd, Buf, N);
    if (R >= 0 || errno != EINTR)
      return R;
  }
}

std::size_t posix::readFull(int Fd, void *Buf, std::size_t N, int *Err) {
  if (Err)
    *Err = 0;
  char *P = static_cast<char *>(Buf);
  std::size_t Got = 0;
  while (Got < N) {
    ssize_t R = readRetry(Fd, P + Got, N - Got);
    if (R < 0) {
      if (Err)
        *Err = errno;
      break;
    }
    if (R == 0)
      break; // EOF.
    Got += static_cast<std::size_t>(R);
  }
  return Got;
}

bool posix::writeFull(int Fd, const void *Buf, std::size_t N) {
  const char *P = static_cast<const char *>(Buf);
  while (N != 0) {
    ssize_t W = ::write(Fd, P, N);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += W;
    N -= static_cast<std::size_t>(W);
  }
  return true;
}

int posix::fsyncRetry(int Fd) {
  while (true) {
    int R = ::fsync(Fd);
    if (R == 0 || errno != EINTR)
      return R;
  }
}

pid_t posix::waitpidRetry(pid_t Pid, int *Status, int Flags) {
  while (true) {
    pid_t R = ::waitpid(Pid, Status, Flags);
    if (R >= 0 || errno != EINTR)
      return R;
  }
}

int posix::closeQuiet(int Fd) {
  if (::close(Fd) == 0 || errno == EINTR)
    return 0;
  return -1;
}

std::string posix::mkdirs(const std::string &Path) {
  std::string Partial;
  if (!Path.empty() && Path[0] == '/')
    Partial = "/";
  std::size_t Start = 0;
  while (Start < Path.size()) {
    std::size_t End = Path.find('/', Start);
    if (End == std::string::npos)
      End = Path.size();
    if (End != Start) {
      if (!Partial.empty() && Partial.back() != '/')
        Partial += '/';
      Partial += Path.substr(Start, End - Start);
      if (::mkdir(Partial.c_str(), 0755) != 0 && errno != EEXIST)
        return "cannot create directory '" + Partial +
               "': " + std::strerror(errno);
    }
    Start = End + 1;
  }
  return "";
}
