//===- support/FaultInjection.h - Deterministic fault hooks -----*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Test-only fault injection for the resource governor. Budget trips,
/// mid-run cancellation, and malformed fact tuples are inherently timing-
/// or input-dependent; these hooks make them deterministic so the
/// degradation paths can be exercised reliably in the test suite.
///
/// The hooks are compiled into the support library but are inert (one
/// relaxed atomic load on the budget-poll path) unless a test arms them;
/// production tools never do. Armed trips are one-shot: after firing they
/// disarm themselves, so a degradation-ladder retry runs clean.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_FAULTINJECTION_H
#define CTP_SUPPORT_FAULTINJECTION_H

#include "support/Budget.h"

#include <optional>
#include <string>

namespace ctp {
namespace fault {

/// True when any budget fault is armed. The BudgetMeter consults the
/// remaining hooks only when this is set.
bool active();

/// Disarms everything and zeroes the poll counter. Call between tests.
void reset();

/// Forces the \p AfterPolls-th budget poll (counted across all meters
/// from the last reset) to report \p R, regardless of real resource
/// state. One-shot.
void armBudgetTrip(TerminationReason R, std::uint64_t AfterPolls);

/// Simulates an asynchronous cancellation arriving mid-run: the
/// \p AfterPolls-th budget poll observes TerminationReason::Cancelled.
/// One-shot.
void armCancellation(std::uint64_t AfterPolls);

/// Consulted by BudgetMeter::poll when active(). Counts the poll and
/// \returns the armed reason when the trip point is reached.
std::optional<TerminationReason> onBudgetPoll();

/// Appends a raw line to \p File inside facts directory \p Dir — the
/// malformed-tuple injector used by the TSV-read fixtures. \returns false
/// if the file cannot be opened.
bool injectFactsLine(const std::string &Dir, const std::string &File,
                     const std::string &Line);

//===----------------------------------------------------------------------===//
// Memory-pressure faults.
//
// The memory governor's degradation paths (watermark trips, the
// reserve-backed new handler) depend on real RSS growth, which tests
// and drills cannot provoke portably — and must never provoke under
// sanitizers, which reserve vast address space of their own. These
// hooks simulate pressure at memgov poll points instead: a poll-counted
// window reports Soft/Hard pressure, or runs the real new-handler body
// once (memgov::simulateAllocationFailure) without exhausting anything.
//===----------------------------------------------------------------------===//

/// What an armed memory fault simulates at a memgov poll point.
enum class MemFault : std::uint8_t {
  SoftPressure, ///< Report Pressure::Soft (degrade-and-descend).
  HardPressure, ///< Report Pressure::Hard (checkpoint now).
  BadAlloc,     ///< Run the emergency new-handler body once.
};

/// Arms \p F for memgov polls [\p AfterPolls, AfterPolls + Repeat):
/// Repeat = 1 is a one-shot spike; a large Repeat is a sustained burst
/// (every ladder rung trips, a service sheds for a whole window).
/// Counts from the last reset across all meters. Arming engages the
/// governor's poll path even when no budget is governed.
void armMemFault(MemFault F, std::uint64_t AfterPolls,
                 std::uint64_t Repeat = 1);

/// Arms by name — "soft@N", "hard@N", "badalloc@N", each optionally
/// suffixed "xR" for a repeat window (e.g. "soft@100x50000"); a missing
/// "@N" means "@0". The CTP_MEM_FAULT environment hook in the tools
/// goes through this. \returns false for a malformed spec.
bool armMemFaultByName(const std::string &Name);

/// True while a memory fault is armed.
bool memFaultActive();

/// Consulted by memgov::pollImpl when memFaultActive(). Counts the poll
/// and \returns the armed fault while inside the firing window,
/// disarming itself once the window is past.
std::optional<MemFault> onMemPoll();

//===----------------------------------------------------------------------===//
// Snapshot-writer crash points.
//
// A checkpoint write can be interrupted at any byte: the process is
// killed, the disk fills, a sector goes bad. These hooks make the
// snapshot writer misbehave in exactly those ways while still reporting
// success, so the recovery path (checksum detection + cold-start
// fallback on the next read) is tested rather than assumed.
//===----------------------------------------------------------------------===//

/// How an armed snapshot write misbehaves.
enum class SnapshotFault : std::uint8_t {
  /// Only a prefix of the encoded bytes reaches the destination (the
  /// rename still happens): a torn write.
  TornWrite,
  /// The last bytes are silently dropped: a short write / truncation.
  ShortWrite,
  /// One bit flips mid-payload: silent media corruption.
  BitFlip,
  /// The temp file is fully written but the process "dies" before the
  /// rename: the previous snapshot (if any) must survive intact.
  CrashBeforeRename,
};

/// Arms \p F for the next snapshot write (one-shot by default). With
/// \p Sticky, every write in this process misbehaves until reset() —
/// the mode the crash-loop driver uses so the *final* snapshot of an
/// invocation is the corrupt one.
void armSnapshotFault(SnapshotFault F, bool Sticky = false);

/// Arms by name ("torn", "short", "bitflip", "crash-before-rename");
/// the CTP_SNAPSHOT_FAULT environment hook in the tools goes through
/// this. \returns false for an unknown name.
bool armSnapshotFaultByName(const std::string &Name, bool Sticky = true);

/// Consulted by the snapshot writer on every write. \returns the armed
/// fault (consuming it unless sticky), or nullopt when disarmed.
std::optional<SnapshotFault> takeSnapshotFault();

//===----------------------------------------------------------------------===//
// Transaction crash points.
//
// The delta journal's crash-safety claim is "SIGKILL between any two
// bytes recovers to a certified state". These hooks let the crash-loop
// driver place the kill at every interesting stage of a transaction
// rather than hoping a timer lands there.
//===----------------------------------------------------------------------===//

/// Consulted by the transactional commit path after each named stage
/// (begin, op, solve, certify, promote, commit). When the CTP_TXN_CRASH
/// environment variable equals \p Stage, prints a marker to stderr and
/// raises SIGKILL — the process dies exactly as a power loss would kill
/// it, with whatever bytes earlier stages already fsynced.
void txnCrashPoint(const char *Stage);

/// True when CTP_TXN_SABOTAGE equals \p What. The commit path uses
/// "certify" to deliberately corrupt a staged result before
/// certification, proving the certifier actually gates publication.
bool txnSabotage(const char *What);

} // namespace fault
} // namespace ctp

#endif // CTP_SUPPORT_FAULTINJECTION_H
