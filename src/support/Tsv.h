//===- support/Tsv.h - Tab-separated-value helpers --------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reading and writing of Doop-style ".facts" files: one fact per line,
/// attributes separated by tabs. The paper consumes facts produced by the
/// Doop/Soot fact generator in exactly this format; this project emits and
/// consumes the same shape so an analysis can be driven from files on disk.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_TSV_H
#define CTP_SUPPORT_TSV_H

#include <string>
#include <vector>

namespace ctp {

/// Splits \p Line at tab characters. Empty fields are preserved.
std::vector<std::string> splitTsvLine(const std::string &Line);

/// Joins \p Fields with tab separators.
std::string joinTsvLine(const std::vector<std::string> &Fields);

/// Reads every line of the file at \p Path, split into fields.
/// \returns false if the file cannot be opened.
bool readTsvFile(const std::string &Path,
                 std::vector<std::vector<std::string>> &Rows);

/// One non-empty line of a TSV file with its 1-based line number, so
/// readers can report "File:LINE" diagnostics.
struct TsvLine {
  std::vector<std::string> Fields;
  unsigned LineNo = 0;
};

/// Hard cap on one physical line. Facts files carry entity names, never
/// megabyte payloads; a line beyond this is a corrupt or hostile input
/// (e.g. a binary blob dropped into a facts directory) and is rejected
/// before field splitting rather than ballooning reader memory.
constexpr std::size_t MaxTsvLineBytes = 1u << 20;

/// A line rejected before field splitting: an embedded NUL byte (TSV is
/// a text format; NULs mean binary junk and would silently truncate any
/// later C-string handling) or a line over MaxTsvLineBytes.
struct TsvReject {
  unsigned LineNo = 0;
  std::string Reason; ///< e.g. "line contains a NUL byte"
};

/// Like readTsvFile, but keeps the line number of every row. Lines with
/// NUL bytes or over MaxTsvLineBytes never reach \p Rows; they are
/// recorded in \p Rejects when non-null (and dropped otherwise — pass a
/// reject list anywhere the count matters, as facts/TsvIO does).
bool readTsvLines(const std::string &Path, std::vector<TsvLine> &Rows,
                  std::vector<TsvReject> *Rejects = nullptr);

/// Writes \p Rows to the file at \p Path, one line per row.
/// \returns false if the file cannot be created.
bool writeTsvFile(const std::string &Path,
                  const std::vector<std::vector<std::string>> &Rows);

} // namespace ctp

#endif // CTP_SUPPORT_TSV_H
