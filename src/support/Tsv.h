//===- support/Tsv.h - Tab-separated-value helpers --------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reading and writing of Doop-style ".facts" files: one fact per line,
/// attributes separated by tabs. The paper consumes facts produced by the
/// Doop/Soot fact generator in exactly this format; this project emits and
/// consumes the same shape so an analysis can be driven from files on disk.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_TSV_H
#define CTP_SUPPORT_TSV_H

#include <string>
#include <vector>

namespace ctp {

/// Splits \p Line at tab characters. Empty fields are preserved.
std::vector<std::string> splitTsvLine(const std::string &Line);

/// Joins \p Fields with tab separators.
std::string joinTsvLine(const std::vector<std::string> &Fields);

/// Reads every line of the file at \p Path, split into fields.
/// \returns false if the file cannot be opened.
bool readTsvFile(const std::string &Path,
                 std::vector<std::vector<std::string>> &Rows);

/// One non-empty line of a TSV file with its 1-based line number, so
/// readers can report "File:LINE" diagnostics.
struct TsvLine {
  std::vector<std::string> Fields;
  unsigned LineNo = 0;
};

/// Like readTsvFile, but keeps the line number of every row.
bool readTsvLines(const std::string &Path, std::vector<TsvLine> &Rows);

/// Writes \p Rows to the file at \p Path, one line per row.
/// \returns false if the file cannot be created.
bool writeTsvFile(const std::string &Path,
                  const std::vector<std::vector<std::string>> &Rows);

} // namespace ctp

#endif // CTP_SUPPORT_TSV_H
