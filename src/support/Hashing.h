//===- support/Hashing.h - Hash combinators ---------------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hash-combining utilities used by the interners and relation
/// containers. The mixing function is the 64-bit finalizer of SplitMix64,
/// which is cheap and has good avalanche behaviour for the dense integer
/// ids this project hashes almost exclusively.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_HASHING_H
#define CTP_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>

namespace ctp {

/// Finalizing mixer from SplitMix64; bijective on 64-bit values.
inline std::uint64_t mix64(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Combines an existing hash state with one more value.
inline std::uint64_t hashCombine(std::uint64_t Seed, std::uint64_t Value) {
  return mix64(Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                       (Seed >> 2)));
}

/// Hashes a contiguous range of integral values.
template <typename Iter>
std::uint64_t hashRange(Iter Begin, Iter End, std::uint64_t Seed = 0) {
  std::uint64_t H = Seed;
  for (Iter I = Begin; I != End; ++I)
    H = hashCombine(H, static_cast<std::uint64_t>(*I));
  return H;
}

} // namespace ctp

#endif // CTP_SUPPORT_HASHING_H
