//===- support/Durability.h - fsync helpers and durable appends -*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small POSIX durability layer under the crash-safety machinery. An
/// atomic tmp+rename write survives a *process* crash, but a rename only
/// survives a *power* loss once the containing directory's entry is on
/// disk — which requires fsync'ing the directory itself, not just the
/// file. The snapshot writer (support/Snapshot.cpp) and the supervisor's
/// JSONL run journal (support/Supervisor.cpp) both route through these
/// helpers so the two crash domains are handled in one place.
///
/// Every function returns an empty string on success, else a diagnostic;
/// callers that only need best-effort durability (the journal appender on
/// exotic filesystems where directory fsync fails with EINVAL) may choose
/// to tolerate a non-empty result.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_DURABILITY_H
#define CTP_SUPPORT_DURABILITY_H

#include <string>

namespace ctp {
namespace durable {

/// fsyncs the directory that contains \p Path ("." when \p Path has no
/// directory component), making a rename or creation of \p Path itself
/// durable. EINVAL from fsync on a directory (some network filesystems)
/// is treated as success: the platform offers nothing stronger.
std::string syncDirOf(const std::string &Path);

/// Durably appends \p Line plus a trailing newline to \p Path: a single
/// O_APPEND write (atomic with respect to other appenders for lines
/// under PIPE_BUF), then fsync of the file, then — when this call
/// created the file — fsync of its directory.
std::string appendLine(const std::string &Path, const std::string &Line);

/// Writes \p Size bytes of \p Data to \p Path via open/write/fsync,
/// truncating any previous content. Used by the snapshot writer for its
/// tmp file so the bytes are on disk before the rename publishes them.
std::string writeFileSynced(const std::string &Path, const void *Data,
                            std::size_t Size);

} // namespace durable
} // namespace ctp

#endif // CTP_SUPPORT_DURABILITY_H
