//===- support/BoundedVector.h - Fixed-capacity inline vector ---*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny fixed-capacity vector with inline storage. Context strings and
/// transformer strings in a k-limited analysis are bounded by the context
/// depth (at most 4 in any configuration this project evaluates), so all
/// context data lives inline in relation tuples with no heap traffic.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_BOUNDEDVECTOR_H
#define CTP_SUPPORT_BOUNDEDVECTOR_H

#include "support/Hashing.h"

#include <array>
#include <cassert>
#include <cstdint>
#include <initializer_list>

namespace ctp {

/// Fixed-capacity inline vector of trivially copyable values.
///
/// Unlike std::vector this never allocates; exceeding the capacity is a
/// programming error caught by an assertion. Equality and hashing consider
/// only the live prefix.
template <typename T, unsigned Cap> class BoundedVector {
public:
  BoundedVector() = default;

  BoundedVector(std::initializer_list<T> Init) {
    assert(Init.size() <= Cap && "initializer exceeds capacity");
    for (const T &V : Init)
      push_back(V);
  }

  static constexpr unsigned capacity() { return Cap; }

  unsigned size() const { return Size; }
  bool empty() const { return Size == 0; }

  void clear() { Size = 0; }

  void push_back(const T &V) {
    assert(Size < Cap && "BoundedVector overflow");
    Data[Size++] = V;
  }

  void pop_back() {
    assert(Size > 0 && "pop_back on empty BoundedVector");
    --Size;
  }

  T &operator[](unsigned I) {
    assert(I < Size && "index out of range");
    return Data[I];
  }
  const T &operator[](unsigned I) const {
    assert(I < Size && "index out of range");
    return Data[I];
  }

  T &front() { return (*this)[0]; }
  const T &front() const { return (*this)[0]; }
  T &back() { return (*this)[Size - 1]; }
  const T &back() const { return (*this)[Size - 1]; }

  const T *begin() const { return Data.data(); }
  const T *end() const { return Data.data() + Size; }
  T *begin() { return Data.data(); }
  T *end() { return Data.data() + Size; }

  /// Returns the first min(size, N) elements as a new vector.
  BoundedVector takePrefix(unsigned N) const {
    BoundedVector R;
    unsigned Keep = N < Size ? N : Size;
    for (unsigned I = 0; I < Keep; ++I)
      R.push_back(Data[I]);
    return R;
  }

  /// Returns the suffix after dropping the first min(size, N) elements.
  BoundedVector dropPrefix(unsigned N) const {
    BoundedVector R;
    unsigned Skip = N < Size ? N : Size;
    for (unsigned I = Skip; I < Size; ++I)
      R.push_back(Data[I]);
    return R;
  }

  friend bool operator==(const BoundedVector &A, const BoundedVector &B) {
    if (A.Size != B.Size)
      return false;
    for (unsigned I = 0; I < A.Size; ++I)
      if (!(A.Data[I] == B.Data[I]))
        return false;
    return true;
  }
  friend bool operator!=(const BoundedVector &A, const BoundedVector &B) {
    return !(A == B);
  }

  /// Lexicographic order; shorter prefixes sort first.
  friend bool operator<(const BoundedVector &A, const BoundedVector &B) {
    unsigned N = A.Size < B.Size ? A.Size : B.Size;
    for (unsigned I = 0; I < N; ++I) {
      if (A.Data[I] < B.Data[I])
        return true;
      if (B.Data[I] < A.Data[I])
        return false;
    }
    return A.Size < B.Size;
  }

  std::uint64_t hash() const {
    return hashRange(begin(), end(), /*Seed=*/Size);
  }

private:
  std::array<T, Cap> Data = {};
  unsigned Size = 0;
};

} // namespace ctp

#endif // CTP_SUPPORT_BOUNDEDVECTOR_H
