//===- support/Memory.cpp - Process memory governor -----------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/Memory.h"

#include "support/FaultInjection.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

using namespace ctp;
using memgov::Pressure;

namespace {

static_assert(std::chrono::steady_clock::is_steady,
              "RSS re-read striding requires a steady clock");

// Re-read /proc/self/statm at most this often; between reads the noted
// byte deltas bridge the gap. 10ms keeps the watermark check honest at
// multi-GB/s allocation rates while costing ~100 reads/second worst
// case.
constexpr std::int64_t RssStrideNs = 10 * 1000 * 1000;

std::atomic<bool> GovernedFlag{false};
std::atomic<bool> FaultEngaged{false};

// Serializes govern()/disable(); the poll path is lock-free.
std::mutex GovMutex;

std::atomic<std::uint64_t> BudgetB{0};
std::atomic<std::uint64_t> SoftBytes{0};
std::atomic<std::uint64_t> HardBytes{0};

// Usage estimate state: authoritative RSS, re-read on a stride, plus the
// bytes noted since that read.
std::atomic<std::uint64_t> LastRss{0};
std::atomic<std::int64_t> NotedBytes{0};
std::atomic<std::int64_t> NotedAtLastRss{0};
std::atomic<std::int64_t> LastRssReadNs{0};

// Pressure the most recent poll observed (as int for the atomic).
std::atomic<int> StateP{static_cast<int>(Pressure::Ok)};
// Sticky until the next re-arm: the new handler fired and spent the
// reserve, so nothing below Hard is trustworthy.
std::atomic<bool> HandlerFired{false};

std::atomic<std::uint64_t> SoftTripCount{0};
std::atomic<std::uint64_t> HardTripCount{0};

// The emergency reserve and the handler chain.
std::atomic<char *> Reserve{nullptr};
std::new_handler PrevHandler = nullptr;
bool HandlerInstalled = false;

std::int64_t steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void refreshEngaged() {
  memgov::EngagedFlag.store(GovernedFlag.load(std::memory_order_relaxed) ||
                                FaultEngaged.load(std::memory_order_relaxed),
                            std::memory_order_release);
}

// Records an observed pressure; counts only upward transitions so a
// sustained Soft plateau is one trip, not one per poll.
Pressure setState(Pressure P) {
  if (StateP.load(std::memory_order_relaxed) == static_cast<int>(P))
    return P; // Steady state: no write traffic on the shared line.
  int Old = StateP.exchange(static_cast<int>(P), std::memory_order_relaxed);
  if (static_cast<int>(P) > Old) {
    if (P == Pressure::Soft)
      SoftTripCount.fetch_add(1, std::memory_order_relaxed);
    else if (P == Pressure::Hard)
      HardTripCount.fetch_add(1, std::memory_order_relaxed);
  }
  return P;
}

// One RSS re-read per elapsed stride, writer elected by CAS (same shape
// as the heartbeat's interval election in Budget.cpp).
void maybeRefreshRss() {
  std::int64_t Now = steadyNowNs();
  std::int64_t Last = LastRssReadNs.load(std::memory_order_relaxed);
  if (Now - Last < RssStrideNs)
    return;
  if (!LastRssReadNs.compare_exchange_strong(Last, Now,
                                             std::memory_order_relaxed))
    return;
  std::uint64_t Rss = memgov::currentRssBytes();
  if (Rss == 0)
    return; // No /proc: the noted bytes keep accumulating instead.
  // Order matters only loosely: a racing noteBytes between these two
  // stores double-counts at most one delta for one stride.
  NotedAtLastRss.store(NotedBytes.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  LastRss.store(Rss, std::memory_order_relaxed);
}

std::uint64_t usageEstimate() {
  maybeRefreshRss();
  std::uint64_t Rss = LastRss.load(std::memory_order_relaxed);
  std::int64_t Bridge = NotedBytes.load(std::memory_order_relaxed) -
                        NotedAtLastRss.load(std::memory_order_relaxed);
  if (Bridge > 0)
    Rss += static_cast<std::uint64_t>(Bridge);
  return Rss;
}

// On real exhaustion: release the reserve so the failing allocation can
// succeed on operator new's retry, flip the sticky hard trip, and let
// the solver reach its next poll. With the reserve already spent there
// is nothing left to give back — restore the previous handler (or throw
// directly) so bad_alloc propagates instead of looping forever.
void emergencyNewHandler() {
  char *R = Reserve.exchange(nullptr, std::memory_order_acq_rel);
  if (R) {
    delete[] R;
    HandlerFired.store(true, std::memory_order_relaxed);
    setState(Pressure::Hard);
    return;
  }
  std::set_new_handler(PrevHandler);
  if (!PrevHandler)
    throw std::bad_alloc();
}

void ensureReserve(std::uint64_t Bytes) {
  if (Bytes == 0 || Reserve.load(std::memory_order_relaxed))
    return;
  char *R = new (std::nothrow) char[Bytes];
  if (!R)
    return; // Already at the wall: the handler will propagate bad_alloc.
  // Touch one byte per page so the reserve is resident, not just mapped:
  // releasing address space the kernel never backed frees nothing.
  for (std::uint64_t I = 0; I < Bytes; I += 4096)
    R[I] = 1;
  char *Expected = nullptr;
  if (!Reserve.compare_exchange_strong(Expected, R,
                                       std::memory_order_acq_rel))
    delete[] R;
}

} // namespace

namespace ctp {
namespace memgov {
std::atomic<bool> EngagedFlag{false};
} // namespace memgov
} // namespace ctp

const char *memgov::pressureName(Pressure P) {
  switch (P) {
  case Pressure::Ok:
    return "ok";
  case Pressure::Soft:
    return "soft";
  case Pressure::Hard:
    return "hard";
  }
  return "unknown";
}

void memgov::govern(const GovernorSpec &S) {
  std::lock_guard<std::mutex> Lock(GovMutex);
  BudgetB.store(S.BudgetBytes, std::memory_order_relaxed);
  std::uint64_t Rss = currentRssBytes();
  LastRss.store(Rss, std::memory_order_relaxed);
  NotedAtLastRss.store(NotedBytes.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  LastRssReadNs.store(steadyNowNs(), std::memory_order_relaxed);
  if (S.BudgetBytes != 0) {
    // Watermarks as budget fractions, floored at current RSS plus a
    // minimum headroom: freed heap rarely returns to the kernel, so a
    // ladder descent re-arming at a halved budget would otherwise trip
    // on entry before the cheaper rung could do any work.
    auto Frac = [&](double F) {
      return static_cast<std::uint64_t>(static_cast<double>(S.BudgetBytes) *
                                        F);
    };
    std::uint64_t SoftHead =
        std::max<std::uint64_t>(8ull << 20, S.BudgetBytes / 20);
    std::uint64_t HardHead =
        std::max<std::uint64_t>(12ull << 20, S.BudgetBytes * 2 / 25);
    SoftBytes.store(std::max(Frac(S.SoftFraction), Rss + SoftHead),
                    std::memory_order_relaxed);
    HardBytes.store(std::max(Frac(S.HardFraction), Rss + HardHead),
                    std::memory_order_relaxed);
  } else {
    SoftBytes.store(0, std::memory_order_relaxed);
    HardBytes.store(0, std::memory_order_relaxed);
  }
  StateP.store(static_cast<int>(Pressure::Ok), std::memory_order_relaxed);
  HandlerFired.store(false, std::memory_order_relaxed);
  ensureReserve(S.ReserveBytes);
  if (!HandlerInstalled) {
    PrevHandler = std::set_new_handler(emergencyNewHandler);
    HandlerInstalled = true;
  }
  GovernedFlag.store(true, std::memory_order_relaxed);
  refreshEngaged();
}

void memgov::governMb(std::uint64_t BudgetMb) {
  if (BudgetMb == 0)
    return;
  GovernorSpec S;
  S.BudgetBytes = BudgetMb << 20;
  govern(S);
}

void memgov::disable() {
  std::lock_guard<std::mutex> Lock(GovMutex);
  GovernedFlag.store(false, std::memory_order_relaxed);
  refreshEngaged();
  if (HandlerInstalled) {
    std::set_new_handler(PrevHandler);
    PrevHandler = nullptr;
    HandlerInstalled = false;
  }
  delete[] Reserve.exchange(nullptr, std::memory_order_acq_rel);
  BudgetB.store(0, std::memory_order_relaxed);
  SoftBytes.store(0, std::memory_order_relaxed);
  HardBytes.store(0, std::memory_order_relaxed);
  NotedBytes.store(0, std::memory_order_relaxed);
  NotedAtLastRss.store(0, std::memory_order_relaxed);
  LastRss.store(0, std::memory_order_relaxed);
  LastRssReadNs.store(0, std::memory_order_relaxed);
  StateP.store(static_cast<int>(Pressure::Ok), std::memory_order_relaxed);
  HandlerFired.store(false, std::memory_order_relaxed);
  SoftTripCount.store(0, std::memory_order_relaxed);
  HardTripCount.store(0, std::memory_order_relaxed);
}

bool memgov::governed() {
  return GovernedFlag.load(std::memory_order_relaxed);
}

std::uint64_t memgov::budgetBytes() {
  return BudgetB.load(std::memory_order_relaxed);
}

Pressure memgov::state() {
  // A disengaged governor reports Ok regardless of the stored value:
  // polls short-circuit while disengaged, so the last engaged state
  // would otherwise read as stale pressure forever (e.g. a fault drill
  // disarming mid-burst would leave a service shedding admissions).
  if (!engaged())
    return Pressure::Ok;
  return static_cast<Pressure>(StateP.load(std::memory_order_relaxed));
}

std::uint64_t memgov::softTrips() {
  return SoftTripCount.load(std::memory_order_relaxed);
}

std::uint64_t memgov::hardTrips() {
  return HardTripCount.load(std::memory_order_relaxed);
}

std::uint64_t memgov::currentRssBytes() {
#if defined(__linux__)
  std::FILE *F = std::fopen("/proc/self/statm", "r");
  if (!F)
    return 0;
  unsigned long long Size = 0, Resident = 0;
  int Got = std::fscanf(F, "%llu %llu", &Size, &Resident);
  std::fclose(F);
  if (Got != 2)
    return 0;
  long Page = ::sysconf(_SC_PAGESIZE);
  return Resident * static_cast<std::uint64_t>(Page > 0 ? Page : 4096);
#else
  return 0;
#endif
}

std::uint64_t memgov::peakRssBytes() {
#if defined(__linux__)
  if (std::FILE *F = std::fopen("/proc/self/status", "r")) {
    char Line[256];
    while (std::fgets(Line, sizeof(Line), F)) {
      unsigned long long Kb = 0;
      if (std::sscanf(Line, "VmHWM: %llu kB", &Kb) == 1) {
        std::fclose(F);
        return Kb * 1024;
      }
    }
    std::fclose(F);
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage RU;
  if (::getrusage(RUSAGE_SELF, &RU) == 0 && RU.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(RU.ru_maxrss); // bytes on macOS
#else
    return static_cast<std::uint64_t>(RU.ru_maxrss) * 1024; // kB on Linux
#endif
  }
#endif
  return 0;
}

void memgov::simulateAllocationFailure() {
  delete[] Reserve.exchange(nullptr, std::memory_order_acq_rel);
  HandlerFired.store(true, std::memory_order_relaxed);
  setState(Pressure::Hard);
}

void memgov::noteFaultArmed(bool Armed) {
  FaultEngaged.store(Armed, std::memory_order_relaxed);
  refreshEngaged();
}

void memgov::noteBytesImpl(std::int64_t Delta) {
  NotedBytes.fetch_add(Delta, std::memory_order_relaxed);
}

Pressure memgov::pollImpl() {
  // Simulated pressure first: drills must trip even with no budget
  // governed, and a forced bad_alloc exercises the real handler body.
  if (fault::memFaultActive()) {
    if (auto F = fault::onMemPoll()) {
      switch (*F) {
      case fault::MemFault::SoftPressure:
        return setState(Pressure::Soft);
      case fault::MemFault::HardPressure:
        return setState(Pressure::Hard);
      case fault::MemFault::BadAlloc:
        simulateAllocationFailure();
        return Pressure::Hard;
      }
    }
  }
  // A fired new handler is sticky until the next re-arm: the reserve is
  // spent, so nothing below Hard is trustworthy.
  if (HandlerFired.load(std::memory_order_relaxed))
    return setState(Pressure::Hard);
  if (!GovernedFlag.load(std::memory_order_relaxed) ||
      HardBytes.load(std::memory_order_relaxed) == 0)
    return setState(Pressure::Ok);
  std::uint64_t Usage = usageEstimate();
  if (Usage >= HardBytes.load(std::memory_order_relaxed))
    return setState(Pressure::Hard);
  if (Usage >= SoftBytes.load(std::memory_order_relaxed))
    return setState(Pressure::Soft);
  return setState(Pressure::Ok);
}
