//===- support/Posix.h - EINTR-safe POSIX wrappers --------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// EINTR-retry wrappers for the raw POSIX calls the fault-tolerance layer
/// leans on. The supervisor, the batch driver, and the analysis service
/// all live in signal-heavy processes (SIGCHLD from reaped children,
/// chaos SIGKILLs of *other* processes delivered while we sit in a
/// syscall, profiling timers under the sanitizers); a chaos run must
/// never surface a spurious "read failed: Interrupted system call" where
/// a retry was the correct response. Every call sites one of these
/// helpers instead of hand-rolling the loop — the EINTR policy lives in
/// exactly one place.
///
/// Policy notes:
///  - read/write/open/fsync/waitpid: retry on EINTR, unconditionally.
///  - close: NEVER retried. On Linux the descriptor is freed even when
///    close fails with EINTR, so a retry could close an unrelated fd
///    that was just handed out to another thread; closeQuiet treats
///    EINTR as success.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_POSIX_H
#define CTP_SUPPORT_POSIX_H

#include <cstddef>
#include <string>

#include <sys/types.h>

namespace ctp {
namespace posix {

/// open(2), retried on EINTR (possible when the path names a FIFO or a
/// slow device; harmless to retry everywhere).
int openRetry(const char *Path, int Flags, unsigned Mode = 0644);

/// One read(2), retried on EINTR. \returns the byte count, 0 at EOF, or
/// -1 with errno set (never EINTR).
ssize_t readRetry(int Fd, void *Buf, std::size_t N);

/// Reads exactly \p N bytes unless EOF or a real error intervenes.
/// \returns the number of bytes read (== N on full success); check
/// errno only when the return is negative... it never is: a short count
/// means EOF, and -1 is never returned — errors surface as a short count
/// with \p Err (when non-null) set to the errno that stopped the loop
/// (0 for plain EOF).
std::size_t readFull(int Fd, void *Buf, std::size_t N, int *Err = nullptr);

/// Writes all \p N bytes, retrying short writes and EINTR. \returns true
/// on success; on failure errno identifies the cause (never EINTR).
bool writeFull(int Fd, const void *Buf, std::size_t N);

/// fsync(2), retried on EINTR.
int fsyncRetry(int Fd);

/// waitpid(2), retried on EINTR — the classic hole: a supervisor
/// blocking in waitpid while a signal lands would otherwise misreport a
/// live child as unreapable.
pid_t waitpidRetry(pid_t Pid, int *Status, int Flags);

/// close(2) with the Linux EINTR policy (see file comment): EINTR is
/// success, anything else returns -1 with errno set.
int closeQuiet(int Fd);

/// mkdir -p: creates \p Path and every missing parent (mode 0755).
/// \returns an empty string on success, else a diagnostic naming the
/// component that failed. Shared by the supervisors and the service so
/// "who creates the checkpoint directory" has one answer: whoever was
/// handed the path.
std::string mkdirs(const std::string &Path);

} // namespace posix
} // namespace ctp

#endif // CTP_SUPPORT_POSIX_H
