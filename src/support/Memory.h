//===- support/Memory.h - Process memory governor ---------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-process memory governor. The paper's scalability argument is
/// that fact counts and index sizes dominate analysis cost, which means
/// memory — not time — is what kills real runs. Until now the only memory
/// defense was external (RLIMIT_AS → bad_alloc → SIGABRT → supervisor
/// triage), so a too-big configuration died losing all work instead of
/// descending the degradation ladder the way time budgets already do.
///
/// The governor makes memory a first-class cooperative budget:
///
///  - A byte budget with two watermarks. Crossing the *soft* watermark
///    (default 85%) reports Pressure::Soft; crossing the *hard* watermark
///    (default 95%) reports Pressure::Hard. BudgetMeter::poll maps either
///    to TerminationReason::MemoryBudget, so the engines stop at their
///    usual safe points, checkpoint, and let the fallback ladder descend.
///
///  - Usage estimation that is cheap at rule-firing rates: big owners
///    (interners, relations) charge approximate deltas via noteBytes();
///    the authoritative /proc/self/statm RSS is re-read on a ~10ms steady
///    clock stride with a CAS-elected reader, and the noted bytes only
///    bridge the window between two RSS reads.
///
///  - A std::new_handler backed by a pre-allocated emergency reserve. On
///    a *real* allocation failure the handler releases the reserve (so
///    the failing allocation can succeed on retry), flips a sticky hard
///    trip, and returns — the solver reaches its next poll, checkpoints,
///    and degrades instead of aborting. If the reserve is already spent
///    the previous handler is restored and bad_alloc propagates.
///
///  - Re-arming per ladder rung. Freed heap rarely returns to the kernel,
///    so a descent to a cheaper rung would otherwise trip on entry; each
///    re-arm floors the watermarks at the *current* RSS plus a minimum
///    headroom, guaranteeing every rung room to make progress (the
///    cheaper rung's smaller working set recycles the allocator's free
///    pool without growing RSS).
///
/// Everything is inert — one relaxed atomic load per poll — until a tool
/// installs a budget (--mem-budget-mb) or fault injection arms a
/// simulated pressure spike (CTP_MEM_FAULT).
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_MEMORY_H
#define CTP_SUPPORT_MEMORY_H

#include <atomic>
#include <cstdint>

namespace ctp {
namespace memgov {

/// The pressure a poll observed, ordered by severity.
enum class Pressure : std::uint8_t { Ok, Soft, Hard };

const char *pressureName(Pressure P);

/// One governor arming. Zero BudgetBytes means "no watermarks" (the
/// reserve-backed new handler is still installed).
struct GovernorSpec {
  /// The byte budget the watermarks are fractions of.
  std::uint64_t BudgetBytes = 0;
  /// Soft watermark: degrade-and-descend territory.
  double SoftFraction = 0.85;
  /// Hard watermark: checkpoint-now territory.
  double HardFraction = 0.95;
  /// Emergency reserve released by the new handler on real exhaustion.
  std::uint64_t ReserveBytes = 4ull << 20;
};

/// Installs the governor on first call, re-arms it on later calls:
/// watermarks are recomputed (floored at current RSS + headroom, see
/// file comment), the sticky hard trip is cleared, and the emergency
/// reserve is re-allocated if a previous new-handler firing spent it.
/// Trip counters are cumulative across re-arms.
void govern(const GovernorSpec &S);

/// govern() with a budget in MiB and default fractions. No-op when
/// \p BudgetMb is zero, so callers can pass their spec field through.
void governMb(std::uint64_t BudgetMb);

/// Uninstalls the governor and new handler, frees the reserve, and
/// zeroes counters and noted bytes. Call between tests.
void disable();

/// True while a budget is armed (fault-only engagement doesn't count).
bool governed();

std::uint64_t budgetBytes();

/// The pressure the most recent poll observed. Ok before any poll and
/// whenever the governor is disengaged (stale pressure from a disarmed
/// drill or uninstalled budget must not linger).
Pressure state();

/// Upward pressure transitions observed since install (cumulative
/// across re-arms; a re-arm that clears Hard and trips again counts
/// again).
std::uint64_t softTrips();
std::uint64_t hardTrips();

/// Current RSS in bytes from /proc/self/statm; 0 when unavailable.
std::uint64_t currentRssBytes();

/// Peak RSS in bytes: /proc/self/status VmHWM, falling back to
/// getrusage ru_maxrss; 0 when both are unavailable.
std::uint64_t peakRssBytes();

/// Runs the new-handler body once without real exhaustion: releases the
/// reserve and flips the sticky hard trip. Fault injection uses this so
/// forced-bad_alloc drills never actually exhaust memory (sanitizer
/// builds reserve vast address space and would die first).
void simulateAllocationFailure();

/// Fault-injection engagement: keeps poll() live while a CTP_MEM_FAULT
/// is armed even when no budget is governed. Called by fault::.
void noteFaultArmed(bool Armed);

/// The slow path of poll(); call poll() instead.
Pressure pollImpl();

/// True when a poll would do real work (budget governed or fault armed).
extern std::atomic<bool> EngagedFlag;
inline bool engaged() {
  return EngagedFlag.load(std::memory_order_relaxed);
}

/// The pressure check BudgetMeter::poll rides: one relaxed load when
/// disengaged.
inline Pressure poll() { return engaged() ? pollImpl() : Pressure::Ok; }

/// The slow path of noteBytes(); call noteBytes() instead.
void noteBytesImpl(std::int64_t Delta);

/// Big owners charge approximate allocation deltas here (negative on
/// release). Only bridges the window between two RSS reads, so rough
/// sizeof-based estimates are fine. One relaxed load when disengaged.
inline void noteBytes(std::int64_t Delta) {
  if (engaged())
    noteBytesImpl(Delta);
}

} // namespace memgov
} // namespace ctp

#endif // CTP_SUPPORT_MEMORY_H
