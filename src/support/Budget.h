//===- support/Budget.h - Resource budgets and cancellation -----*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource governor shared by both evaluation back-ends. The paper's
/// evaluation (Figure 6) reports several context-string configurations as
/// exceeding the experiment's time/memory budget; a production analysis
/// must bound every run the same way instead of evaluating to fixpoint
/// unconditionally. A BudgetSpec declares the limits of one run — a
/// wall-clock deadline, a cap on rule firings, an approximate memory cap
/// expressed as a derived-tuple count, and a cooperative cancellation
/// token — and a BudgetMeter is the cheap runtime checker the engines
/// poll at rule-firing granularity.
///
/// On exhaustion the engines stop cleanly and tag their partial Results
/// with a machine-readable TerminationReason; every tuple derived before
/// the stop is a genuine consequence of the input facts, so truncated
/// results are always a subset of the converged fixpoint.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_BUDGET_H
#define CTP_SUPPORT_BUDGET_H

#include "support/Memory.h"
#include "support/Stats.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace ctp {

//===----------------------------------------------------------------------===//
// Heartbeat.
//
// The batch supervisor (support/Supervisor.h) watches its children for
// liveness, not just exit: a deadlocked or swapping child holds its slot
// forever without ever failing. The child proves liveness by rewriting a
// small counter file at a bounded rate; the beat rides the existing
// budget poll points (both back-ends poll at rule-firing granularity) so
// no new instrumentation sites are needed. The hook is inert — one
// relaxed atomic load per poll — until a tool installs it, which the
// drivers do only when the supervisor asks via CTP_HEARTBEAT_FILE.
//
// All rate math is on steady_clock (see Stopwatch): a wall-clock step
// from NTP or DST must never look like a stall or a burst.
//===----------------------------------------------------------------------===//

namespace heartbeat {

/// Installs the process-wide heartbeat: every budget poll may rewrite
/// \p Path with an incrementing beat counter, at most once per
/// \p MinIntervalMs. Writes one beat immediately so the watcher sees
/// liveness before the first poll (fact reading precedes solving).
void install(const std::string &Path, std::uint64_t MinIntervalMs = 100);

/// Installs from CTP_HEARTBEAT_FILE (path) and CTP_HEARTBEAT_INTERVAL_MS
/// (optional rate limit). \returns true when a heartbeat was installed.
bool installFromEnv();

/// Uninstalls; later polls are inert again. Call between tests.
void disable();

bool installed();

/// Beats counted since install (whether or not each reached the file).
std::uint64_t beats();

/// The rate-limited tick; called by BudgetMeter::poll on every poll.
/// Cheap when uninstalled; otherwise only every 64th call consults the
/// clock and only elapsed intervals touch the file.
void onPoll();

/// The same rate-limited beat without onPoll's 64-call stride. The
/// stride amortizes clock reads at rule-firing rates; a service loop
/// that wakes a few times per interval (ctp-serve's accept loop while
/// idle between queries) would beat 64x too rarely through onPoll, so
/// it calls tick() directly. Still at most one file write per interval,
/// still inert when no heartbeat is installed.
void tick();

} // namespace heartbeat

/// Why an evaluation run stopped.
enum class TerminationReason : std::uint8_t {
  Converged,        ///< Reached the fixpoint; results are complete.
  DeadlineExceeded, ///< The wall-clock deadline elapsed.
  DerivationCapHit, ///< The rule-firing cap was reached.
  MemoryCapHit,     ///< The derived-tuple (approximate memory) cap was hit.
  Cancelled,        ///< The cancellation token was signalled.
  MemoryBudget,     ///< The process memory governor reported pressure.
};

const char *terminationReasonName(TerminationReason R);

/// Cooperative cancellation: copies share one flag; a default-constructed
/// token has no flag and can never be cancelled.
class CancelToken {
public:
  CancelToken() = default;

  /// A fresh, signalable token.
  static CancelToken make() {
    CancelToken T;
    T.Flag = std::make_shared<std::atomic<bool>>(false);
    return T;
  }

  /// Signals cancellation. No-op on a default-constructed token.
  void cancel() {
    if (Flag)
      Flag->store(true, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return Flag && Flag->load(std::memory_order_relaxed);
  }

private:
  std::shared_ptr<std::atomic<bool>> Flag;
};

/// The limits of one evaluation run. Zero means unlimited for every
/// numeric field; the default spec imposes no bound at all.
struct BudgetSpec {
  /// Wall-clock deadline in milliseconds, measured from meter creation.
  std::uint64_t DeadlineMs = 0;
  /// Cap on rule firings (derivations, counted before deduplication).
  std::uint64_t MaxDerivations = 0;
  /// Approximate memory cap: total derived tuples across all relations.
  std::uint64_t MaxTuples = 0;
  /// RSS budget in MiB enforced by the process memory governor
  /// (support/Memory.h). Constructing a meter from a spec with a
  /// non-zero value arms (or re-arms) the governor; polls then map
  /// watermark pressure to TerminationReason::MemoryBudget.
  std::uint64_t MemBudgetMb = 0;
  /// Cooperative cancellation; checked alongside the deadline.
  CancelToken Cancel;

  bool unlimited() const {
    return DeadlineMs == 0 && MaxDerivations == 0 && MaxTuples == 0 &&
           MemBudgetMb == 0 && !Cancel.cancelled();
  }

  /// The budget of degradation-ladder rung \p Rung: every limit halved
  /// per rung (but never below 1), so a full ladder descent costs less
  /// than twice the rung-0 budget in total.
  BudgetSpec scaledForRung(std::size_t Rung) const;
};

/// Runtime budget checker. Engines charge work as it happens and poll for
/// exhaustion at rule-firing granularity; a poll is two integer compares
/// on the hot path, with the clock, the cancellation token, and the
/// fault-injection hooks consulted on a small stride.
class BudgetMeter {
public:
  /// An unlimited meter (polls never trip, minimal overhead).
  BudgetMeter() = default;
  explicit BudgetMeter(const BudgetSpec &S);

  void chargeDerivations(std::uint64_t N = 1) { Derivations += N; }

  /// Every successful relation insert (both back-ends) charges here, so
  /// this doubles as the memory governor's counting hook on the big
  /// owners: a stored tuple costs roughly a hash node plus the key.
  /// Inert (one relaxed load) unless the governor is engaged.
  void chargeTuple() {
    ++Tuples;
    memgov::noteBytes(48);
  }

  /// Polls for exhaustion. \returns the termination reason once the
  /// budget is exhausted (sticky: every later poll returns the same
  /// reason), nullopt while within budget.
  std::optional<TerminationReason> poll();

  /// Converged while within budget, else the tripped reason.
  TerminationReason reason() const {
    return Tripped ? *Tripped : TerminationReason::Converged;
  }
  bool tripped() const { return Tripped.has_value(); }

  std::uint64_t derivations() const { return Derivations; }
  std::uint64_t tuples() const { return Tuples; }
  double seconds() const { return Clock.seconds(); }

private:
  BudgetSpec Spec;
  Stopwatch Clock;
  std::uint64_t Derivations = 0;
  std::uint64_t Tuples = 0;
  std::uint64_t Polls = 0;
  bool Limited = false;
  std::optional<TerminationReason> Tripped;
};

} // namespace ctp

#endif // CTP_SUPPORT_BUDGET_H
