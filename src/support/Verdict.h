//===- support/Verdict.h - Verification verdict report ----------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verdict report the verification subsystem (src/verify, ctp-verify)
/// emits: one row per executed check, each pass/fail/skip with a detail
/// string that names the first counterexample tuple on failure. Lives in
/// support (not verify) because orchestrators — ctp-batch, CI scripts —
/// consume the rendered report and the exit-code protocol without linking
/// the verifier itself.
///
/// Determinism contract: rows render in insertion order and the driver
/// inserts in a fixed cell/check order, so two runs over the same inputs
/// produce byte-identical reports (the property CI gating diffs rely on).
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_VERDICT_H
#define CTP_SUPPORT_VERDICT_H

#include <cstdint>
#include <string>
#include <vector>

namespace ctp {
namespace verdict {

/// Outcome of one check. Skip records "not applicable here" (e.g. the
/// support certificate on a back-end without a provenance recorder) so a
/// report always shows the full matrix shape.
enum class Status : std::uint8_t { Pass, Fail, Skip };

/// "pass" / "fail" / "skip" — the machine-readable status column.
const char *statusName(Status S);

/// One executed check.
struct Check {
  /// The matrix cell, "preset/config/backend" style (empty for global
  /// checks).
  std::string Cell;
  /// Check name ("closure", "support", "differential", ...).
  std::string Name;
  Status St = Status::Pass;
  /// Pass: summary counters. Fail: the first counterexample, with entity
  /// names. Skip: why the check did not apply.
  std::string Detail;
};

/// Accumulates checks and renders the report.
class Report {
public:
  void add(const std::string &Cell, const std::string &Name, Status St,
           const std::string &Detail);

  const std::vector<Check> &checks() const { return Items; }

  bool allPassed() const;
  std::size_t numFailed() const;
  std::size_t numSkipped() const;

  /// One TSV row per check: "check<TAB>cell<TAB>status<TAB>detail", with
  /// tabs/newlines inside detail flattened to spaces, then a final
  /// "summary" row. Machine-readable and byte-deterministic.
  std::string renderTsv() const;

  /// Aligned human-readable table with the same content, failures
  /// annotated with their counterexample.
  std::string renderHuman() const;

private:
  std::vector<Check> Items;
};

} // namespace verdict
} // namespace ctp

#endif // CTP_SUPPORT_VERDICT_H
