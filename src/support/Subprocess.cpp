//===- support/Subprocess.cpp - fork/exec children with rlimits -----------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/Subprocess.h"

#include "support/Posix.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

extern char **environ;

using namespace ctp;
using namespace ctp::proc;

namespace {

/// Child-side file redirection; _exit(127) on failure like exec failure
/// (the parent cannot distinguish, and should not need to).
void redirectOrDie(const char *Path, int Flags, int TargetFd) {
  int Fd = ::open(Path, Flags, 0644);
  if (Fd < 0 || ::dup2(Fd, TargetFd) < 0)
    ::_exit(127);
  ::close(Fd);
}

void setLimitOrDie(int Resource, std::uint64_t Value) {
  if (Value == 0)
    return;
  struct rlimit L;
  L.rlim_cur = static_cast<rlim_t>(Value);
  L.rlim_max = static_cast<rlim_t>(Value);
  if (::setrlimit(Resource, &L) != 0)
    ::_exit(127);
}

} // namespace

Child::~Child() {
  if (spawned() && !Reaped) {
    ::kill(Pid, SIGKILL);
    wait();
  }
  closeErrFd();
}

Child::Child(Child &&O) noexcept
    : Pid(O.Pid), ErrFd(O.ErrFd), Reaped(O.Reaped), Status(O.Status),
      Tail(std::move(O.Tail)), TailCap(O.TailCap),
      StderrPath(std::move(O.StderrPath)) {
  O.Pid = -1;
  O.ErrFd = -1;
}

Child &Child::operator=(Child &&O) noexcept {
  if (this != &O) {
    if (spawned() && !Reaped) {
      ::kill(Pid, SIGKILL);
      wait();
    }
    closeErrFd();
    Pid = O.Pid;
    ErrFd = O.ErrFd;
    Reaped = O.Reaped;
    Status = O.Status;
    Tail = std::move(O.Tail);
    TailCap = O.TailCap;
    StderrPath = std::move(O.StderrPath);
    O.Pid = -1;
    O.ErrFd = -1;
  }
  return *this;
}

void Child::closeErrFd() {
  if (ErrFd >= 0) {
    posix::closeQuiet(ErrFd);
    ErrFd = -1;
  }
}

std::string Child::spawn(const SpawnSpec &Spec) {
  if (Spec.Argv.empty())
    return "spawn: empty argv";
  if (spawned())
    return "spawn: Child already holds a process";

  int Pipe[2];
  if (::pipe(Pipe) != 0)
    return std::string("pipe failed: ") + std::strerror(errno);

  // Build argv/env before forking: heap allocation between fork and exec
  // is unsafe in a multithreaded parent.
  std::vector<char *> Argv;
  Argv.reserve(Spec.Argv.size() + 1);
  for (const std::string &A : Spec.Argv)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);
  std::vector<char *> Envp;
  for (char **E = environ; *E; ++E)
    Envp.push_back(*E);
  for (const std::string &E : Spec.ExtraEnv)
    Envp.push_back(const_cast<char *>(E.c_str()));
  Envp.push_back(nullptr);

  pid_t P = ::fork();
  if (P < 0) {
    posix::closeQuiet(Pipe[0]);
    posix::closeQuiet(Pipe[1]);
    return std::string("fork failed: ") + std::strerror(errno);
  }
  if (P == 0) {
    // Child. Own process group so a supervisor kill cannot stray.
    ::setpgid(0, 0);
    ::close(Pipe[0]);
    redirectOrDie(Spec.StdoutPath.empty() ? "/dev/null"
                                          : Spec.StdoutPath.c_str(),
                  O_WRONLY | O_CREAT | O_TRUNC, STDOUT_FILENO);
    if (::dup2(Pipe[1], STDERR_FILENO) < 0)
      ::_exit(127);
    ::close(Pipe[1]);
    setLimitOrDie(RLIMIT_AS, Spec.MemLimitBytes);
    if (Spec.CpuLimitSeconds != 0) {
      // Soft limit at the cap, hard limit above it: with cur == max the
      // kernel skips SIGXCPU and goes straight to SIGKILL, which the
      // supervisor could not tell apart from any other kill.
      struct rlimit Cpu;
      Cpu.rlim_cur = static_cast<rlim_t>(Spec.CpuLimitSeconds);
      Cpu.rlim_max = static_cast<rlim_t>(Spec.CpuLimitSeconds + 5);
      if (::setrlimit(RLIMIT_CPU, &Cpu) != 0)
        ::_exit(127);
    }
    // No core dumps: crash triage reads the wait status and stderr, and
    // a matrix of crashing children must not litter the work tree.
    struct rlimit NoCore = {0, 0};
    ::setrlimit(RLIMIT_CORE, &NoCore);
    ::execve(Argv[0], Argv.data(), Envp.data());
    ::_exit(127);
  }

  // Parent.
  posix::closeQuiet(Pipe[1]);
  ErrFd = Pipe[0];
  int Flags = ::fcntl(ErrFd, F_GETFL, 0);
  ::fcntl(ErrFd, F_SETFL, Flags | O_NONBLOCK);
  Pid = P;
  Reaped = false;
  Status = ExitStatus();
  Tail.clear();
  TailCap = Spec.StderrTailBytes == 0 ? 2048 : Spec.StderrTailBytes;
  StderrPath = Spec.StderrPath;
  return "";
}

void Child::pumpStderr() {
  if (ErrFd < 0)
    return;
  char Buf[4096];
  while (true) {
    ssize_t N = posix::readRetry(ErrFd, Buf, sizeof(Buf));
    if (N > 0) {
      if (!StderrPath.empty()) {
        int Fd = posix::openRetry(StderrPath.c_str(),
                                  O_WRONLY | O_CREAT | O_APPEND);
        if (Fd >= 0) {
          posix::writeFull(Fd, Buf, static_cast<std::size_t>(N));
          posix::closeQuiet(Fd);
        }
      }
      Tail.append(Buf, static_cast<std::size_t>(N));
      if (Tail.size() > TailCap)
        Tail.erase(0, Tail.size() - TailCap);
      continue;
    }
    if (N == 0) { // EOF: the child closed its end.
      closeErrFd();
      return;
    }
    return; // EAGAIN: nothing buffered right now (EINTR already retried).
  }
}

bool Child::running() {
  if (!spawned() || Reaped)
    return false;
  pumpStderr();
  int St = 0;
  pid_t R = posix::waitpidRetry(Pid, &St, WNOHANG);
  if (R == 0)
    return true;
  // Reaped (or unexpectedly gone: treat ECHILD as an exec-failure-like
  // exit so the supervisor sees *something* deterministic).
  Reaped = true;
  if (R == Pid && WIFEXITED(St)) {
    Status.Exited = true;
    Status.Code = WEXITSTATUS(St);
  } else if (R == Pid && WIFSIGNALED(St)) {
    Status.Signalled = true;
    Status.Signal = WTERMSIG(St);
  } else {
    Status.Exited = true;
    Status.Code = 127;
  }
  pumpStderr(); // Drain what the child wrote before dying.
  closeErrFd();
  return false;
}

void Child::wait() {
  while (running())
    ::usleep(2000);
}

void Child::kill(int Sig) {
  if (spawned() && !Reaped)
    ::kill(Pid, Sig);
}
