//===- support/Supervisor.cpp - Fault-isolated batch supervisor -----------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/Supervisor.h"

#include "support/Durability.h"
#include "support/Posix.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/Tsv.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace ctp;
using namespace ctp::batch;

//===----------------------------------------------------------------------===//
// Names and classification.
//===----------------------------------------------------------------------===//

const char *batch::attemptClassName(AttemptClass C) {
  switch (C) {
  case AttemptClass::ExitOk:
    return "exit-ok";
  case AttemptClass::ExitDegraded:
    return "exit-degraded";
  case AttemptClass::ExitError:
    return "exit-error";
  case AttemptClass::CrashSignal:
    return "crash-signal";
  case AttemptClass::WatchdogStall:
    return "watchdog-stall";
  case AttemptClass::Timeout:
    return "timeout";
  case AttemptClass::RlimitCpu:
    return "rlimit-cpu";
  case AttemptClass::RlimitMem:
    return "rlimit-mem";
  case AttemptClass::ChaosKill:
    return "chaos-kill";
  case AttemptClass::SpawnFailure:
    return "spawn-failure";
  }
  return "unknown";
}

const char *batch::jobStatusName(JobStatus S) {
  switch (S) {
  case JobStatus::Completed:
    return "completed";
  case JobStatus::CompletedDegraded:
    return "completed-degraded";
  case JobStatus::Failed:
    return "failed";
  }
  return "unknown";
}

AttemptClass batch::classifyAttempt(const proc::ExitStatus &St,
                                    const KillAttribution &Kill,
                                    const std::string &StderrTail,
                                    const std::string &TermSidecar) {
  if (!St.Exited && !St.Signalled)
    return AttemptClass::SpawnFailure;
  if (St.Signalled) {
    // Supervisor-sent kills first: the wait status alone cannot tell a
    // watchdog SIGKILL from a chaos SIGKILL or an external one.
    if (Kill.Chaos)
      return AttemptClass::ChaosKill;
    if (Kill.Watchdog)
      return AttemptClass::WatchdogStall;
    if (Kill.Timeout)
      return AttemptClass::Timeout;
    if (St.Signal == SIGXCPU)
      return AttemptClass::RlimitCpu;
    // RLIMIT_AS surfaces as a failed allocation: the C++ runtime turns
    // that into std::bad_alloc -> std::terminate -> SIGABRT. The child's
    // terminate handler writes a structured sidecar before aborting;
    // prefer that, and fall back to grepping the stderr tail (which a
    // runtime backtrace can truncate past recognition).
    if (St.Signal == SIGABRT &&
        (TermSidecar.find("bad_alloc") != std::string::npos ||
         StderrTail.find("bad_alloc") != std::string::npos))
      return AttemptClass::RlimitMem;
    return AttemptClass::CrashSignal;
  }
  if (St.Code == 0)
    return AttemptClass::ExitOk;
  if (St.Code == 3)
    return AttemptClass::ExitDegraded;
  return AttemptClass::ExitError;
}

namespace {

AttemptClass attemptClassFromName(const std::string &Name) {
  for (int C = 0; C <= static_cast<int>(AttemptClass::SpawnFailure); ++C)
    if (Name == attemptClassName(static_cast<AttemptClass>(C)))
      return static_cast<AttemptClass>(C);
  return AttemptClass::ExitError;
}

bool jobStatusFromName(const std::string &Name, JobStatus &Out) {
  for (int S = 0; S <= static_cast<int>(JobStatus::Failed); ++S)
    if (Name == jobStatusName(static_cast<JobStatus>(S))) {
      Out = static_cast<JobStatus>(S);
      return true;
    }
  return false;
}

//===----------------------------------------------------------------------===//
// Minimal JSON emission and (own-records-only) extraction.
//
// The journal is written and read exclusively by this file, with a fixed
// key order per record type, so a full JSON parser would be dead weight;
// the extractor handles exactly what the emitter produces (and fails
// cleanly on anything else, which replay counts as a torn line).
//===----------------------------------------------------------------------===//

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

/// Finds "Key": in \p Line; \returns npos or the index just after ':'.
std::size_t jsonFieldPos(const std::string &Line, const char *Key) {
  std::string Needle = std::string("\"") + Key + "\":";
  std::size_t At = Line.find(Needle);
  return At == std::string::npos ? std::string::npos : At + Needle.size();
}

bool jsonString(const std::string &Line, const char *Key,
                std::string &Out) {
  std::size_t At = jsonFieldPos(Line, Key);
  if (At == std::string::npos || At >= Line.size() || Line[At] != '"')
    return false;
  Out.clear();
  for (std::size_t I = At + 1; I < Line.size(); ++I) {
    char C = Line[I];
    if (C == '"')
      return true;
    if (C != '\\') {
      Out += C;
      continue;
    }
    if (++I >= Line.size())
      return false;
    switch (Line[I]) {
    case '"':
      Out += '"';
      break;
    case '\\':
      Out += '\\';
      break;
    case 'n':
      Out += '\n';
      break;
    case 'r':
      Out += '\r';
      break;
    case 't':
      Out += '\t';
      break;
    case 'u': {
      if (I + 4 >= Line.size())
        return false;
      unsigned V = 0;
      for (int K = 1; K <= 4; ++K) {
        char H = Line[I + static_cast<std::size_t>(K)];
        V <<= 4;
        if (H >= '0' && H <= '9')
          V |= static_cast<unsigned>(H - '0');
        else if (H >= 'a' && H <= 'f')
          V |= static_cast<unsigned>(H - 'a' + 10);
        else if (H >= 'A' && H <= 'F')
          V |= static_cast<unsigned>(H - 'A' + 10);
        else
          return false;
      }
      Out += static_cast<char>(V & 0xff);
      I += 4;
      break;
    }
    default:
      return false;
    }
  }
  return false; // Unterminated string: torn line.
}

bool jsonInt(const std::string &Line, const char *Key, long long &Out) {
  std::size_t At = jsonFieldPos(Line, Key);
  if (At == std::string::npos)
    return false;
  char *End = nullptr;
  errno = 0;
  long long V = std::strtoll(Line.c_str() + At, &End, 10);
  if (End == Line.c_str() + At || errno != 0)
    return false;
  Out = V;
  return true;
}

bool jsonBool(const std::string &Line, const char *Key, bool &Out) {
  std::size_t At = jsonFieldPos(Line, Key);
  if (At == std::string::npos)
    return false;
  if (Line.compare(At, 4, "true") == 0) {
    Out = true;
    return true;
  }
  if (Line.compare(At, 5, "false") == 0) {
    Out = false;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Filesystem helpers.
//===----------------------------------------------------------------------===//

std::string mkdirs(const std::string &Path) { return posix::mkdirs(Path); }

/// Job ids contain '/' and '+'; their on-disk directory names do not.
std::string sanitizeId(const std::string &Id) {
  std::string Out = Id;
  for (char &C : Out)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '.' &&
        C != '_' && C != '-')
      C = '_';
  return Out;
}

/// FNV-1a, to give every job its own (still seed-deterministic) chaos
/// schedule regardless of matrix order.
std::uint64_t hashId(const std::string &S) {
  std::uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

std::string slurpSmallFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In.is_open())
    return "";
  std::string S((std::istreambuf_iterator<char>(In)),
                std::istreambuf_iterator<char>());
  return S;
}

void sleepMs(std::uint64_t Ms) {
  ::usleep(static_cast<useconds_t>(Ms * 1000));
}

//===----------------------------------------------------------------------===//
// Journal records.
//===----------------------------------------------------------------------===//

std::string attemptLine(const std::string &JobId, const AttemptRecord &A) {
  std::ostringstream S;
  S << "{\"type\":\"attempt\",\"job\":\"" << jsonEscape(JobId)
    << "\",\"attempt\":" << A.Attempt << ",\"class\":\""
    << attemptClassName(A.Class) << "\",\"exit\":" << A.ExitCode
    << ",\"signal\":" << A.Signal
    << ",\"resumed\":" << (A.Resumed ? "true" : "false")
    << ",\"fallback\":" << (A.Fallback ? "true" : "false")
    << ",\"elapsed_ms\":" << A.ElapsedMs << ",\"stderr\":\""
    << jsonEscape(A.StderrTail) << "\"}";
  return S.str();
}

std::string outcomeLine(const JobOutcome &O) {
  std::ostringstream S;
  S << "{\"type\":\"outcome\",\"job\":\"" << jsonEscape(O.Spec.id())
    << "\",\"status\":\"" << jobStatusName(O.Status)
    << "\",\"attempts\":" << O.Attempts.size() << ",\"triage\":\""
    << jsonEscape(O.Triage) << "\",\"total_ms\":" << O.TotalMs << "}";
  return S.str();
}

bool splitJobId(const std::string &Id, JobSpec &Out) {
  std::size_t First = Id.find('/');
  std::size_t Last = Id.rfind('/');
  if (First == std::string::npos || First == Last)
    return false;
  Out.Preset = Id.substr(0, First);
  Out.Config = Id.substr(First + 1, Last - First - 1);
  Out.Backend = Id.substr(Last + 1);
  return !Out.Preset.empty() && !Out.Config.empty() && !Out.Backend.empty();
}

} // namespace

//===----------------------------------------------------------------------===//
// Matrix expansion and plan files.
//===----------------------------------------------------------------------===//

std::vector<JobSpec>
batch::expandMatrix(const std::vector<std::string> &Presets,
                    const std::vector<std::string> &Configs,
                    const std::vector<std::string> &Backends) {
  std::vector<JobSpec> Jobs;
  for (const std::string &P : Presets)
    for (const std::string &C : Configs)
      for (const std::string &B : Backends)
        Jobs.push_back({P, C, B});
  return Jobs;
}

std::string batch::loadPlan(const std::string &Path,
                            std::vector<JobSpec> &Out) {
  std::vector<TsvLine> Rows;
  std::vector<TsvReject> Rejects;
  if (!readTsvLines(Path, Rows, &Rejects))
    return "cannot read plan file '" + Path + "'";
  if (!Rejects.empty())
    return Path + ":" + std::to_string(Rejects[0].LineNo) + ": " +
           Rejects[0].Reason;
  for (const TsvLine &Row : Rows) {
    if (!Row.Fields.empty() && !Row.Fields[0].empty() &&
        Row.Fields[0][0] == '#')
      continue;
    if (Row.Fields.size() < 2 || Row.Fields.size() > 3)
      return Path + ":" + std::to_string(Row.LineNo) +
             ": expected 2 or 3 fields (preset, config[, backend]), got " +
             std::to_string(Row.Fields.size());
    JobSpec J;
    J.Preset = Row.Fields[0];
    J.Config = Row.Fields[1];
    J.Backend = Row.Fields.size() == 3 ? Row.Fields[2] : "native";
    if (J.Backend != "native" && J.Backend != "datalog")
      return Path + ":" + std::to_string(Row.LineNo) +
             ": unknown backend '" + J.Backend + "'";
    Out.push_back(std::move(J));
  }
  return "";
}

//===----------------------------------------------------------------------===//
// Journal replay.
//===----------------------------------------------------------------------===//

std::string batch::journalPath(const std::string &WorkDir) {
  return WorkDir + "/journal.jsonl";
}

bool batch::replayJournal(const std::string &Path,
                          std::map<std::string, JobOutcome> &Finished,
                          std::size_t *TornLines) {
  if (TornLines)
    *TornLines = 0;
  std::ifstream In(Path);
  if (!In.is_open())
    return ::access(Path.c_str(), F_OK) != 0; // Missing journal is fine.
  std::map<std::string, std::vector<AttemptRecord>> Pending;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::string Type, JobId;
    bool Ok = Line.front() == '{' && Line.back() == '}' &&
              jsonString(Line, "type", Type) &&
              jsonString(Line, "job", JobId);
    if (Ok && Type == "attempt") {
      AttemptRecord A;
      long long Attempt = 0, Exit = -1, Signal = 0, ElapsedMs = 0;
      std::string Class;
      Ok = jsonInt(Line, "attempt", Attempt) &&
           jsonString(Line, "class", Class) &&
           jsonInt(Line, "exit", Exit) && jsonInt(Line, "signal", Signal) &&
           jsonBool(Line, "resumed", A.Resumed) &&
           jsonBool(Line, "fallback", A.Fallback) &&
           jsonInt(Line, "elapsed_ms", ElapsedMs) &&
           jsonString(Line, "stderr", A.StderrTail);
      if (Ok) {
        A.Attempt = static_cast<int>(Attempt);
        A.Class = attemptClassFromName(Class);
        A.ExitCode = static_cast<int>(Exit);
        A.Signal = static_cast<int>(Signal);
        A.ElapsedMs = static_cast<std::uint64_t>(ElapsedMs);
        Pending[JobId].push_back(std::move(A));
      }
    } else if (Ok && Type == "outcome") {
      JobOutcome O;
      std::string Status;
      long long Attempts = 0, TotalMs = 0;
      Ok = splitJobId(JobId, O.Spec) &&
           jsonString(Line, "status", Status) &&
           jobStatusFromName(Status, O.Status) &&
           jsonInt(Line, "attempts", Attempts) &&
           jsonString(Line, "triage", O.Triage) &&
           jsonInt(Line, "total_ms", TotalMs);
      if (Ok) {
        O.TotalMs = static_cast<std::uint64_t>(TotalMs);
        O.FromJournal = true;
        auto It = Pending.find(JobId);
        if (It != Pending.end()) {
          // Keep only the decisive run's attempts: a job interrupted in
          // an earlier supervisor life re-ran from attempt 0.
          std::vector<AttemptRecord> &All = It->second;
          std::size_t Start = All.size();
          while (Start > 0 && (Start == All.size() ||
                               All[Start - 1].Attempt <
                                   All[Start].Attempt))
            --Start;
          O.Attempts.assign(All.begin() +
                                static_cast<std::ptrdiff_t>(Start),
                            All.end());
          Pending.erase(It);
        }
        (void)Attempts; // The record's count; Attempts vector may be
                        // shorter if early lives tore attempt lines.
        Finished[JobId] = std::move(O);
      }
    }
    if (!Ok && TornLines)
      ++*TornLines;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// The supervisor proper.
//===----------------------------------------------------------------------===//

Supervisor::Supervisor(SupervisorOptions O) : Opts(std::move(O)) {}

namespace {

/// Per-attempt escalation stage.
enum class Stage { Fresh, Resume, Fallback };

} // namespace

JobOutcome Supervisor::runJob(const JobSpec &Job, int &ChaosKillsLeft) {
  JobOutcome Outcome;
  Outcome.Spec = Job;
  const std::string JobDir =
      Opts.WorkDir + "/jobs/" + sanitizeId(Job.id());
  const std::string CkptDir = JobDir + "/ckpt";
  const std::string HeartbeatFile = JobDir + "/heartbeat";
  mkdirs(CkptDir);

  Stopwatch JobClock;
  Rng ChaosRng(Opts.Seed ^ hashId(Job.id()));
  Stage St = Stage::Fresh;
  int RealAttempts = 0; // Non-chaos attempts consumed.
  int AttemptIdx = 0;

  while (true) {
    // Build the child command line for this escalation stage.
    proc::SpawnSpec Spec;
    Spec.Argv = {Opts.AnalyzePath, "--preset", Job.Preset, "--config",
                 Job.Config};
    if (Job.Backend == "datalog")
      Spec.Argv.push_back("--datalog");
    auto AddCount = [&Spec](const char *Flag, std::uint64_t V) {
      if (V != 0) {
        Spec.Argv.push_back(Flag);
        Spec.Argv.push_back(std::to_string(V));
      }
    };
    AddCount("--deadline-ms", Opts.DeadlineMs);
    AddCount("--max-derivations", Opts.MaxDerivations);
    AddCount("--max-tuples", Opts.MaxTuples);
    // A kernel memory cap gets a cooperative shadow at ~85%: the child's
    // in-process governor trips, checkpoints, and descends its ladder
    // before RLIMIT_AS turns an allocation into SIGABRT — the rlimit
    // stays as the hard backstop.
    if (Opts.MemLimitBytes != 0)
      AddCount("--mem-budget-mb",
               std::max<std::uint64_t>(
                   1, (Opts.MemLimitBytes >> 20) * 85 / 100));
    bool Resumed = false, Fallback = false;
    if (St == Stage::Fallback) {
      // Trade the checkpoint for a guaranteed answer: descend the
      // degradation ladder in-process (checkpointing would suppress the
      // descent — solveWithFallback prefers resuming over degrading).
      Spec.Argv.push_back("--fallback");
      Fallback = true;
    } else {
      Spec.Argv.push_back("--checkpoint-dir");
      Spec.Argv.push_back(CkptDir);
      AddCount("--checkpoint-every", Opts.CheckpointEvery);
      if (St == Stage::Resume) {
        Spec.Argv.push_back("--resume");
        Resumed = true;
      }
    }
    Spec.Argv.insert(Spec.Argv.end(), Opts.ExtraArgs.begin(),
                     Opts.ExtraArgs.end());
    Spec.ExtraEnv = {"CTP_HEARTBEAT_FILE=" + HeartbeatFile,
                     "CTP_HEARTBEAT_INTERVAL_MS=" +
                         std::to_string(Opts.HeartbeatIntervalMs)};
    Spec.StdoutPath = JobDir + "/attempt" + std::to_string(AttemptIdx) +
                      ".out";
    Spec.StderrPath = JobDir + "/attempt" + std::to_string(AttemptIdx) +
                      ".err";
    Spec.MemLimitBytes = Opts.MemLimitBytes;
    Spec.CpuLimitSeconds = Opts.CpuLimitSeconds;

    AttemptRecord A;
    A.Attempt = AttemptIdx;
    A.Resumed = Resumed;
    A.Fallback = Fallback;

    // A stale sidecar from an earlier attempt must not triage this one.
    const std::string TermFile = HeartbeatFile + termSidecarSuffix();
    std::remove(TermFile.c_str());

    Stopwatch AttemptClock;
    proc::Child Child;
    std::string SpawnErr = Child.spawn(Spec);
    KillAttribution Kill;
    if (SpawnErr.empty()) {
      // Watchdog loop: liveness via the heartbeat file's content, a
      // wall cap, and (when armed) the chaos injector.
      std::string LastBeat = slurpSmallFile(HeartbeatFile);
      Stopwatch SinceBeat;
      double ChaosAtS = -1.0;
      if (Opts.Chaos && ChaosKillsLeft > 0)
        ChaosAtS = static_cast<double>(ChaosRng.nextInRange(
                       Opts.ChaosMinMs, Opts.ChaosMaxMs)) /
                   1e3;
      bool Killed = false;
      while (Child.running()) {
        sleepMs(Opts.PollIntervalMs);
        if (Killed)
          continue; // Just wait for the reap.
        std::string Beat = slurpSmallFile(HeartbeatFile);
        if (Beat != LastBeat) {
          LastBeat = Beat;
          SinceBeat.restart();
        }
        if (ChaosAtS >= 0.0 && AttemptClock.seconds() >= ChaosAtS) {
          Kill.Chaos = true;
          --ChaosKillsLeft;
          Child.kill(SIGKILL);
          Killed = true;
        } else if (Opts.JobTimeoutMs != 0 &&
                   AttemptClock.seconds() * 1e3 >=
                       static_cast<double>(Opts.JobTimeoutMs)) {
          Kill.Timeout = true;
          Child.kill(SIGKILL);
          Killed = true;
        } else if (Opts.StallTimeoutMs != 0 &&
                   SinceBeat.seconds() * 1e3 >=
                       static_cast<double>(Opts.StallTimeoutMs)) {
          Kill.Watchdog = true;
          Child.kill(SIGKILL);
          Killed = true;
        }
      }
      const proc::ExitStatus &ExitSt = Child.status();
      A.Class = classifyAttempt(ExitSt, Kill, Child.stderrTail(),
                                slurpSmallFile(TermFile));
      A.ExitCode = ExitSt.Exited ? ExitSt.Code : -1;
      A.Signal = ExitSt.Signalled ? ExitSt.Signal : 0;
      A.StderrTail = Child.stderrTail();
    } else {
      A.Class = AttemptClass::SpawnFailure;
      A.StderrTail = SpawnErr;
    }
    A.ElapsedMs =
        static_cast<std::uint64_t>(AttemptClock.seconds() * 1e3);
    durable::appendLine(journalPath(Opts.WorkDir),
                        attemptLine(Job.id(), A));
    log("job " + Job.id() + " attempt " + std::to_string(AttemptIdx) +
        ": " + attemptClassName(A.Class) +
        (A.Signal != 0 ? " (signal " + std::to_string(A.Signal) + ")"
         : A.ExitCode >= 0 ? " (exit " + std::to_string(A.ExitCode) + ")"
                           : "") +
        ", " + std::to_string(A.ElapsedMs) + " ms");
    Outcome.Attempts.push_back(A);
    ++AttemptIdx;

    if (A.Class == AttemptClass::ExitOk) {
      Outcome.Status = JobStatus::Completed;
      Outcome.Triage = attemptClassName(A.Class);
      break;
    }
    if (A.Class == AttemptClass::ChaosKill) {
      // Externally induced: re-run at the resume stage without spending
      // a retry. The chaos budget itself bounds this loop.
      if (St == Stage::Fresh)
        St = Stage::Resume;
      continue;
    }
    ++RealAttempts;
    bool RetriesLeft = RealAttempts < 1 + Opts.MaxRetries;
    if (!RetriesLeft) {
      if (A.Class == AttemptClass::ExitDegraded) {
        Outcome.Status = JobStatus::CompletedDegraded;
        Outcome.Triage = attemptClassName(A.Class);
      } else {
        Outcome.Status = JobStatus::Failed;
        Outcome.Triage = attemptClassName(A.Class);
      }
      break;
    }
    // Escalate: resume first, then descend the ladder.
    St = RealAttempts == 1 ? Stage::Resume : Stage::Fallback;
    if (A.Class != AttemptClass::ExitDegraded) {
      // Exponential backoff for genuine faults; a degraded exit is a
      // clean handover, retry immediately.
      std::uint64_t Backoff = Opts.BackoffMs
                              << std::min(RealAttempts - 1, 16);
      sleepMs(std::min(Backoff, Opts.BackoffCapMs));
    }
  }
  Outcome.TotalMs = static_cast<std::uint64_t>(JobClock.seconds() * 1e3);
  durable::appendLine(journalPath(Opts.WorkDir), outcomeLine(Outcome));
  log("job " + Job.id() + ": " + jobStatusName(Outcome.Status) +
      (Outcome.Status == JobStatus::Failed ? "(" + Outcome.Triage + ")"
                                           : "") +
      " after " + std::to_string(Outcome.Attempts.size()) + " attempt(s)");
  return Outcome;
}

BatchReport Supervisor::run(const std::vector<JobSpec> &Jobs,
                            std::string &Err) {
  BatchReport Report;
  Err = mkdirs(Opts.WorkDir + "/jobs");
  if (!Err.empty())
    return Report;
  if (Opts.AnalyzePath.empty()) {
    Err = "no ctp-analyze binary configured";
    return Report;
  }

  std::map<std::string, JobOutcome> Finished;
  std::size_t Torn = 0;
  if (!replayJournal(journalPath(Opts.WorkDir), Finished, &Torn)) {
    Err = "cannot read journal '" + journalPath(Opts.WorkDir) + "'";
    return Report;
  }
  if (!Finished.empty())
    log("journal: " + std::to_string(Finished.size()) +
        " finished job(s) replayed" +
        (Torn != 0 ? ", " + std::to_string(Torn) + " torn line(s) ignored"
                   : ""));

  int ChaosKillsLeft = Opts.Chaos ? Opts.ChaosKills : 0;
  for (const JobSpec &Job : Jobs) {
    auto It = Finished.find(Job.id());
    if (It != Finished.end()) {
      Report.Jobs.push_back(It->second);
      log("job " + Job.id() + ": " +
          jobStatusName(It->second.Status) + " (from journal)");
      continue;
    }
    JobOutcome O = runJob(Job, ChaosKillsLeft);
    Finished[Job.id()] = O; // A duplicated matrix cell runs once.
    Report.Jobs.push_back(std::move(O));
  }
  for (const JobOutcome &O : Report.Jobs)
    switch (O.Status) {
    case JobStatus::Completed:
      ++Report.NumCompleted;
      break;
    case JobStatus::CompletedDegraded:
      ++Report.NumDegraded;
      break;
    case JobStatus::Failed:
      ++Report.NumFailed;
      break;
    }
  return Report;
}

//===----------------------------------------------------------------------===//
// Report rendering.
//===----------------------------------------------------------------------===//

namespace {

std::string statusCell(const JobOutcome &O) {
  if (O.Status == JobStatus::Failed)
    return std::string("failed(") + O.Triage + ")";
  return jobStatusName(O.Status);
}

} // namespace

std::string BatchReport::renderTable() const {
  // The job column width depends only on the job ids of the matrix, so
  // a re-invocation over the same matrix renders finished jobs'
  // rows byte-identically.
  std::size_t JobW = std::strlen("job");
  for (const JobOutcome &O : Jobs)
    JobW = std::max(JobW, O.Spec.id().size());
  std::ostringstream S;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "%-*s  %8s  %10s  %s\n",
                static_cast<int>(JobW), "job", "attempts", "total_ms",
                "status");
  S << Buf;
  for (const JobOutcome &O : Jobs) {
    std::snprintf(Buf, sizeof(Buf), "%-*s  %8zu  %10llu  %s\n",
                  static_cast<int>(JobW), O.Spec.id().c_str(),
                  O.Attempts.size(),
                  static_cast<unsigned long long>(O.TotalMs),
                  statusCell(O).c_str());
    S << Buf;
  }
  S << "summary: " << Jobs.size() << " job(s) — " << NumCompleted
    << " completed, " << NumDegraded << " completed-degraded, "
    << NumFailed << " failed\n";
  return S.str();
}

std::string BatchReport::renderJson() const {
  std::ostringstream S;
  S << "{\n  \"jobs\": [\n";
  for (std::size_t I = 0; I < Jobs.size(); ++I) {
    const JobOutcome &O = Jobs[I];
    S << "    {\"job\":\"" << jsonEscape(O.Spec.id()) << "\",\"preset\":\""
      << jsonEscape(O.Spec.Preset) << "\",\"config\":\""
      << jsonEscape(O.Spec.Config) << "\",\"backend\":\""
      << jsonEscape(O.Spec.Backend) << "\",\"status\":\""
      << jobStatusName(O.Status) << "\",\"triage\":\""
      << jsonEscape(O.Triage) << "\",\"attempts\":" << O.Attempts.size()
      << ",\"total_ms\":" << O.TotalMs << "}"
      << (I + 1 < Jobs.size() ? "," : "") << "\n";
  }
  S << "  ],\n  \"summary\": {\"jobs\":" << Jobs.size()
    << ",\"completed\":" << NumCompleted
    << ",\"completed_degraded\":" << NumDegraded
    << ",\"failed\":" << NumFailed << "}\n}\n";
  return S.str();
}

//===----------------------------------------------------------------------===//
// Service supervision.
//===----------------------------------------------------------------------===//

using namespace ctp::service;

std::string service::pidFilePath(const std::string &WorkDir) {
  return WorkDir + "/serve.pid";
}

std::string service::heartbeatFilePath(const std::string &WorkDir) {
  return WorkDir + "/heartbeat";
}

std::uint64_t service::restartBackoffMs(const ServeSupervisorOptions &O,
                                        int ConsecutiveFailures) {
  int Shift = std::max(0, std::min(ConsecutiveFailures - 1, 16));
  std::uint64_t Delay = O.BackoffMs << Shift;
  return std::min(Delay, O.BackoffCapMs);
}

int service::superviseService(const ServeSupervisorOptions &O,
                              void (*Log)(const std::string &, void *),
                              void *LogCtx) {
  auto Note = [&](const std::string &Line) {
    if (Log)
      Log(Line, LogCtx);
  };
  std::string Err = mkdirs(O.WorkDir);
  if (!Err.empty()) {
    Note(Err);
    return 1;
  }
  const std::string Heartbeat = heartbeatFilePath(O.WorkDir);
  const std::string PidFile = pidFilePath(O.WorkDir);
  auto Stopping = [&O] { return O.StopFlag && *O.StopFlag; };

  int Restarts = 0;       // Lives after the first.
  int ConsecFails = 0;    // Fast-failure streak, for the backoff.
  for (int Life = 0;; ++Life) {
    if (Stopping())
      return 0;
    proc::SpawnSpec Spec;
    Spec.Argv = O.Argv;
    Spec.ExtraEnv = {"CTP_HEARTBEAT_FILE=" + Heartbeat,
                     "CTP_HEARTBEAT_INTERVAL_MS=" +
                         std::to_string(O.HeartbeatIntervalMs)};
    Spec.StdoutPath = O.WorkDir + "/serve." + std::to_string(Life) + ".out";
    Spec.StderrPath = O.WorkDir + "/serve." + std::to_string(Life) + ".err";

    proc::Child Child;
    std::string SpawnErr = Child.spawn(Spec);
    if (!SpawnErr.empty()) {
      // Spawning is local work; its failure is a crash like any other.
      Note("life " + std::to_string(Life) + ": spawn failed: " + SpawnErr);
    } else {
      // The pid file always names the *current* life, so an external
      // chaos harness can kill precisely the daemon the supervisor is
      // watching right now.
      const std::string PidLine = std::to_string(Child.pid()) + "\n";
      durable::writeFileSynced(PidFile, PidLine.data(), PidLine.size());
      Note("life " + std::to_string(Life) + ": pid " +
           std::to_string(Child.pid()));

      Stopwatch LifeClock;
      std::string LastBeat = slurpSmallFile(Heartbeat);
      Stopwatch SinceBeat;
      bool KilledForStall = false, ForwardedStop = false;
      Stopwatch SinceStop;
      while (Child.running()) {
        sleepMs(O.PollIntervalMs);
        if (Stopping() && !ForwardedStop) {
          Child.kill(SIGTERM);
          ForwardedStop = true;
          SinceStop.restart();
        }
        if (ForwardedStop) {
          // Grace period, then the hard way; either way no restart.
          if (SinceStop.seconds() * 1e3 >= 2000)
            Child.kill(SIGKILL);
          continue;
        }
        if (KilledForStall)
          continue; // Wait for the reap.
        std::string Beat = slurpSmallFile(Heartbeat);
        if (Beat != LastBeat) {
          LastBeat = Beat;
          SinceBeat.restart();
        }
        if (O.StallTimeoutMs != 0 &&
            SinceBeat.seconds() * 1e3 >=
                static_cast<double>(O.StallTimeoutMs)) {
          Note("life " + std::to_string(Life) +
               ": heartbeat stalled; killing");
          Child.kill(SIGKILL);
          KilledForStall = true;
        }
      }
      const proc::ExitStatus &St = Child.status();
      if (ForwardedStop)
        return St.Exited ? St.Code : 0;
      if (St.Exited && St.Code == 0) {
        Note("life " + std::to_string(Life) + ": clean exit");
        return 0;
      }
      Note("life " + std::to_string(Life) + ": " +
           (St.Signalled ? "killed by signal " + std::to_string(St.Signal)
                         : "exit " + std::to_string(St.Code)) +
           " after " +
           std::to_string(
               static_cast<std::uint64_t>(LifeClock.seconds() * 1e3)) +
           " ms");
      // A life that stayed up long enough proves the daemon itself is
      // healthy; only rapid-fire failures escalate the backoff.
      if (LifeClock.seconds() * 1e3 >=
          static_cast<double>(O.StableResetMs))
        ConsecFails = 1;
      else
        ++ConsecFails;
    }
    if (!SpawnErr.empty())
      ++ConsecFails;

    ++Restarts;
    if (O.MaxRestarts >= 0 && Restarts > O.MaxRestarts) {
      Note("restart budget spent; giving up");
      return 1;
    }
    std::uint64_t Delay = restartBackoffMs(O, std::max(1, ConsecFails));
    Note("restarting in " + std::to_string(Delay) + " ms");
    // Sleep in poll-sized slices so a stop request during backoff is
    // honoured promptly.
    Stopwatch Backoff;
    while (Backoff.seconds() * 1e3 < static_cast<double>(Delay) &&
           !Stopping())
      sleepMs(std::min<std::uint64_t>(O.PollIntervalMs, 50));
  }
}
