//===- support/Subprocess.h - fork/exec children with rlimits ---*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-isolation primitive under the batch supervisor: spawn one
/// child with hard kernel resource caps (setrlimit) and captured stderr,
/// poll it without blocking, and decode how it ended. Everything the
/// supervisor's triage needs — exit code vs. fatal signal, the last bytes
/// of stderr — is collected here; *interpreting* it (watchdog? rlimit?
/// chaos?) is support/Supervisor.h's business.
///
/// The caps are enforced by the kernel, not cooperatively: RLIMIT_AS
/// bounds address space (an allocation beyond it fails, which a C++
/// child surfaces as std::bad_alloc → std::terminate → SIGABRT) and
/// RLIMIT_CPU bounds CPU seconds (SIGXCPU at the soft limit). That makes
/// the supervisor robust against children whose own budget machinery is
/// broken — the layer below the cooperative governor of support/Budget.h.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_SUBPROCESS_H
#define CTP_SUPPORT_SUBPROCESS_H

#include <cstdint>
#include <string>
#include <vector>

#include <sys/types.h>

namespace ctp {
namespace proc {

/// What to run and under which caps.
struct SpawnSpec {
  /// Argv[0] is the executable path (execv semantics, no PATH search).
  std::vector<std::string> Argv;
  /// Extra "KEY=VALUE" entries appended to the inherited environment.
  std::vector<std::string> ExtraEnv;
  /// File receiving the child's stdout; empty discards it (/dev/null).
  std::string StdoutPath;
  /// File receiving a full copy of the child's stderr; empty keeps only
  /// the in-memory tail. stderr is always piped to the parent.
  std::string StderrPath;
  /// RLIMIT_AS in bytes; 0 = unlimited.
  std::uint64_t MemLimitBytes = 0;
  /// RLIMIT_CPU in seconds; 0 = unlimited.
  std::uint64_t CpuLimitSeconds = 0;
  /// Bytes of stderr kept in memory for triage records.
  std::size_t StderrTailBytes = 2048;
};

/// How a reaped child ended. Exactly one of Exited/Signalled is set.
struct ExitStatus {
  bool Exited = false;
  int Code = 0; ///< Exit code when Exited (127 = exec failure).
  bool Signalled = false;
  int Signal = 0; ///< Fatal signal number when Signalled.
};

/// One spawned child. Move-only; the destructor SIGKILLs and reaps a
/// child that is still running so a supervisor bug cannot leak orphans.
class Child {
public:
  Child() = default;
  ~Child();
  Child(Child &&O) noexcept;
  Child &operator=(Child &&O) noexcept;
  Child(const Child &) = delete;
  Child &operator=(const Child &) = delete;

  /// Forks and execs \p Spec. \returns an empty string on success, else
  /// a diagnostic (a child-side exec failure is NOT reported here — it
  /// surfaces as exit code 127 when the child is reaped).
  std::string spawn(const SpawnSpec &Spec);

  /// Non-blocking liveness check: drains pending stderr, reaps the child
  /// if it has ended. \returns true while the child is still running.
  bool running();

  /// Blocks until the child ends (draining stderr throughout).
  void wait();

  /// Sends \p Sig to the child; no-op once it has been reaped.
  void kill(int Sig);

  /// Valid once running() has returned false.
  const ExitStatus &status() const { return Status; }

  /// The last SpawnSpec::StderrTailBytes bytes of the child's stderr.
  const std::string &stderrTail() const { return Tail; }

  pid_t pid() const { return Pid; }
  bool spawned() const { return Pid > 0; }

private:
  void pumpStderr();
  void closeErrFd();

  pid_t Pid = -1;
  int ErrFd = -1;
  bool Reaped = false;
  ExitStatus Status;
  std::string Tail;
  std::size_t TailCap = 2048;
  std::string StderrPath;
};

} // namespace proc
} // namespace ctp

#endif // CTP_SUPPORT_SUBPROCESS_H
