//===- support/ExitCodes.h - Shared tool exit-code protocol -----*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exit-code protocol shared by every command-line tool in this
/// project (ctp-analyze, ctp-lint, ctp-verify). Orchestrating services key off these
/// values — 3 in particular marks "useful but degraded", which scripts
/// such as the crash-resume loop treat as "run me again" — so the
/// protocol lives in one header instead of per-tool enums that could
/// drift. Documented once in README.md ("Exit codes").
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_EXITCODES_H
#define CTP_SUPPORT_EXITCODES_H

namespace ctp {

enum ExitCode : int {
  /// Converged at the requested configuration; for ctp-lint, additionally
  /// no warning-severity findings.
  ExitOk = 0,
  /// Runtime error (unreadable facts, invalid configuration, I/O failure).
  ExitError = 1,
  /// Command-line usage error.
  ExitUsage = 2,
  /// Completed degraded: budget-truncated results, or a fallback rung
  /// below the requested configuration answered. With checkpointing
  /// enabled this also means "a snapshot was left; re-invoke with
  /// --resume to continue".
  ExitDegraded = 3,
  /// ctp-lint only: converged with at least one warning-severity finding.
  ExitFindings = 4,
  /// ctp-verify only: all requested checks ran, at least one failed. The
  /// verdict report names the first counterexample per failing check.
  /// Distinct from ExitError (1), which means the verifier itself could
  /// not run (unreadable facts, bad flags) and proved nothing either way.
  ExitVerifyFailed = 5,
};

/// The exit code of a ctp-lint run that completed its checks. Precedence:
/// degraded (3) wins over warnings (4). A degraded run's findings may be
/// incomplete, so "there are warnings" is not a trustworthy summary of it
/// — and orchestrators treat 3 as "re-run me (with --resume / a bigger
/// budget)", which is the actionable signal; the warnings are still in
/// the report either way. A run that is neither degraded nor warned is
/// clean (0).
inline ExitCode lintExitCode(bool Degraded, bool HasWarnings) {
  if (Degraded)
    return ExitDegraded;
  return HasWarnings ? ExitFindings : ExitOk;
}

} // namespace ctp

#endif // CTP_SUPPORT_EXITCODES_H
