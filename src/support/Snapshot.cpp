//===- support/Snapshot.cpp - Versioned sectioned snapshot files ----------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/Snapshot.h"

#include "support/Durability.h"
#include "support/FaultInjection.h"

#include <cstdio>
#include <fstream>

using namespace ctp;
using namespace ctp::snapshot;

namespace {

constexpr std::uint8_t Magic[8] = {'C', 'T', 'P', 'S', 'N', 'A', 'P', 0};
constexpr std::uint64_t FnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t FnvPrime = 0x100000001b3ULL;

} // namespace

std::uint64_t snapshot::fnv1a(const std::uint8_t *Data, std::size_t N) {
  std::uint64_t H = FnvOffset;
  for (std::size_t I = 0; I < N; ++I) {
    H ^= Data[I];
    H *= FnvPrime;
  }
  return H;
}

const Section *File::find(std::uint32_t Tag) const {
  for (const Section &S : Sections)
    if (S.Tag == Tag)
      return &S;
  return nullptr;
}

std::vector<std::uint8_t> snapshot::encode(const File &F) {
  std::vector<std::uint8_t> Out(Magic, Magic + sizeof(Magic));
  auto PutU32 = [&Out](std::uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Out.push_back(static_cast<std::uint8_t>(V >> (8 * I)));
  };
  auto PutU64 = [&Out](std::uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Out.push_back(static_cast<std::uint8_t>(V >> (8 * I)));
  };
  PutU32(FormatVersion);
  PutU32(static_cast<std::uint32_t>(F.Sections.size()));
  for (const Section &S : F.Sections) {
    PutU32(S.Tag);
    PutU64(S.Bytes.size());
    PutU64(fnv1a(S.Bytes.data(), S.Bytes.size()));
    Out.insert(Out.end(), S.Bytes.begin(), S.Bytes.end());
  }
  PutU32(F.T.Term);
  PutU64(F.T.Iterations);
  PutU64(F.T.Derivations);
  PutU64(F.T.PendingWork);
  PutU64(fnv1a(Out.data(), Out.size()));
  return Out;
}

std::string snapshot::decode(const std::uint8_t *Data, std::size_t N,
                             File &Out) {
  Out = File();
  // Distinguish the two sub-header shapes: a zero-byte file is the
  // signature of a crash between open/truncate and the first write (or
  // of an interrupted copy), while a short-but-nonempty header usually
  // means a torn write. Both are unrecoverable, but the operator's next
  // move differs — so say which one it is and what to do.
  if (N == 0)
    return "snapshot is empty (0 bytes): the writer crashed before any "
           "bytes landed or the file was created by something else; "
           "delete it and rerun cold";
  if (N < sizeof(Magic) + 8)
    return "snapshot truncated before the header ended (" +
           std::to_string(N) + " of " +
           std::to_string(sizeof(Magic) + 8) +
           " header bytes): likely a torn write; delete it and rerun "
           "cold";
  for (std::size_t I = 0; I < sizeof(Magic); ++I)
    if (Data[I] != Magic[I])
      return "not a snapshot file (bad magic)";
  // Whole-file checksum first: it covers everything, so any torn or
  // bit-flipped file fails here with one diagnostic.
  ByteReader Tail(Data + N - 8, 8);
  std::uint64_t StoredFileSum = Tail.u64();
  if (fnv1a(Data, N - 8) != StoredFileSum)
    return "snapshot corrupt (file checksum mismatch)";

  ByteReader R(Data + sizeof(Magic), N - sizeof(Magic) - 8);
  std::uint32_t Version = R.u32();
  if (R.ok() && Version != FormatVersion)
    return "snapshot format version " + std::to_string(Version) +
           " unsupported (expected " + std::to_string(FormatVersion) + ")";
  std::uint32_t NumSections = R.u32();
  for (std::uint32_t S = 0; R.ok() && S < NumSections; ++S) {
    std::uint32_t Tag = R.u32();
    std::uint64_t Len = R.u64();
    std::uint64_t Sum = R.u64();
    if (!R.ok() || Len > R.remaining())
      return "snapshot truncated (section " + std::to_string(S) +
             " overruns the file)";
    Section Sec;
    Sec.Tag = Tag;
    if (!R.rawBytes(Sec.Bytes, static_cast<std::size_t>(Len)))
      return "snapshot truncated (section " + std::to_string(S) +
             " payload short)";
    if (fnv1a(Sec.Bytes.data(), Sec.Bytes.size()) != Sum)
      return "snapshot corrupt (checksum mismatch in section tag " +
             std::to_string(Tag) + ")";
    Out.Sections.push_back(std::move(Sec));
  }
  Out.T.Term = R.u32();
  Out.T.Iterations = R.u64();
  Out.T.Derivations = R.u64();
  Out.T.PendingWork = R.u64();
  if (!R.atEnd())
    return "snapshot malformed (trailing or missing bytes)";
  return "";
}

std::string snapshot::writeFile(const File &F, const std::string &Path) {
  std::vector<std::uint8_t> Bytes = encode(F);

  bool SkipRename = false;
  if (auto Fault = fault::takeSnapshotFault()) {
    switch (*Fault) {
    case fault::SnapshotFault::TornWrite:
      // A little over half the bytes land; the rest never make it.
      Bytes.resize(Bytes.size() / 2 + 1);
      break;
    case fault::SnapshotFault::ShortWrite:
      if (Bytes.size() > 5)
        Bytes.resize(Bytes.size() - 5);
      break;
    case fault::SnapshotFault::BitFlip:
      Bytes[Bytes.size() / 2] ^= 0x10;
      break;
    case fault::SnapshotFault::CrashBeforeRename:
      SkipRename = true;
      break;
    }
  }

  // fsync the tmp bytes before the rename publishes them, and the
  // containing directory after it: a rename whose directory entry never
  // reached disk silently vanishes on power loss, which would leave the
  // *previous* snapshot — safe, but a resume setback the caller was told
  // had been avoided.
  std::string Tmp = Path + ".tmp";
  std::string Err = durable::writeFileSynced(Tmp, Bytes.data(), Bytes.size());
  if (!Err.empty())
    return Err;
  if (SkipRename)
    return ""; // Simulated crash: the destination keeps its old content.
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0)
    return "rename '" + Tmp + "' -> '" + Path + "' failed";
  return durable::syncDirOf(Path);
}

std::string snapshot::readFile(const std::string &Path, File &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In.is_open())
    return "no snapshot at '" + Path + "'";
  std::vector<std::uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                                  std::istreambuf_iterator<char>());
  if (!In.good() && !In.eof())
    return "read of '" + Path + "' failed";
  return decode(Bytes.data(), Bytes.size(), Out);
}
