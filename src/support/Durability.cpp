//===- support/Durability.cpp - fsync helpers and durable appends ---------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/Durability.h"

#include "support/Posix.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace ctp;

namespace {

std::string errnoDiag(const std::string &What, const std::string &Path) {
  return What + " '" + Path + "' failed: " + std::strerror(errno);
}

} // namespace

std::string durable::syncDirOf(const std::string &Path) {
  std::string::size_type Slash = Path.rfind('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int Fd = posix::openRetry(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return errnoDiag("open directory", Dir);
  int Rc = posix::fsyncRetry(Fd);
  int SavedErrno = errno;
  posix::closeQuiet(Fd);
  // Directories on some filesystems reject fsync with EINVAL; there is
  // no stronger guarantee to be had there, so it is not an error.
  if (Rc != 0 && SavedErrno != EINVAL) {
    errno = SavedErrno;
    return errnoDiag("fsync directory", Dir);
  }
  return "";
}

std::string durable::appendLine(const std::string &Path,
                                const std::string &Line) {
  struct stat St;
  bool Existed = ::stat(Path.c_str(), &St) == 0;
  int Fd = posix::openRetry(Path.c_str(), O_WRONLY | O_CREAT | O_APPEND);
  if (Fd < 0)
    return errnoDiag("open", Path);
  std::string Buf = Line;
  Buf += '\n';
  if (!posix::writeFull(Fd, Buf.data(), Buf.size())) {
    std::string Err = errnoDiag("append to", Path);
    posix::closeQuiet(Fd);
    return Err;
  }
  if (posix::fsyncRetry(Fd) != 0) {
    std::string Err = errnoDiag("fsync", Path);
    posix::closeQuiet(Fd);
    return Err;
  }
  if (posix::closeQuiet(Fd) != 0)
    return errnoDiag("close", Path);
  if (!Existed)
    return syncDirOf(Path);
  return "";
}

std::string durable::writeFileSynced(const std::string &Path,
                                     const void *Data, std::size_t Size) {
  int Fd = posix::openRetry(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC);
  if (Fd < 0)
    return errnoDiag("open", Path);
  if (!posix::writeFull(Fd, Data, Size)) {
    std::string Err = errnoDiag("write to", Path);
    posix::closeQuiet(Fd);
    return Err;
  }
  if (posix::fsyncRetry(Fd) != 0) {
    std::string Err = errnoDiag("fsync", Path);
    posix::closeQuiet(Fd);
    return Err;
  }
  if (posix::closeQuiet(Fd) != 0)
    return errnoDiag("close", Path);
  return "";
}
