//===- support/Tsv.cpp - Tab-separated-value helpers ----------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/Tsv.h"

#include <fstream>

using namespace ctp;

std::vector<std::string> ctp::splitTsvLine(const std::string &Line) {
  std::vector<std::string> Fields;
  std::string::size_type Start = 0;
  while (true) {
    std::string::size_type Tab = Line.find('\t', Start);
    if (Tab == std::string::npos) {
      Fields.push_back(Line.substr(Start));
      return Fields;
    }
    Fields.push_back(Line.substr(Start, Tab - Start));
    Start = Tab + 1;
  }
}

std::string ctp::joinTsvLine(const std::vector<std::string> &Fields) {
  std::string Out;
  for (std::size_t I = 0; I < Fields.size(); ++I) {
    if (I != 0)
      Out += '\t';
    Out += Fields[I];
  }
  return Out;
}

namespace {

/// Pre-split validation shared by both readers. \returns an empty string
/// for an acceptable line, else the rejection reason.
std::string checkRawLine(const std::string &Line) {
  if (Line.size() > MaxTsvLineBytes)
    return "line exceeds " + std::to_string(MaxTsvLineBytes) +
           " bytes (got " + std::to_string(Line.size()) + ")";
  if (Line.find('\0') != std::string::npos)
    return "line contains a NUL byte";
  return "";
}

} // namespace

bool ctp::readTsvFile(const std::string &Path,
                      std::vector<std::vector<std::string>> &Rows) {
  std::ifstream In(Path);
  if (!In.is_open())
    return false;
  std::string Line;
  while (std::getline(In, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue;
    if (!checkRawLine(Line).empty())
      continue;
    Rows.push_back(splitTsvLine(Line));
  }
  return true;
}

bool ctp::readTsvLines(const std::string &Path, std::vector<TsvLine> &Rows,
                       std::vector<TsvReject> *Rejects) {
  std::ifstream In(Path);
  if (!In.is_open())
    return false;
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (Line.empty())
      continue;
    std::string Reason = checkRawLine(Line);
    if (!Reason.empty()) {
      if (Rejects)
        Rejects->push_back({LineNo, std::move(Reason)});
      continue;
    }
    Rows.push_back({splitTsvLine(Line), LineNo});
  }
  return true;
}

bool ctp::writeTsvFile(const std::string &Path,
                       const std::vector<std::vector<std::string>> &Rows) {
  std::ofstream Out(Path);
  if (!Out.is_open())
    return false;
  for (const auto &Row : Rows)
    Out << joinTsvLine(Row) << '\n';
  return true;
}
