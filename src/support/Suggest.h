//===- support/Suggest.h - Did-you-mean suggestions -------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared did-you-mean support for command-line flag values. Every tool
/// that accepts a closed vocabulary (--config names, --checks lists,
/// preset names) rejects unknown values; suggesting the closest known one
/// turns "error: unknown config '2-object'" into an actionable message.
/// One implementation here so the tools cannot drift in what "close"
/// means.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_SUGGEST_H
#define CTP_SUPPORT_SUGGEST_H

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

namespace ctp {
namespace support {

/// Levenshtein edit distance, capped: stops counting past \p Cap (returns
/// Cap + 1) so wildly different candidates stay cheap to dismiss.
inline std::size_t editDistance(const std::string &A, const std::string &B,
                                std::size_t Cap) {
  const std::size_t N = A.size(), M = B.size();
  if (N > M)
    return editDistance(B, A, Cap);
  if (M - N > Cap)
    return Cap + 1;
  std::vector<std::size_t> Row(N + 1);
  for (std::size_t I = 0; I <= N; ++I)
    Row[I] = I;
  for (std::size_t J = 1; J <= M; ++J) {
    std::size_t Prev = Row[0];
    Row[0] = J;
    std::size_t Best = Row[0];
    for (std::size_t I = 1; I <= N; ++I) {
      std::size_t Cur = std::min(
          {Row[I] + 1, Row[I - 1] + 1,
           Prev + (A[I - 1] == B[J - 1] ? 0 : 1)});
      Prev = Row[I];
      Row[I] = Cur;
      Best = std::min(Best, Cur);
    }
    if (Best > Cap)
      return Cap + 1;
  }
  return std::min(Row[N], Cap + 1);
}

/// The candidate closest to \p Name within an edit-distance budget of
/// max(2, |Name| / 3), or "" when nothing is plausibly close. Ties go to
/// the earliest candidate, so the result is deterministic in candidate
/// order.
inline std::string closestMatch(const std::string &Name,
                                const std::vector<std::string> &Candidates) {
  const std::size_t Cap = std::max<std::size_t>(2, Name.size() / 3);
  std::string Best;
  std::size_t BestDist = Cap + 1;
  for (const std::string &C : Candidates) {
    std::size_t D = editDistance(Name, C, Cap);
    if (D < BestDist) {
      BestDist = D;
      Best = C;
    }
  }
  return Best;
}

/// "did you mean 'X'?" when a close candidate exists, else "". Appended
/// verbatim to unknown-value diagnostics.
inline std::string didYouMean(const std::string &Name,
                              const std::vector<std::string> &Candidates) {
  std::string Best = closestMatch(Name, Candidates);
  return Best.empty() ? std::string()
                      : " (did you mean '" + Best + "'?)";
}

} // namespace support
} // namespace ctp

#endif // CTP_SUPPORT_SUGGEST_H
