//===- support/Verdict.cpp - Verification verdict report ------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/Verdict.h"

#include <algorithm>

using namespace ctp;
using namespace ctp::verdict;

const char *verdict::statusName(Status S) {
  switch (S) {
  case Status::Pass:
    return "pass";
  case Status::Fail:
    return "fail";
  case Status::Skip:
    return "skip";
  }
  return "unknown";
}

void Report::add(const std::string &Cell, const std::string &Name,
                 Status St, const std::string &Detail) {
  Items.push_back({Cell, Name, St, Detail});
}

bool Report::allPassed() const { return numFailed() == 0; }

std::size_t Report::numFailed() const {
  return static_cast<std::size_t>(
      std::count_if(Items.begin(), Items.end(), [](const Check &C) {
        return C.St == Status::Fail;
      }));
}

std::size_t Report::numSkipped() const {
  return static_cast<std::size_t>(
      std::count_if(Items.begin(), Items.end(), [](const Check &C) {
        return C.St == Status::Skip;
      }));
}

namespace {

/// TSV cells must stay single-line and tab-free; counterexample renderings
/// embed names that never contain either, but flatten defensively.
std::string flattened(const std::string &S) {
  std::string Out = S;
  for (char &C : Out)
    if (C == '\t' || C == '\n' || C == '\r')
      C = ' ';
  return Out;
}

} // namespace

std::string Report::renderTsv() const {
  std::string Out;
  for (const Check &C : Items) {
    Out += flattened(C.Name);
    Out += '\t';
    Out += flattened(C.Cell);
    Out += '\t';
    Out += statusName(C.St);
    Out += '\t';
    Out += flattened(C.Detail);
    Out += '\n';
  }
  Out += "summary\t-\t";
  Out += numFailed() == 0 ? "pass" : "fail";
  Out += '\t';
  Out += std::to_string(Items.size() - numFailed() - numSkipped()) +
         " passed, " + std::to_string(numFailed()) + " failed, " +
         std::to_string(numSkipped()) + " skipped";
  Out += '\n';
  return Out;
}

std::string Report::renderHuman() const {
  std::size_t NameW = 4, CellW = 4;
  for (const Check &C : Items) {
    NameW = std::max(NameW, C.Name.size());
    CellW = std::max(CellW, C.Cell.size());
  }
  std::string Out;
  for (const Check &C : Items) {
    Out += "  ";
    Out += C.Name;
    Out.append(NameW - C.Name.size() + 2, ' ');
    Out += C.Cell.empty() ? "-" : C.Cell;
    Out.append(CellW - std::max<std::size_t>(C.Cell.size(), 1) + 2, ' ');
    Out += statusName(C.St);
    if (!C.Detail.empty()) {
      Out += "  ";
      Out += flattened(C.Detail);
    }
    Out += '\n';
  }
  Out += "verdict: ";
  Out += numFailed() == 0 ? "PASS" : "FAIL";
  Out += " (" +
         std::to_string(Items.size() - numFailed() - numSkipped()) +
         " passed, " + std::to_string(numFailed()) + " failed, " +
         std::to_string(numSkipped()) + " skipped)\n";
  return Out;
}
