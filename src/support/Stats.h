//===- support/Stats.h - Timing and summary statistics ----------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A steady-clock stopwatch plus the geometric-mean helper used to
/// reproduce the summary rows of the paper's Figure 6.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SUPPORT_STATS_H
#define CTP_SUPPORT_STATS_H

#include <cassert>
#include <chrono>
#include <cmath>
#include <vector>

namespace ctp {

/// Wall-clock stopwatch over std::chrono::steady_clock.
class Stopwatch {
public:
  Stopwatch() : Start(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    auto Now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(Now - Start).count();
  }

  void restart() { Start = std::chrono::steady_clock::now(); }

private:
  std::chrono::steady_clock::time_point Start;
};

/// Progress counters shared by both evaluation back-ends, reported with
/// every result so a budget-truncated run can say how far it got. For the
/// specialized solver Iterations counts worklist pops; for the Datalog
/// engine it counts semi-naive rounds. PendingWork is the number of
/// queued items (worklist entries / delta tuples) left unprocessed when
/// evaluation stopped — zero at a converged fixpoint.
struct EngineProgress {
  std::size_t Iterations = 0;
  std::size_t Derivations = 0;
  std::size_t PendingWork = 0;
};

/// Geometric mean of a list of positive ratios.
///
/// Figure 6's summary rows report the geometric mean of per-benchmark
/// reductions; the paper computes the mean over ratios (new / old), so this
/// helper takes ratios and the caller converts to a percentage decrease.
inline double geometricMean(const std::vector<double> &Ratios) {
  assert(!Ratios.empty() && "geometric mean of an empty sample");
  double LogSum = 0.0;
  for (double R : Ratios) {
    assert(R > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(R);
  }
  return std::exp(LogSum / static_cast<double>(Ratios.size()));
}

} // namespace ctp

#endif // CTP_SUPPORT_STATS_H
