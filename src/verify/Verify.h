//===- verify/Verify.h - Fixpoint certification & differential --*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verification subsystem: a static-analysis pass over a *solved*
/// Results/FactDB pair that certifies the fixpoint and cross-validates
/// the two evaluation engines. It is deliberately engine-independent —
/// every check consumes only the declarative artifacts (relations, the
/// interned domain, the provenance graph, snapshots), never solver
/// internals — so it survives solver rewrites unchanged and gates them.
///
/// Checks:
///  - closure: naive re-application of every Figure 3 rule over the
///    completed relations; any rule instance whose conclusion is missing
///    is a counterexample (the "no rule can still fire" half of being a
///    fixpoint). Catches dropped tuples and under-derivation.
///  - support: walks the first-derivation provenance graph (native
///    back-end only) and re-validates every recorded edge — premises
///    exist, are well-founded, ground out in input facts, and the
///    conclusion recomputes to the recorded transformation — plus the
///    converse: every relation tuple has a recorded derivation. Catches
///    extra or mutated tuples (the "everything derived is justified"
///    half).
///  - differential: canonical serialization equality between back-ends,
///    ladder monotonicity, CFL-oracle containment and demand-driven spot
///    checks, and snapshot save -> restore -> re-solve identity.
///
/// What this does and does not prove: closure + support certify that the
/// produced relations are exactly the least fixpoint of the implemented
/// rules over the given facts — not that the rules faithfully transcribe
/// the paper (that is what the independent CFL oracle and the
/// cross-engine differential approximate).
///
//===----------------------------------------------------------------------===//

#ifndef CTP_VERIFY_VERIFY_H
#define CTP_VERIFY_VERIFY_H

#include "analysis/Results.h"
#include "ctx/Config.h"
#include "facts/FactDB.h"
#include "support/Verdict.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ctp {
namespace verify {

/// Options of the closure check.
struct ClosureOptions {
  /// Accept a missing pts conclusion when a present pts fact for the same
  /// (variable, heap) pair subsumes its transformation — the closure
  /// notion that matches a CollapseSubsumedPts run. Transformer-string
  /// abstraction only; ignored otherwise. The driver verifies exact
  /// closure (it solves with collapsing off).
  bool ModuloSubsumption = false;
};

/// Certifies that no deduction rule can derive a tuple missing from \p R
/// (R is mutable only because domain operations intern/memoize). Fails
/// immediately when the run did not converge — closure of a truncated
/// result is undefined. On failure \p Counterexample names the rule and
/// the derivable-but-absent tuple.
bool checkClosure(const facts::FactDB &DB, analysis::Results &R,
                  const ClosureOptions &Opts, std::string &Counterexample);

/// Certifies the provenance graph of \p R (requires R.Prov): every
/// recorded node's fact is present in its relation, its premises are
/// recorded, well-founded, and grounded in input facts, and re-applying
/// the recorded rule to the recorded premises reproduces the conclusion
/// exactly; conversely (unless the graph is truncated) every relation
/// tuple has a recorded derivation. On failure \p Counterexample names
/// the offending node or tuple.
bool checkSupport(const facts::FactDB &DB, analysis::Results &R,
                  std::string &Counterexample);

/// Renders \p R as sorted, engine-independent lines: entity ids resolve
/// through \p DB's name tables and transformation/context ids through the
/// result's own domain, so two runs agree exactly when their relations
/// hold the same values — regardless of interning order. The byte-level
/// currency of every differential comparison.
std::vector<std::string> canonicalLines(const facts::FactDB &DB,
                                        const analysis::Results &R);

/// Compares two canonical serializations. On mismatch \p Counterexample
/// is the first line of the symmetric difference, labelled with the side
/// (\p ALabel / \p BLabel) that owns it.
bool diffLines(const std::vector<std::string> &A, const std::string &ALabel,
               const std::vector<std::string> &B, const std::string &BLabel,
               std::string &Counterexample);

/// Snapshot save -> restore -> re-solve identity for one cell. Solves \p
/// Cfg over \p DB, leaves a converged snapshot in \p Dir, probes and
/// resumes it, and requires the resumed result to serialize identically;
/// the snapshot is removed on the way out. A snapshot already present in
/// \p Dir is verified instead of overwritten — if it is stale (the facts
/// or configuration changed since it was written) the check fails with
/// the probe's diagnostic.
bool checkSnapshotRoundTrip(const facts::FactDB &DB, const ctx::Config &Cfg,
                            bool UseDatalog, const std::string &Dir,
                            std::string &Counterexample);

/// What verifyFactDB runs.
struct VerifyOptions {
  ctx::Abstraction Abs = ctx::Abstraction::TransformerString;
  /// Configuration names (ctx::configNames vocabulary), most precise
  /// first; empty selects the full ladder.
  std::vector<std::string> Configs;
  /// Back-ends to certify.
  bool Native = true;
  bool Datalog = true;
  /// Check toggles.
  bool Closure = true;
  bool Support = true;
  bool Differential = true;
  bool Monotonic = true;
  bool Oracle = true;
  bool Snapshot = true;
  /// Demand-driven spot checks per configuration.
  std::size_t Samples = 8;
  std::uint64_t Seed = 1;
  /// Directory for the snapshot round-trip check; the check is skipped
  /// when empty.
  std::string SnapshotDir;
};

/// Runs every enabled check over \p DB, appending one row per check to
/// \p Report with cells prefixed "\p CellPrefix/". \returns true when no
/// appended row failed.
bool verifyFactDB(const facts::FactDB &DB, const std::string &CellPrefix,
                  const VerifyOptions &Opts, verdict::Report &Report);

} // namespace verify
} // namespace ctp

#endif // CTP_VERIFY_VERIFY_H
