//===- verify/Support.cpp - Derivation-support certification --------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The dual of closure: closure proves nothing derivable is missing; this
// pass proves everything present is justified. It replays the recorded
// provenance graph as a certificate — every node must name a concrete
// rule instance whose derived premises are recorded (and well-founded:
// premise node ids strictly precede the conclusion's, so certificates
// cannot be circular), whose input-fact premises exist in the FactDB, and
// whose conclusion, recomputed through the domain operations, reproduces
// the stored transformation id exactly. The converse direction requires
// every relation tuple to carry such a certificate (skipped only when the
// recorder hit its edge cap and marked itself truncated).
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleTable.h"
#include "ctx/CutShortcut.h"
#include "verify/Internal.h"
#include "verify/Verify.h"

#include <algorithm>

using namespace ctp;
using namespace ctp::analysis;
using namespace ctp::verify;
using namespace ctp::verify::detail;
using ctx::CtxtVec;
using ctx::TransformId;
using facts::FactDB;

namespace {

constexpr std::uint32_t Invalid = ProvenanceGraph::InvalidNode;

class SupportChecker {
public:
  SupportChecker(const FactDB &DB, Results &R, std::string &CE)
      : DB(DB), R(R), G(*R.Prov), In(DB), View(DB, R),
        M(R.Config.MethodDepth), H(R.Config.HeapDepth), CE(CE) {
    // SHORTCUT certificates ground in the cut plan; recompute it from
    // the inputs. For any other mode the plan stays empty, so a stray
    // Shortcut node in the graph fails its grounding check below.
    if (R.Config.SolveMode == ctx::Mode::CutShortcut)
      Plan = ctx::buildCutShortcutPlan(DB);
  }

  bool run() {
    for (std::uint32_t N = 0; N < G.size(); ++N)
      if (!checkNode(N))
        return false;
    if (!G.truncated())
      return checkCoverage();
    return true;
  }

private:
  bool fail(std::uint32_t N, const std::string &Why) {
    CE = "node " + std::to_string(N) + " " +
         renderFact(DB, R, G.relOf(N), G.factOf(N)) + " [" +
         ruleName(G.edgeOf(N).Rule) + "]: " + Why;
    return false;
  }

  /// Premise \p P of node \p N must be recorded, well-founded, and in
  /// relation \p Rel; its key lands in \p K.
  bool premise(std::uint32_t N, std::uint32_t P, ProvRel Rel, FactKey &K) {
    if (P == Invalid)
      return fail(N, "missing premise node");
    if (P >= N)
      return fail(N, "premise node " + std::to_string(P) +
                         " is not well-founded");
    if (G.relOf(P) != Rel)
      return fail(N, std::string("premise node is in relation ") +
                         relName(G.relOf(P)) + ", expected " + relName(Rel));
    K = G.factOf(P);
    return true;
  }

  bool expectT(std::uint32_t N, std::optional<TransformId> Got,
               TransformId Want) {
    if (!Got)
      return fail(N, "recomputed transformation is bottom");
    if (*Got != Want)
      return fail(N, "recomputed transformation " + R.Dom->toString(*Got) +
                         " differs from recorded " + R.Dom->toString(Want));
    return true;
  }

  bool checkNode(std::uint32_t N) {
    const ProvRel Rel = G.relOf(N);
    const FactKey &K = G.factOf(N);
    const ProvenanceGraph::Edge &E = G.edgeOf(N);

    std::size_t NumRules;
    const RuleDesc *Table = ruleTable(NumRules);
    const RuleDesc *Desc = nullptr;
    for (std::size_t I = 0; I < NumRules; ++I)
      if (Table[I].Rule == E.Rule)
        Desc = &Table[I];
    if (!Desc)
      return fail(N, "unknown rule");
    if (Rel != Desc->Conclusion)
      return fail(N, std::string("rule concludes into ") +
                         relName(Desc->Conclusion) + ", node is in " +
                         relName(Rel));
    if (Desc->Arity == RuleArity::Axiom && E.Prem0 != Invalid)
      return fail(N, "axiom with a premise");
    if (Desc->Arity != RuleArity::Two && E.Prem1 != Invalid)
      return fail(N, "unary rule with a second premise");

    // The recorded fact must still be in its relation — a tuple removed
    // or mutated after the fact leaves a dangling certificate here.
    bool Present = false;
    switch (Rel) {
    case ProvRel::Pts:
      Present = View.PtsSet.count(K) != 0;
      break;
    case ProvRel::Hpts:
      Present = View.HptsSet.count(K) != 0;
      break;
    case ProvRel::Hload:
      Present = View.HloadSet.count(K) != 0;
      break;
    case ProvRel::Call:
      Present = View.CallSet.count(K) != 0;
      break;
    case ProvRel::Reach:
      Present = View.ReachSet.count(K) != 0;
      break;
    case ProvRel::Gpts:
      Present = View.GptsSet.count(K) != 0;
      break;
    }
    if (!Present)
      return fail(N, "recorded fact is absent from its relation");

    switch (E.Rule) {
    case ProvRule::Entry: {
      if (std::find(DB.EntryMethods.begin(), DB.EntryMethods.end(), E.Aux) ==
          DB.EntryMethods.end())
        return fail(N, "method is not an entry method");
      CtxtVec Entry;
      Entry.push_back(ctx::EntryElem);
      std::uint32_t CtxId = R.ReachCtxts->intern(Entry.takePrefix(M));
      if (K[0] != E.Aux || K[1] != CtxId)
        return fail(N, "conclusion is not the entry axiom");
      return true;
    }

    case ProvRule::Assign: {
      FactKey P;
      if (!premise(N, E.Prem0, ProvRel::Pts, P))
        return false;
      if (E.Aux != P[0])
        return fail(N, "aux variable differs from premise variable");
      const auto &Tos = In.AssignFrom[P[0]];
      if (std::find(Tos.begin(), Tos.end(), K[0]) == Tos.end())
        return fail(N, "no assign input fact grounds the edge");
      if (K[1] != P[1] || K[2] != P[2])
        return fail(N, "conclusion does not copy the premise");
      return true;
    }

    case ProvRule::Cast: {
      FactKey P;
      if (!premise(N, E.Prem0, ProvRel::Pts, P))
        return false;
      if (E.Aux != P[0])
        return fail(N, "aux variable differs from premise variable");
      bool Grounded = false;
      for (const auto &[Y, T] : In.CastByFrom[P[0]])
        Grounded |= Y == K[0] && In.isSubtype(In.HeapTypeOf[P[1]], T);
      if (!Grounded)
        return fail(N, "no admissible cast input fact grounds the edge");
      if (K[1] != P[1] || K[2] != P[2])
        return fail(N, "conclusion does not copy the premise");
      return true;
    }

    case ProvRule::Load: {
      FactKey P;
      if (!premise(N, E.Prem0, ProvRel::Pts, P))
        return false;
      if (E.Aux != P[0])
        return fail(N, "aux variable differs from premise base variable");
      bool Grounded = false;
      for (const auto &[Field, To] : In.LoadByBase[P[0]])
        Grounded |= Field == K[1] && To == K[2];
      if (!Grounded)
        return fail(N, "no load input fact grounds the edge");
      if (K[0] != P[1] || K[3] != P[2])
        return fail(N, "conclusion does not carry the premise heap");
      return true;
    }

    case ProvRule::Store: {
      FactKey PV, PB; // value pts(X,H,B), base pts(Base,G,C)
      if (!premise(N, E.Prem0, ProvRel::Pts, PV) ||
          !premise(N, E.Prem1, ProvRel::Pts, PB))
        return false;
      if (E.Aux != PV[0])
        return fail(N, "aux variable differs from the value variable");
      bool Grounded = false;
      for (const auto &[Field, Base] : In.StoreByValue[PV[0]])
        Grounded |= Field == K[1] && Base == PB[0];
      if (!Grounded)
        return fail(N, "no store input fact grounds the edge");
      if (K[0] != PB[1] || K[2] != PV[1])
        return fail(N, "conclusion heaps do not match the premises");
      return expectT(N, R.Dom->comp(PV[2], R.Dom->inv(PB[2]), H, H), K[3]);
    }

    case ProvRule::Param: {
      FactKey P, C; // pts(Z,H,B), call(I,P,C)
      if (!premise(N, E.Prem0, ProvRel::Pts, P) ||
          !premise(N, E.Prem1, ProvRel::Call, C))
        return false;
      if (E.Aux != C[0])
        return fail(N, "aux invocation differs from the call premise");
      bool Grounded = false;
      for (const auto &[Invoke, Ord] : In.ActualByVar[P[0]])
        if (Invoke == C[0])
          if (auto It = In.FormalOf.find(pairKey(C[1], Ord));
              It != In.FormalOf.end())
            Grounded |= It->second == K[0];
      if (!Grounded)
        return fail(N, "no actual/formal input facts ground the edge");
      if (K[1] != P[1])
        return fail(N, "conclusion heap does not match the premise");
      return expectT(N, R.Dom->comp(P[2], C[2], H, M), K[2]);
    }

    case ProvRule::Ret: {
      FactKey P, C;
      if (!premise(N, E.Prem0, ProvRel::Pts, P) ||
          !premise(N, E.Prem1, ProvRel::Call, C))
        return false;
      if (E.Aux != C[0])
        return fail(N, "aux invocation differs from the call premise");
      const auto &Ms = In.ReturnByVar[P[0]];
      if (std::find(Ms.begin(), Ms.end(), C[1]) == Ms.end())
        return fail(N, "no return input fact grounds the edge");
      const auto &Ys = In.AssignRetByInvoke[C[0]];
      if (std::find(Ys.begin(), Ys.end(), K[0]) == Ys.end())
        return fail(N, "no assign_return input fact grounds the edge");
      if (K[1] != P[1])
        return fail(N, "conclusion heap does not match the premise");
      return expectT(N, R.Dom->comp(P[2], R.Dom->inv(C[2]), H, M), K[2]);
    }

    case ProvRule::Shortcut: {
      FactKey P, C; // actual pts(Z,H,B), call(I,P,C)
      if (!premise(N, E.Prem0, ProvRel::Pts, P) ||
          !premise(N, E.Prem1, ProvRel::Call, C))
        return false;
      if (E.Aux != C[0])
        return fail(N, "aux invocation differs from the call premise");
      bool Grounded = false;
      for (const auto &[Invoke, Ord] : In.ActualByVar[P[0]])
        Grounded |= Invoke == C[0] && Plan.hasShortcut(C[1], Ord);
      if (!Grounded)
        return fail(N, "no actual/cut-plan entry grounds the edge");
      const auto &Ys = In.AssignRetByInvoke[C[0]];
      if (std::find(Ys.begin(), Ys.end(), K[0]) == Ys.end())
        return fail(N, "no assign_return input fact grounds the edge");
      if (K[1] != P[1])
        return fail(N, "conclusion heap does not match the premise");
      auto Mid = R.Dom->comp(P[2], C[2], H, M);
      if (!Mid)
        return fail(N, "recomputed transformation is bottom");
      return expectT(N, R.Dom->comp(*Mid, R.Dom->inv(C[2]), H, M), K[2]);
    }

    case ProvRule::Throw: {
      FactKey P, C;
      if (!premise(N, E.Prem0, ProvRel::Pts, P) ||
          !premise(N, E.Prem1, ProvRel::Call, C))
        return false;
      if (E.Aux != C[0])
        return fail(N, "aux invocation differs from the call premise");
      const auto &Ms = In.ThrowByVar[P[0]];
      if (std::find(Ms.begin(), Ms.end(), C[1]) == Ms.end())
        return fail(N, "no throw input fact grounds the edge");
      const auto &Ys = In.CatchByInvoke[C[0]];
      if (std::find(Ys.begin(), Ys.end(), K[0]) == Ys.end())
        return fail(N, "no catch input fact grounds the edge");
      if (K[1] != P[1])
        return fail(N, "conclusion heap does not match the premise");
      return expectT(N, R.Dom->comp(P[2], R.Dom->inv(C[2]), H, M), K[2]);
    }

    case ProvRule::GStore: {
      FactKey P;
      if (!premise(N, E.Prem0, ProvRel::Pts, P))
        return false;
      if (E.Aux != P[0])
        return fail(N, "aux variable differs from premise variable");
      const auto &Gs = In.GlobalStoreByValue[P[0]];
      if (std::find(Gs.begin(), Gs.end(), K[0]) == Gs.end())
        return fail(N, "no global_store input fact grounds the edge");
      if (K[1] != P[1])
        return fail(N, "conclusion heap does not match the premise");
      return expectT(N, R.Dom->globalize(P[2]), K[2]);
    }

    case ProvRule::VirtCall: {
      FactKey P;
      if (!premise(N, E.Prem0, ProvRel::Pts, P))
        return false;
      if (E.Aux != K[0])
        return fail(N, "aux invocation differs from the conclusion");
      bool Grounded = false;
      for (const auto &[Invoke, Sig] : In.VirtByReceiver[P[0]])
        if (Invoke == K[0])
          if (auto It = In.Dispatch.find(pairKey(In.HeapTypeOf[P[1]], Sig));
              It != In.Dispatch.end())
            Grounded |= It->second == K[1];
      if (!Grounded)
        return fail(N, "dispatch does not reach the concluded method");
      return expectT(N, R.Dom->mergeVirtual(P[1], K[0], P[2]), K[2]);
    }

    case ProvRule::VirtThis: {
      FactKey P, C;
      if (!premise(N, E.Prem0, ProvRel::Pts, P) ||
          !premise(N, E.Prem1, ProvRel::Call, C))
        return false;
      if (E.Aux != C[0])
        return fail(N, "aux invocation differs from the call premise");
      bool Grounded = false;
      for (const auto &[Invoke, Sig] : In.VirtByReceiver[P[0]])
        if (Invoke == C[0])
          if (auto It = In.Dispatch.find(pairKey(In.HeapTypeOf[P[1]], Sig));
              It != In.Dispatch.end())
            Grounded |= It->second == C[1];
      if (!Grounded)
        return fail(N, "dispatch does not reach the call premise's method");
      if (R.Dom->mergeVirtual(P[1], C[0], P[2]) != C[2])
        return fail(N, "call premise transformation is not the merge");
      if (In.ThisOf[C[1]] != K[0])
        return fail(N, "conclusion variable is not the callee's this");
      if (K[1] != P[1])
        return fail(N, "conclusion heap does not match the premise");
      return expectT(N, R.Dom->comp(P[2], C[2], H, M), K[2]);
    }

    case ProvRule::Ind: {
      FactKey P, L; // hpts(G,Fl,H,B), hload(G,Fl,Y,C)
      if (!premise(N, E.Prem0, ProvRel::Hpts, P) ||
          !premise(N, E.Prem1, ProvRel::Hload, L))
        return false;
      if (P[0] != L[0] || P[1] != L[1])
        return fail(N, "premises join on different base/field");
      if (K[0] != L[2] || K[1] != P[2])
        return fail(N, "conclusion does not match the premises");
      return expectT(N, R.Dom->comp(P[3], L[3], H, M), K[2]);
    }

    case ProvRule::Reach: {
      FactKey C;
      if (!premise(N, E.Prem0, ProvRel::Call, C))
        return false;
      if (E.Aux != C[0])
        return fail(N, "aux invocation differs from the call premise");
      if (K[0] != C[1])
        return fail(N, "concluded method differs from the callee");
      std::uint32_t CtxId = R.ReachCtxts->intern(R.Dom->target(C[2]));
      if (K[1] != CtxId)
        return fail(N, "concluded context is not the call target");
      return true;
    }

    case ProvRule::GLoad: {
      FactKey P, Rh; // gpts(G,H,A), reach(P,Mx)
      if (!premise(N, E.Prem0, ProvRel::Gpts, P) ||
          !premise(N, E.Prem1, ProvRel::Reach, Rh))
        return false;
      if (E.Aux != P[0])
        return fail(N, "aux global differs from the gpts premise");
      bool Grounded = false;
      for (const auto &[To, InMethod] : In.GlobalLoadByGlobal[P[0]])
        Grounded |= To == K[0] && InMethod == Rh[0];
      if (!Grounded)
        return fail(N, "no global_load input fact grounds the edge");
      if (K[1] != P[1])
        return fail(N, "conclusion heap does not match the premise");
      return expectT(N, R.Dom->retarget(P[2], (*R.ReachCtxts)[Rh[1]]), K[2]);
    }

    case ProvRule::New: {
      FactKey Rh;
      if (!premise(N, E.Prem0, ProvRel::Reach, Rh))
        return false;
      if (E.Aux != K[1])
        return fail(N, "aux heap differs from the conclusion");
      bool Grounded = false;
      for (const auto &[Heap, To] : In.AssignNewByMethod[Rh[0]])
        Grounded |= Heap == K[1] && To == K[0];
      if (!Grounded)
        return fail(N, "no assign_new input fact grounds the edge");
      return expectT(N, R.Dom->record((*R.ReachCtxts)[Rh[1]]), K[2]);
    }

    case ProvRule::Static: {
      FactKey Rh;
      if (!premise(N, E.Prem0, ProvRel::Reach, Rh))
        return false;
      if (E.Aux != K[0])
        return fail(N, "aux invocation differs from the conclusion");
      bool Grounded = false;
      for (const auto &[Invoke, Target] : In.StaticByMethod[Rh[0]])
        Grounded |= Invoke == K[0] && Target == K[1];
      if (!Grounded)
        return fail(N, "no static_invoke input fact grounds the edge");
      return expectT(N, R.Dom->mergeStatic(K[0], (*R.ReachCtxts)[Rh[1]]),
                     K[2]);
    }
    }
    return fail(N, "unknown rule");
  }

  /// Every tuple must carry a certificate (the recorder notes each tuple
  /// right at insertion, so short of truncation nothing may be missing).
  bool checkCoverage() {
    auto Uncovered = [&](ProvRel Rel, const FactKey &K) {
      CE = relName(Rel) + std::string(" tuple ") +
           renderFact(DB, R, Rel, K) + " has no recorded derivation";
      return false;
    };
    for (const PtsFact &F : R.Pts)
      if (G.lookup(ProvRel::Pts, keyOf(F)) == Invalid)
        return Uncovered(ProvRel::Pts, keyOf(F));
    for (const HptsFact &F : R.Hpts)
      if (G.lookup(ProvRel::Hpts, keyOf(F)) == Invalid)
        return Uncovered(ProvRel::Hpts, keyOf(F));
    for (const HloadFact &F : R.Hload)
      if (G.lookup(ProvRel::Hload, keyOf(F)) == Invalid)
        return Uncovered(ProvRel::Hload, keyOf(F));
    for (const CallFact &F : R.Call)
      if (G.lookup(ProvRel::Call, keyOf(F)) == Invalid)
        return Uncovered(ProvRel::Call, keyOf(F));
    for (const ReachFact &F : R.Reach)
      if (G.lookup(ProvRel::Reach, keyOf(F)) == Invalid)
        return Uncovered(ProvRel::Reach, keyOf(F));
    for (const GptsFact &F : R.Gpts)
      if (G.lookup(ProvRel::Gpts, keyOf(F)) == Invalid)
        return Uncovered(ProvRel::Gpts, keyOf(F));
    return true;
  }

  const FactDB &DB;
  Results &R;
  const ProvenanceGraph &G;
  InputIndices In;
  DerivedView View;
  ctx::CutShortcutPlan Plan;
  unsigned M, H;
  std::string &CE;
};

} // namespace

bool verify::checkSupport(const FactDB &DB, Results &R,
                          std::string &Counterexample) {
  if (!R.Prov) {
    Counterexample = "result carries no provenance graph";
    return false;
  }
  if (!R.Dom || !R.ReachCtxts) {
    Counterexample = "result carries no transformation domain";
    return false;
  }
  return SupportChecker(DB, R, Counterexample).run();
}
