//===- verify/Closure.cpp - Fixpoint closure certification ----------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Naive rule re-application over the completed relations: for every rule
// of Figure 3, enumerate every instance whose premises hold in the solved
// result and require the conclusion to be present too. No worklists, no
// deltas — each two-premise rule is driven from one side with the other
// side joined through a complete index, which enumerates exactly the set
// of instances a fixpoint must have closed. The first derivable-but-
// absent tuple is the counterexample.
//
// The domain operations (comp, inv, record, merge, ...) are re-invoked
// here; because transformations are content-addressed (interning assigns
// one id per distinct value within a run), a recomputed conclusion's id
// matches the stored id exactly when the tuple was genuinely derived.
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleTable.h"
#include "ctx/CutShortcut.h"
#include "ctx/TransformerString.h"
#include "support/Budget.h"
#include "verify/Internal.h"
#include "verify/Verify.h"

using namespace ctp;
using namespace ctp::analysis;
using namespace ctp::verify;
using namespace ctp::verify::detail;
using ctx::CtxtVec;
using ctx::TransformId;
using facts::FactDB;

namespace {

/// One closure pass. Holds the views plus the counterexample slot; each
/// rule method returns false on the first missing conclusion.
class ClosureChecker {
public:
  ClosureChecker(const FactDB &DB, Results &R, const ClosureOptions &Opts,
                 std::string &CE)
      : DB(DB), R(R), In(DB), View(DB, R),
        Modulo(Opts.ModuloSubsumption &&
               R.Config.Abs == ctx::Abstraction::TransformerString),
        Cut(R.Config.SolveMode == ctx::Mode::CutShortcut),
        M(R.Config.MethodDepth), H(R.Config.HeapDepth), CE(CE) {
    // Cut-shortcut replaces RET flow out of cut methods with the
    // per-call-site SHORTCUT rule; the closure notion changes with it,
    // so the checker re-derives the plan independently of the solver.
    if (Cut)
      Plan = ctx::buildCutShortcutPlan(DB);
  }

  bool run() {
    // Rule order matches the canonical table; the first failure reported
    // is therefore deterministic for a given result.
    for (std::uint32_t E : DB.EntryMethods)
      if (!checkEntry(E))
        return false;
    for (const PtsFact &F : R.Pts)
      if (!fromPts(F))
        return false;
    for (const HptsFact &F : R.Hpts)
      if (!fromHpts(F))
        return false;
    for (const CallFact &F : R.Call)
      if (!fromCall(F))
        return false;
    for (const GptsFact &F : R.Gpts)
      if (!fromGpts(F))
        return false;
    for (const ReachFact &F : R.Reach)
      if (!fromReach(F))
        return false;
    return true;
  }

private:
  bool missing(ProvRule Rule, const std::string &Fact) {
    CE = std::string(ruleName(Rule)) + " can still derive " + Fact;
    return false;
  }

  bool hasPts(std::uint32_t Var, std::uint32_t Heap, TransformId T) {
    if (View.PtsSet.count(keyOf(PtsFact{Var, Heap, T})))
      return true;
    if (!Modulo)
      return false;
    // Collapse-mode closure: a retired conclusion is acceptable when a
    // live fact for the same (variable, heap) pair subsumes it.
    const ctx::Transformer &Want = R.Dom->transformer(T);
    for (const auto &[H2, T2] : View.PtsByVar[Var])
      if (H2 == Heap &&
          (T2 == T || ctx::subsumes(R.Dom->transformer(T2), Want)))
        return true;
    return false;
  }

  bool expectPts(ProvRule Rule, std::uint32_t Var, std::uint32_t Heap,
                 TransformId T) {
    return hasPts(Var, Heap, T) ||
           missing(Rule, renderPts(DB, R, PtsFact{Var, Heap, T}));
  }

  bool checkEntry(std::uint32_t E) {
    CtxtVec Entry;
    Entry.push_back(ctx::EntryElem);
    CtxtVec Ctx = Entry.takePrefix(M);
    ReachFact F{E, R.ReachCtxts->intern(Ctx)};
    return View.ReachSet.count(keyOf(F)) ||
           missing(ProvRule::Entry, renderReach(DB, R, F));
  }

  bool fromPts(const PtsFact &F) {
    // [ASSIGN] pts(Z,H,A), assign(Z,Y) |- pts(Y,H,A).
    for (std::uint32_t Y : In.AssignFrom[F.Var])
      if (!expectPts(ProvRule::Assign, Y, F.Heap, F.T))
        return false;

    // [CAST] filtered assignment.
    for (const auto &[Y, T] : In.CastByFrom[F.Var])
      if (In.isSubtype(In.HeapTypeOf[F.Heap], T))
        if (!expectPts(ProvRule::Cast, Y, F.Heap, F.T))
          return false;

    // [LOAD] pts(Y,G,A), load(Y,F,Z) |- hload(G,F,Z,A).
    for (const auto &[Field, To] : In.LoadByBase[F.Var]) {
      HloadFact C{F.Heap, Field, To, F.T};
      if (!View.HloadSet.count(keyOf(C)))
        return missing(ProvRule::Load, renderHload(DB, R, C));
    }

    // [STORE] pts(X,H,B), store(X,Fl,Z), pts(Z,G,C)
    //         |- hpts(G,Fl,H, B ; inv(C)). Driven from the value side;
    // the base side joins through the complete pts index.
    for (const auto &[Field, Base] : In.StoreByValue[F.Var])
      for (const auto &[G, C] : View.PtsByVar[Base])
        if (auto A = R.Dom->comp(F.T, R.Dom->inv(C), H, H)) {
          HptsFact Cn{G, Field, F.Heap, *A};
          if (!View.HptsSet.count(keyOf(Cn)))
            return missing(ProvRule::Store, renderHpts(DB, R, Cn));
        }

    // [PARAM] pts(Z,H,B), actual(Z,I,O), call(I,P,C), formal(Y,P,O)
    //         |- pts(Y,H, B ; C).
    for (const auto &[Invoke, Ord] : In.ActualByVar[F.Var])
      for (const auto &[Callee, C] : View.CallByInvoke[Invoke])
        if (auto It = In.FormalOf.find(pairKey(Callee, Ord));
            It != In.FormalOf.end())
          if (auto A = R.Dom->comp(F.T, C, H, M))
            if (!expectPts(ProvRule::Param, It->second, F.Heap, *A))
              return false;

    // [RET] pts(Z,H,B), return(Z,P), call(I,P,C), assign_return(I,Y)
    //       |- pts(Y,H, B ; inv(C)). Cut-shortcut mode elides the
    // instance for cut (P,Z) pairs — SHORTCUT below carries that flow
    // per call site instead (its deliberate precision win over the
    // invocation-mixing RET).
    for (std::uint32_t P : In.ReturnByVar[F.Var]) {
      if (Cut && Plan.isCutReturn(P, F.Var))
        continue;
      for (const auto &[Invoke, C] : View.CallByCallee[P])
        if (auto A = R.Dom->comp(F.T, R.Dom->inv(C), H, M))
          for (std::uint32_t Y : In.AssignRetByInvoke[Invoke])
            if (!expectPts(ProvRule::Ret, Y, F.Heap, *A))
              return false;
    }

    // [SHORTCUT] pts(Z,H,B), actual(Z,I,O), call(I,P,C), plan(P,O),
    //            assign_return(I,Y) |- pts(Y,H, (B ; C) ; inv(C)).
    if (Cut)
      for (const auto &[Invoke, Ord] : In.ActualByVar[F.Var])
        for (const auto &[Callee, C] : View.CallByInvoke[Invoke])
          if (Plan.hasShortcut(Callee, Ord))
            if (auto Mid = R.Dom->comp(F.T, C, H, M))
              if (auto A = R.Dom->comp(*Mid, R.Dom->inv(C), H, M))
                for (std::uint32_t Y : In.AssignRetByInvoke[Invoke])
                  if (!expectPts(ProvRule::Shortcut, Y, F.Heap, *A))
                    return false;

    // [THROW] the exceptional return path.
    for (std::uint32_t P : In.ThrowByVar[F.Var])
      for (const auto &[Invoke, C] : View.CallByCallee[P])
        if (auto A = R.Dom->comp(F.T, R.Dom->inv(C), H, M))
          for (std::uint32_t Y : In.CatchByInvoke[Invoke])
            if (!expectPts(ProvRule::Throw, Y, F.Heap, *A))
              return false;

    // [GSTORE] pts(X,H,B), global_store(X,G) |- gpts(G,H, globalize(B)).
    if (!In.GlobalStoreByValue[F.Var].empty()) {
      TransformId GT = R.Dom->globalize(F.T);
      for (std::uint32_t G : In.GlobalStoreByValue[F.Var]) {
        GptsFact Cn{G, F.Heap, GT};
        if (!View.GptsSet.count(keyOf(Cn)))
          return missing(ProvRule::GStore, renderGpts(DB, R, Cn));
      }
    }

    // [VIRT] dispatch on the receiver's heap type: call edge + this-var
    // binding.
    if (!In.VirtByReceiver[F.Var].empty()) {
      std::uint32_t HeapType = In.HeapTypeOf[F.Heap];
      for (const auto &[Invoke, Sig] : In.VirtByReceiver[F.Var]) {
        auto It = In.Dispatch.find(pairKey(HeapType, Sig));
        if (It == In.Dispatch.end())
          continue; // No implementation: dead dispatch.
        std::uint32_t Q = It->second;
        TransformId C = R.Dom->mergeVirtual(F.Heap, Invoke, F.T);
        CallFact Cn{Invoke, Q, C};
        if (!View.CallSet.count(keyOf(Cn)))
          return missing(ProvRule::VirtCall, renderCall(DB, R, Cn));
        std::uint32_t ThisY = In.ThisOf[Q];
        if (ThisY == facts::InvalidId)
          continue; // Rejected by FactDB::validate; defensive here.
        if (auto A = R.Dom->comp(F.T, C, H, M))
          if (!expectPts(ProvRule::VirtThis, ThisY, F.Heap, *A))
            return false;
      }
    }
    return true;
  }

  bool fromHpts(const HptsFact &F) {
    // [IND] hpts(G,Fl,H,B), hload(G,Fl,Y,C) |- pts(Y,H, B ; C).
    auto It = View.HloadByBaseField.find(pairKey(F.Base, F.Field));
    if (It == View.HloadByBaseField.end())
      return true;
    for (const auto &[Y, C] : It->second)
      if (auto A = R.Dom->comp(F.T, C, H, M))
        if (!expectPts(ProvRule::Ind, Y, F.Heap, *A))
          return false;
    return true;
  }

  bool fromCall(const CallFact &F) {
    // [REACH] call(I,P,A) |- reach(P, target(A)). PARAM/RET/THROW need no
    // call-driven pass here: their pts-driven enumeration above already
    // joined against the complete call relation.
    CtxtVec Tgt = R.Dom->target(F.T);
    ReachFact Cn{F.Method, R.ReachCtxts->intern(Tgt)};
    return View.ReachSet.count(keyOf(Cn)) ||
           missing(ProvRule::Reach, renderReach(DB, R, Cn));
  }

  bool fromGpts(const GptsFact &F) {
    // [GLOAD] gpts(G,H,A), global_load(G,Z,P), reach(P,Mx)
    //         |- pts(Z,H, retarget(A,Mx)).
    for (const auto &[Z, P] : In.GlobalLoadByGlobal[F.Global])
      for (std::uint32_t CtxId : View.ReachByMethod[P]) {
        TransformId A = R.Dom->retarget(F.T, (*R.ReachCtxts)[CtxId]);
        if (!expectPts(ProvRule::GLoad, Z, F.Heap, A))
          return false;
      }
    return true;
  }

  bool fromReach(const ReachFact &F) {
    const CtxtVec &Ctx = (*R.ReachCtxts)[F.CtxtId];
    // [NEW] assign_new(H,Y,P), reach(P,Mx) |- pts(Y,H, record(Mx)).
    if (!In.AssignNewByMethod[F.Method].empty()) {
      TransformId A = R.Dom->record(Ctx);
      for (const auto &[Hp, Y] : In.AssignNewByMethod[F.Method])
        if (!expectPts(ProvRule::New, Y, Hp, A))
          return false;
    }
    // [STATIC] static_invoke(I,Q,P), reach(P,Mx)
    //          |- call(I,Q, merge_s(I,Mx)).
    for (const auto &[Invoke, Target] : In.StaticByMethod[F.Method]) {
      TransformId C = R.Dom->mergeStatic(Invoke, Ctx);
      CallFact Cn{Invoke, Target, C};
      if (!View.CallSet.count(keyOf(Cn)))
        return missing(ProvRule::Static, renderCall(DB, R, Cn));
    }
    return true;
  }

  const FactDB &DB;
  Results &R;
  InputIndices In;
  DerivedView View;
  bool Modulo;
  bool Cut;
  ctx::CutShortcutPlan Plan;
  unsigned M, H;
  std::string &CE;
};

} // namespace

bool verify::checkClosure(const FactDB &DB, Results &R,
                          const ClosureOptions &Opts,
                          std::string &Counterexample) {
  if (R.Stat.Term != TerminationReason::Converged) {
    Counterexample =
        std::string("run did not converge (termination: ") +
        terminationReasonName(R.Stat.Term) + "); closure is undefined";
    return false;
  }
  if (!R.Dom || !R.ReachCtxts) {
    Counterexample = "result carries no transformation domain";
    return false;
  }
  return ClosureChecker(DB, R, Opts, Counterexample).run();
}
