//===- verify/Internal.h - Shared verifier machinery ------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internals shared by the closure and support certifiers: the input-fact
/// indices (a deliberate restatement of the solver's buildInputIndices —
/// the verifier re-derives its own view of the rules rather than trusting
/// solver state), the derived-relation membership/join view built from a
/// Results object, and the fact renderers used for counterexamples and
/// canonical serialization.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_VERIFY_INTERNAL_H
#define CTP_VERIFY_INTERNAL_H

#include "analysis/Results.h"
#include "facts/FactDB.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace ctp {
namespace verify {
namespace detail {

inline std::uint64_t pairKey(std::uint32_t A, std::uint32_t B) {
  return (static_cast<std::uint64_t>(A) << 32) | B;
}

/// Per-entity-kind input-fact indices, mirroring the joins the rules
/// need. Built independently from the FactDB so the certifiers share no
/// state with either solver.
struct InputIndices {
  explicit InputIndices(const facts::FactDB &DB);

  bool isSubtype(std::uint32_t Sub, std::uint32_t Super) const {
    return SubtypePairs.count(pairKey(Sub, Super)) != 0;
  }

  using PairList = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

  std::vector<std::vector<std::uint32_t>> AssignFrom; // From -> To
  std::vector<PairList> LoadByBase;       // Base -> (Field, To)
  std::vector<PairList> StoreByValue;     // From -> (Field, Base)
  std::vector<PairList> ActualByVar;      // Var -> (Invoke, Ordinal)
  std::vector<PairList> VirtByReceiver;   // Receiver -> (Invoke, Sig)
  std::vector<PairList> StaticByMethod;   // InMethod -> (Invoke, Target)
  std::vector<PairList> AssignNewByMethod; // InMethod -> (Heap, To)
  std::vector<PairList> CastByFrom;       // From -> (To, Type)
  std::vector<PairList> GlobalLoadByGlobal; // Global -> (To, InMethod)
  std::unordered_map<std::uint64_t, std::uint32_t> FormalOf; // (M,O) -> Var
  std::unordered_map<std::uint64_t, std::uint32_t> Dispatch; // (T,S) -> M
  std::vector<std::vector<std::uint32_t>> ReturnByVar;      // Var -> Method
  std::vector<std::vector<std::uint32_t>> AssignRetByInvoke; // Invoke -> To
  std::vector<std::vector<std::uint32_t>> ThrowByVar;       // Var -> Method
  std::vector<std::vector<std::uint32_t>> CatchByInvoke;    // Invoke -> To
  std::vector<std::vector<std::uint32_t>> GlobalStoreByValue; // From -> G
  std::vector<std::uint32_t> HeapTypeOf; // Heap -> Type (InvalidId-filled)
  std::vector<std::uint32_t> ThisOf;     // Method -> Var (InvalidId-filled)
  std::unordered_set<std::uint64_t> SubtypePairs;
};

/// Membership sets and join indices over a Results object's relations —
/// the "complete relations" the certifiers enumerate rule instances from.
struct DerivedView {
  DerivedView(const facts::FactDB &DB, const analysis::Results &R);

  using PairList =
      std::vector<std::pair<std::uint32_t, ctx::TransformId>>;

  std::unordered_set<analysis::FactKey, analysis::FactKeyHash> PtsSet,
      HptsSet, HloadSet, CallSet, ReachSet, GptsSet;
  std::vector<PairList> PtsByVar;      // Var -> (Heap, T)
  std::vector<PairList> CallByInvoke;  // Invoke -> (Method, T)
  std::vector<PairList> CallByCallee;  // Method -> (Invoke, T)
  std::vector<PairList> GptsByGlobal;  // Global -> (Heap, T)
  std::unordered_map<std::uint64_t, PairList> HptsByBaseField, // -> (Heap,T)
      HloadByBaseField;                                        // -> (Var,T)
  std::vector<std::vector<std::uint32_t>> ReachByMethod; // Method -> CtxtId
};

/// Entity-name helpers: the recorded name, or "kind#id" when the table
/// has no (or an empty) entry.
std::string entityName(const std::vector<std::string> &Names,
                       std::uint32_t Id, const char *Kind);

// Fact renderers. Engine-independent: transformation ids render through
// the result's own domain as values, context ids through its interner.
std::string renderPts(const facts::FactDB &DB, const analysis::Results &R,
                      const analysis::PtsFact &F);
std::string renderHpts(const facts::FactDB &DB, const analysis::Results &R,
                       const analysis::HptsFact &F);
std::string renderHload(const facts::FactDB &DB, const analysis::Results &R,
                        const analysis::HloadFact &F);
std::string renderCall(const facts::FactDB &DB, const analysis::Results &R,
                       const analysis::CallFact &F);
std::string renderReach(const facts::FactDB &DB, const analysis::Results &R,
                        const analysis::ReachFact &F);
std::string renderGpts(const facts::FactDB &DB, const analysis::Results &R,
                       const analysis::GptsFact &F);

/// Renders the (relation, key) pair of a provenance node.
std::string renderFact(const facts::FactDB &DB, const analysis::Results &R,
                       analysis::ProvRel Rel, const analysis::FactKey &K);

} // namespace detail
} // namespace verify
} // namespace ctp

#endif // CTP_VERIFY_INTERNAL_H
