//===- verify/Verify.cpp - Verification driver ----------------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Orchestrates the full check matrix over one fact database: per
// configuration x back-end, solve and certify (closure, support), then
// the cross-cutting differentials (native vs. datalog serialization,
// ladder monotonicity, CFL-oracle containment with demand-driven spot
// checks, snapshot round-trip). Rows append to the verdict report in a
// fixed order so two runs over the same inputs produce byte-identical
// reports.
//
//===----------------------------------------------------------------------===//

#include "analysis/DatalogFrontend.h"
#include "analysis/Solver.h"
#include "analysis/Unify.h"
#include "cfl/Demand.h"
#include "cfl/Oracle.h"
#include "clients/Diagnostics.h"
#include "clients/Taint.h"
#include "verify/Internal.h"
#include "verify/Verify.h"

#include <algorithm>
#include <map>

using namespace ctp;
using namespace ctp::analysis;
using namespace ctp::verify;
using namespace ctp::verify::detail;
using facts::FactDB;
using verdict::Status;

namespace {

/// (finer, coarser) configuration pairs with a theoretical containment
/// guarantee, checked when both members are part of the run:
///  - deeper context of the same flavour refines shallower (truncation
///    homomorphism): 2-object+H vs 1-object, 1-call+H vs 1-call;
///  - type contexts abstract object contexts (classOf homomorphism):
///    2-object+H vs 2-type+H;
///  - everything refines the insensitive baseline;
///  - cutshortcut refines insensitive (it only elides invocation-mixing
///    RET flow out of cut methods), and insensitive refines unify (the
///    unification view only adds assignment rows).
/// Cross-flavour pairs (e.g. 1-object vs 1-call+H) carry no such
/// guarantee and are deliberately not compared. Note cutshortcut has no
/// ordering against the context-sensitive rungs — its per-call-site
/// shortcuts and their conflation are incomparable with, say,
/// 2-object+H's context splitting — so no such pair appears here.
const std::pair<const char *, const char *> MonotonicPairs[] = {
    {"2-object+H", "1-object"},
    {"2-object+H", "2-type+H"},
    {"1-call+H", "1-call"},
    {"2-object+H", "insensitive"},
    {"2-hybrid+H", "insensitive"},
    {"2-type+H", "insensitive"},
    {"1-object", "insensitive"},
    {"1-call+H", "insensitive"},
    {"1-call", "insensitive"},
    {"cutshortcut", "insensitive"},
    {"insensitive", "unify"},
};

std::string renderCiPair(const char *Rel,
                         const std::array<std::uint32_t, 2> &P,
                         const std::vector<std::string> &ANames,
                         const std::vector<std::string> &BNames,
                         const char *AKind, const char *BKind) {
  return std::string(Rel) + "(" + entityName(ANames, P[0], AKind) + ", " +
         entityName(BNames, P[1], BKind) + ")";
}

/// First element of sorted \p A absent from sorted \p B, or nullptr.
template <typename T>
const T *firstNotIn(const std::vector<T> &A, const std::vector<T> &B) {
  auto It = B.begin();
  for (const T &X : A) {
    It = std::lower_bound(It, B.end(), X);
    if (It == B.end() || *It != X)
      return &X;
  }
  return nullptr;
}

/// Stable ids of the taint.flow warnings a result produces; \p Ends, when
/// non-null, receives each finding's witness endpoints (id -> heap etc.).
std::vector<std::string>
taintFlowIds(const FactDB &DB, const Results &R,
             std::map<std::string, clients::TaintEndpoint> *Ends = nullptr) {
  clients::SourceMap SM(DB);
  clients::Report Rep;
  clients::checkTaint(DB, R, SM, Rep, Ends);
  Rep.finalize();
  std::vector<std::string> Ids;
  for (const clients::Finding &F : Rep.findings())
    if (F.RuleId == "taint.flow")
      Ids.push_back(F.Id);
  std::sort(Ids.begin(), Ids.end());
  return Ids;
}

} // namespace

bool verify::verifyFactDB(const FactDB &DB, const std::string &CellPrefix,
                          const VerifyOptions &Opts,
                          verdict::Report &Report) {
  bool AllOk = true;
  auto Row = [&](const std::string &Cell, const std::string &Name,
                 bool Ok, const std::string &Detail) {
    Report.add(Cell, Name, Ok ? Status::Pass : Status::Fail, Detail);
    AllOk &= Ok;
  };
  auto Skip = [&](const std::string &Cell, const std::string &Name,
                  const std::string &Why) {
    Report.add(Cell, Name, Status::Skip, Why);
  };

  std::vector<std::string> Names =
      Opts.Configs.empty() ? ctx::configNames() : Opts.Configs;
  std::vector<ctx::Config> Cfgs;
  for (const std::string &N : Names) {
    ctx::Config C;
    if (!ctx::configByName(N, Opts.Abs, C)) {
      Row(CellPrefix + "/" + N, "config", false,
          "unknown configuration name");
      return false;
    }
    Cfgs.push_back(C);
  }

  // Results kept for the cross-cutting checks, native preferred.
  std::map<std::string, Results> Kept;
  std::vector<std::string> KeptOrder;

  const char *NoDatalogWhy =
      "the datalog back-end has no rule set for contextless flavours";

  for (std::size_t I = 0; I < Cfgs.size(); ++I) {
    const std::string &Name = Names[I];
    // Contextless flavours certify on the native engine only.
    const bool Contextless = Cfgs[I].SolveMode != ctx::Mode::Contexts;
    const bool IsUnify = Cfgs[I].SolveMode == ctx::Mode::Unify;
    std::vector<std::string> NativeLines, DatalogLines;

    if (Opts.Native) {
      SolverOptions SO;
      // Unify certifies the view-backed native run: the fast union-find
      // path tags every tuple with the identity transformation, which is
      // ci-equivalent but not the exact tuple set the Figure-3 rules
      // close over. Requesting provenance routes solve() through the
      // native engine over unifyView(DB); closure and support then check
      // against that same view.
      SO.Provenance.Enabled = Opts.Support || IsUnify;
      Results R = solve(DB, Cfgs[I], SO);
      facts::FactDB ViewStore;
      const FactDB *CertDB = &DB;
      if (IsUnify && (Opts.Closure || Opts.Support)) {
        ViewStore = unifyView(DB);
        CertDB = &ViewStore;
      }
      const std::string Cell = CellPrefix + "/" + Name + "/native";
      std::string CE;
      if (Opts.Closure)
        Row(Cell, "closure",
            checkClosure(*CertDB, R, ClosureOptions(), CE), CE);
      if (Opts.Support)
        Row(Cell, "support", checkSupport(*CertDB, R, CE), CE);
      if (Opts.Differential && Opts.Datalog && !Contextless)
        NativeLines = canonicalLines(DB, R);
      KeptOrder.push_back(Name);
      Kept.emplace(Name, std::move(R));
    }

    if (Opts.Datalog) {
      const std::string Cell = CellPrefix + "/" + Name + "/datalog";
      if (Contextless) {
        if (Opts.Closure)
          Skip(Cell, "closure", NoDatalogWhy);
        if (Opts.Support)
          Skip(Cell, "support", NoDatalogWhy);
      } else {
        Results R = solveViaDatalog(DB, Cfgs[I]);
        std::string CE;
        if (Opts.Closure)
          Row(Cell, "closure",
              checkClosure(DB, R, ClosureOptions(), CE), CE);
        if (Opts.Support)
          Skip(Cell, "support",
               "first-derivation provenance is native-solver-only");
        if (Opts.Differential && Opts.Native)
          DatalogLines = canonicalLines(DB, R);
        if (!Opts.Native) {
          KeptOrder.push_back(Name);
          Kept.emplace(Name, std::move(R));
        }
      }
    }

    if (Opts.Differential) {
      const std::string Cell =
          CellPrefix + "/" + Name + "/native-vs-datalog";
      if (Contextless) {
        Skip(Cell, "differential", NoDatalogWhy);
      } else if (Opts.Native && Opts.Datalog) {
        std::string CE;
        Row(Cell, "differential",
            diffLines(NativeLines, "native", DatalogLines, "datalog", CE),
            CE);
      } else {
        Skip(Cell, "differential", "requires both back-ends");
      }
    }
  }

  if (Opts.Monotonic) {
    for (const auto &[Finer, Coarser] : MonotonicPairs) {
      auto FIt = Kept.find(Finer), CIt = Kept.find(Coarser);
      if (FIt == Kept.end() || CIt == Kept.end())
        continue;
      const Results &RF = FIt->second, &RC = CIt->second;
      const std::string Cell =
          CellPrefix + "/" + Finer + "<=" + Coarser;
      std::string CE;
      bool Ok = true;
      if (const auto *X = firstNotIn(RF.ciPts(), RC.ciPts())) {
        Ok = false;
        CE = "finer rung derives " +
             renderCiPair("pts_ci", *X, DB.VarNames, DB.HeapNames,
                          "var", "heap") +
             " that the coarser rung refutes";
      } else if (const auto *Y = firstNotIn(RF.ciHpts(), RC.ciHpts())) {
        Ok = false;
        CE = "finer rung derives hpts_ci(" +
             entityName(DB.HeapNames, (*Y)[0], "heap") + "." +
             entityName(DB.FieldNames, (*Y)[1], "field") + ", " +
             entityName(DB.HeapNames, (*Y)[2], "heap") +
             ") that the coarser rung refutes";
      } else if (const auto *Z = firstNotIn(RF.ciCall(), RC.ciCall())) {
        Ok = false;
        CE = "finer rung derives " +
             renderCiPair("call_ci", *Z, DB.InvokeNames,
                          DB.MethodNames, "invoke", "method") +
             " that the coarser rung refutes";
      } else {
        // Taint warnings are subset-monotone except through the
        // sanitizer veto: a coarser run can point a sanitizer's result
        // at more heaps and launder a flow the finer rung reports (the
        // caveat in clients/Taint.h). Exempt exactly those findings —
        // any other missing finding is a monotonicity bug.
        std::map<std::string, clients::TaintEndpoint> FEnds;
        const std::vector<std::string> FIds = taintFlowIds(DB, RF, &FEnds);
        const std::vector<std::string> CIds = taintFlowIds(DB, RC);
        const clients::TaintInfo CInfo = clients::computeTaint(DB, RC);
        for (const std::string &Id : FIds) {
          if (std::binary_search(CIds.begin(), CIds.end(), Id))
            continue;
          const auto EIt = FEnds.find(Id);
          const facts::Id H = EIt == FEnds.end() ? facts::InvalidId
                                                 : EIt->second.Heap;
          if (H < CInfo.Sanitized.size() && CInfo.Sanitized[H])
            continue;
          Ok = false;
          CE = "finer rung reports taint.flow " + Id +
               " that the coarser rung does not";
          break;
        }
      }
      Row(Cell, "monotonic", Ok, CE);
    }
  }

  if (Opts.Oracle) {
    cfl::OracleResult O = cfl::solveInsensitive(DB);
    cfl::DemandSolver DS(DB);
    std::vector<std::uint32_t> Queries =
        cfl::sampleQueryVars(DB, Opts.Samples, Opts.Seed);
    for (const std::string &Name : KeptOrder) {
      const Results &R = Kept.at(Name);
      const std::string Cell = CellPrefix + "/" + Name + "/oracle";
      std::string CE;
      bool Ok = true;
      if (Name == "unify") {
        // Unify is COARSER than the insensitive fixpoint the oracle
        // computes, so the soundness direction reverses: every
        // L_F-derivable fact must be contained in the unify answer, and
        // every demand-query pointee must be included too.
        if (const auto *X = firstNotIn(O.Pts, R.ciPts())) {
          Ok = false;
          CE = "unify run misses oracle fact " +
               renderCiPair("pts_ci", *X, DB.VarNames, DB.HeapNames,
                            "var", "heap");
        } else if (const auto *Y = firstNotIn(O.Calls, R.ciCall())) {
          Ok = false;
          CE = "unify run misses oracle edge " +
               renderCiPair("call_ci", *Y, DB.InvokeNames,
                            DB.MethodNames, "invoke", "method");
        }
        std::size_t Checked = 0;
        for (std::uint32_t V : Queries) {
          if (!Ok)
            break;
          cfl::DemandAnswer A = DS.query(V);
          if (A.BudgetExceeded)
            continue;
          ++Checked;
          if (const auto *Hp = firstNotIn(A.Heaps, R.pointsTo(V))) {
            Ok = false;
            CE = "demand query on " +
                 entityName(DB.VarNames, V, "var") + " derives pointee " +
                 entityName(DB.HeapNames, *Hp, "heap") +
                 " that the unify run misses";
          }
        }
        if (Ok)
          CE = "contains the oracle; " + std::to_string(Checked) +
               " demand spot checks";
        Row(Cell, "oracle", Ok, CE);
        continue;
      }
      if (const auto *X = firstNotIn(R.ciPts(), O.Pts)) {
        Ok = false;
        CE = "unsound vs. CFL oracle: " +
             renderCiPair("pts_ci", *X, DB.VarNames, DB.HeapNames,
                          "var", "heap") +
             " is not L_F-derivable";
      }
      if (Ok && Name == "insensitive") {
        // m = h = 0 must match the oracle exactly, not just contain it.
        if (const auto *X = firstNotIn(O.Pts, R.ciPts())) {
          Ok = false;
          CE = "insensitive run misses oracle fact " +
               renderCiPair("pts_ci", *X, DB.VarNames, DB.HeapNames,
                            "var", "heap");
        } else if (const auto *Y = firstNotIn(O.Calls, R.ciCall())) {
          Ok = false;
          CE = "insensitive run misses oracle edge " +
               renderCiPair("call_ci", *Y, DB.InvokeNames,
                            DB.MethodNames, "invoke", "method");
        }
      }
      std::size_t Checked = 0;
      for (std::uint32_t V : Queries) {
        if (!Ok)
          break;
        cfl::DemandAnswer A = DS.query(V);
        if (A.BudgetExceeded)
          continue; // An exhausted query proves nothing either way.
        ++Checked;
        if (const auto *Hp = firstNotIn(R.pointsTo(V), A.Heaps)) {
          Ok = false;
          CE = "demand query on " + entityName(DB.VarNames, V, "var") +
               " refutes pointee " +
               entityName(DB.HeapNames, *Hp, "heap");
        }
      }
      if (Ok)
        CE = "contained in oracle; " + std::to_string(Checked) +
             " demand spot checks";
      Row(Cell, "oracle", Ok, CE);
    }
  }

  if (Opts.Snapshot) {
    const std::string First = Names.empty() ? std::string() : Names.front();
    if (Opts.SnapshotDir.empty()) {
      Skip(CellPrefix + "/" + First + "/snapshot", "snapshot",
           "no snapshot directory configured");
    } else {
      std::string CE;
      if (Opts.Native)
        Row(CellPrefix + "/" + First + "/native/snapshot", "snapshot",
            checkSnapshotRoundTrip(DB, Cfgs.front(), /*UseDatalog=*/false,
                                   Opts.SnapshotDir, CE),
            CE);
      if (Opts.Datalog)
        Row(CellPrefix + "/" + First + "/datalog/snapshot", "snapshot",
            checkSnapshotRoundTrip(DB, Cfgs.front(), /*UseDatalog=*/true,
                                   Opts.SnapshotDir, CE),
            CE);
    }
  }

  return AllOk;
}
