//===- verify/Differential.cpp - Cross-engine differential checks ---------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Canonical serialization + comparison, and the snapshot round-trip
// identity check. Transformation and context ids are interner-order
// artifacts that legitimately differ between the native and Datalog
// back-ends (and between a cold and a resumed run), so equality is
// decided over rendered *values*: entity names and printed transformer /
// context strings. Two results serialize identically iff their relations
// hold the same facts.
//
//===----------------------------------------------------------------------===//

#include "analysis/Configurations.h"
#include "analysis/DatalogFrontend.h"
#include "analysis/Solver.h"
#include "verify/Internal.h"
#include "verify/Verify.h"

#include <algorithm>

using namespace ctp;
using namespace ctp::analysis;
using namespace ctp::verify;
using namespace ctp::verify::detail;
using facts::FactDB;

std::vector<std::string> verify::canonicalLines(const FactDB &DB,
                                                const Results &R) {
  std::vector<std::string> Lines;
  Lines.reserve(R.Pts.size() + R.Hpts.size() + R.Hload.size() +
                R.Call.size() + R.Reach.size() + R.Gpts.size());
  for (const PtsFact &F : R.Pts)
    Lines.push_back(renderPts(DB, R, F));
  for (const HptsFact &F : R.Hpts)
    Lines.push_back(renderHpts(DB, R, F));
  for (const HloadFact &F : R.Hload)
    Lines.push_back(renderHload(DB, R, F));
  for (const CallFact &F : R.Call)
    Lines.push_back(renderCall(DB, R, F));
  for (const ReachFact &F : R.Reach)
    Lines.push_back(renderReach(DB, R, F));
  for (const GptsFact &F : R.Gpts)
    Lines.push_back(renderGpts(DB, R, F));
  std::sort(Lines.begin(), Lines.end());
  return Lines;
}

bool verify::diffLines(const std::vector<std::string> &A,
                       const std::string &ALabel,
                       const std::vector<std::string> &B,
                       const std::string &BLabel,
                       std::string &Counterexample) {
  std::vector<std::string> OnlyA, OnlyB;
  std::set_difference(A.begin(), A.end(), B.begin(), B.end(),
                      std::back_inserter(OnlyA));
  std::set_difference(B.begin(), B.end(), A.begin(), A.end(),
                      std::back_inserter(OnlyB));
  if (OnlyA.empty() && OnlyB.empty())
    return true;
  // Report the lexicographically first divergence, whichever side owns
  // it, so the counterexample is independent of argument order.
  if (OnlyB.empty() || (!OnlyA.empty() && OnlyA.front() <= OnlyB.front()))
    Counterexample = "only in " + ALabel + ": " + OnlyA.front();
  else
    Counterexample = "only in " + BLabel + ": " + OnlyB.front();
  return false;
}

bool verify::checkSnapshotRoundTrip(const FactDB &DB, const ctx::Config &Cfg,
                                    bool UseDatalog, const std::string &Dir,
                                    std::string &Counterexample) {
  // A snapshot already in Dir is under test, not in the way: it must
  // validate against these facts (a stale one is exactly the corruption
  // this check exists to catch) and then resume to the same fixpoint.
  SnapshotProbe Probe =
      probeSnapshot(Dir, DB, Cfg, UseDatalog, /*Collapse=*/false);
  if (Probe.Status == ResumeStatus::CorruptSnapshot ||
      Probe.Status == ResumeStatus::Mismatch) {
    Counterexample = Probe.Warning.empty()
                         ? std::string("snapshot failed validation")
                         : Probe.Warning;
    return false;
  }

  const bool HadSnapshot = Probe.Status == ResumeStatus::Resumed;
  Results Fresh;
  if (HadSnapshot) {
    // Keep the existing snapshot as the restore source; the fresh solve
    // runs without checkpointing.
    if (UseDatalog)
      Fresh = solveViaDatalog(DB, Cfg);
    else
      Fresh = solve(DB, Cfg);
  } else {
    CheckpointPolicy Ckpt;
    Ckpt.Dir = Dir;
    Ckpt.KeepOnConverge = true;
    if (UseDatalog) {
      DatalogSolveOptions Opts;
      Opts.Checkpoint = Ckpt;
      Fresh = solveViaDatalog(DB, Cfg, Opts);
    } else {
      SolverOptions Opts;
      Opts.Checkpoint = Ckpt;
      Fresh = solve(DB, Cfg, Opts);
    }
    if (!Fresh.Stat.CheckpointError.empty()) {
      Counterexample = "snapshot write failed: " + Fresh.Stat.CheckpointError;
      removeSnapshot(Dir);
      return false;
    }
    Probe = probeSnapshot(Dir, DB, Cfg, UseDatalog, /*Collapse=*/false);
    if (Probe.Status != ResumeStatus::Resumed) {
      Counterexample = "converged snapshot did not validate: " +
                       (Probe.Warning.empty() ? "no snapshot found"
                                              : Probe.Warning);
      removeSnapshot(Dir);
      return false;
    }
  }

  Results Resumed;
  if (UseDatalog) {
    DatalogSolveOptions Opts;
    Opts.Resume = &Probe.Snap;
    Resumed = solveViaDatalog(DB, Cfg, Opts);
  } else {
    SolverOptions Opts;
    Opts.Resume = &Probe.Snap;
    Resumed = solve(DB, Cfg, Opts);
  }
  if (!HadSnapshot)
    removeSnapshot(Dir);
  if (!Resumed.Stat.CheckpointError.empty()) {
    Counterexample = "resume fell back to a cold start: " +
                     Resumed.Stat.CheckpointError;
    return false;
  }

  std::string Diff;
  if (!diffLines(canonicalLines(DB, Fresh), "fresh solve",
                 canonicalLines(DB, Resumed), "resumed solve", Diff)) {
    Counterexample = "resumed result diverges: " + Diff;
    return false;
  }
  return true;
}
