//===- verify/Internal.cpp - Shared verifier machinery --------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "verify/Internal.h"

using namespace ctp;
using namespace ctp::analysis;
using namespace ctp::verify::detail;
using facts::FactDB;

InputIndices::InputIndices(const FactDB &DB) {
  AssignFrom.resize(DB.numVars());
  for (const auto &F : DB.Assigns)
    AssignFrom[F.From].push_back(F.To);

  LoadByBase.resize(DB.numVars());
  for (const auto &F : DB.Loads)
    LoadByBase[F.Base].push_back({F.Field, F.To});

  StoreByValue.resize(DB.numVars());
  for (const auto &F : DB.Stores)
    StoreByValue[F.From].push_back({F.Field, F.Base});

  ActualByVar.resize(DB.numVars());
  for (const auto &F : DB.Actuals)
    ActualByVar[F.Var].push_back({F.Invoke, F.Ordinal});

  for (const auto &F : DB.Formals)
    FormalOf.emplace(pairKey(F.Method, F.Ordinal), F.Var);

  ReturnByVar.resize(DB.numVars());
  for (const auto &F : DB.Returns)
    ReturnByVar[F.Var].push_back(F.Method);

  AssignRetByInvoke.resize(DB.numInvokes());
  for (const auto &F : DB.AssignReturns)
    AssignRetByInvoke[F.Invoke].push_back(F.To);

  VirtByReceiver.resize(DB.numVars());
  for (const auto &F : DB.VirtualInvokes)
    VirtByReceiver[F.Receiver].push_back({F.Invoke, F.Sig});

  HeapTypeOf.assign(DB.numHeaps(), facts::InvalidId);
  for (const auto &F : DB.HeapTypes)
    HeapTypeOf[F.Heap] = F.Type;

  for (const auto &F : DB.Implements)
    Dispatch.emplace(pairKey(F.Type, F.Sig), F.Method);

  ThisOf.assign(DB.numMethods(), facts::InvalidId);
  for (const auto &F : DB.ThisVars)
    ThisOf[F.Method] = F.Var;

  StaticByMethod.resize(DB.numMethods());
  for (const auto &F : DB.StaticInvokes)
    StaticByMethod[F.InMethod].push_back({F.Invoke, F.Target});

  AssignNewByMethod.resize(DB.numMethods());
  for (const auto &F : DB.AssignNews)
    AssignNewByMethod[F.InMethod].push_back({F.Heap, F.To});

  GlobalStoreByValue.resize(DB.numVars());
  for (const auto &F : DB.GlobalStores)
    GlobalStoreByValue[F.From].push_back(F.Global);
  GlobalLoadByGlobal.resize(DB.numGlobals());
  for (const auto &F : DB.GlobalLoads)
    GlobalLoadByGlobal[F.Global].push_back({F.To, F.InMethod});

  ThrowByVar.resize(DB.numVars());
  for (const auto &F : DB.Throws)
    ThrowByVar[F.Var].push_back(F.Method);
  CatchByInvoke.resize(DB.numInvokes());
  for (const auto &F : DB.Catches)
    CatchByInvoke[F.Invoke].push_back(F.To);

  CastByFrom.resize(DB.numVars());
  for (const auto &F : DB.Casts)
    CastByFrom[F.From].push_back({F.To, F.Type});
  for (const auto &F : DB.Subtypes)
    SubtypePairs.insert(pairKey(F.Sub, F.Super));
}

DerivedView::DerivedView(const FactDB &DB, const Results &R) {
  PtsByVar.resize(DB.numVars());
  CallByInvoke.resize(DB.numInvokes());
  CallByCallee.resize(DB.numMethods());
  GptsByGlobal.resize(DB.numGlobals());
  ReachByMethod.resize(DB.numMethods());
  for (const PtsFact &F : R.Pts) {
    PtsSet.insert(keyOf(F));
    PtsByVar[F.Var].push_back({F.Heap, F.T});
  }
  for (const HptsFact &F : R.Hpts) {
    HptsSet.insert(keyOf(F));
    HptsByBaseField[pairKey(F.Base, F.Field)].push_back({F.Heap, F.T});
  }
  for (const HloadFact &F : R.Hload) {
    HloadSet.insert(keyOf(F));
    HloadByBaseField[pairKey(F.Base, F.Field)].push_back({F.Var, F.T});
  }
  for (const CallFact &F : R.Call) {
    CallSet.insert(keyOf(F));
    CallByInvoke[F.Invoke].push_back({F.Method, F.T});
    CallByCallee[F.Method].push_back({F.Invoke, F.T});
  }
  for (const ReachFact &F : R.Reach) {
    ReachSet.insert(keyOf(F));
    ReachByMethod[F.Method].push_back(F.CtxtId);
  }
  for (const GptsFact &F : R.Gpts) {
    GptsSet.insert(keyOf(F));
    GptsByGlobal[F.Global].push_back({F.Heap, F.T});
  }
}

std::string verify::detail::entityName(const std::vector<std::string> &Names,
                                       std::uint32_t Id, const char *Kind) {
  if (Id < Names.size() && !Names[Id].empty())
    return Names[Id];
  return std::string(Kind) + "#" + std::to_string(Id);
}

namespace {

std::string tstr(const Results &R, ctx::TransformId T) {
  return R.Dom ? R.Dom->toString(T) : "T#" + std::to_string(T);
}

std::string cstr(const Results &R, std::uint32_t CtxtId) {
  if (R.ReachCtxts && CtxtId < R.ReachCtxts->size())
    return ctx::printCtxtVec((*R.ReachCtxts)[CtxtId]);
  return "C#" + std::to_string(CtxtId);
}

} // namespace

std::string verify::detail::renderPts(const FactDB &DB, const Results &R,
                                      const PtsFact &F) {
  return "pts(" + entityName(DB.VarNames, F.Var, "var") + ", " +
         entityName(DB.HeapNames, F.Heap, "heap") + ") [" + tstr(R, F.T) +
         "]";
}

std::string verify::detail::renderHpts(const FactDB &DB, const Results &R,
                                       const HptsFact &F) {
  return "hpts(" + entityName(DB.HeapNames, F.Base, "heap") + "." +
         entityName(DB.FieldNames, F.Field, "field") + ", " +
         entityName(DB.HeapNames, F.Heap, "heap") + ") [" + tstr(R, F.T) +
         "]";
}

std::string verify::detail::renderHload(const FactDB &DB, const Results &R,
                                        const HloadFact &F) {
  return "hload(" + entityName(DB.HeapNames, F.Base, "heap") + "." +
         entityName(DB.FieldNames, F.Field, "field") + ", " +
         entityName(DB.VarNames, F.Var, "var") + ") [" + tstr(R, F.T) + "]";
}

std::string verify::detail::renderCall(const FactDB &DB, const Results &R,
                                       const CallFact &F) {
  return "call(" + entityName(DB.InvokeNames, F.Invoke, "invoke") + ", " +
         entityName(DB.MethodNames, F.Method, "method") + ") [" +
         tstr(R, F.T) + "]";
}

std::string verify::detail::renderReach(const FactDB &DB, const Results &R,
                                        const ReachFact &F) {
  return "reach(" + entityName(DB.MethodNames, F.Method, "method") + ") @ " +
         cstr(R, F.CtxtId);
}

std::string verify::detail::renderGpts(const FactDB &DB, const Results &R,
                                       const GptsFact &F) {
  return "gpts(" + entityName(DB.GlobalNames, F.Global, "global") + ", " +
         entityName(DB.HeapNames, F.Heap, "heap") + ") [" + tstr(R, F.T) +
         "]";
}

std::string verify::detail::renderFact(const FactDB &DB, const Results &R,
                                       ProvRel Rel, const FactKey &K) {
  switch (Rel) {
  case ProvRel::Pts:
    return renderPts(DB, R, PtsFact{K[0], K[1], K[2]});
  case ProvRel::Hpts:
    return renderHpts(DB, R, HptsFact{K[0], K[1], K[2], K[3]});
  case ProvRel::Hload:
    return renderHload(DB, R, HloadFact{K[0], K[1], K[2], K[3]});
  case ProvRel::Call:
    return renderCall(DB, R, CallFact{K[0], K[1], K[2]});
  case ProvRel::Reach:
    return renderReach(DB, R, ReachFact{K[0], K[1]});
  case ProvRel::Gpts:
    return renderGpts(DB, R, GptsFact{K[0], K[1], K[2]});
  }
  return "?";
}
