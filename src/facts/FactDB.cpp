//===- facts/FactDB.cpp - Fact database integrity checks ------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "facts/FactDB.h"

using namespace ctp;
using namespace ctp::facts;

std::size_t FactDB::numInputFacts() const {
  return Actuals.size() + Assigns.size() + AssignNews.size() +
         AssignReturns.size() + Formals.size() + HeapTypes.size() +
         Implements.size() + Loads.size() + Returns.size() +
         StaticInvokes.size() + Stores.size() + ThisVars.size() +
         VirtualInvokes.size() + GlobalStores.size() + GlobalLoads.size() +
         Throws.size() + Catches.size() + Casts.size() + Subtypes.size() +
         Spawns.size();
}

namespace {

bool inRange(Id X, std::size_t Bound) { return X < Bound; }

} // namespace

std::string FactDB::validate() const {
  const std::size_t NV = numVars(), NH = numHeaps(), NM = numMethods(),
                    NI = numInvokes(), NF = numFields(), NT = numTypes(),
                    NS = numSigs();
  if (VarParent.size() != NV)
    return "VarParent table size mismatch";
  if (HeapParent.size() != NH)
    return "HeapParent table size mismatch";
  if (InvokeParent.size() != NI)
    return "InvokeParent table size mismatch";
  if (MethodClass.size() != NM)
    return "MethodClass table size mismatch";
  if (EntryMethods.empty())
    return "no entry method";
  for (Id E : EntryMethods)
    if (!inRange(E, NM))
      return "entry method out of range";
  for (Id P : VarParent)
    if (!inRange(P, NM))
      return "variable parent out of range";
  for (Id P : HeapParent)
    if (!inRange(P, NM))
      return "heap parent out of range";
  for (Id P : InvokeParent)
    if (!inRange(P, NM))
      return "invocation parent out of range";
  for (Id C : MethodClass)
    if (!inRange(C, NT))
      return "method class out of range";

  for (const auto &F : Actuals)
    if (!inRange(F.Var, NV) || !inRange(F.Invoke, NI))
      return "actual fact out of range";
  for (const auto &F : Assigns)
    if (!inRange(F.From, NV) || !inRange(F.To, NV))
      return "assign fact out of range";
  for (const auto &F : AssignNews)
    if (!inRange(F.Heap, NH) || !inRange(F.To, NV) ||
        !inRange(F.InMethod, NM))
      return "assign_new fact out of range";
  for (const auto &F : AssignReturns)
    if (!inRange(F.Invoke, NI) || !inRange(F.To, NV))
      return "assign_return fact out of range";
  for (const auto &F : Formals)
    if (!inRange(F.Var, NV) || !inRange(F.Method, NM))
      return "formal fact out of range";
  for (const auto &F : HeapTypes)
    if (!inRange(F.Heap, NH) || !inRange(F.Type, NT))
      return "heap_type fact out of range";
  for (const auto &F : Implements)
    if (!inRange(F.Method, NM) || !inRange(F.Type, NT) ||
        !inRange(F.Sig, NS))
      return "implements fact out of range";
  for (const auto &F : Loads)
    if (!inRange(F.Base, NV) || !inRange(F.Field, NF) || !inRange(F.To, NV))
      return "load fact out of range";
  for (const auto &F : Returns)
    if (!inRange(F.Var, NV) || !inRange(F.Method, NM))
      return "return fact out of range";
  for (const auto &F : StaticInvokes)
    if (!inRange(F.Invoke, NI) || !inRange(F.Target, NM) ||
        !inRange(F.InMethod, NM))
      return "static_invoke fact out of range";
  for (const auto &F : Stores)
    if (!inRange(F.From, NV) || !inRange(F.Field, NF) ||
        !inRange(F.Base, NV))
      return "store fact out of range";
  for (const auto &F : ThisVars)
    if (!inRange(F.Var, NV) || !inRange(F.Method, NM))
      return "this_var fact out of range";
  for (const auto &F : VirtualInvokes)
    if (!inRange(F.Invoke, NI) || !inRange(F.Receiver, NV) ||
        !inRange(F.Sig, NS))
      return "virtual_invoke fact out of range";
  const std::size_t NG = numGlobals();
  for (const auto &F : GlobalStores)
    if (!inRange(F.From, NV) || !inRange(F.Global, NG))
      return "global_store fact out of range";
  for (const auto &F : GlobalLoads)
    if (!inRange(F.Global, NG) || !inRange(F.To, NV) ||
        !inRange(F.InMethod, NM))
      return "global_load fact out of range";
  for (const auto &F : Throws)
    if (!inRange(F.Var, NV) || !inRange(F.Method, NM))
      return "throw fact out of range";
  for (const auto &F : Catches)
    if (!inRange(F.Invoke, NI) || !inRange(F.To, NV))
      return "catch fact out of range";
  for (const auto &F : Casts)
    if (!inRange(F.From, NV) || !inRange(F.To, NV) || !inRange(F.Type, NT))
      return "cast fact out of range";
  for (const auto &F : Subtypes)
    if (!inRange(F.Sub, NT) || !inRange(F.Super, NT))
      return "subtype fact out of range";
  for (const auto &F : Spawns)
    if (!inRange(F.Invoke, NI))
      return "spawn fact out of range";
  return "";
}
