//===- facts/FactDB.cpp - Fact database integrity checks ------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "facts/FactDB.h"

#include "support/Hashing.h"

using namespace ctp;
using namespace ctp::facts;

std::size_t FactDB::numInputFacts() const {
  return Actuals.size() + Assigns.size() + AssignNews.size() +
         AssignReturns.size() + Formals.size() + HeapTypes.size() +
         Implements.size() + Loads.size() + Returns.size() +
         StaticInvokes.size() + Stores.size() + ThisVars.size() +
         VirtualInvokes.size() + GlobalStores.size() + GlobalLoads.size() +
         Throws.size() + Catches.size() + Casts.size() + Subtypes.size() +
         Spawns.size() + TaintSources.size() + TaintSinks.size() +
         Sanitizers.size();
}

namespace {

bool inRange(Id X, std::size_t Bound) { return X < Bound; }

constexpr std::uint64_t FnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t FnvPrime = 0x100000001b3ULL;

/// FNV-1a absorption of one string plus a terminator byte (so adjacent
/// fields cannot run together: ("ab","c") != ("a","bc")).
std::uint64_t absorb(std::uint64_t H, const std::string &S) {
  for (char C : S) {
    H ^= static_cast<std::uint8_t>(C);
    H *= FnvPrime;
  }
  H ^= 0xff;
  H *= FnvPrime;
  return H;
}

std::uint64_t absorb(std::uint64_t H, std::uint64_t V) {
  for (int I = 0; I < 8; ++I) {
    H ^= static_cast<std::uint8_t>(V >> (8 * I));
    H *= FnvPrime;
  }
  return H;
}

/// Accumulates per-item hashes commutatively (wrapping addition), which
/// is what makes the fingerprint independent of row order.
struct ContentSum {
  std::uint64_t Sum = 0;
  void add(std::uint64_t H) { Sum += mix64(H); }
};

} // namespace

std::uint64_t FactDB::fingerprint() const {
  ContentSum CS;
  auto Name = [](const std::vector<std::string> &Names, Id I) -> const
      std::string & { return Names[I]; };

  // Name domains: a name present in the domain but referenced by no fact
  // still distinguishes two databases.
  auto AddDomain = [&](const char *Tag,
                       const std::vector<std::string> &Names) {
    for (const std::string &N : Names)
      CS.add(absorb(absorb(FnvOffset, std::string(Tag)), N));
  };
  AddDomain("var", VarNames);
  AddDomain("heap", HeapNames);
  AddDomain("method", MethodNames);
  AddDomain("invoke", InvokeNames);
  AddDomain("field", FieldNames);
  AddDomain("type", TypeNames);
  AddDomain("sig", SigNames);
  AddDomain("global", GlobalNames);

  // One hash per fact, seeded with the predicate tag, absorbing the
  // referenced entities by name (order-independence must survive id
  // renumbering, and names are the id-free identity of an entity).
  auto Fact = [&](const char *Tag, std::initializer_list<const std::string *>
                                       Fields,
                  std::uint64_t Ordinal = 0) {
    std::uint64_t H = absorb(FnvOffset, std::string(Tag));
    for (const std::string *F : Fields)
      H = absorb(H, *F);
    H = absorb(H, Ordinal);
    CS.add(H);
  };

  for (Id E : EntryMethods)
    Fact("entry", {&Name(MethodNames, E)});
  for (const auto &F : Actuals)
    Fact("actual", {&Name(VarNames, F.Var), &Name(InvokeNames, F.Invoke)},
         F.Ordinal);
  for (const auto &F : Assigns)
    Fact("assign", {&Name(VarNames, F.From), &Name(VarNames, F.To)});
  for (const auto &F : AssignNews)
    Fact("assign_new", {&Name(HeapNames, F.Heap), &Name(VarNames, F.To),
                        &Name(MethodNames, F.InMethod)});
  for (const auto &F : AssignReturns)
    Fact("assign_return",
         {&Name(InvokeNames, F.Invoke), &Name(VarNames, F.To)});
  for (const auto &F : Formals)
    Fact("formal", {&Name(VarNames, F.Var), &Name(MethodNames, F.Method)},
         F.Ordinal);
  for (const auto &F : HeapTypes)
    Fact("heap_type", {&Name(HeapNames, F.Heap), &Name(TypeNames, F.Type)});
  for (const auto &F : Implements)
    Fact("implements", {&Name(MethodNames, F.Method),
                        &Name(TypeNames, F.Type), &Name(SigNames, F.Sig)});
  for (const auto &F : Loads)
    Fact("load", {&Name(VarNames, F.Base), &Name(FieldNames, F.Field),
                  &Name(VarNames, F.To)});
  for (const auto &F : Returns)
    Fact("return", {&Name(VarNames, F.Var), &Name(MethodNames, F.Method)});
  for (const auto &F : StaticInvokes)
    Fact("static_invoke",
         {&Name(InvokeNames, F.Invoke), &Name(MethodNames, F.Target),
          &Name(MethodNames, F.InMethod)});
  for (const auto &F : Stores)
    Fact("store", {&Name(VarNames, F.From), &Name(FieldNames, F.Field),
                   &Name(VarNames, F.Base)});
  for (const auto &F : ThisVars)
    Fact("this_var", {&Name(VarNames, F.Var), &Name(MethodNames, F.Method)});
  for (const auto &F : VirtualInvokes)
    Fact("virtual_invoke",
         {&Name(InvokeNames, F.Invoke), &Name(VarNames, F.Receiver),
          &Name(SigNames, F.Sig)});
  for (const auto &F : GlobalStores)
    Fact("global_store",
         {&Name(VarNames, F.From), &Name(GlobalNames, F.Global)});
  for (const auto &F : GlobalLoads)
    Fact("global_load", {&Name(GlobalNames, F.Global), &Name(VarNames, F.To),
                         &Name(MethodNames, F.InMethod)});
  for (const auto &F : Throws)
    Fact("throw", {&Name(VarNames, F.Var), &Name(MethodNames, F.Method)});
  for (const auto &F : Catches)
    Fact("catch", {&Name(InvokeNames, F.Invoke), &Name(VarNames, F.To)});
  for (const auto &F : Casts)
    Fact("cast", {&Name(VarNames, F.From), &Name(VarNames, F.To),
                  &Name(TypeNames, F.Type)});
  for (const auto &F : Subtypes)
    Fact("subtype", {&Name(TypeNames, F.Sub), &Name(TypeNames, F.Super)});
  for (const auto &F : Spawns)
    Fact("spawn", {&Name(InvokeNames, F.Invoke)});
  // Taint annotations: the attachment kind is hashed as a literal word so
  // an invocation and a field that happen to share a name cannot collide.
  static const std::string OnInvoke = "on_invoke", OnField = "on_field";
  auto Attach = [&](const char *Tag, Id IsField, Id Entity) {
    Fact(Tag, {IsField != 0 ? &OnField : &OnInvoke,
               IsField != 0 ? &Name(FieldNames, Entity)
                            : &Name(InvokeNames, Entity)});
  };
  for (const auto &F : TaintSources)
    Attach("taint_source", F.IsField, F.Entity);
  for (const auto &F : TaintSinks)
    Attach("taint_sink", F.IsField, F.Entity);
  for (const auto &F : Sanitizers)
    Fact("sanitizer", {&Name(InvokeNames, F.Invoke)});

  // Parent/classOf attributes, keyed by name on both sides.
  for (std::size_t I = 0; I < VarParent.size(); ++I)
    Fact("var_parent", {&VarNames[I], &Name(MethodNames, VarParent[I])});
  for (std::size_t I = 0; I < HeapParent.size(); ++I)
    Fact("heap_parent", {&HeapNames[I], &Name(MethodNames, HeapParent[I])});
  for (std::size_t I = 0; I < InvokeParent.size(); ++I)
    Fact("invoke_parent",
         {&InvokeNames[I], &Name(MethodNames, InvokeParent[I])});
  for (std::size_t I = 0; I < MethodClass.size(); ++I)
    Fact("method_class", {&MethodNames[I], &Name(TypeNames, MethodClass[I])});

  // Mix the total in so an empty database does not fingerprint as 0.
  return mix64(CS.Sum ^ numInputFacts());
}

std::uint64_t FactDB::layoutHash() const {
  std::uint64_t H = FnvOffset;
  auto Strings = [&H](const std::vector<std::string> &Names) {
    H = absorb(H, static_cast<std::uint64_t>(Names.size()));
    for (const std::string &N : Names)
      H = absorb(H, N);
  };
  auto Ids = [&H](const std::vector<Id> &V) {
    H = absorb(H, static_cast<std::uint64_t>(V.size()));
    for (Id X : V)
      H = absorb(H, static_cast<std::uint64_t>(X));
  };
  // Stored order everywhere: two databases share a layout hash iff the
  // name tables assign identical ids and every fact vector lists its
  // rows in the identical order.
  Strings(VarNames);
  Strings(HeapNames);
  Strings(MethodNames);
  Strings(InvokeNames);
  Strings(FieldNames);
  Strings(TypeNames);
  Strings(SigNames);
  Strings(GlobalNames);
  Ids(EntryMethods);
  // Vector lengths first, so rows cannot shift between adjacent
  // predicates without changing the hash.
  for (std::size_t S :
       {Actuals.size(), Assigns.size(), AssignNews.size(),
        AssignReturns.size(), Formals.size(), HeapTypes.size(),
        Implements.size(), Loads.size(), Returns.size(),
        StaticInvokes.size(), Stores.size(), ThisVars.size(),
        VirtualInvokes.size(), GlobalStores.size(), GlobalLoads.size(),
        Throws.size(), Catches.size(), Casts.size(), Subtypes.size(),
        Spawns.size(), TaintSources.size(), TaintSinks.size(),
        Sanitizers.size()})
    H = absorb(H, static_cast<std::uint64_t>(S));
  auto Row = [&H](std::initializer_list<Id> Fields) {
    for (Id F : Fields)
      H = absorb(H, static_cast<std::uint64_t>(F));
  };
  for (const auto &F : Actuals)
    Row({F.Var, F.Invoke, F.Ordinal});
  for (const auto &F : Assigns)
    Row({F.From, F.To});
  for (const auto &F : AssignNews)
    Row({F.Heap, F.To, F.InMethod});
  for (const auto &F : AssignReturns)
    Row({F.Invoke, F.To});
  for (const auto &F : Formals)
    Row({F.Var, F.Method, F.Ordinal});
  for (const auto &F : HeapTypes)
    Row({F.Heap, F.Type});
  for (const auto &F : Implements)
    Row({F.Method, F.Type, F.Sig});
  for (const auto &F : Loads)
    Row({F.Base, F.Field, F.To});
  for (const auto &F : Returns)
    Row({F.Var, F.Method});
  for (const auto &F : StaticInvokes)
    Row({F.Invoke, F.Target, F.InMethod});
  for (const auto &F : Stores)
    Row({F.From, F.Field, F.Base});
  for (const auto &F : ThisVars)
    Row({F.Var, F.Method});
  for (const auto &F : VirtualInvokes)
    Row({F.Invoke, F.Receiver, F.Sig});
  for (const auto &F : GlobalStores)
    Row({F.From, F.Global});
  for (const auto &F : GlobalLoads)
    Row({F.Global, F.To, F.InMethod});
  for (const auto &F : Throws)
    Row({F.Var, F.Method});
  for (const auto &F : Catches)
    Row({F.Invoke, F.To});
  for (const auto &F : Casts)
    Row({F.From, F.To, F.Type});
  for (const auto &F : Subtypes)
    Row({F.Sub, F.Super});
  for (const auto &F : Spawns)
    Row({F.Invoke});
  for (const auto &F : TaintSources)
    Row({F.IsField, F.Entity});
  for (const auto &F : TaintSinks)
    Row({F.IsField, F.Entity});
  for (const auto &F : Sanitizers)
    Row({F.Invoke});
  Ids(VarParent);
  Ids(HeapParent);
  Ids(InvokeParent);
  Ids(MethodClass);
  return mix64(H);
}

std::string FactDB::validate() const {
  const std::size_t NV = numVars(), NH = numHeaps(), NM = numMethods(),
                    NI = numInvokes(), NF = numFields(), NT = numTypes(),
                    NS = numSigs();
  if (VarParent.size() != NV)
    return "VarParent table size mismatch";
  if (HeapParent.size() != NH)
    return "HeapParent table size mismatch";
  if (InvokeParent.size() != NI)
    return "InvokeParent table size mismatch";
  if (MethodClass.size() != NM)
    return "MethodClass table size mismatch";
  if (EntryMethods.empty())
    return "no entry method";
  for (Id E : EntryMethods)
    if (!inRange(E, NM))
      return "entry method out of range";
  for (Id P : VarParent)
    if (!inRange(P, NM))
      return "variable parent out of range";
  for (Id P : HeapParent)
    if (!inRange(P, NM))
      return "heap parent out of range";
  for (Id P : InvokeParent)
    if (!inRange(P, NM))
      return "invocation parent out of range";
  for (Id C : MethodClass)
    if (!inRange(C, NT))
      return "method class out of range";

  for (const auto &F : Actuals)
    if (!inRange(F.Var, NV) || !inRange(F.Invoke, NI))
      return "actual fact out of range";
  for (const auto &F : Assigns)
    if (!inRange(F.From, NV) || !inRange(F.To, NV))
      return "assign fact out of range";
  for (const auto &F : AssignNews)
    if (!inRange(F.Heap, NH) || !inRange(F.To, NV) ||
        !inRange(F.InMethod, NM))
      return "assign_new fact out of range";
  for (const auto &F : AssignReturns)
    if (!inRange(F.Invoke, NI) || !inRange(F.To, NV))
      return "assign_return fact out of range";
  for (const auto &F : Formals)
    if (!inRange(F.Var, NV) || !inRange(F.Method, NM))
      return "formal fact out of range";
  for (const auto &F : HeapTypes)
    if (!inRange(F.Heap, NH) || !inRange(F.Type, NT))
      return "heap_type fact out of range";
  for (const auto &F : Implements)
    if (!inRange(F.Method, NM) || !inRange(F.Type, NT) ||
        !inRange(F.Sig, NS))
      return "implements fact out of range";
  for (const auto &F : Loads)
    if (!inRange(F.Base, NV) || !inRange(F.Field, NF) || !inRange(F.To, NV))
      return "load fact out of range";
  for (const auto &F : Returns)
    if (!inRange(F.Var, NV) || !inRange(F.Method, NM))
      return "return fact out of range";
  for (const auto &F : StaticInvokes)
    if (!inRange(F.Invoke, NI) || !inRange(F.Target, NM) ||
        !inRange(F.InMethod, NM))
      return "static_invoke fact out of range";
  for (const auto &F : Stores)
    if (!inRange(F.From, NV) || !inRange(F.Field, NF) ||
        !inRange(F.Base, NV))
      return "store fact out of range";
  for (const auto &F : ThisVars)
    if (!inRange(F.Var, NV) || !inRange(F.Method, NM))
      return "this_var fact out of range";
  for (const auto &F : VirtualInvokes)
    if (!inRange(F.Invoke, NI) || !inRange(F.Receiver, NV) ||
        !inRange(F.Sig, NS))
      return "virtual_invoke fact out of range";
  const std::size_t NG = numGlobals();
  for (const auto &F : GlobalStores)
    if (!inRange(F.From, NV) || !inRange(F.Global, NG))
      return "global_store fact out of range";
  for (const auto &F : GlobalLoads)
    if (!inRange(F.Global, NG) || !inRange(F.To, NV) ||
        !inRange(F.InMethod, NM))
      return "global_load fact out of range";
  for (const auto &F : Throws)
    if (!inRange(F.Var, NV) || !inRange(F.Method, NM))
      return "throw fact out of range";
  for (const auto &F : Catches)
    if (!inRange(F.Invoke, NI) || !inRange(F.To, NV))
      return "catch fact out of range";
  for (const auto &F : Casts)
    if (!inRange(F.From, NV) || !inRange(F.To, NV) || !inRange(F.Type, NT))
      return "cast fact out of range";
  for (const auto &F : Subtypes)
    if (!inRange(F.Sub, NT) || !inRange(F.Super, NT))
      return "subtype fact out of range";
  for (const auto &F : Spawns)
    if (!inRange(F.Invoke, NI))
      return "spawn fact out of range";
  for (const auto &F : TaintSources)
    if (F.IsField > 1 ||
        !inRange(F.Entity, F.IsField != 0 ? NF : NI))
      return "taint_source fact out of range";
  for (const auto &F : TaintSinks)
    if (F.IsField > 1 ||
        !inRange(F.Entity, F.IsField != 0 ? NF : NI))
      return "taint_sink fact out of range";
  for (const auto &F : Sanitizers)
    if (!inRange(F.Invoke, NI))
      return "sanitizer fact out of range";
  return "";
}
