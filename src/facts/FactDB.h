//===- facts/FactDB.h - Figure-3 input predicates ---------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thirteen input predicates of Figure 3 of the paper, stored as flat
/// vectors of id tuples, plus the auxiliary parent/classOf information the
/// context-sensitivity flavours need (classOf(H) for type sensitivity is
/// "the class type in which the method that contains H is implemented").
///
/// A FactDB is the sole interface between program representations and the
/// analysis: it can be extracted from an ir::Program (facts/Extract.h) or
/// read from Doop-style TSV files (facts/TsvIO.h), mirroring how the paper
/// consumes Soot-extracted facts.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_FACTS_FACTDB_H
#define CTP_FACTS_FACTDB_H

#include <cstdint>
#include <string>
#include <vector>

namespace ctp {
namespace facts {

using Id = std::uint32_t;
constexpr Id InvalidId = UINT32_MAX;

/// assign(Z, Y): "Y = Z;" — value flows from Z to Y.
struct AssignFact {
  Id From, To;
};

/// assign_new(H, Y, P): "Y = new T(); // H" inside method P.
struct AssignNewFact {
  Id Heap, To, InMethod;
};

/// assign_return(I, Y): the return value of invocation I is assigned to Y.
struct AssignReturnFact {
  Id Invoke, To;
};

/// actual(Z, I, O): Z is the O-th actual of invocation I (0-based).
struct ActualFact {
  Id Var, Invoke, Ordinal;
};

/// formal(Y, P, O): Y is the O-th formal of method P (0-based).
struct FormalFact {
  Id Var, Method, Ordinal;
};

/// heap_type(H, T): objects allocated at H have run-time type T.
struct HeapTypeFact {
  Id Heap, Type;
};

/// implements(Q, T, S): invoking signature S on a receiver of type T
/// dispatches to concrete method Q.
struct ImplementsFact {
  Id Method, Type, Sig;
};

/// load(Y, F, Z): "Z = Y.F;" — Y is the base, Z the destination.
struct LoadFact {
  Id Base, Field, To;
};

/// return(Z, P): Z may carry the return value of method P.
struct ReturnFact {
  Id Var, Method;
};

/// static_invoke(I, Q, P): invocation I in method P statically calls Q.
struct StaticInvokeFact {
  Id Invoke, Target, InMethod;
};

/// store(X, F, Z): "Z.F = X;" — X is the stored value, Z the base.
struct StoreFact {
  Id From, Field, Base;
};

/// this_var(Y, Q): Y is the `this` variable of method Q.
struct ThisVarFact {
  Id Var, Method;
};

/// virtual_invoke(I, Z, S): invocation I dispatches signature S on the
/// object pointed to by receiver variable Z.
struct VirtualInvokeFact {
  Id Invoke, Receiver, Sig;
};

/// global_store(X, G): "G = X;" for static/global field G.
struct GlobalStoreFact {
  Id From, Global;
};

/// global_load(G, Z, P): "Z = G;" inside method P.
struct GlobalLoadFact {
  Id Global, To, InMethod;
};

/// throw(Z, P): method P may throw the object held by Z.
struct ThrowFact {
  Id Var, Method;
};

/// catch(I, Y): exceptions escaping the callee of invocation I are caught
/// into Y.
struct CatchFact {
  Id Invoke, To;
};

/// cast(Z, Y, T): "Y = (T) Z;" — only objects of a subtype of T flow.
struct CastFact {
  Id From, To, Type;
};

/// subtype(T1, T2): T1 is T2 or transitively extends it. Materialized by
/// the extractor (reflexive-transitive closure of the superclass chain).
struct SubtypeFact {
  Id Sub, Super;
};

/// spawn(I): invocation I is a thread-spawn marker (`Thread.start`-style).
/// I also appears in virtual_invoke — data flow into the spawned entry
/// method is exactly a virtual call's — but execution is concurrent: the
/// resolved targets of I are thread entry points for the race-candidate
/// client, and the call binds no result.
struct SpawnFact {
  Id Invoke;
};

/// taint_source(K, E): values produced by entity E are tainted. K selects
/// the entity kind: IsField == 0 means E is an invocation (the call's
/// result objects are tainted), IsField == 1 means E is a field (objects
/// stored into it are tainted). Optional on read, like Spawn.facts.
struct TaintSourceFact {
  Id IsField, Entity;
};

/// taint_sink(K, E): tainted values must not reach entity E — the actuals
/// of an invocation (IsField == 0) or the values stored into a field
/// (IsField == 1). Optional on read.
struct TaintSinkFact {
  Id IsField, Entity;
};

/// sanitizer(I): invocation I launders its inputs — the call's result is
/// trusted clean even when its actuals were tainted. Call sites only (a
/// field cannot launder values). Optional on read.
struct SanitizerFact {
  Id Invoke;
};

/// The extracted-facts database consumed by every analysis in this project.
struct FactDB {
  // --- Domain sizes and human-readable names (names are only used for
  // printing results; the analysis operates on ids). ---
  std::vector<std::string> VarNames;
  std::vector<std::string> HeapNames;
  std::vector<std::string> MethodNames;
  std::vector<std::string> InvokeNames;
  std::vector<std::string> FieldNames;
  std::vector<std::string> TypeNames;
  std::vector<std::string> SigNames;

  /// Program entry point(s). reach(main, [entry]) seeds the analysis.
  std::vector<Id> EntryMethods;

  // --- Figure 3 input predicates. ---
  std::vector<ActualFact> Actuals;
  std::vector<AssignFact> Assigns;
  std::vector<AssignNewFact> AssignNews;
  std::vector<AssignReturnFact> AssignReturns;
  std::vector<FormalFact> Formals;
  std::vector<HeapTypeFact> HeapTypes;
  std::vector<ImplementsFact> Implements;
  std::vector<LoadFact> Loads;
  std::vector<ReturnFact> Returns;
  std::vector<StaticInvokeFact> StaticInvokes;
  std::vector<StoreFact> Stores;
  std::vector<ThisVarFact> ThisVars;
  std::vector<VirtualInvokeFact> VirtualInvokes;

  // --- Extensions present in the paper's evaluated implementation but
  // elided from its Figure 3 (static fields, exceptions). ---
  std::vector<std::string> GlobalNames;
  std::vector<GlobalStoreFact> GlobalStores;
  std::vector<GlobalLoadFact> GlobalLoads;
  std::vector<ThrowFact> Throws;
  std::vector<CatchFact> Catches;
  std::vector<CastFact> Casts;
  std::vector<SubtypeFact> Subtypes;
  std::vector<SpawnFact> Spawns;

  // --- Taint-client annotations (clients/Taint.h). Like Spawn.facts,
  // these are a later schema addition: optional on read, always written.
  std::vector<TaintSourceFact> TaintSources;
  std::vector<TaintSinkFact> TaintSinks;
  std::vector<SanitizerFact> Sanitizers;

  std::size_t numGlobals() const { return GlobalNames.size(); }

  // --- Auxiliary per-entity attributes used by flavour policies and
  // clients (parent(...) and classOf(...) in the paper's prose). ---
  std::vector<Id> VarParent;     ///< variable -> declaring method
  std::vector<Id> HeapParent;    ///< heap site -> containing method
  std::vector<Id> InvokeParent;  ///< invocation -> containing method
  std::vector<Id> MethodClass;   ///< method -> declaring class

  std::size_t numVars() const { return VarNames.size(); }
  std::size_t numHeaps() const { return HeapNames.size(); }
  std::size_t numMethods() const { return MethodNames.size(); }
  std::size_t numInvokes() const { return InvokeNames.size(); }
  std::size_t numFields() const { return FieldNames.size(); }
  std::size_t numTypes() const { return TypeNames.size(); }
  std::size_t numSigs() const { return SigNames.size(); }

  /// classOf(H): the class declaring the method that contains heap site H.
  Id classOfHeap(Id H) const { return MethodClass[HeapParent[H]]; }

  /// Total number of input facts across all thirteen predicates.
  std::size_t numInputFacts() const;

  /// Deterministic, order-independent content hash of everything the
  /// analysis consumes: every fact is hashed through its entity *names*
  /// (not ids) and the per-fact hashes are combined commutatively, so two
  /// fact directories holding the same facts in any row order — and hence
  /// under any id assignment — fingerprint identically. Used to decide
  /// whether a checkpoint snapshot belongs to this fact set at all.
  std::uint64_t fingerprint() const;

  /// Order-dependent companion of fingerprint(): hashes the exact id
  /// layout (name tables in order) and fact order. Two databases agree
  /// iff they would drive the solver through the identical derivation
  /// sequence, which is the stronger precondition a byte-identical
  /// checkpoint *resume* needs (id assignment and fact order determine
  /// rule-firing order).
  std::uint64_t layoutHash() const;

  /// Checks referential integrity of every fact (ids within domain bounds,
  /// parent tables sized to domains). \returns an empty string if valid.
  std::string validate() const;
};

} // namespace facts
} // namespace ctp

#endif // CTP_FACTS_FACTDB_H
