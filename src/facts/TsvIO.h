//===- facts/TsvIO.h - Doop-style facts directory I/O -----------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a FactDB to a directory of Doop-style tab-separated ".facts"
/// files (one file per predicate, one fact per line, entity names as
/// attributes) and reads such a directory back. This matches the exchange
/// format of the paper's pipeline, where a Soot-based generator writes
/// facts to disk and the Datalog engine reads them.
///
/// Files written:
///   Domain.var / .heap / .method / .invoke / .field / .type / .sig
///   Entry.facts, Actual.facts, Assign.facts, AssignNew.facts,
///   AssignReturn.facts, Formal.facts, HeapType.facts, Implements.facts,
///   Load.facts, Return.facts, StaticInvoke.facts, Store.facts,
///   ThisVar.facts, VirtualInvoke.facts, VarParent.facts,
///   HeapParent.facts, InvokeParent.facts, MethodClass.facts
///
//===----------------------------------------------------------------------===//

#ifndef CTP_FACTS_TSVIO_H
#define CTP_FACTS_TSVIO_H

#include "facts/FactDB.h"

#include <string>

namespace ctp {
namespace facts {

/// Writes \p DB into directory \p Dir (which must already exist).
/// \returns an empty string on success, else an error description.
std::string writeFactsDir(const FactDB &DB, const std::string &Dir);

/// Reads a facts directory previously written by writeFactsDir (or by any
/// producer following the same schema) into \p DB.
/// \returns an empty string on success, else an error description.
std::string readFactsDir(const std::string &Dir, FactDB &DB);

} // namespace facts
} // namespace ctp

#endif // CTP_FACTS_TSVIO_H
