//===- facts/TsvIO.h - Doop-style facts directory I/O -----------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a FactDB to a directory of Doop-style tab-separated ".facts"
/// files (one file per predicate, one fact per line, entity names as
/// attributes) and reads such a directory back. This matches the exchange
/// format of the paper's pipeline, where a Soot-based generator writes
/// facts to disk and the Datalog engine reads them.
///
/// Files written:
///   Domain.var / .heap / .method / .invoke / .field / .type / .sig
///   Entry.facts, Actual.facts, Assign.facts, AssignNew.facts,
///   AssignReturn.facts, Formal.facts, HeapType.facts, Implements.facts,
///   Load.facts, Return.facts, StaticInvoke.facts, Store.facts,
///   ThisVar.facts, VirtualInvoke.facts, VarParent.facts,
///   HeapParent.facts, InvokeParent.facts, MethodClass.facts,
///   Spawn.facts (thread-spawn invocation markers; optional on read —
///   directories from before the schema gained spawns load as spawn-free),
///   TaintSource.facts / TaintSink.facts (rows "invoke\t<name>" or
///   "field\t<name>") and Sanitizer.facts (invocation names) — the taint
///   client's annotations, likewise optional on read
///
//===----------------------------------------------------------------------===//

#ifndef CTP_FACTS_TSVIO_H
#define CTP_FACTS_TSVIO_H

#include "facts/FactDB.h"

#include <string>
#include <vector>

namespace ctp {
namespace facts {

/// Writes \p DB into directory \p Dir (which must already exist).
/// \returns an empty string on success, else an error description.
std::string writeFactsDir(const FactDB &DB, const std::string &Dir);

/// How readFactsDir treats malformed input.
struct FactsReadOptions {
  /// Strict (default): the first malformed line aborts the read with a
  /// "File:LINE: ..." diagnostic. Lenient: malformed lines (wrong arity,
  /// unknown entity names, bad ordinals, duplicate domain entries,
  /// embedded NUL bytes, lines over MaxTsvLineBytes) are skipped and
  /// counted instead; only I/O failures abort.
  bool Lenient = false;
};

/// What a (lenient) read skipped.
struct FactsReadReport {
  /// Lines dropped in lenient mode.
  std::size_t SkippedLines = 0;
  /// One "File:LINE: reason" entry per skipped line.
  std::vector<std::string> Warnings;
};

/// Reads a facts directory previously written by writeFactsDir (or by any
/// producer following the same schema) into \p DB.
/// \returns an empty string on success, else an error description. Every
/// malformed-input diagnostic carries the file name, 1-based line number,
/// and — for arity errors — the expected and actual field counts.
std::string readFactsDir(const std::string &Dir, FactDB &DB);

/// As above with explicit \p Opts; \p Report (may be null) receives the
/// skip counts accumulated in lenient mode.
std::string readFactsDir(const std::string &Dir, FactDB &DB,
                         const FactsReadOptions &Opts,
                         FactsReadReport *Report = nullptr);

} // namespace facts
} // namespace ctp

#endif // CTP_FACTS_TSVIO_H
