//===- facts/TsvIO.cpp - Doop-style facts directory I/O -------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "facts/TsvIO.h"

#include "support/Tsv.h"

#include <unordered_map>
#include <unordered_set>

using namespace ctp;
using namespace ctp::facts;

namespace {

using Rows = std::vector<std::vector<std::string>>;

/// Maps entity names back to ids when reading. Names are unique per domain
/// by construction of the extractor and the workload generator.
class NameMap {
public:
  explicit NameMap(const std::vector<std::string> &Names) {
    for (std::size_t I = 0; I < Names.size(); ++I)
      Ids.emplace(Names[I], static_cast<Id>(I));
  }

  /// \returns InvalidId when the name is unknown.
  Id lookup(const std::string &Name) const {
    auto It = Ids.find(Name);
    return It == Ids.end() ? InvalidId : It->second;
  }

private:
  std::unordered_map<std::string, Id> Ids;
};

std::string writeDomain(const std::string &Dir, const char *File,
                        const std::vector<std::string> &Names) {
  Rows R;
  R.reserve(Names.size());
  for (const std::string &N : Names)
    R.push_back({N});
  if (!writeTsvFile(Dir + "/" + File, R))
    return std::string("cannot write ") + File;
  return "";
}

std::string location(const char *File, unsigned LineNo) {
  return std::string(File) + ":" + std::to_string(LineNo);
}

/// Parses a decimal ordinal column; rejects empty, non-digit, and
/// overflowing values (std::stoul would throw or silently wrap).
bool parseOrdinal(const std::string &S, Id &Out) {
  if (S.empty() || S.size() > 9)
    return false;
  std::uint32_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<std::uint32_t>(C - '0');
  }
  Out = V;
  return true;
}

/// Shared malformed-line policy: strict reads fail on the first bad line,
/// lenient reads count and skip it.
class ErrorSink {
public:
  ErrorSink(bool Lenient, FactsReadReport *Report)
      : Lenient(Lenient), Report(Report) {}

  /// Reports a malformed line. \returns true when the read should abort
  /// (strict mode); lenient mode records the warning and continues.
  bool malformed(const std::string &Diag) {
    if (!Lenient) {
      if (Err.empty())
        Err = Diag;
      return true;
    }
    if (Report) {
      ++Report->SkippedLines;
      Report->Warnings.push_back(Diag);
    }
    return false;
  }

  /// Unconditional failure (I/O errors abort even lenient reads).
  void fail(const std::string &Diag) {
    if (Err.empty())
      Err = Diag;
  }

  bool failed() const { return !Err.empty(); }
  const std::string &error() const { return Err; }

private:
  bool Lenient;
  FactsReadReport *Report;
  std::string Err;
};

/// Funnels raw-line rejections (NUL bytes, over-long lines) into the
/// shared malformed-line policy with the usual "File:LINE: reason"
/// shape. \returns true when the read should abort (strict mode).
bool reportRejects(const char *File, const std::vector<TsvReject> &Rejects,
                   ErrorSink &Sink) {
  for (const TsvReject &Rej : Rejects)
    if (Sink.malformed(location(File, Rej.LineNo) + ": " + Rej.Reason))
      return true;
  return false;
}

void readDomain(const std::string &Dir, const char *File,
                std::vector<std::string> &Names, ErrorSink &Sink) {
  if (Sink.failed())
    return;
  std::vector<TsvLine> R;
  std::vector<TsvReject> Rejects;
  if (!readTsvLines(Dir + "/" + File, R, &Rejects)) {
    Sink.fail(std::string("cannot read ") + File);
    return;
  }
  if (reportRejects(File, Rejects, Sink))
    return;
  Names.clear();
  std::unordered_set<std::string> Seen;
  for (auto &Row : R) {
    if (Row.Fields.size() != 1) {
      if (Sink.malformed(location(File, Row.LineNo) +
                         ": expected 1 field, got " +
                         std::to_string(Row.Fields.size())))
        return;
      continue;
    }
    if (!Seen.insert(Row.Fields[0]).second) {
      if (Sink.malformed(location(File, Row.LineNo) +
                         ": duplicate domain entry '" + Row.Fields[0] +
                         "'"))
        return;
      continue;
    }
    Names.push_back(std::move(Row.Fields[0]));
  }
}

} // namespace

std::string facts::writeFactsDir(const FactDB &DB, const std::string &Dir) {
  std::string Err;
  auto Check = [&](const std::string &E) {
    if (Err.empty())
      Err = E;
  };

  Check(writeDomain(Dir, "Domain.var", DB.VarNames));
  Check(writeDomain(Dir, "Domain.heap", DB.HeapNames));
  Check(writeDomain(Dir, "Domain.method", DB.MethodNames));
  Check(writeDomain(Dir, "Domain.invoke", DB.InvokeNames));
  Check(writeDomain(Dir, "Domain.field", DB.FieldNames));
  Check(writeDomain(Dir, "Domain.type", DB.TypeNames));
  Check(writeDomain(Dir, "Domain.sig", DB.SigNames));
  Check(writeDomain(Dir, "Domain.global", DB.GlobalNames));
  if (!Err.empty())
    return Err;

  auto W = [&](const char *File, const Rows &R) {
    if (!writeTsvFile(Dir + "/" + File, R))
      Check(std::string("cannot write ") + File);
  };

  Rows R;
  for (Id E : DB.EntryMethods)
    R.push_back({DB.MethodNames[E]});
  W("Entry.facts", R);

  R.clear();
  for (const auto &F : DB.Actuals)
    R.push_back({DB.VarNames[F.Var], DB.InvokeNames[F.Invoke],
                 std::to_string(F.Ordinal)});
  W("Actual.facts", R);

  R.clear();
  for (const auto &F : DB.Assigns)
    R.push_back({DB.VarNames[F.From], DB.VarNames[F.To]});
  W("Assign.facts", R);

  R.clear();
  for (const auto &F : DB.AssignNews)
    R.push_back({DB.HeapNames[F.Heap], DB.VarNames[F.To],
                 DB.MethodNames[F.InMethod]});
  W("AssignNew.facts", R);

  R.clear();
  for (const auto &F : DB.AssignReturns)
    R.push_back({DB.InvokeNames[F.Invoke], DB.VarNames[F.To]});
  W("AssignReturn.facts", R);

  R.clear();
  for (const auto &F : DB.Formals)
    R.push_back({DB.VarNames[F.Var], DB.MethodNames[F.Method],
                 std::to_string(F.Ordinal)});
  W("Formal.facts", R);

  R.clear();
  for (const auto &F : DB.HeapTypes)
    R.push_back({DB.HeapNames[F.Heap], DB.TypeNames[F.Type]});
  W("HeapType.facts", R);

  R.clear();
  for (const auto &F : DB.Implements)
    R.push_back({DB.MethodNames[F.Method], DB.TypeNames[F.Type],
                 DB.SigNames[F.Sig]});
  W("Implements.facts", R);

  R.clear();
  for (const auto &F : DB.Loads)
    R.push_back({DB.VarNames[F.Base], DB.FieldNames[F.Field],
                 DB.VarNames[F.To]});
  W("Load.facts", R);

  R.clear();
  for (const auto &F : DB.Returns)
    R.push_back({DB.VarNames[F.Var], DB.MethodNames[F.Method]});
  W("Return.facts", R);

  R.clear();
  for (const auto &F : DB.StaticInvokes)
    R.push_back({DB.InvokeNames[F.Invoke], DB.MethodNames[F.Target],
                 DB.MethodNames[F.InMethod]});
  W("StaticInvoke.facts", R);

  R.clear();
  for (const auto &F : DB.Stores)
    R.push_back({DB.VarNames[F.From], DB.FieldNames[F.Field],
                 DB.VarNames[F.Base]});
  W("Store.facts", R);

  R.clear();
  for (const auto &F : DB.ThisVars)
    R.push_back({DB.VarNames[F.Var], DB.MethodNames[F.Method]});
  W("ThisVar.facts", R);

  R.clear();
  for (const auto &F : DB.VirtualInvokes)
    R.push_back({DB.InvokeNames[F.Invoke], DB.VarNames[F.Receiver],
                 DB.SigNames[F.Sig]});
  W("VirtualInvoke.facts", R);

  R.clear();
  for (const auto &F : DB.GlobalStores)
    R.push_back({DB.VarNames[F.From], DB.GlobalNames[F.Global]});
  W("GlobalStore.facts", R);

  R.clear();
  for (const auto &F : DB.GlobalLoads)
    R.push_back({DB.GlobalNames[F.Global], DB.VarNames[F.To],
                 DB.MethodNames[F.InMethod]});
  W("GlobalLoad.facts", R);

  R.clear();
  for (const auto &F : DB.Throws)
    R.push_back({DB.VarNames[F.Var], DB.MethodNames[F.Method]});
  W("Throw.facts", R);

  R.clear();
  for (const auto &F : DB.Catches)
    R.push_back({DB.InvokeNames[F.Invoke], DB.VarNames[F.To]});
  W("Catch.facts", R);

  R.clear();
  for (const auto &F : DB.Casts)
    R.push_back({DB.VarNames[F.From], DB.VarNames[F.To],
                 DB.TypeNames[F.Type]});
  W("Cast.facts", R);

  R.clear();
  for (const auto &F : DB.Subtypes)
    R.push_back({DB.TypeNames[F.Sub], DB.TypeNames[F.Super]});
  W("Subtype.facts", R);

  R.clear();
  for (const auto &F : DB.Spawns)
    R.push_back({DB.InvokeNames[F.Invoke]});
  W("Spawn.facts", R);

  // Taint annotations carry an attachment-kind column so one predicate
  // covers both call sites and fields (Doop uses the same encoding for
  // its TaintSourceMethod/TaintSpec unions).
  auto AttachRow = [&](Id IsField, Id Entity) -> std::vector<std::string> {
    return {IsField != 0 ? "field" : "invoke",
            IsField != 0 ? DB.FieldNames[Entity] : DB.InvokeNames[Entity]};
  };
  R.clear();
  for (const auto &F : DB.TaintSources)
    R.push_back(AttachRow(F.IsField, F.Entity));
  W("TaintSource.facts", R);

  R.clear();
  for (const auto &F : DB.TaintSinks)
    R.push_back(AttachRow(F.IsField, F.Entity));
  W("TaintSink.facts", R);

  R.clear();
  for (const auto &F : DB.Sanitizers)
    R.push_back({DB.InvokeNames[F.Invoke]});
  W("Sanitizer.facts", R);

  R.clear();
  for (std::size_t V = 0; V < DB.VarParent.size(); ++V)
    R.push_back({DB.VarNames[V], DB.MethodNames[DB.VarParent[V]]});
  W("VarParent.facts", R);

  R.clear();
  for (std::size_t H = 0; H < DB.HeapParent.size(); ++H)
    R.push_back({DB.HeapNames[H], DB.MethodNames[DB.HeapParent[H]]});
  W("HeapParent.facts", R);

  R.clear();
  for (std::size_t I = 0; I < DB.InvokeParent.size(); ++I)
    R.push_back({DB.InvokeNames[I], DB.MethodNames[DB.InvokeParent[I]]});
  W("InvokeParent.facts", R);

  R.clear();
  for (std::size_t M = 0; M < DB.MethodClass.size(); ++M)
    R.push_back({DB.MethodNames[M], DB.TypeNames[DB.MethodClass[M]]});
  W("MethodClass.facts", R);

  return Err;
}

std::string facts::readFactsDir(const std::string &Dir, FactDB &DB) {
  return readFactsDir(Dir, DB, FactsReadOptions(), nullptr);
}

std::string facts::readFactsDir(const std::string &Dir, FactDB &DB,
                                const FactsReadOptions &Opts,
                                FactsReadReport *Report) {
  DB = FactDB();
  ErrorSink Sink(Opts.Lenient, Report);

  readDomain(Dir, "Domain.var", DB.VarNames, Sink);
  readDomain(Dir, "Domain.heap", DB.HeapNames, Sink);
  readDomain(Dir, "Domain.method", DB.MethodNames, Sink);
  readDomain(Dir, "Domain.invoke", DB.InvokeNames, Sink);
  readDomain(Dir, "Domain.field", DB.FieldNames, Sink);
  readDomain(Dir, "Domain.type", DB.TypeNames, Sink);
  readDomain(Dir, "Domain.sig", DB.SigNames, Sink);
  readDomain(Dir, "Domain.global", DB.GlobalNames, Sink);
  if (Sink.failed())
    return Sink.error();

  NameMap Vars(DB.VarNames), Heaps(DB.HeapNames), Methods(DB.MethodNames),
      Invokes(DB.InvokeNames), Fields(DB.FieldNames), Types(DB.TypeNames),
      Sigs(DB.SigNames), Globals(DB.GlobalNames);

  auto Read = [&](const char *File, std::size_t Arity, auto &&Handler) {
    if (Sink.failed())
      return;
    std::vector<TsvLine> R;
    std::vector<TsvReject> Rejects;
    if (!readTsvLines(Dir + "/" + File, R, &Rejects)) {
      Sink.fail(std::string("cannot read ") + File);
      return;
    }
    if (reportRejects(File, Rejects, Sink))
      return;
    for (auto &Row : R) {
      if (Row.Fields.size() != Arity) {
        if (Sink.malformed(location(File, Row.LineNo) + ": expected " +
                           std::to_string(Arity) + " fields, got " +
                           std::to_string(Row.Fields.size())))
          return;
        continue;
      }
      if (!Handler(Row.Fields)) {
        if (Sink.malformed(location(File, Row.LineNo) +
                           ": unknown entity name or malformed ordinal "
                           "in '" +
                           joinTsvLine(Row.Fields) + "'"))
          return;
        continue;
      }
    }
  };

  auto Ok = [](Id X) { return X != InvalidId; };

  Read("Entry.facts", 1, [&](const std::vector<std::string> &Row) {
    Id M = Methods.lookup(Row[0]);
    if (!Ok(M))
      return false;
    DB.EntryMethods.push_back(M);
    return true;
  });

  Read("Actual.facts", 3, [&](const std::vector<std::string> &Row) {
    Id V = Vars.lookup(Row[0]), I = Invokes.lookup(Row[1]), Ord;
    if (!Ok(V) || !Ok(I) || !parseOrdinal(Row[2], Ord))
      return false;
    DB.Actuals.push_back({V, I, Ord});
    return true;
  });

  Read("Assign.facts", 2, [&](const std::vector<std::string> &Row) {
    Id F = Vars.lookup(Row[0]), T = Vars.lookup(Row[1]);
    if (!Ok(F) || !Ok(T))
      return false;
    DB.Assigns.push_back({F, T});
    return true;
  });

  Read("AssignNew.facts", 3, [&](const std::vector<std::string> &Row) {
    Id H = Heaps.lookup(Row[0]), V = Vars.lookup(Row[1]),
       M = Methods.lookup(Row[2]);
    if (!Ok(H) || !Ok(V) || !Ok(M))
      return false;
    DB.AssignNews.push_back({H, V, M});
    return true;
  });

  Read("AssignReturn.facts", 2, [&](const std::vector<std::string> &Row) {
    Id I = Invokes.lookup(Row[0]), V = Vars.lookup(Row[1]);
    if (!Ok(I) || !Ok(V))
      return false;
    DB.AssignReturns.push_back({I, V});
    return true;
  });

  Read("Formal.facts", 3, [&](const std::vector<std::string> &Row) {
    Id V = Vars.lookup(Row[0]), M = Methods.lookup(Row[1]), Ord;
    if (!Ok(V) || !Ok(M) || !parseOrdinal(Row[2], Ord))
      return false;
    DB.Formals.push_back({V, M, Ord});
    return true;
  });

  Read("HeapType.facts", 2, [&](const std::vector<std::string> &Row) {
    Id H = Heaps.lookup(Row[0]), T = Types.lookup(Row[1]);
    if (!Ok(H) || !Ok(T))
      return false;
    DB.HeapTypes.push_back({H, T});
    return true;
  });

  Read("Implements.facts", 3, [&](const std::vector<std::string> &Row) {
    Id M = Methods.lookup(Row[0]), T = Types.lookup(Row[1]),
       S = Sigs.lookup(Row[2]);
    if (!Ok(M) || !Ok(T) || !Ok(S))
      return false;
    DB.Implements.push_back({M, T, S});
    return true;
  });

  Read("Load.facts", 3, [&](const std::vector<std::string> &Row) {
    Id B = Vars.lookup(Row[0]), F = Fields.lookup(Row[1]),
       T = Vars.lookup(Row[2]);
    if (!Ok(B) || !Ok(F) || !Ok(T))
      return false;
    DB.Loads.push_back({B, F, T});
    return true;
  });

  Read("Return.facts", 2, [&](const std::vector<std::string> &Row) {
    Id V = Vars.lookup(Row[0]), M = Methods.lookup(Row[1]);
    if (!Ok(V) || !Ok(M))
      return false;
    DB.Returns.push_back({V, M});
    return true;
  });

  Read("StaticInvoke.facts", 3, [&](const std::vector<std::string> &Row) {
    Id I = Invokes.lookup(Row[0]), Q = Methods.lookup(Row[1]),
       P = Methods.lookup(Row[2]);
    if (!Ok(I) || !Ok(Q) || !Ok(P))
      return false;
    DB.StaticInvokes.push_back({I, Q, P});
    return true;
  });

  Read("Store.facts", 3, [&](const std::vector<std::string> &Row) {
    Id F = Vars.lookup(Row[0]), Fd = Fields.lookup(Row[1]),
       B = Vars.lookup(Row[2]);
    if (!Ok(F) || !Ok(Fd) || !Ok(B))
      return false;
    DB.Stores.push_back({F, Fd, B});
    return true;
  });

  Read("ThisVar.facts", 2, [&](const std::vector<std::string> &Row) {
    Id V = Vars.lookup(Row[0]), M = Methods.lookup(Row[1]);
    if (!Ok(V) || !Ok(M))
      return false;
    DB.ThisVars.push_back({V, M});
    return true;
  });

  Read("VirtualInvoke.facts", 3, [&](const std::vector<std::string> &Row) {
    Id I = Invokes.lookup(Row[0]), V = Vars.lookup(Row[1]),
       S = Sigs.lookup(Row[2]);
    if (!Ok(I) || !Ok(V) || !Ok(S))
      return false;
    DB.VirtualInvokes.push_back({I, V, S});
    return true;
  });

  Read("GlobalStore.facts", 2, [&](const std::vector<std::string> &Row) {
    Id V = Vars.lookup(Row[0]), G = Globals.lookup(Row[1]);
    if (!Ok(V) || !Ok(G))
      return false;
    DB.GlobalStores.push_back({V, G});
    return true;
  });

  Read("GlobalLoad.facts", 3, [&](const std::vector<std::string> &Row) {
    Id G = Globals.lookup(Row[0]), V = Vars.lookup(Row[1]),
       M = Methods.lookup(Row[2]);
    if (!Ok(G) || !Ok(V) || !Ok(M))
      return false;
    DB.GlobalLoads.push_back({G, V, M});
    return true;
  });

  Read("Throw.facts", 2, [&](const std::vector<std::string> &Row) {
    Id V = Vars.lookup(Row[0]), M = Methods.lookup(Row[1]);
    if (!Ok(V) || !Ok(M))
      return false;
    DB.Throws.push_back({V, M});
    return true;
  });

  Read("Catch.facts", 2, [&](const std::vector<std::string> &Row) {
    Id I = Invokes.lookup(Row[0]), V = Vars.lookup(Row[1]);
    if (!Ok(I) || !Ok(V))
      return false;
    DB.Catches.push_back({I, V});
    return true;
  });

  Read("Cast.facts", 3, [&](const std::vector<std::string> &Row) {
    Id F = Vars.lookup(Row[0]), T = Vars.lookup(Row[1]),
       Ty = Types.lookup(Row[2]);
    if (!Ok(F) || !Ok(T) || !Ok(Ty))
      return false;
    DB.Casts.push_back({F, T, Ty});
    return true;
  });

  Read("Subtype.facts", 2, [&](const std::vector<std::string> &Row) {
    Id S = Types.lookup(Row[0]), Sup = Types.lookup(Row[1]);
    if (!Ok(S) || !Ok(Sup))
      return false;
    DB.Subtypes.push_back({S, Sup});
    return true;
  });

  // Spawn.facts is a later schema addition; directories written before it
  // existed simply have no spawn sites, so a missing file is not an error.
  {
    std::vector<TsvLine> Probe;
    if (readTsvLines(Dir + "/Spawn.facts", Probe))
      Read("Spawn.facts", 1, [&](const std::vector<std::string> &Row) {
        Id I = Invokes.lookup(Row[0]);
        if (!Ok(I))
          return false;
        DB.Spawns.push_back({I});
        return true;
      });
  }

  // The taint predicates are likewise optional on read: directories from
  // before the taint client carry no annotations. Rows name the
  // attachment kind explicitly ("invoke" or "field").
  auto ParseAttach = [&](const std::vector<std::string> &Row, Id &IsField,
                         Id &Entity) {
    if (Row[0] == "invoke") {
      IsField = 0;
      Entity = Invokes.lookup(Row[1]);
    } else if (Row[0] == "field") {
      IsField = 1;
      Entity = Fields.lookup(Row[1]);
    } else {
      return false;
    }
    return Entity != InvalidId;
  };
  {
    std::vector<TsvLine> Probe;
    if (readTsvLines(Dir + "/TaintSource.facts", Probe))
      Read("TaintSource.facts", 2, [&](const std::vector<std::string> &Row) {
        Id IsField, Entity;
        if (!ParseAttach(Row, IsField, Entity))
          return false;
        DB.TaintSources.push_back({IsField, Entity});
        return true;
      });
  }
  {
    std::vector<TsvLine> Probe;
    if (readTsvLines(Dir + "/TaintSink.facts", Probe))
      Read("TaintSink.facts", 2, [&](const std::vector<std::string> &Row) {
        Id IsField, Entity;
        if (!ParseAttach(Row, IsField, Entity))
          return false;
        DB.TaintSinks.push_back({IsField, Entity});
        return true;
      });
  }
  {
    std::vector<TsvLine> Probe;
    if (readTsvLines(Dir + "/Sanitizer.facts", Probe))
      Read("Sanitizer.facts", 1, [&](const std::vector<std::string> &Row) {
        Id I = Invokes.lookup(Row[0]);
        if (!Ok(I))
          return false;
        DB.Sanitizers.push_back({I});
        return true;
      });
  }

  DB.VarParent.assign(DB.VarNames.size(), InvalidId);
  Read("VarParent.facts", 2, [&](const std::vector<std::string> &Row) {
    Id V = Vars.lookup(Row[0]), M = Methods.lookup(Row[1]);
    if (!Ok(V) || !Ok(M))
      return false;
    DB.VarParent[V] = M;
    return true;
  });

  DB.HeapParent.assign(DB.HeapNames.size(), InvalidId);
  Read("HeapParent.facts", 2, [&](const std::vector<std::string> &Row) {
    Id H = Heaps.lookup(Row[0]), M = Methods.lookup(Row[1]);
    if (!Ok(H) || !Ok(M))
      return false;
    DB.HeapParent[H] = M;
    return true;
  });

  DB.InvokeParent.assign(DB.InvokeNames.size(), InvalidId);
  Read("InvokeParent.facts", 2, [&](const std::vector<std::string> &Row) {
    Id I = Invokes.lookup(Row[0]), M = Methods.lookup(Row[1]);
    if (!Ok(I) || !Ok(M))
      return false;
    DB.InvokeParent[I] = M;
    return true;
  });

  DB.MethodClass.assign(DB.MethodNames.size(), InvalidId);
  Read("MethodClass.facts", 2, [&](const std::vector<std::string> &Row) {
    Id M = Methods.lookup(Row[0]), T = Types.lookup(Row[1]);
    if (!Ok(M) || !Ok(T))
      return false;
    DB.MethodClass[M] = T;
    return true;
  });

  if (Sink.failed())
    return Sink.error();
  return DB.validate();
}
