//===- facts/Extract.h - Fact extraction from the IR ------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates an ir::Program into the Figure-3 input predicates. This is
/// the stand-in for the Soot-based fact generator the paper uses ("We use
/// the same fact generator as Doop, which transforms Java bytecode to a set
/// of relations"). The `implements` relation is computed by resolving every
/// (allocatable type, signature) pair through the class hierarchy.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_FACTS_EXTRACT_H
#define CTP_FACTS_EXTRACT_H

#include "facts/FactDB.h"
#include "ir/Ir.h"

namespace ctp {
namespace facts {

/// Extracts the input predicates from \p P. Entity ids in the FactDB are
/// identical to the ids in the ir::Program, so results can be mapped back
/// to IR entities directly.
FactDB extract(const ir::Program &P);

} // namespace facts
} // namespace ctp

#endif // CTP_FACTS_EXTRACT_H
