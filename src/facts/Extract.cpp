//===- facts/Extract.cpp - Fact extraction from the IR --------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "facts/Extract.h"

#include <cassert>
#include <map>

using namespace ctp;
using namespace ctp::facts;


namespace {

/// Builds implements(Q, T, S) by resolving each signature against each
/// concrete (non-abstract) type. Resolution walks the superclass chain via
/// a per-class declared-method table so extraction is linear-ish rather
/// than quadratic in methods.
void buildImplements(const ir::Program &P, FactDB &DB) {
  // Declared instance methods per class, keyed by signature.
  std::vector<std::map<ir::SigId, ir::MethodId>> Declared(P.Types.size());
  for (ir::MethodId M = 0; M < P.Methods.size(); ++M) {
    const ir::Method &Meth = P.Methods[M];
    if (!Meth.IsStatic)
      Declared[Meth.DeclaringClass][Meth.Sig] = M;
  }
  for (ir::TypeId T = 0; T < P.Types.size(); ++T) {
    if (P.Types[T].IsAbstract)
      continue;
    // Collect the closest declaration of each signature along the chain.
    std::map<ir::SigId, ir::MethodId> Resolved;
    for (ir::TypeId Cur = T; Cur != ir::InvalidId; Cur = P.Types[Cur].Super)
      for (const auto &[Sig, M] : Declared[Cur])
        Resolved.try_emplace(Sig, M);
    for (const auto &[Sig, M] : Resolved)
      DB.Implements.push_back({M, T, Sig});
  }
}

} // namespace

FactDB facts::extract(const ir::Program &P) {
  assert(ir::validate(P).empty() && "extracting facts from invalid program");
  FactDB DB;

  for (const ir::Variable &V : P.Vars) {
    DB.VarNames.push_back(V.Name);
    DB.VarParent.push_back(V.Parent);
  }
  for (const ir::HeapSite &H : P.Heaps) {
    DB.HeapNames.push_back(H.Name);
    DB.HeapParent.push_back(H.Parent);
  }
  for (const ir::Method &M : P.Methods) {
    DB.MethodNames.push_back(M.Name);
    DB.MethodClass.push_back(M.DeclaringClass);
  }
  for (const ir::Invocation &I : P.Invokes)
    DB.InvokeNames.push_back(I.Name);
  for (const ir::Field &F : P.Fields)
    DB.FieldNames.push_back(F.Name);
  for (const ir::Type &T : P.Types)
    DB.TypeNames.push_back(T.Name);
  for (const ir::Signature &S : P.Sigs)
    DB.SigNames.push_back(S.Name + "/" + std::to_string(S.NumParams));
  for (const ir::GlobalField &G : P.Globals)
    DB.GlobalNames.push_back(G.Name);

  DB.EntryMethods.push_back(P.Main);

  for (ir::MethodId M = 0; M < P.Methods.size(); ++M) {
    const ir::Method &Meth = P.Methods[M];
    if (!Meth.IsStatic)
      DB.ThisVars.push_back({Meth.ThisVar, M});
    for (std::uint32_t O = 0; O < Meth.Formals.size(); ++O)
      DB.Formals.push_back({Meth.Formals[O], M, O});
    for (ir::VarId R : Meth.ReturnVars)
      DB.Returns.push_back({R, M});
    for (ir::VarId R : Meth.ThrowVars)
      DB.Throws.push_back({R, M});
    for (const ir::Statement &S : Meth.Stmts) {
      switch (S.Kind) {
      case ir::StmtKind::Assign:
        DB.Assigns.push_back({S.From, S.To});
        break;
      case ir::StmtKind::New:
        DB.AssignNews.push_back({S.Heap, S.To, M});
        break;
      case ir::StmtKind::Load:
        DB.Loads.push_back({S.Base, S.F, S.To});
        break;
      case ir::StmtKind::Store:
        DB.Stores.push_back({S.From, S.F, S.Base});
        break;
      case ir::StmtKind::Invoke:
        // Handled below via the invocation table.
        break;
      case ir::StmtKind::LoadGlobal:
        DB.GlobalLoads.push_back({S.Global, S.To, M});
        break;
      case ir::StmtKind::StoreGlobal:
        DB.GlobalStores.push_back({S.From, S.Global});
        break;
      case ir::StmtKind::Throw:
        // Recorded via the method's throw set below.
        break;
      case ir::StmtKind::Cast:
        DB.Casts.push_back({S.From, S.To, S.CastType});
        break;
      }
    }
  }

  for (ir::InvokeId I = 0; I < P.Invokes.size(); ++I) {
    const ir::Invocation &Inv = P.Invokes[I];
    DB.InvokeParent.push_back(Inv.Caller);
    for (std::uint32_t O = 0; O < Inv.Actuals.size(); ++O)
      DB.Actuals.push_back({Inv.Actuals[O], I, O});
    if (Inv.Result != ir::InvalidId)
      DB.AssignReturns.push_back({I, Inv.Result});
    if (Inv.CatchVar != ir::InvalidId)
      DB.Catches.push_back({I, Inv.CatchVar});
    if (Inv.IsStatic)
      DB.StaticInvokes.push_back({I, Inv.StaticTarget, Inv.Caller});
    else
      DB.VirtualInvokes.push_back({I, Inv.Receiver, Inv.Sig});
    if (Inv.IsSpawn)
      DB.Spawns.push_back({I});
    switch (Inv.Taint) {
    case ir::TaintAnnot::None:
      break;
    case ir::TaintAnnot::Source:
      DB.TaintSources.push_back({0, I});
      break;
    case ir::TaintAnnot::Sink:
      DB.TaintSinks.push_back({0, I});
      break;
    case ir::TaintAnnot::Sanitizer:
      DB.Sanitizers.push_back({I});
      break;
    }
  }

  for (ir::FieldId F = 0; F < P.Fields.size(); ++F) {
    if (P.Fields[F].Taint == ir::TaintAnnot::Source)
      DB.TaintSources.push_back({1, F});
    else if (P.Fields[F].Taint == ir::TaintAnnot::Sink)
      DB.TaintSinks.push_back({1, F});
  }

  for (ir::HeapId H = 0; H < P.Heaps.size(); ++H)
    DB.HeapTypes.push_back({H, P.Heaps[H].AllocatedType});

  buildImplements(P, DB);

  // Reflexive-transitive subtype pairs from the superclass chains.
  for (ir::TypeId T = 0; T < P.Types.size(); ++T)
    for (ir::TypeId Cur = T; Cur != ir::InvalidId; Cur = P.Types[Cur].Super)
      DB.Subtypes.push_back({T, Cur});

  assert(DB.validate().empty() && "extracted fact database is inconsistent");
  return DB;
}
