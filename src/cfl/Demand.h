//===- cfl/Demand.h - Demand-driven points-to queries -----------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Demand-driven (context-insensitive) points-to queries, the workload
/// Section 10 of the paper names as future work ("Datalog programs that
/// exhaustively compute information can be converted to a demand-driven
/// program through the magic sets transformation") and Section 9 relates
/// to Sridharan & Bodík's refinement-based analysis.
///
/// The implementation is a magic-sets-flavoured restriction of the
/// exhaustive L_F saturation: starting from the queried variable it grows
/// a *relevant* variable set backward through assignments, parameter and
/// return flow, and matched store/load pairs, and saturates points-to
/// facts only for relevant variables. Like Sridharan & Bodík's initial
/// approximation, methods are assumed reachable, so an answer is a sound
/// over-approximation of the exhaustive oracle's; answers carry a
/// completeness flag and respect a work budget (exceeding it yields the
/// trivially sound "all heap sites" answer).
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CFL_DEMAND_H
#define CTP_CFL_DEMAND_H

#include "facts/FactDB.h"
#include "support/Budget.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ctp {
namespace cfl {

/// Answer to one demand query.
struct DemandAnswer {
  /// Sorted heap sites the variable may point to. When \c BudgetExceeded
  /// is set this is every heap site (the sound fallback).
  std::vector<std::uint32_t> Heaps;
  /// True when the budget ran out before saturation.
  bool BudgetExceeded = false;
  /// Variables whose points-to sets the query had to touch — the "work"
  /// measure the demand bench reports against exhaustive analysis.
  std::size_t RelevantVars = 0;
  /// Worklist steps consumed.
  std::size_t Steps = 0;
};

/// Demand-driven query engine over one fact database. Queries are
/// independent (no cross-query caching), which keeps the per-query work
/// measurement honest.
class DemandSolver {
public:
  explicit DemandSolver(const facts::FactDB &DB);

  /// Computes the may-point-to set of \p Var, spending at most \p Budget
  /// worklist steps. A non-null \p Meter is additionally polled each
  /// step: a trip (deadline, cancellation) exhausts the query, which
  /// then returns the sound all-heaps fallback — so a caller with a
  /// hard per-request deadline (ctp-serve) always gets an answer.
  DemandAnswer query(std::uint32_t Var, std::size_t Budget = 100000,
                     BudgetMeter *Meter = nullptr) const;

  /// Demand-driven may-alias: do the two variables share a heap site?
  /// Sound (may err toward "true" under budget exhaustion).
  bool mayAlias(std::uint32_t V1, std::uint32_t V2,
                std::size_t Budget = 100000,
                BudgetMeter *Meter = nullptr) const;

  // Pre-built reverse indices (construction cost is shared by queries and
  // reported separately by the bench). Public only for the query engine
  // in Demand.cpp; not part of the supported API surface.
  const facts::FactDB &DB;
  std::vector<std::vector<std::uint32_t>> AssignInto; ///< To -> Froms.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      LoadsOf;  ///< To -> (Base, Field).
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      StoresOfField; ///< Field -> (Base, From).
  std::vector<std::vector<std::uint32_t>> NewsInto; ///< Var -> heap sites.
  std::vector<std::vector<std::uint32_t>>
      ResultOfInvoke; ///< Var -> invocations whose result it receives.
  std::vector<std::vector<std::uint32_t>>
      CatchOfInvoke; ///< Var -> invocations whose exceptions it catches.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      FormalSites; ///< Formal var -> (method, ordinal).
  std::vector<std::vector<std::uint32_t>>
      GlobalLoadsInto; ///< Var -> globals it loads.
  std::vector<std::vector<std::uint32_t>>
      GlobalStoresOf; ///< Global -> stored-from vars.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      CastsInto; ///< To -> (From, cast type).
  std::unordered_set<std::uint64_t> SubtypePairs;
  std::vector<std::vector<std::uint32_t>> ThisSites; ///< This var -> method.
  // Call-site side tables.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      ActualsOf; ///< Invoke -> (ordinal, var).
  std::vector<std::uint32_t> ReceiverOf, SigOfInvoke, StaticTargetOf,
      HeapTypeOf;
  std::vector<std::vector<std::uint32_t>> RetsOf, ThrowsOf;
  std::vector<std::vector<std::uint32_t>>
      VirtSitesBySig; ///< Sig -> invocations dispatching it.
  std::vector<std::vector<std::uint32_t>>
      StaticSitesOf; ///< Method -> static invocations targeting it.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      ImplementsOf; ///< Method -> (type, sig) rows naming it.
  std::unordered_map<std::uint64_t, std::uint32_t> Dispatch;
};

} // namespace cfl
} // namespace ctp

#endif // CTP_CFL_DEMAND_H
