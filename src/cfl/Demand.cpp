//===- cfl/Demand.cpp - Demand-driven points-to queries -------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "cfl/Demand.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace ctp;
using namespace ctp::cfl;
using facts::FactDB;

namespace {

std::uint64_t key2(std::uint32_t A, std::uint32_t B) {
  return (static_cast<std::uint64_t>(A) << 32) | B;
}

/// Per-query saturation state. Deliberately rebuilt per query so the
/// reported work is the true per-query cost.
class Query {
public:
  Query(const DemandSolver &S, std::size_t Budget, BudgetMeter *Meter)
      : S(S), DB(S.DB), Budget(Budget), Meter(Meter) {
    Relevant.assign(DB.numVars(), false);
    Pts.resize(DB.numVars());
    DynEdges.resize(DB.numVars());
    ActiveLoadsByBase.resize(DB.numVars());
    ActiveStoresByBase.resize(DB.numVars());
    WatchedSitesByReceiver.resize(DB.numVars());
    SiteWatched.assign(DB.numInvokes(), false);
    FieldActivated.assign(DB.numFields(), false);
  }

  DemandAnswer run(std::uint32_t Var) {
    markRelevant(Var);
    drain();

    DemandAnswer A;
    A.Steps = Steps;
    A.RelevantVars = NumRelevant;
    if (Exhausted) {
      // Sound fallback: everything.
      A.BudgetExceeded = true;
      A.Heaps.resize(DB.numHeaps());
      for (std::uint32_t H = 0; H < DB.numHeaps(); ++H)
        A.Heaps[H] = H;
      return A;
    }
    A.Heaps.assign(Pts[Var].begin(), Pts[Var].end());
    return A;
  }

private:
  bool spend() {
    ++Steps;
    // An external meter (per-request deadline in ctp-serve) trumps the
    // step budget: a tripped meter exhausts the query immediately so the
    // caller gets the sound fallback instead of a late answer.
    if (Meter && Meter->poll()) {
      Exhausted = true;
      return false;
    }
    if (Steps <= Budget)
      return true;
    Exhausted = true;
    return false;
  }

  void addPts(std::uint32_t V, std::uint32_t O) {
    if (Exhausted || !Pts[V].insert(O).second)
      return;
    if (!spend())
      return;
    Work.push_back({V, O});
  }

  /// Adds a data-flow edge From -> To, making From relevant and replaying
  /// its current points-to set. A \p Filter other than InvalidId restricts
  /// the edge to objects whose type is a subtype of it (casts).
  void addEdge(std::uint32_t From, std::uint32_t To,
               std::uint32_t Filter = facts::InvalidId) {
    markRelevant(From);
    DynEdges[From].push_back({To, Filter});
    for (std::uint32_t O : Pts[From])
      if (passesFilter(O, Filter))
        addPts(To, O);
  }

  bool passesFilter(std::uint32_t O, std::uint32_t Filter) const {
    if (Filter == facts::InvalidId)
      return true;
    return S.SubtypePairs.count(key2(S.HeapTypeOf[O], Filter)) != 0;
  }

  /// First demand on field \p F: all stores of F get their base watched;
  /// sources become relevant lazily, on an actual object match.
  void activateField(std::uint32_t F) {
    if (FieldActivated[F])
      return;
    FieldActivated[F] = true;
    for (const auto &[Base, From] : S.StoresOfField[F]) {
      ActiveStoresByBase[Base].push_back({F, From});
      markRelevant(Base);
      for (std::uint32_t O : Pts[Base])
        matchStore(O, F, From);
    }
  }

  void matchLoad(std::uint32_t O, std::uint32_t F, std::uint32_t Z) {
    std::uint64_t Key = key2(O, F);
    Readers[Key].push_back(Z);
    for (std::uint32_t From : Writers[Key])
      addEdge(From, Z);
  }

  void matchStore(std::uint32_t O, std::uint32_t F, std::uint32_t From) {
    std::uint64_t Key = key2(O, F);
    auto &W = Writers[Key];
    if (std::find(W.begin(), W.end(), From) != W.end())
      return;
    W.push_back(From);
    for (std::uint32_t Z : Readers[Key])
      addEdge(From, Z);
  }

  void watchSite(std::uint32_t I) {
    if (SiteWatched[I])
      return;
    SiteWatched[I] = true;
    std::uint32_t Recv = S.ReceiverOf[I];
    assert(Recv != facts::InvalidId && "watching a static site");
    WatchedSitesByReceiver[Recv].push_back(I);
    markRelevant(Recv);
    for (std::uint32_t O : Pts[Recv])
      resolve(I, O);
  }

  void applyInvokeDemand(std::uint32_t I, std::uint32_t Q) {
    auto It = InvokeDemand.find(I);
    if (It == InvokeDemand.end())
      return;
    for (std::uint32_t RV : It->second.ResultVars)
      for (std::uint32_t Ret : S.RetsOf[Q])
        addEdge(Ret, RV);
    for (std::uint32_t CV : It->second.CatchVars)
      for (std::uint32_t Thrown : S.ThrowsOf[Q])
        addEdge(Thrown, CV);
  }

  void applyCalleeFormals(std::uint32_t I, std::uint32_t Q) {
    auto It = CalleeDemand.find(Q);
    if (It == CalleeDemand.end())
      return;
    for (const auto &[Ord, FormalVar] : It->second.Formals)
      for (const auto &[AOrd, Actual] : S.ActualsOf[I])
        if (AOrd == Ord)
          addEdge(Actual, FormalVar);
  }

  void resolve(std::uint32_t I, std::uint32_t O) {
    auto It = S.Dispatch.find(key2(S.HeapTypeOf[O], S.SigOfInvoke[I]));
    if (It == S.Dispatch.end())
      return;
    std::uint32_t Q = It->second;
    if (ResolvedCallees[I].insert(Q).second) {
      SitesOfCallee[Q].push_back(I);
      applyInvokeDemand(I, Q);
      applyCalleeFormals(I, Q);
    }
    if (ObjsOfCallee[Q].insert(O).second) {
      auto CD = CalleeDemand.find(Q);
      if (CD != CalleeDemand.end())
        for (std::uint32_t ThisVar : CD->second.ThisVars)
          addPts(ThisVar, O);
    }
  }

  void demandResult(std::uint32_t I, std::uint32_t V) {
    InvokeDemand[I].ResultVars.push_back(V);
    if (S.ReceiverOf[I] == facts::InvalidId) {
      for (std::uint32_t Ret : S.RetsOf[S.StaticTargetOf[I]])
        addEdge(Ret, V);
      return;
    }
    watchSite(I);
    for (std::uint32_t Q : ResolvedCallees[I])
      for (std::uint32_t Ret : S.RetsOf[Q])
        addEdge(Ret, V);
  }

  void demandCatch(std::uint32_t I, std::uint32_t V) {
    InvokeDemand[I].CatchVars.push_back(V);
    if (S.ReceiverOf[I] == facts::InvalidId) {
      for (std::uint32_t Thrown : S.ThrowsOf[S.StaticTargetOf[I]])
        addEdge(Thrown, V);
      return;
    }
    watchSite(I);
    for (std::uint32_t Q : ResolvedCallees[I])
      for (std::uint32_t Thrown : S.ThrowsOf[Q])
        addEdge(Thrown, V);
  }

  void markRelevant(std::uint32_t V) {
    if (Exhausted || Relevant[V])
      return;
    Relevant[V] = true;
    ++NumRelevant;
    if (!spend())
      return;

    for (std::uint32_t O : S.NewsInto[V])
      addPts(V, O);
    for (std::uint32_t From : S.AssignInto[V])
      addEdge(From, V);
    for (const auto &[From, T] : S.CastsInto[V])
      addEdge(From, V, T);
    for (const auto &[Base, F] : S.LoadsOf[V]) {
      markRelevant(Base);
      ActiveLoadsByBase[Base].push_back({F, V});
      activateField(F);
      for (std::uint32_t O : Pts[Base])
        matchLoad(O, F, V);
    }
    for (std::uint32_t I : S.ResultOfInvoke[V])
      demandResult(I, V);
    for (std::uint32_t I : S.CatchOfInvoke[V])
      demandCatch(I, V);
    for (const auto &[Q, Ord] : S.FormalSites[V]) {
      CalleeDemand[Q].Formals.push_back({Ord, V});
      for (std::uint32_t I : S.StaticSitesOf[Q])
        for (const auto &[AOrd, Actual] : S.ActualsOf[I])
          if (AOrd == Ord)
            addEdge(Actual, V);
      for (const auto &[T, Sig] : S.ImplementsOf[Q]) {
        (void)T;
        for (std::uint32_t I : S.VirtSitesBySig[Sig])
          watchSite(I);
      }
      for (std::uint32_t I : SitesOfCallee[Q])
        for (const auto &[AOrd, Actual] : S.ActualsOf[I])
          if (AOrd == Ord)
            addEdge(Actual, V);
    }
    for (std::uint32_t Q : S.ThisSites[V]) {
      CalleeDemand[Q].ThisVars.push_back(V);
      for (const auto &[T, Sig] : S.ImplementsOf[Q]) {
        (void)T;
        for (std::uint32_t I : S.VirtSitesBySig[Sig])
          watchSite(I);
      }
      for (std::uint32_t O : ObjsOfCallee[Q])
        addPts(V, O);
    }
    for (std::uint32_t G : S.GlobalLoadsInto[V])
      for (std::uint32_t From : S.GlobalStoresOf[G])
        addEdge(From, V);
  }

  void drain() {
    while (!Work.empty() && !Exhausted) {
      auto [V, O] = Work.back();
      Work.pop_back();
      // DynEdges[V] may grow while iterating (addEdge during matching);
      // index-based loop keeps this safe.
      for (std::size_t E = 0; E < DynEdges[V].size(); ++E) {
        auto [To, Filter] = DynEdges[V][E];
        if (passesFilter(O, Filter))
          addPts(To, O);
      }
      for (std::size_t E = 0; E < ActiveLoadsByBase[V].size(); ++E) {
        auto [F, Z] = ActiveLoadsByBase[V][E];
        matchLoad(O, F, Z);
      }
      for (std::size_t E = 0; E < ActiveStoresByBase[V].size(); ++E) {
        auto [F, From] = ActiveStoresByBase[V][E];
        matchStore(O, F, From);
      }
      for (std::size_t E = 0; E < WatchedSitesByReceiver[V].size(); ++E)
        resolve(WatchedSitesByReceiver[V][E], O);
    }
  }

  const DemandSolver &S;
  const FactDB &DB;
  std::size_t Budget;
  BudgetMeter *Meter;
  std::size_t Steps = 0;
  bool Exhausted = false;

  std::vector<char> Relevant;
  std::vector<std::set<std::uint32_t>> Pts;
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      DynEdges;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> Work;
  std::size_t NumRelevant = 0;

  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      ActiveLoadsByBase, ActiveStoresByBase;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> Readers,
      Writers;
  std::vector<char> FieldActivated;

  struct InvokeDemandT {
    std::vector<std::uint32_t> ResultVars, CatchVars;
  };
  struct CalleeDemandT {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> Formals;
    std::vector<std::uint32_t> ThisVars;
  };
  std::unordered_map<std::uint32_t, InvokeDemandT> InvokeDemand;
  std::unordered_map<std::uint32_t, CalleeDemandT> CalleeDemand;
  std::vector<std::vector<std::uint32_t>> WatchedSitesByReceiver;
  std::vector<char> SiteWatched;
  std::unordered_map<std::uint32_t, std::set<std::uint32_t>>
      ResolvedCallees;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>
      SitesOfCallee;
  std::unordered_map<std::uint32_t, std::set<std::uint32_t>> ObjsOfCallee;
};

} // namespace

DemandSolver::DemandSolver(const FactDB &DB) : DB(DB) {
  AssignInto.resize(DB.numVars());
  for (const auto &F : DB.Assigns)
    AssignInto[F.To].push_back(F.From);
  LoadsOf.resize(DB.numVars());
  for (const auto &F : DB.Loads)
    LoadsOf[F.To].push_back({F.Base, F.Field});
  StoresOfField.resize(DB.numFields());
  for (const auto &F : DB.Stores)
    StoresOfField[F.Field].push_back({F.Base, F.From});
  NewsInto.resize(DB.numVars());
  for (const auto &F : DB.AssignNews)
    NewsInto[F.To].push_back(F.Heap);
  ResultOfInvoke.resize(DB.numVars());
  for (const auto &F : DB.AssignReturns)
    ResultOfInvoke[F.To].push_back(F.Invoke);
  CatchOfInvoke.resize(DB.numVars());
  for (const auto &F : DB.Catches)
    CatchOfInvoke[F.To].push_back(F.Invoke);
  FormalSites.resize(DB.numVars());
  for (const auto &F : DB.Formals)
    FormalSites[F.Var].push_back({F.Method, F.Ordinal});
  GlobalLoadsInto.resize(DB.numVars());
  for (const auto &F : DB.GlobalLoads)
    GlobalLoadsInto[F.To].push_back(F.Global);
  GlobalStoresOf.resize(DB.numGlobals());
  for (const auto &F : DB.GlobalStores)
    GlobalStoresOf[F.Global].push_back(F.From);
  ThisSites.resize(DB.numVars());
  for (const auto &F : DB.ThisVars)
    ThisSites[F.Var].push_back(F.Method);
  ActualsOf.resize(DB.numInvokes());
  for (const auto &F : DB.Actuals)
    ActualsOf[F.Invoke].push_back({F.Ordinal, F.Var});
  ReceiverOf.assign(DB.numInvokes(), facts::InvalidId);
  SigOfInvoke.assign(DB.numInvokes(), facts::InvalidId);
  VirtSitesBySig.resize(DB.numSigs());
  for (const auto &F : DB.VirtualInvokes) {
    ReceiverOf[F.Invoke] = F.Receiver;
    SigOfInvoke[F.Invoke] = F.Sig;
    VirtSitesBySig[F.Sig].push_back(F.Invoke);
  }
  StaticTargetOf.assign(DB.numInvokes(), facts::InvalidId);
  for (const auto &F : DB.StaticInvokes)
    StaticTargetOf[F.Invoke] = F.Target;
  HeapTypeOf.assign(DB.numHeaps(), facts::InvalidId);
  for (const auto &F : DB.HeapTypes)
    HeapTypeOf[F.Heap] = F.Type;
  RetsOf.resize(DB.numMethods());
  for (const auto &F : DB.Returns)
    RetsOf[F.Method].push_back(F.Var);
  ThrowsOf.resize(DB.numMethods());
  for (const auto &F : DB.Throws)
    ThrowsOf[F.Method].push_back(F.Var);
  StaticSitesOf.resize(DB.numMethods());
  for (const auto &F : DB.StaticInvokes)
    StaticSitesOf[F.Target].push_back(F.Invoke);
  ImplementsOf.resize(DB.numMethods());
  for (const auto &F : DB.Implements) {
    ImplementsOf[F.Method].push_back({F.Type, F.Sig});
    Dispatch.emplace(key2(F.Type, F.Sig), F.Method);
  }
  CastsInto.resize(DB.numVars());
  for (const auto &F : DB.Casts)
    CastsInto[F.To].push_back({F.From, F.Type});
  for (const auto &F : DB.Subtypes)
    SubtypePairs.insert(key2(F.Sub, F.Super));
}

DemandAnswer DemandSolver::query(std::uint32_t Var, std::size_t Budget,
                                 BudgetMeter *Meter) const {
  assert(Var < DB.numVars() && "query variable out of range");
  Query Q(*this, Budget, Meter);
  return Q.run(Var);
}

bool DemandSolver::mayAlias(std::uint32_t V1, std::uint32_t V2,
                            std::size_t Budget,
                            BudgetMeter *Meter) const {
  DemandAnswer A = query(V1, Budget, Meter);
  DemandAnswer B = query(V2, Budget, Meter);
  std::size_t I = 0, J = 0;
  while (I < A.Heaps.size() && J < B.Heaps.size()) {
    if (A.Heaps[I] == B.Heaps[J])
      return true;
    if (A.Heaps[I] < B.Heaps[J])
      ++I;
    else
      ++J;
  }
  return false;
}
