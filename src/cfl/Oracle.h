//===- cfl/Oracle.h - Context-insensitive L_F oracle ------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independent context-insensitive, field-sensitive points-to solver
/// with an on-the-fly call graph. Per Section 2.1.1 of the paper, "x
/// points-to h iff there exists an L_F-path from h to x"; this oracle
/// computes exactly that relation by saturating the flowsto/alias grammar
/// productions Andersen-style.
///
/// Its purpose is cross-validation: the context-insensitive projection of
/// every configuration of the main solver must be a subset of the oracle's
/// result (soundness of abstraction), and the m = h = 0 configuration must
/// match it exactly. The implementation shares no code with the main
/// solver.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CFL_ORACLE_H
#define CTP_CFL_ORACLE_H

#include "facts/FactDB.h"

#include <array>
#include <cstdint>
#include <vector>

namespace ctp {
namespace cfl {

/// Result of the context-insensitive oracle.
struct OracleResult {
  /// Sorted, deduplicated {(Var, Heap)} pairs.
  std::vector<std::array<std::uint32_t, 2>> Pts;
  /// Sorted {(BaseHeap, Field, Heap)} field points-to triples.
  std::vector<std::array<std::uint32_t, 3>> FieldPts;
  /// Sorted {(Invoke, Callee)} call-graph edges.
  std::vector<std::array<std::uint32_t, 2>> Calls;
  /// Sorted reachable methods.
  std::vector<std::uint32_t> ReachableMethods;
};

/// Runs the oracle over \p DB.
OracleResult solveInsensitive(const facts::FactDB &DB);

/// Deterministically samples up to \p K "interesting" query variables from
/// \p DB — destinations of allocations, assignments, casts, loads, call
/// returns, catches, global loads, plus formals and this-variables — for
/// spot-checking a solved result against the demand-driven solver. Seeded
/// (an LCG over the candidate pool) so the verifier's sampled queries are
/// reproducible; sorted, deduplicated output.
std::vector<std::uint32_t> sampleQueryVars(const facts::FactDB &DB,
                                           std::size_t K,
                                           std::uint64_t Seed);

} // namespace cfl
} // namespace ctp

#endif // CTP_CFL_ORACLE_H
