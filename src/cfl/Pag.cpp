//===- cfl/Pag.cpp - Pointer Assignment Graph -----------------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "cfl/Pag.h"

#include <sstream>
#include <unordered_map>

using namespace ctp;
using namespace ctp::cfl;
using facts::FactDB;

Pag::Pag(const FactDB &DB, const std::vector<CallEdge> &Calls)
    : NumVars(static_cast<std::uint32_t>(DB.numVars())),
      NumHeaps(static_cast<std::uint32_t>(DB.numHeaps())) {
  Out.resize(numNodes());

  for (const auto &F : DB.AssignNews)
    addEdge(heapNode(F.Heap), varNode(F.To), EdgeKind::New, UINT32_MAX);
  for (const auto &F : DB.Assigns)
    addEdge(varNode(F.From), varNode(F.To), EdgeKind::Assign, UINT32_MAX);
  for (const auto &F : DB.Stores)
    addEdge(varNode(F.From), varNode(F.Base), EdgeKind::Store, F.Field);
  for (const auto &F : DB.Loads)
    addEdge(varNode(F.Base), varNode(F.To), EdgeKind::Load, F.Field);

  if (Calls.empty())
    return;

  // Interprocedural edges need per-invocation actual/result tables and
  // per-method formal/return/this tables.
  std::unordered_map<std::uint64_t, std::uint32_t> FormalOf;
  auto Key = [](std::uint32_t A, std::uint32_t B) {
    return (static_cast<std::uint64_t>(A) << 32) | B;
  };
  for (const auto &F : DB.Formals)
    FormalOf.emplace(Key(F.Method, F.Ordinal), F.Var);
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      ActualsOf(DB.numInvokes());
  for (const auto &F : DB.Actuals)
    ActualsOf[F.Invoke].push_back({F.Ordinal, F.Var});
  std::vector<std::vector<std::uint32_t>> RetsOf(DB.numMethods()),
      ResultsOf(DB.numInvokes());
  for (const auto &F : DB.Returns)
    RetsOf[F.Method].push_back(F.Var);
  for (const auto &F : DB.AssignReturns)
    ResultsOf[F.Invoke].push_back(F.To);
  std::vector<std::uint32_t> ThisOf(DB.numMethods(), facts::InvalidId);
  for (const auto &F : DB.ThisVars)
    ThisOf[F.Method] = F.Var;
  std::vector<std::uint32_t> ReceiverOf(DB.numInvokes(), facts::InvalidId);
  for (const auto &F : DB.VirtualInvokes)
    ReceiverOf[F.Invoke] = F.Receiver;

  for (const CallEdge &CE : Calls) {
    for (const auto &[Ord, Actual] : ActualsOf[CE.Invoke])
      if (auto It = FormalOf.find(Key(CE.Callee, Ord));
          It != FormalOf.end())
        addEdge(varNode(Actual), varNode(It->second), EdgeKind::Entry,
                CE.Invoke);
    if (ReceiverOf[CE.Invoke] != facts::InvalidId &&
        ThisOf[CE.Callee] != facts::InvalidId)
      addEdge(varNode(ReceiverOf[CE.Invoke]), varNode(ThisOf[CE.Callee]),
              EdgeKind::Entry, CE.Invoke);
    for (std::uint32_t Ret : RetsOf[CE.Callee])
      for (std::uint32_t Res : ResultsOf[CE.Invoke])
        addEdge(varNode(Ret), varNode(Res), EdgeKind::Exit, CE.Invoke);
  }
}

void Pag::addEdge(NodeId From, NodeId To, EdgeKind K, std::uint32_t Label) {
  Out[From].push_back(static_cast<std::uint32_t>(Edges.size()));
  Edges.push_back({From, To, K, Label});
}

std::string Pag::toDot(const FactDB &DB) const {
  std::ostringstream OS;
  OS << "digraph pag {\n";
  for (std::uint32_t V = 0; V < NumVars; ++V)
    OS << "  n" << varNode(V) << " [label=\"" << DB.VarNames[V]
       << "\", shape=ellipse];\n";
  for (std::uint32_t H = 0; H < NumHeaps; ++H)
    OS << "  n" << heapNode(H) << " [label=\"" << DB.HeapNames[H]
       << "\", shape=box];\n";
  for (const PagEdge &E : Edges) {
    OS << "  n" << E.From << " -> n" << E.To << " [label=\"";
    switch (E.Kind) {
    case EdgeKind::New:
      OS << "new";
      break;
    case EdgeKind::Assign:
      OS << "assign";
      break;
    case EdgeKind::Store:
      OS << "store[" << DB.FieldNames[E.Label] << "]";
      break;
    case EdgeKind::Load:
      OS << "load[" << DB.FieldNames[E.Label] << "]";
      break;
    case EdgeKind::Entry:
      OS << "assign@entry:" << DB.InvokeNames[E.Label];
      break;
    case EdgeKind::Exit:
      OS << "assign@exit:" << DB.InvokeNames[E.Label];
      break;
    }
    OS << "\"];\n";
  }
  OS << "}\n";
  return OS.str();
}
