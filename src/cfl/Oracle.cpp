//===- cfl/Oracle.cpp - Context-insensitive L_F oracle --------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "cfl/Oracle.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace ctp;
using namespace ctp::cfl;
using facts::FactDB;

namespace {

std::uint64_t key2(std::uint32_t A, std::uint32_t B) {
  return (static_cast<std::uint64_t>(A) << 32) | B;
}

/// Saturation engine over the L_F productions. State uses ordered sets per
/// variable/object deliberately — different containers and iteration order
/// than the main solver, so agreement between the two is meaningful.
class Engine {
public:
  explicit Engine(const FactDB &DB) : DB(DB) {
    VarPts.resize(DB.numVars());
    FieldPts.resize(DB.numHeaps());
    AssignOut.resize(DB.numVars());
    StoreOutValue.resize(DB.numVars());
    StoreOutBase.resize(DB.numVars());
    LoadOut.resize(DB.numVars());
    VirtOut.resize(DB.numVars());
    MethodReachable.assign(DB.numMethods(), false);

    for (const auto &F : DB.Assigns)
      AssignOut[F.From].push_back(F.To);
    for (const auto &F : DB.Stores) {
      StoreOutValue[F.From].push_back({F.Field, F.Base});
      StoreOutBase[F.Base].push_back({F.Field, F.From});
    }
    for (const auto &F : DB.Loads)
      LoadOut[F.Base].push_back({F.Field, F.To});
    for (const auto &F : DB.VirtualInvokes)
      VirtOut[F.Receiver].push_back({F.Invoke, F.Sig});
    for (const auto &F : DB.Implements)
      Dispatch.emplace(key2(F.Type, F.Sig), F.Method);
    HeapTypeOf.assign(DB.numHeaps(), facts::InvalidId);
    for (const auto &F : DB.HeapTypes)
      HeapTypeOf[F.Heap] = F.Type;
    ThisOf.assign(DB.numMethods(), facts::InvalidId);
    for (const auto &F : DB.ThisVars)
      ThisOf[F.Method] = F.Var;
    for (const auto &F : DB.Formals)
      FormalOf.emplace(key2(F.Method, F.Ordinal), F.Var);
    ActualsOf.resize(DB.numInvokes());
    for (const auto &F : DB.Actuals)
      ActualsOf[F.Invoke].push_back({F.Ordinal, F.Var});
    RetsOf.resize(DB.numMethods());
    for (const auto &F : DB.Returns)
      RetsOf[F.Method].push_back(F.Var);
    ResultsOf.resize(DB.numInvokes());
    for (const auto &F : DB.AssignReturns)
      ResultsOf[F.Invoke].push_back(F.To);
    NewsOf.resize(DB.numMethods());
    for (const auto &F : DB.AssignNews)
      NewsOf[F.InMethod].push_back({F.Heap, F.To});
    StaticsOf.resize(DB.numMethods());
    for (const auto &F : DB.StaticInvokes)
      StaticsOf[F.InMethod].push_back({F.Invoke, F.Target});
    FieldLoaders.resize(DB.numHeaps());

    GlobalStoresOf.resize(DB.numVars());
    for (const auto &F : DB.GlobalStores)
      GlobalStoresOf[F.From].push_back(F.Global);
    GlobalPts.resize(DB.numGlobals());
    GlobalLoadersOf.resize(DB.numGlobals());
    GlobalLoadsByMethod.resize(DB.numMethods());
    for (const auto &F : DB.GlobalLoads)
      GlobalLoadsByMethod[F.InMethod].push_back({F.Global, F.To});
    ThrowsOfMethod.resize(DB.numMethods());
    for (const auto &F : DB.Throws)
      ThrowsOfMethod[F.Method].push_back(F.Var);
    CatchesOf.resize(DB.numInvokes());
    for (const auto &F : DB.Catches)
      CatchesOf[F.Invoke].push_back(F.To);
    CastsOf.resize(DB.numVars());
    for (const auto &F : DB.Casts)
      CastsOf[F.From].push_back({F.To, F.Type});
    for (const auto &F : DB.Subtypes)
      SubtypePairs.insert(key2(F.Sub, F.Super));
  }

  OracleResult run() {
    for (std::uint32_t E : DB.EntryMethods)
      markReachable(E);
    while (!Work.empty()) {
      auto [V, H] = Work.back();
      Work.pop_back();
      propagate(V, H);
    }

    OracleResult R;
    for (std::uint32_t V = 0; V < VarPts.size(); ++V)
      for (std::uint32_t H : VarPts[V])
        R.Pts.push_back({V, H});
    for (std::uint32_t G = 0; G < FieldPts.size(); ++G)
      for (const auto &[F, H] : FieldPts[G])
        R.FieldPts.push_back({G, F, H});
    for (const auto &[I, Q] : CallEdges)
      R.Calls.push_back({I, Q});
    for (std::uint32_t M = 0; M < MethodReachable.size(); ++M)
      if (MethodReachable[M])
        R.ReachableMethods.push_back(M);
    std::sort(R.Pts.begin(), R.Pts.end());
    std::sort(R.FieldPts.begin(), R.FieldPts.end());
    std::sort(R.Calls.begin(), R.Calls.end());
    return R;
  }

private:
  void addPts(std::uint32_t V, std::uint32_t H) {
    if (!VarPts[V].insert(H).second)
      return;
    Work.push_back({V, H});
  }

  void addFieldPts(std::uint32_t G, std::uint32_t F, std::uint32_t H) {
    if (!FieldPts[G].insert({F, H}).second)
      return;
    // flows -> load[f] alias store[f]: feed every registered loader.
    for (const auto &[LF, Dst] : FieldLoaders[G])
      if (LF == F)
        addPts(Dst, H);
  }

  void markReachable(std::uint32_t M) {
    if (MethodReachable[M])
      return;
    MethodReachable[M] = true;
    for (const auto &[H, Y] : NewsOf[M])
      addPts(Y, H);
    for (const auto &[I, Q] : StaticsOf[M])
      addCallEdge(I, Q);
    // Register this method's global loaders and catch up with the
    // current contents of those globals.
    for (const auto &[G, Z] : GlobalLoadsByMethod[M]) {
      GlobalLoadersOf[G].push_back(Z);
      for (std::uint32_t H : GlobalPts[G])
        addPts(Z, H);
    }
  }

  void addGlobalPts(std::uint32_t G, std::uint32_t H) {
    if (!GlobalPts[G].insert(H).second)
      return;
    for (std::uint32_t Z : GlobalLoadersOf[G])
      addPts(Z, H);
  }

  void addCallEdge(std::uint32_t I, std::uint32_t Q) {
    if (!CallEdges.insert({I, Q}).second)
      return;
    markReachable(Q);
    // Parameter and return value flow as interprocedural assign edges.
    for (const auto &[Ord, Actual] : ActualsOf[I])
      if (auto It = FormalOf.find(key2(Q, Ord)); It != FormalOf.end()) {
        DynAssign[Actual].push_back(It->second);
        for (std::uint32_t H : VarPts[Actual])
          addPts(It->second, H);
      }
    for (std::uint32_t Ret : RetsOf[Q])
      for (std::uint32_t Res : ResultsOf[I]) {
        DynAssign[Ret].push_back(Res);
        for (std::uint32_t H : VarPts[Ret])
          addPts(Res, H);
      }
    // Exceptional returns: thrown objects flow into the catch variable.
    for (std::uint32_t Thrown : ThrowsOfMethod[Q])
      for (std::uint32_t Catch : CatchesOf[I]) {
        DynAssign[Thrown].push_back(Catch);
        for (std::uint32_t H : VarPts[Thrown])
          addPts(Catch, H);
      }
  }

  void propagate(std::uint32_t V, std::uint32_t H) {
    for (std::uint32_t To : AssignOut[V])
      addPts(To, H);
    if (auto It = DynAssign.find(V); It != DynAssign.end())
      for (std::uint32_t To : It->second)
        addPts(To, H);

    // V stores into bases: value side of store[f].
    for (const auto &[F, Base] : StoreOutValue[V])
      for (std::uint32_t G : VarPts[Base])
        addFieldPts(G, F, H);
    // V is a base being stored into: H is the base object.
    for (const auto &[F, Value] : StoreOutBase[V])
      for (std::uint32_t Pointee : VarPts[Value])
        addFieldPts(H, F, Pointee);

    // V is a load base: register the loader on object H and catch up.
    for (const auto &[F, Dst] : LoadOut[V]) {
      FieldLoaders[H].push_back({F, Dst});
      for (const auto &[GF, GH] : FieldPts[H])
        if (GF == F)
          addPts(Dst, GH);
    }

    // Stores into globals.
    for (std::uint32_t G : GlobalStoresOf[V])
      addGlobalPts(G, H);

    // Casts: type-filtered assignments.
    for (const auto &[To, T] : CastsOf[V])
      if (SubtypePairs.count(key2(HeapTypeOf[H], T)))
        addPts(To, H);

    // Virtual dispatch on the new receiver object.
    for (const auto &[I, S] : VirtOut[V]) {
      auto It = Dispatch.find(key2(HeapTypeOf[H], S));
      if (It == Dispatch.end())
        continue;
      std::uint32_t Q = It->second;
      addCallEdge(I, Q);
      assert(ThisOf[Q] != facts::InvalidId && "callee without this");
      addPts(ThisOf[Q], H);
    }
  }

  const FactDB &DB;
  std::vector<std::set<std::uint32_t>> VarPts;
  std::vector<std::set<std::pair<std::uint32_t, std::uint32_t>>> FieldPts;
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      FieldLoaders;
  std::vector<std::vector<std::uint32_t>> AssignOut;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> DynAssign;
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      StoreOutValue, StoreOutBase, LoadOut, VirtOut, ActualsOf, NewsOf,
      StaticsOf;
  std::unordered_map<std::uint64_t, std::uint32_t> Dispatch, FormalOf;
  std::vector<std::uint32_t> HeapTypeOf, ThisOf;
  std::vector<std::vector<std::uint32_t>> RetsOf, ResultsOf;
  std::set<std::pair<std::uint32_t, std::uint32_t>> CallEdges;
  std::vector<bool> MethodReachable;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> Work;
  std::vector<std::vector<std::uint32_t>> GlobalStoresOf, GlobalLoadersOf,
      ThrowsOfMethod, CatchesOf;
  std::vector<std::set<std::uint32_t>> GlobalPts;
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      GlobalLoadsByMethod, CastsOf;
  std::unordered_set<std::uint64_t> SubtypePairs;
};

} // namespace

OracleResult cfl::solveInsensitive(const FactDB &DB) {
  return Engine(DB).run();
}

std::vector<std::uint32_t> cfl::sampleQueryVars(const FactDB &DB,
                                                std::size_t K,
                                                std::uint64_t Seed) {
  // Candidate pool: variables a derivation can actually flow into. Bare
  // never-assigned variables have trivially empty points-to sets and would
  // waste spot-check budget.
  std::vector<std::uint32_t> Pool;
  for (const auto &F : DB.AssignNews)
    Pool.push_back(F.To);
  for (const auto &F : DB.Assigns)
    Pool.push_back(F.To);
  for (const auto &F : DB.Casts)
    Pool.push_back(F.To);
  for (const auto &F : DB.Loads)
    Pool.push_back(F.To);
  for (const auto &F : DB.AssignReturns)
    Pool.push_back(F.To);
  for (const auto &F : DB.Catches)
    Pool.push_back(F.To);
  for (const auto &F : DB.GlobalLoads)
    Pool.push_back(F.To);
  for (const auto &F : DB.Formals)
    Pool.push_back(F.Var);
  for (const auto &F : DB.ThisVars)
    Pool.push_back(F.Var);
  std::sort(Pool.begin(), Pool.end());
  Pool.erase(std::unique(Pool.begin(), Pool.end()), Pool.end());
  if (Pool.size() <= K)
    return Pool;

  // Deterministic draw without replacement: an LCG (Knuth's MMIX
  // constants) indexes the shrinking pool. No std::random so the sample
  // is identical across standard libraries.
  std::uint64_t State = Seed * 0x9e3779b97f4a7c15ULL + 1;
  std::vector<std::uint32_t> Sample;
  Sample.reserve(K);
  for (std::size_t I = 0; I < K; ++I) {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    std::size_t J = static_cast<std::size_t>((State >> 16) % Pool.size());
    Sample.push_back(Pool[J]);
    Pool[J] = Pool.back();
    Pool.pop_back();
  }
  std::sort(Sample.begin(), Sample.end());
  return Sample;
}
