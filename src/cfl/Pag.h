//===- cfl/Pag.h - Pointer Assignment Graph ---------------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Pointer Assignment Graph of Section 2.1 / Figure 2 of the paper:
/// nodes are variables and heap allocation sites; edges carry the ΣF
/// labels (new, assign, store[f], load[f]) plus, for interprocedural
/// assignments, the call-site labels below the arrow (entry ĉ / exit č).
/// Interprocedural edges require a call graph, which is supplied
/// separately (on-the-fly construction is what the deduction rules do; the
/// PAG is the *a posteriori* graph view used for inspection, DOT export,
/// and the CFL-reachability discussion).
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CFL_PAG_H
#define CTP_CFL_PAG_H

#include "facts/FactDB.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ctp {
namespace cfl {

/// PAG node: a variable or a heap site. Heap nodes are offset past the
/// variable ids.
using NodeId = std::uint32_t;

/// ΣF edge labels (forward direction; the "backwards equivalents" of the
/// paper are implicit — traversals that need l̄ walk edges in reverse).
enum class EdgeKind : std::uint8_t {
  New,    ///< heap -> var
  Assign, ///< var -> var (intraprocedural)
  Store,  ///< value var -> base var, labelled with the field
  Load,   ///< base var -> dest var, labelled with the field
  Entry,  ///< actual -> formal, labelled ĉ with the call site
  Exit,   ///< return var -> result var, labelled č with the call site
};

struct PagEdge {
  NodeId From, To;
  EdgeKind Kind;
  /// Field id for Store/Load; invocation id for Entry/Exit; unused
  /// otherwise.
  std::uint32_t Label = UINT32_MAX;
};

/// A call-graph edge used to materialize interprocedural PAG edges.
struct CallEdge {
  std::uint32_t Invoke, Callee;
};

/// The graph itself.
class Pag {
public:
  /// Builds the intraprocedural PAG from \p DB; if \p Calls is non-empty,
  /// also materializes entry/exit edges (actual->formal, receiver->this,
  /// return->result) for each call edge.
  Pag(const facts::FactDB &DB, const std::vector<CallEdge> &Calls = {});

  NodeId varNode(std::uint32_t Var) const { return Var; }
  NodeId heapNode(std::uint32_t Heap) const {
    return NumVars + Heap;
  }
  bool isHeapNode(NodeId N) const { return N >= NumVars; }
  std::uint32_t heapOfNode(NodeId N) const { return N - NumVars; }

  std::size_t numNodes() const { return NumVars + NumHeaps; }
  const std::vector<PagEdge> &edges() const { return Edges; }

  /// Outgoing edges of a node.
  const std::vector<std::uint32_t> &outEdges(NodeId N) const {
    return Out[N];
  }

  /// Renders the graph in Graphviz DOT syntax using \p DB's entity names.
  std::string toDot(const facts::FactDB &DB) const;

private:
  void addEdge(NodeId From, NodeId To, EdgeKind K, std::uint32_t Label);

  std::uint32_t NumVars, NumHeaps;
  std::vector<PagEdge> Edges;
  std::vector<std::vector<std::uint32_t>> Out;
};

} // namespace cfl
} // namespace ctp

#endif // CTP_CFL_PAG_H
