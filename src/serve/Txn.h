//===- serve/Txn.h - Crash-safe transaction journal -------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The write-ahead journal behind ctp-serve's transactional delta verbs.
/// One record per line, tab-separated, each closed by an FNV-1a checksum
/// over its preceding fields:
///
///   begin    <tx> <base-epoch> <base-fp-hex> <cksum>
///   op       <tx> <delta-op-line>            <cksum>
///   commit   <tx> <new-epoch>  <new-fp-hex>  <cksum>
///   aborted  <tx> <reason>                   <cksum>
///
/// The `commit` record is the single durable commit point: it is
/// appended only after the transaction has solved, certified, and
/// promoted its warm-start snapshot, so recovery never needs to undo a
/// half-applied transaction — a txn without a terminal record simply
/// never happened (recovery appends `aborted <tx> recovery`). Records
/// reach disk through support/Durability (O_APPEND write + fsync +
/// directory fsync on creation), so a SIGKILL between any two bytes
/// leaves at worst a torn final line, which replay truncates away
/// before appending anything new.
///
/// Replay folds the ops of every committed transaction onto the base
/// FactDB, re-verifying the epoch sequence and that each recorded
/// fingerprint matches the folded database. Any mismatch — a journal
/// from a different facts directory, hand-edited records, a corrupt
/// middle — discards the whole journal (renamed to `<path>.stale`) so
/// the daemon restarts from certified base facts rather than serve an
/// unverifiable state.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SERVE_TXN_H
#define CTP_SERVE_TXN_H

#include "facts/FactDB.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ctp {
namespace serve {

/// One parsed journal record. Epoch/Fp are meaningful for Begin and
/// Commit; Text holds the delta op line (Op) or the abort reason
/// (Aborted).
struct JournalRecord {
  enum class Kind { Begin, Op, Commit, Aborted };
  Kind K = Kind::Begin;
  std::string Tx;
  std::uint64_t Epoch = 0;
  std::uint64_t Fp = 0;
  std::string Text;
};

/// The journal lives next to the warm-start snapshot it gates.
std::string journalPath(const std::string &StateDir);

/// FNV-1a over \p Data; the checksum each record carries in its final
/// field (rendered as 16 hex digits).
std::uint64_t journalChecksum(const std::string &Data);

/// Renders \p R as one journal line (no trailing newline). Tabs and
/// newlines inside Text are flattened to spaces so the record stays one
/// parseable line.
std::string renderRecord(const JournalRecord &R);

/// Parses one journal line. Returns false on wrong field count, a bad
/// kind, a non-numeric epoch/fingerprint, or a checksum mismatch.
bool parseRecord(const std::string &Line, JournalRecord &R);

/// Durably appends \p R to the journal at \p Path. Empty on success.
std::string appendRecord(const std::string &Path, const JournalRecord &R);

/// Result of scanning a journal file without interpreting it.
struct JournalScan {
  std::vector<JournalRecord> Records; ///< every record up to the tail
  std::uint64_t GoodBytes = 0; ///< offset just past the last good record
  bool TornTail = false;       ///< bytes past GoodBytes failed to parse
  bool Exists = false;         ///< the file was present at all
};

/// Reads \p Path and parses records until the first torn or corrupt
/// line; everything after it is tail. Returns a diagnostic only for
/// I/O failures (a missing file is a successful empty scan).
std::string scanJournal(const std::string &Path, JournalScan &Out);

/// What replayJournal established.
struct ReplayOutcome {
  std::uint64_t Epoch = 0;      ///< committed transactions folded in
  std::size_t CommittedTxns = 0;
  std::uint64_t NextTxnSeq = 1; ///< first unused "t<N>" suffix
  std::string RecoveryAbortTx;  ///< open txn recovery-aborted, if any
  bool DiscardedJournal = false; ///< journal renamed to <path>.stale
  std::vector<std::string> Warnings;
};

/// Replays the journal at \p Path onto \p DB: truncates a torn tail,
/// folds every committed transaction's ops in order, and verifies the
/// epoch sequence and fingerprints as it goes. A trailing transaction
/// with no terminal record is recovery-aborted (an `aborted` record is
/// appended). On any verification or apply failure the journal is
/// renamed to `<path>.stale` and DiscardedJournal is set — \p DB may
/// then hold partially folded facts, so the caller MUST reload the base
/// facts and start from epoch 0. Returns a diagnostic only for
/// unrecoverable I/O failures.
std::string replayJournal(const std::string &Path, facts::FactDB &DB,
                          ReplayOutcome &Out);

} // namespace serve
} // namespace ctp

#endif // CTP_SERVE_TXN_H
