//===- serve/Delta.h - Fact-delta language for transactions -----*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fact-delta language accepted by ctp-serve's `delta` verb: one
/// operation per line, space-separated tokens, entity names resolved
/// against the staged database (names never contain whitespace — the
/// TSV schema forbids it). Predicate names and argument orders mirror
/// the facts-directory TSV vocabulary (facts/TsvIO.h) exactly:
///
///   add|rm entry <method>
///   add|rm assign <from> <to>
///   add|rm assign_new <heap> <to> <in-method>
///   add|rm assign_return <invoke> <to>
///   add|rm actual <var> <invoke> <ordinal>
///   add|rm formal <var> <method> <ordinal>
///   add|rm heap_type <heap> <type>               (wide: see below)
///   add|rm implements <method> <type> <sig>      (wide)
///   add|rm load <base> <field> <to>
///   add|rm return <var> <method>
///   add|rm static_invoke <invoke> <target> <in-method>
///   add|rm store <from> <field> <base>
///   add|rm this_var <var> <method>               (wide)
///   add|rm virtual_invoke <invoke> <receiver> <sig>
///   add|rm global_store <from> <global>
///   add|rm global_load <global> <to> <in-method>
///   add|rm throw <var> <method>
///   add|rm catch <invoke> <to>
///   add|rm cast <from> <to> <type>
///   add|rm subtype <sub> <super>                 (wide)
///   add|rm spawn <invoke>
///   add|rm taint_source invoke|field <name>
///   add|rm taint_sink invoke|field <name>
///   add|rm sanitizer <invoke>
///   add entity var|heap|invoke <name> <parent-method>
///   add entity method <name> <class-type>
///   add entity field|type|sig|global <name>
///
/// Semantics: `add` of a row already present is an error, as is `rm` of
/// a missing row (a delta states exact edits; silently tolerating either
/// would let a typo commit as a no-op). `rm` erases the first matching
/// row in place, preserving the order of the rest — the same layout a
/// hand edit of the TSV file would produce. Entities are append-only:
/// ids stay stable across every transaction, so `rm entity` does not
/// exist. Ops apply immediately to the staged FactDB and accumulate the
/// solver-visible summary in an analysis::InputDelta; "wide" predicates
/// (side conditions the provenance graph summarizes away) set the
/// WideAdd/WideRemove flags that steer the incremental solver toward its
/// conservative paths.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SERVE_DELTA_H
#define CTP_SERVE_DELTA_H

#include "analysis/Incremental.h"
#include "facts/FactDB.h"

#include <string>
#include <vector>

namespace ctp {
namespace serve {

/// Applies one delta operation to \p DB, accumulating the solver-visible
/// summary in \p D. Validation is all-or-nothing per op: on a non-empty
/// return (the diagnostic) neither \p DB nor \p D was modified.
std::string applyDeltaOp(const std::string &Line, facts::FactDB &DB,
                         analysis::InputDelta &D);

/// Applies \p Lines in order, stopping at the first failure ("op N:"
/// prefixed diagnostic). Earlier ops remain applied — callers replaying
/// a journal treat any failure as fatal for the whole transaction.
std::string applyDeltaOps(const std::vector<std::string> &Lines,
                          facts::FactDB &DB, analysis::InputDelta &D);

} // namespace serve
} // namespace ctp

#endif // CTP_SERVE_DELTA_H
