//===- serve/Wire.h - ctp-serve framing and message model -------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the resident analysis service (tools/ctp-serve):
/// length-prefixed frames over a byte stream (Unix socket or a pipe
/// pair), each frame one tab-separated text line.
///
/// Frame: u32 little-endian payload length, then that many payload
/// bytes. A frame longer than MaxFrameBytes is a protocol error (the
/// reader refuses to allocate for it); length prefixes make torn streams
/// detectable — a reader that gets EOF mid-frame knows the peer died
/// rather than silently truncating a line.
///
/// Request payload:  <id> \t <verb> [\t <arg>]... [\t key=value]...
///   Verbs: pts VAR | alias VAR VAR | taint HEAP | vars N | stats |
///          ping | stall MS | shutdown | begin | delta OP... | commit |
///          abort | txstat. Recognized options: deadline_ms=N
///   (wall-clock budget for this request), max_steps=N (work cap; one
///   step per points-to element touched / CFL worklist step).
///
/// Response payload: <id> \t <status> \t <mode> \t <epoch> \t <body>
///   status: ok | degraded | overloaded | error | txn-aborted
///   mode:   how the answer was produced — hot (converged exhaustive
///           results), hot-rung<k> (converged on degradation-ladder rung
///           k), cfl (demand-driven), cfl-exhausted (demand budget ran
///           out: sound all-heaps fallback), or "-" when no engine ran
///           (ping, errors, shed load, transaction verbs).
///   epoch:  the count of committed transactions in the fact state this
///           answer was computed against, stamped on EVERY response
///           (sheds and parse errors included) so a client interleaving
///           queries with commits can attribute each answer to a state.
///
/// The transaction verbs drive the crash-safe delta journal (serve/Txn.h):
/// `begin` opens the single staged transaction and returns its id,
/// `delta` applies one fact-delta op (serve/Delta.h grammar, space-
/// separated) to the staged facts, `commit` re-solves incrementally,
/// certifies the result, and atomically publishes it (epoch+1), `abort`
/// discards the staged state, and `txstat` reports epoch and transaction
/// status. A failed commit rolls back and answers status `txn-aborted`
/// with the reason in the body.
///
/// Ids are chosen by the client and echoed verbatim, so a pipelining
/// client can reorder responses deterministically (crashloop.sh sorts by
/// id before comparing across daemon lives).
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SERVE_WIRE_H
#define CTP_SERVE_WIRE_H

#include <cstdint>
#include <string>
#include <vector>

namespace ctp {
namespace serve {

/// Refuse to allocate for absurd frames: no legitimate query or answer
/// in this protocol approaches 16 MiB.
constexpr std::uint32_t MaxFrameBytes = 16u << 20;

enum class FrameResult : std::uint8_t {
  Ok,       ///< One complete frame read.
  Eof,      ///< Clean EOF on a frame boundary (peer closed).
  TornEof,  ///< EOF inside a frame (peer died mid-write).
  TooBig,   ///< Length prefix exceeds MaxFrameBytes.
  IoError,  ///< read() failed (errno in the diagnostic).
};

const char *frameResultName(FrameResult R);

/// Reads one frame from \p Fd (blocking, EINTR-retried). On Ok,
/// \p Payload holds the frame body.
FrameResult readFrame(int Fd, std::string &Payload);

/// Writes one frame (length prefix + payload) to \p Fd. \returns false
/// on a write error or a payload over MaxFrameBytes. The caller
/// serializes concurrent writers (the service holds a per-connection
/// write mutex) — a frame must hit the stream contiguously.
bool writeFrame(int Fd, const std::string &Payload);

/// One parsed request.
struct Request {
  std::string Id;
  std::string Verb;
  std::vector<std::string> Args; ///< Positional args (option args removed).
  std::uint64_t DeadlineMs = 0;  ///< 0 = no per-request deadline.
  std::uint64_t MaxSteps = 0;    ///< 0 = no per-request work cap.
};

/// Parses a request payload. \returns an empty string on success, else a
/// diagnostic (the service echoes it in an error response, so it must
/// not contain tabs or newlines).
std::string parseRequest(const std::string &Payload, Request &Out);

/// One response, rendered as the tab-joined payload described above.
struct Response {
  std::string Id;
  std::string Status;
  std::string Mode = "-";
  std::string Body = "-";
  std::uint64_t Epoch = 0;
};

// Status strings (the protocol's, not an enum: they go on the wire).
extern const char StatusOk[];
extern const char StatusDegraded[];
extern const char StatusOverloaded[];
extern const char StatusError[];
extern const char StatusTxnAborted[];

std::string renderResponse(const Response &R);

/// Splits a rendered response back into fields; false when \p Payload
/// does not have exactly five tab-separated fields or the epoch field is
/// not a decimal number. Used by the client and the tests; the body
/// itself may contain no tabs by construction.
bool parseResponse(const std::string &Payload, Response &Out);

} // namespace serve
} // namespace ctp

#endif // CTP_SERVE_WIRE_H
