//===- serve/Service.cpp - Resident analysis service ----------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "serve/Service.h"

#include "analysis/Configurations.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "facts/TsvIO.h"
#include "support/Posix.h"
#include "support/Suggest.h"
#include "workload/Presets.h"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ctp;
using namespace ctp::serve;

namespace {

void note(const std::string &Line) {
  std::fprintf(stderr, "ctp-serve: %s\n", Line.c_str());
}

} // namespace

//===----------------------------------------------------------------------===//
// Connection and queue machinery.
//===----------------------------------------------------------------------===//

namespace {

/// One accepted connection. Workers and the reader share the fd; the
/// write mutex keeps response frames contiguous on it.
struct Conn {
  int Fd = -1;
  std::mutex WriteMutex;

  void reply(const Response &R) {
    std::lock_guard<std::mutex> Lock(WriteMutex);
    serve::writeFrame(Fd, renderResponse(R));
  }
};

struct Work {
  std::shared_ptr<Conn> C;
  Request Q;
};

} // namespace

struct Service::Impl {
  std::mutex QueueMutex;
  std::condition_variable QueueCv;
  std::deque<Work> Queue;

  // Open connections, for shutdown(): a reader blocked in readFrame
  // only wakes when its fd is shut down.
  std::mutex ConnsMutex;
  std::vector<std::shared_ptr<Conn>> Conns;

  std::vector<std::thread> Readers;
  std::vector<std::thread> Workers;
};

//===----------------------------------------------------------------------===//
// Startup.
//===----------------------------------------------------------------------===//

Service::Service(ServiceOptions O)
    : Opts(std::move(O)), M(new Impl()) {}

Service::~Service() = default;

std::string Service::init() {
  if (Opts.FactsDir.empty() == Opts.Preset.empty())
    return "exactly one of FactsDir / Preset is required";
  if (!Opts.FactsDir.empty()) {
    facts::FactsReadOptions ReadOpts;
    facts::FactsReadReport Report;
    std::string Err =
        facts::readFactsDir(Opts.FactsDir, DB, ReadOpts, &Report);
    if (!Err.empty())
      return Err;
  } else {
    bool Known = false;
    for (const std::string &N : workload::presetNames())
      Known |= N == Opts.Preset;
    if (!Known)
      return "unknown preset '" + Opts.Preset + "'" +
             support::didYouMean(Opts.Preset, workload::presetNames());
    DB = facts::extract(workload::generatePreset(Opts.Preset));
  }

  ctx::Config Cfg;
  if (!ctx::configByName(Opts.ConfigName,
                         ctx::Abstraction::TransformerString, Cfg))
    return "unknown config '" + Opts.ConfigName + "'" +
           support::didYouMean(Opts.ConfigName, ctx::configNames());
  std::string CfgErr = Cfg.validate();
  if (!CfgErr.empty())
    return CfgErr;

  // The demand engine indexes once here and is read-only afterwards; it
  // is both the CflOnly answer path and the degradation target of every
  // deadline-tripped hot query.
  Demand.reset(new cfl::DemandSolver(DB));

  const std::vector<ctx::Config> Ladder = analysis::defaultLadder(Cfg);

  // Rung 0: resume a prior life's snapshot when one validates; keep a
  // converged snapshot behind for the *next* life (KeepOnConverge), and
  // checkpoint periodically so a crash mid-solve still resumes.
  analysis::SnapshotProbe Probe;
  analysis::CheckpointPolicy Ckpt;
  if (!Opts.CheckpointDir.empty()) {
    // Whoever is handed the checkpoint path creates it — the snapshot
    // writer only writes files, so a missing directory would silently
    // turn every checkpoint into a warning and every restart cold.
    std::string DirErr = posix::mkdirs(Opts.CheckpointDir);
    if (!DirErr.empty())
      return DirErr;
    Ckpt.Dir = Opts.CheckpointDir;
    Ckpt.EveryDerivations = Opts.CheckpointEvery;
    Ckpt.KeepOnConverge = true;
    Probe = analysis::probeSnapshot(Ckpt.Dir, DB, Ladder[0],
                                    /*UseDatalog=*/false, Opts.Collapse);
    if (!Probe.Warning.empty())
      note("warning: " + Probe.Warning);
    note(std::string("resume: ") +
         analysis::resumeStatusName(Probe.Status));
  }

  for (std::size_t Rung = 0; Rung < Ladder.size(); ++Rung) {
    analysis::SolverOptions SO;
    SO.CollapseSubsumedPts = Opts.Collapse;
    SO.Budget = Opts.StartupBudget.scaledForRung(Rung);
    if (Rung == 0) {
      SO.Checkpoint = Ckpt;
      if (Probe.Status == analysis::ResumeStatus::Resumed)
        SO.Resume = &Probe.Snap;
    }
    analysis::Results R = analysis::solve(DB, Ladder[Rung], SO);
    if (!R.Stat.CheckpointError.empty())
      note("warning: " + R.Stat.CheckpointError);
    if (R.Stat.Term == TerminationReason::Converged) {
      Mode = Rung == 0 ? ServeMode::Hot : ServeMode::HotRung;
      ModeTag = Rung == 0 ? "hot" : "hot-rung" + std::to_string(Rung);
      // Progress.Derivations is cumulative across lives (resume folds
      // the snapshot's count in), so "no new work" is measured against
      // the restored image's own counter.
      WarmStart = Rung == 0 &&
                  Probe.Status == analysis::ResumeStatus::Resumed &&
                  R.Stat.Progress.Derivations == Probe.Snap.Derivations;
      Hot.reset(new analysis::Results(std::move(R)));
      Oracle.reset(new clients::AliasOracle(*Hot));
      Taint.reset(new clients::TaintInfo(clients::computeTaint(DB, *Hot)));
      note("serving " + Ladder[Rung].name() + " (" + ModeTag +
           (WarmStart ? ", warm start from snapshot)" : ", cold solve)"));
      return "";
    }
    // A partial exhaustive fixpoint is a subset of the truth — unsound
    // for may-queries, so it is never served; descend instead.
    note("startup solve of " + Ladder[Rung].name() + " exhausted (" +
         terminationReasonName(R.Stat.Term) + "); " +
         (Rung + 1 < Ladder.size() ? "descending the ladder"
                                   : "serving demand-driven only"));
  }
  Mode = ServeMode::CflOnly;
  ModeTag = "cfl";
  return "";
}

//===----------------------------------------------------------------------===//
// Query answering.
//===----------------------------------------------------------------------===//

bool Service::lookupVar(const std::string &Name, std::uint32_t &Id) const {
  // Linear scan: fact bases here are small enough that a resident map
  // would only pay off under sustained load, and the scan keeps the
  // resident state trivially read-only. Revisit with an interned map if
  // a profile ever blames it.
  for (std::size_t V = 0; V < DB.numVars(); ++V)
    if (DB.VarNames[V] == Name) {
      Id = static_cast<std::uint32_t>(V);
      return true;
    }
  return false;
}

bool Service::lookupHeap(const std::string &Name, std::uint32_t &Id) const {
  for (std::size_t H = 0; H < DB.numHeaps(); ++H)
    if (DB.HeapNames[H] == Name) {
      Id = static_cast<std::uint32_t>(H);
      return true;
    }
  return false;
}

namespace {

/// Renders a sorted heap-id set as the response body: space-joined
/// names, "-" when empty. Deterministic given the fact base, which is
/// what makes responses byte-identical across daemon lives.
std::string heapSetBody(const facts::FactDB &DB,
                        const std::vector<std::uint32_t> &Heaps) {
  if (Heaps.empty())
    return "-";
  std::string Body;
  for (std::uint32_t H : Heaps) {
    if (!Body.empty())
      Body += ' ';
    Body += DB.HeapNames[H];
  }
  return Body;
}

/// The per-request meter, or none when the request set no budget.
struct RequestMeter {
  bool Active = false;
  BudgetMeter Meter;

  explicit RequestMeter(const Request &Q) {
    if (Q.DeadlineMs == 0 && Q.MaxSteps == 0)
      return;
    BudgetSpec S;
    S.DeadlineMs = Q.DeadlineMs;
    S.MaxDerivations = Q.MaxSteps;
    Meter = BudgetMeter(S);
    Active = true;
  }

  /// Charges one unit and polls. True = budget tripped.
  bool step() {
    if (!Active)
      return false;
    Meter.chargeDerivations();
    return Meter.poll().has_value();
  }
};

} // namespace

Response Service::answerPts(const Request &Q) {
  Response R;
  R.Id = Q.Id;
  if (Q.Args.size() != 1) {
    R.Status = StatusError;
    R.Body = "pts wants exactly one variable name";
    return R;
  }
  std::uint32_t V = 0;
  if (!lookupVar(Q.Args[0], V)) {
    R.Status = StatusError;
    R.Body = "unknown variable '" + Q.Args[0] + "'";
    return R;
  }
  RequestMeter RM(Q);
  if (Hot) {
    const std::vector<std::uint32_t> &Heaps = Oracle->pointsTo(V);
    // Charge per element so max_steps=1 deterministically exercises the
    // degradation path even on a hot answer.
    bool TrippedMidAnswer = false;
    for (std::size_t I = 0; I < Heaps.size(); ++I)
      if (RM.step()) {
        TrippedMidAnswer = true;
        break;
      }
    if (!TrippedMidAnswer) {
      R.Status = Mode == ServeMode::Hot ? StatusOk : StatusDegraded;
      R.Mode = ModeTag;
      R.Body = heapSetBody(DB, Heaps);
      return R;
    }
    // Fall through to the demand engine below with the same meter: it
    // is already tripped, so the query exhausts immediately into the
    // sound all-heaps fallback — answered, late-free, degraded.
  }
  cfl::DemandAnswer A =
      Demand->query(V, Opts.CflBudget, RM.Active ? &RM.Meter : nullptr);
  // A demand answer is this service's first-class product only in
  // CflOnly mode; anywhere else reaching it means a budget pushed the
  // query off the hot path, i.e. a degraded answer.
  R.Status = Mode == ServeMode::CflOnly && !A.BudgetExceeded ? StatusOk
                                                             : StatusDegraded;
  R.Mode = A.BudgetExceeded ? "cfl-exhausted" : "cfl";
  R.Body = heapSetBody(DB, A.Heaps);
  return R;
}

Response Service::answerAlias(const Request &Q) {
  Response R;
  R.Id = Q.Id;
  if (Q.Args.size() != 2) {
    R.Status = StatusError;
    R.Body = "alias wants exactly two variable names";
    return R;
  }
  std::uint32_t V1 = 0, V2 = 0;
  if (!lookupVar(Q.Args[0], V1) || !lookupVar(Q.Args[1], V2)) {
    R.Status = StatusError;
    R.Body = "unknown variable '" +
             (lookupVar(Q.Args[0], V1) ? Q.Args[1] : Q.Args[0]) + "'";
    return R;
  }
  RequestMeter RM(Q);
  if (Hot) {
    // Charge the smaller side's cardinality: mayAlias is an intersection
    // walk over two sorted sets.
    const std::size_t Cost = std::min(Oracle->pointsTo(V1).size(),
                                      Oracle->pointsTo(V2).size());
    bool Tripped = false;
    for (std::size_t I = 0; I < Cost && !Tripped; ++I)
      Tripped = RM.step();
    if (!Tripped) {
      R.Status = Mode == ServeMode::Hot ? StatusOk : StatusDegraded;
      R.Mode = ModeTag;
      R.Body = Oracle->mayAlias(V1, V2) ? "true" : "false";
      return R;
    }
  }
  bool Alias =
      Demand->mayAlias(V1, V2, Opts.CflBudget, RM.Active ? &RM.Meter : nullptr);
  bool Exhausted = RM.Active && RM.Meter.tripped();
  R.Status =
      Mode == ServeMode::CflOnly && !Exhausted ? StatusOk : StatusDegraded;
  R.Mode = Exhausted ? "cfl-exhausted" : "cfl";
  R.Body = Alias ? "true" : "false";
  return R;
}

Response Service::answerTaint(const Request &Q) {
  Response R;
  R.Id = Q.Id;
  if (Q.Args.size() != 1) {
    R.Status = StatusError;
    R.Body = "taint wants exactly one heap-site name";
    return R;
  }
  if (!Taint) {
    // Heap taint is computed from a converged exhaustive result; the
    // demand engine has no equivalent, so CflOnly mode cannot answer.
    R.Status = StatusError;
    R.Body = "taint requires a converged solve (serving demand-driven "
             "only)";
    return R;
  }
  std::uint32_t H = 0;
  if (!lookupHeap(Q.Args[0], H)) {
    R.Status = StatusError;
    R.Body = "unknown heap site '" + Q.Args[0] + "'";
    return R;
  }
  R.Status = Mode == ServeMode::Hot ? StatusOk : StatusDegraded;
  R.Mode = ModeTag;
  R.Body = Taint->isHot(H) ? "hot" : "clean";
  return R;
}

Response Service::answerStats(const Request &Q) {
  Response R;
  R.Id = Q.Id;
  R.Status = StatusOk;
  R.Mode = ModeTag;
  R.Body = "mode=" + ModeTag +
           " warm=" + (WarmStart ? "true" : "false") +
           " vars=" + std::to_string(DB.numVars()) +
           " heaps=" + std::to_string(DB.numHeaps()) +
           " pts=" + std::to_string(Hot ? Hot->Pts.size() : 0) +
           " served=" + std::to_string(Served.load()) +
           " shed=" + std::to_string(Shed.load()) +
           " inflight=" + std::to_string(InFlight.load()) +
           " queue_cap=" + std::to_string(Opts.QueueCap);
  return R;
}

Response Service::answer(const Request &Q) {
  Served.fetch_add(1, std::memory_order_relaxed);
  if (Q.Verb == "pts")
    return answerPts(Q);
  if (Q.Verb == "alias")
    return answerAlias(Q);
  if (Q.Verb == "taint")
    return answerTaint(Q);
  if (Q.Verb == "stats")
    return answerStats(Q);
  Response R;
  R.Id = Q.Id;
  if (Q.Verb == "ping") {
    R.Status = StatusOk;
    R.Body = "pong";
    return R;
  }
  if (Q.Verb == "stall") {
    // A bounded drill for the overload test: occupy this worker so a
    // pipelined burst overflows the admission queue. Capped so a rogue
    // client cannot park a worker for long.
    std::uint64_t Ms = 0;
    if (Q.Args.size() == 1)
      Ms = std::min<std::uint64_t>(std::strtoull(Q.Args[0].c_str(),
                                                 nullptr, 10),
                                   2000);
    ::usleep(static_cast<useconds_t>(Ms * 1000));
    R.Status = StatusOk;
    R.Body = "stalled " + std::to_string(Ms) + "ms";
    return R;
  }
  if (Q.Verb == "vars") {
    // Deterministic name discovery: the first N variable names in
    // fact-base order, so scripted clients (crashloop.sh --serve) can
    // build query batches without knowing the generator's naming
    // scheme. Names never contain whitespace (ir::Builder uses
    // Class.method/var), so the space-joined body splits back cleanly.
    std::uint64_t N = 0;
    if (Q.Args.size() != 1 ||
        (N = std::strtoull(Q.Args[0].c_str(), nullptr, 10)) == 0) {
      R.Status = StatusError;
      R.Body = "vars wants a positive count";
      return R;
    }
    N = std::min<std::uint64_t>(N, DB.numVars());
    std::string Body;
    for (std::uint64_t V = 0; V < N; ++V) {
      if (!Body.empty())
        Body += ' ';
      Body += DB.VarNames[V];
    }
    R.Status = StatusOk;
    R.Mode = ModeTag;
    R.Body = Body.empty() ? "-" : Body;
    return R;
  }
  if (Q.Verb == "shutdown") {
    R.Status = StatusOk;
    R.Body = "bye";
    return R; // Caller stops the loop after replying.
  }
  R.Status = StatusError;
  R.Body = "unknown verb '" + Q.Verb + "'";
  return R;
}

//===----------------------------------------------------------------------===//
// The serving loop.
//===----------------------------------------------------------------------===//

int Service::serve(const std::string &SocketPath) {
  int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    note("socket() failed");
    return 1;
  }
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    note("socket path too long: " + SocketPath);
    posix::closeQuiet(ListenFd);
    return 1;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  // A previous life's socket node would make bind fail with EADDRINUSE;
  // the supervisor guarantees one daemon per socket, so unlink is safe.
  ::unlink(SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof(Addr)) != 0 ||
      ::listen(ListenFd, 64) != 0) {
    note("cannot listen on " + SocketPath);
    posix::closeQuiet(ListenFd);
    return 1;
  }
  note("listening on " + SocketPath);

  // Workers: pop, answer, reply under the connection's write mutex.
  for (std::size_t W = 0; W < std::max<std::size_t>(1, Opts.Workers); ++W)
    M->Workers.emplace_back([this] {
      while (true) {
        Work Item;
        {
          std::unique_lock<std::mutex> Lock(M->QueueMutex);
          M->QueueCv.wait(Lock, [this] {
            return Stop.load(std::memory_order_relaxed) ||
                   !M->Queue.empty();
          });
          if (M->Queue.empty())
            return; // Stop and drained.
          Item = std::move(M->Queue.front());
          M->Queue.pop_front();
        }
        Response R = answer(Item.Q);
        Item.C->reply(R);
        InFlight.fetch_sub(1, std::memory_order_relaxed);
        if (Item.Q.Verb == "shutdown")
          requestStop();
      }
    });

  // Accept loop: poll with a timeout so the heartbeat advances and the
  // stop flags are honoured even while idle or while every worker is
  // busy — liveness must not depend on query progress.
  while (!Stop.load(std::memory_order_relaxed)) {
    if (Opts.StopFlag && *Opts.StopFlag) {
      requestStop();
      break;
    }
    heartbeat::tick();
    struct pollfd Pfd;
    Pfd.fd = ListenFd;
    Pfd.events = POLLIN;
    Pfd.revents = 0;
    int N = ::poll(&Pfd, 1, 50);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      note("poll() failed");
      break;
    }
    if (N == 0 || !(Pfd.revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    auto C = std::make_shared<Conn>();
    C->Fd = Fd;
    {
      std::lock_guard<std::mutex> Lock(M->ConnsMutex);
      M->Conns.push_back(C);
    }
    // Reader: frame, parse, admit. Shedding happens here — a full queue
    // answers OVERLOADED directly so the reader never blocks on the
    // worker pool.
    M->Readers.emplace_back([this, C] {
      std::string Payload;
      while (true) {
        FrameResult FR = serve::readFrame(C->Fd, Payload);
        if (FR != FrameResult::Ok) {
          if (FR == FrameResult::TooBig)
            C->reply({"-", StatusError, "-", "frame exceeds 16MiB"});
          return;
        }
        Request Q;
        std::string Err = parseRequest(Payload, Q);
        if (!Err.empty()) {
          C->reply({"-", StatusError, "-", Err});
          continue;
        }
        bool Admitted = false;
        {
          std::lock_guard<std::mutex> Lock(M->QueueMutex);
          if (M->Queue.size() < Opts.QueueCap &&
              !Stop.load(std::memory_order_relaxed)) {
            M->Queue.push_back(Work{C, std::move(Q)});
            Admitted = true;
          }
        }
        if (Admitted) {
          InFlight.fetch_add(1, std::memory_order_relaxed);
          M->QueueCv.notify_one();
        } else {
          Shed.fetch_add(1, std::memory_order_relaxed);
          C->reply({Q.Id, StatusOverloaded, "-", "admission queue full"});
        }
      }
    });
  }

  // Teardown: wake blocked readers by shutting their sockets down, then
  // join everything. Shed whatever is still queued — in-flight loss on
  // shutdown is the documented contract (crash recovery restores the
  // *state*, not unanswered requests).
  requestStop();
  {
    std::lock_guard<std::mutex> Lock(M->ConnsMutex);
    for (const auto &C : M->Conns)
      ::shutdown(C->Fd, SHUT_RDWR);
  }
  M->QueueCv.notify_all();
  for (std::thread &T : M->Readers)
    T.join();
  M->QueueCv.notify_all();
  for (std::thread &T : M->Workers)
    T.join();
  {
    std::lock_guard<std::mutex> Lock(M->ConnsMutex);
    for (const auto &C : M->Conns)
      posix::closeQuiet(C->Fd);
    M->Conns.clear();
  }
  posix::closeQuiet(ListenFd);
  ::unlink(SocketPath.c_str());
  note("stopped cleanly");
  return 0;
}
