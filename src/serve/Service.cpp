//===- serve/Service.cpp - Resident analysis service ----------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "serve/Service.h"

#include "analysis/Checkpoint.h"
#include "analysis/Configurations.h"
#include "analysis/Incremental.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "facts/TsvIO.h"
#include "serve/Delta.h"
#include "serve/Txn.h"
#include "support/FaultInjection.h"
#include "support/Memory.h"
#include "support/Posix.h"
#include "support/Suggest.h"
#include "verify/Verify.h"
#include "workload/Presets.h"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ctp;
using namespace ctp::serve;

namespace {

void note(const std::string &Line) {
  std::fprintf(stderr, "ctp-serve: %s\n", Line.c_str());
}

} // namespace

//===----------------------------------------------------------------------===//
// Connection and queue machinery.
//===----------------------------------------------------------------------===//

namespace {

/// One accepted connection. Workers and the reader share the fd; the
/// write mutex keeps response frames contiguous on it.
struct Conn {
  int Fd = -1;
  std::mutex WriteMutex;

  void reply(const Response &R) {
    std::lock_guard<std::mutex> Lock(WriteMutex);
    serve::writeFrame(Fd, renderResponse(R));
  }
};

struct Work {
  std::shared_ptr<Conn> C;
  Request Q;
};

} // namespace

struct Service::Impl {
  std::mutex QueueMutex;
  std::condition_variable QueueCv;
  std::deque<Work> Queue;

  // Open connections, for shutdown(): a reader blocked in readFrame
  // only wakes when its fd is shut down.
  std::mutex ConnsMutex;
  std::vector<std::shared_ptr<Conn>> Conns;

  std::vector<std::thread> Readers;
  std::vector<std::thread> Workers;
};

//===----------------------------------------------------------------------===//
// Startup.
//===----------------------------------------------------------------------===//

Service::Service(ServiceOptions O)
    : Opts(std::move(O)), M(new Impl()) {}

Service::~Service() = default;

std::string Service::init() {
  if (Opts.FactsDir.empty() == Opts.Preset.empty())
    return "exactly one of FactsDir / Preset is required";

  ctx::Config Cfg;
  if (!ctx::configByName(Opts.ConfigName,
                         ctx::Abstraction::TransformerString, Cfg))
    return "unknown config '" + Opts.ConfigName + "'" +
           support::didYouMean(Opts.ConfigName, ctx::configNames());
  std::string CfgErr = Cfg.validate();
  if (!CfgErr.empty())
    return CfgErr;

  // Reloadable: the journal replay folds committed deltas onto the base
  // facts, and a discarded journal (corrupt, or failing its startup
  // certification below) must fall back to the pristine base.
  auto LoadBase = [this]() -> std::string {
    DB = facts::FactDB();
    if (!Opts.FactsDir.empty()) {
      facts::FactsReadOptions ReadOpts;
      facts::FactsReadReport Report;
      return facts::readFactsDir(Opts.FactsDir, DB, ReadOpts, &Report);
    }
    bool Known = false;
    for (const std::string &N : workload::presetNames())
      Known |= N == Opts.Preset;
    if (!Known)
      return "unknown preset '" + Opts.Preset + "'" +
             support::didYouMean(Opts.Preset, workload::presetNames());
    DB = facts::extract(workload::generatePreset(Opts.Preset));
    return "";
  };

  if (!Opts.CheckpointDir.empty()) {
    // Whoever is handed the checkpoint path creates it — the snapshot
    // writer only writes files, so a missing directory would silently
    // turn every checkpoint into a warning and every restart cold.
    std::string DirErr = posix::mkdirs(Opts.CheckpointDir);
    if (!DirErr.empty())
      return DirErr;
    JournalFile = journalPath(Opts.CheckpointDir);
  }

  Ladder = analysis::defaultLadder(Cfg);

  // Two attempts: a replayed journal state that fails its startup
  // certification is discarded (journal renamed aside) and the daemon
  // retries from the pristine base facts — it never serves a fixpoint it
  // could not certify.
  for (int Attempt = 0; Attempt < 2; ++Attempt) {
    if (std::string E = LoadBase(); !E.empty())
      return E;

    std::uint64_t ReplayedEpoch = 0;
    if (!JournalFile.empty() && Attempt == 0) {
      ReplayOutcome Replay;
      if (std::string E = replayJournal(JournalFile, DB, Replay);
          !E.empty())
        return E;
      for (const std::string &W : Replay.Warnings)
        note("warning: " + W);
      if (Replay.DiscardedJournal) {
        // The replay may have folded some ops before failing; reload.
        if (std::string E = LoadBase(); !E.empty())
          return E;
      } else {
        ReplayedEpoch = Replay.Epoch;
        TxnSeq = std::max<std::uint64_t>(TxnSeq, Replay.NextTxnSeq);
        if (!Replay.RecoveryAbortTx.empty())
          LastTxnNote = Replay.RecoveryAbortTx + " aborted (recovery)";
        if (Replay.CommittedTxns != 0)
          note("replayed " + std::to_string(Replay.CommittedTxns) +
               " committed transaction(s); epoch " +
               std::to_string(ReplayedEpoch));
      }
    }
    Epoch.store(ReplayedEpoch, std::memory_order_relaxed);

    // The demand engine indexes once here and is read-only until the
    // next committed transaction rebuilds it; it is both the CflOnly
    // answer path and the degradation target of every deadline-tripped
    // hot query.
    Demand.reset(new cfl::DemandSolver(DB));

    // Rung 0: resume a prior life's snapshot when one validates; keep a
    // converged snapshot behind for the *next* life (KeepOnConverge),
    // and checkpoint periodically so a crash mid-solve still resumes.
    // The probe is fingerprint-gated against the *replayed* facts, so a
    // snapshot a committed transaction promoted warm-starts the exact
    // post-commit fixpoint, and a snapshot from before a commit (or from
    // a discarded journal's facts) is rejected into a cold solve.
    analysis::SnapshotProbe Probe;
    analysis::CheckpointPolicy Ckpt;
    if (!Opts.CheckpointDir.empty()) {
      Ckpt.Dir = Opts.CheckpointDir;
      Ckpt.EveryDerivations = Opts.CheckpointEvery;
      Ckpt.KeepOnConverge = true;
      Probe = analysis::probeSnapshot(Ckpt.Dir, DB, Ladder[0],
                                      /*UseDatalog=*/false, Opts.Collapse);
      if (!Probe.Warning.empty())
        note("warning: " + Probe.Warning);
      note(std::string("resume: ") +
           analysis::resumeStatusName(Probe.Status));
    }

    bool Converged = false;
    for (std::size_t Rung = 0; Rung < Ladder.size(); ++Rung) {
      analysis::SolverOptions SO;
      SO.CollapseSubsumedPts = Opts.Collapse;
      SO.Budget = Opts.StartupBudget.scaledForRung(Rung);
      // A transaction-capable daemon records provenance so commits can
      // invalidate incrementally. A warm start restores tuples without
      // derivations (ProvenanceDropped) — the first commit then falls
      // back to one cold-with-provenance solve and repairs this.
      SO.Provenance.Enabled = !Opts.CheckpointDir.empty() && !Opts.Collapse;
      if (Rung == 0) {
        SO.Checkpoint = Ckpt;
        if (Probe.Status == analysis::ResumeStatus::Resumed)
          SO.Resume = &Probe.Snap;
      }
      analysis::Results R = analysis::solve(DB, Ladder[Rung], SO);
      if (!R.Stat.CheckpointError.empty())
        note("warning: " + R.Stat.CheckpointError);
      if (R.Stat.Term == TerminationReason::Converged) {
        Mode = Rung == 0 ? ServeMode::Hot : ServeMode::HotRung;
        ModeTag = Rung == 0 ? "hot" : "hot-rung" + std::to_string(Rung);
        // Progress.Derivations is cumulative across lives (resume folds
        // the snapshot's count in), so "no new work" is measured against
        // the restored image's own counter.
        WarmStart = Rung == 0 &&
                    Probe.Status == analysis::ResumeStatus::Resumed &&
                    R.Stat.Progress.Derivations == Probe.Snap.Derivations;
        Hot.reset(new analysis::Results(std::move(R)));
        Oracle.reset(new clients::AliasOracle(*Hot));
        Taint.reset(new clients::TaintInfo(clients::computeTaint(DB, *Hot)));
        ServingCfg = Ladder[Rung];
        ServingRung = Rung;
        Converged = true;
        note("serving " + Ladder[Rung].name() + " (" + ModeTag +
             (WarmStart ? ", warm start from snapshot)" : ", cold solve)"));
        break;
      }
      // A partial exhaustive fixpoint is a subset of the truth — unsound
      // for may-queries, so it is never served; descend instead.
      note("startup solve of " + Ladder[Rung].name() + " exhausted (" +
           terminationReasonName(R.Stat.Term) + "); " +
           (Rung + 1 < Ladder.size() ? "descending the ladder"
                                     : "serving demand-driven only"));
    }
    if (!Converged) {
      Mode = ServeMode::CflOnly;
      ModeTag = "cfl";
      ServingCfg = Cfg;
      ServingRung = 0;
      return ""; // No fixpoint to certify; transactions are refused.
    }

    // A state with committed transactions folded in is served only once
    // its fixpoint re-certifies — the journal's checksums and
    // fingerprints catch storage corruption, the closure check catches
    // everything else (a bug in replay, a hand-edited journal that still
    // checksums, a solver regression).
    if (ReplayedEpoch != 0) {
      verify::ClosureOptions CO;
      CO.ModuloSubsumption = Opts.Collapse;
      std::string Counterexample;
      if (!verify::checkClosure(DB, *Hot, CO, Counterexample)) {
        note("startup certification FAILED on the replayed state: " +
             Counterexample);
        note("discarding journal '" + JournalFile + "' and restarting "
             "from base facts");
        std::rename(JournalFile.c_str(), (JournalFile + ".stale").c_str());
        Hot.reset();
        Oracle.reset();
        Taint.reset();
        WarmStart = false;
        continue;
      }
      note("startup certification passed (epoch " +
           std::to_string(ReplayedEpoch) + ")");
    }
    return "";
  }
  return "replayed journal state failed certification and the base facts "
         "could not be served";
}

//===----------------------------------------------------------------------===//
// Query answering.
//===----------------------------------------------------------------------===//

bool Service::lookupVar(const std::string &Name, std::uint32_t &Id) const {
  // Linear scan: fact bases here are small enough that a resident map
  // would only pay off under sustained load, and the scan keeps the
  // resident state trivially read-only. Revisit with an interned map if
  // a profile ever blames it.
  for (std::size_t V = 0; V < DB.numVars(); ++V)
    if (DB.VarNames[V] == Name) {
      Id = static_cast<std::uint32_t>(V);
      return true;
    }
  return false;
}

bool Service::lookupHeap(const std::string &Name, std::uint32_t &Id) const {
  for (std::size_t H = 0; H < DB.numHeaps(); ++H)
    if (DB.HeapNames[H] == Name) {
      Id = static_cast<std::uint32_t>(H);
      return true;
    }
  return false;
}

namespace {

/// Renders a sorted heap-id set as the response body: space-joined
/// names, "-" when empty. Deterministic given the fact base, which is
/// what makes responses byte-identical across daemon lives.
std::string heapSetBody(const facts::FactDB &DB,
                        const std::vector<std::uint32_t> &Heaps) {
  if (Heaps.empty())
    return "-";
  std::string Body;
  for (std::uint32_t H : Heaps) {
    if (!Body.empty())
      Body += ' ';
    Body += DB.HeapNames[H];
  }
  return Body;
}

/// The per-request meter, or none when the request set no budget.
struct RequestMeter {
  bool Active = false;
  BudgetMeter Meter;

  explicit RequestMeter(const Request &Q) {
    if (Q.DeadlineMs == 0 && Q.MaxSteps == 0)
      return;
    BudgetSpec S;
    S.DeadlineMs = Q.DeadlineMs;
    S.MaxDerivations = Q.MaxSteps;
    Meter = BudgetMeter(S);
    Active = true;
  }

  /// Charges one unit and polls. True = budget tripped.
  bool step() {
    if (!Active)
      return false;
    Meter.chargeDerivations();
    return Meter.poll().has_value();
  }
};

} // namespace

Response Service::answerPts(const Request &Q) {
  Response R;
  R.Id = Q.Id;
  if (Q.Args.size() != 1) {
    R.Status = StatusError;
    R.Body = "pts wants exactly one variable name";
    return R;
  }
  std::uint32_t V = 0;
  if (!lookupVar(Q.Args[0], V)) {
    R.Status = StatusError;
    R.Body = "unknown variable '" + Q.Args[0] + "'";
    return R;
  }
  RequestMeter RM(Q);
  if (Hot) {
    const std::vector<std::uint32_t> &Heaps = Oracle->pointsTo(V);
    // Charge per element so max_steps=1 deterministically exercises the
    // degradation path even on a hot answer.
    bool TrippedMidAnswer = false;
    for (std::size_t I = 0; I < Heaps.size(); ++I)
      if (RM.step()) {
        TrippedMidAnswer = true;
        break;
      }
    if (!TrippedMidAnswer) {
      R.Status = Mode == ServeMode::Hot ? StatusOk : StatusDegraded;
      R.Mode = ModeTag;
      R.Body = heapSetBody(DB, Heaps);
      return R;
    }
    // Fall through to the demand engine below with the same meter: it
    // is already tripped, so the query exhausts immediately into the
    // sound all-heaps fallback — answered, late-free, degraded.
  }
  cfl::DemandAnswer A =
      Demand->query(V, Opts.CflBudget, RM.Active ? &RM.Meter : nullptr);
  // A demand answer is this service's first-class product only in
  // CflOnly mode; anywhere else reaching it means a budget pushed the
  // query off the hot path, i.e. a degraded answer.
  R.Status = Mode == ServeMode::CflOnly && !A.BudgetExceeded ? StatusOk
                                                             : StatusDegraded;
  R.Mode = A.BudgetExceeded ? "cfl-exhausted" : "cfl";
  R.Body = heapSetBody(DB, A.Heaps);
  return R;
}

Response Service::answerAlias(const Request &Q) {
  Response R;
  R.Id = Q.Id;
  if (Q.Args.size() != 2) {
    R.Status = StatusError;
    R.Body = "alias wants exactly two variable names";
    return R;
  }
  std::uint32_t V1 = 0, V2 = 0;
  if (!lookupVar(Q.Args[0], V1) || !lookupVar(Q.Args[1], V2)) {
    R.Status = StatusError;
    R.Body = "unknown variable '" +
             (lookupVar(Q.Args[0], V1) ? Q.Args[1] : Q.Args[0]) + "'";
    return R;
  }
  RequestMeter RM(Q);
  if (Hot) {
    // Charge the smaller side's cardinality: mayAlias is an intersection
    // walk over two sorted sets.
    const std::size_t Cost = std::min(Oracle->pointsTo(V1).size(),
                                      Oracle->pointsTo(V2).size());
    bool Tripped = false;
    for (std::size_t I = 0; I < Cost && !Tripped; ++I)
      Tripped = RM.step();
    if (!Tripped) {
      R.Status = Mode == ServeMode::Hot ? StatusOk : StatusDegraded;
      R.Mode = ModeTag;
      R.Body = Oracle->mayAlias(V1, V2) ? "true" : "false";
      return R;
    }
  }
  bool Alias =
      Demand->mayAlias(V1, V2, Opts.CflBudget, RM.Active ? &RM.Meter : nullptr);
  bool Exhausted = RM.Active && RM.Meter.tripped();
  R.Status =
      Mode == ServeMode::CflOnly && !Exhausted ? StatusOk : StatusDegraded;
  R.Mode = Exhausted ? "cfl-exhausted" : "cfl";
  R.Body = Alias ? "true" : "false";
  return R;
}

Response Service::answerTaint(const Request &Q) {
  Response R;
  R.Id = Q.Id;
  if (Q.Args.size() != 1) {
    R.Status = StatusError;
    R.Body = "taint wants exactly one heap-site name";
    return R;
  }
  if (!Taint) {
    // Heap taint is computed from a converged exhaustive result; the
    // demand engine has no equivalent, so CflOnly mode cannot answer.
    R.Status = StatusError;
    R.Body = "taint requires a converged solve (serving demand-driven "
             "only)";
    return R;
  }
  std::uint32_t H = 0;
  if (!lookupHeap(Q.Args[0], H)) {
    R.Status = StatusError;
    R.Body = "unknown heap site '" + Q.Args[0] + "'";
    return R;
  }
  R.Status = Mode == ServeMode::Hot ? StatusOk : StatusDegraded;
  R.Mode = ModeTag;
  R.Body = Taint->isHot(H) ? "hot" : "clean";
  return R;
}

Response Service::answerStats(const Request &Q) {
  Response R;
  R.Id = Q.Id;
  R.Status = StatusOk;
  R.Mode = ModeTag;
  R.Body = "mode=" + ModeTag +
           " warm=" + (WarmStart ? "true" : "false") +
           " epoch=" + std::to_string(Epoch.load(std::memory_order_relaxed)) +
           " vars=" + std::to_string(DB.numVars()) +
           " heaps=" + std::to_string(DB.numHeaps()) +
           " pts=" + std::to_string(Hot ? Hot->Pts.size() : 0) +
           " served=" + std::to_string(Served.load()) +
           " shed=" + std::to_string(Shed.load()) +
           " inflight=" + std::to_string(InFlight.load()) +
           " queue_cap=" + std::to_string(Opts.QueueCap) +
           " mem_peak_mb=" + std::to_string(memgov::peakRssBytes() >> 20) +
           " mem_state=" + memgov::pressureName(memgov::state()) +
           " mem_soft_trips=" + std::to_string(memgov::softTrips()) +
           " mem_hard_trips=" + std::to_string(memgov::hardTrips()) +
           " mem_shed=" + std::to_string(MemShed.load()) +
           " mem_degrades=" + std::to_string(MemDegrades.load());
  return R;
}

//===----------------------------------------------------------------------===//
// Transactions.
//===----------------------------------------------------------------------===//

namespace {

/// Response bodies and journal reasons are single wire fields; flatten
/// whatever a verifier or solver put in a diagnostic.
std::string oneLine(const std::string &S) {
  std::string Out = S;
  for (char &C : Out)
    if (C == '\t' || C == '\n' || C == '\r')
      C = ' ';
  return Out;
}

} // namespace

Response Service::abortTxn(const Request &Q, const std::string &Reason,
                           const char *Status) {
  Response R;
  R.Id = Q.Id;
  R.Status = Status;
  if (Txn) {
    JournalRecord Rec;
    Rec.K = JournalRecord::Kind::Aborted;
    Rec.Tx = Txn->Id;
    Rec.Text = oneLine(Reason);
    // Best-effort: an unwritable journal cannot make the abort fail —
    // with no commit record the transaction never happened, and the
    // next restart's replay recovery-aborts it again.
    if (std::string E = appendRecord(JournalFile, Rec); !E.empty())
      note("warning: cannot journal abort: " + E);
    LastTxnNote = Txn->Id + " aborted (" + oneLine(Reason) + ")";
    Txn.reset();
  }
  R.Body = oneLine(Reason);
  R.Epoch = Epoch.load(std::memory_order_relaxed);
  return R;
}

Response Service::commitTxn(const Request &Q) {
  // The staged facts must still be a structurally valid database; the
  // delta ops validate row by row, so a failure here is a logic bug, but
  // an abort is cheaper than serving from a corrupt base.
  if (std::string E = Txn->Staged->validate(); !E.empty())
    return abortTxn(Q, "staged facts failed validation: " + E,
                    StatusTxnAborted);

  // Re-solve the serving cell over the staged facts. Incremental when
  // the live result's provenance covers it; a cold solve (with
  // provenance, so the *next* commit can be incremental) otherwise.
  analysis::IncrementalOptions IOpts;
  IOpts.Solver.CollapseSubsumedPts = false;
  analysis::IncrementalOutcome Out =
      analysis::resolveIncremental(*Txn->Staged, ServingCfg, *Hot,
                                   Txn->Delta, IOpts);
  if (!Out.Incremental && !Out.FallbackReason.empty())
    note(Txn->Id + ": full re-solve (" + Out.FallbackReason + ")");
  fault::txnCrashPoint("solve");
  if (Out.R.Stat.Term != TerminationReason::Converged)
    return abortTxn(Q, std::string("re-solve did not converge (") +
                           terminationReasonName(Out.R.Stat.Term) + ")",
                    StatusTxnAborted);

  // Deliberate corruption hook: drop a derived tuple so the certifier
  // must catch it — the crash-loop driver proves rejection this way.
  if (fault::txnSabotage("certify") && !Out.R.Pts.empty()) {
    note(Txn->Id + ": CTP_TXN_SABOTAGE dropping one pts tuple before "
                   "certification");
    Out.R.Pts.pop_back();
  }

  // Certify before anything becomes visible or durable: closure (no
  // rule can still fire) and support (every tuple has a valid recorded
  // derivation). A result that fails either never reaches clients.
  verify::ClosureOptions CO;
  std::string Counterexample;
  if (!verify::checkClosure(*Txn->Staged, Out.R, CO, Counterexample))
    return abortTxn(Q, "certification failed (closure): " + Counterexample,
                    StatusTxnAborted);
  if (Out.R.Prov &&
      !verify::checkSupport(*Txn->Staged, Out.R, Counterexample))
    return abortTxn(Q, "certification failed (support): " + Counterexample,
                    StatusTxnAborted);
  fault::txnCrashPoint("certify");

  // Promote the new warm-start snapshot before the commit record: if we
  // die between the two, the snapshot's fingerprint no longer matches
  // the replayed (pre-commit) facts and the probe rejects it — stale
  // snapshots are harmless, uncertified epochs are not. Rung-0 only:
  // the snapshot format pins the rung-0 cell.
  if (ServingRung == 0) {
    std::string SnapErr;
    if (Out.R.Dom && Out.R.ReachCtxts) {
      analysis::SolverSnapshot S =
          analysis::snapshotFromResults(Out.R, *Txn->Staged);
      SnapErr = analysis::writeSnapshot(
          S, analysis::checkpointPath(Opts.CheckpointDir));
    }
    if (!SnapErr.empty())
      note("warning: snapshot promotion failed (" + SnapErr +
           "); next restart will cold-solve");
  }
  fault::txnCrashPoint("promote");

  // THE commit point. Once this record is durable the transaction is
  // committed: a crash one instruction later replays to the identical
  // state. A crash one instruction earlier aborts it on recovery.
  const std::uint64_t NewEpoch =
      Epoch.load(std::memory_order_relaxed) + 1;
  JournalRecord Rec;
  Rec.K = JournalRecord::Kind::Commit;
  Rec.Tx = Txn->Id;
  Rec.Epoch = NewEpoch;
  Rec.Fp = Txn->Staged->fingerprint();
  if (std::string E = appendRecord(JournalFile, Rec); !E.empty())
    return abortTxn(Q, "cannot journal commit record: " + E,
                    StatusTxnAborted);
  fault::txnCrashPoint("commit");

  // Publish. Move-assigning DB in place keeps the references the demand
  // engine and oracles hold valid while they are themselves replaced.
  {
    std::unique_lock<std::shared_mutex> Lock(StateLock);
    DB = std::move(*Txn->Staged);
    Hot.reset(new analysis::Results(std::move(Out.R)));
    Oracle.reset(new clients::AliasOracle(*Hot));
    Taint.reset(new clients::TaintInfo(clients::computeTaint(DB, *Hot)));
    Demand.reset(new cfl::DemandSolver(DB));
    Epoch.store(NewEpoch, std::memory_order_relaxed);
  }

  std::string How =
      Out.Incremental
          ? "incremental invalidated=" + std::to_string(Out.Invalidated) +
                " survivors=" + std::to_string(Out.Survivors)
          : "full";
  LastTxnNote = Txn->Id + " committed epoch=" + std::to_string(NewEpoch) +
                " " + How;
  note(LastTxnNote);
  Response R;
  R.Id = Q.Id;
  R.Status = StatusOk;
  R.Mode = ModeTag;
  R.Body = "committed " + How;
  R.Epoch = NewEpoch;
  Txn.reset();
  return R;
}

Response Service::answerTxn(const Request &Q) {
  std::lock_guard<std::mutex> TLock(TxnMutex);
  Response R;
  R.Id = Q.Id;
  R.Epoch = Epoch.load(std::memory_order_relaxed);

  if (Q.Verb == "txstat") {
    R.Status = StatusOk;
    R.Body = "epoch=" + std::to_string(R.Epoch) +
             " open=" + (Txn ? Txn->Id : "-") +
             " staged_ops=" + std::to_string(Txn ? Txn->OpLines.size() : 0) +
             " last=" + oneLine(LastTxnNote);
    return R;
  }

  // The remaining verbs mutate; refuse them where durability or
  // soundness has nowhere to stand.
  if (JournalFile.empty()) {
    R.Status = StatusError;
    R.Body = "transactions require --checkpoint-dir (the journal lives "
             "there)";
    return R;
  }
  if (Mode == ServeMode::CflOnly) {
    R.Status = StatusError;
    R.Body = "transactions require a converged solve (serving "
             "demand-driven only)";
    return R;
  }
  if (Opts.Collapse) {
    R.Status = StatusError;
    R.Body = "subsumption collapsing is incompatible with transactions "
             "(collapsed results cannot be re-certified incrementally)";
    return R;
  }

  if (Q.Verb == "begin") {
    if (Txn) {
      R.Status = StatusError;
      R.Body = "transaction " + Txn->Id + " is already open";
      return R;
    }
    std::string TxId = "t" + std::to_string(TxnSeq++);
    JournalRecord Rec;
    Rec.K = JournalRecord::Kind::Begin;
    Rec.Tx = TxId;
    {
      // Fingerprint the live facts under the reader lock: a concurrent
      // commit cannot exist (TxnMutex), but the base must be what every
      // queued query is being answered from.
      std::shared_lock<std::shared_mutex> SLock(StateLock);
      Rec.Epoch = Epoch.load(std::memory_order_relaxed);
      Rec.Fp = DB.fingerprint();
      Txn.reset(new OpenTxn());
      Txn->Id = TxId;
      Txn->Staged.reset(new facts::FactDB(DB));
    }
    if (std::string E = appendRecord(JournalFile, Rec); !E.empty()) {
      Txn.reset();
      R.Status = StatusError;
      R.Body = "cannot journal begin record: " + oneLine(E);
      return R;
    }
    fault::txnCrashPoint("begin");
    R.Status = StatusOk;
    R.Body = TxId;
    return R;
  }

  if (Q.Verb == "delta") {
    if (!Txn) {
      R.Status = StatusError;
      R.Body = "no open transaction (begin first)";
      return R;
    }
    std::string OpLine;
    for (const std::string &A : Q.Args) {
      if (!OpLine.empty())
        OpLine += ' ';
      OpLine += A;
    }
    // Validate-and-apply against the staged copy FIRST: only an op that
    // applied cleanly may reach the journal, or replaying a committed
    // transaction would trip over the rejected line.
    if (std::string E = applyDeltaOp(OpLine, *Txn->Staged, Txn->Delta);
        !E.empty()) {
      R.Status = StatusError;
      R.Body = oneLine(E);
      return R; // Op rejected; the transaction stays open.
    }
    JournalRecord Rec;
    Rec.K = JournalRecord::Kind::Op;
    Rec.Tx = Txn->Id;
    Rec.Text = OpLine;
    if (std::string E = appendRecord(JournalFile, Rec); !E.empty())
      return abortTxn(Q, "cannot journal delta op: " + E, StatusTxnAborted);
    Txn->OpLines.push_back(OpLine);
    fault::txnCrashPoint("op");
    R.Status = StatusOk;
    R.Body = "staged";
    return R;
  }

  if (Q.Verb == "abort") {
    if (!Txn) {
      R.Status = StatusError;
      R.Body = "no open transaction";
      return R;
    }
    Response A = abortTxn(Q, "client abort", StatusOk);
    A.Body = "aborted";
    return A;
  }

  if (Q.Verb == "commit") {
    if (!Txn) {
      R.Status = StatusError;
      R.Body = "no open transaction";
      return R;
    }
    return commitTxn(Q);
  }

  R.Status = StatusError;
  R.Body = "unknown transaction verb '" + Q.Verb + "'";
  return R;
}

Response Service::answer(const Request &Q) {
  Served.fetch_add(1, std::memory_order_relaxed);
  if (Q.Verb == "begin" || Q.Verb == "delta" || Q.Verb == "commit" ||
      Q.Verb == "abort" || Q.Verb == "txstat")
    return answerTxn(Q); // Takes its own locks; never holds the shared
                         // side while commit wants the exclusive one.
  std::shared_lock<std::shared_mutex> Lock(StateLock);
  Response Answered = [&]() -> Response {
  if (Q.Verb == "pts")
    return answerPts(Q);
  if (Q.Verb == "alias")
    return answerAlias(Q);
  if (Q.Verb == "taint")
    return answerTaint(Q);
  if (Q.Verb == "stats")
    return answerStats(Q);
  Response R;
  R.Id = Q.Id;
  if (Q.Verb == "ping") {
    R.Status = StatusOk;
    R.Body = "pong";
    return R;
  }
  if (Q.Verb == "stall") {
    // A bounded drill for the overload test: occupy this worker so a
    // pipelined burst overflows the admission queue. Capped so a rogue
    // client cannot park a worker for long.
    std::uint64_t Ms = 0;
    if (Q.Args.size() == 1)
      Ms = std::min<std::uint64_t>(std::strtoull(Q.Args[0].c_str(),
                                                 nullptr, 10),
                                   2000);
    ::usleep(static_cast<useconds_t>(Ms * 1000));
    R.Status = StatusOk;
    R.Body = "stalled " + std::to_string(Ms) + "ms";
    return R;
  }
  if (Q.Verb == "vars") {
    // Deterministic name discovery: the first N variable names in
    // fact-base order, so scripted clients (crashloop.sh --serve) can
    // build query batches without knowing the generator's naming
    // scheme. Names never contain whitespace (ir::Builder uses
    // Class.method/var), so the space-joined body splits back cleanly.
    std::uint64_t N = 0;
    if (Q.Args.size() != 1 ||
        (N = std::strtoull(Q.Args[0].c_str(), nullptr, 10)) == 0) {
      R.Status = StatusError;
      R.Body = "vars wants a positive count";
      return R;
    }
    N = std::min<std::uint64_t>(N, DB.numVars());
    std::string Body;
    for (std::uint64_t V = 0; V < N; ++V) {
      if (!Body.empty())
        Body += ' ';
      Body += DB.VarNames[V];
    }
    R.Status = StatusOk;
    R.Mode = ModeTag;
    R.Body = Body.empty() ? "-" : Body;
    return R;
  }
  if (Q.Verb == "shutdown") {
    R.Status = StatusOk;
    R.Body = "bye";
    return R; // Caller stops the loop after replying.
  }
  R.Status = StatusError;
  R.Body = "unknown verb '" + Q.Verb + "'";
  return R;
  }();
  // Stamped under the shared lock, so the epoch always names the exact
  // state this answer was computed against.
  Answered.Epoch = Epoch.load(std::memory_order_relaxed);
  return Answered;
}

//===----------------------------------------------------------------------===//
// Memory pressure.
//===----------------------------------------------------------------------===//

void Service::relieveMemoryPressure() {
  const memgov::Pressure P = memgov::poll();
  if (P == memgov::Pressure::Ok) {
    MemSoftStreak = 0;
    return;
  }
  // One soft blip is noise (an RSS read racing a transient allocation);
  // act only on a sustained streak. Hard pressure acts immediately.
  if (P == memgov::Pressure::Soft && ++MemSoftStreak < 3)
    return;
  MemSoftStreak = 0;
  if (Mode == ServeMode::CflOnly)
    return; // Nothing resident left to shed.

  // No commit may run mid-relief: commitTxn reads DB outside StateLock
  // (under TxnMutex), and so does the re-solve below.
  std::lock_guard<std::mutex> TLock(TxnMutex);
  MemDegrades.fetch_add(1, std::memory_order_relaxed);

  // Drop the big owners first — the resident result, the alias oracle,
  // the taint summary — and serve demand-driven while anything below
  // runs: CFL answers stay sound, so degradation never trades
  // correctness for footprint.
  const std::size_t From = ServingRung + 1;
  {
    std::unique_lock<std::shared_mutex> Lock(StateLock);
    Hot.reset();
    Oracle.reset();
    Taint.reset();
    Mode = ServeMode::CflOnly;
    ModeTag = "cfl";
    WarmStart = false;
  }

  if (P == memgov::Pressure::Hard || From >= Ladder.size()) {
    // Hard pressure (or a ladder already at the bottom): stay CflOnly.
    // Re-arming floors the watermarks at the now-smaller footprint and
    // clears a sticky new-handler trip, so pressure can read Ok again
    // once the freed pool absorbs the demand engine's working set.
    memgov::governMb(Opts.StartupBudget.MemBudgetMb);
    note(std::string("memory pressure (") + memgov::pressureName(P) +
         "): dropped resident caches; serving demand-driven only");
    return;
  }

  // Sustained soft pressure with rungs left: re-solve a cheaper cell.
  // Each rung's meter re-arms the governor with its halved budget, so
  // the descent gets guaranteed headroom (see support/Memory.h).
  for (std::size_t Rung = From; Rung < Ladder.size(); ++Rung) {
    analysis::SolverOptions SO;
    SO.CollapseSubsumedPts = Opts.Collapse;
    SO.Budget = Opts.StartupBudget.scaledForRung(Rung);
    SO.Provenance.Enabled = !Opts.CheckpointDir.empty() && !Opts.Collapse;
    analysis::Results R = analysis::solve(DB, Ladder[Rung], SO);
    if (R.Stat.Term != TerminationReason::Converged) {
      note("memory pressure: " + Ladder[Rung].name() + " exhausted (" +
           terminationReasonName(R.Stat.Term) + "); " +
           (Rung + 1 < Ladder.size() ? "descending further"
                                     : "serving demand-driven only"));
      continue;
    }
    {
      std::unique_lock<std::shared_mutex> Lock(StateLock);
      Mode = ServeMode::HotRung;
      ModeTag = "hot-rung" + std::to_string(Rung);
      Hot.reset(new analysis::Results(std::move(R)));
      Oracle.reset(new clients::AliasOracle(*Hot));
      Taint.reset(new clients::TaintInfo(clients::computeTaint(DB, *Hot)));
      ServingCfg = Ladder[Rung];
      ServingRung = Rung;
    }
    note("memory pressure: descended to " + Ladder[Rung].name() + " (" +
         ModeTag + ")");
    return;
  }
  memgov::governMb(Opts.StartupBudget.MemBudgetMb);
}

//===----------------------------------------------------------------------===//
// The serving loop.
//===----------------------------------------------------------------------===//

int Service::serve(const std::string &SocketPath) {
  int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    note("socket() failed");
    return 1;
  }
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    note("socket path too long: " + SocketPath);
    posix::closeQuiet(ListenFd);
    return 1;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  // A previous life's socket node would make bind fail with EADDRINUSE;
  // the supervisor guarantees one daemon per socket, so unlink is safe.
  ::unlink(SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof(Addr)) != 0 ||
      ::listen(ListenFd, 64) != 0) {
    note("cannot listen on " + SocketPath);
    posix::closeQuiet(ListenFd);
    return 1;
  }
  note("listening on " + SocketPath);

  // Workers: pop, answer, reply under the connection's write mutex.
  for (std::size_t W = 0; W < std::max<std::size_t>(1, Opts.Workers); ++W)
    M->Workers.emplace_back([this] {
      while (true) {
        Work Item;
        {
          std::unique_lock<std::mutex> Lock(M->QueueMutex);
          M->QueueCv.wait(Lock, [this] {
            return Stop.load(std::memory_order_relaxed) ||
                   !M->Queue.empty();
          });
          if (M->Queue.empty())
            return; // Stop and drained.
          Item = std::move(M->Queue.front());
          M->Queue.pop_front();
        }
        Response R = answer(Item.Q);
        Item.C->reply(R);
        InFlight.fetch_sub(1, std::memory_order_relaxed);
        if (Item.Q.Verb == "shutdown")
          requestStop();
      }
    });

  // Accept loop: poll with a timeout so the heartbeat advances and the
  // stop flags are honoured even while idle or while every worker is
  // busy — liveness must not depend on query progress.
  while (!Stop.load(std::memory_order_relaxed)) {
    if (Opts.StopFlag && *Opts.StopFlag) {
      requestStop();
      break;
    }
    heartbeat::tick();
    relieveMemoryPressure();
    struct pollfd Pfd;
    Pfd.fd = ListenFd;
    Pfd.events = POLLIN;
    Pfd.revents = 0;
    int N = ::poll(&Pfd, 1, 50);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      note("poll() failed");
      break;
    }
    if (N == 0 || !(Pfd.revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    auto C = std::make_shared<Conn>();
    C->Fd = Fd;
    {
      std::lock_guard<std::mutex> Lock(M->ConnsMutex);
      M->Conns.push_back(C);
    }
    // Reader: frame, parse, admit. Shedding happens here — a full queue
    // answers OVERLOADED directly so the reader never blocks on the
    // worker pool.
    M->Readers.emplace_back([this, C] {
      std::string Payload;
      while (true) {
        FrameResult FR = serve::readFrame(C->Fd, Payload);
        if (FR != FrameResult::Ok) {
          if (FR == FrameResult::TooBig)
            C->reply({"-", StatusError, "-", "frame exceeds 16MiB",
                      Epoch.load(std::memory_order_relaxed)});
          return;
        }
        Request Q;
        std::string Err = parseRequest(Payload, Q);
        if (!Err.empty()) {
          C->reply({"-", StatusError, "-", Err,
                    Epoch.load(std::memory_order_relaxed)});
          continue;
        }
        // Hard memory pressure sheds at admission like a full queue:
        // queueing work the process has no room to answer only deepens
        // the hole, and an explicit OVERLOADED keeps the client's
        // retry/backoff logic in charge.
        const bool MemShedding =
            memgov::state() == memgov::Pressure::Hard;
        bool Admitted = false;
        if (!MemShedding) {
          std::lock_guard<std::mutex> Lock(M->QueueMutex);
          if (M->Queue.size() < Opts.QueueCap &&
              !Stop.load(std::memory_order_relaxed)) {
            M->Queue.push_back(Work{C, std::move(Q)});
            Admitted = true;
          }
        }
        if (Admitted) {
          InFlight.fetch_add(1, std::memory_order_relaxed);
          M->QueueCv.notify_one();
        } else {
          (MemShedding ? MemShed : Shed)
              .fetch_add(1, std::memory_order_relaxed);
          C->reply({Q.Id, StatusOverloaded, "-",
                    MemShedding ? "memory pressure" : "admission queue full",
                    Epoch.load(std::memory_order_relaxed)});
        }
      }
    });
  }

  // Teardown: wake blocked readers by shutting their sockets down, then
  // join everything. Shed whatever is still queued — in-flight loss on
  // shutdown is the documented contract (crash recovery restores the
  // *state*, not unanswered requests).
  requestStop();
  {
    std::lock_guard<std::mutex> Lock(M->ConnsMutex);
    for (const auto &C : M->Conns)
      ::shutdown(C->Fd, SHUT_RDWR);
  }
  M->QueueCv.notify_all();
  for (std::thread &T : M->Readers)
    T.join();
  M->QueueCv.notify_all();
  for (std::thread &T : M->Workers)
    T.join();
  {
    std::lock_guard<std::mutex> Lock(M->ConnsMutex);
    for (const auto &C : M->Conns)
      posix::closeQuiet(C->Fd);
    M->Conns.clear();
  }
  posix::closeQuiet(ListenFd);
  ::unlink(SocketPath.c_str());
  note("stopped cleanly");
  return 0;
}
