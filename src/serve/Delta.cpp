//===- serve/Delta.cpp - Fact-delta language implementation ---------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "serve/Delta.h"

#include <cstdlib>

using namespace ctp;
using namespace ctp::serve;
using facts::FactDB;
using facts::Id;

namespace {

std::vector<std::string> tokenize(const std::string &Line, std::string &Err) {
  std::vector<std::string> Toks;
  std::size_t I = 0;
  while (I < Line.size()) {
    std::size_t J = Line.find(' ', I);
    if (J == std::string::npos)
      J = Line.size();
    if (J == I) {
      Err = "empty token (doubled or leading space)";
      return {};
    }
    Toks.push_back(Line.substr(I, J - I));
    I = J + 1;
  }
  if (!Line.empty() && Line.back() == ' ')
    Err = "trailing space";
  if (Toks.empty() && Err.empty())
    Err = "empty op";
  return Toks;
}

Id findName(const std::vector<std::string> &Names, const std::string &Name) {
  for (std::size_t I = 0; I < Names.size(); ++I)
    if (Names[I] == Name)
      return static_cast<Id>(I);
  return facts::InvalidId;
}

std::string resolve(const std::vector<std::string> &Names,
                    const std::string &Name, const char *Kind, Id &Out) {
  Out = findName(Names, Name);
  if (Out == facts::InvalidId)
    return std::string("unknown ") + Kind + " '" + Name + "'";
  return {};
}

std::string parseOrdinal(const std::string &Tok, Id &Out) {
  if (Tok.empty())
    return "empty ordinal";
  char *End = nullptr;
  unsigned long long V = std::strtoull(Tok.c_str(), &End, 10);
  if (*End != '\0' || Tok[0] < '0' || Tok[0] > '9')
    return "ordinal '" + Tok + "' is not a number";
  if (V > 0xFFFFFFFFull)
    return "ordinal '" + Tok + "' is out of range";
  Out = static_cast<Id>(V);
  return {};
}

template <typename T, typename Eq>
std::string addRow(std::vector<T> &Rows, const T &Row, Eq Same,
                   const char *Pred) {
  for (const T &R : Rows)
    if (Same(R, Row))
      return std::string("duplicate ") + Pred + " row";
  Rows.push_back(Row);
  return {};
}

template <typename T, typename Eq>
std::string rmRow(std::vector<T> &Rows, const T &Row, Eq Same,
                  const char *Pred) {
  for (auto It = Rows.begin(); It != Rows.end(); ++It)
    if (Same(*It, Row)) {
      Rows.erase(It); // In place: the remaining rows keep their order,
      return {};      // exactly like a hand edit of the TSV file.
    }
  return std::string("no such ") + Pred + " row";
}

std::string applyEntity(const std::vector<std::string> &T, FactDB &DB) {
  if (T.size() < 4)
    return "usage: add entity <kind> <name> [<parent>]";
  const std::string &Kind = T[2], &Name = T[3];
  auto Fresh = [&Name](const std::vector<std::string> &Names,
                       const char *K) -> std::string {
    if (findName(Names, Name) != facts::InvalidId)
      return std::string(K) + " '" + Name + "' already exists";
    return {};
  };
  if (Kind == "var" || Kind == "heap" || Kind == "invoke") {
    if (T.size() != 5)
      return "usage: add entity " + Kind + " <name> <parent-method>";
    Id Parent;
    if (auto E = resolve(DB.MethodNames, T[4], "method", Parent); !E.empty())
      return E;
    if (Kind == "var") {
      if (auto E = Fresh(DB.VarNames, "variable"); !E.empty())
        return E;
      DB.VarNames.push_back(Name);
      DB.VarParent.push_back(Parent);
    } else if (Kind == "heap") {
      if (auto E = Fresh(DB.HeapNames, "heap site"); !E.empty())
        return E;
      DB.HeapNames.push_back(Name);
      DB.HeapParent.push_back(Parent);
    } else {
      if (auto E = Fresh(DB.InvokeNames, "invocation"); !E.empty())
        return E;
      DB.InvokeNames.push_back(Name);
      DB.InvokeParent.push_back(Parent);
    }
    return {};
  }
  if (Kind == "method") {
    if (T.size() != 5)
      return "usage: add entity method <name> <class-type>";
    Id Class;
    if (auto E = resolve(DB.TypeNames, T[4], "type", Class); !E.empty())
      return E;
    if (auto E = Fresh(DB.MethodNames, "method"); !E.empty())
      return E;
    DB.MethodNames.push_back(Name);
    DB.MethodClass.push_back(Class);
    return {};
  }
  if (T.size() != 4)
    return "usage: add entity " + Kind + " <name>";
  if (Kind == "field") {
    if (auto E = Fresh(DB.FieldNames, "field"); !E.empty())
      return E;
    DB.FieldNames.push_back(Name);
    return {};
  }
  if (Kind == "type") {
    if (auto E = Fresh(DB.TypeNames, "type"); !E.empty())
      return E;
    DB.TypeNames.push_back(Name);
    return {};
  }
  if (Kind == "sig") {
    if (auto E = Fresh(DB.SigNames, "signature"); !E.empty())
      return E;
    DB.SigNames.push_back(Name);
    return {};
  }
  if (Kind == "global") {
    if (auto E = Fresh(DB.GlobalNames, "global"); !E.empty())
      return E;
    DB.GlobalNames.push_back(Name);
    return {};
  }
  return "unknown entity kind '" + Kind + "' (var, heap, invoke, method, "
         "field, type, sig, global)";
}

} // namespace

std::string serve::applyDeltaOp(const std::string &Line, FactDB &DB,
                                analysis::InputDelta &D) {
  std::string Err;
  std::vector<std::string> T = tokenize(Line, Err);
  if (!Err.empty())
    return Err;
  const bool Add = T[0] == "add";
  if (!Add && T[0] != "rm")
    return "op must start with add or rm, got '" + T[0] + "'";
  if (T.size() < 2)
    return "missing predicate after " + T[0];
  const std::string &Pred = T[1];

  if (Pred == "entity") {
    if (!Add)
      return "rm entity is not supported: entity ids are append-only so "
             "every transaction keeps prior ids stable";
    return applyEntity(T, DB);
  }

  auto Arity = [&T, &Pred](std::size_t N) -> std::string {
    if (T.size() != N + 2)
      return Pred + " takes " + std::to_string(N) + " argument(s), got " +
             std::to_string(T.size() - 2);
    return {};
  };

  if (Pred == "entry") {
    if (auto E = Arity(1); !E.empty())
      return E;
    Id M;
    if (auto E = resolve(DB.MethodNames, T[2], "method", M); !E.empty())
      return E;
    auto Same = [M](Id A) { return A == M; };
    if (Add) {
      for (Id E : DB.EntryMethods)
        if (Same(E))
          return "duplicate entry row";
      DB.EntryMethods.push_back(M);
      D.AddEntries.push_back(M);
    } else {
      bool Found = false;
      for (auto It = DB.EntryMethods.begin(); It != DB.EntryMethods.end();
           ++It)
        if (Same(*It)) {
          DB.EntryMethods.erase(It);
          Found = true;
          break;
        }
      if (!Found)
        return "no such entry row";
      D.RmEntries.push_back(M);
    }
    return {};
  }

  if (Pred == "assign") {
    if (auto E = Arity(2); !E.empty())
      return E;
    facts::AssignFact F;
    if (auto E = resolve(DB.VarNames, T[2], "variable", F.From); !E.empty())
      return E;
    if (auto E = resolve(DB.VarNames, T[3], "variable", F.To); !E.empty())
      return E;
    auto Same = [](const facts::AssignFact &A, const facts::AssignFact &B) {
      return A.From == B.From && A.To == B.To;
    };
    if (Add) {
      if (auto E = addRow(DB.Assigns, F, Same, "assign"); !E.empty())
        return E;
      D.AddAssigns.push_back(F);
    } else {
      if (auto E = rmRow(DB.Assigns, F, Same, "assign"); !E.empty())
        return E;
      D.RmAssigns.push_back(F);
    }
    return {};
  }

  if (Pred == "assign_new") {
    if (auto E = Arity(3); !E.empty())
      return E;
    facts::AssignNewFact F;
    if (auto E = resolve(DB.HeapNames, T[2], "heap site", F.Heap); !E.empty())
      return E;
    if (auto E = resolve(DB.VarNames, T[3], "variable", F.To); !E.empty())
      return E;
    if (auto E = resolve(DB.MethodNames, T[4], "method", F.InMethod);
        !E.empty())
      return E;
    auto Same = [](const facts::AssignNewFact &A,
                   const facts::AssignNewFact &B) {
      return A.Heap == B.Heap && A.To == B.To && A.InMethod == B.InMethod;
    };
    if (Add) {
      if (auto E = addRow(DB.AssignNews, F, Same, "assign_new"); !E.empty())
        return E;
      D.AddAssignNews.push_back(F);
    } else {
      if (auto E = rmRow(DB.AssignNews, F, Same, "assign_new"); !E.empty())
        return E;
      D.RmAssignNews.push_back(F);
    }
    return {};
  }

  if (Pred == "assign_return") {
    if (auto E = Arity(2); !E.empty())
      return E;
    facts::AssignReturnFact F;
    if (auto E = resolve(DB.InvokeNames, T[2], "invocation", F.Invoke);
        !E.empty())
      return E;
    if (auto E = resolve(DB.VarNames, T[3], "variable", F.To); !E.empty())
      return E;
    auto Same = [](const facts::AssignReturnFact &A,
                   const facts::AssignReturnFact &B) {
      return A.Invoke == B.Invoke && A.To == B.To;
    };
    if (Add) {
      if (auto E = addRow(DB.AssignReturns, F, Same, "assign_return");
          !E.empty())
        return E;
      D.AddAssignReturns.push_back(F);
    } else {
      if (auto E = rmRow(DB.AssignReturns, F, Same, "assign_return");
          !E.empty())
        return E;
      D.RmAssignReturns.push_back(F);
    }
    return {};
  }

  if (Pred == "actual") {
    if (auto E = Arity(3); !E.empty())
      return E;
    facts::ActualFact F;
    if (auto E = resolve(DB.VarNames, T[2], "variable", F.Var); !E.empty())
      return E;
    if (auto E = resolve(DB.InvokeNames, T[3], "invocation", F.Invoke);
        !E.empty())
      return E;
    if (auto E = parseOrdinal(T[4], F.Ordinal); !E.empty())
      return E;
    auto Same = [](const facts::ActualFact &A, const facts::ActualFact &B) {
      return A.Var == B.Var && A.Invoke == B.Invoke && A.Ordinal == B.Ordinal;
    };
    if (Add) {
      if (auto E = addRow(DB.Actuals, F, Same, "actual"); !E.empty())
        return E;
      D.AddActuals.push_back(F);
    } else {
      if (auto E = rmRow(DB.Actuals, F, Same, "actual"); !E.empty())
        return E;
      D.RmActuals.push_back(F);
    }
    return {};
  }

  if (Pred == "formal") {
    if (auto E = Arity(3); !E.empty())
      return E;
    facts::FormalFact F;
    if (auto E = resolve(DB.VarNames, T[2], "variable", F.Var); !E.empty())
      return E;
    if (auto E = resolve(DB.MethodNames, T[3], "method", F.Method);
        !E.empty())
      return E;
    if (auto E = parseOrdinal(T[4], F.Ordinal); !E.empty())
      return E;
    auto Same = [](const facts::FormalFact &A, const facts::FormalFact &B) {
      return A.Var == B.Var && A.Method == B.Method && A.Ordinal == B.Ordinal;
    };
    if (Add) {
      if (auto E = addRow(DB.Formals, F, Same, "formal"); !E.empty())
        return E;
      D.AddFormals.push_back(F);
    } else {
      if (auto E = rmRow(DB.Formals, F, Same, "formal"); !E.empty())
        return E;
      D.RmFormals.push_back(F);
    }
    return {};
  }

  if (Pred == "heap_type") {
    if (auto E = Arity(2); !E.empty())
      return E;
    facts::HeapTypeFact F;
    if (auto E = resolve(DB.HeapNames, T[2], "heap site", F.Heap); !E.empty())
      return E;
    if (auto E = resolve(DB.TypeNames, T[3], "type", F.Type); !E.empty())
      return E;
    auto Same = [](const facts::HeapTypeFact &A, const facts::HeapTypeFact &B) {
      return A.Heap == B.Heap && A.Type == B.Type;
    };
    if (Add) {
      if (auto E = addRow(DB.HeapTypes, F, Same, "heap_type"); !E.empty())
        return E;
      D.WideAdd = true;
    } else {
      if (auto E = rmRow(DB.HeapTypes, F, Same, "heap_type"); !E.empty())
        return E;
      D.WideRemove = true;
    }
    return {};
  }

  if (Pred == "implements") {
    if (auto E = Arity(3); !E.empty())
      return E;
    facts::ImplementsFact F;
    if (auto E = resolve(DB.MethodNames, T[2], "method", F.Method);
        !E.empty())
      return E;
    if (auto E = resolve(DB.TypeNames, T[3], "type", F.Type); !E.empty())
      return E;
    if (auto E = resolve(DB.SigNames, T[4], "signature", F.Sig); !E.empty())
      return E;
    // Virtual dispatch to a method flows the receiver into its `this`
    // variable; a dispatch target without one would crash the solver.
    if (Add) {
      bool HasThis = false;
      for (const auto &TV : DB.ThisVars)
        if (TV.Method == F.Method)
          HasThis = true;
      if (!HasThis)
        return "method '" + T[2] + "' has no this_var row (add one before "
               "making it a dispatch target)";
    }
    auto Same = [](const facts::ImplementsFact &A,
                   const facts::ImplementsFact &B) {
      return A.Method == B.Method && A.Type == B.Type && A.Sig == B.Sig;
    };
    if (Add) {
      if (auto E = addRow(DB.Implements, F, Same, "implements"); !E.empty())
        return E;
      D.WideAdd = true;
    } else {
      if (auto E = rmRow(DB.Implements, F, Same, "implements"); !E.empty())
        return E;
      D.WideRemove = true;
    }
    return {};
  }

  if (Pred == "load") {
    if (auto E = Arity(3); !E.empty())
      return E;
    facts::LoadFact F;
    if (auto E = resolve(DB.VarNames, T[2], "variable", F.Base); !E.empty())
      return E;
    if (auto E = resolve(DB.FieldNames, T[3], "field", F.Field); !E.empty())
      return E;
    if (auto E = resolve(DB.VarNames, T[4], "variable", F.To); !E.empty())
      return E;
    auto Same = [](const facts::LoadFact &A, const facts::LoadFact &B) {
      return A.Base == B.Base && A.Field == B.Field && A.To == B.To;
    };
    if (Add) {
      if (auto E = addRow(DB.Loads, F, Same, "load"); !E.empty())
        return E;
      D.AddLoads.push_back(F);
    } else {
      if (auto E = rmRow(DB.Loads, F, Same, "load"); !E.empty())
        return E;
      D.RmLoads.push_back(F);
    }
    return {};
  }

  if (Pred == "return") {
    if (auto E = Arity(2); !E.empty())
      return E;
    facts::ReturnFact F;
    if (auto E = resolve(DB.VarNames, T[2], "variable", F.Var); !E.empty())
      return E;
    if (auto E = resolve(DB.MethodNames, T[3], "method", F.Method);
        !E.empty())
      return E;
    auto Same = [](const facts::ReturnFact &A, const facts::ReturnFact &B) {
      return A.Var == B.Var && A.Method == B.Method;
    };
    if (Add) {
      if (auto E = addRow(DB.Returns, F, Same, "return"); !E.empty())
        return E;
      D.AddReturns.push_back(F);
    } else {
      if (auto E = rmRow(DB.Returns, F, Same, "return"); !E.empty())
        return E;
      D.RmReturns.push_back(F);
    }
    return {};
  }

  if (Pred == "static_invoke") {
    if (auto E = Arity(3); !E.empty())
      return E;
    facts::StaticInvokeFact F;
    if (auto E = resolve(DB.InvokeNames, T[2], "invocation", F.Invoke);
        !E.empty())
      return E;
    if (auto E = resolve(DB.MethodNames, T[3], "method", F.Target);
        !E.empty())
      return E;
    if (auto E = resolve(DB.MethodNames, T[4], "method", F.InMethod);
        !E.empty())
      return E;
    auto Same = [](const facts::StaticInvokeFact &A,
                   const facts::StaticInvokeFact &B) {
      return A.Invoke == B.Invoke && A.Target == B.Target &&
             A.InMethod == B.InMethod;
    };
    if (Add) {
      if (auto E = addRow(DB.StaticInvokes, F, Same, "static_invoke");
          !E.empty())
        return E;
      D.AddStaticInvokes.push_back(F);
    } else {
      if (auto E = rmRow(DB.StaticInvokes, F, Same, "static_invoke");
          !E.empty())
        return E;
      D.RmStaticInvokes.push_back(F);
    }
    return {};
  }

  if (Pred == "store") {
    if (auto E = Arity(3); !E.empty())
      return E;
    facts::StoreFact F;
    if (auto E = resolve(DB.VarNames, T[2], "variable", F.From); !E.empty())
      return E;
    if (auto E = resolve(DB.FieldNames, T[3], "field", F.Field); !E.empty())
      return E;
    if (auto E = resolve(DB.VarNames, T[4], "variable", F.Base); !E.empty())
      return E;
    auto Same = [](const facts::StoreFact &A, const facts::StoreFact &B) {
      return A.From == B.From && A.Field == B.Field && A.Base == B.Base;
    };
    if (Add) {
      if (auto E = addRow(DB.Stores, F, Same, "store"); !E.empty())
        return E;
      D.AddStores.push_back(F);
    } else {
      if (auto E = rmRow(DB.Stores, F, Same, "store"); !E.empty())
        return E;
      D.RmStores.push_back(F);
    }
    return {};
  }

  if (Pred == "this_var") {
    if (auto E = Arity(2); !E.empty())
      return E;
    facts::ThisVarFact F;
    if (auto E = resolve(DB.VarNames, T[2], "variable", F.Var); !E.empty())
      return E;
    if (auto E = resolve(DB.MethodNames, T[3], "method", F.Method);
        !E.empty())
      return E;
    auto Same = [](const facts::ThisVarFact &A, const facts::ThisVarFact &B) {
      return A.Var == B.Var && A.Method == B.Method;
    };
    if (Add) {
      if (auto E = addRow(DB.ThisVars, F, Same, "this_var"); !E.empty())
        return E;
      D.WideAdd = true;
    } else {
      // A dispatch target must keep its `this` variable (see implements).
      for (const auto &Im : DB.Implements)
        if (Im.Method == F.Method)
          return "method '" + T[3] + "' is a dispatch target (implements "
                 "row); remove those rows first";
      if (auto E = rmRow(DB.ThisVars, F, Same, "this_var"); !E.empty())
        return E;
      D.WideRemove = true;
    }
    return {};
  }

  if (Pred == "virtual_invoke") {
    if (auto E = Arity(3); !E.empty())
      return E;
    facts::VirtualInvokeFact F;
    if (auto E = resolve(DB.InvokeNames, T[2], "invocation", F.Invoke);
        !E.empty())
      return E;
    if (auto E = resolve(DB.VarNames, T[3], "variable", F.Receiver);
        !E.empty())
      return E;
    if (auto E = resolve(DB.SigNames, T[4], "signature", F.Sig); !E.empty())
      return E;
    auto Same = [](const facts::VirtualInvokeFact &A,
                   const facts::VirtualInvokeFact &B) {
      return A.Invoke == B.Invoke && A.Receiver == B.Receiver &&
             A.Sig == B.Sig;
    };
    if (Add) {
      if (auto E = addRow(DB.VirtualInvokes, F, Same, "virtual_invoke");
          !E.empty())
        return E;
      D.AddVirtualInvokes.push_back(F);
    } else {
      if (auto E = rmRow(DB.VirtualInvokes, F, Same, "virtual_invoke");
          !E.empty())
        return E;
      D.RmVirtualInvokes.push_back(F);
    }
    return {};
  }

  if (Pred == "global_store") {
    if (auto E = Arity(2); !E.empty())
      return E;
    facts::GlobalStoreFact F;
    if (auto E = resolve(DB.VarNames, T[2], "variable", F.From); !E.empty())
      return E;
    if (auto E = resolve(DB.GlobalNames, T[3], "global", F.Global);
        !E.empty())
      return E;
    auto Same = [](const facts::GlobalStoreFact &A,
                   const facts::GlobalStoreFact &B) {
      return A.From == B.From && A.Global == B.Global;
    };
    if (Add) {
      if (auto E = addRow(DB.GlobalStores, F, Same, "global_store");
          !E.empty())
        return E;
      D.AddGlobalStores.push_back(F);
    } else {
      if (auto E = rmRow(DB.GlobalStores, F, Same, "global_store");
          !E.empty())
        return E;
      D.RmGlobalStores.push_back(F);
    }
    return {};
  }

  if (Pred == "global_load") {
    if (auto E = Arity(3); !E.empty())
      return E;
    facts::GlobalLoadFact F;
    if (auto E = resolve(DB.GlobalNames, T[2], "global", F.Global);
        !E.empty())
      return E;
    if (auto E = resolve(DB.VarNames, T[3], "variable", F.To); !E.empty())
      return E;
    if (auto E = resolve(DB.MethodNames, T[4], "method", F.InMethod);
        !E.empty())
      return E;
    auto Same = [](const facts::GlobalLoadFact &A,
                   const facts::GlobalLoadFact &B) {
      return A.Global == B.Global && A.To == B.To && A.InMethod == B.InMethod;
    };
    if (Add) {
      if (auto E = addRow(DB.GlobalLoads, F, Same, "global_load"); !E.empty())
        return E;
      D.AddGlobalLoads.push_back(F);
    } else {
      if (auto E = rmRow(DB.GlobalLoads, F, Same, "global_load"); !E.empty())
        return E;
      D.RmGlobalLoads.push_back(F);
    }
    return {};
  }

  if (Pred == "throw") {
    if (auto E = Arity(2); !E.empty())
      return E;
    facts::ThrowFact F;
    if (auto E = resolve(DB.VarNames, T[2], "variable", F.Var); !E.empty())
      return E;
    if (auto E = resolve(DB.MethodNames, T[3], "method", F.Method);
        !E.empty())
      return E;
    auto Same = [](const facts::ThrowFact &A, const facts::ThrowFact &B) {
      return A.Var == B.Var && A.Method == B.Method;
    };
    if (Add) {
      if (auto E = addRow(DB.Throws, F, Same, "throw"); !E.empty())
        return E;
      D.AddThrows.push_back(F);
    } else {
      if (auto E = rmRow(DB.Throws, F, Same, "throw"); !E.empty())
        return E;
      D.RmThrows.push_back(F);
    }
    return {};
  }

  if (Pred == "catch") {
    if (auto E = Arity(2); !E.empty())
      return E;
    facts::CatchFact F;
    if (auto E = resolve(DB.InvokeNames, T[2], "invocation", F.Invoke);
        !E.empty())
      return E;
    if (auto E = resolve(DB.VarNames, T[3], "variable", F.To); !E.empty())
      return E;
    auto Same = [](const facts::CatchFact &A, const facts::CatchFact &B) {
      return A.Invoke == B.Invoke && A.To == B.To;
    };
    if (Add) {
      if (auto E = addRow(DB.Catches, F, Same, "catch"); !E.empty())
        return E;
      D.AddCatches.push_back(F);
    } else {
      if (auto E = rmRow(DB.Catches, F, Same, "catch"); !E.empty())
        return E;
      D.RmCatches.push_back(F);
    }
    return {};
  }

  if (Pred == "cast") {
    if (auto E = Arity(3); !E.empty())
      return E;
    facts::CastFact F;
    if (auto E = resolve(DB.VarNames, T[2], "variable", F.From); !E.empty())
      return E;
    if (auto E = resolve(DB.VarNames, T[3], "variable", F.To); !E.empty())
      return E;
    if (auto E = resolve(DB.TypeNames, T[4], "type", F.Type); !E.empty())
      return E;
    auto Same = [](const facts::CastFact &A, const facts::CastFact &B) {
      return A.From == B.From && A.To == B.To && A.Type == B.Type;
    };
    if (Add) {
      if (auto E = addRow(DB.Casts, F, Same, "cast"); !E.empty())
        return E;
      D.AddCasts.push_back(F);
    } else {
      if (auto E = rmRow(DB.Casts, F, Same, "cast"); !E.empty())
        return E;
      D.RmCasts.push_back(F);
    }
    return {};
  }

  if (Pred == "subtype") {
    if (auto E = Arity(2); !E.empty())
      return E;
    facts::SubtypeFact F;
    if (auto E = resolve(DB.TypeNames, T[2], "type", F.Sub); !E.empty())
      return E;
    if (auto E = resolve(DB.TypeNames, T[3], "type", F.Super); !E.empty())
      return E;
    auto Same = [](const facts::SubtypeFact &A, const facts::SubtypeFact &B) {
      return A.Sub == B.Sub && A.Super == B.Super;
    };
    if (Add) {
      if (auto E = addRow(DB.Subtypes, F, Same, "subtype"); !E.empty())
        return E;
      D.WideAdd = true;
    } else {
      if (auto E = rmRow(DB.Subtypes, F, Same, "subtype"); !E.empty())
        return E;
      D.WideRemove = true;
    }
    return {};
  }

  if (Pred == "spawn") {
    if (auto E = Arity(1); !E.empty())
      return E;
    facts::SpawnFact F;
    if (auto E = resolve(DB.InvokeNames, T[2], "invocation", F.Invoke);
        !E.empty())
      return E;
    auto Same = [](const facts::SpawnFact &A, const facts::SpawnFact &B) {
      return A.Invoke == B.Invoke;
    };
    std::string E = Add ? addRow(DB.Spawns, F, Same, "spawn")
                        : rmRow(DB.Spawns, F, Same, "spawn");
    if (!E.empty())
      return E;
    D.ClientFactsChanged = true;
    return {};
  }

  if (Pred == "taint_source" || Pred == "taint_sink") {
    if (auto E = Arity(2); !E.empty())
      return E;
    Id IsField;
    if (T[2] == "invoke")
      IsField = 0;
    else if (T[2] == "field")
      IsField = 1;
    else
      return Pred + " kind must be invoke or field, got '" + T[2] + "'";
    Id Entity;
    if (IsField == 0) {
      if (auto E = resolve(DB.InvokeNames, T[3], "invocation", Entity);
          !E.empty())
        return E;
    } else {
      if (auto E = resolve(DB.FieldNames, T[3], "field", Entity); !E.empty())
        return E;
    }
    if (Pred == "taint_source") {
      facts::TaintSourceFact F{IsField, Entity};
      auto Same = [](const facts::TaintSourceFact &A,
                     const facts::TaintSourceFact &B) {
        return A.IsField == B.IsField && A.Entity == B.Entity;
      };
      std::string E = Add ? addRow(DB.TaintSources, F, Same, "taint_source")
                          : rmRow(DB.TaintSources, F, Same, "taint_source");
      if (!E.empty())
        return E;
    } else {
      facts::TaintSinkFact F{IsField, Entity};
      auto Same = [](const facts::TaintSinkFact &A,
                     const facts::TaintSinkFact &B) {
        return A.IsField == B.IsField && A.Entity == B.Entity;
      };
      std::string E = Add ? addRow(DB.TaintSinks, F, Same, "taint_sink")
                          : rmRow(DB.TaintSinks, F, Same, "taint_sink");
      if (!E.empty())
        return E;
    }
    D.ClientFactsChanged = true;
    return {};
  }

  if (Pred == "sanitizer") {
    if (auto E = Arity(1); !E.empty())
      return E;
    facts::SanitizerFact F;
    if (auto E = resolve(DB.InvokeNames, T[2], "invocation", F.Invoke);
        !E.empty())
      return E;
    auto Same = [](const facts::SanitizerFact &A,
                   const facts::SanitizerFact &B) {
      return A.Invoke == B.Invoke;
    };
    std::string E = Add ? addRow(DB.Sanitizers, F, Same, "sanitizer")
                        : rmRow(DB.Sanitizers, F, Same, "sanitizer");
    if (!E.empty())
      return E;
    D.ClientFactsChanged = true;
    return {};
  }

  return "unknown predicate '" + Pred + "'";
}

std::string serve::applyDeltaOps(const std::vector<std::string> &Lines,
                                 FactDB &DB, analysis::InputDelta &D) {
  for (std::size_t I = 0; I < Lines.size(); ++I)
    if (std::string E = applyDeltaOp(Lines[I], DB, D); !E.empty())
      return "op " + std::to_string(I + 1) + ": " + E;
  return {};
}
