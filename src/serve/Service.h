//===- serve/Service.h - Resident analysis service --------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident analysis service behind tools/ctp-serve: solve once,
/// answer many points-to / alias / taint queries over the wire protocol
/// of serve/Wire.h.
///
/// Startup ("warm start"): with a checkpoint directory configured, the
/// service probes it for a snapshot (analysis/Configurations.h) and
/// resumes the rung-0 solve from it — a snapshot a *previous daemon
/// life* wrote on convergence (CheckpointPolicy::KeepOnConverge)
/// restores with every relation fully processed, so the solver converges
/// immediately and the restarted daemon answers from the identical
/// fixpoint: byte-identical responses across lives, which
/// crashloop.sh --serve asserts. A cold start solves under the startup
/// budget with periodic checkpoints, so even a daemon SIGKILLed
/// *mid-solve* resumes its own partial progress.
///
/// Degradation: when the rung-0 solve exhausts its startup budget the
/// service descends the configuration ladder (halved budgets, no
/// checkpoints) and serves from the first rung that converges, tagging
/// every answer "hot-rung<k>"; when no rung converges it serves
/// demand-driven CFL answers only ("cfl"). Partial exhaustive results
/// are never served: a truncated fixpoint is a *subset* of the true one,
/// unsound for may-point-to / may-alias answers, while the CFL engine's
/// over-approximation and its all-heaps exhaustion fallback stay sound.
///
/// Per-request deadlines: deadline_ms / max_steps become a BudgetSpec;
/// the hot path charges the meter per points-to element it touches, and
/// a trip mid-answer falls back to the CFL engine under the *same*
/// (already tripped) meter, which exhausts immediately into the sound
/// all-heaps answer — a deadline-tripped query always answers, never
/// hangs ("degraded" status, never a dropped request).
///
/// Admission control: a bounded queue between per-connection reader
/// threads and a small worker pool. A reader that finds the queue full
/// replies OVERLOADED itself without ever blocking, so overload sheds
/// load explicitly while the accept loop keeps beating the heartbeat
/// file (the PR-5 liveness protocol) for the supervising process.
///
/// Memory pressure: with a budget armed (--mem-budget-mb, or a
/// CTP_MEM_FAULT drill), the accept loop polls the process memory
/// governor (support/Memory.h) every tick and stages its response to
/// pressure. A sustained soft-watermark streak drops the resident
/// result, oracle, and taint caches — the big owners — and re-solves a
/// cheaper ladder rung, answering demand-driven (sound) in the interim;
/// hard pressure or a ladder that is already at the bottom falls
/// straight to CflOnly and re-floors the watermarks over the shrunken
/// footprint. While pressure reads Hard, readers shed new admissions
/// with OVERLOADED rather than queueing work the process has no room
/// to answer. The daemon thus degrades in place instead of being
/// SIGKILLed by the kernel or SIGABRTed by a failed allocation — zero
/// watchdog kills under a sustained pressure burst is the contract
/// serve_test's burst drill asserts.
///
/// Transactions: with a checkpoint directory configured the service
/// accepts the begin/delta/commit/abort/txstat verbs, journalling every
/// step through serve/Txn.h before acting on it. A commit re-solves the
/// staged facts — incrementally from the live fixpoint when the
/// provenance graph permits, cold otherwise — certifies the result with
/// the verify closure and support checks, promotes a new warm-start
/// snapshot, appends the durable commit record, and only then swaps the
/// served state (facts, results, oracles, demand engine) under a writer
/// lock, bumping the epoch every response carries. Any failure along the
/// way aborts: the journal records it, the staged state is dropped, and
/// answers remain byte-identical to the previous epoch. On startup the
/// journal is replayed over the base facts, so a daemon SIGKILLed at any
/// byte of a transaction restarts into the last *committed* epoch (an
/// unfinished transaction is recovery-aborted); when the replayed state
/// is nonempty its solve is re-certified before serving.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_SERVE_SERVICE_H
#define CTP_SERVE_SERVICE_H

#include "analysis/Incremental.h"
#include "analysis/Results.h"
#include "cfl/Demand.h"
#include "clients/Alias.h"
#include "clients/Taint.h"
#include "ctx/Config.h"
#include "facts/FactDB.h"
#include "serve/Wire.h"
#include "support/Budget.h"

#include <atomic>
#include <csignal>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

namespace ctp {
namespace serve {

/// Startup and serving knobs of one daemon.
struct ServiceOptions {
  /// Exactly one of FactsDir / Preset, as in ctp-analyze.
  std::string FactsDir;
  std::string Preset;
  std::string ConfigName = "2-object+H";
  bool Collapse = false;
  /// Warm-start state: empty disables checkpointing (every start is
  /// cold, every crash loses the solve).
  std::string CheckpointDir;
  /// Periodic checkpoint cadence during the startup solve, so a crash
  /// mid-solve resumes partial progress rather than starting over.
  std::uint64_t CheckpointEvery = 20000;
  /// Budget of the rung-0 startup solve; rung k below runs on the
  /// budget halved k times. All-zero = unlimited (cold starts block
  /// until converged).
  BudgetSpec StartupBudget;
  std::size_t Workers = 2;
  /// Admission bound: requests queued (not yet picked up by a worker)
  /// beyond this are shed with an OVERLOADED response.
  std::size_t QueueCap = 8;
  /// Per-query CFL worklist step cap (the engine's own, used when a
  /// request does not set max_steps).
  std::size_t CflBudget = 100000;
  /// Polled by the accept loop: a SIGTERM handler sets it to stop the
  /// daemon cleanly (exit 0) without async-signal-unsafe calls.
  const volatile std::sig_atomic_t *StopFlag = nullptr;
};

/// How the resident state answers queries.
enum class ServeMode : std::uint8_t {
  Hot,     ///< Rung-0 configuration converged.
  HotRung, ///< A lower ladder rung converged (answers are degraded).
  CflOnly, ///< Nothing converged; demand-driven answers only.
};

class Service {
public:
  explicit Service(ServiceOptions O);
  ~Service();

  /// Loads facts and solves (resuming a checkpoint when one validates).
  /// \returns an empty string on success, else a fatal diagnostic.
  /// Progress and warnings are narrated to stderr.
  std::string init();

  /// Answers one parsed request. Thread-safe: query verbs read the
  /// resident state under a shared lock; a committing transaction takes
  /// the exclusive side only for its final pointer swap. The `stall`
  /// verb sleeps here, in the calling worker.
  Response answer(const Request &Q);

  /// Binds \p SocketPath (unlinking any stale socket), serves until a
  /// `shutdown` request or StopFlag, and \returns the process exit code
  /// (0 clean stop, 1 error).
  int serve(const std::string &SocketPath);

  /// Stops the serve loop from another thread (the shutdown verb).
  void requestStop() { Stop.store(true, std::memory_order_relaxed); }

  ServeMode mode() const { return Mode; }
  /// The wire-protocol mode tag: "hot", "hot-rung<k>", or "cfl".
  const std::string &modeTag() const { return ModeTag; }
  /// True when init restored a converged snapshot instead of solving.
  bool warmStarted() const { return WarmStart; }
  std::size_t queueCap() const { return Opts.QueueCap; }
  /// Count of committed transactions in the served state.
  std::uint64_t epoch() const {
    return Epoch.load(std::memory_order_relaxed);
  }

private:
  struct Impl; // Connection/queue machinery, hidden from clients.

  /// One staged (begun, not yet committed) transaction. At most one is
  /// open at a time; TxnMutex serializes every transaction verb.
  struct OpenTxn {
    std::string Id;
    std::unique_ptr<facts::FactDB> Staged;
    analysis::InputDelta Delta;
    std::vector<std::string> OpLines;
  };

  Response answerPts(const Request &Q);
  Response answerAlias(const Request &Q);
  Response answerTaint(const Request &Q);
  Response answerStats(const Request &Q);
  Response answerTxn(const Request &Q);
  Response commitTxn(const Request &Q);
  /// Journals the abort, drops the staged state, and shapes the
  /// txn-aborted response. Caller holds TxnMutex.
  Response abortTxn(const Request &Q, const std::string &Reason,
                    const char *Status);
  bool lookupVar(const std::string &Name, std::uint32_t &Id) const;
  bool lookupHeap(const std::string &Name, std::uint32_t &Id) const;
  /// The accept loop's per-tick memory-pressure check: counts soft
  /// streaks, and on sustained soft (or any hard) pressure drops the
  /// resident caches and descends the ladder / falls to CflOnly. Runs
  /// on the accept thread; swaps state under the exclusive StateLock.
  void relieveMemoryPressure();

  ServiceOptions Opts;
  /// The served fact base. Swapped in place (move-assigned) by a commit
  /// under the exclusive StateLock, so references held by the rebuilt
  /// engines stay valid across epochs.
  facts::FactDB DB;
  ServeMode Mode = ServeMode::CflOnly;
  std::string ModeTag = "cfl";
  bool WarmStart = false;

  /// Converged exhaustive results and clients; null in CflOnly mode.
  std::unique_ptr<analysis::Results> Hot;
  std::unique_ptr<clients::AliasOracle> Oracle;
  std::unique_ptr<clients::TaintInfo> Taint;
  /// Demand-driven engine; always built (per-query degradation target).
  std::unique_ptr<cfl::DemandSolver> Demand;

  /// Readers (query verbs) vs. the commit swap. Queries hold shared;
  /// commit holds exclusive only while swapping pointers, never while
  /// solving.
  std::shared_mutex StateLock;
  std::atomic<std::uint64_t> Epoch{0};
  /// Serializes begin/delta/commit/abort/txstat end to end (a commit
  /// solves under it, so a second transaction waits its turn).
  std::mutex TxnMutex;
  std::unique_ptr<OpenTxn> Txn;
  std::uint64_t TxnSeq = 1;
  std::string LastTxnNote = "-";
  /// The journal path; empty when CheckpointDir is unset, which refuses
  /// the transaction verbs (no place to make them durable).
  std::string JournalFile;
  /// What the serving fixpoint was solved with — the commit path
  /// re-solves the same cell.
  ctx::Config ServingCfg;
  std::size_t ServingRung = 0;
  /// The degradation ladder of the configured rung-0 cell, kept so the
  /// pressure response can descend it after startup.
  std::vector<ctx::Config> Ladder;
  /// Consecutive accept-loop ticks that observed soft pressure; one
  /// blip is noise, a streak triggers the descent. Accept-thread only.
  unsigned MemSoftStreak = 0;

  std::atomic<bool> Stop{false};
  std::atomic<std::uint64_t> Served{0};
  std::atomic<std::uint64_t> Shed{0};
  /// Admissions shed because pressure read Hard (distinct from queue
  /// overflow), and cache-dropping descents the pressure loop ran.
  std::atomic<std::uint64_t> MemShed{0};
  std::atomic<std::uint64_t> MemDegrades{0};
  std::atomic<std::int64_t> InFlight{0};
  std::unique_ptr<Impl> M;
};

} // namespace serve
} // namespace ctp

#endif // CTP_SERVE_SERVICE_H
