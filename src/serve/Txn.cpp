//===- serve/Txn.cpp - Crash-safe transaction journal ---------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "serve/Txn.h"

#include "analysis/Incremental.h"
#include "serve/Delta.h"
#include "support/Durability.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <unistd.h>

using namespace ctp;
using namespace ctp::serve;

std::string serve::journalPath(const std::string &StateDir) {
  return StateDir + "/txn.journal";
}

std::uint64_t serve::journalChecksum(const std::string &Data) {
  std::uint64_t H = 1469598103934665603ull; // FNV-1a 64-bit offset basis
  for (unsigned char C : Data) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

namespace {

const char *kindName(JournalRecord::Kind K) {
  switch (K) {
  case JournalRecord::Kind::Begin:
    return "begin";
  case JournalRecord::Kind::Op:
    return "op";
  case JournalRecord::Kind::Commit:
    return "commit";
  case JournalRecord::Kind::Aborted:
    return "aborted";
  }
  return "?";
}

std::string hex64(std::uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)V);
  return Buf;
}

bool parseHex64(const std::string &S, std::uint64_t &Out) {
  if (S.empty() || S.size() > 16)
    return false;
  std::uint64_t V = 0;
  for (char C : S) {
    int D;
    if (C >= '0' && C <= '9')
      D = C - '0';
    else if (C >= 'a' && C <= 'f')
      D = C - 'a' + 10;
    else
      return false;
    V = (V << 4) | (std::uint64_t)D;
  }
  Out = V;
  return true;
}

bool parseDec64(const std::string &S, std::uint64_t &Out) {
  if (S.empty() || S.size() > 20)
    return false;
  std::uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + (std::uint64_t)(C - '0');
  }
  Out = V;
  return true;
}

std::string flattened(const std::string &S) {
  std::string Out = S;
  for (char &C : Out)
    if (C == '\t' || C == '\n' || C == '\r')
      C = ' ';
  return Out;
}

std::vector<std::string> splitTabs(const std::string &Line) {
  std::vector<std::string> Fields;
  std::size_t I = 0;
  while (true) {
    std::size_t J = Line.find('\t', I);
    if (J == std::string::npos) {
      Fields.push_back(Line.substr(I));
      return Fields;
    }
    Fields.push_back(Line.substr(I, J - I));
    I = J + 1;
  }
}

} // namespace

std::string serve::renderRecord(const JournalRecord &R) {
  std::string Body = kindName(R.K);
  Body += '\t';
  Body += flattened(R.Tx);
  switch (R.K) {
  case JournalRecord::Kind::Begin:
  case JournalRecord::Kind::Commit:
    Body += '\t';
    Body += std::to_string(R.Epoch);
    Body += '\t';
    Body += hex64(R.Fp);
    break;
  case JournalRecord::Kind::Op:
  case JournalRecord::Kind::Aborted:
    Body += '\t';
    Body += flattened(R.Text);
    break;
  }
  return Body + '\t' + hex64(journalChecksum(Body));
}

bool serve::parseRecord(const std::string &Line, JournalRecord &R) {
  std::vector<std::string> F = splitTabs(Line);
  if (F.size() < 2)
    return false;
  std::uint64_t Want;
  if (!parseHex64(F.back(), Want))
    return false;
  std::string Body = Line.substr(0, Line.rfind('\t'));
  if (journalChecksum(Body) != Want)
    return false;

  if (F[0] == "begin" || F[0] == "commit") {
    if (F.size() != 5)
      return false;
    R.K = F[0] == "begin" ? JournalRecord::Kind::Begin
                          : JournalRecord::Kind::Commit;
    R.Tx = F[1];
    if (!parseDec64(F[2], R.Epoch) || !parseHex64(F[3], R.Fp))
      return false;
    R.Text.clear();
    return true;
  }
  if (F[0] == "op" || F[0] == "aborted") {
    if (F.size() != 4)
      return false;
    R.K = F[0] == "op" ? JournalRecord::Kind::Op
                       : JournalRecord::Kind::Aborted;
    R.Tx = F[1];
    R.Epoch = 0;
    R.Fp = 0;
    R.Text = F[2];
    return true;
  }
  return false;
}

std::string serve::appendRecord(const std::string &Path,
                                const JournalRecord &R) {
  return durable::appendLine(Path, renderRecord(R));
}

std::string serve::scanJournal(const std::string &Path, JournalScan &Out) {
  Out = JournalScan{};
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    if (errno == ENOENT)
      return {};
    // Distinguish "absent" from "present but unreadable": the latter is
    // an I/O failure the caller must not mistake for a fresh journal.
    std::ifstream Probe(Path);
    if (!Probe)
      return {};
    return "cannot open journal '" + Path + "'";
  }
  Out.Exists = true;
  std::string Data((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  if (In.bad())
    return "i/o error reading journal '" + Path + "'";

  std::size_t I = 0;
  while (I < Data.size()) {
    std::size_t NL = Data.find('\n', I);
    if (NL == std::string::npos) {
      Out.TornTail = true; // unterminated final line: the torn append
      break;
    }
    JournalRecord R;
    if (!parseRecord(Data.substr(I, NL - I), R)) {
      Out.TornTail = true; // corrupt line: everything from here is tail
      break;
    }
    Out.Records.push_back(std::move(R));
    I = NL + 1;
    Out.GoodBytes = I;
  }
  return {};
}

std::string serve::replayJournal(const std::string &Path, facts::FactDB &DB,
                                 ReplayOutcome &Out) {
  Out = ReplayOutcome{};
  JournalScan Scan;
  if (std::string E = scanJournal(Path, Scan); !E.empty())
    return E;
  if (!Scan.Exists)
    return {};

  auto Discard = [&](const std::string &Why) -> std::string {
    Out.DiscardedJournal = true;
    Out.Warnings.push_back("discarding journal '" + Path + "': " + Why +
                           " (renamed to " + Path + ".stale)");
    if (std::rename(Path.c_str(), (Path + ".stale").c_str()) != 0)
      return "cannot rename corrupt journal '" + Path +
             "': " + std::strerror(errno);
    return {};
  };

  // Truncate a torn tail to the last good byte BEFORE any new append:
  // a recovery record written after a torn line would concatenate onto
  // it and itself become unparseable on the next restart.
  if (Scan.TornTail) {
    if (::truncate(Path.c_str(), (off_t)Scan.GoodBytes) != 0)
      return "cannot truncate torn journal '" + Path +
             "': " + std::strerror(errno);
    if (std::string E = durable::syncDirOf(Path); !E.empty())
      return E;
    Out.Warnings.push_back("journal '" + Path + "' had a torn tail; " +
                           "truncated to " + std::to_string(Scan.GoodBytes) +
                           " bytes");
  }

  // Fold. Ops are buffered per transaction and applied only when its
  // commit record arrives, so aborted and open transactions never touch
  // the database.
  std::string OpenTx;
  std::uint64_t OpenBaseEpoch = 0, OpenBaseFp = 0;
  std::vector<std::string> OpenOps;
  for (const JournalRecord &R : Scan.Records) {
    // Track the numeric suffix of every txn id ever journalled so new
    // ids never collide with an aborted or discarded predecessor's.
    if (R.Tx.size() > 1 && R.Tx[0] == 't') {
      std::uint64_t N;
      if (parseDec64(R.Tx.substr(1), N) && N + 1 > Out.NextTxnSeq)
        Out.NextTxnSeq = N + 1;
    }
    switch (R.K) {
    case JournalRecord::Kind::Begin:
      if (!OpenTx.empty())
        return Discard("begin of " + R.Tx + " while " + OpenTx + " is open");
      if (R.Epoch != Out.Epoch)
        return Discard(R.Tx + " began at epoch " + std::to_string(R.Epoch) +
                       " but the folded state is at epoch " +
                       std::to_string(Out.Epoch));
      if (R.Fp != DB.fingerprint())
        return Discard(R.Tx + "'s base fingerprint does not match the "
                              "folded facts (journal from a different "
                              "facts directory?)");
      OpenTx = R.Tx;
      OpenBaseEpoch = R.Epoch;
      OpenBaseFp = R.Fp;
      OpenOps.clear();
      break;
    case JournalRecord::Kind::Op:
      if (R.Tx != OpenTx)
        return Discard("op for " + R.Tx + " outside its transaction");
      OpenOps.push_back(R.Text);
      break;
    case JournalRecord::Kind::Commit: {
      if (R.Tx != OpenTx)
        return Discard("commit of " + R.Tx + " outside its transaction");
      analysis::InputDelta Scratch;
      if (std::string E = applyDeltaOps(OpenOps, DB, Scratch); !E.empty())
        return Discard("committed " + R.Tx + " no longer applies: " + E);
      if (R.Epoch != Out.Epoch + 1)
        return Discard(R.Tx + " committed epoch " + std::to_string(R.Epoch) +
                       " out of sequence");
      if (R.Fp != DB.fingerprint())
        return Discard(R.Tx + "'s committed fingerprint does not match "
                              "the folded facts");
      Out.Epoch = R.Epoch;
      ++Out.CommittedTxns;
      OpenTx.clear();
      OpenOps.clear();
      break;
    }
    case JournalRecord::Kind::Aborted:
      if (R.Tx != OpenTx)
        return Discard("abort of " + R.Tx + " outside its transaction");
      OpenTx.clear();
      OpenOps.clear();
      break;
    }
  }
  (void)OpenBaseEpoch;
  (void)OpenBaseFp;

  // A trailing transaction with no terminal record died mid-flight —
  // possibly mid-commit, after solving and even promoting its snapshot,
  // but before the commit record hit the disk. The commit record is the
  // commit point, so it aborts; the promoted snapshot (if any) is
  // harmless because its fingerprint no longer matches the facts.
  if (!OpenTx.empty()) {
    JournalRecord Ab;
    Ab.K = JournalRecord::Kind::Aborted;
    Ab.Tx = OpenTx;
    Ab.Text = "recovery";
    if (std::string E = appendRecord(Path, Ab); !E.empty())
      return "cannot append recovery abort to '" + Path + "': " + E;
    Out.RecoveryAbortTx = OpenTx;
    Out.Warnings.push_back("recovery-aborted open transaction " + OpenTx);
  }
  return {};
}
