//===- serve/Wire.cpp - ctp-serve framing and message model ---------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "serve/Wire.h"

#include "support/Posix.h"

#include <cstdlib>

using namespace ctp;
using namespace ctp::serve;

const char serve::StatusOk[] = "ok";
const char serve::StatusDegraded[] = "degraded";
const char serve::StatusOverloaded[] = "overloaded";
const char serve::StatusError[] = "error";
const char serve::StatusTxnAborted[] = "txn-aborted";

const char *serve::frameResultName(FrameResult R) {
  switch (R) {
  case FrameResult::Ok:
    return "ok";
  case FrameResult::Eof:
    return "eof";
  case FrameResult::TornEof:
    return "torn-eof";
  case FrameResult::TooBig:
    return "too-big";
  case FrameResult::IoError:
    return "io-error";
  }
  return "unknown";
}

FrameResult serve::readFrame(int Fd, std::string &Payload) {
  Payload.clear();
  std::uint8_t Len[4];
  int Err = 0;
  std::size_t Got = posix::readFull(Fd, Len, sizeof(Len), &Err);
  if (Got == 0 && Err == 0)
    return FrameResult::Eof;
  if (Got < sizeof(Len))
    return Err != 0 ? FrameResult::IoError : FrameResult::TornEof;
  std::uint32_t N = static_cast<std::uint32_t>(Len[0]) |
                    (static_cast<std::uint32_t>(Len[1]) << 8) |
                    (static_cast<std::uint32_t>(Len[2]) << 16) |
                    (static_cast<std::uint32_t>(Len[3]) << 24);
  if (N > MaxFrameBytes)
    return FrameResult::TooBig;
  Payload.resize(N);
  if (N != 0) {
    Got = posix::readFull(Fd, &Payload[0], N, &Err);
    if (Got < N) {
      Payload.clear();
      return Err != 0 ? FrameResult::IoError : FrameResult::TornEof;
    }
  }
  return FrameResult::Ok;
}

bool serve::writeFrame(int Fd, const std::string &Payload) {
  if (Payload.size() > MaxFrameBytes)
    return false;
  std::uint32_t N = static_cast<std::uint32_t>(Payload.size());
  // One buffer, one writeFull: interleaving a prefix write with another
  // thread's frame would corrupt the stream even under the caller's
  // mutex discipline if the two were separate syscalls on a shared fd
  // duplicated across processes.
  std::string Buf;
  Buf.reserve(4 + Payload.size());
  for (int I = 0; I < 4; ++I)
    Buf.push_back(static_cast<char>((N >> (8 * I)) & 0xff));
  Buf += Payload;
  return posix::writeFull(Fd, Buf.data(), Buf.size());
}

namespace {

bool parseCountValue(const std::string &S, std::uint64_t &Out) {
  if (S.empty() || S[0] < '0' || S[0] > '9')
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (End == S.c_str() || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace

std::string serve::parseRequest(const std::string &Payload, Request &Out) {
  Out = Request();
  std::vector<std::string> Fields;
  std::string::size_type Pos = 0;
  while (true) {
    std::string::size_type Tab = Payload.find('\t', Pos);
    Fields.push_back(Payload.substr(
        Pos, Tab == std::string::npos ? std::string::npos : Tab - Pos));
    if (Tab == std::string::npos)
      break;
    Pos = Tab + 1;
  }
  if (Fields.size() < 2)
    return "malformed request: want <id>\\t<verb>[\\t<arg>...]";
  if (Fields[0].empty())
    return "malformed request: empty id";
  if (Fields[0].find_first_of("\n\r") != std::string::npos ||
      Fields[1].find_first_of("\n\r") != std::string::npos)
    return "malformed request: newline in id or verb";
  Out.Id = Fields[0];
  Out.Verb = Fields[1];
  for (std::size_t I = 2; I < Fields.size(); ++I) {
    const std::string &F = Fields[I];
    std::string::size_type Eq = F.find('=');
    if (Eq != std::string::npos) {
      std::string Key = F.substr(0, Eq);
      std::string Val = F.substr(Eq + 1);
      std::uint64_t N = 0;
      if (Key == "deadline_ms" || Key == "max_steps") {
        if (!parseCountValue(Val, N))
          return "bad option value: " + Key + " wants a non-negative "
                                              "integer";
        (Key == "deadline_ms" ? Out.DeadlineMs : Out.MaxSteps) = N;
        continue;
      }
      return "unknown option: " + Key;
    }
    Out.Args.push_back(F);
  }
  return "";
}

std::string serve::renderResponse(const Response &R) {
  return R.Id + "\t" + R.Status + "\t" + R.Mode + "\t" +
         std::to_string(R.Epoch) + "\t" + R.Body;
}

bool serve::parseResponse(const std::string &Payload, Response &Out) {
  Out = Response();
  std::string::size_type A = Payload.find('\t');
  if (A == std::string::npos)
    return false;
  std::string::size_type B = Payload.find('\t', A + 1);
  if (B == std::string::npos)
    return false;
  std::string::size_type C = Payload.find('\t', B + 1);
  if (C == std::string::npos)
    return false;
  std::string::size_type D = Payload.find('\t', C + 1);
  if (D == std::string::npos)
    return false;
  // The body is the final field and may not contain tabs; a sixth field
  // would mean a framing bug, so reject it.
  if (Payload.find('\t', D + 1) != std::string::npos)
    return false;
  Out.Id = Payload.substr(0, A);
  Out.Status = Payload.substr(A + 1, B - A - 1);
  Out.Mode = Payload.substr(B + 1, C - B - 1);
  std::string Epoch = Payload.substr(C + 1, D - C - 1);
  if (!parseCountValue(Epoch, Out.Epoch))
    return false;
  Out.Body = Payload.substr(D + 1);
  return !Out.Id.empty() && !Out.Status.empty();
}
