//===- ctx/Domain.cpp - Interned transformation domains -------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ctx/Domain.h"

#include "support/Interner.h"

#include <cassert>
#include <unordered_map>

using namespace ctp;
using namespace ctp::ctx;

Domain::Domain(const Config &Cfg, std::vector<std::uint32_t> ClassOfHeap)
    : Cfg(Cfg), ClassOfHeap(std::move(ClassOfHeap)) {
  assert(Cfg.validate().empty() && "invalid analysis configuration");
}

CtxtElem Domain::virtualElem(std::uint32_t Heap, std::uint32_t Invoke) const {
  switch (Cfg.Flav) {
  case Flavour::CallSite:
    return elemOfEntity(Invoke);
  case Flavour::Object:
  case Flavour::Hybrid:
    return elemOfEntity(Heap);
  case Flavour::Type:
    assert(Heap < ClassOfHeap.size() && "no classOf entry for heap site");
    return elemOfEntity(ClassOfHeap[Heap]);
  }
  assert(false && "unknown flavour");
  return EntryElem;
}

CtxtElem Domain::invokeElem(std::uint32_t Invoke) const {
  if (Cfg.Flav != Flavour::Hybrid)
    return elemOfEntity(Invoke);
  // Hybrid contexts interleave heap sites and call sites; shift the call
  // sites past the heap-site range (ClassOfHeap is sized to it).
  return elemOfEntity(static_cast<std::uint32_t>(ClassOfHeap.size()) +
                      Invoke);
}

const Transformer &Domain::transformer(TransformId) const {
  assert(false && "not a transformer-string domain");
  static Transformer Dummy;
  return Dummy;
}

const CtxtPair &Domain::ctxtPair(TransformId) const {
  assert(false && "not a context-string domain");
  static CtxtPair Dummy;
  return Dummy;
}

namespace {

/// Cache key for memoized binary operations over interned ids. Dims are
/// bounded by MaxCtxtDepth (<= 7 fits in 3 bits); ids are bounded by the
/// 2^28 interned transformations this packing supports, far beyond any
/// workload in this project.
std::uint64_t binKey(std::uint32_t A, std::uint32_t B, unsigned I,
                     unsigned K) {
  assert(A < (1u << 28) && B < (1u << 28) && "transform id overflow");
  assert(I < 8 && K < 8 && "dimension overflow");
  return (static_cast<std::uint64_t>(A)) |
         (static_cast<std::uint64_t>(B) << 28) |
         (static_cast<std::uint64_t>(I) << 56) |
         (static_cast<std::uint64_t>(K) << 59);
}

/// Sentinel stored in the memo table for ⊥ results.
constexpr TransformId BottomId = UINT32_MAX;

/// Serialization helpers for exportInterned/importInterned: a CtxtVec is
/// encoded as its length followed by its elements.
void putVec(std::vector<std::uint32_t> &Out, const CtxtVec &V) {
  Out.push_back(V.size());
  for (CtxtElem E : V)
    Out.push_back(E);
}

bool getVec(const std::vector<std::uint32_t> &W, std::size_t &Pos,
            CtxtVec &V) {
  if (Pos >= W.size())
    return false;
  std::uint32_t N = W[Pos++];
  if (N > CtxtVec::capacity() || Pos + N > W.size())
    return false;
  V.clear();
  for (std::uint32_t I = 0; I < N; ++I)
    V.push_back(W[Pos++]);
  return true;
}

//===----------------------------------------------------------------------===//
// Context-string domain (Section 4.1 / left column of Figure 4)
//===----------------------------------------------------------------------===//

class CtxtStringDomain final : public Domain {
public:
  CtxtStringDomain(const Config &Cfg, std::vector<std::uint32_t> COH)
      : Domain(Cfg, std::move(COH)) {}

  TransformId record(const CtxtVec &M) override {
    return Pairs.intern(recordPair(M, Cfg.HeapDepth));
  }

  std::optional<TransformId> comp(TransformId A, TransformId B,
                                  unsigned MaxExits,
                                  unsigned MaxEntries) override {
    // Context-string composition needs no truncation: the rule schema only
    // ever joins middles of equal truncation length, and the outer strings
    // already satisfy the target bounds.
    std::uint64_t Key = binKey(A, B, MaxExits, MaxEntries);
    auto It = CompCache.find(Key);
    if (It != CompCache.end()) {
      if (It->second == BottomId)
        return std::nullopt;
      return It->second;
    }
    std::optional<CtxtPair> R = composePairs(Pairs[A], Pairs[B]);
    TransformId Id = R ? Pairs.intern(*R) : BottomId;
    CompCache.emplace(Key, Id);
    if (Id == BottomId)
      return std::nullopt;
    return Id;
  }

  TransformId inv(TransformId A) override {
    return Pairs.intern(inversePair(Pairs[A]));
  }

  TransformId mergeVirtual(std::uint32_t Heap, std::uint32_t Invoke,
                           TransformId B) override {
    const CtxtPair &P = Pairs[B];
    CtxtElem E = virtualElem(Heap, Invoke);
    CtxtVec Callee;
    Callee.push_back(E);
    // Call-site sensitivity pushes onto the *caller method context* (the
    // pair's Out); object/type sensitivity pushes onto the receiver's
    // *heap context* (the pair's In). Figure 4, left column.
    const CtxtVec &Base = Cfg.Flav == Flavour::CallSite ? P.Out : P.In;
    for (CtxtElem C : Base)
      Callee.push_back(C);
    return Pairs.intern({P.Out, Callee.takePrefix(Cfg.MethodDepth)});
  }

  TransformId mergeStatic(std::uint32_t Invoke, const CtxtVec &M) override {
    if (!staticPushesCallSite())
      return Pairs.intern({M, M}); // merge_s^c(I, M) = (M, M).
    CtxtVec Callee;
    Callee.push_back(invokeElem(Invoke));
    for (CtxtElem C : M)
      Callee.push_back(C);
    return Pairs.intern({M, Callee.takePrefix(Cfg.MethodDepth)});
  }

  CtxtVec target(TransformId Call) const override {
    return targetPair(Pairs[Call]);
  }

  TransformId globalize(TransformId B) override {
    // (U, V) -> (U, ε): keep only the heap-context side.
    return Pairs.intern({Pairs[B].In, CtxtVec()});
  }

  TransformId retarget(TransformId A, const CtxtVec &M) override {
    // (U, _) -> (U, M): the loader's own reachable context. The explicit
    // enumeration over reach is exactly the context-string redundancy the
    // transformer abstraction avoids.
    return Pairs.intern({Pairs[A].In, M});
  }

  std::size_t size() const override { return Pairs.size(); }

  std::string toString(TransformId Id,
                       const ElemPrinter &Printer) const override {
    return printCtxtPair(Pairs[Id], Printer);
  }

  const CtxtPair &ctxtPair(TransformId Id) const override {
    return Pairs[Id];
  }

  void exportInterned(std::vector<std::uint32_t> &Out) const override {
    for (std::uint32_t Id = 0; Id < Pairs.size(); ++Id) {
      const CtxtPair &P = Pairs[Id];
      putVec(Out, P.In);
      putVec(Out, P.Out);
    }
  }

  bool importInterned(const std::vector<std::uint32_t> &Words) override {
    if (Pairs.size() != 0)
      return false; // Only a fresh domain can be restored into.
    std::size_t Pos = 0;
    while (Pos < Words.size()) {
      CtxtPair P;
      if (!getVec(Words, Pos, P.In) || !getVec(Words, Pos, P.Out))
        return false;
      TransformId Expected = Pairs.size();
      if (Pairs.intern(P) != Expected)
        return false; // Duplicate value in the stream: corrupt.
    }
    return true;
  }

private:
  Interner<CtxtPair, CtxtPairHash> Pairs;
  std::unordered_map<std::uint64_t, TransformId> CompCache;
};

//===----------------------------------------------------------------------===//
// Transformer-string domain (Section 4.2 / right column of Figure 4)
//===----------------------------------------------------------------------===//

class TransformerDomain final : public Domain {
public:
  TransformerDomain(const Config &Cfg, std::vector<std::uint32_t> COH)
      : Domain(Cfg, std::move(COH)) {
    EpsilonId = Strings.intern(Transformer::identity());
  }

  TransformId record(const CtxtVec &) override {
    // record^t(_) = ε: an object is always allocated in exactly the
    // context of the allocating method — the identity transformation.
    return EpsilonId;
  }

  std::optional<TransformId> comp(TransformId A, TransformId B,
                                  unsigned MaxExits,
                                  unsigned MaxEntries) override {
    std::uint64_t Key = binKey(A, B, MaxExits, MaxEntries);
    auto It = CompCache.find(Key);
    if (It != CompCache.end()) {
      if (It->second == BottomId)
        return std::nullopt;
      return It->second;
    }
    std::optional<Transformer> R =
        composeTruncated(Strings[A], Strings[B], MaxExits, MaxEntries);
    TransformId Id = R ? Strings.intern(*R) : BottomId;
    CompCache.emplace(Key, Id);
    if (Id == BottomId)
      return std::nullopt;
    return Id;
  }

  TransformId inv(TransformId A) override {
    if (A < InvCache.size() && InvCache[A] != BottomId)
      return InvCache[A];
    TransformId R = Strings.intern(inverse(Strings[A]));
    if (InvCache.size() <= A)
      InvCache.resize(static_cast<std::size_t>(A) + 1, BottomId);
    InvCache[A] = R;
    return R;
  }

  TransformId mergeVirtual(std::uint32_t Heap, std::uint32_t Invoke,
                           TransformId B) override {
    const Transformer &T = Strings[B];
    CtxtElem E = virtualElem(Heap, Invoke);
    Transformer R;
    R.Exits = T.Entries; // B⁻¹ brings the receiver's context back...
    R.Wild = T.Wild;
    R.Entries.push_back(E);
    if (Cfg.Flav == Flavour::CallSite) {
      // ...then B re-derives the caller context and Î is pushed:
      // merge^t = trunc_{m,m}(B̌ · B̂ · Î), i.e. entries I · N.
      for (CtxtElem C : T.Entries)
        R.Entries.push_back(C);
    } else {
      // Object/type: B⁻¹ reaches the receiver's heap context, then the
      // new element is pushed: merge^t = B̌ · w · Â · Ê, entries E · A.
      for (CtxtElem C : T.Exits)
        R.Entries.push_back(C);
    }
    return Strings.intern(truncate(R, Cfg.MethodDepth, Cfg.MethodDepth));
  }

  TransformId mergeStatic(std::uint32_t Invoke, const CtxtVec &M) override {
    if (staticPushesCallSite())
      return Strings.intern(truncate(
          Transformer::entry(invokeElem(Invoke)), Cfg.MethodDepth,
          Cfg.MethodDepth));
    // Object/type: merge_s^t(I, M) = M̌·M̂, the prefix filter that forbids
    // return flow into unreachable caller contexts (Section 3).
    return Strings.intern(prefixFilter(M));
  }

  CtxtVec target(TransformId Call) const override {
    return targetPrefix(Strings[Call]);
  }

  TransformId globalize(TransformId B) override {
    // trunc_{h,0}: dropping all entries wildcards the target side unless
    // the transformation had no entries to begin with.
    return Strings.intern(truncate(Strings[B], Cfg.HeapDepth, 0));
  }

  TransformId retarget(TransformId A, const CtxtVec &M) override {
    // Ǎ·w·∅ -> Ǎ·∗·M̂: any context with prefix M may observe the value.
    Transformer R;
    R.Exits = Strings[A].Exits;
    R.Wild = true;
    R.Entries = M;
    return Strings.intern(
        truncate(R, Cfg.HeapDepth, Cfg.MethodDepth));
  }

  std::size_t size() const override { return Strings.size(); }

  std::string toString(TransformId Id,
                       const ElemPrinter &Printer) const override {
    return printTransformer(Strings[Id], Printer);
  }

  const Transformer &transformer(TransformId Id) const override {
    return Strings[Id];
  }

  void exportInterned(std::vector<std::uint32_t> &Out) const override {
    for (std::uint32_t Id = 0; Id < Strings.size(); ++Id) {
      const Transformer &T = Strings[Id];
      putVec(Out, T.Exits);
      putVec(Out, T.Entries);
      Out.push_back(T.Wild ? 1 : 0);
    }
  }

  bool importInterned(const std::vector<std::uint32_t> &Words) override {
    // A fresh transformer domain holds exactly the pre-interned identity
    // (id 0); a valid stream re-encodes it as its first value.
    if (Strings.size() != 1)
      return false;
    std::size_t Pos = 0;
    TransformId Expected = 0;
    while (Pos < Words.size()) {
      Transformer T;
      if (!getVec(Words, Pos, T.Exits) || !getVec(Words, Pos, T.Entries) ||
          Pos >= Words.size() || Words[Pos] > 1)
        return false;
      T.Wild = Words[Pos++] == 1;
      if (Strings.intern(T) != Expected)
        return false;
      ++Expected;
    }
    return Expected >= 1; // The stream must at least re-encode identity.
  }

private:
  Interner<Transformer, TransformerHash> Strings;
  TransformId EpsilonId;
  std::unordered_map<std::uint64_t, TransformId> CompCache;
  std::vector<TransformId> InvCache;
};

} // namespace

std::unique_ptr<Domain>
ctx::makeDomain(const Config &Cfg, std::vector<std::uint32_t> ClassOfHeap) {
  if (Cfg.Abs == Abstraction::ContextString)
    return std::make_unique<CtxtStringDomain>(Cfg, std::move(ClassOfHeap));
  return std::make_unique<TransformerDomain>(Cfg, std::move(ClassOfHeap));
}
