//===- ctx/ContextString.h - Traditional context-string pairs ---*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The traditional context-string abstraction of context transformations
/// (Section 4.1 of the paper): a pair (A, B) of truncated context strings,
/// read as "maps any method context with prefix A to the set of contexts
/// with prefix B". This is the representation used by Doop-style
/// context-sensitive analyses; the paper shows it is the explicit
/// enumeration of the input/output values of context transformations.
///
/// Composition is an equality join on the shared middle string:
/// comp^c((U,V), (V,W), (U,W)); inverse swaps the pair.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CTX_CONTEXTSTRING_H
#define CTP_CTX_CONTEXTSTRING_H

#include "ctx/Ctxt.h"

#include <optional>

namespace ctp {
namespace ctx {

/// A context-string pair (A, B) ∈ CtxtTc_{i,j}.
struct CtxtPair {
  CtxtVec In;  ///< A — truncated context at the transformation's source.
  CtxtVec Out; ///< B — truncated context at the transformation's target.

  friend bool operator==(const CtxtPair &X, const CtxtPair &Y) {
    return X.In == Y.In && X.Out == Y.Out;
  }
  friend bool operator!=(const CtxtPair &X, const CtxtPair &Y) {
    return !(X == Y);
  }

  std::uint64_t hash() const {
    return hashCombine(In.hash(), Out.hash());
  }
};

struct CtxtPairHash {
  std::size_t operator()(const CtxtPair &P) const {
    return static_cast<std::size_t>(P.hash());
  }
};

/// comp^c: succeeds iff the middles agree exactly (both operands are
/// truncated to the same middle length by the rule schema, so equality is
/// the correct prefix-set test).
inline std::optional<CtxtPair> composePairs(const CtxtPair &A,
                                            const CtxtPair &B) {
  if (A.Out != B.In)
    return std::nullopt;
  return CtxtPair{A.In, B.Out};
}

/// inv^c((U,V)) = (V,U).
inline CtxtPair inversePair(const CtxtPair &P) { return {P.Out, P.In}; }

/// target^c((U,V)) = V.
inline const CtxtVec &targetPair(const CtxtPair &P) { return P.Out; }

/// record^c(M) = (prefix_h(M), M).
inline CtxtPair recordPair(const CtxtVec &M, unsigned H) {
  return {M.takePrefix(H), M};
}

/// Renders "(A -> B)" debug output.
std::string printCtxtPair(const CtxtPair &P,
                          const ElemPrinter &Printer = printElemDefault);

} // namespace ctx
} // namespace ctp

#endif // CTP_CTX_CONTEXTSTRING_H
