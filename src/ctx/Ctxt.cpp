//===- ctx/Ctxt.cpp - Context element printing ----------------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ctx/Ctxt.h"

using namespace ctp;
using namespace ctp::ctx;

std::string ctx::printElemDefault(CtxtElem E) {
  if (E == EntryElem)
    return "entry";
  return "#" + std::to_string(entityOfElem(E));
}

std::string ctx::printCtxtVec(const CtxtVec &V, const ElemPrinter &Printer) {
  std::string Out = "[";
  for (unsigned I = 0; I < V.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += Printer(V[I]);
  }
  Out += "]";
  return Out;
}
