//===- ctx/CutShortcut.cpp - Cut-edge detection and shortcut plan ---------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ctx/CutShortcut.h"

#include <vector>

using namespace ctp;
using namespace ctp::ctx;
using facts::FactDB;
using facts::Id;

namespace {

/// Per-variable occurrence census. A variable is "dirty" when it appears
/// anywhere other than as a plain-assignment endpoint, a single formal
/// fact, or a return fact of its own method — any such occurrence makes
/// the value flow through it observable outside the forwarded chain, so
/// no chain containing it may be cut.
struct Census {
  std::vector<bool> Dirty;
  std::vector<std::uint8_t> FormalCount; // saturating at 2
  std::vector<bool> HasReturn;

  explicit Census(const FactDB &DB)
      : Dirty(DB.numVars(), false), FormalCount(DB.numVars(), 0),
        HasReturn(DB.numVars(), false) {
    auto Mark = [&](Id V) {
      if (V < Dirty.size())
        Dirty[V] = true;
    };
    for (const auto &F : DB.Actuals)
      Mark(F.Var);
    for (const auto &F : DB.Loads) {
      Mark(F.Base);
      Mark(F.To);
    }
    for (const auto &F : DB.Stores) {
      Mark(F.From);
      Mark(F.Base);
    }
    for (const auto &F : DB.Casts) {
      Mark(F.From);
      Mark(F.To);
    }
    for (const auto &F : DB.VirtualInvokes)
      Mark(F.Receiver);
    for (const auto &F : DB.GlobalStores)
      Mark(F.From);
    for (const auto &F : DB.GlobalLoads)
      Mark(F.To);
    for (const auto &F : DB.Throws)
      Mark(F.Var);
    for (const auto &F : DB.Catches)
      Mark(F.To);
    for (const auto &F : DB.AssignReturns)
      Mark(F.To);
    for (const auto &F : DB.AssignNews)
      Mark(F.To);
    for (const auto &F : DB.ThisVars)
      Mark(F.Var);
    for (const auto &F : DB.Formals)
      if (F.Var < FormalCount.size() && FormalCount[F.Var] < 2)
        ++FormalCount[F.Var];
    for (const auto &F : DB.Returns) {
      if (F.Var >= HasReturn.size())
        continue;
      HasReturn[F.Var] = true;
      // A return fact for a method other than the declaring one would
      // leak the chain's values into an unrelated method's callers.
      if (F.Var >= DB.VarParent.size() || DB.VarParent[F.Var] != F.Method)
        Dirty[F.Var] = true;
    }
  }
};

} // namespace

CutShortcutPlan ctx::buildCutShortcutPlan(const FactDB &DB) {
  CutShortcutPlan Plan;
  const std::size_t NVars = DB.numVars();
  if (NVars == 0)
    return Plan;

  Census C(DB);

  // Plain-assignment adjacency, both directions (forward for the closure,
  // backward to detect contributions entering the chain from outside it).
  std::vector<std::vector<Id>> Out(NVars), In(NVars);
  for (const auto &A : DB.Assigns) {
    if (A.From >= NVars || A.To >= NVars)
      continue;
    Out[A.From].push_back(A.To);
    In[A.To].push_back(A.From);
  }

  std::vector<bool> InS(NVars, false);
  std::vector<Id> Stack, Members;

  for (const auto &F : DB.Formals) {
    if (F.Var >= NVars || F.Var >= DB.VarParent.size())
      continue;
    const Id P = F.Method;
    if (DB.VarParent[F.Var] != P)
      continue;

    // Forward closure over plain assignments, rooted at the formal.
    Members.clear();
    Stack.assign(1, F.Var);
    InS[F.Var] = true;
    Members.push_back(F.Var);
    while (!Stack.empty()) {
      Id V = Stack.back();
      Stack.pop_back();
      for (Id W : Out[V])
        if (!InS[W]) {
          InS[W] = true;
          Members.push_back(W);
          Stack.push_back(W);
        }
    }

    // Eligibility: every member is clean, stays inside P, receives
    // assignments only from other members, and is a formal only if it is
    // the root itself (exactly once).
    bool Eligible = true;
    bool ReachesReturn = false;
    for (Id V : Members) {
      if (C.Dirty[V] || DB.VarParent[V] != P ||
          C.FormalCount[V] != (V == F.Var ? 1 : 0)) {
        Eligible = false;
        break;
      }
      bool ExternalIn = false;
      for (Id U : In[V])
        if (!InS[U]) {
          ExternalIn = true;
          break;
        }
      if (ExternalIn) {
        Eligible = false;
        break;
      }
      ReachesReturn = ReachesReturn || C.HasReturn[V];
    }

    if (Eligible && ReachesReturn) {
      Plan.addShortcut(P, F.Ordinal);
      for (Id V : Members)
        if (C.HasReturn[V])
          Plan.addCutReturn(P, V);
    }

    for (Id V : Members)
      InS[V] = false;
  }
  return Plan;
}
