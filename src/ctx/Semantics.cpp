//===- ctx/Semantics.cpp - Concrete transformation semantics --------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ctx/Semantics.h"

using namespace ctp;
using namespace ctp::ctx;

namespace {

/// True iff \p P is a prefix of \p C.
bool isPrefix(const ConcreteCtxt &P, const ConcreteCtxt &C) {
  if (P.size() > C.size())
    return false;
  for (std::size_t I = 0; I < P.size(); ++I)
    if (P[I] != C[I])
      return false;
  return true;
}

} // namespace

bool ctx::prefixSetSubset(const PrefixSet &A, const PrefixSet &B) {
  if (A.isEmpty())
    return true;
  if (B.isEmpty())
    return false;
  if (B.K == PrefixSet::Kind::All) {
    // A ⊆ All(p) iff A's prefix extends p.
    return isPrefix(B.Prefix, A.Prefix);
  }
  // B is a single context; A must be exactly that context.
  return A.K == PrefixSet::Kind::Exact && A.Prefix == B.Prefix;
}

PrefixSet ctx::applyTransformer(const Transformer &T, const PrefixSet &X) {
  if (X.isEmpty())
    return PrefixSet::empty();

  // Step 1: drop T.Exits from the front of every context in X.
  ConcreteCtxt Rest = X.Prefix;
  bool RestIsAll = X.K == PrefixSet::Kind::All;
  for (unsigned I = 0; I < T.Exits.size(); ++I) {
    CtxtElem E = T.Exits[I];
    if (!Rest.empty()) {
      if (Rest.front() != E)
        return PrefixSet::empty();
      Rest.erase(Rest.begin());
      continue;
    }
    // The known prefix is exhausted. An exact context cannot be popped
    // further; an "all with prefix" set still contains contexts starting
    // with E, and popping leaves all contexts again.
    if (!RestIsAll)
      return PrefixSet::empty();
    // Rest stays empty: All([]) pops to All([]).
  }

  // Step 2: wildcard forgets everything (the input is non-empty here).
  if (T.Wild) {
    RestIsAll = true;
    Rest.clear();
  }

  // Step 3: push T.Entries on top.
  ConcreteCtxt Out(T.Entries.begin(), T.Entries.end());
  Out.insert(Out.end(), Rest.begin(), Rest.end());
  return RestIsAll ? PrefixSet::allWithPrefix(std::move(Out))
                   : PrefixSet::exact(std::move(Out));
}

PrefixSet ctx::applyCtxtPair(const CtxtPair &P, const PrefixSet &X) {
  if (X.isEmpty())
    return PrefixSet::empty();
  ConcreteCtxt A(P.In.begin(), P.In.end());
  // Does X intersect "all contexts with prefix A"?
  bool Intersects;
  if (X.K == PrefixSet::Kind::Exact)
    Intersects = isPrefix(A, X.Prefix);
  else
    Intersects = isPrefix(A, X.Prefix) || isPrefix(X.Prefix, A);
  if (!Intersects)
    return PrefixSet::empty();
  return PrefixSet::allWithPrefix(
      ConcreteCtxt(P.Out.begin(), P.Out.end()));
}
