//===- ctx/Semantics.h - Concrete transformation semantics ------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable semantics of abstract context transformations over sets of
/// *untruncated* method contexts (P(Ctxt*) in Section 4 of the paper).
///
/// Both abstractions only ever denote three shapes of context sets: the
/// empty set, a single exact context, or the (infinite) set of all contexts
/// sharing a finite prefix. The PrefixSet type represents these shapes
/// exactly, which lets the property tests check algebraic laws (Lemma 4.1:
/// `match` preserves meaning; Lemma 4.2: `trunc` only grows the image;
/// inverse-semigroup identities) by direct evaluation instead of sampling
/// alone.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CTX_SEMANTICS_H
#define CTP_CTX_SEMANTICS_H

#include "ctx/ContextString.h"
#include "ctx/Ctxt.h"
#include "ctx/TransformerString.h"

#include <vector>

namespace ctp {
namespace ctx {

/// An untruncated concrete method context (arbitrary length).
using ConcreteCtxt = std::vector<CtxtElem>;

/// A set of concrete contexts of one of three shapes.
struct PrefixSet {
  enum class Kind : std::uint8_t {
    Empty, ///< ∅ (the image of the error context).
    Exact, ///< A single context {Prefix}.
    All,   ///< Every context with the given (possibly empty) prefix.
  };
  Kind K = Kind::Empty;
  ConcreteCtxt Prefix;

  static PrefixSet empty() { return PrefixSet(); }
  static PrefixSet exact(ConcreteCtxt C) {
    return {Kind::Exact, std::move(C)};
  }
  static PrefixSet allWithPrefix(ConcreteCtxt C) {
    return {Kind::All, std::move(C)};
  }

  bool isEmpty() const { return K == Kind::Empty; }

  friend bool operator==(const PrefixSet &A, const PrefixSet &B) {
    if (A.K != B.K)
      return false;
    if (A.K == Kind::Empty)
      return true;
    return A.Prefix == B.Prefix;
  }
};

/// True iff every context in \p A is also in \p B.
bool prefixSetSubset(const PrefixSet &A, const PrefixSet &B);

/// Applies a transformer string to a context set.
PrefixSet applyTransformer(const Transformer &T, const PrefixSet &X);

/// Applies a context-string pair to a context set: (A,B)(X) is "all
/// contexts with prefix B" when X intersects "all contexts with prefix A",
/// and empty otherwise (Section 4.1).
PrefixSet applyCtxtPair(const CtxtPair &P, const PrefixSet &X);

/// Convenience: applies to a single exact context.
inline PrefixSet applyTransformer(const Transformer &T,
                                  const ConcreteCtxt &C) {
  return applyTransformer(T, PrefixSet::exact(C));
}

} // namespace ctx
} // namespace ctp

#endif // CTP_CTX_SEMANTICS_H
