//===- ctx/Config.h - Analysis configuration --------------------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three dimensions that characterize an instantiation of the
/// parameterized deduction rules (Section 5): the abstraction of context
/// transformations, the flavour of context sensitivity, and the levels m
/// (method contexts) and h (heap contexts). Figure 6 of the paper
/// evaluates 1-call, 1-call+H, 1-object, 2-object+H, and 2-type+H; helpers
/// for those named configurations are provided.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CTX_CONFIG_H
#define CTP_CTX_CONFIG_H

#include "ctx/Ctxt.h"

#include <string>
#include <vector>

namespace ctp {
namespace ctx {

/// How context transformations are represented.
enum class Abstraction : std::uint8_t {
  ContextString,     ///< Traditional (A, B) pairs (Section 4.1).
  TransformerString, ///< The paper's canonical Ǎ·w·B̂ strings (Section 4.2).
};

/// What the elemental contexts are.
enum class Flavour : std::uint8_t {
  CallSite, ///< Ctxt = invocation sites (k-CFA style) [14].
  Object,   ///< Ctxt = heap allocation sites; full object sensitivity [11].
  Type,     ///< Ctxt = class types (type sensitivity) [15].
  /// Hybrid object/call-site sensitivity in the style of Kastrinis &
  /// Smaragdakis [6] (the paper notes context-string formulations "exist
  /// for a wide variety of contexts ... and combinations thereof"):
  /// virtual invocations use the receiver's allocation site, static
  /// invocations push the call site. Context elements mix both entity
  /// kinds (disjointly encoded).
  Hybrid,
};

/// How the solver propagates value flow. The classic mode runs the
/// Figure 3 rules with context transformations; the other two replace
/// contexts entirely and therefore require m = h = 0.
enum class Mode : std::uint8_t {
  Contexts,    ///< Figure 3 deduction rules with context transformations.
  CutShortcut, ///< Cut parameter/return flows, install shortcut edges
               ///< per call site instead of cloning contexts
               ///< ("Context Sensitivity without Contexts").
  Unify,       ///< Steensgaard-style unification with type-filtered
               ///< merges as the oversharing control; a floor cheaper
               ///< than the insensitive Andersen solve.
};

/// One analysis configuration.
struct Config {
  Abstraction Abs = Abstraction::TransformerString;
  Flavour Flav = Flavour::Object;
  unsigned MethodDepth = 1; ///< m — levels of method context.
  unsigned HeapDepth = 0;   ///< h — levels of heap context.
  Mode SolveMode = Mode::Contexts;

  /// Checks the side conditions of Figure 3: 0 <= h <= m for call-site
  /// sensitivity, h = m - 1 for object (and type) sensitivity, and the
  /// depths are within this implementation's MaxCtxtDepth. The contextless
  /// modes (cutshortcut, unify) additionally require m = h = 0.
  /// \returns an empty string if valid.
  std::string validate() const;

  /// "2-object+H(ts)" style display name ("cutshortcut(ts)" /
  /// "unify(ts)" for the contextless modes).
  std::string name() const;
};

/// The five configurations of Figure 6, with the given abstraction.
Config oneCall(Abstraction A);
Config oneCallH(Abstraction A);
Config oneObject(Abstraction A);
Config twoObjectH(Abstraction A);
Config twoTypeH(Abstraction A);
/// 2-hybrid+H: object contexts for virtual dispatch, call-site pushes for
/// static invocations (an extension beyond Figure 6's configurations).
Config twoHybridH(Abstraction A);

/// A context-insensitive configuration (m = h = 0, call-site flavour),
/// used as the baseline oracle alongside the CFL-reachability solver.
Config insensitive(Abstraction A);

/// Cut-shortcut: context-grade precision on parameter/return flow at
/// insensitive cost — no contexts are cloned; eligible return flows are
/// cut and replaced by per-call-site shortcut edges.
Config cutShortcut(Abstraction A);

/// Unification: Steensgaard-style union-find solve, the cheapest rung of
/// the degradation ladder (coarser than insensitive).
Config unification(Abstraction A);

const char *abstractionName(Abstraction A);
const char *flavourName(Flavour F);
const char *modeName(Mode M);

/// The command-line names of the named configurations, in ladder order
/// (most precise first, "unify" last). Shared by every tool that accepts
/// a --config flag, so the accepted vocabulary cannot drift.
const std::vector<std::string> &configNames();

/// Resolves a command-line configuration name ("2-object+H", "1-call",
/// "insensitive", ...) to its Config with the given abstraction.
/// \returns false if \p Name is not one of configNames().
bool configByName(const std::string &Name, Abstraction A, Config &Out);

} // namespace ctx
} // namespace ctp

#endif // CTP_CTX_CONFIG_H
