//===- ctx/Config.cpp - Analysis configuration ----------------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ctx/Config.h"

using namespace ctp;
using namespace ctp::ctx;

std::string Config::validate() const {
  if (MethodDepth > MaxCtxtDepth || HeapDepth > MaxCtxtDepth)
    return "context depth exceeds MaxCtxtDepth";
  if (SolveMode != Mode::Contexts && (MethodDepth != 0 || HeapDepth != 0))
    return "contextless modes (cutshortcut, unify) require m = h = 0";
  if (Flav == Flavour::CallSite) {
    if (HeapDepth > MethodDepth)
      return "call-site sensitivity requires h <= m";
    return "";
  }
  // Object, type, and hybrid sensitivity: Figure 3 assumes 0 <= h = m - 1
  // (except the degenerate insensitive configuration m = h = 0).
  if (MethodDepth == 0 && HeapDepth == 0)
    return "";
  if (HeapDepth + 1 != MethodDepth)
    return "object/type sensitivity requires h = m - 1";
  return "";
}

std::string Config::name() const {
  if (SolveMode != Mode::Contexts) {
    std::string N = modeName(SolveMode);
    N += Abs == Abstraction::ContextString ? "(cs)" : "(ts)";
    return N;
  }
  std::string N = std::to_string(MethodDepth);
  switch (Flav) {
  case Flavour::CallSite:
    N += "-call";
    break;
  case Flavour::Object:
    N += "-object";
    break;
  case Flavour::Type:
    N += "-type";
    break;
  case Flavour::Hybrid:
    N += "-hybrid";
    break;
  }
  if (HeapDepth > 0)
    N += "+H";
  N += Abs == Abstraction::ContextString ? "(cs)" : "(ts)";
  return N;
}

Config ctx::oneCall(Abstraction A) {
  return {A, Flavour::CallSite, 1, 0};
}
Config ctx::oneCallH(Abstraction A) {
  return {A, Flavour::CallSite, 1, 1};
}
Config ctx::oneObject(Abstraction A) {
  return {A, Flavour::Object, 1, 0};
}
Config ctx::twoObjectH(Abstraction A) {
  return {A, Flavour::Object, 2, 1};
}
Config ctx::twoTypeH(Abstraction A) {
  return {A, Flavour::Type, 2, 1};
}
Config ctx::twoHybridH(Abstraction A) {
  return {A, Flavour::Hybrid, 2, 1};
}
Config ctx::insensitive(Abstraction A) {
  return {A, Flavour::CallSite, 0, 0};
}
Config ctx::cutShortcut(Abstraction A) {
  return {A, Flavour::CallSite, 0, 0, Mode::CutShortcut};
}
Config ctx::unification(Abstraction A) {
  return {A, Flavour::CallSite, 0, 0, Mode::Unify};
}

const std::vector<std::string> &ctx::configNames() {
  static const std::vector<std::string> Names = {
      "2-object+H", "2-hybrid+H", "2-type+H",   "1-object",   "1-call+H",
      "1-call",     "cutshortcut", "insensitive", "unify"};
  return Names;
}

bool ctx::configByName(const std::string &Name, Abstraction A, Config &Out) {
  if (Name == "1-call")
    Out = oneCall(A);
  else if (Name == "1-call+H")
    Out = oneCallH(A);
  else if (Name == "1-object")
    Out = oneObject(A);
  else if (Name == "2-object+H")
    Out = twoObjectH(A);
  else if (Name == "2-type+H")
    Out = twoTypeH(A);
  else if (Name == "2-hybrid+H")
    Out = twoHybridH(A);
  else if (Name == "cutshortcut")
    Out = cutShortcut(A);
  else if (Name == "insensitive")
    Out = insensitive(A);
  else if (Name == "unify")
    Out = unification(A);
  else
    return false;
  return true;
}

const char *ctx::abstractionName(Abstraction A) {
  switch (A) {
  case Abstraction::ContextString:
    return "context-string";
  case Abstraction::TransformerString:
    return "transformer-string";
  }
  return "unknown";
}

const char *ctx::modeName(Mode M) {
  switch (M) {
  case Mode::Contexts:
    return "contexts";
  case Mode::CutShortcut:
    return "cutshortcut";
  case Mode::Unify:
    return "unify";
  }
  return "unknown";
}

const char *ctx::flavourName(Flavour F) {
  switch (F) {
  case Flavour::CallSite:
    return "call-site";
  case Flavour::Object:
    return "object";
  case Flavour::Type:
    return "type";
  case Flavour::Hybrid:
    return "hybrid";
  }
  return "unknown";
}
