//===- ctx/ContextString.cpp - Context-string pair printing ---------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ctx/ContextString.h"

using namespace ctp;
using namespace ctp::ctx;

std::string ctx::printCtxtPair(const CtxtPair &P, const ElemPrinter &Printer) {
  return "(" + printCtxtVec(P.In, Printer) + " -> " +
         printCtxtVec(P.Out, Printer) + ")";
}
