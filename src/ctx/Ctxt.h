//===- ctx/Ctxt.h - Context elements and context vectors --------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The elemental context domain Ctxt of Section 3 of the paper. Depending
/// on the flavour of context sensitivity an element denotes a call site
/// (call-site sensitivity), a heap allocation site (object sensitivity), or
/// a class type (type sensitivity); the analysis encodes the underlying
/// entity id into a CtxtElem uniformly, reserving 0 for the special `entry`
/// element that seeds contexts of program entry points.
///
/// A CtxtVec is a k-limited context string over Ctxt ("top-most element
/// first"), bounded by the maximum supported context depth.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CTX_CTXT_H
#define CTP_CTX_CTXT_H

#include "support/BoundedVector.h"

#include <cstdint>
#include <functional>
#include <string>

namespace ctp {
namespace ctx {

/// One element of a context string.
using CtxtElem = std::uint32_t;

/// The special element used for contexts of program entry points
/// (reach(main, [entry]) in Figure 3).
constexpr CtxtElem EntryElem = 0;

/// Maximum supported context depth. Configurations use m, h <= 4; the
/// vector capacity of 8 leaves headroom for pre-truncation intermediates
/// inside transformer-string composition (entries of both operands can
/// briefly concatenate).
constexpr unsigned MaxCtxtDepth = 4;

/// A (possibly truncated) context string, top-most element first.
using CtxtVec = BoundedVector<CtxtElem, 8>;

/// Encodes a program-entity id (invocation site / heap site / type) as a
/// context element. Ids are shifted by one so 0 remains the entry element.
inline CtxtElem elemOfEntity(std::uint32_t EntityId) { return EntityId + 1; }

/// Inverse of elemOfEntity. Must not be called on EntryElem.
inline std::uint32_t entityOfElem(CtxtElem E) {
  assert(E != EntryElem && "entry element has no underlying entity");
  return E - 1;
}

/// Callback rendering a context element as a human-readable name.
using ElemPrinter = std::function<std::string(CtxtElem)>;

/// Default element printer: "entry" or "#<entity id>".
std::string printElemDefault(CtxtElem E);

/// Renders a context vector as "[e1, e2, ...]".
std::string printCtxtVec(const CtxtVec &V,
                         const ElemPrinter &Printer = printElemDefault);

struct CtxtVecHash {
  std::size_t operator()(const CtxtVec &V) const {
    return static_cast<std::size_t>(V.hash());
  }
};

} // namespace ctx
} // namespace ctp

#endif // CTP_CTX_CTXT_H
