//===- ctx/CutShortcut.h - Cut-edge detection and shortcut plan -*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The planning half of the cut-shortcut flavour ("Context Sensitivity
/// without Contexts", arXiv 2304.12034): instead of cloning contexts, the
/// solver *cuts* the return-value flow of methods that merely forward a
/// parameter to their return value and installs per-call-site *shortcut*
/// edges actual -> assign_return, recovering the context-sensitive
/// answer for those flows at context-insensitive cost.
///
/// Eligibility is deliberately strict so the transformation is exactly
/// precision-recovering, never sound-ness-changing: a formal (P, O) earns
/// a shortcut only when its forward closure over *intra-method plain
/// assignments* reaches a return variable of P and every variable in the
/// closure is untouched by anything else — no casts, loads, stores,
/// nested calls, globals, throws, or assignments from outside the
/// closure. Under that restriction every value a cut return variable can
/// carry entered through this one formal, so (a) skipping the RET rule
/// for the cut (method, return-var) pairs loses nothing that the
/// shortcut edges do not re-deliver, and (b) every shortcut-derived
/// tuple is derivable by the insensitive analysis (actual -> PARAM ->
/// ASSIGN* -> RET), giving cutshortcut ⊆ insensitive.
///
/// The plan is computed from the FactDB alone, so the verifier can
/// recompute it independently of the solver when checking closure and
/// support certificates.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CTX_CUTSHORTCUT_H
#define CTP_CTX_CUTSHORTCUT_H

#include "facts/FactDB.h"

#include <cstdint>
#include <unordered_set>

namespace ctp {
namespace ctx {

/// The cut/shortcut decisions for one fact database: which formals get a
/// shortcut edge installed per call site, and which (method, return-var)
/// pairs have their RET flow cut in exchange.
class CutShortcutPlan {
public:
  /// True when formal ordinal \p Ord of \p Method carries a shortcut:
  /// calls to \p Method forward the actual at \p Ord directly into the
  /// call's assign_return targets.
  bool hasShortcut(facts::Id Method, facts::Id Ord) const {
    return Shortcuts.count(key(Method, Ord)) != 0;
  }

  /// True when return variable \p Var of \p Method is cut: the solver
  /// must skip the RET rule for this pair (its flows are re-delivered,
  /// per call site, by the shortcut edges).
  bool isCutReturn(facts::Id Method, facts::Id Var) const {
    return CutReturns.count(key(Method, Var)) != 0;
  }

  std::size_t numShortcuts() const { return Shortcuts.size(); }
  std::size_t numCutReturns() const { return CutReturns.size(); }

  void addShortcut(facts::Id Method, facts::Id Ord) {
    Shortcuts.insert(key(Method, Ord));
  }
  void addCutReturn(facts::Id Method, facts::Id Var) {
    CutReturns.insert(key(Method, Var));
  }

private:
  static std::uint64_t key(facts::Id A, facts::Id B) {
    return (static_cast<std::uint64_t>(A) << 32) | B;
  }
  std::unordered_set<std::uint64_t> Shortcuts;
  std::unordered_set<std::uint64_t> CutReturns;
};

/// Detects the cut edges of \p DB. Deterministic: depends only on fact
/// content, not container order.
CutShortcutPlan buildCutShortcutPlan(const facts::FactDB &DB);

} // namespace ctx
} // namespace ctp

#endif // CTP_CTX_CUTSHORTCUT_H
