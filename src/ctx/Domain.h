//===- ctx/Domain.h - Interned transformation domains -----------*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime interface between the deduction rules of Figure 3 and the
/// non-logical symbols of Figure 4 (comp, inv, target, record, merge,
/// merge_s), instantiated for one abstraction × flavour × (m, h)
/// configuration.
///
/// Abstract transformations are interned to dense 32-bit ids so derived
/// relations are flat integer tuples; composition and inverse are memoized
/// per id pair. This interning + memoization plays the role of the paper's
/// Section-7 decomposition of transformer strings into per-configuration
/// relations: joins bind whole transformation ids instead of re-parsing
/// string structure.
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CTX_DOMAIN_H
#define CTP_CTX_DOMAIN_H

#include "ctx/Config.h"
#include "ctx/ContextString.h"
#include "ctx/Ctxt.h"
#include "ctx/TransformerString.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ctp {
namespace ctx {

/// Dense id of an interned abstract context transformation.
using TransformId = std::uint32_t;

/// Flavour-instantiated, interned context-transformation domain.
///
/// Method contexts appearing as explicit arguments (record's M, merge_s's
/// M, target's result) are truncated context strings in CtxtM (length <=
/// m); they are the reach(P, M) attribute of Figure 3.
class Domain {
public:
  /// \p ClassOfHeap maps heap-site ids to declaring-class ids; required by
  /// type sensitivity (classOf(H)) and ignored otherwise.
  Domain(const Config &Cfg, std::vector<std::uint32_t> ClassOfHeap);
  virtual ~Domain() = default;

  Domain(const Domain &) = delete;
  Domain &operator=(const Domain &) = delete;

  const Config &config() const { return Cfg; }

  /// record(M): the transformation attached to a heap allocation observed
  /// under reachable-context prefix \p M. Result lives in CtxtT_{h,m}.
  virtual TransformId record(const CtxtVec &M) = 0;

  /// comp: function composition A;B truncated into CtxtT_{MaxExits,
  /// MaxEntries}. \returns nullopt when the composition is ⊥ (transformer
  /// strings) or the middles disagree (context strings); such facts are
  /// never derived, matching the paper's comp predicate.
  virtual std::optional<TransformId> comp(TransformId A, TransformId B,
                                          unsigned MaxExits,
                                          unsigned MaxEntries) = 0;

  /// Semigroup inverse.
  virtual TransformId inv(TransformId A) = 0;

  /// merge: the call-edge transformation of a virtual invocation \p Invoke
  /// whose receiver points to heap site \p Heap under transformation \p B.
  /// Result lives in CtxtT_{m,m}.
  virtual TransformId mergeVirtual(std::uint32_t Heap, std::uint32_t Invoke,
                                   TransformId B) = 0;

  /// merge_s: the call-edge transformation of a static invocation
  /// \p Invoke occurring in a method reachable under prefix \p M.
  virtual TransformId mergeStatic(std::uint32_t Invoke,
                                  const CtxtVec &M) = 0;

  /// target: the known prefix of the callee's method context given a call
  /// edge's transformation; feeds reach(P, M).
  virtual CtxtVec target(TransformId Call) const = 0;

  // --- Static-field extension (the paper's implementation supports
  // static fields; Figure 3 elides them). Data through a global severs
  // the link between storing and loading method contexts. ---

  /// globalize: projects the target context out of \p B; the result lives
  /// in CtxtT_{h,0} and qualifies a global-field points-to fact by the
  /// pointee's heap context only.
  virtual TransformId globalize(TransformId B) = 0;

  /// retarget: re-enters a concrete method context: the returned
  /// transformation maps whatever \p A accepted into (any context with
  /// prefix) \p M. Used when loading a global inside a method reachable
  /// under prefix M.
  virtual TransformId retarget(TransformId A, const CtxtVec &M) = 0;

  /// Number of distinct transformations interned so far.
  virtual std::size_t size() const = 0;

  /// Debug rendering of an interned transformation.
  virtual std::string toString(TransformId Id,
                               const ElemPrinter &Printer) const = 0;
  std::string toString(TransformId Id) const {
    return toString(Id, printElemDefault);
  }

  // --- Checkpoint serialization (analysis/Checkpoint.h). ---

  /// Flattens every interned transformation, in id order, into \p Out as
  /// a self-delimiting u32 stream. Because interning assigns dense ids in
  /// first-seen order, re-importing the stream into a fresh domain of the
  /// same configuration reproduces the id assignment exactly — which is
  /// what lets a resumed run keep using TransformIds from the snapshot.
  virtual void exportInterned(std::vector<std::uint32_t> &Out) const = 0;

  /// Rebuilds the interner from an exportInterned stream. Must be called
  /// on a freshly constructed domain. \returns false when the stream is
  /// malformed or the reproduced ids diverge from their position (a
  /// corruption guard); the domain must then be discarded. Memoization
  /// caches are not restored — they refill lazily on use without
  /// affecting results.
  virtual bool importInterned(const std::vector<std::uint32_t> &Words) = 0;

  // --- Concrete-value access for tests and the precision comparisons. ---

  /// The transformer string behind \p Id; asserts on a context-string
  /// domain.
  virtual const Transformer &transformer(TransformId Id) const;

  /// The context-string pair behind \p Id; asserts on a transformer
  /// domain.
  virtual const CtxtPair &ctxtPair(TransformId Id) const;

protected:
  /// The context element contributed by a virtual invocation: the call
  /// site under call-site sensitivity, the receiver heap site under
  /// object and hybrid sensitivity, classOf(heap site) under type
  /// sensitivity.
  CtxtElem virtualElem(std::uint32_t Heap, std::uint32_t Invoke) const;

  /// The context element for an invocation site used by static-call
  /// merges. Under hybrid sensitivity call-site elements are offset past
  /// the heap-site element range so the two entity kinds cannot collide
  /// within one context string.
  CtxtElem invokeElem(std::uint32_t Invoke) const;

  /// True when merge_s pushes a call-site element (call-site and hybrid
  /// flavours); false when it is the context-preserving prefix filter
  /// (object and type flavours).
  bool staticPushesCallSite() const {
    return Cfg.Flav == Flavour::CallSite || Cfg.Flav == Flavour::Hybrid;
  }

  Config Cfg;
  std::vector<std::uint32_t> ClassOfHeap;
};

/// Creates the domain implementation selected by \p Cfg.Abs.
std::unique_ptr<Domain> makeDomain(const Config &Cfg,
                                   std::vector<std::uint32_t> ClassOfHeap);

} // namespace ctx
} // namespace ctp

#endif // CTP_CTX_DOMAIN_H
