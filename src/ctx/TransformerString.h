//===- ctx/TransformerString.h - The paper's novel abstraction --*- C++ -*-===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transformer strings (Section 4.2 of the paper): canonical
/// representations of context transformations as a sequence of exit
/// letters, an optional wildcard, and a sequence of entry letters —
/// "Ǎ·w·B̂" with w in {∗, ε}. A transformer (Exits=A, Wild=w, Entries=B)
/// applied to a method context M
///
///   1. requires A to be a prefix of M and drops it (else the result is the
///      error context / the empty set),
///   2. if w, forgets the remainder entirely (any context is possible), and
///   3. pushes the elements of B on top.
///
/// Composition implements the paper's `match` cancellation: the entries of
/// the first operand cancel one-for-one against the exits of the second;
/// any mismatch yields ⊥; a wildcard absorbs whatever crosses it. The
/// k-limiting `trunc` keeps the first i exits and j entries and inserts a
/// wildcard when anything was cut (Lemma 4.2: truncation is conservative).
///
//===----------------------------------------------------------------------===//

#ifndef CTP_CTX_TRANSFORMERSTRING_H
#define CTP_CTX_TRANSFORMERSTRING_H

#include "ctx/Ctxt.h"

#include <optional>

namespace ctp {
namespace ctx {

/// A canonical transformer string. ⊥ is not representable; operations that
/// can produce ⊥ return std::nullopt instead, matching the paper's
/// function-style predicate comp which "is false for all C if A;B ≡ ⊥".
struct Transformer {
  CtxtVec Exits;   ///< Ǎ — elements popped off the front, in pop order.
  CtxtVec Entries; ///< B̂ — elements pushed on top; Entries[0] ends up
                   ///< top-most in the output context.
  bool Wild = false;

  /// The identity transformation ε.
  static Transformer identity() { return Transformer(); }

  /// An entry transformation \c ê: pushes one element.
  static Transformer entry(CtxtElem E) {
    Transformer T;
    T.Entries.push_back(E);
    return T;
  }

  /// An exit transformation \c ě: pops one element.
  static Transformer exit(CtxtElem E) {
    Transformer T;
    T.Exits.push_back(E);
    return T;
  }

  bool isIdentity() const {
    return Exits.empty() && Entries.empty() && !Wild;
  }

  friend bool operator==(const Transformer &A, const Transformer &B) {
    return A.Wild == B.Wild && A.Exits == B.Exits && A.Entries == B.Entries;
  }
  friend bool operator!=(const Transformer &A, const Transformer &B) {
    return !(A == B);
  }

  std::uint64_t hash() const {
    return hashCombine(hashCombine(Exits.hash(), Entries.hash()),
                       Wild ? 1 : 2);
  }
};

struct TransformerHash {
  std::size_t operator()(const Transformer &T) const {
    return static_cast<std::size_t>(T.hash());
  }
};

/// Composes two transformers: "first \p A, then \p B" (the paper's A;B).
/// Performs the full `match` cancellation without truncation.
/// \returns std::nullopt when the composition is ⊥ (an entry of A meets a
/// different exit of B).
std::optional<Transformer> compose(const Transformer &A,
                                   const Transformer &B);

/// trunc_{i,j}: k-limits \p T to at most \p MaxExits exits and
/// \p MaxEntries entries, inserting a wildcard if anything was dropped.
Transformer truncate(const Transformer &T, unsigned MaxExits,
                     unsigned MaxEntries);

/// Composition followed by truncation into CtxtT_{i,k} — the paper's
/// comp^t(X, Y, trunc_{i,k}(match(X·Y))).
std::optional<Transformer> composeTruncated(const Transformer &A,
                                            const Transformer &B,
                                            unsigned MaxExits,
                                            unsigned MaxEntries);

/// Semigroup inverse: inv^t(Ǎ·w·B̂) = B̌·w·Â.
Transformer inverse(const Transformer &T);

/// Builds the transformation M̌·M̂ used by merge_s under object and type
/// sensitivity: the transformer that maps any context with prefix \p M to
/// itself and everything else to the error context (the "N·N̂ trick" of
/// Section 3).
Transformer prefixFilter(const CtxtVec &M);

/// target^t: the known prefix of the callee's method context, i.e. the
/// entries of a call edge's transformer.
inline const CtxtVec &targetPrefix(const Transformer &T) {
  return T.Entries;
}

/// True iff \p A strictly subsumes \p B: A ≠ B and A's image contains B's
/// image on every input (Section 8's subsuming facts: deriving B when A
/// is already known is redundant work). Exact for canonical transformer
/// strings:
///   * wild A:  A = Ǎ·∗·N̂ subsumes any B whose exits extend A's and whose
///     entries extend A's (e.g. ∗ subsumes everything; M̌1·∗ and ∗·M̂2
///     both subsume M̌1·∗·M̂2);
///   * exact A: A = Ǎ·N̂ subsumes exactly the prefix-restrictions
///     Ǎ·X̌·X̂·N̂... i.e. B with Exits = A.Exits·X and Entries =
///     A.Entries·X (e.g. ε subsumes č·ĉ — Figure 7).
bool subsumes(const Transformer &A, const Transformer &B);

/// Renders "⟨ě1 ě2 · ∗ · ê1 ê2⟩" style debug output.
std::string printTransformer(const Transformer &T,
                             const ElemPrinter &Printer = printElemDefault);

} // namespace ctx
} // namespace ctp

#endif // CTP_CTX_TRANSFORMERSTRING_H
