//===- ctx/TransformerString.cpp - Transformer string algebra -------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "ctx/TransformerString.h"

using namespace ctp;
using namespace ctp::ctx;

std::optional<Transformer> ctx::compose(const Transformer &A,
                                        const Transformer &B) {
  // The concatenated letter string is  Ǎₑ · w₁ · Âₙ · B̌ₑ · w₂ · B̂ₙ.
  // `match` cancels A's entries against B's exits pairwise from the front
  // (both describe the context top): â followed by ǎ cancels, â followed by
  // b̌ with a ≠ b is ⊥ (the paper's infeasible path).
  unsigned N = A.Entries.size() < B.Exits.size() ? A.Entries.size()
                                                 : B.Exits.size();
  for (unsigned I = 0; I < N; ++I)
    if (A.Entries[I] != B.Exits[I])
      return std::nullopt;

  Transformer R;
  if (B.Exits.size() > N) {
    // B has exits left after consuming all of A's entries. They either fall
    // into A's wildcard (∗ absorbs exits: match(·∗·ǎ·) = match(·∗·)) or
    // extend A's exit sequence.
    if (A.Wild) {
      R.Exits = A.Exits;
      R.Wild = true; // w₂ after a surviving ∗ is also absorbed.
      R.Entries = B.Entries;
      return R;
    }
    R.Exits = A.Exits;
    for (unsigned I = N; I < B.Exits.size(); ++I)
      R.Exits.push_back(B.Exits[I]);
    R.Wild = B.Wild;
    R.Entries = B.Entries;
    return R;
  }

  // All of B's exits cancelled; A may have leftover entries.
  if (B.Wild) {
    // B's wildcard wipes whatever A produced below B's entries
    // (match(·â·∗·) = match(·∗·)).
    R.Exits = A.Exits;
    R.Wild = true;
    R.Entries = B.Entries;
    return R;
  }
  R.Exits = A.Exits;
  R.Wild = A.Wild;
  R.Entries = B.Entries;
  for (unsigned I = N; I < A.Entries.size(); ++I)
    R.Entries.push_back(A.Entries[I]);
  return R;
}

Transformer ctx::truncate(const Transformer &T, unsigned MaxExits,
                          unsigned MaxEntries) {
  if (T.Exits.size() <= MaxExits && T.Entries.size() <= MaxEntries)
    return T;
  Transformer R;
  R.Exits = T.Exits.takePrefix(MaxExits);
  R.Entries = T.Entries.takePrefix(MaxEntries);
  R.Wild = true;
  return R;
}

std::optional<Transformer> ctx::composeTruncated(const Transformer &A,
                                                 const Transformer &B,
                                                 unsigned MaxExits,
                                                 unsigned MaxEntries) {
  std::optional<Transformer> C = compose(A, B);
  if (!C)
    return std::nullopt;
  return truncate(*C, MaxExits, MaxEntries);
}

Transformer ctx::inverse(const Transformer &T) {
  Transformer R;
  R.Exits = T.Entries;
  R.Entries = T.Exits;
  R.Wild = T.Wild;
  return R;
}

Transformer ctx::prefixFilter(const CtxtVec &M) {
  Transformer R;
  R.Exits = M;
  R.Entries = M;
  return R;
}

namespace {

bool isPrefixOf(const CtxtVec &P, const CtxtVec &V) {
  if (P.size() > V.size())
    return false;
  for (unsigned I = 0; I < P.size(); ++I)
    if (P[I] != V[I])
      return false;
  return true;
}

} // namespace

bool ctx::subsumes(const Transformer &A, const Transformer &B) {
  if (A == B)
    return false;
  if (A.Wild)
    return isPrefixOf(A.Exits, B.Exits) && isPrefixOf(A.Entries, B.Entries);
  if (B.Wild)
    return false; // An exact map cannot contain an infinite image.
  // Exact vs exact: B must be A restricted to inputs extending A's exits
  // by some X, with the same X appended to the entries.
  if (!isPrefixOf(A.Exits, B.Exits) || !isPrefixOf(A.Entries, B.Entries))
    return false;
  CtxtVec XFromExits = B.Exits.dropPrefix(A.Exits.size());
  CtxtVec XFromEntries = B.Entries.dropPrefix(A.Entries.size());
  return XFromExits == XFromEntries;
}

std::string ctx::printTransformer(const Transformer &T,
                                  const ElemPrinter &Printer) {
  std::string Out = "<";
  for (unsigned I = 0; I < T.Exits.size(); ++I) {
    if (I != 0)
      Out += " ";
    Out += "v" + Printer(T.Exits[I]);
  }
  if (T.Wild) {
    if (!T.Exits.empty())
      Out += " ";
    Out += "*";
  }
  for (unsigned I = 0; I < T.Entries.size(); ++I) {
    if (I != 0 || T.Wild || !T.Exits.empty())
      Out += " ";
    Out += "^" + Printer(T.Entries[I]);
  }
  if (T.isIdentity())
    Out += "eps";
  Out += ">";
  return Out;
}
