//===- tests/resume_test.cpp - Checkpoint/resume equivalence --------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// The crash-safety contract: interrupting a fixpoint mid-run and resuming
// from the checkpoint must produce results byte-identical to an
// uninterrupted run — same tuples in the same insertion order, same
// interned ids, same cumulative counters — on both evaluation back-ends.
// And every corrupted or mismatched snapshot must be detected and degrade
// to a cold start with a structured warning, never a crash.
//
//===----------------------------------------------------------------------===//

#include "analysis/Checkpoint.h"
#include "analysis/Configurations.h"
#include "analysis/DatalogFrontend.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "support/FaultInjection.h"
#include "workload/Presets.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace ctp;
using ctx::Abstraction;

namespace {

std::string freshDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "/ctp_resume_" + Tag;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

template <typename T>
std::vector<analysis::FactKey> keys(const std::vector<T> &V) {
  std::vector<analysis::FactKey> K;
  K.reserve(V.size());
  for (const auto &F : V)
    K.push_back(analysis::keyOf(F));
  return K;
}

/// Byte-identical: every relation in identical insertion order (which
/// implies identical interned TransformIds), plus cumulative counters.
void expectIdentical(const analysis::Results &A, const analysis::Results &B) {
  EXPECT_EQ(keys(A.Pts), keys(B.Pts));
  EXPECT_EQ(keys(A.Hpts), keys(B.Hpts));
  EXPECT_EQ(keys(A.Hload), keys(B.Hload));
  EXPECT_EQ(keys(A.Call), keys(B.Call));
  EXPECT_EQ(keys(A.Reach), keys(B.Reach));
  EXPECT_EQ(keys(A.Gpts), keys(B.Gpts));
  EXPECT_EQ(A.Stat.DomainSize, B.Stat.DomainSize);
  EXPECT_EQ(A.Stat.CollapsedPts, B.Stat.CollapsedPts);
  EXPECT_EQ(A.Stat.Progress.Iterations, B.Stat.Progress.Iterations);
  EXPECT_EQ(A.Stat.Progress.Derivations, B.Stat.Progress.Derivations);
  EXPECT_EQ(A.Stat.Progress.PendingWork, B.Stat.Progress.PendingWork);
}

analysis::Results solveNative(const facts::FactDB &DB, const ctx::Config &Cfg,
                              const BudgetSpec &Budget,
                              const std::string &CkptDir,
                              const analysis::SolverSnapshot *Resume,
                              bool Collapse = false) {
  analysis::SolverOptions SO;
  SO.Budget = Budget;
  SO.Checkpoint.Dir = CkptDir;
  SO.Resume = Resume;
  SO.CollapseSubsumedPts = Collapse;
  return analysis::solve(DB, Cfg, SO);
}

analysis::Results solveDatalog(const facts::FactDB &DB,
                               const ctx::Config &Cfg,
                               const BudgetSpec &Budget,
                               const std::string &CkptDir,
                               const analysis::SolverSnapshot *Resume) {
  analysis::DatalogSolveOptions DO;
  DO.Budget = Budget;
  DO.Checkpoint.Dir = CkptDir;
  DO.Resume = Resume;
  return analysis::solveViaDatalog(DB, Cfg, DO);
}

/// Interrupt at roughly half the converged derivation count, resume to
/// convergence, and compare against the uninterrupted baseline.
void checkInterruptResume(const facts::FactDB &DB, const ctx::Config &Cfg,
                          bool Datalog, const std::string &Tag,
                          bool Collapse = false) {
  SCOPED_TRACE(Tag);
  auto Run = [&](const BudgetSpec &Budget, const std::string &Dir,
                 const analysis::SolverSnapshot *Resume) {
    return Datalog ? solveDatalog(DB, Cfg, Budget, Dir, Resume)
                   : solveNative(DB, Cfg, Budget, Dir, Resume, Collapse);
  };

  analysis::Results Baseline = Run(BudgetSpec(), "", nullptr);
  ASSERT_EQ(Baseline.Stat.Term, TerminationReason::Converged);
  ASSERT_GT(Baseline.Stat.Progress.Derivations, 10u);

  std::string Dir = freshDir(Tag);
  BudgetSpec Half;
  Half.MaxDerivations = Baseline.Stat.Progress.Derivations / 2;
  analysis::Results Partial = Run(Half, Dir, nullptr);
  ASSERT_NE(Partial.Stat.Term, TerminationReason::Converged);
  ASSERT_TRUE(
      std::filesystem::exists(analysis::checkpointPath(Dir)))
      << "budget-exhausted run must leave a snapshot";
  EXPECT_EQ(Partial.Stat.CheckpointError, "");

  analysis::SnapshotProbe Probe = analysis::probeSnapshot(
      Dir, DB, Cfg, Datalog, !Datalog && Collapse);
  ASSERT_EQ(Probe.Status, analysis::ResumeStatus::Resumed) << Probe.Warning;
  EXPECT_NE(Probe.Snap.Term, TerminationReason::Converged)
      << "trip-time snapshot must carry the trip reason in its trailer";

  analysis::Results Resumed = Run(BudgetSpec(), Dir, &Probe.Snap);
  ASSERT_EQ(Resumed.Stat.Term, TerminationReason::Converged);
  EXPECT_EQ(Resumed.Stat.CheckpointError, "");
  expectIdentical(Baseline, Resumed);
  EXPECT_FALSE(std::filesystem::exists(analysis::checkpointPath(Dir)))
      << "a converged run must remove its checkpoint";
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Resume equivalence, native back-end: 2 presets x 2 configs.
//===----------------------------------------------------------------------===//

TEST(ResumeNative, AntlrTwoObjectH) {
  facts::FactDB DB = facts::extract(workload::generatePreset("antlr"));
  checkInterruptResume(DB, ctx::twoObjectH(Abstraction::TransformerString),
                       false, "native_antlr_2objH");
}

TEST(ResumeNative, AntlrOneObject) {
  facts::FactDB DB = facts::extract(workload::generatePreset("antlr"));
  checkInterruptResume(DB, ctx::oneObject(Abstraction::TransformerString),
                       false, "native_antlr_1obj");
}

TEST(ResumeNative, PmdTwoObjectH) {
  facts::FactDB DB = facts::extract(workload::generatePreset("pmd"));
  checkInterruptResume(DB, ctx::twoObjectH(Abstraction::TransformerString),
                       false, "native_pmd_2objH");
}

TEST(ResumeNative, PmdOneObjectContextString) {
  facts::FactDB DB = facts::extract(workload::generatePreset("pmd"));
  checkInterruptResume(DB, ctx::oneObject(Abstraction::ContextString),
                       false, "native_pmd_1obj_cs");
}

TEST(ResumeNative, CollapseModeEquivalence) {
  facts::FactDB DB = facts::extract(workload::generatePreset("bloat"));
  checkInterruptResume(DB, ctx::twoObjectH(Abstraction::TransformerString),
                       false, "native_bloat_collapse", /*Collapse=*/true);
}

TEST(ResumeNative, SurvivesTwoInterruptions) {
  facts::FactDB DB = facts::extract(workload::generatePreset("antlr"));
  ctx::Config Cfg = ctx::twoObjectH(Abstraction::TransformerString);
  analysis::Results Baseline = solveNative(DB, Cfg, {}, "", nullptr);
  ASSERT_EQ(Baseline.Stat.Term, TerminationReason::Converged);

  std::string Dir = freshDir("native_twice");
  BudgetSpec Third;
  Third.MaxDerivations = Baseline.Stat.Progress.Derivations / 3;

  analysis::Results R = solveNative(DB, Cfg, Third, Dir, nullptr);
  ASSERT_NE(R.Stat.Term, TerminationReason::Converged);
  for (int Leg = 0; Leg < 2; ++Leg) {
    analysis::SnapshotProbe P =
        analysis::probeSnapshot(Dir, DB, Cfg, false, false);
    ASSERT_EQ(P.Status, analysis::ResumeStatus::Resumed) << P.Warning;
    // Second leg trips again mid-run; third runs to convergence.
    R = solveNative(DB, Cfg, Leg == 0 ? Third : BudgetSpec(), Dir, &P.Snap);
  }
  ASSERT_EQ(R.Stat.Term, TerminationReason::Converged);
  expectIdentical(Baseline, R);
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Resume equivalence, datalog back-end: 2 presets x 2 configs.
//===----------------------------------------------------------------------===//

TEST(ResumeDatalog, LuindexOneObject) {
  facts::FactDB DB = facts::extract(workload::generatePreset("luindex"));
  checkInterruptResume(DB, ctx::oneObject(Abstraction::TransformerString),
                       true, "datalog_luindex_1obj");
}

TEST(ResumeDatalog, LuindexTwoObjectH) {
  facts::FactDB DB = facts::extract(workload::generatePreset("luindex"));
  checkInterruptResume(DB, ctx::twoObjectH(Abstraction::TransformerString),
                       true, "datalog_luindex_2objH");
}

TEST(ResumeDatalog, PmdOneObject) {
  facts::FactDB DB = facts::extract(workload::generatePreset("pmd"));
  checkInterruptResume(DB, ctx::oneObject(Abstraction::TransformerString),
                       true, "datalog_pmd_1obj");
}

TEST(ResumeDatalog, PmdTwoObjectH) {
  facts::FactDB DB = facts::extract(workload::generatePreset("pmd"));
  checkInterruptResume(DB, ctx::twoObjectH(Abstraction::TransformerString),
                       true, "datalog_pmd_2objH");
}

//===----------------------------------------------------------------------===//
// Corruption recovery: every injected fault is detected and degrades to
// a cold start with a structured warning.
//===----------------------------------------------------------------------===//

/// Leaves a valid mid-run snapshot for antlr/2-object+H in \p Dir.
facts::FactDB makeInterruptedSnapshot(const std::string &Dir,
                                      ctx::Config &CfgOut) {
  facts::FactDB DB = facts::extract(workload::generatePreset("antlr"));
  CfgOut = ctx::twoObjectH(Abstraction::TransformerString);
  BudgetSpec B;
  B.MaxDerivations = 8000;
  analysis::Results R = solveNative(DB, CfgOut, B, Dir, nullptr);
  EXPECT_NE(R.Stat.Term, TerminationReason::Converged);
  EXPECT_TRUE(std::filesystem::exists(analysis::checkpointPath(Dir)));
  return DB;
}

TEST(Recovery, BitFlippedFileIsDetectedAndColdStarts) {
  std::string Dir = freshDir("flip");
  ctx::Config Cfg;
  facts::FactDB DB = makeInterruptedSnapshot(Dir, Cfg);

  // Flip one byte in the middle of the snapshot on disk.
  std::string Path = analysis::checkpointPath(Dir);
  std::vector<char> Bytes;
  {
    std::ifstream In(Path, std::ios::binary);
    Bytes.assign(std::istreambuf_iterator<char>(In),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(Bytes.size(), 100u);
  Bytes[Bytes.size() / 2] ^= 0x20;
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }

  analysis::SnapshotProbe P =
      analysis::probeSnapshot(Dir, DB, Cfg, false, false);
  EXPECT_EQ(P.Status, analysis::ResumeStatus::CorruptSnapshot);
  EXPECT_NE(P.Warning.find("falling back to cold start"), std::string::npos)
      << P.Warning;

  // The full pipeline: resume requested, corruption detected, cold start
  // still converges.
  analysis::FallbackOptions FO;
  FO.Checkpoint.Dir = Dir;
  FO.Resume = true;
  analysis::FallbackOutcome O = analysis::solveWithFallback(DB, Cfg, FO);
  EXPECT_EQ(O.Resume, analysis::ResumeStatus::CorruptSnapshot);
  EXPECT_NE(O.ResumeWarning.find("cold start"), std::string::npos);
  EXPECT_EQ(O.R.Stat.Term, TerminationReason::Converged);
  EXPECT_FALSE(O.Degraded);
  EXPECT_EQ(O.RungUsed, 0u);
  std::filesystem::remove_all(Dir);
}

TEST(Recovery, EveryInjectedWriterFaultIsDetected) {
  for (const char *Fault : {"torn", "short", "bitflip"}) {
    SCOPED_TRACE(Fault);
    std::string Dir = freshDir(std::string("fault_") + Fault);
    ctx::Config Cfg = ctx::twoObjectH(Abstraction::TransformerString);
    facts::FactDB DB = facts::extract(workload::generatePreset("antlr"));

    fault::reset();
    ASSERT_TRUE(fault::armSnapshotFaultByName(Fault, /*Sticky=*/true));
    BudgetSpec B;
    B.MaxDerivations = 8000;
    analysis::Results R = solveNative(DB, Cfg, B, Dir, nullptr);
    fault::reset();
    ASSERT_NE(R.Stat.Term, TerminationReason::Converged);

    analysis::SnapshotProbe P =
        analysis::probeSnapshot(Dir, DB, Cfg, false, false);
    EXPECT_EQ(P.Status, analysis::ResumeStatus::CorruptSnapshot)
        << "written under fault '" << Fault << "': " << P.Warning;
    EXPECT_NE(P.Warning.find("cold start"), std::string::npos);
    std::filesystem::remove_all(Dir);
  }
}

TEST(Recovery, TruncatedFileIsDetected) {
  std::string Dir = freshDir("trunc");
  ctx::Config Cfg;
  facts::FactDB DB = makeInterruptedSnapshot(Dir, Cfg);

  std::string Path = analysis::checkpointPath(Dir);
  std::filesystem::resize_file(Path,
                               std::filesystem::file_size(Path) / 2);
  analysis::SnapshotProbe P =
      analysis::probeSnapshot(Dir, DB, Cfg, false, false);
  EXPECT_EQ(P.Status, analysis::ResumeStatus::CorruptSnapshot) << P.Warning;
  std::filesystem::remove_all(Dir);
}

TEST(Recovery, MismatchedSnapshotColdStarts) {
  std::string Dir = freshDir("mismatch");
  ctx::Config Cfg;
  facts::FactDB DB = makeInterruptedSnapshot(Dir, Cfg);

  // Different fact set (same schema, different program).
  facts::FactDB Other = facts::extract(workload::generatePreset("pmd"));
  analysis::SnapshotProbe P =
      analysis::probeSnapshot(Dir, Other, Cfg, false, false);
  EXPECT_EQ(P.Status, analysis::ResumeStatus::Mismatch);
  EXPECT_NE(P.Warning.find("cold start"), std::string::npos);

  // Different configuration.
  P = analysis::probeSnapshot(
      Dir, DB, ctx::oneObject(Abstraction::TransformerString), false, false);
  EXPECT_EQ(P.Status, analysis::ResumeStatus::Mismatch);

  // Other back-end.
  P = analysis::probeSnapshot(Dir, DB, Cfg, /*UseDatalog=*/true, false);
  EXPECT_EQ(P.Status, analysis::ResumeStatus::Mismatch);

  // Other collapse mode.
  P = analysis::probeSnapshot(Dir, DB, Cfg, false, /*Collapse=*/true);
  EXPECT_EQ(P.Status, analysis::ResumeStatus::Mismatch);

  // The matching probe still resumes — the file itself is fine.
  P = analysis::probeSnapshot(Dir, DB, Cfg, false, false);
  EXPECT_EQ(P.Status, analysis::ResumeStatus::Resumed) << P.Warning;
  std::filesystem::remove_all(Dir);
}

TEST(Recovery, EmptyDirProbesAsNoSnapshot) {
  std::string Dir = freshDir("empty");
  facts::FactDB DB = facts::extract(workload::generatePreset("luindex"));
  analysis::SnapshotProbe P = analysis::probeSnapshot(
      Dir, DB, ctx::oneObject(Abstraction::TransformerString), false, false);
  EXPECT_EQ(P.Status, analysis::ResumeStatus::NoSnapshot);
  EXPECT_EQ(P.Warning, "");
  EXPECT_EQ(analysis::probeSnapshot("", DB,
                                    ctx::oneObject(
                                        Abstraction::TransformerString),
                                    false, false)
                .Status,
            analysis::ResumeStatus::NoSnapshot);
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Resume-over-degrade: a budget-exhausted rung 0 with checkpointing on
// returns immediately with a snapshot instead of descending the ladder.
//===----------------------------------------------------------------------===//

TEST(FallbackResume, ExhaustedRungZeroSavesInsteadOfDescending) {
  facts::FactDB DB = facts::extract(workload::generatePreset("antlr"));
  ctx::Config Cfg = ctx::twoObjectH(Abstraction::TransformerString);
  analysis::Results Baseline = solveNative(DB, Cfg, {}, "", nullptr);
  ASSERT_EQ(Baseline.Stat.Term, TerminationReason::Converged);

  std::string Dir = freshDir("fb");
  analysis::FallbackOptions FO;
  FO.Budget.MaxDerivations = Baseline.Stat.Progress.Derivations / 2;
  FO.Checkpoint.Dir = Dir;
  analysis::FallbackOutcome O = analysis::solveWithFallback(DB, Cfg, FO);
  EXPECT_EQ(O.Attempts.size(), 1u) << "must not descend past rung 0";
  EXPECT_EQ(O.RungUsed, 0u);
  EXPECT_TRUE(O.Degraded);
  EXPECT_TRUE(O.SnapshotSaved);

  // Re-invocation with resume continues to the full precise answer.
  analysis::FallbackOutcome O2;
  {
    analysis::FallbackOptions FR;
    FR.Checkpoint.Dir = Dir;
    FR.Resume = true;
    O2 = analysis::solveWithFallback(DB, Cfg, FR);
  }
  EXPECT_EQ(O2.Resume, analysis::ResumeStatus::Resumed) << O2.ResumeWarning;
  EXPECT_FALSE(O2.Degraded);
  ASSERT_EQ(O2.R.Stat.Term, TerminationReason::Converged);
  expectIdentical(Baseline, O2.R);
  std::filesystem::remove_all(Dir);
}

TEST(FallbackResume, MemoryTripCheckpointsThenResumesByteIdentically) {
  facts::FactDB DB = facts::extract(workload::generatePreset("antlr"));
  ctx::Config Cfg = ctx::twoObjectH(Abstraction::TransformerString);
  analysis::Results Baseline = solveNative(DB, Cfg, {}, "", nullptr);
  ASSERT_EQ(Baseline.Stat.Term, TerminationReason::Converged);

  std::string Dir = freshDir("memtrip");
  analysis::FallbackOptions FO;
  FO.Checkpoint.Dir = Dir;
  fault::reset();
  // One-shot simulated pressure mid-solve: unlike a derivation cap
  // (which saves *instead of* descending, see above), a memory trip
  // checkpoints AND descends — the machine is out of room for this
  // rung, so the caller still gets a cheaper answer now.
  fault::armMemFault(fault::MemFault::SoftPressure, 50);
  analysis::FallbackOutcome O = analysis::solveWithFallback(DB, Cfg, FO);
  fault::reset();
  ASSERT_GE(O.Attempts.size(), 2u) << "memory trip must descend";
  EXPECT_EQ(O.Attempts[0].Term, TerminationReason::MemoryBudget);
  EXPECT_TRUE(O.SnapshotSaved) << "memory trip must checkpoint first";
  EXPECT_TRUE(O.Degraded);

  // Once pressure is gone, resuming the rung-0 snapshot must land on
  // the exact fixpoint of an uninterrupted precise solve.
  analysis::FallbackOutcome O2;
  {
    analysis::FallbackOptions FR;
    FR.Checkpoint.Dir = Dir;
    FR.Resume = true;
    O2 = analysis::solveWithFallback(DB, Cfg, FR);
  }
  EXPECT_EQ(O2.Resume, analysis::ResumeStatus::Resumed) << O2.ResumeWarning;
  EXPECT_FALSE(O2.Degraded);
  ASSERT_EQ(O2.R.Stat.Term, TerminationReason::Converged);
  expectIdentical(Baseline, O2.R);
  std::filesystem::remove_all(Dir);
}

TEST(FallbackResume, WithoutCheckpointingStillDescends) {
  facts::FactDB DB = facts::extract(workload::generatePreset("antlr"));
  ctx::Config Cfg = ctx::twoObjectH(Abstraction::TransformerString);
  analysis::FallbackOptions FO;
  FO.Budget.MaxDerivations = 2000;
  analysis::FallbackOutcome O = analysis::solveWithFallback(DB, Cfg, FO);
  EXPECT_GT(O.Attempts.size(), 1u)
      << "the pre-checkpoint ladder semantics must be unchanged";
  EXPECT_FALSE(O.SnapshotSaved);
}

} // namespace
