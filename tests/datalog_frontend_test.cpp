//===- tests/datalog_frontend_test.cpp - Pipeline cross-validation --------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// The Datalog-engine instantiation of the Figure-3 rules must agree
// exactly with the hand-specialized solver: same relation sizes and same
// facts (compared via rendered transformations, since interning orders
// differ between the two evaluators).
//
//===----------------------------------------------------------------------===//

#include "analysis/DatalogFrontend.h"
#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "workload/Generator.h"
#include "workload/PaperPrograms.h"

#include "gtest/gtest.h"

#include <set>
#include <string>

using namespace ctp;
using ctx::Abstraction;

namespace {

std::multiset<std::string> renderPts(const analysis::Results &R) {
  std::multiset<std::string> Out;
  for (const auto &F : R.Pts)
    Out.insert(std::to_string(F.Var) + "|" + std::to_string(F.Heap) + "|" +
               R.Dom->toString(F.T));
  return Out;
}

std::multiset<std::string> renderCall(const analysis::Results &R) {
  std::multiset<std::string> Out;
  for (const auto &F : R.Call)
    Out.insert(std::to_string(F.Invoke) + "|" + std::to_string(F.Method) +
               "|" + R.Dom->toString(F.T));
  return Out;
}

void expectAgreement(const facts::FactDB &DB, const ctx::Config &Cfg) {
  analysis::Results Fast = analysis::solve(DB, Cfg);
  analysis::Results Slow = analysis::solveViaDatalog(DB, Cfg);
  EXPECT_EQ(Fast.Stat.NumPts, Slow.Stat.NumPts) << Cfg.name();
  EXPECT_EQ(Fast.Stat.NumHpts, Slow.Stat.NumHpts) << Cfg.name();
  EXPECT_EQ(Fast.Stat.NumHload, Slow.Stat.NumHload) << Cfg.name();
  EXPECT_EQ(Fast.Stat.NumCall, Slow.Stat.NumCall) << Cfg.name();
  EXPECT_EQ(Fast.Stat.NumReach, Slow.Stat.NumReach) << Cfg.name();
  EXPECT_EQ(renderPts(Fast), renderPts(Slow)) << Cfg.name();
  EXPECT_EQ(renderCall(Fast), renderCall(Slow)) << Cfg.name();
  EXPECT_EQ(Fast.ciPts(), Slow.ciPts()) << Cfg.name();
}

TEST(DatalogFrontendTest, AgreesOnPaperPrograms) {
  for (int Which = 0; Which < 3; ++Which) {
    ir::Program P = Which == 0   ? workload::figure1().P
                    : Which == 1 ? workload::figure5().P
                                 : workload::figure7().P;
    facts::FactDB DB = facts::extract(P);
    for (Abstraction A :
         {Abstraction::ContextString, Abstraction::TransformerString}) {
      expectAgreement(DB, ctx::oneCallH(A));
      expectAgreement(DB, ctx::twoObjectH(A));
      expectAgreement(DB, ctx::twoTypeH(A));
    }
  }
}

TEST(DatalogFrontendTest, AgreesOnGeneratedProgram) {
  workload::WorkloadParams Params;
  Params.DataClasses = 3;
  Params.WrapperChains = 2;
  Params.Factories = 2;
  Params.Containers = 2;
  Params.PolyBases = 1;
  Params.Drivers = 2;
  Params.Scenarios = 4;
  Params.Seed = 5;
  facts::FactDB DB = facts::extract(workload::generate(Params));
  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    expectAgreement(DB, ctx::oneCall(A));
    expectAgreement(DB, ctx::oneObject(A));
  }
}

TEST(DatalogFrontendTest, ReportsDerivationCount) {
  facts::FactDB DB = facts::extract(workload::figure5().P);
  std::size_t N = 0;
  analysis::solveViaDatalog(
      DB, ctx::oneCallH(Abstraction::TransformerString), &N);
  EXPECT_GT(N, 0u);
}

} // namespace
