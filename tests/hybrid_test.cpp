//===- tests/hybrid_test.cpp - Hybrid context sensitivity -----------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// The paper notes the rule schema covers "call sites, heap allocation
// sites, class types, and combinations thereof [6]". This extension
// implements the Kastrinis–Smaragdakis-style hybrid: object contexts for
// virtual dispatch, call-site pushes for static invocations. These tests
// check the policy, cross-abstraction precision, and soundness.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "cfl/Oracle.h"
#include "facts/Extract.h"
#include "ir/Builder.h"
#include "workload/Generator.h"
#include "workload/PaperPrograms.h"

#include "gtest/gtest.h"

#include <algorithm>

using namespace ctp;
using namespace ctp::ir;
using ctx::Abstraction;
using ctx::Config;

namespace {

using U32s = std::vector<std::uint32_t>;

TEST(HybridTest, ConfigValidatesLikeObject) {
  EXPECT_EQ(ctx::twoHybridH(Abstraction::ContextString).validate(), "");
  EXPECT_EQ(ctx::twoHybridH(Abstraction::ContextString).name(),
            "2-hybrid+H(cs)");
  Config Bad{Abstraction::ContextString, ctx::Flavour::Hybrid, 2, 0};
  EXPECT_NE(Bad.validate(), "");
}

TEST(HybridTest, VirtualBehavesLikeObjectSensitivity) {
  // Figure 1: hybrid merges x1/y1 (same receiver) but separates x2/y2,
  // exactly like 2-object+H.
  workload::Figure1Program F = workload::figure1();
  facts::FactDB DB = facts::extract(F.P);
  for (Abstraction A :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    analysis::Results R = analysis::solve(DB, ctx::twoHybridH(A));
    EXPECT_EQ(R.pointsTo(F.X1), (U32s{F.H1, F.H2}));
    EXPECT_EQ(R.pointsTo(F.X2), (U32s{F.H1}));
    EXPECT_EQ(R.pointsTo(F.Y2), (U32s{F.H2}));
    EXPECT_TRUE(R.pointsTo(F.Z).empty());
  }
}

TEST(HybridTest, StaticCallsGainCallSitePrecision) {
  // Two static call sites into the same identity helper, invoked from an
  // *instance* method context: pure object sensitivity merges them (the
  // static call keeps the caller context), the hybrid separates them.
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Id = B.addStaticMethod(Obj, "id", 1);
  B.addReturn(Id, B.formal(Id, 0));

  TypeId Host = B.addClass("Host", Obj);
  MethodId Run = B.addMethod(Host, "run", 2);
  VarId R1 = B.addLocal(Run, "r1");
  B.addStaticCall(Run, Id, {B.formal(Run, 0)}, R1, "s1");
  VarId R2 = B.addLocal(Run, "r2");
  B.addStaticCall(Run, Id, {B.formal(Run, 1)}, R2, "s2");
  B.addReturn(Run, R1);
  SigId RunSig = B.signature("run", 2);

  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId H = B.addLocal(Main, "host");
  B.addNew(Main, H, Host, "hhost");
  VarId A = B.addLocal(Main, "a");
  HeapId HA = B.addNew(Main, A, Obj, "ha");
  VarId Bv = B.addLocal(Main, "b");
  HeapId HB = B.addNew(Main, Bv, Obj, "hb");
  VarId Out = B.addLocal(Main, "out");
  B.addVirtualCall(Main, H, RunSig, {A, Bv}, Out, "c0");
  facts::FactDB DB = facts::extract(B.take());

  for (Abstraction Ab :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    // 1-object (m = 1): id's context is run's receiver context for both
    // sites — merged.
    analysis::Results Obj1 = analysis::solve(DB, ctx::oneObject(Ab));
    EXPECT_EQ(Obj1.pointsTo(R1), (U32s{HA, HB}));
    // 1-hybrid (m = 1): the call-site element separates s1 from s2.
    Config Hy1{Ab, ctx::Flavour::Hybrid, 1, 0};
    analysis::Results Hy = analysis::solve(DB, Hy1);
    EXPECT_EQ(Hy.pointsTo(R1), (U32s{HA}));
    EXPECT_EQ(Hy.pointsTo(R2), (U32s{HB}));
  }
}

TEST(HybridTest, ElementKindsDoNotCollide) {
  // A heap site and an invocation with the same raw id must produce
  // distinct context elements; build a program where heap 0 and invoke 0
  // both appear in contexts and check the analyses stay precise.
  Builder B;
  TypeId Obj = B.addClass("Object");
  MethodId Id = B.addStaticMethod(Obj, "id", 1);
  B.addReturn(Id, B.formal(Id, 0));
  TypeId Box = B.addClass("Box", Obj);
  MethodId Get = B.addMethod(Box, "get", 1);
  VarId G1 = B.addLocal(Get, "g");
  B.addStaticCall(Get, Id, {B.formal(Get, 0)}, G1, "inner"); // invoke 0
  B.addReturn(Get, G1);
  SigId GetSig = B.signature("get", 1);
  MethodId Main = B.addStaticMethod(Obj, "main", 0);
  B.setMain(Main);
  VarId Bx = B.addLocal(Main, "bx");
  B.addNew(Main, Bx, Box, "hbox"); // heap 0
  VarId X = B.addLocal(Main, "x");
  HeapId HX = B.addNew(Main, X, Obj, "hx");
  VarId Out = B.addLocal(Main, "out");
  B.addVirtualCall(Main, Bx, GetSig, {X}, Out, "outer");
  facts::FactDB DB = facts::extract(B.take());

  for (Abstraction Ab :
       {Abstraction::ContextString, Abstraction::TransformerString}) {
    analysis::Results R = analysis::solve(DB, ctx::twoHybridH(Ab));
    EXPECT_EQ(R.pointsTo(Out), (U32s{HX}));
  }
}

struct HybridProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HybridProperty, SoundAndAbstractionsAgree) {
  workload::WorkloadParams Params;
  Params.Drivers = 3;
  Params.Scenarios = 5;
  Params.PrivateScenarios = 4;
  Params.Seed = GetParam();
  facts::FactDB DB = facts::extract(workload::generate(Params));

  cfl::OracleResult O = cfl::solveInsensitive(DB);
  analysis::Results Cs =
      analysis::solve(DB, ctx::twoHybridH(Abstraction::ContextString));
  analysis::Results Ts =
      analysis::solve(DB, ctx::twoHybridH(Abstraction::TransformerString));
  auto CsCi = Cs.ciPts();
  EXPECT_TRUE(
      std::includes(O.Pts.begin(), O.Pts.end(), CsCi.begin(), CsCi.end()));
  EXPECT_EQ(CsCi, Ts.ciPts()) << "seed " << GetParam();
  EXPECT_EQ(Cs.ciCall(), Ts.ciCall()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridProperty,
                         ::testing::Values(13u, 14u, 15u, 16u));

} // namespace
