//===- tests/fig7_test.cpp - Figure 7 subsuming facts ---------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Figure 7 shows how multiple data-flow paths (one local, one through the
// receiver's field) yield *subsuming* transformer-string facts: v gets
// both pts(v, h1, ε) and pts(v, h1, č1·ĉ1), where the former subsumes the
// latter. The context-string column derives a single fact. This is the
// mechanism behind the smaller time wins of Section 8.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "ctx/Semantics.h"
#include "facts/Extract.h"
#include "workload/PaperPrograms.h"

#include "gtest/gtest.h"

using namespace ctp;
using ctx::Abstraction;
using ctx::elemOfEntity;
using ctx::Transformer;

namespace {

class Fig7Test : public ::testing::Test {
protected:
  void SetUp() override {
    F = workload::figure7();
    DB = facts::extract(F.P);
  }
  workload::Figure7Program F;
  facts::FactDB DB;
};

TEST_F(Fig7Test, TransformerDerivesSubsumingPair) {
  analysis::Results R =
      analysis::solve(DB, ctx::oneCallH(Abstraction::TransformerString));
  std::vector<Transformer> VFacts;
  for (const auto &P : R.Pts)
    if (P.Var == F.V && P.Heap == F.H1)
      VFacts.push_back(R.Dom->transformer(P.T));
  ASSERT_EQ(VFacts.size(), 2u);

  bool SawEpsilon = false, SawFilter = false;
  Transformer Filter;
  Filter.Exits.push_back(elemOfEntity(F.C1));
  Filter.Entries.push_back(elemOfEntity(F.C1));
  for (const Transformer &T : VFacts) {
    SawEpsilon |= T.isIdentity();
    SawFilter |= T == Filter;
  }
  EXPECT_TRUE(SawEpsilon);
  EXPECT_TRUE(SawFilter);

  // ε subsumes č1·ĉ1: its image contains the filter's image on every
  // input (checked on a sample).
  ctx::ConcreteCtxt M = {elemOfEntity(F.C1), ctx::EntryElem};
  EXPECT_TRUE(prefixSetSubset(applyTransformer(Filter, M),
                              applyTransformer(Transformer::identity(), M)));
}

TEST_F(Fig7Test, ContextStringDerivesSingleFact) {
  analysis::Results R =
      analysis::solve(DB, ctx::oneCallH(Abstraction::ContextString));
  std::size_t VFacts = 0;
  for (const auto &P : R.Pts)
    if (P.Var == F.V && P.Heap == F.H1)
      ++VFacts;
  // Both derivation paths produce ([c1], [c1]): deduplicated.
  EXPECT_EQ(VFacts, 1u);
}

TEST_F(Fig7Test, PrecisionStillIdentical) {
  analysis::Results Cs =
      analysis::solve(DB, ctx::oneCallH(Abstraction::ContextString));
  analysis::Results Ts =
      analysis::solve(DB, ctx::oneCallH(Abstraction::TransformerString));
  EXPECT_EQ(Cs.ciPts(), Ts.ciPts());
  EXPECT_EQ(Cs.ciHpts(), Ts.ciHpts());
  EXPECT_EQ(Cs.ciCall(), Ts.ciCall());
}

} // namespace
