//===- tests/fig5_test.cpp - Figure 5 derivation comparison ---------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Figure 5 derives every fact of the example program under m = 1, h = 1
// call-site sensitivity for both abstractions. This test checks the exact
// fact counts of the two columns and the key transformer values.
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "workload/PaperPrograms.h"

#include "gtest/gtest.h"

using namespace ctp;
using ctx::Abstraction;
using ctx::CtxtVec;
using ctx::elemOfEntity;
using ctx::Transformer;

namespace {

class Fig5Test : public ::testing::Test {
protected:
  void SetUp() override {
    F = workload::figure5();
    DB = facts::extract(F.P);
  }
  workload::Figure5Program F;
  facts::FactDB DB;
};

TEST_F(Fig5Test, ContextStringColumnCounts) {
  analysis::Results R =
      analysis::solve(DB, ctx::oneCallH(Abstraction::ContextString));
  // Figure 5, left column: pts facts h:2, p:2, r:4, x:2, y:2 = 12.
  EXPECT_EQ(R.Stat.NumPts, 12u);
  // call: main->m at m1 and m2, m->id under two contexts = 4 edges.
  EXPECT_EQ(R.Stat.NumCall, 4u);
  // reach: main/[entry], m/[m1], m/[m2], id/[id1] = 4.
  EXPECT_EQ(R.Stat.NumReach, 4u);
}

TEST_F(Fig5Test, TransformerColumnCounts) {
  analysis::Results R =
      analysis::solve(DB, ctx::oneCallH(Abstraction::TransformerString));
  // Figure 5, right column: pts facts h:1, p:1, r:1, x:1, y:1 = 5.
  EXPECT_EQ(R.Stat.NumPts, 5u);
  // call: m̂1, m̂2, and one id̂1 edge = 3.
  EXPECT_EQ(R.Stat.NumCall, 3u);
  EXPECT_EQ(R.Stat.NumReach, 4u);
}

TEST_F(Fig5Test, TransformerValuesMatchTheTable) {
  analysis::Results R =
      analysis::solve(DB, ctx::oneCallH(Abstraction::TransformerString));
  auto FindPts = [&](ir::VarId V) -> const Transformer & {
    for (const auto &P : R.Pts)
      if (P.Var == V) {
        EXPECT_EQ(P.Heap, F.H1);
        return R.Dom->transformer(P.T);
      }
    ADD_FAILURE() << "no pts fact for variable";
    static Transformer Dummy;
    return Dummy;
  };

  // pts(h, h1, ε).
  EXPECT_TRUE(FindPts(F.H).isIdentity());
  // pts(p, h1, id̂1): entries [id1].
  const Transformer &Pp = FindPts(F.Pvar);
  EXPECT_TRUE(Pp.Exits.empty());
  ASSERT_EQ(Pp.Entries.size(), 1u);
  EXPECT_EQ(Pp.Entries[0], elemOfEntity(F.Id1));
  // pts(r, h1, ε).
  EXPECT_TRUE(FindPts(F.R).isIdentity());
  // pts(x, h1, m̌1): exits [m1].
  const Transformer &Px = FindPts(F.X);
  ASSERT_EQ(Px.Exits.size(), 1u);
  EXPECT_EQ(Px.Exits[0], elemOfEntity(F.M1));
  EXPECT_TRUE(Px.Entries.empty());
  // pts(y, h1, m̌2).
  const Transformer &Py = FindPts(F.Y);
  ASSERT_EQ(Py.Exits.size(), 1u);
  EXPECT_EQ(Py.Exits[0], elemOfEntity(F.M2));
}

TEST_F(Fig5Test, PrecisionIsIdentical) {
  analysis::Results Cs =
      analysis::solve(DB, ctx::oneCallH(Abstraction::ContextString));
  analysis::Results Ts =
      analysis::solve(DB, ctx::oneCallH(Abstraction::TransformerString));
  EXPECT_EQ(Cs.ciPts(), Ts.ciPts());
  EXPECT_EQ(Cs.ciCall(), Ts.ciCall());
  // x and y both point to h1 (the single allocation site) either way.
  EXPECT_EQ(Cs.pointsTo(F.X), std::vector<std::uint32_t>{F.H1});
  EXPECT_EQ(Ts.pointsTo(F.Y), std::vector<std::uint32_t>{F.H1});
}

TEST_F(Fig5Test, FactReductionMatchesPaperStory) {
  analysis::Results Cs =
      analysis::solve(DB, ctx::oneCallH(Abstraction::ContextString));
  analysis::Results Ts =
      analysis::solve(DB, ctx::oneCallH(Abstraction::TransformerString));
  EXPECT_LT(Ts.Stat.total(), Cs.Stat.total());
}

} // namespace
