//===- tests/serve_test.cpp - Resident service units ----------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Unit coverage for the resident analysis service: wire framing (torn
// streams, oversize frames, EOF discipline), request/response parsing,
// the EINTR-safe POSIX wrappers under real signal pressure, the service
// supervisor's restart-backoff policy, and the in-process query engine —
// hot answers, per-request deadline degradation (answered, never hung),
// CFL fallback soundness, and admission bookkeeping. The out-of-process
// kill/recover loop lives in crashloop.sh --serve (ctest: serve_chaos).
//
//===----------------------------------------------------------------------===//

#include "facts/Extract.h"
#include "serve/Service.h"
#include "serve/Wire.h"
#include "support/FaultInjection.h"
#include "support/Memory.h"
#include "support/Posix.h"
#include "support/Supervisor.h"
#include "workload/Presets.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <pthread.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace ctp;
using namespace ctp::serve;

//===----------------------------------------------------------------------===//
// Framing.
//===----------------------------------------------------------------------===//

namespace {

struct PipePair {
  int R = -1, W = -1;
  PipePair() {
    int Fds[2];
    EXPECT_EQ(::pipe(Fds), 0);
    R = Fds[0];
    W = Fds[1];
  }
  ~PipePair() {
    if (R >= 0)
      posix::closeQuiet(R);
    if (W >= 0)
      posix::closeQuiet(W);
  }
  void closeWrite() {
    posix::closeQuiet(W);
    W = -1;
  }
};

} // namespace

TEST(WireFraming, RoundTripsPayloads) {
  PipePair P;
  for (const std::string &Payload :
       {std::string("1\tpts\tx"), std::string(""),
        std::string(4096, 'z')}) {
    ASSERT_TRUE(writeFrame(P.W, Payload));
    std::string Back;
    ASSERT_EQ(readFrame(P.R, Back), FrameResult::Ok);
    EXPECT_EQ(Back, Payload);
  }
}

TEST(WireFraming, CleanEofOnFrameBoundary) {
  PipePair P;
  ASSERT_TRUE(writeFrame(P.W, "last"));
  P.closeWrite();
  std::string Back;
  EXPECT_EQ(readFrame(P.R, Back), FrameResult::Ok);
  EXPECT_EQ(readFrame(P.R, Back), FrameResult::Eof);
}

TEST(WireFraming, TornLengthPrefixIsTornEof) {
  PipePair P;
  const char Half[2] = {0x10, 0x00}; // 2 of the 4 length bytes.
  ASSERT_TRUE(posix::writeFull(P.W, Half, sizeof(Half)));
  P.closeWrite();
  std::string Back;
  EXPECT_EQ(readFrame(P.R, Back), FrameResult::TornEof);
}

TEST(WireFraming, TornPayloadIsTornEof) {
  PipePair P;
  // Announce 100 bytes, deliver 3: the peer died mid-frame.
  const unsigned char Prefix[4] = {100, 0, 0, 0};
  ASSERT_TRUE(posix::writeFull(P.W, Prefix, 4));
  ASSERT_TRUE(posix::writeFull(P.W, "abc", 3));
  P.closeWrite();
  std::string Back;
  EXPECT_EQ(readFrame(P.R, Back), FrameResult::TornEof);
}

TEST(WireFraming, OversizeFrameRefusedWithoutAllocating) {
  PipePair P;
  // Length prefix claims 1 GiB; the reader must refuse before reading
  // (or allocating) the body.
  const unsigned char Prefix[4] = {0, 0, 0, 0x40};
  ASSERT_TRUE(posix::writeFull(P.W, Prefix, 4));
  std::string Back;
  EXPECT_EQ(readFrame(P.R, Back), FrameResult::TooBig);
  std::string Huge(MaxFrameBytes + 1, 'x');
  EXPECT_FALSE(writeFrame(P.W, Huge));
}

//===----------------------------------------------------------------------===//
// Request / response model.
//===----------------------------------------------------------------------===//

TEST(WireMessages, ParsesVerbArgsAndOptions) {
  Request Q;
  EXPECT_EQ(parseRequest("7\talias\ta\tb\tdeadline_ms=250\tmax_steps=10",
                         Q),
            "");
  EXPECT_EQ(Q.Id, "7");
  EXPECT_EQ(Q.Verb, "alias");
  ASSERT_EQ(Q.Args.size(), 2u);
  EXPECT_EQ(Q.Args[0], "a");
  EXPECT_EQ(Q.Args[1], "b");
  EXPECT_EQ(Q.DeadlineMs, 250u);
  EXPECT_EQ(Q.MaxSteps, 10u);
}

TEST(WireMessages, RejectsMalformedRequests) {
  Request Q;
  EXPECT_NE(parseRequest("", Q), "");
  EXPECT_NE(parseRequest("lonely", Q), "");
  EXPECT_NE(parseRequest("\tpts\tx", Q), "");          // Empty id.
  EXPECT_NE(parseRequest("1\tpts\tmax_steps=-3", Q), ""); // Negative.
  EXPECT_NE(parseRequest("1\tpts\tmax_steps=", Q), "");
  EXPECT_NE(parseRequest("1\tpts\tbudget_ms=5", Q), ""); // Unknown key.
}

TEST(WireMessages, ResponseRoundTrips) {
  Response R;
  R.Id = "12";
  R.Status = StatusDegraded;
  R.Mode = "cfl-exhausted";
  R.Body = "h1 h2 h3";
  R.Epoch = 41;
  Response Back;
  ASSERT_TRUE(parseResponse(renderResponse(R), Back));
  EXPECT_EQ(Back.Id, R.Id);
  EXPECT_EQ(Back.Status, R.Status);
  EXPECT_EQ(Back.Mode, R.Mode);
  EXPECT_EQ(Back.Body, R.Body);
  EXPECT_EQ(Back.Epoch, R.Epoch);
  EXPECT_FALSE(parseResponse("no-tabs-here", Back));
  EXPECT_FALSE(parseResponse("a\tb", Back));
  // Exactly five fields, and the fourth (epoch) must be numeric.
  EXPECT_FALSE(parseResponse("a\tb\tc\td", Back));
  EXPECT_FALSE(parseResponse("a\tb\tc\td\te", Back));
  EXPECT_TRUE(parseResponse("a\tb\tc\t7\te", Back));
  EXPECT_EQ(Back.Epoch, 7u);
  EXPECT_FALSE(parseResponse("a\tb\tc\t7\te\tf", Back));
}

//===----------------------------------------------------------------------===//
// EINTR-safe wrappers under real signal pressure.
//===----------------------------------------------------------------------===//

namespace {

void noopHandler(int) {}

} // namespace

TEST(PosixRetry, FullReadAndWriteSurviveSignalStorm) {
  // A handler installed WITHOUT SA_RESTART makes every blocking read
  // and write on the pipe eligible for EINTR; the Full helpers must
  // move all the bytes anyway. 256 KiB through a 64 KiB pipe guarantees
  // both sides block repeatedly while signals land.
  struct sigaction SA, Old;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = noopHandler;
  ASSERT_EQ(::sigaction(SIGUSR1, &SA, &Old), 0);

  PipePair P;
  const std::size_t N = 256 * 1024;
  std::string Out(N, '\0');
  for (std::size_t I = 0; I < N; ++I)
    Out[I] = static_cast<char>(I * 131 + 7);

  pthread_t Self = ::pthread_self();
  std::atomic<bool> StopFlag{false};
  std::thread Pinger([&] {
    while (!StopFlag.load(std::memory_order_relaxed)) {
      ::pthread_kill(Self, SIGUSR1);
      ::usleep(200);
    }
  });
  std::string In(N, '\0');
  std::thread Writer(
      [&] { EXPECT_TRUE(posix::writeFull(P.W, Out.data(), N)); });
  int Err = -1;
  std::size_t Got = posix::readFull(P.R, &In[0], N, &Err);
  StopFlag.store(true, std::memory_order_relaxed);
  Writer.join();
  Pinger.join();
  ::sigaction(SIGUSR1, &Old, nullptr);
  EXPECT_EQ(Got, N);
  EXPECT_EQ(Err, 0);
  EXPECT_EQ(In, Out);
}

TEST(PosixRetry, ReadFullReportsShortCountOnEof) {
  PipePair P;
  ASSERT_TRUE(posix::writeFull(P.W, "abc", 3));
  P.closeWrite();
  char Buf[16];
  int Err = -1;
  EXPECT_EQ(posix::readFull(P.R, Buf, sizeof(Buf), &Err), 3u);
  EXPECT_EQ(Err, 0); // EOF, not an error.
}

TEST(PosixRetry, FullTransfersCrossATinySocketBuffer) {
  // A socketpair squeezed to the kernel-minimum SO_SNDBUF forces
  // writeFull into many short writes (and readFull into many short
  // reads); both must still move every byte, in order.
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  int Tiny = 1; // The kernel clamps this up to its per-socket minimum.
  ASSERT_EQ(::setsockopt(Fds[1], SOL_SOCKET, SO_SNDBUF, &Tiny,
                         sizeof(Tiny)),
            0);
  int Effective = 0;
  socklen_t Len = sizeof(Effective);
  ASSERT_EQ(::getsockopt(Fds[1], SOL_SOCKET, SO_SNDBUF, &Effective, &Len),
            0);
  const std::size_t N = 512 * 1024;
  ASSERT_LT(static_cast<std::size_t>(Effective), N)
      << "buffer not small enough to force short writes";

  std::string Out(N, '\0');
  for (std::size_t I = 0; I < N; ++I)
    Out[I] = static_cast<char>(I * 37 + 11);
  std::thread Writer([&] {
    EXPECT_TRUE(posix::writeFull(Fds[1], Out.data(), N));
    ::shutdown(Fds[1], SHUT_WR);
  });
  std::string In(N, '\0');
  int Err = -1;
  std::size_t Got = posix::readFull(Fds[0], &In[0], N, &Err);
  Writer.join();
  EXPECT_EQ(Got, N);
  EXPECT_EQ(Err, 0);
  EXPECT_EQ(In, Out);

  // And past the shutdown the reader sees clean EOF, not garbage.
  char Extra[8];
  EXPECT_EQ(posix::readFull(Fds[0], Extra, sizeof(Extra), &Err), 0u);
  EXPECT_EQ(Err, 0);
  posix::closeQuiet(Fds[0]);
  posix::closeQuiet(Fds[1]);
}

TEST(PosixRetry, WriteFullReportsAPeerThatHungUp) {
  // Peer closes its end mid-stream: writeFull must come back false
  // (EPIPE/ECONNRESET) rather than spin or die on SIGPIPE.
  struct sigaction SA, Old;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = SIG_IGN;
  ASSERT_EQ(::sigaction(SIGPIPE, &SA, &Old), 0);
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  int Tiny = 1;
  ASSERT_EQ(::setsockopt(Fds[1], SOL_SOCKET, SO_SNDBUF, &Tiny,
                         sizeof(Tiny)),
            0);
  posix::closeQuiet(Fds[0]);
  // Far more than any socket buffer holds, so the failure is observed.
  std::string Big(4 * 1024 * 1024, 'q');
  EXPECT_FALSE(posix::writeFull(Fds[1], Big.data(), Big.size()));
  posix::closeQuiet(Fds[1]);
  ::sigaction(SIGPIPE, &Old, nullptr);
}

TEST(PosixRetry, WaitpidRetryReapsChildren) {
  pid_t P = ::fork();
  ASSERT_GE(P, 0);
  if (P == 0)
    ::_exit(7);
  int St = 0;
  EXPECT_EQ(posix::waitpidRetry(P, &St, 0), P);
  ASSERT_TRUE(WIFEXITED(St));
  EXPECT_EQ(WEXITSTATUS(St), 7);
}

//===----------------------------------------------------------------------===//
// Service supervisor policy.
//===----------------------------------------------------------------------===//

TEST(ServeSupervisorPolicy, BackoffDoublesAndCaps) {
  service::ServeSupervisorOptions O;
  O.BackoffMs = 100;
  O.BackoffCapMs = 1000;
  EXPECT_EQ(service::restartBackoffMs(O, 1), 100u);
  EXPECT_EQ(service::restartBackoffMs(O, 2), 200u);
  EXPECT_EQ(service::restartBackoffMs(O, 3), 400u);
  EXPECT_EQ(service::restartBackoffMs(O, 4), 800u);
  EXPECT_EQ(service::restartBackoffMs(O, 5), 1000u); // Capped.
  EXPECT_EQ(service::restartBackoffMs(O, 50), 1000u); // Shift-safe.
  EXPECT_EQ(service::restartBackoffMs(O, 0), 100u);   // Clamped up.
}

TEST(ServeSupervisorPolicy, WorkTreePathsAreStable) {
  // crashloop.sh --serve greps for these; renaming them is a protocol
  // break with the scripts.
  EXPECT_EQ(service::pidFilePath("/w"), "/w/serve.pid");
  EXPECT_EQ(service::heartbeatFilePath("/w"), "/w/heartbeat");
}

//===----------------------------------------------------------------------===//
// The in-process query engine.
//===----------------------------------------------------------------------===//

namespace {

/// One hot service over a small preset, shared across the engine tests
/// (startup solves a real fixpoint, so build it once).
Service &hotService() {
  static Service *S = [] {
    ServiceOptions O;
    O.Preset = "antlr";
    O.ConfigName = "2-object+H";
    Service *Svc = new Service(std::move(O));
    std::string Err = Svc->init();
    EXPECT_EQ(Err, "");
    return Svc;
  }();
  return *S;
}

Request req(const std::string &Payload) {
  Request Q;
  EXPECT_EQ(parseRequest(Payload, Q), "");
  return Q;
}

/// Some variable name with a non-empty hot points-to set: enumerate the
/// preset's real variable names and probe the service until one answers
/// with heaps. The antlr preset always allocates, so this cannot come
/// back empty on a converged service.
std::string pointingVar(Service &S) {
  static std::string Cached = [&] {
    facts::FactDB DB = facts::extract(workload::generatePreset("antlr"));
    for (const std::string &Name : DB.VarNames) {
      Response R = S.answer(req("p\tpts\t" + Name));
      if (R.Status == StatusOk && R.Body != "-")
        return Name;
    }
    return std::string();
  }();
  return Cached;
}

} // namespace

TEST(ServiceEngine, HotModeAnswersPtsAndAlias) {
  Service &S = hotService();
  EXPECT_EQ(S.mode(), ServeMode::Hot);
  EXPECT_EQ(S.modeTag(), "hot");

  Response Ping = S.answer(req("1\tping"));
  EXPECT_EQ(Ping.Status, StatusOk);
  EXPECT_EQ(Ping.Body, "pong");

  std::string Var = pointingVar(S);
  ASSERT_NE(Var, "") << "no known generator variable resolved";
  Response Pts = S.answer(req("2\tpts\t" + Var));
  EXPECT_EQ(Pts.Status, StatusOk);
  EXPECT_EQ(Pts.Mode, "hot");
  EXPECT_NE(Pts.Body, "-");

  Response Alias = S.answer(req("3\talias\t" + Var + "\t" + Var));
  EXPECT_EQ(Alias.Status, StatusOk);
  EXPECT_EQ(Alias.Body, "true"); // Self-alias via any non-empty set.
}

TEST(ServiceEngine, UnknownNamesAndVerbsError) {
  Service &S = hotService();
  EXPECT_EQ(S.answer(req("1\tpts\tno.such.var")).Status, StatusError);
  EXPECT_EQ(S.answer(req("2\ttaint\tno.such.heap")).Status, StatusError);
  EXPECT_EQ(S.answer(req("3\tfrobnicate")).Status, StatusError);
  EXPECT_EQ(S.answer(req("4\tpts")).Status, StatusError); // Arity.
}

TEST(ServiceEngine, MaxStepsOneDegradesToSoundFallback) {
  Service &S = hotService();
  std::string Var = pointingVar(S);
  ASSERT_NE(Var, "");
  Response Full = S.answer(req("1\tpts\t" + Var));
  Response Capped = S.answer(req("2\tpts\t" + Var + "\tmax_steps=1"));
  // Answered, degraded, and sound: the fallback set must cover the hot
  // answer (it is the all-heaps set by construction).
  EXPECT_EQ(Capped.Status, StatusDegraded);
  EXPECT_EQ(Capped.Mode, "cfl-exhausted");
  ASSERT_NE(Capped.Body, "-");
  // Containment: every hot heap name appears in the degraded body.
  std::string Padded = " " + Capped.Body + " ";
  std::istringstream HotHeaps(Full.Body);
  std::string H;
  while (HotHeaps >> H)
    EXPECT_NE(Padded.find(" " + H + " "), std::string::npos)
        << "degraded answer dropped " << H;
}

TEST(ServiceEngine, TightDeadlineStillAnswers) {
  Service &S = hotService();
  std::string Var = pointingVar(S);
  ASSERT_NE(Var, "");
  // deadline_ms=1 may or may not trip depending on machine speed — the
  // contract is answered-not-hung with a sane status either way.
  Response R = S.answer(req("1\tpts\t" + Var + "\tdeadline_ms=1"));
  EXPECT_TRUE(R.Status == StatusOk || R.Status == StatusDegraded)
      << R.Status;
  EXPECT_NE(R.Body, "");
}

TEST(ServiceEngine, VarsVerbEnumeratesResolvableNames) {
  Service &S = hotService();
  Response R = S.answer(req("1\tvars\t5"));
  EXPECT_EQ(R.Status, StatusOk);
  std::istringstream Names(R.Body);
  std::string N;
  int Count = 0;
  while (Names >> N) {
    ++Count;
    // Every advertised name must resolve through pts.
    EXPECT_NE(S.answer(req("2\tpts\t" + N)).Status, StatusError) << N;
  }
  EXPECT_EQ(Count, 5);
  EXPECT_EQ(S.answer(req("3\tvars")).Status, StatusError);
  EXPECT_EQ(S.answer(req("4\tvars\t0")).Status, StatusError);
}

TEST(ServiceEngine, StatsReportsModeAndAdmissionShape) {
  Service &S = hotService();
  Response R = S.answer(req("9\tstats"));
  EXPECT_EQ(R.Status, StatusOk);
  EXPECT_NE(R.Body.find("mode=hot"), std::string::npos) << R.Body;
  EXPECT_NE(R.Body.find("queue_cap="), std::string::npos) << R.Body;
  EXPECT_NE(R.Body.find("shed="), std::string::npos) << R.Body;
}

TEST(ServiceEngine, CflOnlyModeServesDemandAnswers) {
  // A startup budget of one derivation exhausts every ladder rung, so
  // the service must come up in CflOnly mode — and still answer pts
  // soundly (demand-driven over-approximation), while refusing taint.
  ServiceOptions O;
  O.Preset = "antlr";
  O.ConfigName = "2-object+H";
  O.StartupBudget.MaxDerivations = 1;
  Service S(std::move(O));
  ASSERT_EQ(S.init(), "");
  EXPECT_EQ(S.mode(), ServeMode::CflOnly);
  EXPECT_EQ(S.modeTag(), "cfl");

  Service &HotS = hotService();
  std::string Var = pointingVar(HotS);
  ASSERT_NE(Var, "");
  Response Demand = S.answer(req("1\tpts\t" + Var));
  EXPECT_TRUE(Demand.Status == StatusOk ||
              Demand.Status == StatusDegraded);
  EXPECT_TRUE(Demand.Mode == "cfl" || Demand.Mode == "cfl-exhausted");
  // Soundness: the demand answer covers the hot answer.
  Response Hot = HotS.answer(req("2\tpts\t" + Var));
  std::string Padded = " " + Demand.Body + " ";
  std::istringstream HotHeaps(Hot.Body);
  std::string H;
  while (HotHeaps >> H)
    EXPECT_NE(Padded.find(" " + H + " "), std::string::npos)
        << "demand answer dropped " << H;

  EXPECT_EQ(S.answer(req("3\ttaint\tanything")).Status, StatusError);
}

//===----------------------------------------------------------------------===//
// Memory-pressure shedding and in-place degradation.
//===----------------------------------------------------------------------===//

namespace {

/// Connects to \p Path, retrying while the serve thread binds.
int connectTo(const std::string &Path) {
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return -1;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  for (int Try = 0; Try < 200; ++Try) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                  sizeof(Addr)) == 0)
      return Fd;
    posix::closeQuiet(Fd);
    ::usleep(20000);
  }
  return -1;
}

/// One request/response round trip over \p Fd.
Response ask(int Fd, const std::string &Payload) {
  Response R;
  EXPECT_TRUE(writeFrame(Fd, Payload));
  std::string Back;
  EXPECT_EQ(readFrame(Fd, Back), FrameResult::Ok);
  EXPECT_TRUE(parseResponse(Back, R));
  return R;
}

} // namespace

TEST(ServiceEngine, SustainedPressureBurstDegradesInPlaceAndRecovers) {
  // The acceptance drill for the memory governor's serve integration: a
  // sustained simulated pressure burst must never kill the daemon — it
  // sheds under hard pressure, drops its resident caches, and keeps
  // answering demand-driven; when the burst passes, admissions resume.
  fault::reset();
  memgov::disable();

  ServiceOptions O;
  O.Preset = "antlr";
  O.ConfigName = "2-object+H";
  Service S(std::move(O));
  ASSERT_EQ(S.init(), "");
  ASSERT_EQ(S.mode(), ServeMode::Hot);

  const std::string Sock =
      "/tmp/ctp_serve_mem_" + std::to_string(::getpid()) + ".sock";
  std::thread Server([&] { EXPECT_EQ(S.serve(Sock), 0); });
  int Fd = connectTo(Sock);
  ASSERT_GE(Fd, 0) << "serve loop never bound " << Sock;

  Service &HotS = hotService();
  const std::string Var = pointingVar(HotS);
  ASSERT_NE(Var, "");
  const Response Healthy = ask(Fd, "1\tpts\t" + Var);
  EXPECT_EQ(Healthy.Status, StatusOk);
  EXPECT_EQ(Healthy.Mode, "hot");

  // Sustained hard pressure: the accept loop's next governor poll acts
  // immediately (no streak needed) — resident caches drop, the service
  // falls to demand-driven answers, and readers shed new admissions.
  fault::armMemFault(fault::MemFault::HardPressure, 0, 1u << 30);
  bool SawShed = false;
  for (int Try = 0; Try < 100 && !SawShed; ++Try) {
    Response R = ask(Fd, std::to_string(10 + Try) + "\tpts\t" + Var);
    SawShed = R.Status == StatusOverloaded;
    if (!SawShed)
      ::usleep(20000);
  }
  EXPECT_TRUE(SawShed) << "hard pressure never shed an admission";

  // Burst over: pressure reads Ok again on the next poll, admissions
  // resume, and the (now demand-driven) service still answers soundly —
  // the CFL answer covers the hot one.
  fault::reset();
  Response After;
  for (int Try = 0; Try < 100; ++Try) {
    After = ask(Fd, std::to_string(200 + Try) + "\tpts\t" + Var);
    if (After.Status != StatusOverloaded)
      break;
    ::usleep(20000);
  }
  EXPECT_TRUE(After.Status == StatusOk || After.Status == StatusDegraded)
      << After.Status;
  EXPECT_TRUE(After.Mode == "cfl" || After.Mode == "cfl-exhausted")
      << After.Mode;
  std::string Padded = " " + After.Body + " ";
  std::istringstream HotHeaps(Healthy.Body);
  std::string H;
  while (HotHeaps >> H)
    EXPECT_NE(Padded.find(" " + H + " "), std::string::npos)
        << "post-burst answer dropped " << H;

  const Response Stats = ask(Fd, "900\tstats");
  EXPECT_NE(Stats.Body.find("mode=cfl"), std::string::npos) << Stats.Body;
  EXPECT_NE(Stats.Body.find("mem_state=ok"), std::string::npos)
      << Stats.Body;
  EXPECT_EQ(Stats.Body.find("mem_shed=0"), std::string::npos) << Stats.Body;
  EXPECT_EQ(Stats.Body.find("mem_degrades=0"), std::string::npos)
      << Stats.Body;

  EXPECT_EQ(ask(Fd, "999\tshutdown").Body, "bye");
  posix::closeQuiet(Fd);
  Server.join();
  fault::reset();
  memgov::disable();
}

TEST(ServiceEngine, SustainedSoftPressureDescendsTheLadder) {
  // Soft pressure is degrade-and-descend territory: after a sustained
  // streak the service drops its caches and re-solves cheaper rungs.
  // Under a *continuing* burst every rung's meter trips too, so it must
  // land on demand-driven answers — degraded, sound, still alive — and
  // soft pressure alone must never shed admissions.
  fault::reset();
  memgov::disable();

  ServiceOptions O;
  O.Preset = "antlr";
  O.ConfigName = "2-object+H";
  Service S(std::move(O));
  ASSERT_EQ(S.init(), "");
  ASSERT_EQ(S.mode(), ServeMode::Hot);

  const std::string Sock =
      "/tmp/ctp_serve_soft_" + std::to_string(::getpid()) + ".sock";
  std::thread Server([&] { EXPECT_EQ(S.serve(Sock), 0); });
  int Fd = connectTo(Sock);
  ASSERT_GE(Fd, 0) << "serve loop never bound " << Sock;

  Service &HotS = hotService();
  const std::string Var = pointingVar(HotS);
  ASSERT_NE(Var, "");

  fault::armMemFault(fault::MemFault::SoftPressure, 0, 1u << 30);
  // Three accept-loop ticks build the streak; the descent then runs on
  // the accept thread while queries keep being answered here.
  Response R;
  bool Descended = false;
  for (int Try = 0; Try < 300 && !Descended; ++Try) {
    R = ask(Fd, std::to_string(Try) + "\tpts\t" + Var);
    EXPECT_NE(R.Status, StatusOverloaded)
        << "soft pressure must not shed admissions";
    Descended = R.Mode == "cfl" || R.Mode == "cfl-exhausted";
    if (!Descended)
      ::usleep(20000);
  }
  EXPECT_TRUE(Descended) << "sustained soft pressure never descended";
  EXPECT_NE(R.Body, "") << "descended service stopped answering";

  EXPECT_EQ(ask(Fd, "999\tshutdown").Body, "bye");
  posix::closeQuiet(Fd);
  Server.join();
  fault::reset();
  memgov::disable();
}
