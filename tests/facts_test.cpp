//===- tests/facts_test.cpp - Fact extraction tests -----------------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "facts/Extract.h"
#include "workload/PaperPrograms.h"

#include "gtest/gtest.h"

#include <algorithm>

using namespace ctp;
using namespace ctp::facts;

namespace {

TEST(FactsTest, Figure1Extraction) {
  workload::Figure1Program F = workload::figure1();
  FactDB DB = extract(F.P);
  EXPECT_EQ(DB.validate(), "");

  // Five allocation sites in main (h1..h5) + m1 in T.m().
  EXPECT_EQ(DB.AssignNews.size(), 6u);
  // Seven virtual call sites c1..c7.
  EXPECT_EQ(DB.VirtualInvokes.size(), 7u);
  EXPECT_EQ(DB.StaticInvokes.size(), 0u);
  // One store (a.f = x) and one load (z = b.f).
  EXPECT_EQ(DB.Stores.size(), 1u);
  EXPECT_EQ(DB.Loads.size(), 1u);
  // id, id2, m have this vars; main does not.
  EXPECT_EQ(DB.ThisVars.size(), 3u);
  EXPECT_EQ(DB.EntryMethods.size(), 1u);
}

TEST(FactsTest, ImplementsResolvesThroughHierarchy) {
  workload::Figure1Program F = workload::figure1();
  FactDB DB = extract(F.P);
  // Type T implements id, id2, m. Object implements none of them.
  std::size_t ForT = 0, ForObject = 0;
  // Type ids: Object = 0, T = 1 (builder order in figure1()).
  for (const auto &I : DB.Implements) {
    if (I.Type == 1)
      ++ForT;
    if (I.Type == 0)
      ++ForObject;
  }
  EXPECT_EQ(ForT, 3u);
  EXPECT_EQ(ForObject, 0u);
}

TEST(FactsTest, ClassOfHeapFollowsParentMethod) {
  workload::Figure5Program F = workload::figure5();
  FactDB DB = extract(F.P);
  // h1 is allocated inside T.m(), declared in class T (type id 1).
  EXPECT_EQ(DB.classOfHeap(F.H1), 1u);
}

TEST(FactsTest, ActualsAndFormalsAligned) {
  workload::Figure1Program F = workload::figure1();
  FactDB DB = extract(F.P);
  // Every virtual call to id/id2 passes one actual; m passes none.
  std::vector<std::size_t> ActualCount(DB.numInvokes(), 0);
  for (const auto &A : DB.Actuals)
    ++ActualCount[A.Invoke];
  std::size_t OneArg =
      std::count(ActualCount.begin(), ActualCount.end(), 1u);
  std::size_t ZeroArg =
      std::count(ActualCount.begin(), ActualCount.end(), 0u);
  EXPECT_EQ(OneArg, 5u);  // c1..c5.
  EXPECT_EQ(ZeroArg, 2u); // c6, c7.
}

TEST(FactsTest, NumInputFactsIsConsistent) {
  workload::Figure7Program F = workload::figure7();
  FactDB DB = extract(F.P);
  std::size_t Sum = DB.Actuals.size() + DB.Assigns.size() +
                    DB.AssignNews.size() + DB.AssignReturns.size() +
                    DB.Formals.size() + DB.HeapTypes.size() +
                    DB.Implements.size() + DB.Loads.size() +
                    DB.Returns.size() + DB.StaticInvokes.size() +
                    DB.Stores.size() + DB.ThisVars.size() +
                    DB.VirtualInvokes.size() + DB.GlobalStores.size() +
                    DB.GlobalLoads.size() + DB.Throws.size() +
                    DB.Catches.size() + DB.Casts.size() +
                    DB.Subtypes.size();
  EXPECT_EQ(DB.numInputFacts(), Sum);
}

TEST(FactsTest, ValidateCatchesOutOfRange) {
  workload::Figure7Program F = workload::figure7();
  FactDB DB = extract(F.P);
  DB.Assigns.push_back({static_cast<Id>(DB.numVars()), 0});
  EXPECT_NE(DB.validate(), "");
}

} // namespace
