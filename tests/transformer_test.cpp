//===- tests/transformer_test.cpp - Transformer-string algebra ------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Unit tests for Section 4.2: match-based composition, truncation,
// inverses, and the inverse-semigroup laws of Section 3.
//
//===----------------------------------------------------------------------===//

#include "ctx/TransformerString.h"

#include "gtest/gtest.h"

using namespace ctp;
using namespace ctp::ctx;

namespace {

Transformer make(std::initializer_list<CtxtElem> Exits, bool Wild,
                 std::initializer_list<CtxtElem> Entries) {
  Transformer T;
  for (CtxtElem E : Exits)
    T.Exits.push_back(E);
  T.Wild = Wild;
  for (CtxtElem E : Entries)
    T.Entries.push_back(E);
  return T;
}

TEST(TransformerTest, IdentityIsNeutral) {
  Transformer Id = Transformer::identity();
  Transformer T = make({1, 2}, true, {3});
  auto L = compose(Id, T);
  auto R = compose(T, Id);
  ASSERT_TRUE(L.has_value());
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*L, T);
  EXPECT_EQ(*R, T);
}

TEST(TransformerTest, EntryThenMatchingExitCancels) {
  // â ; ǎ = ε.
  auto R = compose(Transformer::entry(7), Transformer::exit(7));
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->isIdentity());
}

TEST(TransformerTest, EntryThenMismatchedExitIsBottom) {
  // â ; b̌ = ⊥ for a != b.
  EXPECT_FALSE(compose(Transformer::entry(7), Transformer::exit(8)));
}

TEST(TransformerTest, ExitThenEntryDoesNotCancel) {
  // ǎ ; â is the "pop a, push a" prefix filter — not the identity.
  auto R = compose(Transformer::exit(7), Transformer::entry(7));
  ASSERT_TRUE(R.has_value());
  EXPECT_FALSE(R->isIdentity());
  EXPECT_EQ(*R, make({7}, false, {7}));
}

TEST(TransformerTest, PartialCancellation) {
  // (â b̂) ; (ǎ č) — entries a,b vs exits a,c: first pair cancels, second
  // mismatches. Entries list is top-most first, so the transformer pushing
  // "a on top of b" has Entries = [a, b] and the exits [a, c] pop a then c.
  Transformer Push = make({}, false, {1, 2});
  Transformer Pop = make({1, 3}, false, {});
  EXPECT_FALSE(compose(Push, Pop));

  Transformer PopOk = make({1, 2}, false, {});
  auto R = compose(Push, PopOk);
  ASSERT_TRUE(R.has_value());
  EXPECT_TRUE(R->isIdentity());
}

TEST(TransformerTest, LeftoverExitsExtend) {
  // (ǎ) ; (b̌) = pop a then pop b.
  auto R = compose(Transformer::exit(1), Transformer::exit(2));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, make({1, 2}, false, {}));
}

TEST(TransformerTest, LeftoverEntriesStack) {
  // (â) ; (b̂): push a, then push b on top — entries [b, a].
  auto R = compose(Transformer::entry(1), Transformer::entry(2));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, make({}, false, {2, 1}));
}

TEST(TransformerTest, WildcardAbsorbsFollowingExits) {
  // (∗) ; (ǎ) = ∗.
  Transformer Wild = make({}, true, {});
  auto R = compose(Wild, Transformer::exit(5));
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, Wild);
}

TEST(TransformerTest, WildcardAbsorbsPrecedingEntries) {
  // (â) ; (∗) = ∗.
  Transformer Wild = make({}, true, {});
  auto R = compose(Transformer::entry(5), Wild);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, Wild);
}

TEST(TransformerTest, MismatchBeatsWildcard) {
  // (ǎ ∗ b̂) ; (č ...) is ⊥: the concrete entry b̂ meets exit č before the
  // wildcard can absorb anything.
  Transformer A = make({1}, true, {2});
  Transformer B = make({3}, false, {});
  EXPECT_FALSE(compose(A, B));
}

TEST(TransformerTest, ExitsBeyondEntriesHitWildcard) {
  // (∗ b̂) ; (b̌ č): b cancels, c falls into the wildcard.
  Transformer A = make({}, true, {2});
  Transformer B = make({2, 3}, false, {4});
  auto R = compose(A, B);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, make({}, true, {4}));
}

TEST(TransformerTest, TruncationKeepsSmallStrings) {
  Transformer T = make({1}, false, {2, 3});
  EXPECT_EQ(truncate(T, 1, 2), T);
}

TEST(TransformerTest, TruncationAddsWildcard) {
  Transformer T = make({1, 2}, false, {3, 4, 5});
  Transformer Expect = make({1}, true, {3, 4});
  EXPECT_EQ(truncate(T, 1, 2), Expect);
}

TEST(TransformerTest, InverseSwapsExitsAndEntries) {
  Transformer T = make({1, 2}, true, {3});
  Transformer Inv = inverse(T);
  EXPECT_EQ(Inv, make({3}, true, {1, 2}));
}

TEST(TransformerTest, InverseSemigroupLaw) {
  // f ; f⁻¹ ; f = f for every canonical transformer (Section 3).
  std::vector<Transformer> Cases = {
      Transformer::identity(),
      Transformer::entry(1),
      Transformer::exit(1),
      make({1, 2}, false, {3}),
      make({1}, true, {2, 3}),
      make({}, true, {}),
      make({4, 5}, false, {4, 5}),
  };
  for (const Transformer &F : Cases) {
    auto Step1 = compose(F, inverse(F));
    ASSERT_TRUE(Step1.has_value()) << printTransformer(F);
    auto Step2 = compose(*Step1, F);
    ASSERT_TRUE(Step2.has_value()) << printTransformer(F);
    EXPECT_EQ(*Step2, F) << printTransformer(F);
  }
}

TEST(TransformerTest, PrefixFilterFixesPrefix) {
  CtxtVec M;
  M.push_back(3);
  M.push_back(9);
  Transformer F = prefixFilter(M);
  EXPECT_EQ(F, make({3, 9}, false, {3, 9}));
  // Idempotent: F ; F = F.
  auto R = compose(F, F);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, F);
}

TEST(TransformerTest, AssociativityOnSamples) {
  std::vector<Transformer> Pool = {
      Transformer::identity(), Transformer::entry(1), Transformer::exit(1),
      Transformer::entry(2),   Transformer::exit(2),  make({}, true, {}),
      make({1}, false, {2}),   make({2}, true, {1}),
  };
  for (const Transformer &A : Pool)
    for (const Transformer &B : Pool)
      for (const Transformer &C : Pool) {
        auto AB = compose(A, B);
        auto BC = compose(B, C);
        std::optional<Transformer> L, R;
        if (AB)
          L = compose(*AB, C);
        if (BC)
          R = compose(A, *BC);
        // ⊥ propagates: (A;B);C = ⊥ iff A;(B;C) = ⊥.
        EXPECT_EQ(L.has_value(), R.has_value());
        if (L && R) {
          EXPECT_EQ(*L, *R);
        }
      }
}

} // namespace
