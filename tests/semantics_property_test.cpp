//===- tests/semantics_property_test.cpp - Algebraic law properties -------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Property-based tests of Section 4's lemmas, checked by evaluating the
// concrete semantics over randomly generated transformers and contexts:
//
//   * Lemma 4.1 (match preserves meaning): compose(A,B) applied to X
//     equals applying A then B to X.
//   * Lemma 4.2 (truncation is conservative): the image under trunc(A)
//     contains the image under A.
//   * Inverse-semigroup laws hold semantically.
//
//===----------------------------------------------------------------------===//

#include "ctx/Semantics.h"
#include "support/Rng.h"

#include "gtest/gtest.h"

using namespace ctp;
using namespace ctp::ctx;

namespace {

/// Random transformer with small alphabet so cancellations actually occur.
Transformer randomTransformer(Rng &R) {
  Transformer T;
  unsigned NumExits = static_cast<unsigned>(R.nextBelow(4));
  unsigned NumEntries = static_cast<unsigned>(R.nextBelow(4));
  for (unsigned I = 0; I < NumExits; ++I)
    T.Exits.push_back(static_cast<CtxtElem>(R.nextBelow(3)));
  T.Wild = R.chancePercent(30);
  for (unsigned I = 0; I < NumEntries; ++I)
    T.Entries.push_back(static_cast<CtxtElem>(R.nextBelow(3)));
  return T;
}

ConcreteCtxt randomCtxt(Rng &R, unsigned MaxLen = 6) {
  ConcreteCtxt C;
  unsigned Len = static_cast<unsigned>(R.nextBelow(MaxLen + 1));
  for (unsigned I = 0; I < Len; ++I)
    C.push_back(static_cast<CtxtElem>(R.nextBelow(3)));
  return C;
}

struct SemanticsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SemanticsProperty, ComposePreservesMeaning) {
  Rng R(GetParam());
  for (int Trial = 0; Trial < 400; ++Trial) {
    Transformer A = randomTransformer(R);
    Transformer B = randomTransformer(R);
    ConcreteCtxt M = randomCtxt(R);

    PrefixSet Sequential =
        applyTransformer(B, applyTransformer(A, PrefixSet::exact(M)));
    std::optional<Transformer> AB = compose(A, B);
    PrefixSet Composed = AB ? applyTransformer(*AB, PrefixSet::exact(M))
                            : PrefixSet::empty();
    EXPECT_EQ(Sequential, Composed)
        << printTransformer(A) << " ; " << printTransformer(B);
  }
}

TEST_P(SemanticsProperty, BottomMeansEmptyEverywhere) {
  // If compose returns nullopt, applying A then B must give the empty set
  // for *every* context, not just sampled ones with a particular shape.
  Rng R(GetParam() ^ 0x9999);
  for (int Trial = 0; Trial < 400; ++Trial) {
    Transformer A = randomTransformer(R);
    Transformer B = randomTransformer(R);
    if (compose(A, B))
      continue;
    for (int CtxTrial = 0; CtxTrial < 20; ++CtxTrial) {
      ConcreteCtxt M = randomCtxt(R);
      PrefixSet Out =
          applyTransformer(B, applyTransformer(A, PrefixSet::exact(M)));
      EXPECT_TRUE(Out.isEmpty());
    }
  }
}

TEST_P(SemanticsProperty, TruncationIsConservative) {
  Rng R(GetParam() ^ 0x5a5a);
  for (int Trial = 0; Trial < 400; ++Trial) {
    Transformer A = randomTransformer(R);
    unsigned I = static_cast<unsigned>(R.nextBelow(3));
    unsigned J = static_cast<unsigned>(R.nextBelow(3));
    Transformer Tr = truncate(A, I, J);
    ConcreteCtxt M = randomCtxt(R);
    PrefixSet Precise = applyTransformer(A, PrefixSet::exact(M));
    PrefixSet Coarse = applyTransformer(Tr, PrefixSet::exact(M));
    EXPECT_TRUE(prefixSetSubset(Precise, Coarse))
        << printTransformer(A) << " truncated to (" << I << "," << J << ")";
  }
}

TEST_P(SemanticsProperty, InverseLawSemantically) {
  // x ∈ f(M) implies M ∈ f⁻¹(x) for exact results.
  Rng R(GetParam() ^ 0x1111);
  for (int Trial = 0; Trial < 400; ++Trial) {
    Transformer F = randomTransformer(R);
    ConcreteCtxt M = randomCtxt(R);
    PrefixSet Out = applyTransformer(F, PrefixSet::exact(M));
    if (Out.K != PrefixSet::Kind::Exact)
      continue;
    PrefixSet Back =
        applyTransformer(inverse(F), PrefixSet::exact(Out.Prefix));
    EXPECT_TRUE(prefixSetSubset(PrefixSet::exact(M), Back))
        << printTransformer(F);
  }
}

TEST_P(SemanticsProperty, CtxtPairMatchesItsReading) {
  // (A,B)(X) is all-of-prefix-B when X meets all-of-prefix-A.
  Rng R(GetParam() ^ 0x7777);
  for (int Trial = 0; Trial < 400; ++Trial) {
    CtxtPair P;
    unsigned LA = static_cast<unsigned>(R.nextBelow(3));
    unsigned LB = static_cast<unsigned>(R.nextBelow(3));
    for (unsigned I = 0; I < LA; ++I)
      P.In.push_back(static_cast<CtxtElem>(R.nextBelow(3)));
    for (unsigned I = 0; I < LB; ++I)
      P.Out.push_back(static_cast<CtxtElem>(R.nextBelow(3)));
    ConcreteCtxt M = randomCtxt(R);
    PrefixSet Out = applyCtxtPair(P, PrefixSet::exact(M));
    bool HasPrefix = M.size() >= P.In.size();
    for (unsigned I = 0; HasPrefix && I < P.In.size(); ++I)
      HasPrefix = M[I] == P.In[I];
    if (HasPrefix) {
      ASSERT_EQ(Out.K, PrefixSet::Kind::All);
      EXPECT_EQ(Out.Prefix, ConcreteCtxt(P.Out.begin(), P.Out.end()));
    } else {
      EXPECT_TRUE(Out.isEmpty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticsProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 1234u));

} // namespace
