//===- tests/fig1_test.cpp - Figure 1 / Section 2 narrative ---------------===//
//
// Part of the ctp project: a reproduction of "Context Transformations for
// Pointer Analysis" (Thiessen & Lhoták, PLDI 2017).
//
// Reproduces the precision claims of Section 2 on the Figure 1 program
// for every flavour/level the narrative discusses, under both
// abstractions (which must agree — Theorem 6.2 in practice).
//
//===----------------------------------------------------------------------===//

#include "analysis/Solver.h"
#include "facts/Extract.h"
#include "workload/PaperPrograms.h"

#include "gtest/gtest.h"

using namespace ctp;
using ctx::Abstraction;
using ctx::Config;
using ctx::Flavour;

namespace {

class Fig1Test : public ::testing::TestWithParam<Abstraction> {
protected:
  void SetUp() override {
    F = workload::figure1();
    DB = facts::extract(F.P);
  }

  std::vector<std::uint32_t> pts(const analysis::Results &R,
                                 ir::VarId V) const {
    return R.pointsTo(V);
  }

  workload::Figure1Program F;
  facts::FactDB DB;
};

using U32s = std::vector<std::uint32_t>;

TEST_P(Fig1Test, ContextInsensitiveMergesEverything) {
  analysis::Results R =
      analysis::solve(DB, ctx::insensitive(GetParam()));
  EXPECT_EQ(pts(R, F.X1), (U32s{F.H1, F.H2}));
  EXPECT_EQ(pts(R, F.Y1), (U32s{F.H1, F.H2}));
  EXPECT_EQ(pts(R, F.X2), (U32s{F.H1, F.H2}));
  EXPECT_EQ(pts(R, F.Y2), (U32s{F.H1, F.H2}));
  // Without heap contexts a.f and b.f alias: z "points to" h1.
  EXPECT_EQ(pts(R, F.Z), (U32s{F.H1}));
}

TEST_P(Fig1Test, OneCallSeparatesDirectCalls) {
  analysis::Results R = analysis::solve(DB, ctx::oneCall(GetParam()));
  // id analyzed per call site: c2 and c3 are distinguished.
  EXPECT_EQ(pts(R, F.X1), (U32s{F.H1}));
  EXPECT_EQ(pts(R, F.Y1), (U32s{F.H2}));
  // But c4/c5 both reach id through c1: merged.
  EXPECT_EQ(pts(R, F.X2), (U32s{F.H1, F.H2}));
  EXPECT_EQ(pts(R, F.Y2), (U32s{F.H1, F.H2}));
}

TEST_P(Fig1Test, TwoCallRecoversNestedPrecision) {
  Config Cfg{GetParam(), Flavour::CallSite, 2, 0};
  analysis::Results R = analysis::solve(DB, Cfg);
  EXPECT_EQ(pts(R, F.X1), (U32s{F.H1}));
  EXPECT_EQ(pts(R, F.Y1), (U32s{F.H2}));
  EXPECT_EQ(pts(R, F.X2), (U32s{F.H1}));
  EXPECT_EQ(pts(R, F.Y2), (U32s{F.H2}));
}

TEST_P(Fig1Test, OneObjectMergesSameReceiverButSplitsNesting) {
  analysis::Results R = analysis::solve(DB, ctx::oneObject(GetParam()));
  // Both id(x) and id(y) use receiver h3: merged.
  EXPECT_EQ(pts(R, F.X1), (U32s{F.H1, F.H2}));
  EXPECT_EQ(pts(R, F.Y1), (U32s{F.H1, F.H2}));
  // id2 and its nested id run under receiver contexts h4 vs h5: precise.
  EXPECT_EQ(pts(R, F.X2), (U32s{F.H1}));
  EXPECT_EQ(pts(R, F.Y2), (U32s{F.H2}));
}

TEST_P(Fig1Test, HeapContextsDisambiguateFactoryObjects) {
  // Without heap context the two m() results are one abstract object and
  // z picks up h1.
  analysis::Results NoH = analysis::solve(DB, ctx::oneObject(GetParam()));
  EXPECT_EQ(pts(NoH, F.Z), (U32s{F.H1}));
  EXPECT_EQ(pts(NoH, F.A), (U32s{F.M1}));
  EXPECT_EQ(pts(NoH, F.B), (U32s{F.M1}));

  // With one level of heap context (either flavour, per Section 2), the
  // objects from c6 and c7 are distinguished and z points to nothing.
  analysis::Results CallH = analysis::solve(DB, ctx::oneCallH(GetParam()));
  EXPECT_TRUE(pts(CallH, F.Z).empty());
  analysis::Results ObjH = analysis::solve(DB, ctx::twoObjectH(GetParam()));
  EXPECT_TRUE(pts(ObjH, F.Z).empty());
}

TEST_P(Fig1Test, TwoObjectHKeepsObjectLimits) {
  // Deeper object contexts cannot separate x1/y1: both calls dispatch on
  // the same receiver object h3 (this is inherent to object sensitivity,
  // not a depth limitation).
  analysis::Results R = analysis::solve(DB, ctx::twoObjectH(GetParam()));
  EXPECT_EQ(pts(R, F.X1), (U32s{F.H1, F.H2}));
  EXPECT_EQ(pts(R, F.Y1), (U32s{F.H1, F.H2}));
  EXPECT_EQ(pts(R, F.X2), (U32s{F.H1}));
  EXPECT_EQ(pts(R, F.Y2), (U32s{F.H2}));
  EXPECT_TRUE(pts(R, F.Z).empty());
}

INSTANTIATE_TEST_SUITE_P(BothAbstractions, Fig1Test,
                         ::testing::Values(Abstraction::ContextString,
                                           Abstraction::TransformerString),
                         [](const auto &Info) {
                           return Info.param ==
                                          Abstraction::ContextString
                                      ? "ContextString"
                                      : "TransformerString";
                         });

} // namespace
